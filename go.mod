module ptdft

go 1.24
