// Package ptdft is a Go reproduction of "Parallel Transport Time-Dependent
// Density Functional Theory Calculations with Hybrid Functional on Summit"
// (Jia, Wang, Lin; SC'19, arXiv:1905.01348).
//
// The library implements the paper's primary contribution - real-time TDDFT
// in the parallel transport gauge with the implicit PT-CN integrator and a
// screened-exchange hybrid functional - together with every substrate it
// rests on: a plane-wave Kohn-Sham solver (FFTs, pseudopotentials,
// Hartree/XC, LOBPCG ground state), the distributed implementation of the
// paper's section 3 (band-index / G-space hybrid parallelization,
// broadcast-pipelined Fock exchange, single-precision MPI) on a
// goroutine message-passing runtime, and a calibrated Summit performance
// model that regenerates the paper's Tables 1-2 and Figures 3, 6-10.
//
// Entry points:
//
//	cmd/ptdft      - run ground state + rt-TDDFT on silicon supercells
//	cmd/summitsim  - regenerate every table/figure of the evaluation
//	cmd/spectra    - absorption spectrum from a delta-kick run
//	examples/...   - five runnable walkthroughs
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-reproduction record.
package ptdft
