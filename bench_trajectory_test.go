package ptdft_test

import (
	"testing"

	"ptdft/internal/perf"
)

// TestBenchTrajectoryRecordsImprovement validates the committed benchmark
// trajectory: BENCH_fock.json must parse, and the zero-allocation rework
// (label pr2-workspaces) must hold its recorded >= 1.5x improvement over
// the seed baseline (label pr1-seed) with an allocation-free generic hot
// path. This pins the file's contract - future PRs append new labels and
// extend the check rather than overwriting history.
func TestBenchTrajectoryRecordsImprovement(t *testing.T) {
	bf, err := perf.LoadBench("BENCH_fock.json")
	if err != nil {
		t.Fatalf("BENCH_fock.json unreadable: %v", err)
	}
	for _, name := range []string{"BenchmarkRealFockApplyAllBands", "BenchmarkFockApplySingleBand"} {
		base, ok := bf.Find(name, "pr1-seed")
		if !ok {
			t.Errorf("%s: pr1-seed baseline missing", name)
			continue
		}
		cur, ok := bf.Find(name, "pr2-workspaces")
		if !ok {
			t.Errorf("%s: pr2-workspaces record missing", name)
			continue
		}
		if ratio := base.NsPerOp / cur.NsPerOp; ratio < 1.5 {
			t.Errorf("%s: recorded speedup %.2fx < 1.5x (%.0f -> %.0f ns/op)", name, ratio, base.NsPerOp, cur.NsPerOp)
		}
	}
	// The zero-allocation contract as recorded.
	for _, name := range []string{"BenchmarkFockApplyGeneric", "BenchmarkFockApplySingleBand", "BenchmarkFFTPoissonSolve", "BenchmarkFFTSerial3D"} {
		rec, ok := bf.Find(name, "pr2-workspaces")
		if !ok {
			t.Errorf("%s: pr2-workspaces record missing", name)
			continue
		}
		if rec.AllocsPerOp != 0 {
			t.Errorf("%s: recorded %.0f allocs/op, want 0", name, rec.AllocsPerOp)
		}
	}

	// The distributed ACE-vs-exact ablation (label pr3-dist-ace): one
	// compressed application must be recorded substantially cheaper than
	// one exact exchange application - the nb-dot-products-vs-nb-Poisson
	// payoff that makes the held cadence worth its compression error -
	// while the collective Xi construction stays within ~2x of one exact
	// application (it embeds one).
	exact, okE := bf.Find("BenchmarkDistExchange/exact", "pr3-dist-ace")
	apply, okA := bf.Find("BenchmarkDistExchange/ace_apply", "pr3-dist-ace")
	build, okB := bf.Find("BenchmarkDistExchange/ace_build", "pr3-dist-ace")
	switch {
	case !okE || !okA || !okB:
		t.Errorf("pr3-dist-ace trajectory incomplete: exact=%v apply=%v build=%v", okE, okA, okB)
	case apply.NsPerOp >= exact.NsPerOp:
		t.Errorf("recorded ACE application (%.0f ns) not cheaper than exact exchange (%.0f ns)", apply.NsPerOp, exact.NsPerOp)
	case build.NsPerOp > 2*exact.NsPerOp:
		t.Errorf("recorded ACE build (%.0f ns) more than 2x one exact application (%.0f ns)", build.NsPerOp, exact.NsPerOp)
	}

	// The multiple-time-stepping ablation (label pr4-mts): the median
	// per-step wall time of an M = 4 cycle - one ACE rebuild followed by
	// three frozen-exchange steps - must be recorded at least 2x faster
	// than the every-step exact-exchange reference. The median is the
	// pinned quantity: it prices the typical (frozen) step of a production
	// MTS run.
	every, okV := bf.Find("BenchmarkMTSStep/everystep", "pr4-mts")
	mts, okM := bf.Find("BenchmarkMTSStep/mts4", "pr4-mts")
	switch {
	case !okV || !okM:
		t.Errorf("pr4-mts trajectory incomplete: everystep=%v mts4=%v", okV, okM)
	case every.NsPerOp/mts.NsPerOp < 2:
		t.Errorf("recorded MTS median-step speedup %.2fx < 2x (%.0f -> %.0f ns/step)",
			every.NsPerOp/mts.NsPerOp, every.NsPerOp, mts.NsPerOp)
	}

	// The Ehrenfest coupled step (label pr5-ehrenfest): one op of "step"
	// is a full ion step on 2 ranks - half kick, midpoint drift +
	// geometry rebuild, one coupled hybrid PT-CN step, second drift +
	// rebuild, force build, half kick - and "forces" is the
	// Hellmann-Feynman force assembly alone. The pin is the composition
	// claim of the ion subsystem: what MD adds on top of the electronic
	// step (the force build, bounded here at half a step) must stay a
	// fraction of the step, so ion dynamics rides on the hybrid cadences
	// instead of dominating them.
	step, okS := bf.Find("BenchmarkEhrenfestStep/step", "pr5-ehrenfest")
	forces, okF := bf.Find("BenchmarkEhrenfestStep/forces", "pr5-ehrenfest")
	switch {
	case !okS || !okF:
		t.Errorf("pr5-ehrenfest trajectory incomplete: step=%v forces=%v", okS, okF)
	case forces.NsPerOp > 0.5*step.NsPerOp:
		t.Errorf("recorded force build (%.0f ns) exceeds half the coupled Ehrenfest step (%.0f ns)",
			forces.NsPerOp, step.NsPerOp)
	}

	// The dynamic work-queue schedule (label pr6-steal): one op is one
	// collective exact exchange on 8 ranks with rank 0's compute stretched
	// 2x by the injected perturbation model. The static schedules cannot
	// move the straggler's share; the steal schedule sheds it through the
	// shared chunk counter, and the pin requires the recorded steal time to
	// beat the BEST static strategy - not a cherry-picked one - by at
	// least 1.3x.
	stealRec, okT := bf.Find("BenchmarkDistExchangeStraggler/steal", "pr6-steal")
	if !okT {
		t.Errorf("pr6-steal trajectory incomplete: BenchmarkDistExchangeStraggler/steal missing")
	} else {
		best := 0.0
		bestName := ""
		for _, static := range []string{"bcast", "overlap", "roundrobin"} {
			rec, ok := bf.Find("BenchmarkDistExchangeStraggler/"+static, "pr6-steal")
			if !ok {
				t.Errorf("pr6-steal trajectory incomplete: static strategy %q missing", static)
				continue
			}
			if best == 0 || rec.NsPerOp < best {
				best, bestName = rec.NsPerOp, static
			}
		}
		if best > 0 {
			if ratio := best / stealRec.NsPerOp; ratio < 1.3 {
				t.Errorf("recorded straggler resilience %.2fx < 1.3x (best static %s %.0f ns vs steal %.0f ns)",
					ratio, bestName, best, stealRec.NsPerOp)
			}
		}
	}
	// The lane-blocked SoA kernel layer (label pr8-lanes): the headline
	// FFT/Fock hot-path benchmarks re-pointed at the slab kernels must
	// hold a >= 1.5x recorded improvement over the pr2-workspaces scalar
	// records at zero steady-state allocations. The allocs field is also a
	// real measured count now (satellite of the same PR: no record ships
	// with the -1 "not measured" sentinel for these benchmarks).
	for _, name := range []string{"BenchmarkFFTPoissonSolve", "BenchmarkRealFockApplyAllBands"} {
		base, okB := bf.Find(name, "pr2-workspaces")
		cur, okC := bf.Find(name, "pr8-lanes")
		switch {
		case !okB || !okC:
			t.Errorf("pr8-lanes trajectory incomplete for %s: pr2=%v pr8=%v", name, okB, okC)
		default:
			if ratio := base.NsPerOp / cur.NsPerOp; ratio < 1.5 {
				t.Errorf("%s: recorded SoA speedup %.2fx < 1.5x (%.0f -> %.0f ns/op)", name, ratio, base.NsPerOp, cur.NsPerOp)
			}
			if cur.AllocsPerOp != 0 {
				t.Errorf("%s: pr8-lanes recorded %.1f allocs/op, want a real measured 0", name, cur.AllocsPerOp)
			}
		}
	}

	// The unperturbed scaling curve must also be on record: the halved
	// symmetric-pair count keeps the dynamic schedule from costing anything
	// when nothing straggles (steal no slower than the overlapped broadcast
	// at every recorded rank count).
	for _, pt := range []string{"strong_r1", "strong_r2", "strong_r4", "strong_r8", "weak_r1", "weak_r2", "weak_r4", "weak_r8"} {
		ov, okO := bf.Find("BenchmarkDistExchangeScaling/"+pt+"_overlap", "pr6-steal")
		st, okS := bf.Find("BenchmarkDistExchangeScaling/"+pt+"_steal", "pr6-steal")
		switch {
		case !okO || !okS:
			t.Errorf("pr6-steal scaling record %s incomplete: overlap=%v steal=%v", pt, okO, okS)
		case st.NsPerOp > ov.NsPerOp:
			t.Errorf("%s: recorded steal (%.0f ns) slower than overlapped broadcast (%.0f ns)", pt, st.NsPerOp, ov.NsPerOp)
		}
	}

	// The flight-recorder overhead (label pr10-trace): the traced and
	// untraced arms of BenchmarkDistStep run the identical hybrid ACE
	// PT-CN step on 2 ranks - only the attached recorder differs - and
	// the recorded median step with tracing enabled must stay within 3%
	// of the untraced one. The disabled path (every site when no recorder
	// is attached) is pinned allocation-free: observability that is not
	// asked for must cost nothing.
	untraced, okU := bf.Find("BenchmarkDistStep/untraced", "pr10-trace")
	traced, okT2 := bf.Find("BenchmarkDistStep/traced", "pr10-trace")
	switch {
	case !okU || !okT2:
		t.Errorf("pr10-trace trajectory incomplete: untraced=%v traced=%v", okU, okT2)
	case traced.NsPerOp > 1.03*untraced.NsPerOp:
		t.Errorf("recorded tracing overhead %.1f%% > 3%% (%.0f -> %.0f ns/step)",
			100*(traced.NsPerOp/untraced.NsPerOp-1), untraced.NsPerOp, traced.NsPerOp)
	}
	disabled, okD := bf.Find("BenchmarkTraceDisabledPath", "pr10-trace")
	switch {
	case !okD:
		t.Errorf("pr10-trace trajectory incomplete: BenchmarkTraceDisabledPath missing")
	case disabled.AllocsPerOp != 0:
		t.Errorf("recorded disabled-path cost %.1f allocs/op, want 0", disabled.AllocsPerOp)
	}
}
