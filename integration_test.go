// Integration tests: full pipelines through the public surface of the
// library - ground state -> excitation -> propagation -> observables -
// exercising the same paths as cmd/ptdft and the examples.
package ptdft_test

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"ptdft/internal/checkpoint"
	"ptdft/internal/core"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/linalg"
	"ptdft/internal/observe"
	"ptdft/internal/potential"
	"ptdft/internal/units"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

func TestFullPipelineDeterministic(t *testing.T) {
	// Two identical serial runs must agree to near round-off: the
	// library's only nondeterminism is parallel reduction order, which is
	// confined to density accumulation and kept small by design.
	runOnce := func() float64 {
		g, psi, nb := fixtureT(t)
		h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
		kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
		sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: kick}
		p := core.NewPTCN(sys, core.DefaultPTCN())
		cur := psi
		var err error
		for i := 0; i < 2; i++ {
			cur, _, err = p.Step(cur, 1.0)
			if err != nil {
				t.Fatal(err)
			}
		}
		return observe.Energy(sys, cur, p.Time).Total()
	}
	e1 := runOnce()
	e2 := runOnce()
	if math.Abs(e1-e2) > 1e-9 {
		t.Errorf("runs differ: %.12f vs %.12f", e1, e2)
	}
}

func TestPulseAbsorbsEnergyAndExcitesCarriers(t *testing.T) {
	// The laserpulse workflow: driving at 380 nm must pump energy and
	// promote electrons out of the initial subspace.
	g, psi0, nb := fixtureT(t)
	h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
	dt := units.AttosecondsToAU(24)
	steps := 6
	pulse := laser.New380nm(0.02, dt*float64(steps)/2, dt*float64(steps)/6)
	sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: pulse}
	e0 := observe.Energy(sys, psi0, 0).Total()
	p := core.NewPTCN(sys, core.DefaultPTCN())
	cur := wavefunc.Clone(psi0)
	var err error
	for i := 0; i < steps; i++ {
		cur, _, err = p.Step(cur, dt)
		if err != nil {
			t.Fatal(err)
		}
	}
	eEnd := observe.Energy(sys, cur, p.Time).Total()
	if eEnd <= e0 {
		t.Errorf("no energy absorbed: %.8f -> %.8f", e0, eEnd)
	}
	nexc := observe.ExcitedElectrons(sys, psi0, cur)
	if nexc <= 0 || nexc > 32 {
		t.Errorf("excited electrons = %g, want in (0, 32)", nexc)
	}
}

func TestCheckpointRestartContinuesExactly(t *testing.T) {
	// 2 steps + checkpoint + 2 steps == 4 continuous steps.
	g, psi0, nb := fixtureT(t)
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	run := func(psi []complex128, t0 float64, steps int) ([]complex128, float64) {
		h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
		sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: kick}
		p := core.NewPTCN(sys, core.DefaultPTCN())
		p.Time = t0
		cur := wavefunc.Clone(psi)
		var err error
		for i := 0; i < steps; i++ {
			cur, _, err = p.Step(cur, 1.0)
			if err != nil {
				t.Fatal(err)
			}
		}
		return cur, p.Time
	}
	continuous, _ := run(psi0, 0, 4)

	half, tHalf := run(psi0, 0, 2)
	st := &checkpoint.State{Time: tHalf, Step: 2, NBands: nb, NG: g.NG, Natom: 8, Ecut: 3, Psi: half}
	path := t.TempDir() + "/mid.ckp"
	if err := checkpoint.SaveFile(path, st); err != nil {
		t.Fatal(err)
	}
	loaded, err := checkpoint.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Compatible(nb, g.NG, 8, 3, false, 0, false, false); err != nil {
		t.Fatal(err)
	}
	resumed, _ := run(loaded.Psi, loaded.Time, 2)

	rhoA := potential.Density(g, continuous, nb, 2)
	rhoB := potential.Density(g, resumed, nb, 2)
	if d := potential.DensityDiff(g, rhoA, rhoB, 32); d > 1e-9 {
		t.Errorf("restart diverged from continuous run by %g", d)
	}
}

func TestGaugeInvarianceUnderBandRotation(t *testing.T) {
	// The PT formulation's foundation: physical observables depend only on
	// the density matrix P = Psi Psi^*, which is invariant under unitary
	// rotations among occupied bands. Verify the density and the PT
	// residual norm are rotation invariant.
	g, psi, nb := fixtureT(t)
	h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
	rho := potential.Density(g, psi, nb, 2)
	h.UpdatePotential(rho)

	rng := rand.New(rand.NewSource(99))
	// Random unitary from QR-free Cholesky trick: orthonormalize a random
	// perturbation of the identity.
	u := make([]complex128, nb*nb)
	for i := 0; i < nb; i++ {
		u[i*nb+i] = 1
		for j := 0; j < nb; j++ {
			u[i*nb+j] += complex(0.2*rng.NormFloat64(), 0.2*rng.NormFloat64())
		}
	}
	rot := make([]complex128, nb*g.NG)
	linalg.ApplyMatrix(rot, psi, u, nb, nb, g.NG)
	if err := wavefunc.Orthonormalize(rot, nb, g.NG); err != nil {
		t.Fatal(err)
	}

	rhoRot := potential.Density(g, rot, nb, 2)
	var maxd float64
	for i := range rho {
		if d := math.Abs(rho[i] - rhoRot[i]); d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-9 {
		t.Errorf("density not gauge invariant: max diff %g", maxd)
	}

	// PT residual Frobenius norm is gauge covariant (R -> R U), so its
	// norm is invariant.
	resNorm := func(p []complex128) float64 {
		hp := make([]complex128, nb*g.NG)
		h.Apply(hp, p, nb)
		s := make([]complex128, nb*nb)
		linalg.Overlap(s, p, hp, nb, nb, g.NG)
		r := make([]complex128, nb*g.NG)
		linalg.ApplyMatrix(r, p, s, nb, nb, g.NG)
		var n float64
		for i := range r {
			d := hp[i] - r[i]
			n += real(d)*real(d) + imag(d)*imag(d)
		}
		return math.Sqrt(n)
	}
	n1, n2 := resNorm(psi), resNorm(rot)
	if math.Abs(n1-n2) > 1e-8*(1+n1) {
		t.Errorf("PT residual norm not gauge invariant: %g vs %g", n1, n2)
	}
}

func TestACEPropagationTracksExact(t *testing.T) {
	if testing.Short() {
		t.Skip("hybrid propagation is slow")
	}
	// One hybrid PT-CN step with the ACE-compressed exchange against the
	// exact operator: the compression is exact on the reference span, so
	// one step should agree closely.
	g, psi0, nb := fixtureT(t)
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	step := func(useACE bool) []float64 {
		h := hamiltonian.New(g, siPots(), hamiltonian.Config{Hybrid: true, UseACE: useACE, Params: xc.HSE06()})
		sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: kick}
		p := core.NewPTCN(sys, core.DefaultPTCN())
		out, _, err := p.Step(wavefunc.Clone(psi0), 1.0)
		if err != nil {
			t.Fatal(err)
		}
		return potential.Density(g, out, nb, 2)
	}
	rhoExact := step(false)
	rhoACE := step(true)
	if d := potential.DensityDiff(g, rhoExact, rhoACE, 32); d > 1e-4 {
		t.Errorf("ACE propagation deviates from exact by %g", d)
	}
}

func TestOrbitalNormsPreservedThroughPipeline(t *testing.T) {
	g, psi, nb := fixtureT(t)
	h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
	kick := &laser.Kick{K: 0.05, Pol: [3]float64{0, 0, 1}}
	sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: kick}
	p := core.NewPTCN(sys, core.DefaultPTCN())
	cur := psi
	var err error
	for i := 0; i < 3; i++ {
		cur, _, err = p.Step(cur, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < nb; b++ {
			c := cur[b*g.NG : (b+1)*g.NG]
			var n float64
			for _, v := range c {
				n += real(v)*real(v) + imag(v)*imag(v)
			}
			if math.Abs(n-1) > 1e-10 {
				t.Fatalf("band %d norm %g after step %d", b, n, i)
			}
		}
	}
}

// fixtureT adapts the benchmark fixture for tests.
func fixtureT(t *testing.T) (*grid.Grid, []complex128, int) {
	t.Helper()
	fixOnce.Do(func() {
		// Same initialization as the benchmark fixture.
		buildFixture()
	})
	return fixG, wavefunc.Clone(fixPsi), fixNB
}

// Hermiticity spot check at the integration level: the full hybrid H with
// a laser field applied must stay Hermitian.
func TestFullHybridHamiltonianHermitianWithField(t *testing.T) {
	g, psi, nb := fixtureT(t)
	h := hamiltonian.New(g, siPots(), hamiltonian.Config{Hybrid: true, Params: xc.HSE06()})
	rho := potential.Density(g, psi, nb, 2)
	h.UpdatePotential(rho)
	h.SetFockOrbitals(psi, nb)
	h.SetField([3]float64{0.01, -0.02, 0.03})
	hp := make([]complex128, nb*g.NG)
	h.Apply(hp, psi, nb)
	s := make([]complex128, nb*nb)
	linalg.Overlap(s, psi, hp, nb, nb, g.NG)
	for i := 0; i < nb; i++ {
		for j := i; j < nb; j++ {
			if cmplx.Abs(s[i*nb+j]-cmplx.Conj(s[j*nb+i])) > 1e-9 {
				t.Fatalf("H not Hermitian at (%d,%d)", i, j)
			}
		}
	}
}
