// Distributed integration tests: the internal/dist PT-CN solver against
// the serial core.PTCN reference on the shared Si8 fixture, across rank
// counts, exchange strategies and wire precisions. These are the tests the
// strategy/precision ablations of bench_test.go lean on: if the three
// communication variants did not propagate identically, their wall-clock
// comparison would be meaningless.
package ptdft_test

import (
	"math"
	"testing"

	"ptdft/internal/core"
	"ptdft/internal/dist"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/mpi"
	"ptdft/internal/observe"
	"ptdft/internal/potential"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

// propagate runs `steps` distributed PT-CN steps on `ranks` ranks and
// returns the gathered final orbitals, the final energy breakdown total
// and the final current.
func propagate(t *testing.T, g *grid.Grid, psi0 []complex128, nb int, hybrid bool, ranks, steps int, dt float64, opt dist.ExchangeOptions) (psi []complex128, energy float64, current [3]float64) {
	t.Helper()
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	psi = make([]complex128, nb*g.NG)
	mpi.Run(ranks, func(c *mpi.Comm) {
		d, err := dist.NewCtx(c, g, nb, 2)
		if err != nil {
			t.Error(err)
			return
		}
		h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
		s := dist.NewPTCNSolver(d, h, xc.HSE06(), hybrid, kick, core.DefaultPTCN(), opt)
		lo, hi := d.BandRange(c.Rank())
		local := wavefunc.Clone(psi0[lo*g.NG : hi*g.NG])
		for i := 0; i < steps; i++ {
			local, _, err = s.Step(local, dt)
			if err != nil {
				t.Errorf("rank %d step %d: %v", c.Rank(), i, err)
				return
			}
		}
		eb := s.TotalEnergy(local, s.Time)
		j := s.Current(local)
		full := d.Gather(local)
		if c.Rank() == 0 {
			copy(psi, full)
			energy = eb.Total()
			current = j
		}
	})
	return psi, energy, current
}

// TestDistributedSemilocalMatchesSerial propagates the semi-local system
// distributed over several rank counts and compares density and energy
// against the serial core.PTCN propagator.
func TestDistributedSemilocalMatchesSerial(t *testing.T) {
	g, psi0, nb := fixtureT(t)
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
	sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: kick}
	p := core.NewPTCN(sys, core.DefaultPTCN())
	ref := wavefunc.Clone(psi0)
	var err error
	const steps, dt = 2, 1.0
	for i := 0; i < steps; i++ {
		if ref, _, err = p.Step(ref, dt); err != nil {
			t.Fatal(err)
		}
	}
	refRho := potential.Density(g, ref, nb, 2)
	refE := observe.Energy(sys, ref, p.Time).Total()
	refJ := observe.Current(sys, ref)

	for _, ranks := range []int{2, 3, 4} {
		got, e, j := propagate(t, g, psi0, nb, false, ranks, steps, dt, dist.ExchangeOptions{})
		rho := potential.Density(g, got, nb, 2)
		if d := potential.DensityDiff(g, refRho, rho, 32); d > 1e-7 {
			t.Errorf("ranks=%d: density differs from serial by %g", ranks, d)
		}
		if d := math.Abs(e - refE); d > 1e-7 {
			t.Errorf("ranks=%d: energy %.10f vs serial %.10f", ranks, e, refE)
		}
		if d := math.Abs(j[2] - refJ[2]); d > 1e-7 {
			t.Errorf("ranks=%d: current %g vs serial %g", ranks, j[2], refJ[2])
		}
		// The physical state must match band-subspace-wise, not just in
		// integrated observables.
		if f := wavefunc.SubspaceFidelity(ref, got, nb, g.NG); math.Abs(f-1) > 1e-8 {
			t.Errorf("ranks=%d: subspace fidelity %g, want 1", ranks, f)
		}
	}
}

// TestDistributedStrategiesAgree runs one hybrid PT-CN step under all
// three exchange communication strategies: they ship identical reference
// data, so the propagation must agree to double-precision accumulation
// round-off, and the single-precision wire format within a looser bound.
func TestDistributedStrategiesAgree(t *testing.T) {
	g, psi0, nb := fixtureT(t)
	const steps, dt = 1, 1.0
	base, eBase, _ := propagate(t, g, psi0, nb, true, 4, steps, dt, dist.ExchangeOptions{Strategy: dist.BcastSequential})

	for _, tc := range []struct {
		name string
		opt  dist.ExchangeOptions
		tol  float64
	}{
		{"overlap", dist.ExchangeOptions{Strategy: dist.BcastOverlapped}, 1e-9},
		{"roundrobin", dist.ExchangeOptions{Strategy: dist.RoundRobin}, 1e-9},
		{"bcast_singleprec", dist.ExchangeOptions{Strategy: dist.BcastSequential, SinglePrecision: true}, 1e-4},
		{"overlap_singleprec", dist.ExchangeOptions{Strategy: dist.BcastOverlapped, SinglePrecision: true}, 1e-4},
	} {
		got, e, _ := propagate(t, g, psi0, nb, true, 4, steps, dt, tc.opt)
		if d := wavefunc.MaxDiff(base, got); d > tc.tol {
			t.Errorf("%s: orbitals differ from bcast by %g (tol %g)", tc.name, d, tc.tol)
		}
		if d := math.Abs(e - eBase); d > tc.tol {
			t.Errorf("%s: energy differs from bcast by %g (tol %g)", tc.name, d, tc.tol)
		}
	}
}

// TestDistributedACEMatchesExactStep: with the per-refresh rebuild cadence
// the ACE compression is applied only to its own reference span, where it
// reproduces the exact operator exactly - so one hybrid PT-CN step through
// the distributed ACE must agree with the exact-exchange step to round-off
// (1e-10) for every communication strategy and rank count. This is the
// acceptance pin for the ACE data path: projections, Cholesky, slab
// triangular solve and both transposes all sit inside the compared step.
func TestDistributedACEMatchesExactStep(t *testing.T) {
	g, psi0, nb := fixtureT(t)
	const steps, dt = 1, 1.0
	for _, ranks := range []int{1, 2, 4} {
		for _, strat := range []dist.ExchangeStrategy{dist.BcastSequential, dist.BcastOverlapped, dist.RoundRobin} {
			exact, eExact, _ := propagate(t, g, psi0, nb, true, ranks, steps, dt, dist.ExchangeOptions{Strategy: strat})
			ace, eACE, _ := propagate(t, g, psi0, nb, true, ranks, steps, dt, dist.ExchangeOptions{Strategy: strat, ACE: true})
			if d := wavefunc.MaxDiff(exact, ace); d > 1e-10 {
				t.Errorf("ranks=%d %v: ACE step differs from exact exchange by %g (tol 1e-10)", ranks, strat, d)
			}
			if d := math.Abs(eExact - eACE); d > 1e-10 {
				t.Errorf("ranks=%d %v: ACE energy differs from exact by %g (tol 1e-10)", ranks, strat, d)
			}
		}
	}
}

// TestDistributedACEHoldCadence: the Jia & Lin cadence builds Xi from
// Psi_n once per step and holds it through the inner SCF, trading the
// per-iteration exchange construction for a controlled compression error
// on the iterates that leave the reference span. One step must converge
// and stay physically close to the exact propagation - the accuracy side
// of the PT-vs-PT+ACE trade-off the ablation benchmark times.
func TestDistributedACEHoldCadence(t *testing.T) {
	g, psi0, nb := fixtureT(t)
	const steps, dt = 1, 1.0
	exact, eExact, _ := propagate(t, g, psi0, nb, true, 4, steps, dt, dist.ExchangeOptions{Strategy: dist.BcastOverlapped})
	held, eHeld, _ := propagate(t, g, psi0, nb, true, 4, steps, dt,
		dist.ExchangeOptions{Strategy: dist.BcastOverlapped, ACE: true, ACEHoldThroughSCF: true})
	rhoExact := potential.Density(g, exact, nb, 2)
	rhoHeld := potential.Density(g, held, nb, 2)
	// The compression error scales with how far the inner iterates leave
	// span(Psi_n), i.e. with dt x kick; at this deliberately coarse test
	// discretization (dt = 1 au, A = 0.02) it measures ~5e-4.
	if d := potential.DensityDiff(g, rhoExact, rhoHeld, 32); d > 2e-3 {
		t.Errorf("held-ACE density deviates from exact by %g", d)
	}
	if d := math.Abs(eExact - eHeld); d > 2e-3 {
		t.Errorf("held-ACE energy deviates from exact by %g", d)
	}
}

// TestDistributedMTSEqualsHoldAtM1: -mts 1 is a strict generalization
// claim, so the M = 1 cycle must reproduce the -acehold trajectory bit for
// bit - every step is an outer step, the rebuild happens at the same call
// site from the same Psi_n, and nothing else differs.
func TestDistributedMTSEqualsHoldAtM1(t *testing.T) {
	g, psi0, nb := fixtureT(t)
	const steps, dt = 2, 1.0
	hold, eHold, _ := propagate(t, g, psi0, nb, true, 2, steps, dt,
		dist.ExchangeOptions{Strategy: dist.BcastOverlapped, ACE: true, ACEHoldThroughSCF: true})
	mts, eMTS, _ := propagate(t, g, psi0, nb, true, 2, steps, dt,
		dist.ExchangeOptions{Strategy: dist.BcastOverlapped, ACE: true, MTSPeriod: 1})
	if d := wavefunc.MaxDiff(hold, mts); d != 0 {
		t.Errorf("-mts 1 differs from -acehold by %g, want bit-identical", d)
	}
	if eHold != eMTS {
		t.Errorf("-mts 1 energy %.15f differs from -acehold %.15f, want bit-identical", eMTS, eHold)
	}
}

// TestDistributedMTSAccuracy bounds the physics cost of multiple time
// stepping: an M-step cycle propagates the M-1 intermediate steps with the
// exchange operator frozen at the last outer step, so the deviation from
// the every-step hybrid reference must stay bounded - and grow with M. The
// tolerances are pinned at the test discretization (dt = 1 au, A = 0.02,
// Ecut = 3): the freeze error enters through dt x kick exactly like the
// held-ACE compression error (~5e-4 per step), accumulated over the cycle.
func TestDistributedMTSAccuracy(t *testing.T) {
	g, psi0, nb := fixtureT(t)
	const steps, dt = 4, 1.0
	ref, eRef, jRef := propagate(t, g, psi0, nb, true, 4, steps, dt,
		dist.ExchangeOptions{Strategy: dist.BcastOverlapped})
	rhoRef := potential.Density(g, ref, nb, 2)
	for _, tc := range []struct {
		m   int
		ace bool
		tol float64
	}{
		{2, true, 4e-3},
		{4, true, 8e-3},
		{4, false, 8e-3}, // frozen exact exchange: same cadence, no compression
	} {
		opt := dist.ExchangeOptions{Strategy: dist.BcastOverlapped, ACE: tc.ace, MTSPeriod: tc.m}
		got, e, j := propagate(t, g, psi0, nb, true, 4, steps, dt, opt)
		rho := potential.Density(g, got, nb, 2)
		if d := potential.DensityDiff(g, rhoRef, rho, 32); d > tc.tol {
			t.Errorf("M=%d ace=%v: density deviates from every-step hybrid by %g (tol %g)", tc.m, tc.ace, d, tc.tol)
		}
		if d := math.Abs(e - eRef); d > tc.tol {
			t.Errorf("M=%d ace=%v: energy deviates by %g (tol %g)", tc.m, tc.ace, d, tc.tol)
		}
		// The dipole observable of the kick response: the induced current.
		if d := math.Abs(j[2] - jRef[2]); d > tc.tol {
			t.Errorf("M=%d ace=%v: current deviates by %g (tol %g)", tc.m, tc.ace, d, tc.tol)
		}
	}
}

// TestDistributedMTSCheckpointResume: interrupting an M = 4 cycle at step
// k and resuming from the saved state - cumulative phase plus the frozen
// exchange reference of the last outer step - must reproduce the
// uninterrupted trajectory to 1e-10. This is the contract that makes MTS
// production-safe: a job-allocation boundary cannot silently refresh the
// exchange early.
func TestDistributedMTSCheckpointResume(t *testing.T) {
	g, psi0, nb := fixtureT(t)
	const m, dt, ranks = 4, 1.0, 2
	opt := dist.ExchangeOptions{Strategy: dist.BcastOverlapped, ACE: true, MTSPeriod: m}
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}

	// Uninterrupted: 4 steps (one full cycle).
	full, eFull, _ := propagate(t, g, psi0, nb, true, ranks, 4, dt, opt)

	// Interrupted at k = 2 (mid-cycle): run 2 steps, capture the state a
	// checkpoint would carry, then resume a fresh solver from it.
	type saved struct {
		psi, phiRef []complex128
		phase       int
		time        float64
	}
	var ckp saved
	mpi.Run(ranks, func(c *mpi.Comm) {
		d, err := dist.NewCtx(c, g, nb, 2)
		if err != nil {
			t.Error(err)
			return
		}
		h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
		s := dist.NewPTCNSolver(d, h, xc.HSE06(), true, kick, core.DefaultPTCN(), opt)
		lo, hi := d.BandRange(c.Rank())
		local := wavefunc.Clone(psi0[lo*g.NG : hi*g.NG])
		for i := 0; i < 2; i++ {
			if local, _, err = s.Step(local, dt); err != nil {
				t.Errorf("rank %d step %d: %v", c.Rank(), i, err)
				return
			}
		}
		psi := d.Gather(local)
		ref := d.Gather(s.MTSRef())
		if c.Rank() == 0 {
			ckp = saved{
				psi:    wavefunc.Clone(psi),
				phiRef: wavefunc.Clone(ref),
				phase:  s.MTSPhase(),
				time:   s.Time,
			}
		}
	})
	if ckp.phase != 2 {
		t.Fatalf("after 2 of %d steps the cycle phase is %d, want 2", m, ckp.phase)
	}

	resumed := make([]complex128, nb*g.NG)
	var eResumed float64
	mpi.Run(ranks, func(c *mpi.Comm) {
		d, err := dist.NewCtx(c, g, nb, 2)
		if err != nil {
			t.Error(err)
			return
		}
		h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
		s := dist.NewPTCNSolver(d, h, xc.HSE06(), true, kick, core.DefaultPTCN(), opt)
		s.Time = ckp.time
		lo, hi := d.BandRange(c.Rank())
		if err := s.ResumeMTS(ckp.phase, ckp.phiRef[lo*g.NG:hi*g.NG]); err != nil {
			t.Error(err)
			return
		}
		local := wavefunc.Clone(ckp.psi[lo*g.NG : hi*g.NG])
		for i := 2; i < 4; i++ {
			if local, _, err = s.Step(local, dt); err != nil {
				t.Errorf("rank %d step %d: %v", c.Rank(), i, err)
				return
			}
		}
		eb := s.TotalEnergy(local, s.Time)
		psi := d.Gather(local)
		if c.Rank() == 0 {
			copy(resumed, psi)
			eResumed = eb.Total()
		}
	})
	if d := wavefunc.MaxDiff(full, resumed); d > 1e-10 {
		t.Errorf("resumed mid-MTS-cycle trajectory deviates from uninterrupted by %g (tol 1e-10)", d)
	}
	if d := math.Abs(eFull - eResumed); d > 1e-10 {
		t.Errorf("resumed energy deviates by %g (tol 1e-10)", d)
	}

	// Resuming mid-cycle without the frozen reference must fail loudly on
	// every rank - never silently refresh the exchange early.
	mpi.Run(ranks, func(c *mpi.Comm) {
		d, err := dist.NewCtx(c, g, nb, 2)
		if err != nil {
			t.Error(err)
			return
		}
		h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
		s := dist.NewPTCNSolver(d, h, xc.HSE06(), true, kick, core.DefaultPTCN(), opt)
		if err := s.ResumeMTS(2, nil); err == nil {
			t.Errorf("rank %d: mid-cycle resume without frozen reference accepted", c.Rank())
		}
	})
}

// TestDistributedHybridMatchesSerial checks the distributed hybrid path
// against the serial hybrid propagator: same screened exchange, same
// exchange attenuation of the semi-local functional.
func TestDistributedHybridMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("hybrid propagation is slow")
	}
	g, psi0, nb := fixtureT(t)
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	h := hamiltonian.New(g, siPots(), hamiltonian.Config{Hybrid: true, Params: xc.HSE06()})
	sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: kick}
	p := core.NewPTCN(sys, core.DefaultPTCN())
	ref, _, err := p.Step(wavefunc.Clone(psi0), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	refE := observe.Energy(sys, ref, p.Time).Total()

	got, e, _ := propagate(t, g, psi0, nb, true, 4, 1, 1.0, dist.ExchangeOptions{Strategy: dist.BcastOverlapped})
	refRho := potential.Density(g, ref, nb, 2)
	rho := potential.Density(g, got, nb, 2)
	if d := potential.DensityDiff(g, refRho, rho, 32); d > 1e-6 {
		t.Errorf("hybrid density differs from serial by %g", d)
	}
	if d := math.Abs(e - refE); d > 1e-6 {
		t.Errorf("hybrid energy %.10f vs serial %.10f", e, refE)
	}
}

// TestDistributedOrbitalNormsPreserved: the distributed Trsm
// orthonormalization must leave every gathered band normalized.
func TestDistributedOrbitalNormsPreserved(t *testing.T) {
	g, psi0, nb := fixtureT(t)
	got, _, _ := propagate(t, g, psi0, nb, false, 4, 2, 1.5, dist.ExchangeOptions{})
	if e := wavefunc.OrthonormalityError(got, nb, g.NG); e > 1e-10 {
		t.Errorf("gathered band set orthonormality error %g", e)
	}
}
