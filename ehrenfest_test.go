// Ehrenfest integration tests: the coupled ion + PT-CN dynamics of
// internal/ion at the full-pipeline level - rank invariance of the
// trajectory, conservation of the total energy, and bit-compatible
// checkpoint-v3 resume - plus the no-laser electronic energy-conservation
// guard the ion work leans on.
package ptdft_test

import (
	"math"
	"path/filepath"
	"sync"
	"testing"

	"ptdft/internal/checkpoint"
	"ptdft/internal/core"
	"ptdft/internal/dist"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/ion"
	"ptdft/internal/lattice"
	"ptdft/internal/mpi"
	"ptdft/internal/observe"
	"ptdft/internal/scf"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

// The Ehrenfest fixture: Si8 with atom 0 displaced along the (1,0,0)
// axis, hybrid functional, MD (gradient-capable) projectors. The ground
// state is converged once at the displaced geometry; every propagation
// clones the pristine cell so runs never share mutable geometry.
var (
	mdOnce sync.Once
	mdCell *lattice.Cell // pristine displaced geometry (never mutated)
	mdPsi  []complex128
	mdNB   int
)

const mdDisplacement = 0.15

func mdFixture(t *testing.T) (*lattice.Cell, []complex128, int) {
	t.Helper()
	mdOnce.Do(func() {
		cell := lattice.MustSiliconSupercell(1, 1, 1)
		if err := cell.DisplaceAtom(0, [3]float64{mdDisplacement, 0, 0}); err != nil {
			panic(err)
		}
		g := grid.MustNew(cell, 3)
		h := hamiltonian.New(g, siPots(), hamiltonian.Config{Hybrid: true, Params: xc.HSE06(), IonDynamics: true})
		res, err := scf.GroundState(g, h, cell.NumBands(), scf.Defaults())
		if err != nil {
			panic(err)
		}
		mdCell = cell
		mdPsi = res.Psi
		mdNB = cell.NumBands()
	})
	return mdCell.Clone(), wavefunc.Clone(mdPsi), mdNB
}

// ehrenfestSerial propagates `steps` ion steps serially and returns the
// per-step total energies, the final positions and velocities, and the
// final orbitals.
func ehrenfestSerial(t *testing.T, cell *lattice.Cell, psi0 []complex128, nb int, hybrid bool, steps int, dtIon float64, k int) (energies []float64, pos, vel [][3]float64, psi []complex128) {
	t.Helper()
	g := grid.MustNew(cell, 3)
	h := hamiltonian.New(g, siPots(), hamiltonian.Config{Hybrid: hybrid, Params: xc.HSE06(), IonDynamics: true})
	sys := &core.System{G: g, H: h, NB: nb, Occ: 2}
	pt := core.NewPTCN(sys, core.DefaultPTCN())
	se := &ion.SerialElectrons{P: pt, Psi: wavefunc.Clone(psi0), Pots: siPots()}
	v, err := ion.NewVerlet(cell, se, dtIon, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		if err := v.Step(); err != nil {
			t.Fatalf("ion step %d: %v", i, err)
		}
		e, err := v.TotalEnergy()
		if err != nil {
			t.Fatal(err)
		}
		energies = append(energies, e)
	}
	return energies, cell.Positions(), append([][3]float64(nil), v.Vel...), se.Psi
}

// ehrenfestDistributed propagates the same trajectory over `ranks` ranks,
// each rank on its own cell clone, and returns rank 0's view.
func ehrenfestDistributed(t *testing.T, cell *lattice.Cell, psi0 []complex128, nb int, hybrid bool, ranks, steps int, dtIon float64, k int) (energies []float64, pos, vel [][3]float64, psi []complex128) {
	t.Helper()
	energies = make([]float64, steps)
	psi = make([]complex128, len(psi0))
	mpi.Run(ranks, func(c *mpi.Comm) {
		cellR := cell.Clone()
		g := grid.MustNew(cellR, 3)
		d, err := dist.NewCtx(c, g, nb, 2)
		if err != nil {
			t.Error(err)
			return
		}
		h := hamiltonian.New(g, siPots(), hamiltonian.Config{IonDynamics: true})
		s := dist.NewPTCNSolver(d, h, xc.HSE06(), hybrid, nil, core.DefaultPTCN(), dist.ExchangeOptions{Strategy: dist.BcastOverlapped})
		lo, hi := d.BandRange(c.Rank())
		de := &ion.DistElectrons{S: s, Local: wavefunc.Clone(psi0[lo*g.NG : hi*g.NG]), Pots: siPots()}
		v, err := ion.NewVerlet(cellR, de, dtIon, k)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < steps; i++ {
			if err := v.Step(); err != nil {
				t.Errorf("rank %d ion step %d: %v", c.Rank(), i, err)
				return
			}
			e, err := v.TotalEnergy()
			if err != nil {
				t.Error(err)
				return
			}
			if c.Rank() == 0 {
				energies[i] = e
			}
		}
		full := d.Gather(de.Local)
		if c.Rank() == 0 {
			copy(psi, full)
			pos = cellR.Positions()
			vel = append([][3]float64(nil), v.Vel...)
		}
	})
	return energies, pos, vel, psi
}

// TestEhrenfestRankInvariant is the acceptance pin: the hybrid Ehrenfest
// trajectory must be identical (1e-8) between the serial driver and 2- and
// 4-rank distributed runs - positions, velocities and per-step total
// energies. The distributed force assembly allreduces in deterministic
// rank order, so the only differences are reduction-order round-off.
func TestEhrenfestRankInvariant(t *testing.T) {
	cell, psi0, nb := mdFixture(t)
	const steps, dtIon, k = 3, 2.0, 2
	eS, posS, velS, _ := ehrenfestSerial(t, cell, psi0, nb, true, steps, dtIon, k)
	for _, ranks := range []int{2, 4} {
		eD, posD, velD, _ := ehrenfestDistributed(t, mdCell.Clone(), psi0, nb, true, ranks, steps, dtIon, k)
		for i := range eS {
			if d := math.Abs(eS[i] - eD[i]); d > 1e-8 {
				t.Errorf("ranks=%d: step %d total energy differs by %g (serial %.12f, dist %.12f)", ranks, i, d, eS[i], eD[i])
			}
		}
		for a := range posS {
			for d := 0; d < 3; d++ {
				if diff := math.Abs(posS[a][d] - posD[a][d]); diff > 1e-8 {
					t.Errorf("ranks=%d: atom %d position[%d] differs by %g", ranks, a, d, diff)
				}
				if diff := math.Abs(velS[a][d] - velD[a][d]); diff > 1e-10 {
					t.Errorf("ranks=%d: atom %d velocity[%d] differs by %g", ranks, a, d, diff)
				}
			}
		}
	}
}

// TestEhrenfestEnergyConservation50Steps is the acceptance pin for the
// integrator: a 50-ion-step hybrid Si8 trajectory (displaced atom, no
// laser) must conserve the total energy - electronic + ion kinetic +
// ion-ion - to 1e-4 Ha, and the released atom must actually move (the
// oscillation the examples/ehrenfest workload demonstrates).
func TestEhrenfestEnergyConservation50Steps(t *testing.T) {
	if testing.Short() {
		t.Skip("50 hybrid ion steps are slow")
	}
	cell, psi0, nb := mdFixture(t)
	const steps, dtIon, k = 50, 2.0, 1
	energies, pos, _, _ := ehrenfestSerial(t, cell, psi0, nb, true, steps, dtIon, k)
	var drift float64
	for _, e := range energies {
		if d := math.Abs(e - energies[0]); d > drift {
			drift = d
		}
	}
	if drift > 1e-4 {
		t.Errorf("total-energy drift %g Ha over %d ion steps (tol 1e-4)", drift, steps)
	}
	// The displaced atom was released with a restoring force along -x: it
	// must have moved from its starting point.
	start := mdCell.Positions()[0]
	if moved := math.Abs(pos[0][0] - start[0]); moved < 1e-4 {
		t.Errorf("displaced atom did not move (|dx| = %g)", moved)
	}
}

// TestEhrenfestCheckpointResume: interrupting a distributed hybrid MTS
// trajectory mid-run, writing a v3 checkpoint (orbitals + MTS cadence +
// ion positions/velocities/force cache) through the real file format, and
// resuming must reproduce the uninterrupted trajectory to 1e-10.
func TestEhrenfestCheckpointResume(t *testing.T) {
	cell, psi0, nb := mdFixture(t)
	const ranks, dtIon, k, mts = 2, 2.0, 2, 2

	type result struct {
		energies []float64
		pos      [][3]float64
		psi      []complex128
	}
	runSpan := func(cellR *lattice.Cell, start []complex128, t0 float64, loaded *checkpoint.State, steps int, save bool) (result, *checkpoint.State) {
		var res result
		res.energies = make([]float64, steps)
		res.psi = make([]complex128, len(start))
		var saved *checkpoint.State
		mpi.Run(ranks, func(c *mpi.Comm) {
			cl := cellR.Clone()
			g := grid.MustNew(cl, 3)
			d, err := dist.NewCtx(c, g, nb, 2)
			if err != nil {
				t.Error(err)
				return
			}
			h := hamiltonian.New(g, siPots(), hamiltonian.Config{IonDynamics: true})
			opt := dist.ExchangeOptions{Strategy: dist.BcastOverlapped, ACE: true, MTSPeriod: mts}
			s := dist.NewPTCNSolver(d, h, xc.HSE06(), true, nil, core.DefaultPTCN(), opt)
			s.Time = t0
			lo, hi := d.BandRange(c.Rank())
			de := &ion.DistElectrons{S: s, Local: wavefunc.Clone(start[lo*g.NG : hi*g.NG]), Pots: siPots()}
			if loaded != nil {
				var ref []complex128
				if loaded.PhiRef != nil {
					ref = loaded.PhiRef[lo*g.NG : hi*g.NG]
				}
				if err := s.ResumeMTS(int(loaded.MTSPhase), ref); err != nil {
					t.Error(err)
					return
				}
			}
			v, err := ion.NewVerlet(cl, de, dtIon, k)
			if err != nil {
				t.Error(err)
				return
			}
			if loaded != nil {
				if err := v.Resume(loaded.IonPos, loaded.IonVel, loaded.IonForce, int(loaded.IonSteps)); err != nil {
					t.Error(err)
					return
				}
			}
			for i := 0; i < steps; i++ {
				if err := v.Step(); err != nil {
					t.Errorf("rank %d ion step %d: %v", c.Rank(), i, err)
					return
				}
				e, err := v.TotalEnergy()
				if err != nil {
					t.Error(err)
					return
				}
				if c.Rank() == 0 {
					res.energies[i] = e
				}
			}
			full := d.Gather(de.Local)
			var phiRef []complex128
			phase := s.MTSPhase()
			if save && phase != 0 {
				phiRef = d.Gather(s.MTSRef())
			}
			if c.Rank() == 0 {
				copy(res.psi, full)
				res.pos = cl.Positions()
				if save {
					saved = &checkpoint.State{
						Time: s.Time, Step: int64(steps * k), NBands: nb, NG: g.NG,
						Natom: int64(cl.NumAtoms()), Ecut: 3, Hybrid: true, Psi: wavefunc.Clone(full),
						MTSPeriod: mts, MTSPhase: int64(phase), MTSACE: true, PhiRef: wavefunc.Clone(phiRef),
						IonSteps: int64(v.Steps), IonPos: cl.Positions(),
						IonVel: append([][3]float64(nil), v.Vel...), IonForce: append([][3]float64(nil), v.F...),
					}
				}
			}
		})
		return res, saved
	}

	full, _ := runSpan(cell, psi0, 0, nil, 4, false)

	half, saved := runSpan(mdCell.Clone(), psi0, 0, nil, 2, true)
	_ = half
	if saved == nil {
		t.Fatal("no checkpoint captured")
	}
	// Through the real on-disk format.
	path := filepath.Join(t.TempDir(), "ehrenfest.ckp")
	if err := checkpoint.SaveFile(path, saved); err != nil {
		t.Fatal(err)
	}
	loaded, err := checkpoint.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.HasIons() {
		t.Fatal("checkpoint lost its ion section")
	}
	if err := loaded.Compatible(nb, loaded.NG, 8, 3, true, mts, true, true); err != nil {
		t.Fatal(err)
	}
	resumed, _ := runSpan(mdCell.Clone(), loaded.Psi, loaded.Time, loaded, 2, false)

	if d := wavefunc.MaxDiff(full.psi, resumed.psi); d > 1e-10 {
		t.Errorf("resumed orbitals deviate from uninterrupted by %g (tol 1e-10)", d)
	}
	for a := range full.pos {
		for d := 0; d < 3; d++ {
			if diff := math.Abs(full.pos[a][d] - resumed.pos[a][d]); diff > 1e-10 {
				t.Errorf("atom %d position[%d] deviates by %g (tol 1e-10)", a, d, diff)
			}
		}
	}
	if d := math.Abs(full.energies[3] - resumed.energies[1]); d > 1e-10 {
		t.Errorf("final total energy deviates by %g (tol 1e-10)", d)
	}
}

// TestPTCNNoLaserEnergyConservation pins the electronic energy
// conservation the Ehrenfest work leans on: with no field and frozen
// ions, a long hybrid PT-CN run from the hybrid ground state must hold
// its total energy - any drift here (orthogonalization loss, exchange
// refresh bugs, SCF truncation bias) would masquerade as ion heating in
// an Ehrenfest trajectory. Serial and 2-rank distributed runs are both
// pinned over 50 steps.
func TestPTCNNoLaserEnergyConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("50 hybrid steps are slow")
	}
	cell, psi0, nb := mdFixture(t)
	g := grid.MustNew(cell, 3)
	const steps, dt = 50, 1.0
	const tol = 1e-5

	// Serial.
	h := hamiltonian.New(g, siPots(), hamiltonian.Config{Hybrid: true, Params: xc.HSE06(), IonDynamics: true})
	sys := &core.System{G: g, H: h, NB: nb, Occ: 2}
	pt := core.NewPTCN(sys, core.DefaultPTCN())
	psi := wavefunc.Clone(psi0)
	e0 := observe.Energy(sys, psi, 0).Total()
	var err error
	var drift float64
	for i := 0; i < steps; i++ {
		if psi, _, err = pt.Step(psi, dt); err != nil {
			t.Fatalf("serial step %d: %v", i, err)
		}
		if d := math.Abs(observe.Energy(sys, psi, pt.Time).Total() - e0); d > drift {
			drift = d
		}
	}
	if drift > tol {
		t.Errorf("serial: energy drift %g Ha over %d no-laser hybrid steps (tol %g)", drift, steps, tol)
	}

	// 2-rank distributed, same system and cadence.
	var distDrift float64
	mpi.Run(2, func(c *mpi.Comm) {
		d, err := dist.NewCtx(c, g, nb, 2)
		if err != nil {
			t.Error(err)
			return
		}
		hD := hamiltonian.New(g, siPots(), hamiltonian.Config{IonDynamics: true})
		s := dist.NewPTCNSolver(d, hD, xc.HSE06(), true, nil, core.DefaultPTCN(), dist.ExchangeOptions{Strategy: dist.BcastOverlapped})
		lo, hi := d.BandRange(c.Rank())
		local := wavefunc.Clone(psi0[lo*g.NG : hi*g.NG])
		e0 := s.TotalEnergy(local, 0).Total()
		for i := 0; i < steps; i++ {
			if local, _, err = s.Step(local, dt); err != nil {
				t.Errorf("rank %d step %d: %v", c.Rank(), i, err)
				return
			}
			e := s.TotalEnergy(local, s.Time).Total()
			if dd := math.Abs(e - e0); c.Rank() == 0 && dd > distDrift {
				distDrift = dd
			}
		}
	})
	if distDrift > tol {
		t.Errorf("2 ranks: energy drift %g Ha over %d no-laser hybrid steps (tol %g)", distDrift, steps, tol)
	}
}
