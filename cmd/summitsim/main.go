// Command summitsim regenerates every table and figure of the paper's
// evaluation (section 6-7) from the calibrated Summit performance model:
//
//	summitsim -experiment table1    # component wall-clock table
//	summitsim -experiment table2    # MPI / memcpy / compute breakdown
//	summitsim -experiment fig3      # Fock optimization stages
//	summitsim -experiment fig6      # RK4 vs PT-CN
//	summitsim -experiment fig7      # strong scaling (total + components)
//	summitsim -experiment fig8      # weak scaling 48..1536 atoms
//	summitsim -experiment fig9      # per-SCF component times
//	summitsim -experiment fig10     # communication breakdown
//	summitsim -experiment power     # section 6 power comparison
//	summitsim -experiment flops     # section 7 FLOP/efficiency analysis
//	summitsim -experiment all
//
// Output is aligned text matching the rows/series the paper reports, for
// side-by-side comparison in EXPERIMENTS.md.
//
// Two experiments are measured, not modeled, and run only when named
// (they take seconds and are not part of `-experiment all`):
// `-experiment sched` runs the real distributed exchange (internal/dist
// over the goroutine MPI runtime) under injected per-rank slowdowns and
// NIC delay, comparing the static schedules against the dynamic work
// queue; `-experiment faults` runs a real propagation under the resilient
// supervisor with injected rank crashes, sweeping crash step x checkpoint
// cadence to measure recovery overhead.
package main

import (
	"flag"
	"fmt"
	"os"

	"ptdft/internal/perf"
	"ptdft/internal/trace"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to regenerate (table1,table2,fig3,fig6,fig7,fig8,fig9,fig10,power,flops,all; sched and faults measure the real distributed code and run only when named)")
	natom := flag.Int("natoms", 1536, "silicon system size (atoms)")
	stragglerFactor := flag.Float64("straggler", 2.0, "compute slowdown of rank 0 in the sched experiment's straggler rows")
	traceFile := flag.String("tracefile", "", "with -experiment sched or faults: record the measured runs' per-rank span timeline and write it here as Chrome trace-event JSON")
	flag.Parse()

	m := perf.New(perf.SiliconSystem(*natom))
	run := func(name string) bool { return *experiment == name || *experiment == "all" }
	any := false
	if run("table1") {
		table1(m)
		any = true
	}
	if run("table2") {
		table2(m)
		any = true
	}
	if run("fig3") {
		fig3(m)
		any = true
	}
	if run("fig6") {
		fig6(m)
		any = true
	}
	if run("fig7") {
		fig7(m)
		any = true
	}
	if run("fig8") {
		fig8()
		any = true
	}
	if run("fig9") {
		fig9(m)
		any = true
	}
	if run("fig10") {
		fig10(m)
		any = true
	}
	if run("power") {
		power(m)
		any = true
	}
	if run("flops") {
		flops(m)
		any = true
	}
	// Measured, not modeled: only run when asked for by name. These are
	// the experiments a timeline dump makes sense for - they drive the
	// real goroutine-MPI runtime, so -tracefile captures every world the
	// experiment launched on shared per-rank tracks.
	var rec *trace.Recorder
	if *traceFile != "" && (*experiment == "sched" || *experiment == "faults") {
		rec = trace.NewRecorder()
	}
	if *experiment == "sched" {
		sched(*stragglerFactor, rec)
		any = true
	}
	if *experiment == "faults" {
		faults(rec)
		any = true
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	if rec != nil {
		if err := dumpTrace(rec, *traceFile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (Chrome trace-event JSON; open in chrome://tracing or Perfetto)\n", *traceFile)
	}
}

// dumpTrace writes the recorder's timeline as Chrome trace-event JSON.
func dumpTrace(rec *trace.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = rec.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func header(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}

func table1(m *perf.Model) {
	header("Table 1: wall clock of computational components, Si" + itoa(m.Sys.Natom))
	fmt.Printf("%-36s", "Number of GPUs")
	for _, p := range perf.GPUCounts {
		fmt.Printf("%9d", p)
	}
	fmt.Println()
	rows := []struct {
		name string
		get  func(b perf.SCFBreakdown) float64
	}{
		{"Fock exchange operator MPI", func(b perf.SCFBreakdown) float64 { return b.FockMPI }},
		{"Fock exchange operator computation", func(b perf.SCFBreakdown) float64 { return b.FockComp }},
		{"Fock exchange operator total time", func(b perf.SCFBreakdown) float64 { return b.FockTotal }},
		{"Local and semi-local part", func(b perf.SCFBreakdown) float64 { return b.LocalPseudo }},
		{"HPsi total time", func(b perf.SCFBreakdown) float64 { return b.HPsiTotal }},
		{"Wavefunction MPI_Alltoallv", func(b perf.SCFBreakdown) float64 { return b.WavefuncA2AV }},
		{"<Psi|Psi> MPI_Allreduce", func(b perf.SCFBreakdown) float64 { return b.OverlapAllreduce }},
		{"Residual computation", func(b perf.SCFBreakdown) float64 { return b.ResidComp }},
		{"Residual related total time", func(b perf.SCFBreakdown) float64 { return b.ResidTotal }},
		{"Anderson CPU-GPU memory copy", func(b perf.SCFBreakdown) float64 { return b.AMMemcpy }},
		{"Anderson computation time", func(b perf.SCFBreakdown) float64 { return b.AMComp }},
		{"Anderson mixing total time", func(b perf.SCFBreakdown) float64 { return b.AMTotal }},
		{"Density computation time", func(b perf.SCFBreakdown) float64 { return b.DensityComp }},
		{"Density MPI_Allreduce", func(b perf.SCFBreakdown) float64 { return b.DensityAllreduce }},
		{"Density evaluation total time", func(b perf.SCFBreakdown) float64 { return b.DensityTotal }},
		{"Others", func(b perf.SCFBreakdown) float64 { return b.Others }},
		{"per SCF time", func(b perf.SCFBreakdown) float64 { return b.PerSCF }},
	}
	for _, r := range rows {
		fmt.Printf("%-36s", r.name)
		for _, p := range perf.GPUCounts {
			fmt.Printf("%9.3f", r.get(m.SCF(p)))
		}
		fmt.Println()
	}
	fmt.Printf("%-36s", "Total time")
	for _, p := range perf.GPUCounts {
		fmt.Printf("%9.1f", m.StepTotal(p))
	}
	fmt.Println()
	fmt.Printf("%-36s", "Total speedup (vs 3072-core CPU)")
	for _, p := range perf.GPUCounts {
		fmt.Printf("%8.1fx", m.Speedup(p))
	}
	fmt.Println()
	fmt.Printf("%-36s", "HPsi percentage")
	for _, p := range perf.GPUCounts {
		fmt.Printf("%8.1f%%", m.HPsiPercent(p))
	}
	fmt.Println()
}

func table2(m *perf.Model) {
	header("Table 2: MPI, CPU-GPU memory copy and computation breakdown")
	fmt.Printf("%-28s", "Number of GPUs")
	for _, p := range perf.GPUCounts {
		fmt.Printf("%9d", p)
	}
	fmt.Println()
	rows := []struct {
		name string
		get  func(c perf.CommBreakdown) float64
	}{
		{"CPU-GPU memory copy time", func(c perf.CommBreakdown) float64 { return c.MemcpyTime }},
		{"MPI_Alltoallv time", func(c perf.CommBreakdown) float64 { return c.A2AVTime }},
		{"MPI_Allreduce time", func(c perf.CommBreakdown) float64 { return c.AllreduceTime }},
		{"MPI_Bcast time", func(c perf.CommBreakdown) float64 { return c.BcastTime }},
		{"MPI_AllGatherv time", func(c perf.CommBreakdown) float64 { return c.AllgathervTime }},
		{"MPI total time", func(c perf.CommBreakdown) float64 { return c.MPITotal }},
		{"Computational time", func(c perf.CommBreakdown) float64 { return c.ComputeTime }},
	}
	for _, r := range rows {
		fmt.Printf("%-28s", r.name)
		for _, p := range perf.GPUCounts {
			fmt.Printf("%9.2f", r.get(m.Comm(p)))
		}
		fmt.Println()
	}
}

func fig3(m *perf.Model) {
	header("Fig. 3: Fock exchange wall time per SCF across optimization stages (72 GPUs)")
	stages := m.FockStages(72)
	for _, s := range stages {
		fmt.Printf("%-48s %8.1f s\n", s.Name, s.Seconds)
	}
	fmt.Printf("CPU / final-GPU ratio: %.1fx (paper: ~7x)\n", stages[0].Seconds/stages[len(stages)-1].Seconds)
}

func fig6(m *perf.Model) {
	header("Fig. 6: wall clock per 50 as, RK4 vs PT-CN, Si" + itoa(m.Sys.Natom))
	fmt.Printf("%10s %12s %12s %10s\n", "GPUs", "RK4 (s)", "PT-CN (s)", "ratio")
	for _, p := range []int{36, 72, 144, 288, 384, 768} {
		rk4 := m.RK4StepTotal(p)
		pt := m.StepTotal(p)
		fmt.Printf("%10d %12.0f %12.1f %9.1fx\n", p, rk4, pt, rk4/pt)
	}
}

func fig7(m *perf.Model) {
	header("Fig. 7a: strong scaling of total time and components (MPI+memcpy included)")
	fmt.Printf("%10s %10s %10s %10s %10s %10s\n", "GPUs", "total", "HPsi", "residual", "Anderson", "others")
	for _, p := range perf.GPUCounts {
		b := m.SCF(p)
		fmt.Printf("%10d %10.1f %10.2f %10.2f %10.2f %10.2f\n",
			p, m.StepTotal(p), b.HPsiTotal, b.ResidTotal, b.AMTotal, b.Others)
	}
	header("Fig. 7b: strong scaling of computation-only components")
	fmt.Printf("%10s %12s %12s %12s %12s\n", "GPUs", "Fock comp", "residual", "Anderson", "density")
	for _, p := range perf.GPUCounts {
		b := m.SCF(p)
		fmt.Printf("%10d %12.3f %12.3f %12.3f %12.4f\n",
			p, b.FockComp, b.ResidComp, b.AMComp, b.DensityComp)
	}
}

func fig8() {
	header("Fig. 8: weak scaling, 48..1536 atoms, GPUs = Natom/2")
	natoms := []int{48, 96, 192, 384, 768, 1536}
	pts := perf.WeakScaling(natoms)
	fmt.Printf("%10s %8s %12s %14s %10s\n", "atoms", "GPUs", "time (s)", "ideal N^2 (s)", "exponent")
	for i, pt := range pts {
		exp := "-"
		if i > 0 {
			exp = fmt.Sprintf("%.2f", perf.GrowthExponent(pts[i-1], pt))
		}
		fmt.Printf("%10d %8d %12.2f %14.2f %10s\n", pt.Natom, pt.GPUs, pt.Time, pt.Ideal, exp)
	}
	fmt.Println("(paper reference point: Si192 on 96 GPUs = 16 s per 50 as, ~5 min/fs)")
}

func fig9(m *perf.Model) {
	header("Fig. 9: single SCF step component times")
	fmt.Printf("%10s %10s %10s %10s %10s %10s %10s\n", "GPUs", "HPsi", "residual", "density", "Anderson", "others", "per-SCF")
	for _, p := range []int{36, 72, 144, 288, 768} {
		b := m.SCF(p)
		fmt.Printf("%10d %10.2f %10.2f %10.3f %10.2f %10.2f %10.2f\n",
			p, b.HPsiTotal, b.ResidTotal, b.DensityTotal, b.AMTotal, b.Others, b.PerSCF)
	}
}

func fig10(m *perf.Model) {
	header("Fig. 10: strong scaling of MPI / memcpy / computation")
	fmt.Printf("%10s %10s %10s %12s %12s %12s %12s\n", "GPUs", "Bcast", "memcpy", "Alltoallv", "Allreduce", "compute", "MPI total")
	for _, p := range perf.GPUCounts {
		c := m.Comm(p)
		fmt.Printf("%10d %10.1f %10.1f %12.2f %12.2f %12.1f %12.1f\n",
			p, c.BcastTime, c.MemcpyTime, c.A2AVTime, c.AllreduceTime, c.ComputeTime, c.MPITotal)
	}
}

func power(m *perf.Model) {
	header("Section 6: equal-power CPU vs GPU comparison")
	cpuTime := m.CPUStepSeconds
	gpuTime := m.StepTotal(72)
	pc := m.M.ComparePower(3072, 72, cpuTime, gpuTime)
	fmt.Printf("CPU: %d cores on %d nodes  -> %8.0f W, %8.0f s/step\n", pc.CPUCores, pc.CPUNodes, pc.CPUPowerW, pc.CPUTimeS)
	fmt.Printf("GPU: %d V100 on %d nodes   -> %8.0f W, %8.1f s/step\n", pc.GPUs, pc.GPUNodes, pc.GPUPowerW, pc.GPUTimeS)
	fmt.Printf("speedup at comparable power: %.1fx (paper: 7x; GPU config draws slightly less)\n", pc.SpeedupAtEqualPower)
}

func flops(m *perf.Model) {
	header("Section 7: FLOP and efficiency analysis")
	fmt.Printf("FLOP per TDDFT step: %.3g (paper, via NVPROF: 3.87e16)\n", m.FLOPPerStep())
	fmt.Printf("%10s %14s %12s\n", "GPUs", "TFLOPS/GPU", "efficiency")
	for _, p := range perf.GPUCounts {
		eff := m.FLOPSEfficiency(p)
		fmt.Printf("%10d %14.3f %11.1f%%\n", p, eff*m.M.GPUPeakTFLOPS, eff*100)
	}
	fmt.Printf("Anderson history memory at 36 GPUs: %.1f GB/rank, %.0f GB/node (512 GB node)\n",
		m.MemoryPerRankGB(36, 20), 6*m.MemoryPerRankGB(36, 20))
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
