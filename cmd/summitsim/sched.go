// The sched experiment measures the exchange communication strategies on
// the real distributed code path (internal/dist over the goroutine MPI
// runtime) instead of the calibrated Summit model: strategy-by-strategy
// straggler resilience, strong scaling, and weak scaling, with per-rank
// slowdowns and NIC delay injected through mpi.RunPerturbed. This is the
// laptop-scale counterpart of the paper's load-balance engineering and the
// measurement behind the EXPERIMENTS.md straggler curves.
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"ptdft/internal/dist"
	"ptdft/internal/fock"
	"ptdft/internal/grid"
	"ptdft/internal/lattice"
	"ptdft/internal/mpi"
	"ptdft/internal/parallel"
	"ptdft/internal/trace"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

// schedWall times `reps` applications of the distributed exchange on
// `ranks` ranks under the given perturbation, returning the steady-state
// wall time per application (workspaces warmed before the clock starts).
func schedWall(g *grid.Grid, psi []complex128, nb, ranks int, opt dist.ExchangeOptions, p *mpi.Perturb, reps int, rec *trace.Recorder) time.Duration {
	hyb := xc.HSE06()
	kernel := fock.BuildKernel(g, hyb)
	var el atomic.Int64
	mpi.RunPerturbed(ranks, p, func(c *mpi.Comm) {
		// Every measured world shares per-rank tracks (Track is idempotent
		// per id), so one -tracefile covers the whole sweep in sequence.
		c.SetTrace(rec.Track(c.Rank(), fmt.Sprintf("rank %d", c.Rank())))
		d, err := dist.NewCtx(c, g, nb, 2)
		if err != nil {
			panic(err)
		}
		lo, hi := d.BandRange(c.Rank())
		local := wavefunc.Clone(psi[lo*g.NG : hi*g.NG])
		ex := d.NewExchangeWorkspace()
		d.FockExchangeWS(local, local, kernel, hyb.Alpha, opt, ex) // warm
		c.Barrier()
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			d.FockExchangeWS(local, local, kernel, hyb.Alpha, opt, ex)
		}
		c.Barrier()
		if c.Rank() == 0 {
			el.Store(int64(time.Since(t0)))
		}
	})
	return time.Duration(el.Load()) / time.Duration(reps)
}

// straggle slows rank 0 by the given factor and leaves the rest nominal.
func straggle(factor float64) *mpi.Perturb {
	if factor <= 1 {
		return nil
	}
	return &mpi.Perturb{ComputeScale: func(rank int) float64 {
		if rank == 0 {
			return factor
		}
		return 1.0
	}}
}

func sched(stragglerFactor float64, rec *trace.Recorder) {
	// One worker per rank isolates the schedule under measurement: rank-
	// level balance, not node-level thread fan-out.
	defer parallel.SetMaxWorkers(parallel.SetMaxWorkers(1))
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 2)
	nb := cell.NumBands()
	psi := wavefunc.Random(g, nb, 7)
	const reps = 3
	strategies := []dist.ExchangeStrategy{dist.BcastSequential, dist.BcastOverlapped, dist.RoundRobin, dist.Steal}

	header(fmt.Sprintf("Sched A: straggler resilience, 8 ranks, Si8 nb=%d (ms per exchange)", nb))
	fmt.Printf("%-12s", "slowdown")
	for _, s := range strategies {
		fmt.Printf("%12v", s)
	}
	fmt.Println()
	for _, f := range []float64{1.0, 1.5, stragglerFactor, 2 * stragglerFactor} {
		fmt.Printf("%-12s", fmt.Sprintf("%gx", f))
		for _, s := range strategies {
			w := schedWall(g, psi, nb, 8, dist.ExchangeOptions{Strategy: s}, straggle(f), reps, rec)
			fmt.Printf("%12.2f", float64(w)/1e6)
		}
		fmt.Println()
	}

	header("Sched B: NIC delay on every link, 8 ranks (ms per exchange)")
	fmt.Printf("%-12s", "delay")
	for _, s := range strategies {
		fmt.Printf("%12v", s)
	}
	fmt.Println()
	for _, d := range []time.Duration{0, 100 * time.Microsecond, 400 * time.Microsecond} {
		d := d
		var p *mpi.Perturb
		if d > 0 {
			p = &mpi.Perturb{WireDelay: func(src, dst int, bytes int64) time.Duration { return d }}
		}
		fmt.Printf("%-12v", d)
		for _, s := range strategies {
			w := schedWall(g, psi, nb, 8, dist.ExchangeOptions{Strategy: s}, p, reps, rec)
			fmt.Printf("%12.2f", float64(w)/1e6)
		}
		fmt.Println()
	}

	header(fmt.Sprintf("Sched C: strong scaling under a %gx straggler (ms per exchange)", stragglerFactor))
	fmt.Printf("%10s %12s %12s %10s\n", "ranks", "overlap", "steal", "steal win")
	for _, ranks := range []int{1, 2, 4, 8} {
		ov := schedWall(g, psi, nb, ranks, dist.ExchangeOptions{Strategy: dist.BcastOverlapped}, straggle(stragglerFactor), reps, rec)
		st := schedWall(g, psi, nb, ranks, dist.ExchangeOptions{Strategy: dist.Steal}, straggle(stragglerFactor), reps, rec)
		fmt.Printf("%10d %12.2f %12.2f %9.2fx\n", ranks, float64(ov)/1e6, float64(st)/1e6, float64(ov)/float64(st))
	}

	header("Sched D: weak scaling, nb = 4 x ranks, no perturbation (ms per exchange; us per pair solve)")
	fmt.Printf("%10s %8s %12s %12s %14s %14s\n", "ranks", "bands", "overlap", "steal", "overlap/pair", "steal/pair")
	for _, ranks := range []int{1, 2, 4, 8} {
		wnb := 4 * ranks
		wpsi := wavefunc.Random(g, wnb, 7)
		ov := schedWall(g, wpsi, wnb, ranks, dist.ExchangeOptions{Strategy: dist.BcastOverlapped}, nil, reps, rec)
		st := schedWall(g, wpsi, wnb, ranks, dist.ExchangeOptions{Strategy: dist.Steal}, nil, reps, rec)
		// The static schedule solves nb x nb/P pairs per rank; the steal
		// triangle halves the global solve count.
		ovPairs := float64(wnb*wnb) / float64(ranks)
		stPairs := float64(wnb*(wnb+1)) / 2 / float64(ranks)
		fmt.Printf("%10d %8d %12.2f %12.2f %14.1f %14.1f\n", ranks, wnb,
			float64(ov)/1e6, float64(st)/1e6, float64(ov)/1e3/ovPairs, float64(st)/1e3/stPairs)
	}
	fmt.Println("(steal solves each symmetric pair once; the static strategies solve both orientations)")
}
