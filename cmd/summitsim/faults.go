// The faults experiment measures recovery overhead on the real
// distributed code path: a propagation under dist.RunResilient with an
// injected rank crash, swept over the crash step and the checkpoint
// cadence. The cost of surviving a failure decomposes into lost steps
// (work past the last durable checkpoint, re-run after the relaunch) plus
// the fixed teardown/relaunch cost, so the table makes the cadence
// trade-off concrete: frequent checkpoints buy cheap recovery with more
// I/O, sparse ones the reverse. Measured, not modeled - runs only when
// named, like sched.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ptdft/internal/checkpoint"
	"ptdft/internal/core"
	"ptdft/internal/dist"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/lattice"
	"ptdft/internal/mpi"
	"ptdft/internal/pseudo"
	"ptdft/internal/trace"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

// faultRun propagates `steps` semi-local PT-CN steps on `ranks` ranks
// under the resilient supervisor, crashing `victim` before step
// `crashStep` on the first attempt (victim < 0 disables the fault), and
// returns the result plus the wall time.
func faultRun(g *grid.Grid, psi []complex128, nb, ranks, steps, every int, victim int, crashStep int64, dir string, rec *trace.Recorder) (*dist.ResilientResult, time.Duration, error) {
	cfg := dist.ResilientConfig{
		Ranks: ranks, G: g, NB: nb, Trace: rec,
		NewHamiltonian: func() *hamiltonian.Hamiltonian {
			return hamiltonian.New(g, map[int]*pseudo.Potential{0: pseudo.SiliconAH()}, hamiltonian.Config{})
		},
		Hyb: xc.HSE06(), Hybrid: false,
		Field: &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}},
		Opt:   core.DefaultPTCN(),
		Psi0:  psi, Steps: steps, Dt: 1.0,
		Natom: 8, Ecut: 2,
		// A tight deadline keeps the fixed detection cost from swamping the
		// cadence-dependent re-run cost at laptop scale (production would
		// run seconds-long deadlines against minutes-long steps).
		MaxRestarts: 2, Deadline: time.Second,
	}
	if every > 0 {
		cfg.Ckpt = &checkpoint.Rolling{Base: filepath.Join(dir, "faults.ckp")}
		cfg.CkptEvery = every
	}
	if victim >= 0 {
		cfg.FaultFor = func(attempt int) *mpi.Fault {
			if attempt > 0 {
				return nil
			}
			return &mpi.Fault{Crashes: []mpi.CrashRankAt{{Rank: victim, AfterStep: crashStep}}}
		}
	}
	t0 := time.Now()
	res, err := dist.RunResilient(cfg)
	return res, time.Since(t0), err
}

func faults(rec *trace.Recorder) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 2)
	nb := cell.NumBands()
	psi := wavefunc.Random(g, nb, 7)
	const ranks, steps = 4, 12

	// Crash-free baseline (checkpoints on, so the cadence I/O is included).
	dir, err := os.MkdirTemp("", "summitsim-faults-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	cleanDir := filepath.Join(dir, "clean")
	if err := os.Mkdir(cleanDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	_, cleanWall, err := faultRun(g, psi, nb, ranks, steps, 4, -1, 0, cleanDir, rec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	header(fmt.Sprintf("Faults: recovery overhead, %d ranks, Si8 nb=%d, %d steps (crash-free: %.0f ms)",
		ranks, nb, steps, float64(cleanWall)/1e6))
	fmt.Printf("%10s %12s %10s %10s %12s %10s\n", "cadence", "crash step", "restarts", "lost", "wall (ms)", "overhead")
	for _, every := range []int{2, 4, 6} {
		for _, crash := range []int64{3, 6, 9, 11} {
			cellDir := filepath.Join(dir, fmt.Sprintf("c%d-s%d", every, crash))
			if err := os.Mkdir(cellDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			victim := int(crash) % ranks
			res, wall, err := faultRun(g, psi, nb, ranks, steps, every, victim, crash, cellDir, rec)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%10d %12d %10d %10d %12.0f %9.1f%%\n",
				every, crash, res.Restarts, res.LostSteps,
				float64(wall)/1e6, 100*(float64(wall)/float64(cleanWall)-1))
		}
	}
	fmt.Println("(lost = steps past the last durable checkpoint, re-run after the relaunch;")
	fmt.Println(" overhead vs the crash-free run at cadence 4 - checkpoint I/O included in both)")
}
