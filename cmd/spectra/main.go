// Command spectra computes an optical absorption spectrum from a
// delta-kick rt-TDDFT run - the classic linear-response workload the
// paper's introduction motivates (light absorption spectra): kick the
// system at t = 0 with a small uniform vector potential, record the
// macroscopic current, and Fourier-transform it into the dynamical
// conductivity.
//
//	spectra -cells 1,1,1 -ecut 4 -dt 12 -steps 200 -kick 0.005
package main

import (
	"flag"
	"fmt"
	"os"

	"ptdft/internal/core"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/lattice"
	"ptdft/internal/observe"
	"ptdft/internal/pseudo"
	"ptdft/internal/scf"
	"ptdft/internal/trace"
	"ptdft/internal/units"
	"ptdft/internal/xc"
)

func main() {
	ecut := flag.Float64("ecut", 4, "kinetic energy cutoff (Ha)")
	dtAs := flag.Float64("dt", 12, "PT-CN time step (as)")
	steps := flag.Int("steps", 120, "number of steps to record")
	kick := flag.Float64("kick", 0.005, "delta-kick amplitude (au)")
	hybrid := flag.Bool("hybrid", false, "use the hybrid functional")
	omegaMaxEV := flag.Float64("wmax", 15, "spectrum range (eV)")
	nw := flag.Int("nw", 150, "frequency points")
	eta := flag.Float64("eta", 0.005, "damping (au)")
	traceFile := flag.String("tracefile", "", "record the propagation's span timeline and write it here as Chrome trace-event JSON")
	flag.Parse()

	if err := run(*ecut, *dtAs, *steps, *kick, *hybrid, *omegaMaxEV, *nw, *eta, *traceFile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(ecut, dtAs float64, steps int, kick float64, hybrid bool, wmaxEV float64, nw int, eta float64, traceFile string) error {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g, err := grid.New(cell, ecut)
	if err != nil {
		return err
	}
	nb := cell.NumBands()
	h := hamiltonian.New(g, map[int]*pseudo.Potential{0: pseudo.SiliconAH()},
		hamiltonian.Config{Hybrid: hybrid, Params: xc.HSE06()})
	gs, err := scf.GroundState(g, h, nb, scf.Defaults())
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ground state E = %.6f Ha; propagating %d steps of %.1f as\n",
		gs.Energy.Total(), steps, dtAs)

	var rec *trace.Recorder
	if traceFile != "" {
		rec = trace.NewRecorder()
	}
	tr := rec.Track(0, "rank 0")
	h.SetTrace(tr)

	field := &laser.Kick{K: kick, Pol: [3]float64{0, 0, 1}}
	sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: field, Tr: tr}
	p := core.NewPTCN(sys, core.DefaultPTCN())
	dt := units.AttosecondsToAU(dtAs)

	psi := gs.Psi
	jz := make([]float64, 0, steps+1)
	sys.Prepare(psi, 0)
	j0 := observe.Current(sys, psi)
	_ = j0 // pre-kick current is zero by time reversal
	for i := 0; i < steps; i++ {
		var err error
		psi, _, err = p.Step(psi, dt)
		if err != nil {
			return fmt.Errorf("step %d: %w", i, err)
		}
		sys.Prepare(psi, p.Time)
		j := observe.Current(sys, psi)
		jz = append(jz, j[2])
		if (i+1)%20 == 0 {
			fmt.Fprintf(os.Stderr, "  step %d/%d  t=%.3f fs  Jz=%.4e\n", i+1, steps, p.Time*units.FemtosecondPerAU, j[2])
		}
	}

	wmax := wmaxEV / units.EVPerHartree
	// jz[i] was recorded after step i+1, i.e. at t = (i+1)*dt: pass t0 = dt
	// so the transform phases every sample at its true time.
	omegas, sigma := observe.AbsorptionSpectrum(jz, dt, dt, kick, wmax, nw, eta)
	fmt.Println("# omega_eV  Re_sigma(arb)")
	for i := range omegas {
		fmt.Printf("%10.4f %14.6e\n", omegas[i]*units.EVPerHartree, sigma[i])
	}
	if rec != nil {
		f, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		err = rec.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing trace file: %w", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (Chrome trace-event JSON)\n", traceFile)
	}
	return nil
}
