// Command ptdft runs real (laptop-scale) rt-TDDFT simulations with the
// library: ground-state SCF followed by time propagation with PT-CN or
// RK4, optionally with the hybrid (screened exchange) functional, a laser
// pulse or delta kick, and optional distribution over goroutine-MPI ranks.
//
//	ptdft -cells 1,1,1 -ecut 4 -method ptcn -dt 24 -steps 10 -kick 0.02
//	ptdft -cells 1,1,2 -hybrid -method ptcn -dt 50 -steps 4 -pulse 0.005
//	ptdft -ranks 4 -method ptcn -steps 5
//	ptdft -hybrid -ace -mts 4 -ranks 4 -steps 8   # exchange refreshed every 4th step
//	ptdft -md -displace 0:0.2,0,0 -ionsteps 20 -iondt 96 -dt 24 -kick 0   # Ehrenfest MD
//	ptdft -steps 100 -save traj.ckp -ckptevery 10   # durable rolling checkpoints; SIGINT checkpoints and exits
//
// Output: one line per step (time, energy, current, excited carriers, SCF
// count) plus a trace breakdown, and optionally a CSV file for plotting.
// With -md each line is one ion step and the energy column is the
// conserved total (electronic + ion kinetic + ion-ion).
//
// The simulation itself - spec validation, ground state, the four
// propagation drivers - lives in internal/sim, shared with the ptdftd job
// server; this command only parses flags, wires signals, and formats
// output.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"ptdft/internal/checkpoint"
	"ptdft/internal/dist"
	"ptdft/internal/observe"
	"ptdft/internal/sim"
	"ptdft/internal/trace"
)

// config is the CLI layer around a sim.Spec: the spec describes the
// simulation; the rest is presentation (CSV, quiet), persistence paths,
// and runtime wiring (signals, test hooks).
type config struct {
	spec       sim.Spec
	csvPath    string
	quiet      bool
	savePath   string
	loadPath   string
	ckptEvery  int
	traceFile  string
	commFile   string
	profReport bool

	// Runtime wiring, not flags. stop is closed on SIGINT/SIGTERM (or by a
	// test); the drivers finish the step in flight, checkpoint, and return.
	// afterStep is a test hook observing each completed step (rank 0 in
	// distributed runs).
	stop      chan struct{}
	afterStep func(done int)
}

func parseFlags() (*config, error) {
	var c config
	s := &c.spec
	cellsStr := flag.String("cells", "1,1,1", "supercell repetitions nx,ny,nz (8 Si atoms per cell)")
	flag.Float64Var(&s.Ecut, "ecut", 4, "kinetic energy cutoff (Ha); the paper uses 10")
	flag.BoolVar(&s.Hybrid, "hybrid", false, "use the HSE-like hybrid functional (screened Fock exchange)")
	flag.BoolVar(&s.ACE, "ace", false, "apply exchange through the ACE compression (serial and distributed runs)")
	flag.BoolVar(&s.ACEHold, "acehold", false, "hold the distributed ACE operator fixed through each step's inner SCF (Jia & Lin cadence; implies -ace; equals -mts 1)")
	flag.IntVar(&s.MTS, "mts", 0, "multiple time stepping: refresh the hybrid exchange every M steps, frozen in between (0 = off; requires -hybrid and -method ptcn)")
	flag.StringVar(&s.Method, "method", "ptcn", "time integrator: ptcn or rk4")
	flag.Float64Var(&s.DtAs, "dt", 24, "time step in attoseconds (paper: 50 for PT-CN, 0.5 for RK4)")
	flag.IntVar(&s.Steps, "steps", 5, "number of propagation steps")
	flag.Float64Var(&s.Kick, "kick", 0.02, "delta-kick vector potential (au); 0 disables")
	flag.Float64Var(&s.PulseE0, "pulse", 0, "380nm Gaussian pulse peak field (Ha/bohr); overrides -kick")
	flag.IntVar(&s.Ranks, "ranks", 0, "distribute over N goroutine-MPI ranks (0 = serial)")
	flag.Int64Var(&s.Seed, "seed", 1234, "ground-state starting guess seed")
	flag.StringVar(&c.csvPath, "csv", "", "write per-step observables to this CSV file")
	flag.BoolVar(&c.quiet, "q", false, "suppress per-step output")
	flag.StringVar(&s.Exchange, "exchange", "overlap", "distributed exchange strategy: "+strings.Join(dist.StrategyNames(), ", "))
	flag.IntVar(&s.StealChunk, "stealchunk", 0, "pairs per work-queue claim under -exchange steal (0 = auto)")
	flag.BoolVar(&s.SinglePrec, "singleprec", false, "single-precision MPI payloads (distributed runs)")
	flag.StringVar(&c.savePath, "save", "", "write a restart checkpoint here after the last step")
	flag.StringVar(&c.loadPath, "load", "", "resume from a checkpoint instead of the ground state")
	flag.IntVar(&c.ckptEvery, "ckptevery", 0, "write a durable rolling checkpoint every N steps (ion steps with -md) to the -save path; 0 = final save only")
	flag.BoolVar(&s.MD, "md", false, "Ehrenfest ion dynamics: velocity-Verlet ions coupled to PT-CN electrons (Hellmann-Feynman forces)")
	flag.IntVar(&s.IonSteps, "ionsteps", 10, "number of ion MD steps (with -md; replaces -steps as the trajectory length)")
	flag.Float64Var(&s.IonDtAs, "iondt", 96, "ion time step in attoseconds (with -md); must be an integer multiple of -dt")
	flag.StringVar(&s.Displace, "displace", "", "displace one atom before the ground state: i:dx,dy,dz (Bohr), e.g. 0:0.2,0,0")
	flag.StringVar(&c.traceFile, "tracefile", "", "record a per-rank span timeline and write it here as Chrome trace-event JSON (open in chrome://tracing or Perfetto)")
	flag.StringVar(&c.commFile, "commfile", "", "write the per-rank send/recv byte matrices here as JSON (distributed runs; the heat-map dump)")
	flag.BoolVar(&c.profReport, "profilereport", false, "print the flight-recorder phase breakdown (span-level Table 1) after the run")
	flag.Parse()
	parts := strings.Split(*cellsStr, ",")
	if len(parts) != 3 {
		return nil, fmt.Errorf("-cells wants nx,ny,nz, got %q", *cellsStr)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad cell count %q", p)
		}
		s.Cells[i] = v
	}
	// The full simulation rule set (exchange cadences, MD tiling, strategy
	// names) lives with the spec, so a typo fails before the ground-state
	// SCF runs, not after.
	if err := s.Validate(); err != nil {
		return nil, err
	}
	// Persistence rules are CLI concerns: the spec does not know about
	// checkpoint paths.
	if c.ckptEvery < 0 {
		return nil, fmt.Errorf("-ckptevery wants a cadence >= 1 (or 0 for a final save only), got %d", c.ckptEvery)
	}
	if c.ckptEvery > 0 && c.savePath == "" {
		return nil, fmt.Errorf("-ckptevery writes rolling checkpoints to the -save path; add -save")
	}
	return &c, nil
}

func main() {
	cfg, err := parseFlags()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Graceful shutdown: the first SIGINT/SIGTERM finishes the step in
	// flight and writes the final checkpoint (when -save is set); a second
	// signal falls back to the default handler and kills the process.
	cfg.stop = make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "\ncaught %v: finishing the current step, then checkpointing and exiting\n", s)
		close(cfg.stop)
		signal.Stop(sig)
	}()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(cfg *config) error {
	spec := &cfg.spec
	prof := trace.New()
	// The flight recorder is allocated only when a trace surface was
	// requested, so the default run keeps every recording site on its
	// zero-alloc disabled path.
	var rec *trace.Recorder
	if cfg.traceFile != "" || cfg.profReport {
		rec = trace.NewRecorder()
	}

	var loaded *checkpoint.State
	if cfg.loadPath != "" {
		st, err := checkpoint.LoadFile(cfg.loadPath)
		if err != nil {
			return err
		}
		loaded = st
		fmt.Printf("loaded checkpoint %s\n", cfg.loadPath)
	}
	var roll *checkpoint.Rolling
	if cfg.ckptEvery > 0 {
		roll = &checkpoint.Rolling{Base: cfg.savePath}
		unit := "steps"
		if spec.MD {
			unit = "ion steps"
		}
		fmt.Printf("durable checkpoints: every %d %s to %s (rolling, last-good link)\n", cfg.ckptEvery, unit, cfg.savePath)
	}

	stepLabel := "propagation step"
	if spec.MD {
		stepLabel = "ion step"
	}
	// A resumed pulse run keeps the original envelope: -steps counts the
	// remaining segment, so the field is shaped by the total trajectory
	// (completed + remaining) and matches the uninterrupted run.
	pulseSteps := 0
	if loaded != nil && !spec.MD {
		pulseSteps = int(loaded.Step) + spec.Steps
	}
	res, err := sim.Run(spec, sim.Options{
		Stop:       cfg.stop,
		AfterStep:  cfg.afterStep,
		OnSample:   func(s observe.Sample) { prof.Add(stepLabel, s.WallSec) },
		Trace:      rec,
		PulseSteps: pulseSteps,
		Resume:     loaded,
		Ckpt:       roll,
		CkptEvery:  cfg.ckptEvery,
		SavePath:   cfg.savePath,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	prof.Add("ground state SCF", res.GroundWallSec)

	if !cfg.quiet {
		fmt.Printf("\n%10s %16s %14s %10s %6s %10s\n", "t (fs)", "E (Ha)", "J_z (au)", "n_exc", "SCF", "wall (s)")
		for _, s := range res.Samples {
			fmt.Printf("%10.5f %16.8f %14.4e %10.5f %6d %10.3f\n", s.TimeFs, s.Energy, s.CurrentZ, s.Excited, s.SCFIters, s.WallSec)
		}
	}

	// The drivers return one sample per completed step, so a run stopped
	// early by a signal checkpoints the steps that actually ran.
	if res.Stopped {
		fmt.Printf("interrupted: stopped after %d of %d steps; the checkpoint covers the completed steps\n",
			len(res.Samples), spec.TotalSteps())
	}
	if cfg.savePath != "" {
		fmt.Printf("checkpoint written to %s (step %d)\n", cfg.savePath, res.Final.Step)
	}
	fmt.Println()
	prof.Report(os.Stdout)
	if cfg.profReport {
		fmt.Printf("\nflight recorder: %.3f rank-seconds busy", res.RankSeconds)
		if res.BytesMoved > 0 {
			fmt.Printf(", %.1f MB moved", float64(res.BytesMoved)/1e6)
		}
		fmt.Println()
		rec.Profile().Report(os.Stdout)
	}
	if cfg.traceFile != "" {
		f, err := os.Create(cfg.traceFile)
		if err != nil {
			return err
		}
		err = rec.WriteChromeTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing trace file: %w", err)
		}
		fmt.Printf("wrote %s (Chrome trace-event JSON; open in chrome://tracing or Perfetto)\n", cfg.traceFile)
	}
	if cfg.commFile != "" {
		if res.Comm == nil {
			fmt.Fprintln(os.Stderr, "-commfile: serial run moved no MPI bytes; skipping the matrix dump")
		} else {
			data, err := res.Comm.MatrixJSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(cfg.commFile, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s (per-rank send/recv byte matrices)\n", cfg.commFile)
		}
	}
	if cfg.csvPath != "" {
		if err := writeCSV(cfg.csvPath, res.Samples); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.csvPath)
	}
	return nil
}

func writeCSV(path string, samples []observe.Sample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"time_fs", "energy_ha", "current_z", "excited_electrons", "scf_iterations", "wall_seconds"}); err != nil {
		return err
	}
	for _, s := range samples {
		rec := []string{
			strconv.FormatFloat(s.TimeFs, 'g', 12, 64),
			strconv.FormatFloat(s.Energy, 'g', 14, 64),
			strconv.FormatFloat(s.CurrentZ, 'g', 8, 64),
			strconv.FormatFloat(s.Excited, 'g', 8, 64),
			strconv.Itoa(s.SCFIters),
			strconv.FormatFloat(s.WallSec, 'g', 6, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}
