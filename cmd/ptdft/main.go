// Command ptdft runs real (laptop-scale) rt-TDDFT simulations with the
// library: ground-state SCF followed by time propagation with PT-CN or
// RK4, optionally with the hybrid (screened exchange) functional, a laser
// pulse or delta kick, and optional distribution over goroutine-MPI ranks.
//
//	ptdft -cells 1,1,1 -ecut 4 -method ptcn -dt 24 -steps 10 -kick 0.02
//	ptdft -cells 1,1,2 -hybrid -method ptcn -dt 50 -steps 4 -pulse 0.005
//	ptdft -ranks 4 -method ptcn -steps 5
//	ptdft -hybrid -ace -mts 4 -ranks 4 -steps 8   # exchange refreshed every 4th step
//
// Output: one line per step (time, energy, current, excited carriers, SCF
// count) plus a trace breakdown, and optionally a CSV file for plotting.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ptdft/internal/checkpoint"
	"ptdft/internal/core"
	"ptdft/internal/dist"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/lattice"
	"ptdft/internal/mpi"
	"ptdft/internal/observe"
	"ptdft/internal/pseudo"
	"ptdft/internal/scf"
	"ptdft/internal/trace"
	"ptdft/internal/units"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

type config struct {
	cells    [3]int
	ecut     float64
	hybrid   bool
	useACE   bool
	aceHold  bool
	mts      int
	method   string
	dtAs     float64
	steps    int
	kick     float64
	pulseE0  float64
	ranks    int
	seed     int64
	csvPath  string
	quiet    bool
	strategy string
	exchange dist.ExchangeStrategy
	single   bool
	savePath string
	loadPath string
}

func parseFlags() (*config, error) {
	var c config
	cellsStr := flag.String("cells", "1,1,1", "supercell repetitions nx,ny,nz (8 Si atoms per cell)")
	flag.Float64Var(&c.ecut, "ecut", 4, "kinetic energy cutoff (Ha); the paper uses 10")
	flag.BoolVar(&c.hybrid, "hybrid", false, "use the HSE-like hybrid functional (screened Fock exchange)")
	flag.BoolVar(&c.useACE, "ace", false, "apply exchange through the ACE compression (serial and distributed runs)")
	flag.BoolVar(&c.aceHold, "acehold", false, "hold the distributed ACE operator fixed through each step's inner SCF (Jia & Lin cadence; implies -ace; equals -mts 1)")
	flag.IntVar(&c.mts, "mts", 0, "multiple time stepping: refresh the hybrid exchange every M steps, frozen in between (0 = off; requires -hybrid and -method ptcn)")
	flag.StringVar(&c.method, "method", "ptcn", "time integrator: ptcn or rk4")
	flag.Float64Var(&c.dtAs, "dt", 24, "time step in attoseconds (paper: 50 for PT-CN, 0.5 for RK4)")
	flag.IntVar(&c.steps, "steps", 5, "number of propagation steps")
	flag.Float64Var(&c.kick, "kick", 0.02, "delta-kick vector potential (au); 0 disables")
	flag.Float64Var(&c.pulseE0, "pulse", 0, "380nm Gaussian pulse peak field (Ha/bohr); overrides -kick")
	flag.IntVar(&c.ranks, "ranks", 0, "distribute over N goroutine-MPI ranks (0 = serial)")
	flag.Int64Var(&c.seed, "seed", 1234, "ground-state starting guess seed")
	flag.StringVar(&c.csvPath, "csv", "", "write per-step observables to this CSV file")
	flag.BoolVar(&c.quiet, "q", false, "suppress per-step output")
	flag.StringVar(&c.strategy, "exchange", "overlap", "distributed exchange strategy: bcast, overlap, roundrobin")
	flag.BoolVar(&c.single, "singleprec", false, "single-precision MPI payloads (distributed runs)")
	flag.StringVar(&c.savePath, "save", "", "write a restart checkpoint here after the last step")
	flag.StringVar(&c.loadPath, "load", "", "resume from a checkpoint instead of the ground state")
	flag.Parse()
	parts := strings.Split(*cellsStr, ",")
	if len(parts) != 3 {
		return nil, fmt.Errorf("-cells wants nx,ny,nz, got %q", *cellsStr)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad cell count %q", p)
		}
		c.cells[i] = v
	}
	if c.method != "ptcn" && c.method != "rk4" {
		return nil, fmt.Errorf("unknown method %q", c.method)
	}
	// No silent flag drops: every exchange-operator request must reach a
	// code path that honors it.
	if c.aceHold {
		c.useACE = true
		if c.ranks <= 1 {
			return nil, fmt.Errorf("-acehold is a distributed cadence (requires -ranks > 1); the serial ACE always rebuilds per refresh - for a serial hold use -mts 1")
		}
	}
	if c.useACE && !c.hybrid {
		return nil, fmt.Errorf("-ace selects the exchange operator of the hybrid functional; add -hybrid")
	}
	switch {
	case c.mts < 0:
		return nil, fmt.Errorf("-mts wants a refresh period >= 1 (or 0 to disable), got %d", c.mts)
	case c.mts > 0 && !c.hybrid:
		return nil, fmt.Errorf("-mts freezes the hybrid exchange between outer steps; it needs -hybrid")
	case c.mts > 0 && c.method != "ptcn":
		return nil, fmt.Errorf("-mts is a PT-CN refresh cadence; -method %s does not support it", c.method)
	case c.mts > 1 && c.aceHold:
		return nil, fmt.Errorf("-acehold is exactly -mts 1; it cannot combine with -mts %d - pick one cadence", c.mts)
	}
	// Resolve the exchange strategy up front so a typo fails before the
	// ground-state SCF runs, not after.
	var err error
	if c.exchange, err = dist.ParseStrategy(c.strategy); err != nil {
		return nil, err
	}
	return &c, nil
}

func main() {
	cfg, err := parseFlags()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type stepRecord struct {
	timeFs   float64
	energy   float64
	currentZ float64
	excited  float64
	scfIters int
	wallSec  float64
}

func run(cfg *config) error {
	cell, err := lattice.SiliconSupercell(cfg.cells[0], cfg.cells[1], cfg.cells[2])
	if err != nil {
		return err
	}
	g, err := grid.New(cell, cfg.ecut)
	if err != nil {
		return err
	}
	nb := cell.NumBands()
	fmt.Printf("system: Si%d  (%dx%dx%d cells), Ecut %.1f Ha\n", cell.NumAtoms(), cfg.cells[0], cfg.cells[1], cfg.cells[2], cfg.ecut)
	fmt.Printf("grid: wavefunction %v (NG=%d sphere), density %v; bands %d\n", g.N, g.NG, g.ND, nb)

	prof := trace.New()
	pots := sipots()
	hcfg := hamiltonian.Config{Hybrid: cfg.hybrid, UseACE: cfg.useACE, Params: xc.HSE06()}
	h := hamiltonian.New(g, pots, hcfg)

	// Ground state.
	opt := scf.Defaults()
	opt.Seed = cfg.seed
	var gs *scf.Result
	prof.Time("ground state SCF", func() {
		gs, err = scf.GroundState(g, h, nb, opt)
	})
	if err != nil {
		return err
	}
	fmt.Printf("ground state: E = %.8f Ha (%d SCF iterations, density err %.2e)\n",
		gs.Energy.Total(), gs.SCFIterations, gs.DensityError)

	var field laser.Field
	switch {
	case cfg.pulseE0 != 0:
		sigma := units.AttosecondsToAU(cfg.dtAs) * float64(cfg.steps) / 4
		field = laser.New380nm(cfg.pulseE0, 2*sigma, sigma)
		fmt.Printf("field: 380nm pulse, E0=%.4g Ha/bohr\n", cfg.pulseE0)
	case cfg.kick != 0:
		field = &laser.Kick{K: cfg.kick, Pol: [3]float64{0, 0, 1}}
		fmt.Printf("field: delta kick A=%.4g au along z\n", cfg.kick)
	}

	// Resume from a checkpoint when requested; otherwise start from the
	// freshly converged ground state.
	psiStart := gs.Psi
	t0 := 0.0
	var loaded *checkpoint.State
	if cfg.loadPath != "" {
		st, err := checkpoint.LoadFile(cfg.loadPath)
		if err != nil {
			return err
		}
		if err := st.Compatible(nb, g.NG, int64(cell.NumAtoms()), cfg.ecut, cfg.hybrid, cfg.mts, cfg.useACE); err != nil {
			return err
		}
		loaded = st
		psiStart = st.Psi
		t0 = st.Time
		fmt.Printf("resumed from %s at t = %.2f as (step %d)\n", cfg.loadPath, units.AUToAttoseconds(st.Time), st.Step)
	}

	dt := units.AttosecondsToAU(cfg.dtAs)
	var records []stepRecord
	var psiFinal []complex128
	var tFinal float64
	var mts mtsSnapshot
	if cfg.ranks > 1 {
		records, psiFinal, tFinal, mts, err = runDistributed(cfg, g, gs.Psi, psiStart, nb, field, dt, t0, loaded, prof)
	} else {
		records, psiFinal, tFinal, mts, err = runSerial(cfg, g, h, gs.Psi, psiStart, nb, field, dt, t0, loaded, prof)
	}
	if err != nil {
		return err
	}

	if !cfg.quiet {
		fmt.Printf("\n%10s %16s %14s %10s %6s %10s\n", "t (fs)", "E (Ha)", "J_z (au)", "n_exc", "SCF", "wall (s)")
		for _, r := range records {
			fmt.Printf("%10.5f %16.8f %14.4e %10.5f %6d %10.3f\n", r.timeFs, r.energy, r.currentZ, r.excited, r.scfIters, r.wallSec)
		}
	}

	if cfg.savePath != "" {
		// The step counter is cumulative provenance: a resumed segment
		// saves loaded.Step + its own steps, so a 600-step run split
		// across allocations reports the true global step on every file.
		// Under MTS the cadence phase (and, mid-cycle, the frozen exchange
		// reference) rides along so the next segment lands on the correct
		// outer/inner step with the identical frozen operator.
		st := &checkpoint.State{
			Time: tFinal, Step: checkpoint.ContinuationStep(loaded, cfg.steps), NBands: nb, NG: g.NG,
			Natom: int64(cell.NumAtoms()), Ecut: cfg.ecut, Hybrid: cfg.hybrid, Psi: psiFinal,
			MTSPeriod: int64(cfg.mts), MTSPhase: int64(mts.phase), MTSACE: cfg.useACE && cfg.mts > 0,
			PhiRef: mts.phiRef,
		}
		if err := checkpoint.SaveFile(cfg.savePath, st); err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s\n", cfg.savePath)
	}
	fmt.Println()
	prof.Report(os.Stdout)
	if cfg.csvPath != "" {
		if err := writeCSV(cfg.csvPath, records); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.csvPath)
	}
	return nil
}

// mtsSnapshot carries the MTS cadence state out of a propagation for
// checkpointing: the cycle phase at the end of the run and - mid-cycle
// only - the frozen exchange reference of the last outer step.
type mtsSnapshot struct {
	phase  int
	phiRef []complex128
}

func runSerial(cfg *config, g *grid.Grid, h *hamiltonian.Hamiltonian, psiGS, psi0 []complex128, nb int, field laser.Field, dt, t0 float64, loaded *checkpoint.State, prof *trace.Profile) ([]stepRecord, []complex128, float64, mtsSnapshot, error) {
	sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: field}
	psi := wavefunc.Clone(psi0)
	var records []stepRecord
	var snap mtsSnapshot
	var stepFn func([]complex128, float64) ([]complex128, core.StepStats, error)
	var now func() float64
	var pt *core.PTCN
	switch cfg.method {
	case "ptcn":
		pt = core.NewPTCN(sys, core.DefaultPTCN())
		pt.Time = t0
		pt.MTS = cfg.mts
		if loaded != nil {
			if err := pt.ResumeMTS(int(loaded.MTSPhase), loaded.PhiRef); err != nil {
				return nil, nil, 0, snap, err
			}
		}
		stepFn, now = pt.Step, func() float64 { return pt.Time }
	case "rk4":
		r := core.NewRK4(sys)
		r.Time = t0
		stepFn, now = r.Step, func() float64 { return r.Time }
	}
	for i := 0; i < cfg.steps; i++ {
		start := time.Now()
		var stats core.StepStats
		var err error
		psi, stats, err = stepFn(psi, dt)
		if err != nil {
			return nil, nil, 0, snap, fmt.Errorf("step %d: %w", i, err)
		}
		wall := time.Since(start).Seconds()
		prof.Add("propagation step", wall)
		eb := observe.Energy(sys, psi, now())
		j := observe.Current(sys, psi)
		records = append(records, stepRecord{
			timeFs:   now() * units.FemtosecondPerAU,
			energy:   eb.Total(),
			currentZ: j[2],
			excited:  observe.ExcitedElectrons(sys, psiGS, psi),
			scfIters: stats.SCFIterations,
			wallSec:  wall,
		})
	}
	// Report which exchange operator actually propagated the run: a
	// degenerate reference set downgrades an -ace refresh to the exact
	// operator, and that must never stay invisible.
	if cfg.hybrid && cfg.useACE {
		if n, lastErr := h.ACEFallbacks(); n > 0 {
			fmt.Printf("exchange operator: ACE with %d refresh(es) fallen back to exact exchange (last failure: %v)\n", n, lastErr)
		} else {
			fmt.Println("exchange operator: ACE (no fallbacks)")
		}
	}
	if pt != nil && cfg.mts > 0 {
		snap.phase = pt.MTSPhase()
		if snap.phase != 0 && cfg.savePath != "" {
			// The frozen-reference copy only matters to a checkpoint.
			snap.phiRef = wavefunc.Clone(pt.MTSRef())
		}
		fmt.Printf("MTS cadence: exchange refreshed every %d steps (ended at cycle phase %d)\n", cfg.mts, snap.phase)
	}
	return records, psi, now(), snap, nil
}

func runDistributed(cfg *config, g *grid.Grid, psiGS, psi0 []complex128, nb int, field laser.Field, dt, t0 float64, loaded *checkpoint.State, prof *trace.Profile) ([]stepRecord, []complex128, float64, mtsSnapshot, error) {
	var snap mtsSnapshot
	if cfg.method != "ptcn" {
		return nil, nil, 0, snap, fmt.Errorf("distributed runs support -method ptcn only")
	}
	if nb%cfg.ranks != 0 {
		return nil, nil, 0, snap, fmt.Errorf("%d bands not divisible by %d ranks", nb, cfg.ranks)
	}
	exOpt := dist.ExchangeOptions{
		Strategy:          cfg.exchange,
		SinglePrecision:   cfg.single,
		ACE:               cfg.useACE,
		ACEHoldThroughSCF: cfg.aceHold,
		MTSPeriod:         cfg.mts,
	}
	op := "none (semi-local)"
	switch {
	case cfg.hybrid && cfg.mts > 0 && cfg.useACE:
		op = fmt.Sprintf("ACE frozen between outer steps (MTS M=%d)", cfg.mts)
	case cfg.hybrid && cfg.mts > 0:
		op = fmt.Sprintf("exact exchange frozen between outer steps (MTS M=%d)", cfg.mts)
	case cfg.hybrid && cfg.aceHold:
		op = "ACE (held through inner SCF)"
	case cfg.hybrid && cfg.useACE:
		op = "ACE (rebuilt per refresh)"
	case cfg.hybrid:
		op = "exact exchange"
	}
	fmt.Printf("distributed: %d ranks, exchange strategy %v, operator %s, single precision %v\n", cfg.ranks, cfg.exchange, op, cfg.single)

	records := make([]stepRecord, cfg.steps)
	psiFinal := make([]complex128, nb*g.NG)
	var tFinal float64
	var firstErr error
	stats := mpi.Run(cfg.ranks, func(c *mpi.Comm) {
		d, err := dist.NewCtx(c, g, nb, 2)
		if err != nil {
			if c.Rank() == 0 {
				firstErr = err
			}
			return
		}
		h := hamiltonian.New(g, sipots(), hamiltonian.Config{})
		s := dist.NewPTCNSolver(d, h, xc.HSE06(), cfg.hybrid, field, core.DefaultPTCN(), exOpt)
		s.Time = t0
		lo, hi := d.BandRange(c.Rank())
		local := wavefunc.Clone(psi0[lo*g.NG : hi*g.NG])
		if loaded != nil {
			// Land on the saved cycle phase; mid-cycle the frozen exchange
			// reference of the last outer step is restored (and the
			// compressed operator reconstructed from it, collectively).
			var ref []complex128
			if loaded.PhiRef != nil {
				ref = loaded.PhiRef[lo*g.NG : hi*g.NG]
			}
			if err := s.ResumeMTS(int(loaded.MTSPhase), ref); err != nil {
				if c.Rank() == 0 {
					firstErr = err
				}
				return
			}
		}
		for i := 0; i < cfg.steps; i++ {
			start := time.Now()
			var st core.StepStats
			local, st, err = s.Step(local, dt)
			if err != nil {
				// Convergence failures are symmetric across ranks (the
				// density criterion is global), so every rank exits here
				// together and no collective is left half-entered.
				if c.Rank() == 0 {
					firstErr = fmt.Errorf("step %d: %w", i, err)
				}
				return
			}
			// Match runSerial's accounting: the wall clock covers the
			// step only, not the observable evaluations after it.
			wall := time.Since(start).Seconds()
			eb := s.TotalEnergy(local, s.Time)
			j := s.Current(local)
			nexc := s.ExcitedElectrons(psiGS, local)
			if c.Rank() == 0 {
				records[i] = stepRecord{
					timeFs:   s.Time * units.FemtosecondPerAU,
					energy:   eb.Total(),
					currentZ: j[2],
					excited:  nexc,
					scfIters: st.SCFIterations,
					wallSec:  wall,
				}
				prof.Add("propagation step", wall)
			}
		}
		full := d.Gather(local)
		if c.Rank() == 0 {
			copy(psiFinal, full)
			tFinal = s.Time
		}
		if cfg.mts > 0 {
			// The phase and the save path are rank-symmetric, so the
			// gather decision is a collective-safe branch; only mid-cycle
			// saves need the frozen reference on the wire at all.
			phase := s.MTSPhase()
			if c.Rank() == 0 {
				snap.phase = phase
			}
			if phase != 0 && cfg.savePath != "" {
				ref := d.Gather(s.MTSRef())
				if c.Rank() == 0 {
					snap.phiRef = wavefunc.Clone(ref)
				}
			}
		}
	})
	if firstErr != nil {
		return nil, nil, 0, snap, firstErr
	}
	fmt.Printf("communication volume: Bcast %.1f MB, Alltoallv %.1f MB, Allreduce %.1f MB, AllGatherv %.1f MB\n",
		mb(stats.BytesFor(mpi.ClassBcast)), mb(stats.BytesFor(mpi.ClassAlltoallv)),
		mb(stats.BytesFor(mpi.ClassAllreduce)), mb(stats.BytesFor(mpi.ClassAllgatherv)))
	return records, psiFinal, tFinal, snap, nil
}

func mb(b int64) float64 { return float64(b) / 1e6 }

func sipots() map[int]*pseudo.Potential {
	return map[int]*pseudo.Potential{0: pseudo.SiliconAH()}
}

func writeCSV(path string, records []stepRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"time_fs", "energy_ha", "current_z", "excited_electrons", "scf_iterations", "wall_seconds"}); err != nil {
		return err
	}
	for _, r := range records {
		rec := []string{
			strconv.FormatFloat(r.timeFs, 'g', 12, 64),
			strconv.FormatFloat(r.energy, 'g', 14, 64),
			strconv.FormatFloat(r.currentZ, 'g', 8, 64),
			strconv.FormatFloat(r.excited, 'g', 8, 64),
			strconv.Itoa(r.scfIters),
			strconv.FormatFloat(r.wallSec, 'g', 6, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}
