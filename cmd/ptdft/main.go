// Command ptdft runs real (laptop-scale) rt-TDDFT simulations with the
// library: ground-state SCF followed by time propagation with PT-CN or
// RK4, optionally with the hybrid (screened exchange) functional, a laser
// pulse or delta kick, and optional distribution over goroutine-MPI ranks.
//
//	ptdft -cells 1,1,1 -ecut 4 -method ptcn -dt 24 -steps 10 -kick 0.02
//	ptdft -cells 1,1,2 -hybrid -method ptcn -dt 50 -steps 4 -pulse 0.005
//	ptdft -ranks 4 -method ptcn -steps 5
//	ptdft -hybrid -ace -mts 4 -ranks 4 -steps 8   # exchange refreshed every 4th step
//	ptdft -md -displace 0:0.2,0,0 -ionsteps 20 -iondt 96 -dt 24 -kick 0   # Ehrenfest MD
//	ptdft -steps 100 -save traj.ckp -ckptevery 10   # durable rolling checkpoints; SIGINT checkpoints and exits
//
// Output: one line per step (time, energy, current, excited carriers, SCF
// count) plus a trace breakdown, and optionally a CSV file for plotting.
// With -md each line is one ion step and the energy column is the
// conserved total (electronic + ion kinetic + ion-ion).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ptdft/internal/checkpoint"
	"ptdft/internal/core"
	"ptdft/internal/dist"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/ion"
	"ptdft/internal/laser"
	"ptdft/internal/lattice"
	"ptdft/internal/mpi"
	"ptdft/internal/observe"
	"ptdft/internal/pseudo"
	"ptdft/internal/scf"
	"ptdft/internal/trace"
	"ptdft/internal/units"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

type config struct {
	cells      [3]int
	ecut       float64
	hybrid     bool
	useACE     bool
	aceHold    bool
	mts        int
	method     string
	dtAs       float64
	steps      int
	kick       float64
	pulseE0    float64
	ranks      int
	seed       int64
	csvPath    string
	quiet      bool
	strategy   string
	exchange   dist.ExchangeStrategy
	stealChunk int
	single     bool
	savePath   string
	loadPath   string
	ckptEvery  int

	// Ehrenfest ion dynamics.
	md           bool
	ionSteps     int
	ionDtAs      float64
	displaceSpec string
	displaceAtom int
	displaceVec  [3]float64
	hasDisplace  bool

	// Runtime wiring, not flags. stop is closed on SIGINT/SIGTERM (or by a
	// test); the drivers finish the step in flight, checkpoint, and return.
	// afterStep is a test hook observing each completed step (rank 0 in
	// distributed runs). roll/natom are filled by run() when -ckptevery is
	// active.
	stop      chan struct{}
	afterStep func(done int)
	roll      *checkpoint.Rolling
	natom     int64
}

// stopped reports whether a shutdown was requested (signal or test hook).
func (c *config) stopped() bool {
	if c.stop == nil {
		return false
	}
	select {
	case <-c.stop:
		return true
	default:
		return false
	}
}

// tagStop is the AllreduceSum tag (consumes tagStop and tagStop+1) for the
// per-step shutdown vote: far above the dist tag namespace (fixed tags end
// at 131; the exchange windows are 1<<10..1<<12 + band index).
const tagStop = 9000

func parseFlags() (*config, error) {
	var c config
	cellsStr := flag.String("cells", "1,1,1", "supercell repetitions nx,ny,nz (8 Si atoms per cell)")
	flag.Float64Var(&c.ecut, "ecut", 4, "kinetic energy cutoff (Ha); the paper uses 10")
	flag.BoolVar(&c.hybrid, "hybrid", false, "use the HSE-like hybrid functional (screened Fock exchange)")
	flag.BoolVar(&c.useACE, "ace", false, "apply exchange through the ACE compression (serial and distributed runs)")
	flag.BoolVar(&c.aceHold, "acehold", false, "hold the distributed ACE operator fixed through each step's inner SCF (Jia & Lin cadence; implies -ace; equals -mts 1)")
	flag.IntVar(&c.mts, "mts", 0, "multiple time stepping: refresh the hybrid exchange every M steps, frozen in between (0 = off; requires -hybrid and -method ptcn)")
	flag.StringVar(&c.method, "method", "ptcn", "time integrator: ptcn or rk4")
	flag.Float64Var(&c.dtAs, "dt", 24, "time step in attoseconds (paper: 50 for PT-CN, 0.5 for RK4)")
	flag.IntVar(&c.steps, "steps", 5, "number of propagation steps")
	flag.Float64Var(&c.kick, "kick", 0.02, "delta-kick vector potential (au); 0 disables")
	flag.Float64Var(&c.pulseE0, "pulse", 0, "380nm Gaussian pulse peak field (Ha/bohr); overrides -kick")
	flag.IntVar(&c.ranks, "ranks", 0, "distribute over N goroutine-MPI ranks (0 = serial)")
	flag.Int64Var(&c.seed, "seed", 1234, "ground-state starting guess seed")
	flag.StringVar(&c.csvPath, "csv", "", "write per-step observables to this CSV file")
	flag.BoolVar(&c.quiet, "q", false, "suppress per-step output")
	flag.StringVar(&c.strategy, "exchange", "overlap", "distributed exchange strategy: "+strings.Join(dist.StrategyNames(), ", "))
	flag.IntVar(&c.stealChunk, "stealchunk", 0, "pairs per work-queue claim under -exchange steal (0 = auto)")
	flag.BoolVar(&c.single, "singleprec", false, "single-precision MPI payloads (distributed runs)")
	flag.StringVar(&c.savePath, "save", "", "write a restart checkpoint here after the last step")
	flag.StringVar(&c.loadPath, "load", "", "resume from a checkpoint instead of the ground state")
	flag.IntVar(&c.ckptEvery, "ckptevery", 0, "write a durable rolling checkpoint every N steps (ion steps with -md) to the -save path; 0 = final save only")
	flag.BoolVar(&c.md, "md", false, "Ehrenfest ion dynamics: velocity-Verlet ions coupled to PT-CN electrons (Hellmann-Feynman forces)")
	flag.IntVar(&c.ionSteps, "ionsteps", 10, "number of ion MD steps (with -md; replaces -steps as the trajectory length)")
	flag.Float64Var(&c.ionDtAs, "iondt", 96, "ion time step in attoseconds (with -md); must be an integer multiple of -dt")
	flag.StringVar(&c.displaceSpec, "displace", "", "displace one atom before the ground state: i:dx,dy,dz (Bohr), e.g. 0:0.2,0,0")
	flag.Parse()
	parts := strings.Split(*cellsStr, ",")
	if len(parts) != 3 {
		return nil, fmt.Errorf("-cells wants nx,ny,nz, got %q", *cellsStr)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad cell count %q", p)
		}
		c.cells[i] = v
	}
	if c.method != "ptcn" && c.method != "rk4" {
		return nil, fmt.Errorf("unknown method %q", c.method)
	}
	// No silent flag drops: every exchange-operator request must reach a
	// code path that honors it.
	if c.aceHold {
		c.useACE = true
		if c.ranks <= 1 {
			return nil, fmt.Errorf("-acehold is a distributed cadence (requires -ranks > 1); the serial ACE always rebuilds per refresh - for a serial hold use -mts 1")
		}
	}
	if c.useACE && !c.hybrid {
		return nil, fmt.Errorf("-ace selects the exchange operator of the hybrid functional; add -hybrid")
	}
	switch {
	case c.mts < 0:
		return nil, fmt.Errorf("-mts wants a refresh period >= 1 (or 0 to disable), got %d", c.mts)
	case c.mts > 0 && !c.hybrid:
		return nil, fmt.Errorf("-mts freezes the hybrid exchange between outer steps; it needs -hybrid")
	case c.mts > 0 && c.method != "ptcn":
		return nil, fmt.Errorf("-mts is a PT-CN refresh cadence; -method %s does not support it", c.method)
	case c.mts > 1 && c.aceHold:
		return nil, fmt.Errorf("-acehold is exactly -mts 1; it cannot combine with -mts %d - pick one cadence", c.mts)
	}
	// Ion dynamics composes with PT-CN only (the ion step is defined as K
	// electronic PT-CN steps), and the ion step must tile exactly into
	// electronic steps.
	if c.md {
		if c.method != "ptcn" {
			return nil, fmt.Errorf("-md couples the ions to the PT-CN propagator; -method %s does not support it", c.method)
		}
		if c.ionSteps < 1 {
			return nil, fmt.Errorf("-ionsteps wants at least 1, got %d", c.ionSteps)
		}
		if c.dtAs <= 0 || c.ionDtAs <= 0 {
			return nil, fmt.Errorf("-md wants positive time steps, got -dt %g and -iondt %g", c.dtAs, c.ionDtAs)
		}
		k := c.ionDtAs / c.dtAs
		if k < 0.5 || math.Abs(k-math.Round(k)) > 1e-9*k {
			return nil, fmt.Errorf("-iondt %g as is not an integer multiple of -dt %g as (each ion step spans K electronic steps)", c.ionDtAs, c.dtAs)
		}
	}
	if c.displaceSpec != "" {
		var err error
		c.displaceAtom, c.displaceVec, err = parseDisplace(c.displaceSpec)
		if err != nil {
			return nil, err
		}
		c.hasDisplace = true
	}
	// Resolve the exchange strategy up front so a typo fails before the
	// ground-state SCF runs, not after.
	var err error
	if c.exchange, err = dist.ParseStrategy(c.strategy); err != nil {
		return nil, err
	}
	if c.stealChunk < 0 {
		return nil, fmt.Errorf("-stealchunk wants a positive chunk size (or 0 for auto), got %d", c.stealChunk)
	}
	if c.stealChunk > 0 && c.exchange != dist.Steal {
		return nil, fmt.Errorf("-stealchunk tunes the work-queue granularity of -exchange steal; it does nothing under -exchange %s", c.strategy)
	}
	if c.ckptEvery < 0 {
		return nil, fmt.Errorf("-ckptevery wants a cadence >= 1 (or 0 for a final save only), got %d", c.ckptEvery)
	}
	if c.ckptEvery > 0 && c.savePath == "" {
		return nil, fmt.Errorf("-ckptevery writes rolling checkpoints to the -save path; add -save")
	}
	return &c, nil
}

// ionSubsteps returns K, the electronic PT-CN steps per ion step.
func (c *config) ionSubsteps() int { return int(math.Round(c.ionDtAs / c.dtAs)) }

// parseDisplace parses the -displace argument i:dx,dy,dz.
func parseDisplace(s string) (int, [3]float64, error) {
	var vec [3]float64
	head, tail, ok := strings.Cut(s, ":")
	if !ok {
		return 0, vec, fmt.Errorf("-displace wants i:dx,dy,dz, got %q", s)
	}
	atom, err := strconv.Atoi(strings.TrimSpace(head))
	if err != nil || atom < 0 {
		return 0, vec, fmt.Errorf("-displace: bad atom index %q", head)
	}
	parts := strings.Split(tail, ",")
	if len(parts) != 3 {
		return 0, vec, fmt.Errorf("-displace wants three components, got %q", tail)
	}
	for i, p := range parts {
		if vec[i], err = strconv.ParseFloat(strings.TrimSpace(p), 64); err != nil {
			return 0, vec, fmt.Errorf("-displace: bad component %q", p)
		}
	}
	return atom, vec, nil
}

func main() {
	cfg, err := parseFlags()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Graceful shutdown: the first SIGINT/SIGTERM finishes the step in
	// flight and writes the final checkpoint (when -save is set); a second
	// signal falls back to the default handler and kills the process.
	cfg.stop = make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "\ncaught %v: finishing the current step, then checkpointing and exiting\n", s)
		close(cfg.stop)
		signal.Stop(sig)
	}()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type stepRecord struct {
	timeFs   float64
	energy   float64
	currentZ float64
	excited  float64
	scfIters int
	wallSec  float64
}

func run(cfg *config) error {
	cell, err := lattice.SiliconSupercell(cfg.cells[0], cfg.cells[1], cfg.cells[2])
	if err != nil {
		return err
	}
	if cfg.hasDisplace {
		if err := cell.DisplaceAtom(cfg.displaceAtom, cfg.displaceVec); err != nil {
			return err
		}
		fmt.Printf("displaced atom %d by (%g, %g, %g) Bohr\n", cfg.displaceAtom,
			cfg.displaceVec[0], cfg.displaceVec[1], cfg.displaceVec[2])
	}
	g, err := grid.New(cell, cfg.ecut)
	if err != nil {
		return err
	}
	nb := cell.NumBands()
	fmt.Printf("system: Si%d  (%dx%dx%d cells), Ecut %.1f Ha\n", cell.NumAtoms(), cfg.cells[0], cfg.cells[1], cfg.cells[2], cfg.ecut)
	fmt.Printf("grid: wavefunction %v (NG=%d sphere), density %v; bands %d\n", g.N, g.NG, g.ND, nb)

	prof := trace.New()
	pots := sipots()
	hcfg := hamiltonian.Config{Hybrid: cfg.hybrid, UseACE: cfg.useACE, Params: xc.HSE06(), IonDynamics: cfg.md}
	h := hamiltonian.New(g, pots, hcfg)

	// Ground state.
	opt := scf.Defaults()
	opt.Seed = cfg.seed
	var gs *scf.Result
	prof.Time("ground state SCF", func() {
		gs, err = scf.GroundState(g, h, nb, opt)
	})
	if err != nil {
		return err
	}
	fmt.Printf("ground state: E = %.8f Ha (%d SCF iterations, density err %.2e)\n",
		gs.Energy.Total(), gs.SCFIterations, gs.DensityError)

	var field laser.Field
	switch {
	case cfg.pulseE0 != 0:
		sigma := units.AttosecondsToAU(cfg.dtAs) * float64(cfg.steps) / 4
		field = laser.New380nm(cfg.pulseE0, 2*sigma, sigma)
		fmt.Printf("field: 380nm pulse, E0=%.4g Ha/bohr\n", cfg.pulseE0)
	case cfg.kick != 0:
		field = &laser.Kick{K: cfg.kick, Pol: [3]float64{0, 0, 1}}
		fmt.Printf("field: delta kick A=%.4g au along z\n", cfg.kick)
	}

	// Resume from a checkpoint when requested; otherwise start from the
	// freshly converged ground state.
	psiStart := gs.Psi
	t0 := 0.0
	var loaded *checkpoint.State
	if cfg.loadPath != "" {
		st, err := checkpoint.LoadFile(cfg.loadPath)
		if err != nil {
			return err
		}
		if err := st.Compatible(nb, g.NG, int64(cell.NumAtoms()), cfg.ecut, cfg.hybrid, cfg.mts, cfg.useACE, cfg.md); err != nil {
			return err
		}
		loaded = st
		psiStart = st.Psi
		t0 = st.Time
		fmt.Printf("resumed from %s at t = %.2f as (step %d)\n", cfg.loadPath, units.AUToAttoseconds(st.Time), st.Step)
	}

	cfg.natom = int64(cell.NumAtoms())
	if cfg.ckptEvery > 0 {
		cfg.roll = &checkpoint.Rolling{Base: cfg.savePath}
		unit := "steps"
		if cfg.md {
			unit = "ion steps"
		}
		fmt.Printf("durable checkpoints: every %d %s to %s (rolling, last-good link)\n", cfg.ckptEvery, unit, cfg.savePath)
	}

	dt := units.AttosecondsToAU(cfg.dtAs)
	var records []stepRecord
	var psiFinal []complex128
	var tFinal float64
	var mts mtsSnapshot
	var ions ionSnapshot
	switch {
	case cfg.md && cfg.ranks > 1:
		records, psiFinal, tFinal, mts, ions, err = runDistributedMD(cfg, cell, g, gs.Psi, psiStart, nb, field, dt, t0, loaded, prof)
	case cfg.md:
		records, psiFinal, tFinal, mts, ions, err = runSerialMD(cfg, cell, g, h, gs.Psi, psiStart, nb, field, dt, t0, loaded, prof)
	case cfg.ranks > 1:
		records, psiFinal, tFinal, mts, err = runDistributed(cfg, g, gs.Psi, psiStart, nb, field, dt, t0, loaded, prof)
	default:
		records, psiFinal, tFinal, mts, err = runSerial(cfg, g, h, gs.Psi, psiStart, nb, field, dt, t0, loaded, prof)
	}
	if err != nil {
		return err
	}
	if cfg.md && len(records) > 0 {
		var drift float64
		for _, r := range records {
			if d := math.Abs(r.energy - ions.e0); d > drift {
				drift = d
			}
		}
		fmt.Printf("ehrenfest: %d ion steps of %g as (K=%d electronic steps each); max total-energy drift %.3e Ha\n",
			cfg.ionSteps, cfg.ionDtAs, cfg.ionSubsteps(), drift)
	}

	if !cfg.quiet {
		fmt.Printf("\n%10s %16s %14s %10s %6s %10s\n", "t (fs)", "E (Ha)", "J_z (au)", "n_exc", "SCF", "wall (s)")
		for _, r := range records {
			fmt.Printf("%10.5f %16.8f %14.4e %10.5f %6d %10.3f\n", r.timeFs, r.energy, r.currentZ, r.excited, r.scfIters, r.wallSec)
		}
	}

	// The drivers return one record per completed step, so a run stopped
	// early by a signal checkpoints the steps that actually ran.
	if cfg.stopped() {
		total := cfg.steps
		if cfg.md {
			total = cfg.ionSteps
		}
		fmt.Printf("interrupted: stopped after %d of %d steps; the checkpoint covers the completed steps\n", len(records), total)
	}
	if cfg.savePath != "" {
		// The step counter is cumulative provenance: a resumed segment
		// saves loaded.Step + its own steps, so a 600-step run split
		// across allocations reports the true global step on every file.
		// Under MTS the cadence phase (and, mid-cycle, the frozen exchange
		// reference) rides along so the next segment lands on the correct
		// outer/inner step with the identical frozen operator.
		elSteps := len(records)
		if cfg.md {
			elSteps = len(records) * cfg.ionSubsteps()
		}
		st := cfg.segmentState(g, nb, tFinal, psiFinal, loaded, elSteps, mts.phase, mts.phiRef)
		if cfg.md {
			st.IonSteps = checkpoint.ContinuationIonSteps(loaded, len(records))
			st.IonPos, st.IonVel, st.IonForce = ions.pos, ions.vel, ions.force
		}
		if cfg.roll != nil {
			err = cfg.roll.Save(st)
		} else {
			err = checkpoint.SaveFile(cfg.savePath, st)
		}
		if err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s (step %d)\n", cfg.savePath, st.Step)
	}
	fmt.Println()
	prof.Report(os.Stdout)
	if cfg.csvPath != "" {
		if err := writeCSV(cfg.csvPath, records); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.csvPath)
	}
	return nil
}

// segmentState assembles the restartable state after elDone completed
// electronic steps of this segment (MD callers add the ion block).
func (c *config) segmentState(g *grid.Grid, nb int, t float64, psi []complex128, loaded *checkpoint.State, elDone, phase int, phiRef []complex128) *checkpoint.State {
	return &checkpoint.State{
		Time: t, Step: checkpoint.ContinuationStep(loaded, elDone), NBands: nb, NG: g.NG,
		Natom: c.natom, Ecut: c.ecut, Hybrid: c.hybrid, Psi: psi,
		MTSPeriod: int64(c.mts), MTSPhase: int64(phase), MTSACE: c.useACE && c.mts > 0,
		PhiRef: phiRef,
	}
}

// mtsSnapshot carries the MTS cadence state out of a propagation for
// checkpointing: the cycle phase at the end of the run and - mid-cycle
// only - the frozen exchange reference of the last outer step.
type mtsSnapshot struct {
	phase  int
	phiRef []complex128
}

func runSerial(cfg *config, g *grid.Grid, h *hamiltonian.Hamiltonian, psiGS, psi0 []complex128, nb int, field laser.Field, dt, t0 float64, loaded *checkpoint.State, prof *trace.Profile) ([]stepRecord, []complex128, float64, mtsSnapshot, error) {
	sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: field}
	psi := wavefunc.Clone(psi0)
	var records []stepRecord
	var snap mtsSnapshot
	var stepFn func([]complex128, float64) ([]complex128, core.StepStats, error)
	var now func() float64
	var pt *core.PTCN
	switch cfg.method {
	case "ptcn":
		pt = core.NewPTCN(sys, core.DefaultPTCN())
		pt.Time = t0
		pt.MTS = cfg.mts
		if loaded != nil {
			if err := pt.ResumeMTS(int(loaded.MTSPhase), loaded.PhiRef); err != nil {
				return nil, nil, 0, snap, err
			}
		}
		stepFn, now = pt.Step, func() float64 { return pt.Time }
	case "rk4":
		r := core.NewRK4(sys)
		r.Time = t0
		stepFn, now = r.Step, func() float64 { return r.Time }
	}
	for i := 0; i < cfg.steps; i++ {
		start := time.Now()
		var stats core.StepStats
		var err error
		psi, stats, err = stepFn(psi, dt)
		if err != nil {
			return nil, nil, 0, snap, fmt.Errorf("step %d: %w", i, err)
		}
		wall := time.Since(start).Seconds()
		prof.Add("propagation step", wall)
		eb := observe.Energy(sys, psi, now())
		j := observe.Current(sys, psi)
		records = append(records, stepRecord{
			timeFs:   now() * units.FemtosecondPerAU,
			energy:   eb.Total(),
			currentZ: j[2],
			excited:  observe.ExcitedElectrons(sys, psiGS, psi),
			scfIters: stats.SCFIterations,
			wallSec:  wall,
		})
		done := i + 1
		if cfg.afterStep != nil {
			cfg.afterStep(done)
		}
		if cfg.roll != nil && done%cfg.ckptEvery == 0 && done < cfg.steps {
			phase := 0
			var ref []complex128
			if pt != nil && cfg.mts > 0 {
				if phase = pt.MTSPhase(); phase != 0 {
					ref = wavefunc.Clone(pt.MTSRef())
				}
			}
			st := cfg.segmentState(g, nb, now(), wavefunc.Clone(psi), loaded, done, phase, ref)
			if err := cfg.roll.Save(st); err != nil {
				return nil, nil, 0, snap, fmt.Errorf("periodic checkpoint after step %d: %w", done, err)
			}
		}
		if cfg.stopped() {
			break
		}
	}
	// Report which exchange operator actually propagated the run: a
	// degenerate reference set downgrades an -ace refresh to the exact
	// operator, and that must never stay invisible.
	if cfg.hybrid && cfg.useACE {
		if n, lastErr := h.ACEFallbacks(); n > 0 {
			fmt.Printf("exchange operator: ACE with %d refresh(es) fallen back to exact exchange (last failure: %v)\n", n, lastErr)
		} else {
			fmt.Println("exchange operator: ACE (no fallbacks)")
		}
	}
	if pt != nil && cfg.mts > 0 {
		snap.phase = pt.MTSPhase()
		if snap.phase != 0 && cfg.savePath != "" {
			// The frozen-reference copy only matters to a checkpoint.
			snap.phiRef = wavefunc.Clone(pt.MTSRef())
		}
		fmt.Printf("MTS cadence: exchange refreshed every %d steps (ended at cycle phase %d)\n", cfg.mts, snap.phase)
	}
	return records, psi, now(), snap, nil
}

func runDistributed(cfg *config, g *grid.Grid, psiGS, psi0 []complex128, nb int, field laser.Field, dt, t0 float64, loaded *checkpoint.State, prof *trace.Profile) ([]stepRecord, []complex128, float64, mtsSnapshot, error) {
	var snap mtsSnapshot
	if cfg.method != "ptcn" {
		return nil, nil, 0, snap, fmt.Errorf("distributed runs support -method ptcn only")
	}
	if nb%cfg.ranks != 0 {
		return nil, nil, 0, snap, fmt.Errorf("%d bands not divisible by %d ranks", nb, cfg.ranks)
	}
	exOpt := dist.ExchangeOptions{
		Strategy:          cfg.exchange,
		SinglePrecision:   cfg.single,
		ACE:               cfg.useACE,
		ACEHoldThroughSCF: cfg.aceHold,
		MTSPeriod:         cfg.mts,
		StealChunk:        cfg.stealChunk,
	}
	op := "none (semi-local)"
	switch {
	case cfg.hybrid && cfg.mts > 0 && cfg.useACE:
		op = fmt.Sprintf("ACE frozen between outer steps (MTS M=%d)", cfg.mts)
	case cfg.hybrid && cfg.mts > 0:
		op = fmt.Sprintf("exact exchange frozen between outer steps (MTS M=%d)", cfg.mts)
	case cfg.hybrid && cfg.aceHold:
		op = "ACE (held through inner SCF)"
	case cfg.hybrid && cfg.useACE:
		op = "ACE (rebuilt per refresh)"
	case cfg.hybrid:
		op = "exact exchange"
	}
	fmt.Printf("distributed: %d ranks, exchange strategy %v, operator %s, single precision %v\n", cfg.ranks, cfg.exchange, op, cfg.single)

	records := make([]stepRecord, cfg.steps)
	psiFinal := make([]complex128, nb*g.NG)
	var tFinal float64
	var firstErr, saveErr error
	doneSteps := 0
	stats := mpi.Run(cfg.ranks, func(c *mpi.Comm) {
		d, err := dist.NewCtx(c, g, nb, 2)
		if err != nil {
			if c.Rank() == 0 {
				firstErr = err
			}
			return
		}
		h := hamiltonian.New(g, sipots(), hamiltonian.Config{})
		s := dist.NewPTCNSolver(d, h, xc.HSE06(), cfg.hybrid, field, core.DefaultPTCN(), exOpt)
		s.Time = t0
		lo, hi := d.BandRange(c.Rank())
		local := wavefunc.Clone(psi0[lo*g.NG : hi*g.NG])
		if loaded != nil {
			// Land on the saved cycle phase; mid-cycle the frozen exchange
			// reference of the last outer step is restored (and the
			// compressed operator reconstructed from it, collectively).
			var ref []complex128
			if loaded.PhiRef != nil {
				ref = loaded.PhiRef[lo*g.NG : hi*g.NG]
			}
			if err := s.ResumeMTS(int(loaded.MTSPhase), ref); err != nil {
				if c.Rank() == 0 {
					firstErr = err
				}
				return
			}
		}
		for i := 0; i < cfg.steps; i++ {
			start := time.Now()
			var st core.StepStats
			local, st, err = s.Step(local, dt)
			if err != nil {
				// Convergence failures are symmetric across ranks (the
				// density criterion is global), so every rank exits here
				// together and no collective is left half-entered.
				if c.Rank() == 0 {
					firstErr = fmt.Errorf("step %d: %w", i, err)
				}
				return
			}
			// Match runSerial's accounting: the wall clock covers the
			// step only, not the observable evaluations after it.
			wall := time.Since(start).Seconds()
			eb := s.TotalEnergy(local, s.Time)
			j := s.Current(local)
			nexc := s.ExcitedElectrons(psiGS, local)
			done := i + 1
			if c.Rank() == 0 {
				records[i] = stepRecord{
					timeFs:   s.Time * units.FemtosecondPerAU,
					energy:   eb.Total(),
					currentZ: j[2],
					excited:  nexc,
					scfIters: st.SCFIterations,
					wallSec:  wall,
				}
				prof.Add("propagation step", wall)
				doneSteps = done
				if cfg.afterStep != nil {
					cfg.afterStep(done)
				}
			}
			// Periodic durable checkpoint: the cadence test is on the shared
			// step counter, so every rank enters the gathers together. A
			// failed save must not abort mid-collective (the other ranks
			// would hang); it is recorded and reported after the run.
			if cfg.roll != nil && done%cfg.ckptEvery == 0 && done < cfg.steps {
				phase := 0
				if cfg.mts > 0 {
					phase = s.MTSPhase()
				}
				full := d.Gather(local)
				var ref []complex128
				if phase != 0 {
					refFull := d.Gather(s.MTSRef())
					if c.Rank() == 0 {
						ref = wavefunc.Clone(refFull)
					}
				}
				if c.Rank() == 0 {
					st := cfg.segmentState(g, nb, s.Time, wavefunc.Clone(full), loaded, done, phase, ref)
					if err := cfg.roll.Save(st); err != nil && saveErr == nil {
						saveErr = fmt.Errorf("periodic checkpoint after step %d: %w", done, err)
					}
				}
			}
			// Shutdown vote: only rank 0 sees the signal flag; the sum makes
			// the break rank-symmetric so no collective is left half-entered.
			stopFlag := []float64{0}
			if c.Rank() == 0 && cfg.stopped() {
				stopFlag[0] = 1
			}
			mpi.AllreduceSum(c, tagStop, stopFlag)
			if stopFlag[0] != 0 {
				break
			}
		}
		full := d.Gather(local)
		if c.Rank() == 0 {
			copy(psiFinal, full)
			tFinal = s.Time
		}
		if cfg.mts > 0 {
			// The phase and the save path are rank-symmetric, so the
			// gather decision is a collective-safe branch; only mid-cycle
			// saves need the frozen reference on the wire at all.
			phase := s.MTSPhase()
			if c.Rank() == 0 {
				snap.phase = phase
			}
			if phase != 0 && cfg.savePath != "" {
				ref := d.Gather(s.MTSRef())
				if c.Rank() == 0 {
					snap.phiRef = wavefunc.Clone(ref)
				}
			}
		}
	})
	if firstErr != nil {
		return nil, nil, 0, snap, firstErr
	}
	if saveErr != nil {
		return nil, nil, 0, snap, saveErr
	}
	fmt.Printf("communication volume: Bcast %.1f MB, Alltoallv %.1f MB, Allreduce %.1f MB, AllGatherv %.1f MB\n",
		mb(stats.BytesFor(mpi.ClassBcast)), mb(stats.BytesFor(mpi.ClassAlltoallv)),
		mb(stats.BytesFor(mpi.ClassAllreduce)), mb(stats.BytesFor(mpi.ClassAllgatherv)))
	return records[:doneSteps], psiFinal, tFinal, snap, nil
}

// ionSnapshot carries the Ehrenfest ion state out of a propagation for
// checkpointing: positions, velocities and the cached force after the last
// completed ion step.
type ionSnapshot struct {
	pos, vel, force [][3]float64
	e0              float64 // conserved total before the first recorded step
}

// snapshotIons captures the integrator's restartable state.
func snapshotIons(v *ion.Verlet) ionSnapshot {
	return ionSnapshot{
		pos:   v.Cell.Positions(),
		vel:   append([][3]float64(nil), v.Vel...),
		force: append([][3]float64(nil), v.F...),
	}
}

// runSerialMD drives the coupled Ehrenfest system serially: a velocity-
// Verlet ion integrator over the cell, with core.PTCN advancing the
// electrons K steps per ion step. The recorded energy is the conserved
// total (electronic + ion kinetic + ion-ion).
func runSerialMD(cfg *config, cell *lattice.Cell, g *grid.Grid, h *hamiltonian.Hamiltonian, psiGS, psi0 []complex128, nb int, field laser.Field, dt, t0 float64, loaded *checkpoint.State, prof *trace.Profile) ([]stepRecord, []complex128, float64, mtsSnapshot, ionSnapshot, error) {
	var snap mtsSnapshot
	var ionsnap ionSnapshot
	sys := &core.System{G: g, H: h, NB: nb, Occ: 2, Field: field}
	pt := core.NewPTCN(sys, core.DefaultPTCN())
	pt.Time = t0
	pt.MTS = cfg.mts
	if loaded != nil {
		if err := pt.ResumeMTS(int(loaded.MTSPhase), loaded.PhiRef); err != nil {
			return nil, nil, 0, snap, ionsnap, err
		}
	}
	se := &ion.SerialElectrons{P: pt, Psi: wavefunc.Clone(psi0), Pots: sipots()}
	v, err := ion.NewVerlet(cell, se, units.AttosecondsToAU(cfg.ionDtAs), cfg.ionSubsteps())
	if err != nil {
		return nil, nil, 0, snap, ionsnap, err
	}
	if loaded != nil && loaded.HasIons() {
		if err := v.Resume(loaded.IonPos, loaded.IonVel, loaded.IonForce, int(loaded.IonSteps)); err != nil {
			return nil, nil, 0, snap, ionsnap, err
		}
	}
	// The drift baseline is the conserved total BEFORE any ion step: the
	// first step is the largest for a released atom and must not hide its
	// own error. (This also fills the initial force cache.)
	e0, err := v.TotalEnergy()
	if err != nil {
		return nil, nil, 0, snap, ionsnap, err
	}
	ionsnap.e0 = e0
	var records []stepRecord
	for i := 0; i < cfg.ionSteps; i++ {
		start := time.Now()
		se.SCF = 0
		if err := v.Step(); err != nil {
			return nil, nil, 0, snap, ionsnap, fmt.Errorf("ion step %d: %w", i, err)
		}
		wall := time.Since(start).Seconds()
		prof.Add("ion step", wall)
		etot, err := v.TotalEnergy()
		if err != nil {
			return nil, nil, 0, snap, ionsnap, err
		}
		j := observe.Current(sys, se.Psi)
		records = append(records, stepRecord{
			timeFs:   pt.Time * units.FemtosecondPerAU,
			energy:   etot,
			currentZ: j[2],
			excited:  observe.ExcitedElectrons(sys, psiGS, se.Psi),
			scfIters: se.SCF,
			wallSec:  wall,
		})
		done := i + 1
		if cfg.afterStep != nil {
			cfg.afterStep(done)
		}
		if cfg.roll != nil && done%cfg.ckptEvery == 0 && done < cfg.ionSteps {
			phase := 0
			var ref []complex128
			if cfg.mts > 0 {
				if phase = pt.MTSPhase(); phase != 0 {
					ref = wavefunc.Clone(pt.MTSRef())
				}
			}
			st := cfg.segmentState(g, nb, pt.Time, wavefunc.Clone(se.Psi), loaded, done*cfg.ionSubsteps(), phase, ref)
			st.IonSteps = checkpoint.ContinuationIonSteps(loaded, done)
			is := snapshotIons(v)
			st.IonPos, st.IonVel, st.IonForce = is.pos, is.vel, is.force
			if err := cfg.roll.Save(st); err != nil {
				return nil, nil, 0, snap, ionsnap, fmt.Errorf("periodic checkpoint after ion step %d: %w", done, err)
			}
		}
		if cfg.stopped() {
			break
		}
	}
	if cfg.mts > 0 {
		snap.phase = pt.MTSPhase()
		if snap.phase != 0 && cfg.savePath != "" {
			snap.phiRef = wavefunc.Clone(pt.MTSRef())
		}
	}
	e0 = ionsnap.e0
	ionsnap = snapshotIons(v)
	ionsnap.e0 = e0
	return records, se.Psi, pt.Time, snap, ionsnap, nil
}

// runDistributedMD drives the coupled system over goroutine-MPI ranks.
// Each rank owns a cloned cell and a grid/Hamiltonian built on it, and
// integrates a replicated Verlet trajectory: the forces are allreduced in
// deterministic rank order, so every replica is bit-identical and the
// trajectory matches the serial driver to reduction round-off.
func runDistributedMD(cfg *config, cell *lattice.Cell, g *grid.Grid, psiGS, psi0 []complex128, nb int, field laser.Field, dt, t0 float64, loaded *checkpoint.State, prof *trace.Profile) ([]stepRecord, []complex128, float64, mtsSnapshot, ionSnapshot, error) {
	var snap mtsSnapshot
	var ionsnap ionSnapshot
	if nb%cfg.ranks != 0 {
		return nil, nil, 0, snap, ionsnap, fmt.Errorf("%d bands not divisible by %d ranks", nb, cfg.ranks)
	}
	exOpt := dist.ExchangeOptions{
		Strategy:          cfg.exchange,
		SinglePrecision:   cfg.single,
		ACE:               cfg.useACE,
		ACEHoldThroughSCF: cfg.aceHold,
		MTSPeriod:         cfg.mts,
		StealChunk:        cfg.stealChunk,
	}
	fmt.Printf("distributed ehrenfest: %d ranks, %d ion steps x K=%d electronic steps\n", cfg.ranks, cfg.ionSteps, cfg.ionSubsteps())

	records := make([]stepRecord, cfg.ionSteps)
	psiFinal := make([]complex128, nb*g.NG)
	var tFinal float64
	var firstErr, saveErr error
	doneSteps := 0
	stats := mpi.Run(cfg.ranks, func(c *mpi.Comm) {
		fail := func(err error) {
			if c.Rank() == 0 {
				firstErr = err
			}
		}
		// Per-rank geometry: a cloned cell and a grid built on it, so the
		// concurrent position updates of the replicated trajectories never
		// touch shared memory.
		cellR := cell.Clone()
		gR, err := grid.New(cellR, cfg.ecut)
		if err != nil {
			fail(err)
			return
		}
		d, err := dist.NewCtx(c, gR, nb, 2)
		if err != nil {
			fail(err)
			return
		}
		h := hamiltonian.New(gR, sipots(), hamiltonian.Config{IonDynamics: true})
		s := dist.NewPTCNSolver(d, h, xc.HSE06(), cfg.hybrid, field, core.DefaultPTCN(), exOpt)
		s.Time = t0
		lo, hi := d.BandRange(c.Rank())
		de := &ion.DistElectrons{S: s, Local: wavefunc.Clone(psi0[lo*g.NG : hi*g.NG]), Pots: sipots()}
		if loaded != nil {
			var ref []complex128
			if loaded.PhiRef != nil {
				ref = loaded.PhiRef[lo*g.NG : hi*g.NG]
			}
			if err := s.ResumeMTS(int(loaded.MTSPhase), ref); err != nil {
				fail(err)
				return
			}
		}
		v, err := ion.NewVerlet(cellR, de, units.AttosecondsToAU(cfg.ionDtAs), cfg.ionSubsteps())
		if err != nil {
			fail(err)
			return
		}
		if loaded != nil && loaded.HasIons() {
			if err := v.Resume(loaded.IonPos, loaded.IonVel, loaded.IonForce, int(loaded.IonSteps)); err != nil {
				fail(err)
				return
			}
		}
		// Drift baseline before the first step, mirroring runSerialMD.
		e0, err := v.TotalEnergy()
		if err != nil {
			fail(err)
			return
		}
		for i := 0; i < cfg.ionSteps; i++ {
			start := time.Now()
			de.SCF = 0
			if err := v.Step(); err != nil {
				// PT-CN convergence failure is decided on the global
				// density, so every rank exits here together.
				fail(fmt.Errorf("ion step %d: %w", i, err))
				return
			}
			wall := time.Since(start).Seconds()
			etot, err := v.TotalEnergy()
			if err != nil {
				fail(err)
				return
			}
			j := s.Current(de.Local)
			nexc := s.ExcitedElectrons(psiGS, de.Local)
			done := i + 1
			if c.Rank() == 0 {
				records[i] = stepRecord{
					timeFs:   s.Time * units.FemtosecondPerAU,
					energy:   etot,
					currentZ: j[2],
					excited:  nexc,
					scfIters: de.SCF,
					wallSec:  wall,
				}
				prof.Add("ion step", wall)
				doneSteps = done
				if cfg.afterStep != nil {
					cfg.afterStep(done)
				}
			}
			// Periodic durable checkpoint (same collective discipline and
			// failure handling as runDistributed).
			if cfg.roll != nil && done%cfg.ckptEvery == 0 && done < cfg.ionSteps {
				phase := 0
				if cfg.mts > 0 {
					phase = s.MTSPhase()
				}
				full := d.Gather(de.Local)
				var ref []complex128
				if phase != 0 {
					refFull := d.Gather(s.MTSRef())
					if c.Rank() == 0 {
						ref = wavefunc.Clone(refFull)
					}
				}
				if c.Rank() == 0 {
					st := cfg.segmentState(g, nb, s.Time, wavefunc.Clone(full), loaded, done*cfg.ionSubsteps(), phase, ref)
					st.IonSteps = checkpoint.ContinuationIonSteps(loaded, done)
					is := snapshotIons(v)
					st.IonPos, st.IonVel, st.IonForce = is.pos, is.vel, is.force
					if err := cfg.roll.Save(st); err != nil && saveErr == nil {
						saveErr = fmt.Errorf("periodic checkpoint after ion step %d: %w", done, err)
					}
				}
			}
			stopFlag := []float64{0}
			if c.Rank() == 0 && cfg.stopped() {
				stopFlag[0] = 1
			}
			mpi.AllreduceSum(c, tagStop, stopFlag)
			if stopFlag[0] != 0 {
				break
			}
		}
		full := d.Gather(de.Local)
		if c.Rank() == 0 {
			copy(psiFinal, full)
			tFinal = s.Time
			ionsnap = snapshotIons(v)
			ionsnap.e0 = e0
		}
		if cfg.mts > 0 {
			phase := s.MTSPhase()
			if c.Rank() == 0 {
				snap.phase = phase
			}
			if phase != 0 && cfg.savePath != "" {
				ref := d.Gather(s.MTSRef())
				if c.Rank() == 0 {
					snap.phiRef = wavefunc.Clone(ref)
				}
			}
		}
	})
	if firstErr != nil {
		return nil, nil, 0, snap, ionsnap, firstErr
	}
	if saveErr != nil {
		return nil, nil, 0, snap, ionsnap, saveErr
	}
	fmt.Printf("communication volume: Bcast %.1f MB, Alltoallv %.1f MB, Allreduce %.1f MB, AllGatherv %.1f MB\n",
		mb(stats.BytesFor(mpi.ClassBcast)), mb(stats.BytesFor(mpi.ClassAlltoallv)),
		mb(stats.BytesFor(mpi.ClassAllreduce)), mb(stats.BytesFor(mpi.ClassAllgatherv)))
	return records[:doneSteps], psiFinal, tFinal, snap, ionsnap, nil
}

func mb(b int64) float64 { return float64(b) / 1e6 }

func sipots() map[int]*pseudo.Potential {
	return map[int]*pseudo.Potential{0: pseudo.SiliconAH()}
}

func writeCSV(path string, records []stepRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"time_fs", "energy_ha", "current_z", "excited_electrons", "scf_iterations", "wall_seconds"}); err != nil {
		return err
	}
	for _, r := range records {
		rec := []string{
			strconv.FormatFloat(r.timeFs, 'g', 12, 64),
			strconv.FormatFloat(r.energy, 'g', 14, 64),
			strconv.FormatFloat(r.currentZ, 'g', 8, 64),
			strconv.FormatFloat(r.excited, 'g', 8, 64),
			strconv.Itoa(r.scfIters),
			strconv.FormatFloat(r.wallSec, 'g', 6, 64),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}
