package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ptdft/internal/checkpoint"
	"ptdft/internal/sim"
	"ptdft/internal/units"
)

// testConfig returns a minimal serial PT-CN run configuration (tiny cell,
// low cutoff) with the runtime wiring a test can drive.
func testConfig(t *testing.T) *config {
	t.Helper()
	return &config{
		spec: sim.Spec{
			Cells: [3]int{1, 1, 1}, Ecut: 2, Method: "ptcn",
			DtAs: 24, Steps: 6, Kick: 0.02, Seed: 1234,
			Exchange: "bcast",
		},
		quiet: true,
		stop:  make(chan struct{}),
	}
}

// TestCkptEveryWritesRollingSequence: -ckptevery N lands durable step
// files on the cadence, the final state rides the same rolling sequence,
// and the stable -save path resolves to the newest checkpoint.
func TestCkptEveryWritesRollingSequence(t *testing.T) {
	cfg := testConfig(t)
	cfg.savePath = filepath.Join(t.TempDir(), "traj.ckp")
	cfg.ckptEvery = 2
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	// Cadence 2 over 6 steps: periodic saves at 2 and 4, final at 6; the
	// default retention keeps the newest two.
	for _, want := range []struct {
		step   int64
		exists bool
	}{{2, false}, {4, true}, {6, true}} {
		name := fmt.Sprintf("%s.step%010d", cfg.savePath, want.step)
		_, err := os.Stat(name)
		if got := err == nil; got != want.exists {
			t.Errorf("step-%d file exists=%v, want %v", want.step, got, want.exists)
		}
	}
	st, err := checkpoint.LoadFile(cfg.savePath)
	if err != nil {
		t.Fatalf("stable path does not load: %v", err)
	}
	if st.Step != 6 {
		t.Errorf("stable path resolves to step %d, want 6", st.Step)
	}
}

// TestStopWritesFinalCheckpoint: a shutdown request mid-run (the SIGINT/
// SIGTERM path, driven through the same stop channel the signal handler
// closes) finishes the step in flight and checkpoints the steps that
// actually ran - not the requested count.
func TestStopWritesFinalCheckpoint(t *testing.T) {
	cfg := testConfig(t)
	cfg.spec.Steps = 10
	cfg.savePath = filepath.Join(t.TempDir(), "stop.ckp")
	cfg.afterStep = func(done int) {
		if done == 3 {
			close(cfg.stop)
		}
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.LoadFile(cfg.savePath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != 3 {
		t.Errorf("checkpoint at step %d, want 3 (the completed steps)", st.Step)
	}
	wantT := 3 * units.AttosecondsToAU(cfg.spec.DtAs)
	if d := st.Time - wantT; d > 1e-12 || d < -1e-12 {
		t.Errorf("checkpoint time %g, want %g", st.Time, wantT)
	}
}

// TestStopDistributedIsSymmetric: in a distributed run only rank 0 sees
// the stop flag; the per-step vote must stop every rank together and the
// final checkpoint again reflects the completed steps.
func TestStopDistributedIsSymmetric(t *testing.T) {
	cfg := testConfig(t)
	cfg.spec.Steps = 6
	cfg.spec.Ranks = 2
	cfg.savePath = filepath.Join(t.TempDir(), "dstop.ckp")
	cfg.ckptEvery = 2
	cfg.afterStep = func(done int) {
		if done == 3 {
			close(cfg.stop)
		}
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.LoadFile(cfg.savePath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != 3 {
		t.Errorf("checkpoint at step %d, want 3", st.Step)
	}
}

// TestCkptEveryFlagValidation drives parseFlags (on a fresh flag set) to
// pin the -ckptevery gate: a cadence needs -save, and negative cadences
// are rejected.
func TestCkptEveryFlagValidation(t *testing.T) {
	parse := func(args ...string) error {
		oldCmd, oldArgs := flag.CommandLine, os.Args
		defer func() { flag.CommandLine, os.Args = oldCmd, oldArgs }()
		flag.CommandLine = flag.NewFlagSet("ptdft", flag.ContinueOnError)
		os.Args = append([]string{"ptdft"}, args...)
		_, err := parseFlags()
		return err
	}
	if err := parse("-ckptevery", "2"); err == nil || !strings.Contains(err.Error(), "-save") {
		t.Errorf("-ckptevery without -save not rejected: %v", err)
	}
	if err := parse("-ckptevery", "-1", "-save", "x.ckp"); err == nil {
		t.Error("negative -ckptevery not rejected")
	}
	if err := parse("-ckptevery", "2", "-save", "x.ckp"); err != nil {
		t.Errorf("valid -ckptevery rejected: %v", err)
	}
}
