// Command ptdftd is the long-running rt-TDDFT job daemon: an HTTP/JSON
// API (internal/server) over a bounded worker pool that multiplexes
// queued simulation jobs, with a shared ground-state SCF cache,
// streaming observables, preemption with automatic resume, and durable
// job records that survive restarts.
//
//	ptdftd -addr :8321 -workers 4 -dir /var/lib/ptdftd
//
//	curl -X POST localhost:8321/jobs -d '{"cells":[1,1,1],"ecut":4,"steps":10,"kick":0.02}'
//	curl localhost:8321/jobs/j000001
//	curl -N localhost:8321/jobs/j000001/stream
//	curl -X POST localhost:8321/jobs/j000001/preempt
//	curl -X DELETE localhost:8321/jobs/j000001
//	curl localhost:8321/jobs/j000001/profile   # phase breakdown + comm accounting
//	curl localhost:8321/metrics                # Prometheus text exposition
//
// SIGINT/SIGTERM drains gracefully: running jobs finish their step in
// flight and checkpoint, queued jobs stay queued on disk, and the next
// start on the same -dir resumes all of them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ptdft/internal/server"
)

func main() {
	addr := flag.String("addr", ":8321", "HTTP listen address")
	workers := flag.Int("workers", 2, "simulation jobs run concurrently")
	dir := flag.String("dir", "", "durable state directory (job records + checkpoints); empty = in-memory only")
	ckptEvery := flag.Int("ckptevery", 0, "periodic durable checkpoint every N steps while a job runs (0 = checkpoint on interruption only)")
	flag.Parse()
	if err := run(*addr, *workers, *dir, *ckptEvery); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr string, workers int, dir string, ckptEvery int) error {
	logf := func(format string, args ...any) {
		fmt.Printf("%s "+format+"\n", append([]any{time.Now().UTC().Format(time.RFC3339)}, args...)...)
	}
	srv, err := server.New(server.Config{
		Workers: workers, Dir: dir, CkptEvery: ckptEvery, Logf: logf,
	})
	if err != nil {
		return err
	}
	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		logf("ptdftd listening on %s (%d workers); metrics at %s/metrics", addr, workers, addr)
		errc <- hs.ListenAndServe()
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		logf("caught %v: draining (running jobs checkpoint after their step in flight)", s)
	}
	// Stop accepting connections first, then drain the pool; stream
	// clients are cut off by the HTTP shutdown deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("http shutdown: %v", err)
	}
	srv.Drain()
	return nil
}
