// Live metrics surfaces:
//
//	GET /metrics            Prometheus text exposition (scrapeable)
//	GET /jobs/{id}/profile  one job's phase breakdown and comm accounting
//
// The gauges and counters come straight from the state the server already
// guards with its mutex (job states, queue depth) plus the cumulative
// observability counters every attempt folds in from its flight recorder
// (rank-seconds, bytes moved) and the SCF cache outcome tally.
package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// metricsSnapshot is one consistent reading of the server's gauges.
type metricsSnapshot struct {
	jobs        map[State]int
	queueDepth  int
	workers     int
	busy        int
	scfHits     int64
	scfMisses   int64
	rankSeconds float64
	bytesMoved  int64
}

func (s *Server) snapshotMetrics() metricsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := metricsSnapshot{
		jobs:        make(map[State]int),
		workers:     s.cfg.workers(),
		scfHits:     s.scfHits,
		scfMisses:   s.scfMisses,
		rankSeconds: s.rankSecTotal,
		bytesMoved:  s.bytesTotal,
	}
	for _, j := range s.jobs {
		m.jobs[j.State]++
		if j.State == StateRunning {
			m.busy++
		}
	}
	// The queue holds stale entries for canceled jobs (dropped lazily by
	// the workers); depth counts only the entries still runnable.
	for _, id := range s.queue {
		if j := s.jobs[id]; j != nil && j.State == StateQueued {
			m.queueDepth++
		}
	}
	return m
}

// allStates fixes the label set so every scrape carries every state series
// (a state with no jobs reads 0 rather than disappearing).
var allStates = []State{StateQueued, StateRunning, StatePreempted, StateDone, StateFailed, StateCanceled}

// handleMetrics serves the Prometheus text exposition format (version
// 0.0.4: "# HELP"/"# TYPE" comments and one "name{labels} value" line per
// series).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.snapshotMetrics()
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP ptdftd_jobs Jobs by lifecycle state.\n# TYPE ptdftd_jobs gauge\n")
	for _, st := range allStates {
		fmt.Fprintf(&b, "ptdftd_jobs{state=%q} %d\n", st, m.jobs[st])
	}
	fmt.Fprintf(&b, "# HELP ptdftd_queue_depth Runnable jobs waiting for a worker.\n# TYPE ptdftd_queue_depth gauge\n")
	fmt.Fprintf(&b, "ptdftd_queue_depth %d\n", m.queueDepth)
	fmt.Fprintf(&b, "# HELP ptdftd_workers_total Worker pool size.\n# TYPE ptdftd_workers_total gauge\n")
	fmt.Fprintf(&b, "ptdftd_workers_total %d\n", m.workers)
	fmt.Fprintf(&b, "# HELP ptdftd_workers_busy Workers currently running a job.\n# TYPE ptdftd_workers_busy gauge\n")
	fmt.Fprintf(&b, "ptdftd_workers_busy %d\n", m.busy)
	fmt.Fprintf(&b, "# HELP ptdftd_scf_cache_hits_total Ground states served from the SCF cache.\n# TYPE ptdftd_scf_cache_hits_total counter\n")
	fmt.Fprintf(&b, "ptdftd_scf_cache_hits_total %d\n", m.scfHits)
	fmt.Fprintf(&b, "# HELP ptdftd_scf_cache_misses_total Ground states solved fresh.\n# TYPE ptdftd_scf_cache_misses_total counter\n")
	fmt.Fprintf(&b, "ptdftd_scf_cache_misses_total %d\n", m.scfMisses)
	if total := m.scfHits + m.scfMisses; total > 0 {
		fmt.Fprintf(&b, "# HELP ptdftd_scf_cache_hit_ratio Fraction of ground states served from the cache.\n# TYPE ptdftd_scf_cache_hit_ratio gauge\n")
		fmt.Fprintf(&b, "ptdftd_scf_cache_hit_ratio %g\n", float64(m.scfHits)/float64(total))
	}
	fmt.Fprintf(&b, "# HELP ptdftd_rank_seconds_total Cumulative busy seconds over all rank timelines.\n# TYPE ptdftd_rank_seconds_total counter\n")
	fmt.Fprintf(&b, "ptdftd_rank_seconds_total %g\n", m.rankSeconds)
	fmt.Fprintf(&b, "# HELP ptdftd_comm_bytes_total Cumulative bytes moved through job communicators.\n# TYPE ptdftd_comm_bytes_total counter\n")
	fmt.Fprintf(&b, "ptdftd_comm_bytes_total %d\n", m.bytesMoved)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, b.String())
}

// profilePhase is one row of a job's phase breakdown, largest first.
type profilePhase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Share   float64 `json:"share"` // fraction of the summed phase seconds
}

// profileView is the /jobs/{id}/profile response: the job's identity plus
// the flight-recorder accounting of where its time and bytes went.
type profileView struct {
	ID      string         `json:"id"`
	State   State          `json:"state"`
	Metrics Metrics        `json:"metrics"`
	Phases  []profilePhase `json:"phases"`
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such job: "+r.PathValue("id"))
		return
	}
	p := profileView{ID: v.ID, State: v.State, Metrics: v.Metrics, Phases: []profilePhase{}}
	var total float64
	for _, sec := range v.Metrics.PhaseSeconds {
		total += sec
	}
	for name, sec := range v.Metrics.PhaseSeconds {
		share := 0.0
		if total > 0 {
			share = sec / total
		}
		p.Phases = append(p.Phases, profilePhase{Name: name, Seconds: sec, Share: share})
	}
	sort.Slice(p.Phases, func(i, k int) bool {
		if p.Phases[i].Seconds != p.Phases[k].Seconds {
			return p.Phases[i].Seconds > p.Phases[k].Seconds
		}
		return p.Phases[i].Name < p.Phases[k].Name
	})
	writeJSON(w, http.StatusOK, p)
}
