package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ptdft/internal/checkpoint"
	"ptdft/internal/observe"
	"ptdft/internal/scf"
	"ptdft/internal/sim"
)

// fakeSim is a stand-in simulation layer for pool tests: runs are
// instant, gated, or blocking, so queue mechanics can be tested without
// FFTs. Jobs are identified by their Seed.
type fakeSim struct {
	mu         sync.Mutex
	running    int
	maxRunning int
	started    []int64       // seeds in run-start order
	gate       chan struct{} // when non-nil, each run blocks here (or on Stop)
}

func (f *fakeSim) solve(spec *sim.Spec) (*scf.Result, error) {
	return &scf.Result{}, nil
}

// run fakes one segment: per step, wait for the gate (if any) or a stop
// request, then emit a sample. The resume contract matches sim.Run: the
// spec's Steps is this segment's remainder, the checkpoint carries the
// cumulative step.
func (f *fakeSim) run(spec *sim.Spec, opt sim.Options) (*sim.Result, error) {
	f.mu.Lock()
	f.running++
	if f.running > f.maxRunning {
		f.maxRunning = f.running
	}
	f.started = append(f.started, spec.Seed)
	gate := f.gate
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.running--
		f.mu.Unlock()
	}()
	base := 0
	if opt.Resume != nil {
		base = int(opt.Resume.Step)
	}
	res := &sim.Result{Ground: &scf.Result{}}
	done := 0
	for i := 0; i < spec.Steps; i++ {
		if gate != nil {
			select {
			case <-gate:
			case <-opt.Stop:
				res.Stopped = true
			}
		}
		if res.Stopped {
			break
		}
		done = i + 1
		if opt.OnSample != nil {
			opt.OnSample(observe.Sample{Step: base + done})
		}
	}
	if opt.Stop != nil && !res.Stopped {
		select {
		case <-opt.Stop:
			res.Stopped = true
		default:
		}
	}
	res.Final = &checkpoint.State{
		Step: int64(base + done), NBands: 1, NG: 2, Natom: 1, Ecut: spec.Ecut,
		Psi: []complex128{1, 2},
	}
	if opt.Ckpt != nil {
		if err := opt.Ckpt.Save(res.Final); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// fakeSpec is a valid spec with the seed as job marker.
func fakeSpec(seed int64, steps int) sim.Spec {
	return sim.Spec{Cells: [3]int{1, 1, 1}, Ecut: 2, Steps: steps, Seed: seed}
}

// startFake builds a server over the fake layer without persistence.
func startFake(t *testing.T, workers int, f *fakeSim) *Server {
	t.Helper()
	s, err := newServer(Config{Workers: workers}, f.run, f.solve)
	if err != nil {
		t.Fatal(err)
	}
	s.start()
	return s
}

// waitState polls until the job reaches the state (the pool is asynchronous).
func waitState(t *testing.T, s *Server, id string, want State) View {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if v.State == want {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, v.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolFIFO: with one worker, jobs run strictly in submission order.
func TestPoolFIFO(t *testing.T) {
	f := &fakeSim{}
	s := startFake(t, 1, f)
	defer s.Drain()
	var ids []string
	for i := 0; i < 5; i++ {
		v, err := s.Submit(fakeSpec(int64(i+1), 1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		waitState(t, s, id, StateDone)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, seed := range f.started {
		if seed != int64(i+1) {
			t.Fatalf("run order %v, want submission order", f.started)
		}
	}
}

// TestPoolBoundedConcurrency: no more than Workers simulations are ever
// in flight, and the pool does reach that bound.
func TestPoolBoundedConcurrency(t *testing.T) {
	const workers, jobs = 3, 9
	f := &fakeSim{gate: make(chan struct{})}
	s := startFake(t, workers, f)
	defer s.Drain()
	var ids []string
	for i := 0; i < jobs; i++ {
		v, err := s.Submit(fakeSpec(int64(i+1), 1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	// Let the pool saturate, then release all steps.
	deadline := time.Now().Add(5 * time.Second)
	for {
		f.mu.Lock()
		r := f.running
		f.mu.Unlock()
		if r == workers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never saturated: %d running, want %d", r, workers)
		}
		time.Sleep(time.Millisecond)
	}
	close(f.gate)
	for _, id := range ids {
		waitState(t, s, id, StateDone)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.maxRunning != workers {
		t.Errorf("max concurrent runs %d, want exactly %d", f.maxRunning, workers)
	}
}

// TestPoolDrain: a graceful drain checkpoints the running job after its
// step in flight and leaves it preempted; queued jobs stay queued; every
// worker exits.
func TestPoolDrain(t *testing.T) {
	f := &fakeSim{gate: make(chan struct{})}
	s := startFake(t, 1, f)
	running, err := s.Submit(fakeSpec(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(fakeSpec(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running.ID, StateRunning)
	f.gate <- struct{}{} // let one step complete
	f.gate <- struct{}{}
	s.Drain() // returns only when the pool is stopped
	v, _ := s.Get(running.ID)
	if v.State != StatePreempted {
		t.Errorf("running job drained to %s, want %s", v.State, StatePreempted)
	}
	if v.Metrics.StepsDone != 2 {
		t.Errorf("drained job completed %d steps, want 2", v.Metrics.StepsDone)
	}
	if v.Metrics.Preemptions != 1 {
		t.Errorf("drained job counts %d preemptions, want 1", v.Metrics.Preemptions)
	}
	q, _ := s.Get(queued.ID)
	if q.State != StateQueued {
		t.Errorf("queued job drained to %s, want %s", q.State, StateQueued)
	}
	if _, err := s.Submit(fakeSpec(3, 1)); err == nil {
		t.Error("submission accepted during drain")
	}
}

// TestPoolPreemptRequeuesAndResumes: preempting a running job checkpoints
// it, puts it at the back of the queue, and the next attempt continues
// from the checkpoint to completion.
func TestPoolPreemptRequeuesAndResumes(t *testing.T) {
	f := &fakeSim{gate: make(chan struct{})}
	s := startFake(t, 1, f)
	defer s.Drain()
	v, err := s.Submit(fakeSpec(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID, StateRunning)
	f.gate <- struct{}{}
	f.gate <- struct{}{} // two steps done
	if err := s.Preempt(v.ID); err != nil {
		t.Fatal(err)
	}
	// Unblock the remaining steps of both attempts.
	go func() {
		for {
			select {
			case f.gate <- struct{}{}:
			case <-time.After(2 * time.Second):
				return
			}
		}
	}()
	got := waitState(t, s, v.ID, StateDone)
	if got.Metrics.Preemptions != 1 || got.Metrics.Resumes != 1 {
		t.Errorf("metrics %+v, want 1 preemption and 1 resume", got.Metrics)
	}
	if got.Metrics.StepsDone != 5 {
		t.Errorf("completed %d steps, want 5", got.Metrics.StepsDone)
	}
	// The feed carries the full trajectory with continuous step numbers.
	steps := make([]int, 0, 5)
	for _, smp := range got.Samples {
		steps = append(steps, smp.Step)
	}
	for i, st := range steps {
		if st != i+1 {
			t.Fatalf("sample steps %v, want 1..5 with no gap or repeat", steps)
		}
	}
	if len(steps) != 5 {
		t.Fatalf("feed has %d samples, want 5", len(steps))
	}
	if err := s.Preempt(v.ID); err == nil {
		t.Error("preempting a done job did not error")
	}
}

// TestPoolCancel: canceling a queued job never runs it; canceling a
// running job stops it after the step in flight.
func TestPoolCancel(t *testing.T) {
	f := &fakeSim{gate: make(chan struct{})}
	s := startFake(t, 1, f)
	defer s.Drain()
	running, err := s.Submit(fakeSpec(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(fakeSpec(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running.ID, StateRunning)
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, queued.ID, StateCanceled)
	f.gate <- struct{}{}
	if err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, s, running.ID, StateCanceled)
	if got.Metrics.StepsDone != 1 {
		t.Errorf("canceled after %d steps, want 1", got.Metrics.StepsDone)
	}
	f.mu.Lock()
	started := append([]int64(nil), f.started...)
	f.mu.Unlock()
	for _, seed := range started {
		if seed == 2 {
			t.Error("canceled queued job was started")
		}
	}
	if err := s.Cancel(queued.ID); err == nil {
		t.Error("canceling a canceled job did not error")
	}
}

// writeRecord drops one job record file into the server directory, the
// way a crashed server would have left it.
func writeRecord(t *testing.T, dir string, rec record) {
	t.Helper()
	data, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, rec.ID+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestPoolZeroRemainderResumeCompletes: a checkpoint taken exactly at the
// last step (a preempt/drain racing the final step, or a crash right
// after it) re-adopts as a job with nothing left to run. It must go
// straight to done - not fail spec validation on a zero-step segment, and
// not invoke the simulation layer at all. The MD flavor is the sharp
// case: a zero-ion-step segment would not even validate.
func TestPoolZeroRemainderResumeCompletes(t *testing.T) {
	dir := t.TempDir()
	spec := fakeSpec(1, 0)
	spec.MD = true
	spec.IonSteps = 3
	spec.IonDtAs = 96
	writeRecord(t, dir, record{
		ID: "j000001", Spec: spec, State: StateRunning,
		SubmittedAt: time.Now().UTC(), StartedAt: time.Now().UTC(),
		Metrics: Metrics{StepsDone: 3},
		Samples: []observe.Sample{{Step: 1}, {Step: 2}, {Step: 3}},
	})
	roll := &checkpoint.Rolling{Base: filepath.Join(dir, "j000001.ckp")}
	if err := roll.Save(&checkpoint.State{
		Step: 12, IonSteps: 3, NBands: 1, NG: 2, Natom: 1, Ecut: spec.Ecut,
		Psi: []complex128{1, 2},
	}); err != nil {
		t.Fatal(err)
	}
	f := &fakeSim{}
	s, err := newServer(Config{Workers: 1, Dir: dir}, f.run, f.solve)
	if err != nil {
		t.Fatal(err)
	}
	s.start()
	defer s.Drain()
	got := waitState(t, s, "j000001", StateDone)
	if got.Metrics.StepsDone != 3 {
		t.Errorf("steps_done %d, want 3", got.Metrics.StepsDone)
	}
	if len(got.Samples) != 3 {
		t.Errorf("job record has %d samples, want 3", len(got.Samples))
	}
	f.mu.Lock()
	started := len(f.started)
	f.mu.Unlock()
	if started != 0 {
		t.Errorf("zero-remainder resume invoked the simulation layer %d times, want 0", started)
	}
}

// TestPoolAdoptTruncatesOverPersistedSamples: the record on disk may be
// newer than the checkpoint (the streaming-cadence persist runs just
// before the checkpoint write). Adoption replays only the samples the
// resume point covers, and the resumed attempt re-streams the rest - no
// duplicate or out-of-order steps in the feed.
func TestPoolAdoptTruncatesOverPersistedSamples(t *testing.T) {
	dir := t.TempDir()
	spec := fakeSpec(7, 5)
	writeRecord(t, dir, record{
		ID: "j000001", Spec: spec, State: StateRunning,
		SubmittedAt: time.Now().UTC(), StartedAt: time.Now().UTC(),
		Metrics: Metrics{StepsDone: 4},
		Samples: []observe.Sample{{Step: 1}, {Step: 2}, {Step: 3}, {Step: 4}},
	})
	roll := &checkpoint.Rolling{Base: filepath.Join(dir, "j000001.ckp")}
	if err := roll.Save(&checkpoint.State{
		Step: 2, NBands: 1, NG: 2, Natom: 1, Ecut: spec.Ecut,
		Psi: []complex128{1, 2},
	}); err != nil {
		t.Fatal(err)
	}
	f := &fakeSim{}
	s, err := newServer(Config{Workers: 1, Dir: dir}, f.run, f.solve)
	if err != nil {
		t.Fatal(err)
	}
	s.start()
	defer s.Drain()
	got := waitState(t, s, "j000001", StateDone)
	if got.Metrics.StepsDone != 5 {
		t.Errorf("steps_done %d, want 5", got.Metrics.StepsDone)
	}
	steps := make([]int, 0, len(got.Samples))
	for _, smp := range got.Samples {
		steps = append(steps, smp.Step)
	}
	if len(steps) != 5 {
		t.Fatalf("feed has samples %v, want exactly 1..5", steps)
	}
	for i, st := range steps {
		if st != i+1 {
			t.Fatalf("feed has samples %v, want 1..5 with no duplicate from the over-persisted record", steps)
		}
	}
}

// TestPoolAdoptQuarantinesCorruptRecord: one torn record file (a crash
// mid-write) is logged and skipped; it must not refuse startup for the
// whole directory, and the healthy records are still adopted.
func TestPoolAdoptQuarantinesCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "j000001.json"), []byte(`{"id":"j0000`), 0o644); err != nil {
		t.Fatal(err)
	}
	writeRecord(t, dir, record{
		ID: "j000002", Spec: fakeSpec(2, 1), State: StateDone,
		SubmittedAt: time.Now().UTC(), FinishedAt: time.Now().UTC(),
	})
	f := &fakeSim{}
	s, err := newServer(Config{Workers: 1, Dir: dir}, f.run, f.solve)
	if err != nil {
		t.Fatalf("corrupt record refused the whole directory: %v", err)
	}
	if _, ok := s.Get("j000002"); !ok {
		t.Error("healthy record not adopted alongside the corrupt one")
	}
	if _, ok := s.Get("j000001"); ok {
		t.Error("corrupt record adopted as a job")
	}
	s.start()
	s.Drain()
}

// TestPoolRestartAdoption: a drained server's directory re-queues its
// interrupted jobs on the next start, resuming from the checkpoint, and
// re-registers terminal jobs as history.
func TestPoolRestartAdoption(t *testing.T) {
	dir := t.TempDir()
	f := &fakeSim{gate: make(chan struct{})}
	a, err := newServer(Config{Workers: 1, Dir: dir}, f.run, f.solve)
	if err != nil {
		t.Fatal(err)
	}
	a.start()
	finished, err := a.Submit(fakeSpec(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	f.gate <- struct{}{}
	waitState(t, a, finished.ID, StateDone)
	interrupted, err := a.Submit(fakeSpec(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a, interrupted.ID, StateRunning)
	f.gate <- struct{}{}
	f.gate <- struct{}{} // two of five steps
	queued, err := a.Submit(fakeSpec(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	a.Drain()

	// A new server on the same directory finishes the work.
	g := &fakeSim{}
	b, err := newServer(Config{Workers: 1, Dir: dir}, g.run, g.solve)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := b.Get(finished.ID); !ok || v.State != StateDone {
		t.Fatalf("terminal job not adopted as history: %+v", v)
	}
	b.start()
	defer b.Drain()
	got := waitState(t, b, interrupted.ID, StateDone)
	if got.Metrics.StepsDone != 5 {
		t.Errorf("adopted job completed %d steps, want 5", got.Metrics.StepsDone)
	}
	if got.Metrics.Resumes < 1 {
		t.Errorf("adopted job counts %d resumes, want >= 1", got.Metrics.Resumes)
	}
	waitState(t, b, queued.ID, StateDone)
	// The resumed attempt started from the drained checkpoint (step 2),
	// not from scratch: its segment had 3 steps left.
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, smp := range got.Samples {
		if smp.Step > 5 {
			t.Fatalf("resumed job overran the trajectory: step %d", smp.Step)
		}
	}
	// New submissions on server B continue the ID sequence.
	nv, err := b.Submit(fakeSpec(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if nv.ID <= queued.ID {
		t.Errorf("new ID %s does not continue the sequence after %s", nv.ID, queued.ID)
	}
}
