package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ptdft/internal/observe"
	"ptdft/internal/sim"
)

// e2eSpec is the smallest real system (Si8, Ecut 2 Ha): a full SCF +
// PT-CN trajectory in well under a second.
func e2eSpec(steps int) sim.Spec {
	return sim.Spec{
		Cells: [3]int{1, 1, 1}, Ecut: 2, Method: "ptcn",
		DtAs: 24, Steps: steps, Kick: 0.02, Seed: 1234, Exchange: "bcast",
	}
}

// startE2E builds a real server (sim.Run) behind an httptest listener.
func startE2E(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

// submit POSTs a spec and returns the created job view.
func submit(t testing.TB, ts *httptest.Server, spec sim.Spec) View {
	t.Helper()
	body, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.State != StateQueued {
		t.Fatalf("submitted job in state %s, want queued", v.State)
	}
	return v
}

// getJob GETs one job view.
func getJob(t testing.TB, ts *httptest.Server, id string) View {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: status %d", id, resp.StatusCode)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitHTTP polls the API until the job reaches the state.
func waitHTTP(t testing.TB, ts *httptest.Server, id string, want State) View {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		v := getJob(t, ts, id)
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s ended %s (err %q), want %s", id, v.State, v.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, v.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// readStream consumes the job's SSE stream to the terminal state event,
// returning the samples and the final state.
func readStream(t testing.TB, ts *httptest.Server, id string) ([]observe.Sample, State) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var samples []observe.Sample
	var final State
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "sample":
				var smp observe.Sample
				if err := json.Unmarshal([]byte(data), &smp); err != nil {
					t.Fatalf("bad sample event %q: %v", data, err)
				}
				samples = append(samples, smp)
			case "state":
				var st struct {
					State State `json:"state"`
				}
				if err := json.Unmarshal([]byte(data), &st); err != nil {
					t.Fatalf("bad state event %q: %v", data, err)
				}
				final = st.State
				return samples, final
			}
		}
	}
	t.Fatalf("stream ended without a state event (%d samples)", len(samples))
	return nil, ""
}

// apiError decodes a typed JSON error response.
func apiError(t testing.TB, resp *http.Response) (string, string) {
	t.Helper()
	defer resp.Body.Close()
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error response is not typed JSON: %v", err)
	}
	return body.Error.Code, body.Error.Message
}

// TestE2ELifecycleSerial: submit -> queued -> running -> stream -> done
// for a serial job, with the trajectory visible through both the SSE
// stream and the final job record.
func TestE2ELifecycleSerial(t *testing.T) {
	_, ts := startE2E(t, Config{Workers: 2})
	v := submit(t, ts, e2eSpec(6))
	samples, final := readStream(t, ts, v.ID)
	if final != StateDone {
		t.Fatalf("stream ended in %s, want done", final)
	}
	if len(samples) != 6 {
		t.Fatalf("streamed %d samples, want 6", len(samples))
	}
	for i, smp := range samples {
		if smp.Step != i+1 {
			t.Errorf("sample %d has step %d", i, smp.Step)
		}
	}
	got := waitHTTP(t, ts, v.ID, StateDone)
	if len(got.Samples) != 6 {
		t.Errorf("job record has %d samples, want 6", len(got.Samples))
	}
	if got.Metrics.SCFCacheHit {
		t.Error("first job reported an SCF cache hit")
	}
	if got.Metrics.SCFWallSec <= 0 {
		t.Error("first job reports zero SCF wall time")
	}
	if got.Metrics.StepsDone != 6 {
		t.Errorf("steps_done %d, want 6", got.Metrics.StepsDone)
	}
	if got.StartedAt.IsZero() || got.FinishedAt.IsZero() {
		t.Error("timestamps not recorded")
	}
}

// TestE2EHybridDistributed: the lifecycle holds for a 2-rank hybrid job
// (ACE + MTS), the composition the CLI runs with -hybrid -ace -mts.
func TestE2EHybridDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed hybrid trajectory: skipped in -short mode")
	}
	_, ts := startE2E(t, Config{Workers: 1})
	spec := e2eSpec(4)
	spec.Ranks = 2
	spec.Hybrid = true
	spec.ACE = true
	spec.MTS = 2
	spec.Exchange = "overlap"
	v := submit(t, ts, spec)
	samples, final := readStream(t, ts, v.ID)
	if final != StateDone {
		t.Fatalf("stream ended in %s, want done", final)
	}
	if len(samples) != 4 {
		t.Fatalf("streamed %d samples, want 4", len(samples))
	}
	got := getJob(t, ts, v.ID)
	if got.Metrics.StepsDone != 4 {
		t.Errorf("steps_done %d, want 4", got.Metrics.StepsDone)
	}
}

// TestE2EPreemptResumeMatchesUninterrupted: preempt a running job
// mid-trajectory over the API; the automatically resumed result matches
// an uninterrupted run of the same spec to 1e-10. The job runs under the
// 380nm pulse, not the kick: the pulse envelope is shaped by the
// trajectory length, so this pins that a resumed segment sees the
// identical laser field (not one re-derived from the remaining steps).
func TestE2EPreemptResumeMatchesUninterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("full preempt/resume trajectory comparison: skipped in -short mode")
	}
	const steps = 30
	pulsed := e2eSpec(steps)
	pulsed.Kick = 0
	pulsed.PulseE0 = 0.005
	spec := pulsed
	ref, err := sim.Run(&spec, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startE2E(t, Config{Workers: 1})
	v := submit(t, ts, pulsed)
	// Preempt once the trajectory is well underway but far from done.
	deadline := time.Now().Add(120 * time.Second)
	for {
		got := getJob(t, ts, v.ID)
		if got.State == StateRunning && got.Metrics.StepsDone >= 5 {
			break
		}
		if got.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("no preemption window: job is %s after %d steps", got.State, got.Metrics.StepsDone)
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/jobs/"+v.ID+"/preempt", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("preempt: status %d", resp.StatusCode)
	}
	got := waitHTTP(t, ts, v.ID, StateDone)
	if got.Metrics.Preemptions != 1 || got.Metrics.Resumes != 1 {
		t.Errorf("metrics %+v, want 1 preemption and 1 resume", got.Metrics)
	}
	if len(got.Samples) != steps {
		t.Fatalf("preempted+resumed job has %d samples, want %d", len(got.Samples), steps)
	}
	for i := range got.Samples {
		if got.Samples[i].Step != ref.Samples[i].Step {
			t.Fatalf("sample %d: step %d vs reference %d", i, got.Samples[i].Step, ref.Samples[i].Step)
		}
		if d := math.Abs(got.Samples[i].Energy - ref.Samples[i].Energy); d > 1e-10 {
			t.Errorf("sample %d: energy differs from uninterrupted run by %g, want <= 1e-10", i, d)
		}
		if d := math.Abs(got.Samples[i].CurrentZ - ref.Samples[i].CurrentZ); d > 1e-10 {
			t.Errorf("sample %d: current differs from uninterrupted run by %g", i, d)
		}
	}
}

// TestE2ESCFCacheHitIdenticalResult: a second submission of the same
// physical system reuses the cached ground state (measured in the job
// record) and produces an identical trajectory to 1e-12.
func TestE2ESCFCacheHitIdenticalResult(t *testing.T) {
	if testing.Short() {
		t.Skip("three full trajectories: skipped in -short mode")
	}
	_, ts := startE2E(t, Config{Workers: 1})
	a := submit(t, ts, e2eSpec(5))
	cold := waitHTTP(t, ts, a.ID, StateDone)
	if cold.Metrics.SCFCacheHit {
		t.Fatal("cold job reported a cache hit")
	}
	b := submit(t, ts, e2eSpec(5))
	warm := waitHTTP(t, ts, b.ID, StateDone)
	if !warm.Metrics.SCFCacheHit {
		t.Fatal("identical resubmission did not hit the SCF cache")
	}
	if warm.Metrics.SCFWallSec >= cold.Metrics.SCFWallSec/2 {
		t.Errorf("cache hit took %.3fs vs cold %.3fs - the solve was not skipped",
			warm.Metrics.SCFWallSec, cold.Metrics.SCFWallSec)
	}
	if len(warm.Samples) != len(cold.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(warm.Samples), len(cold.Samples))
	}
	for i := range cold.Samples {
		if d := math.Abs(warm.Samples[i].Energy - cold.Samples[i].Energy); d > 1e-12 {
			t.Errorf("sample %d: cache-hit energy differs by %g, want <= 1e-12", i, d)
		}
		if d := math.Abs(warm.Samples[i].Excited - cold.Samples[i].Excited); d > 1e-12 {
			t.Errorf("sample %d: cache-hit excited count differs by %g", i, d)
		}
	}
	// A different seed must not share the ground state.
	specC := e2eSpec(1)
	specC.Seed = 77
	c := submit(t, ts, specC)
	other := waitHTTP(t, ts, c.ID, StateDone)
	if other.Metrics.SCFCacheHit {
		t.Error("different seed hit the cache")
	}
}

// TestE2ECancelAndErrors: cancel over the API, and every malformed or
// conflicting request returns the typed JSON error envelope.
func TestE2ECancelAndErrors(t *testing.T) {
	_, ts := startE2E(t, Config{Workers: 1})

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := apiError(t, resp); resp.StatusCode != http.StatusBadRequest || code != "bad_request" {
		t.Errorf("malformed JSON: status %d code %s, want 400 bad_request", resp.StatusCode, code)
	}

	// Unknown field.
	resp, err = http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"frobnicate": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := apiError(t, resp); resp.StatusCode != http.StatusBadRequest || code != "bad_request" {
		t.Errorf("unknown field: status %d code %s, want 400 bad_request", resp.StatusCode, code)
	}

	// Valid JSON, invalid simulation.
	resp, err = http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"cells":[1,1,1],"ecut":2,"steps":3,"mts":4}`))
	if err != nil {
		t.Fatal(err)
	}
	if code, msg := apiError(t, resp); resp.StatusCode != http.StatusUnprocessableEntity || code != "invalid_spec" {
		t.Errorf("invalid spec: status %d code %s (%s), want 422 invalid_spec", resp.StatusCode, code, msg)
	}

	// Unknown job.
	resp, err = http.Get(ts.URL + "/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := apiError(t, resp); resp.StatusCode != http.StatusNotFound || code != "not_found" {
		t.Errorf("unknown job: status %d code %s, want 404 not_found", resp.StatusCode, code)
	}

	// Cancel a running job: long trajectory, canceled almost immediately.
	v := submit(t, ts, e2eSpec(500))
	waitHTTP(t, ts, v.ID, StateRunning)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	got := waitHTTP(t, ts, v.ID, StateCanceled)
	if got.Metrics.StepsDone >= 500 {
		t.Error("canceled job ran to completion")
	}

	// Preempting the canceled job conflicts.
	resp, err = http.Post(ts.URL+"/jobs/"+v.ID+"/preempt", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := apiError(t, resp); resp.StatusCode != http.StatusConflict || code != "conflict" {
		t.Errorf("preempt canceled: status %d code %s, want 409 conflict", resp.StatusCode, code)
	}

	// Canceling it again conflicts too.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+v.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := apiError(t, resp); resp.StatusCode != http.StatusConflict || code != "conflict" {
		t.Errorf("double cancel: status %d code %s, want 409 conflict", resp.StatusCode, code)
	}
}

// TestE2ERestartResumesRealJob: drain a server mid-trajectory, start a
// new one on the same directory, and the adopted job completes with the
// uninterrupted result to 1e-10.
func TestE2ERestartResumesRealJob(t *testing.T) {
	if testing.Short() {
		t.Skip("two servers and a full trajectory comparison: skipped in -short mode")
	}
	const steps = 30
	spec := e2eSpec(steps)
	ref, err := sim.Run(&spec, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// The periodic cadence exercises the crash-insurance path: rolling
	// checkpoints plus the record persisted alongside each one.
	a, err := New(Config{Workers: 1, Dir: dir, CkptEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	va, err := a.Submit(e2eSpec(steps))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		v, _ := a.Get(va.ID)
		if v.State == StateRunning && v.Metrics.StepsDone >= 5 {
			break
		}
		if v.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("no drain window: job is %s after %d steps", v.State, v.Metrics.StepsDone)
		}
		time.Sleep(2 * time.Millisecond)
	}
	a.Drain()
	interrupted, _ := a.Get(va.ID)
	if interrupted.State != StatePreempted {
		t.Fatalf("drained job is %s, want preempted", interrupted.State)
	}

	b, err := New(Config{Workers: 1, Dir: dir, CkptEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Drain()
	var got View
	deadline = time.Now().Add(120 * time.Second)
	for {
		v, ok := b.Get(va.ID)
		if !ok {
			t.Fatalf("job %s not adopted", va.ID)
		}
		if v.State == StateDone {
			got = v
			break
		}
		if v.State.Terminal() {
			t.Fatalf("adopted job ended %s: %s", v.State, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("adopted job stuck in %s", v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got.Metrics.Resumes < 1 {
		t.Errorf("adopted job counts %d resumes, want >= 1", got.Metrics.Resumes)
	}
	if got.Metrics.StepsDone != steps {
		t.Fatalf("adopted job finished at step %d, want %d", got.Metrics.StepsDone, steps)
	}
	last := got.Samples[len(got.Samples)-1]
	refLast := ref.Samples[len(ref.Samples)-1]
	if last.Step != refLast.Step {
		t.Fatalf("final step %d, reference %d", last.Step, refLast.Step)
	}
	if d := math.Abs(last.Energy - refLast.Energy); d > 1e-10 {
		t.Errorf("final energy differs from uninterrupted run by %g, want <= 1e-10", d)
	}
	if d := math.Abs(last.CurrentZ - refLast.CurrentZ); d > 1e-10 {
		t.Errorf("final current differs from uninterrupted run by %g", d)
	}
}

// TestE2EConcurrentJobs: the server multiplexes at least 4 concurrent
// jobs (the acceptance floor) and every one of them completes correctly.
func TestE2EConcurrentJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("six concurrent SCF solves: skipped in -short mode")
	}
	_, ts := startE2E(t, Config{Workers: 4})
	var ids []string
	for i := 0; i < 6; i++ {
		spec := e2eSpec(4)
		// Distinct seeds: six independent SCF problems, so the cache
		// cannot serialize them.
		spec.Seed = int64(1000 + i)
		ids = append(ids, submit(t, ts, spec).ID)
	}
	for _, id := range ids {
		got := waitHTTP(t, ts, id, StateDone)
		if got.Metrics.StepsDone != 4 {
			t.Errorf("job %s finished %d steps, want 4", id, got.Metrics.StepsDone)
		}
	}
	// The list endpoint sees all of them, oldest first.
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []View `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != len(ids) {
		t.Fatalf("list has %d jobs, want %d", len(list.Jobs), len(ids))
	}
	for i := 1; i < len(list.Jobs); i++ {
		if list.Jobs[i].ID <= list.Jobs[i-1].ID {
			t.Fatalf("list not in submission order: %s after %s", list.Jobs[i].ID, list.Jobs[i-1].ID)
		}
	}
}
