// End-to-end tests for the observability surfaces: run real jobs
// through the HTTP API, then check that /metrics and /jobs/{id}/profile
// report the queue, cache, and per-job resource accounting consistently
// with what the jobs actually did.
package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches /metrics and parses the Prometheus text exposition into
// a flat name{labels} -> value map (comment lines dropped).
func scrape(t testing.TB, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type %q is not Prometheus text exposition 0.0.4", ct)
	}
	out := make(map[string]float64)
	for _, line := range readLines(t, resp) {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed metric line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("metric line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func readLines(t testing.TB, resp *http.Response) []string {
	t.Helper()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(string(body), "\n")
}

// getProfile fetches and decodes /jobs/{id}/profile.
func getProfile(t testing.TB, ts *httptest.Server, id string) profileView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s/profile: status %d", id, resp.StatusCode)
	}
	var p profileView
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestE2EMetricsAndProfile: two identical 2-rank jobs (the second a
// known SCF-cache hit) must show up in /metrics - job states, cache
// counters, cumulative rank-seconds and comm bytes - and each job's
// /profile must carry a phase breakdown consistent with its metrics.
func TestE2EMetricsAndProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("two full distributed trajectories: skipped in -short mode")
	}
	_, ts := startE2E(t, Config{Workers: 1})

	// Before any job: counters exist at zero, no series missing.
	m0 := scrape(t, ts)
	for _, name := range []string{
		`ptdftd_jobs{state="queued"}`, `ptdftd_jobs{state="done"}`,
		"ptdftd_queue_depth", "ptdftd_workers_total", "ptdftd_workers_busy",
		"ptdftd_scf_cache_hits_total", "ptdftd_scf_cache_misses_total",
		"ptdftd_rank_seconds_total", "ptdftd_comm_bytes_total",
	} {
		v, ok := m0[name]
		if !ok {
			t.Errorf("metric %s missing from idle scrape", name)
		} else if v != 0 && name != "ptdftd_workers_total" {
			t.Errorf("idle %s = %v, want 0", name, v)
		}
	}
	if m0["ptdftd_workers_total"] != 1 {
		t.Errorf("ptdftd_workers_total = %v, want 1", m0["ptdftd_workers_total"])
	}

	// Distributed spec so comm bytes are nonzero in the ledgers.
	spec := e2eSpec(4)
	spec.Ranks = 2
	spec.Exchange = "overlap"
	a := submit(t, ts, spec)
	waitHTTP(t, ts, a.ID, StateDone)
	b := submit(t, ts, spec)
	warm := waitHTTP(t, ts, b.ID, StateDone)
	if !warm.Metrics.SCFCacheHit {
		t.Fatal("identical resubmission did not hit the SCF cache")
	}

	m := scrape(t, ts)
	if got := m[`ptdftd_jobs{state="done"}`]; got != 2 {
		t.Errorf(`jobs{state="done"} = %v, want 2`, got)
	}
	if got := m["ptdftd_queue_depth"]; got != 0 {
		t.Errorf("queue_depth = %v, want 0 after drain", got)
	}
	if got := m["ptdftd_scf_cache_misses_total"]; got != 1 {
		t.Errorf("scf_cache_misses_total = %v, want 1", got)
	}
	if got := m["ptdftd_scf_cache_hits_total"]; got != 1 {
		t.Errorf("scf_cache_hits_total = %v, want 1", got)
	}
	if got := m["ptdftd_scf_cache_hit_ratio"]; got != 0.5 {
		t.Errorf("scf_cache_hit_ratio = %v, want 0.5", got)
	}
	if m["ptdftd_rank_seconds_total"] <= 0 {
		t.Errorf("rank_seconds_total = %v, want > 0", m["ptdftd_rank_seconds_total"])
	}
	if m["ptdftd_comm_bytes_total"] <= 0 {
		t.Errorf("comm_bytes_total = %v, want > 0", m["ptdftd_comm_bytes_total"])
	}

	// Per-job profiles: the server totals are the sum of the job rows.
	pa, pb := getProfile(t, ts, a.ID), getProfile(t, ts, b.ID)
	if pa.Metrics.SCFCacheHit || !pb.Metrics.SCFCacheHit {
		t.Errorf("cache-hit flags: job a %v (want false), job b %v (want true)",
			pa.Metrics.SCFCacheHit, pb.Metrics.SCFCacheHit)
	}
	for _, p := range []profileView{pa, pb} {
		if p.State != StateDone {
			t.Errorf("job %s profile state = %s, want done", p.ID, p.State)
		}
		if p.Metrics.RankSeconds <= 0 {
			t.Errorf("job %s rank_seconds = %v, want > 0", p.ID, p.Metrics.RankSeconds)
		}
		if p.Metrics.BytesMoved <= 0 {
			t.Errorf("job %s bytes_moved = %d, want > 0 on a 2-rank run", p.ID, p.Metrics.BytesMoved)
		}
		if len(p.Phases) == 0 {
			t.Errorf("job %s has no phase breakdown", p.ID)
			continue
		}
		if p.Metrics.PhaseSeconds["step"] <= 0 {
			t.Errorf("job %s: step phase missing from %v", p.ID, p.Metrics.PhaseSeconds)
		}
		for i, ph := range p.Phases {
			if ph.Seconds <= 0 || ph.Share <= 0 || ph.Share > 1 {
				t.Errorf("job %s phase %q: seconds %v share %v out of range", p.ID, ph.Name, ph.Seconds, ph.Share)
			}
			if i > 0 && ph.Seconds > p.Phases[i-1].Seconds {
				t.Errorf("job %s phases not sorted by seconds: %q after %q", p.ID, ph.Name, p.Phases[i-1].Name)
			}
		}
	}
	wantSec := pa.Metrics.RankSeconds + pb.Metrics.RankSeconds
	if got := m["ptdftd_rank_seconds_total"]; !approxEq(got, wantSec, 1e-9) {
		t.Errorf("rank_seconds_total = %v, want sum of jobs %v", got, wantSec)
	}
	wantBytes := float64(pa.Metrics.BytesMoved + pb.Metrics.BytesMoved)
	if got := m["ptdftd_comm_bytes_total"]; got != wantBytes {
		t.Errorf("comm_bytes_total = %v, want sum of jobs %v", got, wantBytes)
	}

	// Unknown job id: typed 404 envelope, like the other job routes.
	resp, err := http.Get(ts.URL + "/jobs/j999999/profile")
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := apiError(t, resp); resp.StatusCode != http.StatusNotFound || code != "not_found" {
		t.Errorf("missing job profile: status %d code %s, want 404 not_found", resp.StatusCode, code)
	}
}

func approxEq(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
