package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ptdft/internal/perf"
)

// BenchmarkServerFleet drives a synthetic client fleet against a real
// ptdftd server: `fleetClients` concurrent clients submit short PT-CN
// jobs over HTTP and poll each to completion. One op is one job through
// submit -> queued -> running -> done. Beyond ns/op the run records the
// service-level numbers into BENCH_server.json: jobs/hour and the p99
// submit-to-done latency across the fleet. The seeds cycle through a
// small pool of distinct physical systems, so the SCF cache sees the
// realistic mix of cold solves and hits an ensemble produces.
func BenchmarkServerFleet(b *testing.B) {
	const (
		fleetClients = 8
		workers      = 4
		seedPool     = 4
	)
	_, ts := startE2E(b, Config{Workers: workers})

	var mu sync.Mutex
	latencies := make([]time.Duration, 0, b.N)
	var next atomic.Int64
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < fleetClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				spec := e2eSpec(3)
				spec.Seed = 1000 + i%seedPool
				t0 := time.Now()
				v := submit(b, ts, spec)
				waitHTTP(b, ts, v.ID, StateDone)
				lat := time.Since(t0)
				mu.Lock()
				latencies = append(latencies, lat)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	jobsPerHour := float64(b.N) / elapsed.Hours()
	b.ReportMetric(jobsPerHour, "jobs/hour")
	b.ReportMetric(p99.Seconds(), "p99-s")

	spec := e2eSpec(3)
	_, g, nb, err := spec.System()
	if err != nil {
		b.Fatal(err)
	}
	if err := perf.RecordBench(perf.DefaultBenchPath("BENCH_server.json"), perf.BenchRecord{
		Name:        "BenchmarkServerFleet",
		Label:       perf.BenchLabel(),
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(b.N),
		AllocsPerOp: -1,
		Grid:        g.N,
		NB:          nb,
		Workers:     workers,
		Metrics: map[string]float64{
			"clients":                    fleetClients,
			"jobs":                       float64(b.N),
			"jobs_per_hour":              jobsPerHour,
			"p50_submit_to_done_seconds": latencies[len(latencies)/2].Seconds(),
			"p99_submit_to_done_seconds": p99.Seconds(),
		},
	}); err != nil {
		b.Fatalf("recording trajectory: %v", err)
	}
}

// TestBenchServerTrajectory pins the committed BENCH_server.json: the
// pr9-server load-test record must exist with coherent service metrics -
// a fleet of at least the 4-concurrent-job acceptance floor, a positive
// throughput, and an ordered latency distribution.
func TestBenchServerTrajectory(t *testing.T) {
	bf, err := perf.LoadBench(perf.DefaultBenchPath("BENCH_server.json"))
	if err != nil {
		t.Fatalf("BENCH_server.json unreadable: %v", err)
	}
	rec, ok := bf.Find("BenchmarkServerFleet", "pr9-server")
	if !ok {
		t.Fatal("BenchmarkServerFleet/pr9-server record missing")
	}
	m := rec.Metrics
	if m == nil {
		t.Fatal("record carries no metrics map")
	}
	for _, key := range []string{"clients", "jobs", "jobs_per_hour", "p50_submit_to_done_seconds", "p99_submit_to_done_seconds"} {
		if m[key] <= 0 {
			t.Errorf("metric %s = %g, want > 0", key, m[key])
		}
	}
	if m["clients"] < 4 {
		t.Errorf("recorded fleet of %g clients, want >= 4 (the concurrency acceptance floor)", m["clients"])
	}
	if m["p99_submit_to_done_seconds"] < m["p50_submit_to_done_seconds"] {
		t.Errorf("p99 %.3fs below p50 %.3fs - the distribution is incoherent",
			m["p99_submit_to_done_seconds"], m["p50_submit_to_done_seconds"])
	}
	if rec.Workers < 1 || rec.NB < 1 {
		t.Errorf("record missing system shape: workers=%d nb=%d", rec.Workers, rec.NB)
	}
	// Throughput and latency must agree to within the fleet's parallelism:
	// jobs/hour cannot exceed clients * (3600 / p50).
	maxRate := m["clients"] * 3600 / m["p50_submit_to_done_seconds"]
	if m["jobs_per_hour"] > maxRate*1.05 {
		t.Errorf("recorded %g jobs/hour exceeds the fleet's possible %g", m["jobs_per_hour"], maxRate)
	}
}
