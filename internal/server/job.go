// Job model: the lifecycle state machine of one queued simulation and its
// JSON views. A job moves
//
//	queued -> running -> done | failed
//	                  -> preempted -> queued        (preempt + automatic resume)
//	                  -> preempted                  (drain: resumable after restart)
//	queued | running  -> canceled
//
// Every transition is persisted (when the server has a directory), so a
// killed server re-adopts its resumable jobs on the next start.
package server

import (
	"sync"
	"time"

	"ptdft/internal/checkpoint"
	"ptdft/internal/observe"
	"ptdft/internal/sim"
)

// State is a job lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StatePreempted State = "preempted"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether the state is final: the feed is closed and the
// job will never run again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Metrics are the per-job accounting the API reports: where the time
// went, whether the ground state came from the SCF cache, and how often
// the job was preempted and resumed.
type Metrics struct {
	// SCFCacheHit is true when the ground state was reused (from the
	// cache or another job's in-flight solve) instead of solved.
	SCFCacheHit bool `json:"scf_cache_hit"`
	// SCFWallSec is the time the job spent obtaining its ground state
	// (near zero on a cache hit - the measured skip).
	SCFWallSec float64 `json:"scf_wall_seconds"`
	// StepsDone is the cumulative completed step count (ion steps under
	// MD) across all attempts.
	StepsDone int `json:"steps_done"`
	// Preemptions counts preempt/drain interruptions; Resumes counts
	// checkpoint-resumed attempts (including restart adoptions).
	Preemptions int `json:"preemptions"`
	Resumes     int `json:"resumes"`
	// Flight-recorder aggregates, accumulated across attempts: cumulative
	// busy seconds summed over rank timelines, total bytes through the
	// job's communicator (0 for serial jobs), and the per-phase wall
	// breakdown (span name -> seconds) behind /jobs/{id}/profile.
	RankSeconds  float64            `json:"rank_seconds"`
	BytesMoved   int64              `json:"bytes_moved"`
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
}

// Job is one submitted simulation. The server's mutex guards every field
// except Feed (internally synchronized) and stop (closed at most once,
// under the server's mutex, tracked by stopSent).
type Job struct {
	ID          string
	Spec        sim.Spec
	State       State
	Err         string
	SubmittedAt time.Time
	StartedAt   time.Time // first attempt
	FinishedAt  time.Time // terminal transition
	Metrics     Metrics

	// Feed streams one Sample per completed step across all attempts; it
	// closes exactly when the job turns terminal.
	Feed *observe.Feed

	// stop requests a graceful interruption of the running attempt;
	// intent records why ("preempt", "cancel", "drain") so the worker
	// knows which transition to take when the driver returns.
	stop     chan struct{}
	stopSent bool
	intent   string

	// resume is the checkpoint the next attempt continues from; roll is
	// the job's durable rolling checkpoint sequence (nil without a
	// server directory).
	resume *checkpoint.State
	roll   *checkpoint.Rolling

	// persistMu serializes record writes for this job: a lifecycle
	// transition and the streaming-cadence persist may race, and each
	// write must install a complete snapshot.
	persistMu sync.Mutex
}

// View is the JSON representation of a job in API responses.
type View struct {
	ID          string    `json:"id"`
	State       State     `json:"state"`
	Spec        sim.Spec  `json:"spec"`
	Error       string    `json:"error,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	Metrics     Metrics   `json:"metrics"`
	// Samples is the trajectory so far (complete when State is "done");
	// omitted from list responses.
	Samples []observe.Sample `json:"samples,omitempty"`
}

// view snapshots the job for an API response. Callers hold the server's
// mutex; the feed snapshot is internally synchronized.
func (j *Job) view(withSamples bool) View {
	v := View{
		ID: j.ID, State: j.State, Spec: j.Spec, Error: j.Err,
		SubmittedAt: j.SubmittedAt, StartedAt: j.StartedAt, FinishedAt: j.FinishedAt,
		Metrics: j.Metrics,
	}
	// The phase map keeps accumulating across attempts; the snapshot must
	// not alias it (it is JSON-encoded after the server's mutex is
	// released).
	if j.Metrics.PhaseSeconds != nil {
		v.Metrics.PhaseSeconds = make(map[string]float64, len(j.Metrics.PhaseSeconds))
		for name, sec := range j.Metrics.PhaseSeconds {
			v.Metrics.PhaseSeconds[name] = sec
		}
	}
	if withSamples {
		v.Samples = j.Feed.Snapshot()
	}
	return v
}
