// HTTP/JSON API:
//
//	POST   /jobs               submit a sim.Spec, returns the queued job
//	GET    /jobs               list all jobs (no samples)
//	GET    /jobs/{id}          one job with its trajectory samples
//	GET    /jobs/{id}/stream   live observables (Server-Sent Events)
//	POST   /jobs/{id}/preempt  checkpoint + requeue (automatic resume)
//	DELETE /jobs/{id}          cancel
//	GET    /jobs/{id}/profile  per-job phase breakdown (see metrics.go)
//	GET    /metrics            Prometheus text exposition (see metrics.go)
//
// Errors are typed JSON: {"error": {"code": "...", "message": "..."}}.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"ptdft/internal/sim"
)

// errorBody is the JSON error envelope.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, message string) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = message
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(&body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Handler returns the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /jobs/{id}/profile", s.handleProfile)
	mux.HandleFunc("POST /jobs/{id}/preempt", s.handlePreempt)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec sim.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decoding spec: %v", err))
		return
	}
	v, err := s.Submit(spec)
	switch {
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, "draining", err.Error())
		return
	case err != nil:
		// Validation failures: the spec parsed but describes no runnable
		// simulation.
		writeError(w, http.StatusUnprocessableEntity, "invalid_spec", err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]View{"jobs": s.List()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such job: "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handlePreempt(w http.ResponseWriter, r *http.Request) {
	err := s.Preempt(r.PathValue("id"))
	switch {
	case errors.Is(err, errNotFound):
		writeError(w, http.StatusNotFound, "not_found", "no such job: "+r.PathValue("id"))
	case errors.Is(err, errConflict):
		writeError(w, http.StatusConflict, "conflict", err.Error())
	case err != nil:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	default:
		v, _ := s.Get(r.PathValue("id"))
		writeJSON(w, http.StatusOK, v)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, errNotFound):
		writeError(w, http.StatusNotFound, "not_found", "no such job: "+r.PathValue("id"))
	case errors.Is(err, errConflict):
		writeError(w, http.StatusConflict, "conflict", err.Error())
	case err != nil:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	default:
		v, _ := s.Get(r.PathValue("id"))
		writeJSON(w, http.StatusOK, v)
	}
}
