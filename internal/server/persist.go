// Job persistence: one <id>.json record per job in the server directory,
// rewritten atomically on every lifecycle transition, plus the rolling
// checkpoint sequence <id>.ckp* the simulation layer writes. Together
// they make jobs durable across server restarts: on start the server
// scans the directory, re-registers terminal jobs as history, and
// re-queues every interrupted job with its newest loadable checkpoint as
// the resume point.
package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ptdft/internal/observe"
	"ptdft/internal/sim"
)

// record is the on-disk form of a job.
type record struct {
	ID          string           `json:"id"`
	Spec        sim.Spec         `json:"spec"`
	State       State            `json:"state"`
	Error       string           `json:"error,omitempty"`
	SubmittedAt time.Time        `json:"submitted_at"`
	StartedAt   time.Time        `json:"started_at,omitzero"`
	FinishedAt  time.Time        `json:"finished_at,omitzero"`
	Metrics     Metrics          `json:"metrics"`
	Samples     []observe.Sample `json:"samples,omitempty"`
}

func (s *Server) recordPath(id string) string { return filepath.Join(s.cfg.Dir, id+".json") }
func (s *Server) ckptPath(id string) string   { return filepath.Join(s.cfg.Dir, id+".ckp") }

// persist writes the job's current record (atomic rename). A no-op
// without a server directory; a failed write is logged, not fatal - the
// job still runs, it just will not survive a restart. Concurrent callers
// (a lifecycle transition racing the streaming-cadence persist) are
// serialized per job, each through its own temp file, so the rename only
// ever installs a complete record.
func (s *Server) persist(j *Job) {
	if s.cfg.Dir == "" {
		return
	}
	j.persistMu.Lock()
	defer j.persistMu.Unlock()
	s.mu.Lock()
	rec := record{
		ID: j.ID, Spec: j.Spec, State: j.State, Error: j.Err,
		SubmittedAt: j.SubmittedAt, StartedAt: j.StartedAt, FinishedAt: j.FinishedAt,
		Metrics: j.Metrics,
		Samples: j.Feed.Snapshot(),
	}
	// Detach the phase map: it keeps accumulating under s.mu while the
	// marshal below runs outside it.
	if j.Metrics.PhaseSeconds != nil {
		rec.Metrics.PhaseSeconds = make(map[string]float64, len(j.Metrics.PhaseSeconds))
		for name, sec := range j.Metrics.PhaseSeconds {
			rec.Metrics.PhaseSeconds[name] = sec
		}
	}
	s.mu.Unlock()
	data, err := json.MarshalIndent(&rec, "", " ")
	if err != nil {
		s.logf("job %s: persist: %v", j.ID, err)
		return
	}
	path := s.recordPath(j.ID)
	tmp, err := os.CreateTemp(s.cfg.Dir, j.ID+".*.tmp")
	if err != nil {
		s.logf("job %s: persist: %v", j.ID, err)
		return
	}
	_, err = tmp.Write(append(data, '\n'))
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		s.logf("job %s: persist: %v", j.ID, err)
	}
}

// adopt scans the server directory and re-registers every recorded job:
// terminal jobs as queryable history, interrupted ones (queued, running,
// preempted) back onto the queue with the newest loadable checkpoint as
// their resume point. Queue order is submission order (sequential IDs).
// An unreadable or corrupt record is quarantined (logged and skipped),
// not fatal: one torn file must not refuse the whole directory.
func (s *Server) adopt() error {
	if s.cfg.Dir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.Dir, 0o755); err != nil {
		return err
	}
	matches, err := filepath.Glob(filepath.Join(s.cfg.Dir, "j*.json"))
	if err != nil {
		return err
	}
	sort.Strings(matches)
	for _, path := range matches {
		rec, err := readRecord(path)
		if err != nil {
			s.logf("adopt: quarantined %s: %v", path, err)
			continue
		}
		if s.jobs[rec.ID] != nil {
			s.logf("adopt: quarantined %s: duplicate job id %s", path, rec.ID)
			continue
		}
		j := &Job{
			ID: rec.ID, Spec: rec.Spec, State: rec.State, Err: rec.Error,
			SubmittedAt: rec.SubmittedAt, StartedAt: rec.StartedAt, FinishedAt: rec.FinishedAt,
			Metrics: rec.Metrics,
			Feed:    observe.NewFeed(),
			roll:    s.rollFor(rec.ID),
		}
		if n := idNumber(rec.ID); n > s.nextID {
			s.nextID = n
		}
		if j.State.Terminal() {
			for _, smp := range rec.Samples {
				j.Feed.Append(smp)
			}
			j.Feed.Close()
		} else {
			// The process that ran this job is gone; whatever state it was
			// in, it continues from its newest durable checkpoint (or from
			// scratch if none was written). The replayed samples are
			// truncated to the resume point: the record may have been
			// persisted ahead of the checkpoint the job restarts from, and
			// the resumed attempt re-streams everything past it.
			limit := 0
			if st, _, err := j.roll.Latest(); err == nil {
				j.resume = st
				if rec.Spec.MD {
					limit = int(st.IonSteps)
				} else {
					limit = int(st.Step)
				}
			}
			for _, smp := range rec.Samples {
				if smp.Step <= limit {
					j.Feed.Append(smp)
				}
			}
			j.Metrics.StepsDone = limit
			j.State = StateQueued
			s.queue = append(s.queue, j.ID)
		}
		s.jobs[j.ID] = j
	}
	if len(s.jobs) > 0 {
		s.logf("adopted %d job record(s), %d requeued", len(s.jobs), len(s.queue))
	}
	return nil
}

// readRecord loads and validates one job record file.
func readRecord(path string) (*record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("corrupt job record: %w", err)
	}
	if rec.ID == "" {
		return nil, fmt.Errorf("job record without an id")
	}
	return &rec, nil
}

// idNumber extracts the sequence number of a job ID ("j000042" -> 42).
func idNumber(id string) int {
	n := 0
	for _, c := range strings.TrimPrefix(id, "j") {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}
