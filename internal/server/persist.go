// Job persistence: one <id>.json record per job in the server directory,
// rewritten atomically on every lifecycle transition, plus the rolling
// checkpoint sequence <id>.ckp* the simulation layer writes. Together
// they make jobs durable across server restarts: on start the server
// scans the directory, re-registers terminal jobs as history, and
// re-queues every interrupted job with its newest loadable checkpoint as
// the resume point.
package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ptdft/internal/observe"
	"ptdft/internal/sim"
)

// record is the on-disk form of a job.
type record struct {
	ID          string           `json:"id"`
	Spec        sim.Spec         `json:"spec"`
	State       State            `json:"state"`
	Error       string           `json:"error,omitempty"`
	SubmittedAt time.Time        `json:"submitted_at"`
	StartedAt   time.Time        `json:"started_at,omitzero"`
	FinishedAt  time.Time        `json:"finished_at,omitzero"`
	Metrics     Metrics          `json:"metrics"`
	Samples     []observe.Sample `json:"samples,omitempty"`
}

func (s *Server) recordPath(id string) string { return filepath.Join(s.cfg.Dir, id+".json") }
func (s *Server) ckptPath(id string) string   { return filepath.Join(s.cfg.Dir, id+".ckp") }

// persist writes the job's current record (atomic rename). A no-op
// without a server directory; a failed write is logged, not fatal - the
// job still runs, it just will not survive a restart.
func (s *Server) persist(j *Job) {
	if s.cfg.Dir == "" {
		return
	}
	s.mu.Lock()
	rec := record{
		ID: j.ID, Spec: j.Spec, State: j.State, Error: j.Err,
		SubmittedAt: j.SubmittedAt, StartedAt: j.StartedAt, FinishedAt: j.FinishedAt,
		Metrics: j.Metrics,
		Samples: j.Feed.Snapshot(),
	}
	s.mu.Unlock()
	data, err := json.MarshalIndent(&rec, "", " ")
	if err != nil {
		s.logf("job %s: persist: %v", j.ID, err)
		return
	}
	path := s.recordPath(j.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		s.logf("job %s: persist: %v", j.ID, err)
	}
}

// adopt scans the server directory and re-registers every recorded job:
// terminal jobs as queryable history, interrupted ones (queued, running,
// preempted) back onto the queue with the newest loadable checkpoint as
// their resume point. Queue order is submission order (sequential IDs).
func (s *Server) adopt() error {
	if s.cfg.Dir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.Dir, 0o755); err != nil {
		return err
	}
	matches, err := filepath.Glob(filepath.Join(s.cfg.Dir, "j*.json"))
	if err != nil {
		return err
	}
	sort.Strings(matches)
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var rec record
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("server: corrupt job record %s: %w", path, err)
		}
		if rec.ID == "" || s.jobs[rec.ID] != nil {
			return fmt.Errorf("server: bad or duplicate job record %s", path)
		}
		j := &Job{
			ID: rec.ID, Spec: rec.Spec, State: rec.State, Err: rec.Error,
			SubmittedAt: rec.SubmittedAt, StartedAt: rec.StartedAt, FinishedAt: rec.FinishedAt,
			Metrics: rec.Metrics,
			Feed:    observe.NewFeed(),
			roll:    s.rollFor(rec.ID),
		}
		for _, smp := range rec.Samples {
			j.Feed.Append(smp)
		}
		if n := idNumber(rec.ID); n > s.nextID {
			s.nextID = n
		}
		if j.State.Terminal() {
			j.Feed.Close()
		} else {
			// The process that ran this job is gone; whatever state it was
			// in, it continues from its newest durable checkpoint (or from
			// scratch if none was written).
			if st, _, err := j.roll.Latest(); err == nil {
				j.resume = st
			}
			j.State = StateQueued
			s.queue = append(s.queue, j.ID)
		}
		s.jobs[j.ID] = j
	}
	if len(s.jobs) > 0 {
		s.logf("adopted %d job record(s), %d requeued", len(s.jobs), len(s.queue))
	}
	return nil
}

// idNumber extracts the sequence number of a job ID ("j000042" -> 42).
func idNumber(id string) int {
	n := 0
	for _, c := range strings.TrimPrefix(id, "j") {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}
