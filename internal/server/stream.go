// SSE streaming: GET /jobs/{id}/stream replays the job's trajectory so
// far and then follows it live, one "sample" event per completed step,
// closing with a "state" event when the job turns terminal. Preemption
// does not end the stream - the feed stays open across attempts, so a
// client watching a preempted job sees the resumed steps continue on the
// same connection.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	feed, ok := s.feed(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such job: "+id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "internal", "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for i := 0; ; i++ {
		smp, ok := feed.Wait(i, r.Context().Done())
		if !ok {
			break
		}
		data, err := json.Marshal(smp)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: sample\ndata: %s\n\n", data)
		fl.Flush()
	}
	// Wait returned false: the feed closed (job terminal) or the client
	// went away. Only the former gets the closing state event.
	select {
	case <-r.Context().Done():
		return
	default:
	}
	if v, ok := s.Get(id); ok {
		data, err := json.Marshal(struct {
			ID    string `json:"id"`
			State State  `json:"state"`
			Error string `json:"error,omitempty"`
		}{v.ID, v.State, v.Error})
		if err == nil {
			fmt.Fprintf(w, "event: state\ndata: %s\n\n", data)
			fl.Flush()
		}
	}
}
