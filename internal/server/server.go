// Package server is the long-running job daemon behind cmd/ptdftd: an
// HTTP/JSON API over a bounded worker pool that multiplexes queued
// simulation jobs (electron-only and Ehrenfest MD, serial and
// distributed) through internal/sim. A ground-state SCF cache keyed by a
// content hash of the physical problem deduplicates the expensive solve
// across jobs; preemption and graceful shutdown ride the library's
// rolling-checkpoint + resume machinery, so an interrupted trajectory
// continues exactly where it stopped.
package server

import (
	"fmt"
	"sync"
	"time"

	"ptdft/internal/checkpoint"
	"ptdft/internal/observe"
	"ptdft/internal/scf"
	"ptdft/internal/sim"
	"ptdft/internal/trace"
)

// Config describes one server instance.
type Config struct {
	// Workers bounds the simulations in flight; <= 0 means 2. Each job
	// may still use internal parallelism (goroutine-MPI ranks).
	Workers int
	// Dir, when set, holds the durable state: one <id>.json record per
	// job plus a rolling checkpoint sequence <id>.ckp* per attempt. A
	// server restarted on the same directory re-adopts every resumable
	// job. Empty disables persistence (jobs die with the process).
	Dir string
	// CkptEvery adds a periodic durable checkpoint every N steps while a
	// job runs (crash insurance beyond the preempt/drain saves); 0 means
	// interruption-time checkpoints only.
	CkptEvery int
	// Logf receives server progress notices; nil silences them.
	Logf func(format string, args ...any)
}

func (c *Config) workers() int {
	if c.Workers <= 0 {
		return 2
	}
	return c.Workers
}

// runFunc executes one simulation segment (sim.Run in production; pool
// unit tests substitute a lightweight fake).
type runFunc func(spec *sim.Spec, opt sim.Options) (*sim.Result, error)

// solveFunc builds one ground state (sim.GroundState in production).
type solveFunc func(spec *sim.Spec) (*scf.Result, error)

// Server is the job daemon: a FIFO queue, a bounded worker pool, the SCF
// cache, and the persistence layer.
type Server struct {
	cfg   Config
	run   runFunc
	solve solveFunc
	cache *scf.Cache

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	queue    []string // FIFO of queued job IDs
	draining bool
	nextID   int
	wg       sync.WaitGroup

	// Cumulative observability counters behind GET /metrics (guarded by
	// mu): SCF cache outcomes as this server's jobs saw them, and the
	// rank-seconds / comm bytes folded from every attempt's flight
	// recorder.
	scfHits, scfMisses int64
	rankSecTotal       float64
	bytesTotal         int64
}

// New builds a server, re-adopts any resumable jobs from cfg.Dir, and
// starts the worker pool.
func New(cfg Config) (*Server, error) {
	s, err := newServer(cfg, sim.Run, sim.GroundState)
	if err != nil {
		return nil, err
	}
	s.start()
	return s, nil
}

// newServer builds a server without starting workers, with injectable run
// and solve functions - the white-box seam the pool unit tests drive.
func newServer(cfg Config, run runFunc, solve solveFunc) (*Server, error) {
	s := &Server{
		cfg:   cfg,
		run:   run,
		solve: solve,
		cache: scf.NewCache(),
		jobs:  make(map[string]*Job),
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.adopt(); err != nil {
		return nil, err
	}
	return s, nil
}

// start launches the worker pool.
func (s *Server) start() {
	for i := 0; i < s.cfg.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Submit validates and enqueues a job, returning its queued view.
func (s *Server) Submit(spec sim.Spec) (View, error) {
	if err := spec.Validate(); err != nil {
		return View{}, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return View{}, errDraining
	}
	s.nextID++
	j := &Job{
		ID:          fmt.Sprintf("j%06d", s.nextID),
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: time.Now().UTC(),
		Feed:        observe.NewFeed(),
	}
	j.roll = s.rollFor(j.ID)
	s.jobs[j.ID] = j
	s.queue = append(s.queue, j.ID)
	s.cond.Signal()
	v := j.view(false)
	s.mu.Unlock()
	s.persist(j)
	s.logf("job %s queued: %d steps, ranks=%d, md=%v", j.ID, spec.TotalSteps(), spec.Ranks, spec.MD)
	return v, nil
}

// errDraining rejects submissions during shutdown.
var errDraining = fmt.Errorf("server: draining, not accepting jobs")

// rollFor returns the job's rolling checkpoint sequence (nil without a
// server directory).
func (s *Server) rollFor(id string) *checkpoint.Rolling {
	if s.cfg.Dir == "" {
		return nil
	}
	return &checkpoint.Rolling{Base: s.ckptPath(id)}
}

// Get returns the job's view, with its trajectory samples.
func (s *Server) Get(id string) (View, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return View{}, false
	}
	return j.view(true), true
}

// feed returns the job's sample feed for streaming.
func (s *Server) feed(id string) (*observe.Feed, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.Feed, true
}

// List returns every job's view (no samples), oldest first.
func (s *Server) List() []View {
	s.mu.Lock()
	defer s.mu.Unlock()
	views := make([]View, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.view(false))
	}
	// Sequential IDs make lexical order submission order.
	for i := 1; i < len(views); i++ {
		for k := i; k > 0 && views[k].ID < views[k-1].ID; k-- {
			views[k], views[k-1] = views[k-1], views[k]
		}
	}
	return views
}

// Preempt interrupts a running job after its step in flight; the
// checkpointed job re-enters the queue and resumes automatically. Only
// running jobs can be preempted.
func (s *Server) Preempt(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return errNotFound
	}
	if j.State != StateRunning || j.stopSent {
		return fmt.Errorf("%w: job %s is %s", errConflict, id, j.State)
	}
	j.intent = "preempt"
	j.stopSent = true
	close(j.stop)
	return nil
}

// Cancel stops a queued or running job for good.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return errNotFound
	}
	switch {
	case j.State == StateQueued:
		j.State = StateCanceled
		j.FinishedAt = time.Now().UTC()
		j.Feed.Close()
		// The queue entry is dropped lazily: workers skip non-queued jobs.
		s.mu.Unlock()
		s.persist(j)
		s.logf("job %s canceled while queued", id)
		return nil
	case j.State == StateRunning && !j.stopSent:
		j.intent = "cancel"
		j.stopSent = true
		close(j.stop)
		s.mu.Unlock()
		return nil
	case j.State == StatePreempted:
		// Between attempts (drain) or about to requeue: mark canceled so
		// no worker picks it up again.
		j.State = StateCanceled
		j.FinishedAt = time.Now().UTC()
		j.Feed.Close()
		s.mu.Unlock()
		s.persist(j)
		return nil
	default:
		st := j.State
		s.mu.Unlock()
		return fmt.Errorf("%w: job %s is %s", errConflict, id, st)
	}
}

var (
	errNotFound = fmt.Errorf("server: no such job")
	errConflict = fmt.Errorf("server: conflicting state")
)

// Drain starts a graceful shutdown: no new submissions, running jobs are
// checkpointed after their step in flight and left resumable, queued jobs
// stay queued on disk. Drain returns when every worker has exited.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	for _, j := range s.jobs {
		if j.State == StateRunning && !j.stopSent {
			j.intent = "drain"
			j.stopSent = true
			close(j.stop)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	s.logf("drained: all workers stopped")
}

// worker is one pool slot: claim the queue head, run the attempt, apply
// the outcome transition, repeat.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.draining && len(s.queue) == 0 {
			s.cond.Wait()
		}
		if s.draining {
			s.mu.Unlock()
			return
		}
		id := s.queue[0]
		s.queue = s.queue[1:]
		j := s.jobs[id]
		if j.State != StateQueued {
			// Canceled while waiting; the record already says so.
			s.mu.Unlock()
			continue
		}
		j.State = StateRunning
		j.stop = make(chan struct{})
		j.stopSent = false
		j.intent = ""
		if j.StartedAt.IsZero() {
			j.StartedAt = time.Now().UTC()
		}
		if j.resume != nil {
			j.Metrics.Resumes++
		}
		s.mu.Unlock()
		s.persist(j)

		res, err := s.attempt(j)

		s.mu.Lock()
		switch {
		case err != nil:
			j.State = StateFailed
			j.Err = err.Error()
			j.FinishedAt = time.Now().UTC()
			j.Feed.Close()
			s.logf("job %s failed: %v", j.ID, err)
		case res.Stopped && j.intent == "cancel":
			j.State = StateCanceled
			j.FinishedAt = time.Now().UTC()
			j.Feed.Close()
			if j.roll != nil {
				j.roll.Clean()
			}
			s.logf("job %s canceled after %d steps", j.ID, j.Metrics.StepsDone)
		case res.Stopped && j.intent == "preempt":
			j.State = StatePreempted
			j.resume = res.Final
			j.Metrics.Preemptions++
			// Automatic resume: back of the queue, next free worker.
			j.State = StateQueued
			s.queue = append(s.queue, j.ID)
			s.cond.Signal()
			s.logf("job %s preempted at step %d; requeued", j.ID, j.Metrics.StepsDone)
		case res.Stopped && j.intent == "drain":
			j.State = StatePreempted
			j.resume = res.Final
			j.Metrics.Preemptions++
			s.logf("job %s checkpointed for drain at step %d", j.ID, j.Metrics.StepsDone)
		default:
			j.State = StateDone
			j.FinishedAt = time.Now().UTC()
			j.Feed.Close()
			if j.roll != nil {
				// The checkpoints were crash insurance; the record now
				// carries the result.
				j.roll.Clean()
			}
			s.logf("job %s done: %d steps", j.ID, j.Metrics.StepsDone)
		}
		s.mu.Unlock()
		s.persist(j)
	}
}

// attempt runs one segment of the job: ground state through the SCF
// cache, then the remaining steps from the resume point (if any).
func (s *Server) attempt(j *Job) (*sim.Result, error) {
	s.mu.Lock()
	seg := j.Spec
	resume := j.resume
	stop := j.stop
	roll := j.roll
	firstAttempt := j.resume == nil && j.Metrics.StepsDone == 0
	s.mu.Unlock()
	if resume != nil {
		// The spec's step count is the TOTAL trajectory; a resumed segment
		// runs only the remainder.
		if seg.MD {
			seg.IonSteps = j.Spec.IonSteps - int(resume.IonSteps)
		} else {
			seg.Steps = j.Spec.Steps - int(resume.Step)
		}
		if seg.TotalSteps() <= 0 {
			// The checkpoint already covers the whole trajectory (a
			// preempt/drain that fired as the final step completed, or a
			// restart adoption of a last-step checkpoint): nothing to run.
			// An MD segment of zero ion steps would not even validate.
			return &sim.Result{Psi: resume.Psi, Time: resume.Time, Final: resume}, nil
		}
	}

	key, err := seg.SCFKey()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	gs, hit, err := s.cache.GroundState(key, func() (*scf.Result, error) { return s.solve(&seg) })
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if hit {
		s.scfHits++
	} else {
		s.scfMisses++
	}
	if firstAttempt {
		j.Metrics.SCFCacheHit = hit
		j.Metrics.SCFWallSec = time.Since(start).Seconds()
	}
	s.mu.Unlock()

	// Each attempt records onto a fresh flight recorder; the folded
	// aggregates accumulate across attempts on the job and the server.
	rec := trace.NewRecorder()
	segDone := 0
	res, err := s.run(&seg, sim.Options{
		Trace:  rec,
		Stop:   stop,
		Ground: gs,
		Resume: resume,
		// The pulse envelope is shaped by the TOTAL trajectory length, not
		// this segment's remainder, so a resumed job propagates under the
		// identical laser field as an uninterrupted run.
		PulseSteps: j.Spec.Steps,
		OnSample: func(smp observe.Sample) {
			j.Feed.Append(smp)
			s.mu.Lock()
			j.Metrics.StepsDone = smp.Step
			s.mu.Unlock()
			// Persist the record on the periodic-checkpoint cadence, so a
			// crash loses at most CkptEvery streamed samples: the replayed
			// feed stays aligned with the checkpoint the job resumes from.
			segDone++
			if roll != nil && s.cfg.CkptEvery > 0 && segDone%s.cfg.CkptEvery == 0 {
				s.persist(j)
			}
		},
		Ckpt:      roll,
		CkptEvery: s.cfg.CkptEvery,
	})
	if res != nil {
		s.mu.Lock()
		j.Metrics.RankSeconds += res.RankSeconds
		j.Metrics.BytesMoved += res.BytesMoved
		if len(res.PhaseSeconds) > 0 {
			if j.Metrics.PhaseSeconds == nil {
				j.Metrics.PhaseSeconds = make(map[string]float64, len(res.PhaseSeconds))
			}
			for name, sec := range res.PhaseSeconds {
				j.Metrics.PhaseSeconds[name] += sec
			}
		}
		s.rankSecTotal += res.RankSeconds
		s.bytesTotal += res.BytesMoved
		s.mu.Unlock()
	}
	return res, err
}
