package hamiltonian

import (
	"math"
	"math/cmplx"
	"testing"

	"ptdft/internal/grid"
	"ptdft/internal/lattice"
	"ptdft/internal/linalg"
	"ptdft/internal/potential"
	"ptdft/internal/pseudo"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

func siPots() map[int]*pseudo.Potential {
	return map[int]*pseudo.Potential{0: pseudo.SiliconAH()}
}

func buildH(t *testing.T, hybrid bool, ecut float64) (*grid.Grid, *Hamiltonian) {
	t.Helper()
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), ecut)
	h := New(g, siPots(), Config{Hybrid: hybrid, Params: xc.HSE06()})
	return g, h
}

func TestHamiltonianHermitianSemiLocal(t *testing.T) {
	g, h := buildH(t, false, 3)
	nb := 4
	psi := wavefunc.Random(g, nb, 1)
	rho := potential.Density(g, psi, nb, 2)
	h.UpdatePotential(rho)
	hp := make([]complex128, nb*g.NG)
	h.Apply(hp, psi, nb)
	s := make([]complex128, nb*nb)
	linalg.Overlap(s, psi, hp, nb, nb, g.NG)
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			if cmplx.Abs(s[i*nb+j]-cmplx.Conj(s[j*nb+i])) > 1e-9 {
				t.Fatalf("H not Hermitian at (%d,%d): %v vs %v", i, j, s[i*nb+j], s[j*nb+i])
			}
		}
	}
}

func TestHamiltonianHermitianHybrid(t *testing.T) {
	g, h := buildH(t, true, 3)
	nb := 4
	psi := wavefunc.Random(g, nb, 1)
	rho := potential.Density(g, psi, nb, 2)
	h.UpdatePotential(rho)
	h.SetFockOrbitals(psi, nb)
	hp := make([]complex128, nb*g.NG)
	h.Apply(hp, psi, nb)
	s := make([]complex128, nb*nb)
	linalg.Overlap(s, psi, hp, nb, nb, g.NG)
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			if cmplx.Abs(s[i*nb+j]-cmplx.Conj(s[j*nb+i])) > 1e-9 {
				t.Fatalf("hybrid H not Hermitian at (%d,%d)", i, j)
			}
		}
	}
}

func TestKineticOfPlaneWave(t *testing.T) {
	// With zero potential state (fresh H, no UpdatePotential), H acting on
	// a single plane wave gives (1/2)|G|^2 plus the nonlocal term; kill the
	// nonlocal by checking only the kinetic factor identity.
	g, h := buildH(t, false, 3)
	for s := 0; s < g.NG; s += 50 {
		want := 0.5 * g.G2[s]
		if math.Abs(h.KineticFactor(s)-want) > 1e-12 {
			t.Fatalf("kinetic factor %d = %g, want %g", s, h.KineticFactor(s), want)
		}
	}
}

func TestVelocityGaugeShiftsKinetic(t *testing.T) {
	g, h := buildH(t, false, 3)
	h.SetField([3]float64{0.1, -0.2, 0.3})
	for s := 0; s < g.NG; s += 37 {
		gv := g.GVec[s]
		want := 0.5 * ((gv[0]+0.1)*(gv[0]+0.1) + (gv[1]-0.2)*(gv[1]-0.2) + (gv[2]+0.3)*(gv[2]+0.3))
		if math.Abs(h.KineticFactor(s)-want) > 1e-12 {
			t.Fatalf("gauge kinetic factor wrong at %d", s)
		}
	}
	if h.Field() != [3]float64{0.1, -0.2, 0.3} {
		t.Error("Field() does not round-trip")
	}
}

func TestTotalEnergyPieces(t *testing.T) {
	g, h := buildH(t, true, 3)
	nb := 4
	psi := wavefunc.Random(g, nb, 1)
	rho := potential.Density(g, psi, nb, 2)
	h.UpdatePotential(rho)
	h.SetFockOrbitals(psi, nb)
	eb := h.TotalEnergy(psi, nb, 2)
	if eb.Kinetic <= 0 {
		t.Errorf("kinetic %g, want positive", eb.Kinetic)
	}
	if eb.Exchange >= 0 {
		t.Errorf("exchange %g, want negative", eb.Exchange)
	}
	if eb.Hartree <= 0 {
		t.Errorf("Hartree %g, want positive", eb.Hartree)
	}
	if !IsFinite(eb.Total()) {
		t.Error("total energy not finite")
	}
	// Total is the sum of the pieces.
	sum := eb.Kinetic + eb.Nonlocal + eb.Hartree + eb.XC + eb.Local + eb.Exchange
	if math.Abs(sum-eb.Total()) > 1e-12 {
		t.Error("Total() does not sum the pieces")
	}
}

func TestBandEnergiesMatchRayleighQuotients(t *testing.T) {
	g, h := buildH(t, false, 3)
	nb := 3
	psi := wavefunc.Random(g, nb, 2)
	rho := potential.Density(g, psi, nb, 2)
	h.UpdatePotential(rho)
	be := h.BandEnergies(psi, nb)
	hp := make([]complex128, nb*g.NG)
	h.Apply(hp, psi, nb)
	for j := 0; j < nb; j++ {
		want := real(linalg.Dot(psi[j*g.NG:(j+1)*g.NG], hp[j*g.NG:(j+1)*g.NG]))
		if math.Abs(be[j]-want) > 1e-10 {
			t.Fatalf("band energy %d = %g, want %g", j, be[j], want)
		}
	}
}

func TestExScale(t *testing.T) {
	_, hLDA := buildH(t, false, 3)
	if hLDA.ExScale() != 1 {
		t.Errorf("semi-local ExScale = %g, want 1", hLDA.ExScale())
	}
	_, hHyb := buildH(t, true, 3)
	if hHyb.ExScale() != 0.75 {
		t.Errorf("hybrid ExScale = %g, want 0.75", hHyb.ExScale())
	}
}

func TestACEModeMatchesExactOnSpan(t *testing.T) {
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 3)
	nb := 4
	psi := wavefunc.Random(g, nb, 3)
	rho := potential.Density(g, psi, nb, 2)

	hExact := New(g, siPots(), Config{Hybrid: true, Params: xc.HSE06()})
	hExact.UpdatePotential(rho)
	hExact.SetFockOrbitals(psi, nb)

	hACE := New(g, siPots(), Config{Hybrid: true, UseACE: true, Params: xc.HSE06()})
	hACE.UpdatePotential(rho)
	hACE.SetFockOrbitals(psi, nb)

	a := make([]complex128, nb*g.NG)
	b := make([]complex128, nb*g.NG)
	hExact.Apply(a, psi, nb)
	hACE.Apply(b, psi, nb)
	if d := wavefunc.MaxDiff(a, b); d > 1e-7 {
		t.Errorf("ACE H application differs on reference span by %g", d)
	}
}

func BenchmarkApplySemiLocal(b *testing.B) {
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 4)
	h := New(g, siPots(), Config{})
	nb := 8
	psi := wavefunc.Random(g, nb, 1)
	rho := potential.Density(g, psi, nb, 2)
	h.UpdatePotential(rho)
	hp := make([]complex128, nb*g.NG)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Apply(hp, psi, nb)
	}
}

func BenchmarkApplyHybrid(b *testing.B) {
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 4)
	h := New(g, siPots(), Config{Hybrid: true, Params: xc.HSE06()})
	nb := 8
	psi := wavefunc.Random(g, nb, 1)
	rho := potential.Density(g, psi, nb, 2)
	h.UpdatePotential(rho)
	h.SetFockOrbitals(psi, nb)
	hp := make([]complex128, nb*g.NG)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Apply(hp, psi, nb)
	}
}

func TestBandLimitedProjectorConfig(t *testing.T) {
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 3)
	nb := 4
	psi := wavefunc.Random(g, nb, 1)
	rho := potential.Density(g, psi, nb, 2)
	apply := func(bl bool) []complex128 {
		h := New(g, siPots(), Config{BandLimitedProjectors: bl})
		h.UpdatePotential(rho)
		out := make([]complex128, nb*g.NG)
		h.Apply(out, psi, nb)
		return out
	}
	a := apply(false)
	b := apply(true)
	// Different discretizations of the same operator: close but not equal.
	d := wavefunc.MaxDiff(a, b)
	if d == 0 {
		t.Error("band-limited option had no effect")
	}
	if d > 0.1 {
		t.Errorf("band-limited projectors change H*psi by %g - too much", d)
	}
}

// TestACEFallbackSurfacedAndRecoverable: a degenerate reference set (zero
// band) makes the ACE Cholesky fail. The refresh must (1) report the
// fallback through ACEActive/ACEFallbacks instead of silently downgrading,
// (2) still apply the exact exchange operator, and (3) retry - a later
// refresh with a healthy set reactivates the compression rather than
// leaving useACE permanently disabled.
func TestACEFallbackSurfacedAndRecoverable(t *testing.T) {
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 3)
	nb := 4
	h := New(g, siPots(), Config{Hybrid: true, UseACE: true, Params: xc.HSE06()})
	psi := wavefunc.Random(g, nb, 11)
	rho := potential.Density(g, psi, nb, 2)
	h.UpdatePotential(rho)

	// Degenerate set: band 0 zeroed makes -Phi^H V_X Phi singular.
	degenerate := wavefunc.Clone(psi)
	for i := 0; i < g.NG; i++ {
		degenerate[i] = 0
	}
	h.SetFockOrbitals(degenerate, nb)
	if h.ACEActive() {
		t.Fatal("ACE reported active after a failed compression")
	}
	n, lastErr := h.ACEFallbacks()
	if n != 1 || lastErr == nil {
		t.Fatalf("fallback not surfaced: count=%d err=%v", n, lastErr)
	}

	// The fallback refresh must still carry the exact exchange: compare
	// against a hybrid Hamiltonian that never requested ACE.
	ref := New(g, siPots(), Config{Hybrid: true, Params: xc.HSE06()})
	ref.UpdatePotential(rho)
	ref.SetFockOrbitals(degenerate, nb)
	hp := make([]complex128, nb*g.NG)
	want := make([]complex128, nb*g.NG)
	h.Apply(hp, psi, nb)
	ref.Apply(want, psi, nb)
	if d := wavefunc.MaxDiff(hp, want); d > 1e-12 {
		t.Errorf("fallback apply differs from the exact hybrid operator by %g", d)
	}

	// A healthy refresh reactivates the compression.
	h.SetFockOrbitals(psi, nb)
	if !h.ACEActive() {
		t.Fatal("ACE did not recover after a healthy refresh")
	}
	if _, lastErr := h.ACEFallbacks(); lastErr != nil {
		t.Errorf("recovered operator still reports error: %v", lastErr)
	}
}

// TestFockOrbitalHold: the frozen-exchange hold behind the MTS cadence.
// While held, per-refresh SetFockOrbitals calls (the inner SCF, the
// observable evaluations between steps) must not move the reference; a
// release restores the per-refresh behavior.
func TestFockOrbitalHold(t *testing.T) {
	g, h := buildH(t, true, 3)
	nb := 4
	phiA := wavefunc.Random(g, nb, 11)
	phiB := wavefunc.Random(g, nb, 12)
	rho := potential.Density(g, phiA, nb, 2)
	h.UpdatePotential(rho)

	h.SetFockOrbitalsFrozen(phiA, nb)
	if !h.FockHeld() {
		t.Fatal("hold not active after SetFockOrbitalsFrozen")
	}
	h.SetFockOrbitals(phiB, nb) // must be a no-op
	if !h.FockOperator().IsReference(phiA, nb) {
		t.Error("held reference clobbered by SetFockOrbitals")
	}
	if ref := h.FrozenFockRef(); wavefunc.MaxDiff(ref, phiA) != 0 {
		t.Error("FrozenFockRef does not return the frozen orbitals")
	}

	// The frozen operator is what Apply uses on an iterate outside the
	// reference span: V_X[phiA] psi, not V_X[psi] psi.
	want := make([]complex128, nb*g.NG)
	ref := New(g, siPots(), Config{Hybrid: true, Params: xc.HSE06()})
	ref.UpdatePotential(rho)
	ref.SetFockOrbitals(phiA, nb)
	ref.Apply(want, phiB, nb)
	got := make([]complex128, nb*g.NG)
	h.Apply(got, phiB, nb)
	if d := wavefunc.MaxDiff(got, want); d > 1e-12 {
		t.Errorf("held Apply differs from V_X[frozen] by %g", d)
	}

	h.ReleaseFockHold()
	if h.FockHeld() {
		t.Error("hold still active after release")
	}
	if h.FrozenFockRef() != nil {
		t.Error("FrozenFockRef non-nil after release")
	}
	h.SetFockOrbitals(phiB, nb)
	if !h.FockOperator().IsReference(phiB, nb) {
		t.Error("SetFockOrbitals inert after release")
	}
}
