// Package hamiltonian assembles and applies the time-dependent Kohn-Sham
// Hamiltonian of Eq. 2:
//
//	H(t, P) = 1/2 |G + A(t)|^2 + V_loc + V_nl + V_Hxc[rho] + V_X[P]
//
// in the plane-wave basis: the kinetic term (with the velocity-gauge laser
// coupling A(t)) is diagonal in G space; the local potential acts
// point-wise in real space on the wavefunction grid; the nonlocal
// pseudopotential uses sparse real-space projectors; and the Fock exchange
// operator performs the N^2 FFT Poisson solves of Eq. 3. H*Psi is the inner
// kernel whose cost breakdown Table 1 reports.
package hamiltonian

import (
	"fmt"
	"math"
	"os"
	"sync"

	"ptdft/internal/fock"
	"ptdft/internal/fourier"
	"ptdft/internal/grid"
	"ptdft/internal/linalg"
	"ptdft/internal/parallel"
	"ptdft/internal/potential"
	"ptdft/internal/pseudo"
	"ptdft/internal/trace"
	"ptdft/internal/xc"
)

// Hamiltonian holds the operator state. The density- and gauge-dependent
// parts are refreshed with UpdatePotential, SetField and SetFockOrbitals;
// Apply is safe for concurrent use between refreshes.
type Hamiltonian struct {
	G   *grid.Grid
	NL  *pseudo.Nonlocal
	Hyb xc.HybridParams

	hybrid    bool
	pots      map[int]*pseudo.Potential // retained for geometry rebuilds
	cfg       Config
	vlocDense []float64
	veffWave  []float64 // Vloc+VH+Vxc restricted to the wavefunction grid
	aField    [3]float64
	fockOp    *fock.Operator
	ace       *fock.ACE
	useACE    bool // ACE requested; the active operator is ACEActive()

	// ACE fallback bookkeeping: when the compression fails for one
	// reference set (degenerate orbitals), that refresh falls back to the
	// exact operator, the failure is counted and kept inspectable, and the
	// next refresh retries - the request is never silently dropped for the
	// rest of the run.
	aceErr       error
	aceFallbacks int
	aceWarn      sync.Once

	// Frozen-exchange hold (the serial side of the MTS cadence): while
	// fockHold is set, SetFockOrbitals is a no-op, so the operator built by
	// SetFockOrbitalsFrozen - from the Psi_n of the last MTS outer step -
	// survives the per-refresh Prepare calls of the inner SCF and of the
	// observable evaluations between steps. frozenPhi keeps the reference
	// the operator was built from, so checkpoints can persist it.
	fockHold  bool
	frozenPhi []complex128
	// energyOp evaluates the exchange energy while a hold is active: the
	// energy convention is the exact operator on the state's own span
	// (matching the distributed solver), which the frozen propagation
	// operator cannot provide. Lazily built, refreshed per evaluation.
	energyOp *fock.Operator

	// Bloch-vector state for k-point sampling (section 3.1): the kinetic
	// term becomes 1/2|G+k+A|^2 and the nonlocal projectors carry the
	// exp(-ik.r) twist. Zero k with a nil nlBloch is the Gamma point.
	bloch   [3]float64
	nlBloch *pseudo.NonlocalBloch

	// Energy bookkeeping from the last UpdatePotential call.
	PotEnergies potential.Energies

	// tr is forwarded to every exchange operator this Hamiltonian builds
	// (the propagation operator is rebuilt on each orbital refresh, so the
	// track must live here). nil disables span recording.
	tr *trace.Track

	// Per-worker apply scratch, recycled across Apply/TotalEnergy calls.
	scratch parallel.ScratchPool[*applyScratch]
}

// applyScratch is the per-worker scratch of one band application: the two
// real-space boxes, a sphere-coefficient vector and the FFT line scratch.
type applyScratch struct {
	box, vbox []complex128
	c         []complex128
	fws       *fourier.Workspace3
}

func (h *Hamiltonian) newScratch() *applyScratch {
	return &applyScratch{
		box:  make([]complex128, h.G.NTot),
		vbox: make([]complex128, h.G.NTot),
		c:    make([]complex128, h.G.NG),
		fws:  h.G.Plan.NewWorkspace(),
	}
}

// Config selects the functional and discretization options.
type Config struct {
	Hybrid bool            // include the Fock exchange operator
	UseACE bool            // apply exchange through the ACE compression
	Params xc.HybridParams // mixing/screening; ignored unless Hybrid
	// BandLimitedProjectors builds the real-space nonlocal projectors by
	// Fourier interpolation (ref [37] scheme) instead of point sampling,
	// removing the egg-box translation error at the cost of a denser
	// projector when the support radius is widened.
	BandLimitedProjectors bool
	// IonDynamics builds the force-ready nonlocal projectors
	// (pseudo.BuildNonlocalMD): band-limited to the G-sphere, full-grid
	// support, with the center-gradient fields the Hellmann-Feynman force
	// assembly needs. Required for Ehrenfest MD; takes precedence over
	// BandLimitedProjectors.
	IonDynamics bool
}

// buildNL constructs the nonlocal projector set the configuration selects.
func buildNL(g *grid.Grid, pots map[int]*pseudo.Potential, cfg Config) *pseudo.Nonlocal {
	switch {
	case cfg.IonDynamics:
		return pseudo.BuildNonlocalMD(g, pots)
	case cfg.BandLimitedProjectors:
		return pseudo.BuildNonlocalBandLimited(g, pots)
	default:
		return pseudo.BuildNonlocal(g, pots)
	}
}

// New builds a Hamiltonian for the grid, assembling the static local
// pseudopotential from pots. The density-dependent parts start at zero.
func New(g *grid.Grid, pots map[int]*pseudo.Potential, cfg Config) *Hamiltonian {
	h := &Hamiltonian{
		G:         g,
		NL:        buildNL(g, pots, cfg),
		Hyb:       cfg.Params,
		hybrid:    cfg.Hybrid,
		useACE:    cfg.UseACE,
		pots:      pots,
		cfg:       cfg,
		vlocDense: potential.BuildVloc(g, pots),
	}
	h.veffWave = make([]float64, g.NTot)
	h.scratch.New = h.newScratch
	return h
}

// RebuildGeometry re-derives the atom-position-dependent static operators
// - the nonlocal projectors and the local pseudopotential (form factors x
// structure factors) - from the cell's current atom positions. The ion
// integrator calls this after every drift. The density-dependent
// potentials are refreshed by the next UpdatePotential as usual, and the
// Fock/ACE exchange carries no explicit position dependence: a frozen MTS
// operator remains valid across the rebuild and the next outer-step
// refresh re-anchors it on orbitals already propagated under the new
// geometry.
func (h *Hamiltonian) RebuildGeometry() {
	h.NL = buildNL(h.G, h.pots, h.cfg)
	h.vlocDense = potential.BuildVloc(h.G, h.pots)
}

// Hybrid reports whether the Fock exchange operator is active.
func (h *Hamiltonian) Hybrid() bool { return h.hybrid }

// ExScale returns the semi-local exchange attenuation: 1 - alpha when the
// hybrid carries alpha of the exchange through the Fock operator.
func (h *Hamiltonian) ExScale() float64 {
	if h.hybrid {
		return 1 - h.Hyb.Alpha
	}
	return 1
}

// UpdatePotential recomputes V_Hxc from the density (dense grid) and
// restricts the total local potential onto the wavefunction grid.
func (h *Hamiltonian) UpdatePotential(rho []float64) {
	veffDense, en := potential.SCFPotential(h.G, rho, h.vlocDense, h.ExScale())
	h.PotEnergies = en
	h.veffWave = potential.RestrictToWave(h.G, veffDense)
}

// SetVeffDense installs an externally assembled effective potential
// (dense grid) and its energy bookkeeping. The distributed implementation
// uses this: Hartree and XC are computed cooperatively across ranks
// (section 3.4) and the assembled result handed to each rank's H.
func (h *Hamiltonian) SetVeffDense(veffDense []float64, en potential.Energies) {
	h.PotEnergies = en
	h.veffWave = potential.RestrictToWave(h.G, veffDense)
}

// VlocDense exposes the static local pseudopotential on the dense grid
// (read-only use).
func (h *Hamiltonian) VlocDense() []float64 { return h.vlocDense }

// SetField sets the vector potential entering the kinetic term.
func (h *Hamiltonian) SetField(a [3]float64) { h.aField = a }

// Field returns the current vector potential.
func (h *Hamiltonian) Field() [3]float64 { return h.aField }

// SetFockOrbitals refreshes the exchange reference orbitals (the density
// matrix P of V_X[P]). phi is band-major sphere coefficients. While a
// frozen-exchange hold is active (SetFockOrbitalsFrozen) the call is a
// no-op: the MTS cadence owns the refresh schedule and per-refresh callers
// must not clobber the held operator.
func (h *Hamiltonian) SetFockOrbitals(phi []complex128, nb int) {
	if !h.hybrid || h.fockHold {
		return
	}
	if h.fockOp == nil {
		h.fockOp = fock.NewOperator(h.G, h.Hyb, phi, nb)
		h.fockOp.SetTrace(h.tr)
	} else {
		h.fockOp.SetOrbitals(phi, nb)
	}
	if h.useACE {
		ace, err := fock.NewACE(h.fockOp, phi, nb)
		if err != nil {
			// Fall back to the exact operator for this reference set only
			// (the compression can fail only for degenerate sets), surface
			// the downgrade, and retry at the next refresh.
			h.ace = nil
			h.aceErr = err
			h.aceFallbacks++
			h.aceWarn.Do(func() {
				fmt.Fprintf(os.Stderr, "hamiltonian: ACE compression failed, falling back to the exact exchange operator for this refresh: %v\n", err)
			})
			return
		}
		h.ace = ace
		h.aceErr = nil
	}
}

// SetFockOrbitalsFrozen installs phi as the exchange reference and freezes
// it: subsequent SetFockOrbitals calls are no-ops until ReleaseFockHold or
// the next SetFockOrbitalsFrozen. This is the serial MTS outer-step
// refresh - the held operator (exact or ACE) then propagates the inner SCF
// iterations and the intermediate steps of the cycle. A copy of phi is
// retained for FrozenFockRef so checkpoints can persist the reference.
func (h *Hamiltonian) SetFockOrbitalsFrozen(phi []complex128, nb int) {
	if !h.hybrid {
		return
	}
	h.fockHold = false
	h.SetFockOrbitals(phi, nb)
	if len(h.frozenPhi) != len(phi) {
		h.frozenPhi = make([]complex128, len(phi))
	}
	copy(h.frozenPhi, phi)
	h.fockHold = true
}

// ReleaseFockHold lifts the frozen-exchange hold, returning SetFockOrbitals
// to its per-refresh behavior.
func (h *Hamiltonian) ReleaseFockHold() { h.fockHold = false }

// FockHeld reports whether the exchange reference is currently frozen.
func (h *Hamiltonian) FockHeld() bool { return h.fockHold }

// FrozenFockRef returns the reference orbitals the held exchange operator
// was built from (nil when no hold is active). The slice is owned by the
// Hamiltonian; callers must copy it to mutate.
func (h *Hamiltonian) FrozenFockRef() []complex128 {
	if !h.fockHold {
		return nil
	}
	return h.frozenPhi
}

// ACEActive reports whether the exchange currently propagates through the
// ACE compression (requested and successfully built for the present
// reference set).
func (h *Hamiltonian) ACEActive() bool { return h.hybrid && h.useACE && h.ace != nil }

// ACEFallbacks reports how many exchange refreshes fell back to the exact
// operator because the ACE construction failed, and the error of the most
// recent refresh (nil when the current operator is the compression). Users
// read this to learn which operator actually propagated their run.
func (h *Hamiltonian) ACEFallbacks() (int, error) { return h.aceFallbacks, h.aceErr }

// FockOperator exposes the current exchange operator (nil when not hybrid
// or before the first SetFockOrbitals).
func (h *Hamiltonian) FockOperator() *fock.Operator { return h.fockOp }

// SetTrace attaches a span track to every exchange operator this
// Hamiltonian builds (current and future - the propagation operator is
// reconstructed on each reference refresh). nil disables recording.
func (h *Hamiltonian) SetTrace(t *trace.Track) {
	h.tr = t
	if h.fockOp != nil {
		h.fockOp.SetTrace(t)
	}
	if h.energyOp != nil {
		h.energyOp.SetTrace(t)
	}
}

// SetBloch selects a k-point: kinetic 1/2|G+k+A|^2 and phase-twisted
// nonlocal projectors. Pass a zero vector and nil to return to Gamma.
// Used for band-structure evaluation at fixed potential; the TDDFT
// propagators operate at Gamma as in the paper's tests.
func (h *Hamiltonian) SetBloch(k [3]float64, nl *pseudo.NonlocalBloch) {
	h.bloch = k
	h.nlBloch = nl
}

// Bloch returns the current k-point.
func (h *Hamiltonian) Bloch() [3]float64 { return h.bloch }

// KineticFactor returns 1/2 |G_s + k + A|^2 for sphere entry s.
func (h *Hamiltonian) KineticFactor(s int) float64 {
	g := h.G.GVec[s]
	dx := g[0] + h.bloch[0] + h.aField[0]
	dy := g[1] + h.bloch[1] + h.aField[1]
	dz := g[2] + h.bloch[2] + h.aField[2]
	return 0.5 * (dx*dx + dy*dy + dz*dz)
}

// applyOne computes dst = H src for a single band of sphere coefficients,
// using caller-provided scratch. No worker-pool parallelism: callers
// parallelize over bands. withFock selects whether the exchange is folded
// in per band here; Apply clears it when the whole band set is the Fock
// reference and the symmetry-halved ApplyToReference runs instead.
func (h *Hamiltonian) applyOne(dst, src []complex128, sc *applyScratch, withFock bool) {
	ng := h.G.NG
	for s := 0; s < ng; s++ {
		dst[s] = complex(h.KineticFactor(s), 0) * src[s]
	}
	box, vbox := sc.box, sc.vbox
	h.G.ToRealSerialWS(box, src, sc.fws)
	for k := range vbox {
		vbox[k] = complex(h.veffWave[k], 0) * box[k]
	}
	if h.nlBloch != nil {
		h.nlBloch.Apply(vbox, box)
	} else {
		h.NL.Apply(vbox, box)
	}
	if withFock {
		h.fockOp.ApplyReal(vbox, box)
	}
	h.G.FromRealSerialWS(sc.c, vbox, sc.fws)
	for s := 0; s < ng; s++ {
		dst[s] += sc.c[s]
	}
}

// Apply computes dst = H src for nb band-major sphere-coefficient bands,
// parallelizing over bands with one scratch workspace per worker. dst and
// src must not alias. When the hybrid exchange acts on its own reference
// set - the PT-CN refresh, where SetFockOrbitals(psi) is followed by
// Apply(_, psi) - the Fock term runs through the symmetry-halved
// fock.Operator.ApplyToReference instead of nb^2 per-band solves.
func (h *Hamiltonian) Apply(dst, src []complex128, nb int) {
	ng := h.G.NG
	if len(dst) != nb*ng || len(src) != nb*ng {
		panic("hamiltonian: Apply buffer size mismatch")
	}
	aceActive := h.ACEActive()
	// A failed ACE build (h.ace == nil despite useACE) must still apply
	// the exact operator: the fallback downgrades, never drops, the
	// exchange.
	fockReal := h.hybrid && h.fockOp != nil && !aceActive
	fused := fockReal && h.fockOp.IsReference(src, nb)
	nw := parallel.NumWorkers(nb)
	wss := h.scratch.Acquire(nw)
	if nw <= 1 {
		// Serial fast path: no closure, no goroutines (zero-alloc).
		for j := 0; j < nb; j++ {
			h.applyOne(dst[j*ng:(j+1)*ng], src[j*ng:(j+1)*ng], wss[0], fockReal && !fused)
		}
	} else {
		parallel.ForWorker(nb, func(w, j int) {
			h.applyOne(dst[j*ng:(j+1)*ng], src[j*ng:(j+1)*ng], wss[w], fockReal && !fused)
		})
	}
	h.scratch.Release(wss)
	if fused {
		h.fockOp.ApplyToReference(dst)
	}
	if aceActive {
		h.ace.Apply(dst, src, nb)
	}
}

// Energy terms for a band set. occ is the orbital occupation (2 for
// spin-restricted closed shell).
type EnergyBreakdown struct {
	Kinetic  float64
	Nonlocal float64
	Hartree  float64
	XC       float64
	Local    float64
	Exchange float64
}

// Total returns the total electronic energy (the arbitrary G = 0
// pseudopotential/Hartree constant excluded; see potential.BuildVloc).
func (e EnergyBreakdown) Total() float64 {
	return e.Kinetic + e.Nonlocal + e.Hartree + e.XC + e.Local + e.Exchange
}

// TotalEnergy evaluates the energy functional for orbitals psi and the
// density rho they generate. UpdatePotential(rho) must have been called so
// that the Hartree/XC/local bookkeeping matches rho.
func (h *Hamiltonian) TotalEnergy(psi []complex128, nb int, occ float64) EnergyBreakdown {
	ng := h.G.NG
	var ekin, enl float64
	var mu parallelSum
	wss := h.scratch.Acquire(parallel.NumWorkers(nb))
	parallel.ForWorker(nb, func(w, j int) {
		c := psi[j*ng : (j+1)*ng]
		var k float64
		for s := 0; s < ng; s++ {
			v := c[s]
			k += h.KineticFactor(s) * (real(v)*real(v) + imag(v)*imag(v))
		}
		sc := wss[w]
		h.G.ToRealSerialWS(sc.box, c, sc.fws)
		nl := h.NL.Energy(sc.box)
		mu.add(&ekin, occ*k)
		mu.add(&enl, occ*nl)
	})
	h.scratch.Release(wss)
	eb := EnergyBreakdown{
		Kinetic:  ekin,
		Nonlocal: enl,
		Hartree:  h.PotEnergies.Hartree,
		XC:       h.PotEnergies.XC,
		Local:    h.PotEnergies.Local,
	}
	if h.hybrid && h.fockOp != nil {
		if h.fockHold && !h.fockOp.IsReference(psi, nb) {
			// MTS hold: the propagation operator is referenced on the
			// frozen Psi_outer, but the once-per-step energy convention is
			// the exact exchange on psi's own span (the same convention as
			// the distributed solver, where the compression reproduces it
			// exactly). A dedicated operator pays one reference refresh
			// plus the pair-symmetric energy per evaluation.
			if h.energyOp == nil {
				h.energyOp = fock.NewOperator(h.G, h.Hyb, psi, nb)
				h.energyOp.SetTrace(h.tr)
			} else {
				h.energyOp.SetOrbitals(psi, nb)
			}
			eb.Exchange = h.energyOp.Energy(psi, nb)
		} else {
			eb.Exchange = h.fockOp.Energy(psi, nb)
		}
	}
	return eb
}

// BandEnergies returns the diagonal <psi_j|H|psi_j> matrix elements.
func (h *Hamiltonian) BandEnergies(psi []complex128, nb int) []float64 {
	ng := h.G.NG
	hp := make([]complex128, nb*ng)
	h.Apply(hp, psi, nb)
	out := make([]float64, nb)
	for j := 0; j < nb; j++ {
		out[j] = real(linalg.Dot(psi[j*ng:(j+1)*ng], hp[j*ng:(j+1)*ng]))
	}
	return out
}

// parallelSum guards scalar accumulation from worker goroutines.
type parallelSum struct{ mu sync.Mutex }

func (p *parallelSum) add(dst *float64, v float64) {
	p.mu.Lock()
	*dst += v
	p.mu.Unlock()
}

// KineticEnergyBand returns sum_s 1/2|G+A|^2 |c_s|^2 for one band, used by
// the eigensolver preconditioner.
func (h *Hamiltonian) KineticEnergyBand(c []complex128) float64 {
	var k float64
	for s := range c {
		v := c[s]
		k += h.KineticFactor(s) * (real(v)*real(v) + imag(v)*imag(v))
	}
	return k
}

// VeffWave exposes the current effective local potential on the
// wavefunction grid (read-only use).
func (h *Hamiltonian) VeffWave() []float64 { return h.veffWave }

// IsFinite reports whether a number is neither NaN nor Inf; used by SCF
// sanity checks.
func IsFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
