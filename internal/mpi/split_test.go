package mpi

import (
	"sync/atomic"
	"testing"
)

func TestSplitBasic(t *testing.T) {
	// 6 ranks into 2 colors of 3.
	Run(6, func(c *Comm) {
		color := int64(c.Rank() % 2)
		sub := c.Split(1000, color, c.Rank())
		if sub.Size() != 3 {
			t.Errorf("rank %d: sub size %d, want 3", c.Rank(), sub.Size())
		}
		// Ordered by key = parent rank: parent ranks 0,2,4 map to sub
		// ranks 0,1,2 for color 0; 1,3,5 likewise for color 1.
		want := c.Rank() / 2
		if sub.Rank() != want {
			t.Errorf("parent %d: sub rank %d, want %d", c.Rank(), sub.Rank(), want)
		}
		// Collectives work within the sub-communicator and stay isolated.
		data := []float64{float64(c.Rank())}
		AllreduceSum(sub, 1, data)
		var wantSum float64
		for r := int(color); r < 6; r += 2 {
			wantSum += float64(r)
		}
		if data[0] != wantSum {
			t.Errorf("rank %d: sub allreduce %g, want %g", c.Rank(), data[0], wantSum)
		}
	})
}

func TestSplitSingletonColors(t *testing.T) {
	Run(4, func(c *Comm) {
		sub := c.Split(1, int64(c.Rank()), 0) // every rank its own color
		if sub.Size() != 1 || sub.Rank() != 0 {
			t.Errorf("rank %d: singleton sub %d/%d", c.Rank(), sub.Rank(), sub.Size())
		}
		// Size-1 collectives are no-ops but must not hang.
		data := []float64{1}
		AllreduceSum(sub, 2, data)
		Bcast(sub, 0, 3, data)
	})
}

func TestSplitKeyOverridesOrder(t *testing.T) {
	Run(4, func(c *Comm) {
		// Reverse ordering via descending keys.
		sub := c.Split(7, 0, -c.Rank())
		if want := 3 - c.Rank(); sub.Rank() != want {
			t.Errorf("parent %d: sub rank %d, want %d", c.Rank(), sub.Rank(), want)
		}
	})
}

func TestSplitSuccessiveSameColor(t *testing.T) {
	// Two consecutive Splits with identical colors must produce fresh,
	// independent communicators (registry retirement + barrier).
	Run(4, func(c *Comm) {
		a := c.Split(10, int64(c.Rank()%2), 0)
		b := c.Split(20, int64(c.Rank()%2), 0)
		if a.w == b.w {
			t.Error("successive splits shared a world")
		}
		// Both remain usable.
		da := []int64{1}
		db := []int64{2}
		AllreduceSum(a, 1, da)
		AllreduceSum(b, 1, db)
		if da[0] != 2 || db[0] != 4 {
			t.Errorf("sub collectives wrong: %d %d", da[0], db[0])
		}
	})
}

func TestSplitSubStatsIsolated(t *testing.T) {
	var subBytes atomic.Int64
	parent := Run(4, func(c *Comm) {
		sub := c.Split(5, int64(c.Rank()/2), c.Rank())
		data := make([]complex128, 100)
		Bcast(sub, 0, 1, data)
		if sub.Rank() == 0 {
			subBytes.Add(sub.SubStats().BytesFor(ClassBcast))
		}
	})
	// Each 2-rank sub-bcast ships 100 x 16 bytes once; two groups.
	if got := subBytes.Load(); got != 2*100*16 {
		t.Errorf("sub bcast bytes %d, want %d", got, 2*100*16)
	}
	// The parent saw only the Split's own Allgatherv, no Bcast.
	if parent.BytesFor(ClassBcast) != 0 {
		t.Errorf("parent accounted sub-communicator traffic: %d", parent.BytesFor(ClassBcast))
	}
}

func TestSplitStress(t *testing.T) {
	// Repeated splits with rotating colors; checks for registry leaks,
	// deadlocks, and rank-mapping errors.
	Run(8, func(c *Comm) {
		for round := 0; round < 10; round++ {
			color := int64((c.Rank() + round) % 3)
			sub := c.Split(100+round, color, c.Rank())
			data := []int64{int64(sub.Rank())}
			AllreduceSum(sub, 1, data)
			// sum 0..size-1
			want := int64(sub.Size() * (sub.Size() - 1) / 2)
			if data[0] != want {
				t.Errorf("round %d color %d: sum %d, want %d", round, color, data[0], want)
				return
			}
		}
	})
}
