// Hard-fault injection and failure detection for the goroutine MPI
// runtime: rank crashes (a panic with a typed RankFailure), probabilistic
// message drops, and a receive/barrier deadline that turns a peer that
// went silent into a loud PeerLostError instead of an eternal hang. The
// model mirrors what a ULFM-style MPI gives a fault-tolerant application:
// a failed rank stops participating, survivors learn about it from
// timed-out operations, and the job-level supervisor (dist.RunResilient)
// tears the world down and relaunches from a checkpoint.
package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultDeadline is the peer-loss detection deadline applied when a
// Perturb carries a Fault but no explicit Deadline: long enough that a
// healthy run never trips it, short enough that tests and the recovery
// supervisor are not stuck for minutes behind a dead rank.
const DefaultDeadline = 10 * time.Second

// CrashRankAt schedules the hard failure of one rank. Exactly one of the
// two triggers should be set:
//
//   - AfterCalls > 0 kills the rank the moment its N-th metered
//     communication operation (sends of any class, plus RMA fetch-ops -
//     the operations counted in Stats.Calls) begins, before the payload is
//     delivered. This lands crashes at arbitrary, phase-unaligned points
//     inside collectives.
//   - AfterStep > 0 kills the rank when the application announces that
//     propagation step via Comm.StepReached, i.e. at a step boundary.
//
// A crash is a panic with a *RankFailure value; Run re-raises it,
// RunTolerant reports it in the returned Failure.
type CrashRankAt struct {
	Rank       int
	AfterCalls int64
	AfterStep  int64
}

// Fault is the hard-failure injection plan of one run: scheduled rank
// crashes and/or probabilistic message loss.
type Fault struct {
	// Crashes lists the scheduled rank failures. Faults are per-run: a
	// supervisor that relaunches the world passes a fresh (usually empty)
	// Fault for the retry attempt.
	Crashes []CrashRankAt
	// DropProb, when > 0, is the probability that any single message
	// delivery is lost in transit: the sender is billed (it did the work),
	// the receiver never sees the payload and trips its deadline. Drawn
	// from a deterministic stream seeded by DropSeed.
	DropProb float64
	// DropSeed seeds the drop stream (0 is replaced by 1 so the zero
	// value is still deterministic).
	DropSeed int64
}

// RankFailure is the panic value of an injected rank crash. It satisfies
// error so supervisors can report it directly.
type RankFailure struct {
	Rank int
	At   string // e.g. "communication call 37" or "step 12"
}

func (f *RankFailure) Error() string {
	return fmt.Sprintf("mpi: rank %d crashed (%s)", f.Rank, f.At)
}

// ErrPeerLost is the sentinel matched by errors.Is for peer-loss
// detection failures.
var ErrPeerLost = errors.New("mpi: peer lost")

// PeerLostError is the panic value raised by a receive or barrier that
// waited past the configured deadline: the peer is presumed dead. It
// wraps ErrPeerLost.
type PeerLostError struct {
	Rank int           // the detecting rank
	Peer int           // the silent peer, or -1 when unattributable (barrier)
	Op   string        // the operation that timed out
	Wait time.Duration // how long it waited
	Dead []int         // ranks already known crashed at detection time
}

func (e *PeerLostError) Error() string {
	who := "a peer"
	if e.Peer >= 0 {
		who = fmt.Sprintf("rank %d", e.Peer)
	}
	msg := fmt.Sprintf("mpi: rank %d lost %s (%s gave no answer within %v)", e.Rank, who, e.Op, e.Wait)
	if len(e.Dead) > 0 {
		msg += fmt.Sprintf("; known dead: %v", e.Dead)
	}
	return msg
}

func (e *PeerLostError) Unwrap() error { return ErrPeerLost }

// IsFault reports whether a recovered panic value is an injected-fault
// signal (*RankFailure or *PeerLostError) rather than a programming bug.
// Helper goroutines that run communication off the rank's main goroutine
// use it to forward fault panics instead of killing the process.
func IsFault(p any) bool {
	switch p.(type) {
	case *RankFailure, *PeerLostError:
		return true
	}
	return false
}

// Failure describes how a tolerant run went down: which ranks crashed by
// injection and which aborted after losing a peer. It satisfies error.
type Failure struct {
	Crashed  []int         // ranks that died from an injected crash
	PeerLost []int         // ranks that aborted on a peer-loss deadline
	Errs     map[int]error // the per-rank failure detail
}

func (f *Failure) Error() string {
	var parts []string
	for _, r := range f.Crashed {
		parts = append(parts, f.Errs[r].Error())
	}
	if len(f.PeerLost) > 0 {
		parts = append(parts, fmt.Sprintf("ranks %v aborted on peer loss", f.PeerLost))
	}
	return strings.Join(parts, "; ")
}

// RunTolerant executes f on size ranks like RunPerturbed, but recovers
// injected-fault panics (RankFailure, PeerLostError) instead of
// re-raising them: if any rank failed, the returned Failure lists the
// crashed and peer-lost ranks. A nil Failure means the run completed
// cleanly on every rank. Non-fault panics are still programming bugs and
// are re-raised with rank attribution. Stats are returned in either case
// (for a failed run they meter the truncated traffic).
//
// When p carries a Fault but no Deadline, DefaultDeadline is applied so
// surviving ranks always unblock: RunTolerant only returns once every
// rank goroutine has exited.
func RunTolerant(size int, p *Perturb, f func(c *Comm)) (*Stats, *Failure) {
	if size < 1 {
		panic("mpi: communicator size must be >= 1")
	}
	w := newWorld(size)
	w.perturb = p
	if p != nil {
		w.deadline = p.Deadline
		if w.fault = p.Fault; w.fault != nil {
			if w.deadline == 0 {
				w.deadline = DefaultDeadline
			}
			if w.fault.DropProb > 0 {
				seed := w.fault.DropSeed
				if seed == 0 {
					seed = 1
				}
				w.dropRng = rand.New(rand.NewSource(seed))
			}
		}
	}
	scales := make([]float64, size)
	if p != nil && p.ComputeScale != nil {
		for r := range scales {
			scales[r] = p.ComputeScale(r)
		}
	}
	var wg sync.WaitGroup
	panics := make([]any, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[rank] = p
				}
			}()
			f(&Comm{rank: rank, w: w, scale: scales[rank]})
		}(r)
	}
	wg.Wait()
	for r, pv := range panics {
		if pv != nil && !IsFault(pv) {
			panic(fmt.Sprintf("mpi: rank %d panicked: %v", r, pv))
		}
	}
	st := &Stats{
		sent: make([][numClasses]int64, size),
		recv: make([][numClasses]int64, size),
	}
	for i := 0; i < int(numClasses); i++ {
		st.Bytes[i] = w.bytes[i].Load()
		st.Calls[i] = w.calls[i].Load()
		for r := 0; r < size; r++ {
			st.sent[r][i] = w.sent[r][i].Load()
			st.recv[r][i] = w.recv[r][i].Load()
		}
	}
	var fail *Failure
	note := func(r int, err error, crashed bool) {
		if fail == nil {
			fail = &Failure{Errs: map[int]error{}}
		}
		if _, seen := fail.Errs[r]; seen {
			return
		}
		fail.Errs[r] = err
		if crashed {
			fail.Crashed = append(fail.Crashed, r)
		} else {
			fail.PeerLost = append(fail.PeerLost, r)
		}
	}
	for r := 0; r < size; r++ {
		// The crash ledger also catches faults absorbed by helper
		// goroutines (overlapped-fetch pipelines) whose rank's main
		// goroutine happened to finish.
		if rf := w.failed[r].Load(); rf != nil {
			note(r, rf, true)
			continue
		}
		switch pv := panics[r].(type) {
		case *RankFailure:
			note(r, pv, true)
		case *PeerLostError:
			note(r, pv, false)
		}
	}
	if fail != nil {
		sort.Ints(fail.Crashed)
		sort.Ints(fail.PeerLost)
	}
	return st, fail
}

// StepReached announces that this rank is about to execute propagation
// step `step` (cumulative, 0-based). It is the trigger point for
// CrashRankAt.AfterStep faults and a no-op without an armed Fault.
func (c *Comm) StepReached(step int64) {
	ft := c.w.fault
	if ft == nil {
		return
	}
	for _, cr := range ft.Crashes {
		if cr.Rank == c.rank && cr.AfterStep > 0 && step >= cr.AfterStep {
			c.crash(fmt.Sprintf("step %d", step))
		}
	}
}

// maybeCrashOnCall advances this rank's metered-operation counter and
// fires any AfterCalls crash that lands on it. Called at the head of
// every metered communication operation, before the payload moves.
func (c *Comm) maybeCrashOnCall() {
	ft := c.w.fault
	if ft == nil {
		return
	}
	n := c.w.opCalls[c.rank].Add(1)
	for _, cr := range ft.Crashes {
		if cr.Rank == c.rank && cr.AfterCalls > 0 && n == cr.AfterCalls {
			c.crash(fmt.Sprintf("communication call %d", n))
		}
	}
}

// crash records this rank as dead and raises the typed failure panic.
func (c *Comm) crash(at string) {
	f := &RankFailure{Rank: c.rank, At: at}
	c.w.failed[c.rank].Store(f)
	panic(f)
}

// lostPeer raises the peer-loss panic for a timed-out operation.
func (c *Comm) lostPeer(peer int, op string, wait time.Duration) {
	panic(&PeerLostError{Rank: c.rank, Peer: peer, Op: op, Wait: wait, Dead: c.w.deadRanks()})
}

// deadRanks snapshots the ranks known to have crashed.
func (w *world) deadRanks() []int {
	var dead []int
	for r := range w.failed {
		if w.failed[r].Load() != nil {
			dead = append(dead, r)
		}
	}
	return dead
}

// dropMessage draws one Bernoulli trial from the shared drop stream.
func (w *world) dropMessage() bool {
	if w.dropRng == nil {
		return false
	}
	w.dropMu.Lock()
	lost := w.dropRng.Float64() < w.fault.DropProb
	w.dropMu.Unlock()
	return lost
}
