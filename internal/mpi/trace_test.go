package mpi

import (
	"encoding/json"
	"fmt"
	"testing"

	"ptdft/internal/trace"
)

// TestCommSpans runs a 4-rank mix of collectives under an attached span
// recorder and checks that every rank's timeline carries both wait and
// transfer spans, and that the transfer bytes recorded on spans equal the
// metered Stats total (the "folded from the existing Stats ledgers"
// contract).
func TestCommSpans(t *testing.T) {
	rec := trace.NewRecorder()
	const ranks = 4
	st := Run(ranks, func(c *Comm) {
		c.SetTrace(rec.Track(c.Rank(), fmt.Sprintf("rank %d", c.Rank())))
		buf := make([]complex128, 32)
		if c.Rank() == 0 {
			for i := range buf {
				buf[i] = complex(float64(i), 0)
			}
		}
		Bcast(c, 0, 1, buf)
		sum := []float64{float64(c.Rank())}
		AllreduceSum(c, 10, sum)
		send := make([][]float64, ranks)
		for d := range send {
			send[d] = []float64{float64(c.Rank()*10 + d)}
		}
		Alltoallv(c, 20, send)
		Allgatherv(c, 30, []int64{int64(c.Rank())})
		c.FetchAdd(7, 1)
		c.Barrier()
	})

	var spanBytes int64
	waits, xfers := 0, 0
	for _, tj := range rec.Tracks() {
		for _, s := range tj.Spans {
			switch s.Cat {
			case "wait":
				waits++
			case "xfer":
				spanBytes += s.Bytes
				xfers++
			}
		}
	}
	if waits == 0 || xfers == 0 {
		t.Fatalf("expected wait and xfer spans, got %d waits, %d xfers", waits, xfers)
	}
	if total := st.TotalBytes(); spanBytes != total {
		t.Fatalf("span bytes %d != metered stats total %d", spanBytes, total)
	}
	if len(rec.Tracks()) != ranks {
		t.Fatalf("expected %d tracks, got %d", ranks, len(rec.Tracks()))
	}
}

// TestCommMatrixJSON checks the heat-map export: shape, class labels,
// agreement with the accessor API, and the conservation law that summed
// send and receive columns both equal the class's metered global bytes.
func TestCommMatrixJSON(t *testing.T) {
	const ranks = 4
	st := Run(ranks, func(c *Comm) {
		buf := make([]complex128, 64)
		Bcast(c, 0, 1, buf)
		v := []float64{1}
		AllreduceSum(c, 10, v)
	})
	data, err := st.MatrixJSON()
	if err != nil {
		t.Fatalf("MatrixJSON: %v", err)
	}
	var m CommMatrix
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if m.Ranks != ranks || len(m.SentBytes) != ranks || len(m.RecvBytes) != ranks {
		t.Fatalf("matrix shape wrong: %+v", m)
	}
	if len(m.Classes) != NumClasses || m.Classes[ClassBcast] != "MPI_Bcast" {
		t.Fatalf("class labels wrong: %v", m.Classes)
	}
	if m.TotalBytes != st.TotalBytes() {
		t.Fatalf("total %d != %d", m.TotalBytes, st.TotalBytes())
	}
	for cl := 0; cl < NumClasses; cl++ {
		var sent, recv int64
		for r := 0; r < ranks; r++ {
			sent += m.SentBytes[r][cl]
			recv += m.RecvBytes[r][cl]
			if m.SentBytes[r][cl] != st.SentBy(r, OpClass(cl)) {
				t.Fatalf("rank %d class %d: matrix disagrees with SentBy", r, cl)
			}
		}
		if want := st.BytesFor(OpClass(cl)); sent != want || recv != want {
			t.Fatalf("class %d: sent %d recv %d, metered %d", cl, sent, recv, want)
		}
	}
}
