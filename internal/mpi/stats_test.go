package mpi

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestStatsConservationInvariants checks the per-rank ledgers against the
// conservation laws of the metering: every byte shipped under a class is a
// byte received under that class, the per-rank breakdown sums to the
// global totals, and the collectives hit their analytic volumes.
func TestStatsConservationInvariants(t *testing.T) {
	const n = 25 // payload elements per collective
	for _, size := range []int{2, 3, 5, 8} {
		st := Run(size, func(c *Comm) {
			data := make([]complex128, n)
			Bcast(c, 0, 5, data)
			f := make([]float64, n)
			AllreduceSum(c, 10, f)
			send := make([][]complex128, size)
			for d := 0; d < size; d++ {
				send[d] = make([]complex128, n)
			}
			Alltoallv(c, 20, send)
			Allgatherv(c, 30, data)
			c.FetchAdd(0, 1)
			if c.Rank() == 0 {
				Send(c, 1, 40, data)
			}
			if c.Rank() == 1 {
				Recv[complex128](c, 0, 40)
			}
		})
		if st.Ranks() != size {
			t.Fatalf("size=%d: per-rank breakdown covers %d ranks", size, st.Ranks())
		}
		// Per-class conservation: sent totals == received totals == the
		// global class counter.
		for cl := OpClass(0); cl < OpClass(NumClasses); cl++ {
			var sent, recv int64
			for r := 0; r < size; r++ {
				sent += st.SentBy(r, cl)
				recv += st.RecvBy(r, cl)
			}
			if sent != st.BytesFor(cl) || recv != st.BytesFor(cl) {
				t.Errorf("size=%d %v: sent=%d recv=%d, class total %d", size, cl, sent, recv, st.BytesFor(cl))
			}
		}
		// Analytic volumes: a broadcast ships (P-1) payloads; the
		// rank-ordered allreduce gathers (P-1) payloads and broadcasts
		// (P-1) back; the uniform all-to-all ships P(P-1) blocks, as does
		// the allgather.
		if want := int64(size-1) * n * 16; st.BytesFor(ClassBcast) != want {
			t.Errorf("size=%d: Bcast bytes %d, want %d", size, st.BytesFor(ClassBcast), want)
		}
		if want := int64(2*(size-1)) * n * 8; st.BytesFor(ClassAllreduce) != want {
			t.Errorf("size=%d: Allreduce bytes %d, want %d", size, st.BytesFor(ClassAllreduce), want)
		}
		if want := int64(size*(size-1)) * n * 16; st.BytesFor(ClassAlltoallv) != want {
			t.Errorf("size=%d: Alltoallv bytes %d, want %d", size, st.BytesFor(ClassAlltoallv), want)
		}
		if want := int64(size*(size-1)) * n * 16; st.BytesFor(ClassAllgatherv) != want {
			t.Errorf("size=%d: Allgatherv bytes %d, want %d", size, st.BytesFor(ClassAllgatherv), want)
		}
		// Uniform payloads: each rank's Alltoallv send total equals its
		// receive total.
		for r := 0; r < size; r++ {
			if st.SentBy(r, ClassAlltoallv) != st.RecvBy(r, ClassAlltoallv) {
				t.Errorf("size=%d rank %d: Alltoallv sent %d != recv %d", size, r,
					st.SentBy(r, ClassAlltoallv), st.RecvBy(r, ClassAlltoallv))
			}
		}
		// RMA: one 8-byte fetch-and-op per rank, billed to the caller.
		if st.BytesFor(ClassRMA) != int64(8*size) || st.CallsFor(ClassRMA) != int64(size) {
			t.Errorf("size=%d: RMA bytes=%d calls=%d", size, st.BytesFor(ClassRMA), st.CallsFor(ClassRMA))
		}
		// The point-to-point message is attributed to its endpoints.
		if st.SentBy(0, ClassP2P) != n*16 || st.RecvBy(1, ClassP2P) != n*16 {
			t.Errorf("size=%d: P2P attribution sent0=%d recv1=%d", size, st.SentBy(0, ClassP2P), st.RecvBy(1, ClassP2P))
		}
	}
}

// TestFetchAddSemantics: the counter is shared across ranks, returns the
// pre-add value, and distributes a contiguous ticket range with no gaps or
// duplicates.
func TestFetchAddSemantics(t *testing.T) {
	const ntickets = 1000
	size := 6
	seen := make([]atomic.Int32, ntickets)
	Run(size, func(c *Comm) {
		if c.Rank() == 0 {
			// Pre-add semantics on a private counter.
			if v := c.FetchAdd(99, 5); v != 0 {
				t.Errorf("first FetchAdd returned %d, want 0", v)
			}
			if v := c.FetchAdd(99, -2); v != 5 {
				t.Errorf("second FetchAdd returned %d, want 5", v)
			}
			c.ForgetCounter(99)
			if v := c.FetchAdd(99, 0); v != 0 {
				t.Errorf("forgotten counter restarted at %d, want 0", v)
			}
		}
		for {
			tkt := c.FetchAdd(7, 1)
			if tkt >= ntickets {
				break
			}
			seen[tkt].Add(1)
		}
	})
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("ticket %d drawn %d times", i, n)
		}
	}
}

// TestWorkQueueTicketAgrees: each rank's N-th ticket is the same key, and
// keys never repeat.
func TestWorkQueueTicketAgrees(t *testing.T) {
	size := 4
	const epochs = 10
	keys := make([][]int64, size)
	Run(size, func(c *Comm) {
		mine := make([]int64, epochs)
		for e := 0; e < epochs; e++ {
			mine[e] = c.WorkQueueTicket()
		}
		keys[c.Rank()] = mine
	})
	dup := map[int64]bool{}
	for e := 0; e < epochs; e++ {
		for r := 1; r < size; r++ {
			if keys[r][e] != keys[0][e] {
				t.Fatalf("epoch %d: rank %d ticket %d != rank 0 ticket %d", e, r, keys[r][e], keys[0][e])
			}
		}
		if dup[keys[0][e]] {
			t.Fatalf("epoch %d reuses key %d", e, keys[0][e])
		}
		dup[keys[0][e]] = true
	}
}

// TestPerturbModel: WorkStart/WorkEnd stretches perturbed ranks' compute
// sections and leaves nominal ranks free; WireDelay slows messages without
// changing what is delivered or billed.
func TestPerturbModel(t *testing.T) {
	p := &Perturb{
		ComputeScale: func(rank int) float64 {
			if rank == 0 {
				return 3.0
			}
			return 1.0
		},
		WireDelay: func(src, dst int, bytes int64) time.Duration { return 100 * time.Microsecond },
	}
	var slow, fast int64
	st := RunPerturbed(2, p, func(c *Comm) {
		t0 := c.WorkStart()
		if c.Rank() == 1 && !t0.IsZero() {
			t.Error("nominal rank got a live work timer")
		}
		start := time.Now()
		time.Sleep(2 * time.Millisecond) // the "compute"
		c.WorkEnd(t0)
		el := int64(time.Since(start))
		if c.Rank() == 0 {
			atomic.StoreInt64(&slow, el)
		} else {
			atomic.StoreInt64(&fast, el)
		}
		data := []complex128{complex(float64(c.Rank()), 0)}
		Bcast(c, 0, 1, data)
		if data[0] != 0 {
			t.Errorf("rank %d: perturbed broadcast delivered %v", c.Rank(), data[0])
		}
	})
	// Rank 0 at scale 3 must take roughly 3x the nominal section; allow
	// generous scheduling slack by only requiring 2x.
	if slow < 2*fast {
		t.Errorf("straggler section %v not stretched vs nominal %v", time.Duration(slow), time.Duration(fast))
	}
	// The wire delay never inflates the byte accounting.
	if want := int64(16); st.BytesFor(ClassBcast) != want {
		t.Errorf("perturbed Bcast bytes %d, want %d", st.BytesFor(ClassBcast), want)
	}
}
