// Package mpi is a message-passing runtime over goroutines that stands in
// for IBM Spectrum MPI in the reproduction: ranks execute SPMD functions on
// their own goroutines and communicate through tag-matched mailboxes. It
// provides the collectives the paper's implementation is built from -
// MPI_Bcast (binomial tree), MPI_Allreduce, MPI_Alltoallv, MPI_Allgatherv,
// and point-to-point Send/Recv for the round-robin exchange variant - and
// it meters bytes and calls per collective class so the communication
// volumes of Table 2 can be measured from the functional code rather than
// estimated.
//
// Tags make concurrent collectives safe: the overlapped broadcast pipeline
// of the Fock operator (section 3.2, optimization 5) posts the broadcast of
// band i+1 while band i is being processed, exactly as the paper overlaps
// MPI_Bcast with GPU computation. A Comm handle may be used from multiple
// goroutines of its rank as long as concurrent receives use distinct tags.
//
// Tag namespace: each (src, dst, tag) triple identifies a message stream;
// AllreduceSum internally consumes tag and tag+1.
package mpi

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ptdft/internal/trace"
)

// Elem constrains the payload element types the runtime ships.
type Elem interface {
	~complex128 | ~complex64 | ~float64 | ~float32 | ~int64 | ~int32
}

// OpClass labels collective classes for the byte accounting of Table 2.
type OpClass int

// Collective classes.
const (
	ClassP2P OpClass = iota
	ClassBcast
	ClassAllreduce
	ClassAlltoallv
	ClassAllgatherv
	ClassRMA
	numClasses
)

// NumClasses reports how many collective classes are metered.
const NumClasses = int(numClasses)

// String names the class as the paper's tables do.
func (c OpClass) String() string {
	switch c {
	case ClassP2P:
		return "Send/Recv"
	case ClassBcast:
		return "MPI_Bcast"
	case ClassAllreduce:
		return "MPI_Allreduce"
	case ClassAlltoallv:
		return "MPI_Alltoallv"
	case ClassAllgatherv:
		return "MPI_AllGatherv"
	case ClassRMA:
		return "MPI_Fetch_and_op"
	default:
		return "unknown"
	}
}

// Stats aggregates communication volume per class across all ranks, with a
// per-rank breakdown on both the send and the receive side so conservation
// laws (every byte shipped is a byte received; a broadcast moves exactly
// (P-1) payloads; Alltoallv send and receive totals match) can be asserted
// from the metered numbers instead of trusted.
type Stats struct {
	Bytes [numClasses]int64
	Calls [numClasses]int64
	sent  [][numClasses]int64 // bytes shipped, indexed by source rank
	recv  [][numClasses]int64 // bytes received, indexed by destination rank
}

// TotalBytes sums all classes.
func (s *Stats) TotalBytes() int64 {
	var t int64
	for _, b := range s.Bytes {
		t += b
	}
	return t
}

// BytesFor returns the byte count of one class.
func (s *Stats) BytesFor(c OpClass) int64 { return s.Bytes[c] }

// CallsFor returns the call count of one class.
func (s *Stats) CallsFor(c OpClass) int64 { return s.Calls[c] }

// Ranks reports how many ranks the per-rank breakdown covers (0 when the
// Stats were not produced by Run/RunPerturbed).
func (s *Stats) Ranks() int { return len(s.sent) }

// SentBy returns the bytes rank `rank` shipped under one class.
func (s *Stats) SentBy(rank int, c OpClass) int64 { return s.sent[rank][c] }

// RecvBy returns the bytes rank `rank` received under one class.
func (s *Stats) RecvBy(rank int, c OpClass) int64 { return s.recv[rank][c] }

// CommMatrix is the JSON heat-map form of the per-rank ledgers: one row
// per rank, one column per collective class, on both the send and the
// receive side. Rendered as a heat map it shows which ranks carry the
// communication load (rank 0 dominates the receive side of the rank-
// ordered Allreduce, broadcast roots dominate the send side, ...).
type CommMatrix struct {
	Ranks      int       `json:"ranks"`
	Classes    []string  `json:"classes"`
	SentBytes  [][]int64 `json:"sent_bytes"` // [rank][class]
	RecvBytes  [][]int64 `json:"recv_bytes"` // [rank][class]
	TotalBytes int64     `json:"total_bytes"`
}

// Matrix exports the per-rank send/recv ledgers as a heat-map matrix.
func (s *Stats) Matrix() CommMatrix {
	m := CommMatrix{
		Ranks:      len(s.sent),
		Classes:    make([]string, int(numClasses)),
		SentBytes:  make([][]int64, len(s.sent)),
		RecvBytes:  make([][]int64, len(s.recv)),
		TotalBytes: s.TotalBytes(),
	}
	for c := 0; c < int(numClasses); c++ {
		m.Classes[c] = OpClass(c).String()
	}
	for r := range s.sent {
		m.SentBytes[r] = append([]int64(nil), s.sent[r][:]...)
		m.RecvBytes[r] = append([]int64(nil), s.recv[r][:]...)
	}
	return m
}

// MatrixJSON renders the heat-map matrix as indented JSON, the form the
// -commfile flag dumps and EXPERIMENTS.md records.
func (s *Stats) MatrixJSON() ([]byte, error) {
	return json.MarshalIndent(s.Matrix(), "", " ")
}

// pairBox is the mailbox for one (src, dst) rank pair: a tag-indexed FIFO
// store guarded by a condition variable, safe for concurrent senders and
// receivers.
type pairBox struct {
	mu   sync.Mutex
	cv   *sync.Cond
	msgs map[int][]any
}

func newPairBox() *pairBox {
	b := &pairBox{msgs: map[int][]any{}}
	b.cv = sync.NewCond(&b.mu)
	return b
}

func (b *pairBox) put(tag int, data any) {
	b.mu.Lock()
	b.msgs[tag] = append(b.msgs[tag], data)
	b.cv.Broadcast()
	b.mu.Unlock()
}

// take pops the next message for tag, blocking until one arrives. With a
// positive deadline it gives up after that long and returns ok=false (the
// peer-loss detection path); with deadline 0 it waits forever.
func (b *pairBox) take(tag int, deadline time.Duration) (any, bool) {
	b.mu.Lock()
	if deadline <= 0 {
		for len(b.msgs[tag]) == 0 {
			b.cv.Wait()
		}
	} else {
		limit := time.Now().Add(deadline)
		for len(b.msgs[tag]) == 0 {
			remaining := time.Until(limit)
			if remaining <= 0 {
				b.mu.Unlock()
				return nil, false
			}
			// One timer per wait round guarantees a wake-up at the
			// deadline even if no message ever lands; the extra
			// millisecond absorbs clock granularity so the re-check
			// above is conclusive.
			t := time.AfterFunc(remaining+time.Millisecond, func() {
				b.mu.Lock()
				b.cv.Broadcast()
				b.mu.Unlock()
			})
			b.cv.Wait()
			t.Stop()
		}
	}
	q := b.msgs[tag]
	data := q[0]
	if len(q) == 1 {
		delete(b.msgs, tag)
	} else {
		b.msgs[tag] = q[1:]
	}
	b.mu.Unlock()
	return data, true
}

// world is the shared state of one communicator group.
type world struct {
	size  int
	boxes [][]*pairBox // boxes[src][dst]
	bytes [numClasses]atomic.Int64
	calls [numClasses]atomic.Int64
	sent  [][numClasses]atomic.Int64 // per source rank
	recv  [][numClasses]atomic.Int64 // per destination rank

	// RMA counter windows for FetchAdd, keyed by the caller-chosen window
	// id (int64 -> *atomic.Int64). Counters spring into existence at zero
	// on first touch and live until ForgetCounter or the end of the run.
	counters sync.Map
	// queueTick is each rank's private count of WorkQueueTicket calls.
	// Distinct ranks write distinct slots, so no synchronization is needed.
	queueTick []int64

	// perturb, when non-nil, injects per-rank compute slowdowns and wire
	// latency (straggler simulation); see RunPerturbed.
	perturb *Perturb

	// Hard-fault state (see fault.go): the injection plan, the peer-loss
	// detection deadline (0 = wait forever), per-rank metered-operation
	// counters for AfterCalls crashes, the crash ledger, and the shared
	// message-drop stream.
	fault    *Fault
	deadline time.Duration
	opCalls  []atomic.Int64
	failed   []atomic.Pointer[RankFailure]
	dropMu   sync.Mutex
	dropRng  *rand.Rand

	barrierMu  sync.Mutex
	barrierN   int
	barrierGen int
	barrierCv  *sync.Cond

	// Sub-communicator registry for Split.
	splitMu sync.Mutex
	splits  map[int64]*world
}

// Comm is one rank's handle on the communicator. It is safe for concurrent
// use by multiple goroutines of that rank (distinct tags per concurrent
// receive stream).
type Comm struct {
	rank  int
	w     *world
	scale float64      // compute slowdown factor from the perturbation model
	tr    *trace.Track // span timeline of this rank; nil = tracing disabled
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.w.size }

// SetTrace attaches a span track to this handle: every metered operation
// then records wait spans (blocked in Recv or Barrier) and transfer
// spans (payload shipped, with byte counts matching the Stats ledgers)
// under the operation's class name. A nil track disables recording.
func (c *Comm) SetTrace(t *trace.Track) { c.tr = t }

// Trace returns the handle's span track (nil when tracing is disabled),
// so layers built on the Comm can record their own spans on the same
// per-rank timeline without extra plumbing.
func (c *Comm) Trace() *trace.Track { return c.tr }

// CloneHandle returns an equivalent handle; retained for API compatibility
// with thread-multiple MPI usage (handles share all state).
func (c *Comm) CloneHandle() *Comm {
	return &Comm{rank: c.rank, w: c.w, scale: c.scale, tr: c.tr}
}

// Perturb is an injectable per-rank latency and slowdown model: simulated
// stragglers and NIC delay, so load-balance and overlap wins are measurable
// without hardware. Both fields are optional.
type Perturb struct {
	// WireDelay, when non-nil, returns extra transit latency charged to the
	// sender for each message of the given byte size from src to dst (NIC
	// or link congestion). Return 0 for unaffected links.
	WireDelay func(src, dst int, bytes int64) time.Duration
	// ComputeScale, when non-nil, returns the compute slowdown factor of a
	// rank: 1 means nominal speed, 2 means the rank computes twice as
	// slowly (a straggler). Values <= 1 leave the rank unperturbed. The
	// slowdown applies to code sections bracketed by WorkStart/WorkEnd.
	ComputeScale func(rank int) float64
	// Fault, when non-nil, arms hard-failure injection: scheduled rank
	// crashes and probabilistic message drops (see fault.go). Use
	// RunTolerant to observe the failures instead of panicking.
	Fault *Fault
	// Deadline bounds every blocking receive and barrier wait: a rank
	// that waits longer presumes its peer dead and panics with a
	// PeerLostError. 0 means wait forever - unless Fault is armed, in
	// which case DefaultDeadline is substituted so survivors of a crash
	// always unblock.
	Deadline time.Duration
}

// Run executes f on size ranks (one goroutine each) and returns the
// accumulated communication statistics. It panics if any rank panics,
// re-raising the first failure.
func Run(size int, f func(c *Comm)) *Stats {
	return RunPerturbed(size, nil, f)
}

// RunPerturbed is Run under a perturbation model: every message send is
// delayed by p.WireDelay and every WorkStart/WorkEnd section is stretched
// by p.ComputeScale. A nil p (or nil fields) reproduces Run exactly.
// Injected hard faults (p.Fault, or a tripped p.Deadline) end the run
// with a panic naming every dead rank; use RunTolerant to observe them as
// a value instead.
func RunPerturbed(size int, p *Perturb, f func(c *Comm)) *Stats {
	st, fail := RunTolerant(size, p, f)
	if fail != nil {
		panic("mpi: run failed: " + fail.Error())
	}
	return st
}

// WorkStart opens a perturbed compute section on this rank: pair it with
// WorkEnd around the computation whose duration the straggler model should
// stretch. On an unperturbed rank it is free (no clock read) and WorkEnd is
// a no-op.
func (c *Comm) WorkStart() time.Time {
	if c.scale <= 1 {
		return time.Time{}
	}
	return time.Now()
}

// WorkEnd closes a perturbed compute section: a rank with ComputeScale s
// sleeps (s-1) times the section's measured duration, so its effective
// compute rate is 1/s of nominal.
func (c *Comm) WorkEnd(t0 time.Time) {
	if t0.IsZero() {
		return
	}
	time.Sleep(time.Duration(float64(time.Since(t0)) * (c.scale - 1)))
}

// FetchAdd atomically adds delta to the shared counter `key` and returns
// the value before the addition - MPI_Fetch_and_op(MPI_SUM) on a runtime-
// hosted window, the primitive of the HONPAS dynamic parallel distribution
// (arXiv:2009.03555) that the work-stealing exchange schedule claims pair
// chunks with. Counters spring into existence at zero on first touch, are
// shared by all ranks of the communicator, and are metered under ClassRMA
// (one 8-byte operation per call).
func (c *Comm) FetchAdd(key, delta int64) int64 {
	v, ok := c.w.counters.Load(key)
	if !ok {
		v, _ = c.w.counters.LoadOrStore(key, new(atomic.Int64))
	}
	c.accountTransfer(c.rank, ClassRMA, 8)
	prev := v.(*atomic.Int64).Add(delta) - delta
	c.tr.Event(ClassRMA.String(), "xfer", 8, prev)
	return prev
}

// ForgetCounter releases the RMA counter `key`. Only safe once no rank can
// touch the key again (the work-queue protocol has each rank overshoot the
// chunk count exactly once, so the rank drawing the last overshoot ticket
// knows every other rank is done claiming).
func (c *Comm) ForgetCounter(key int64) { c.w.counters.Delete(key) }

// WorkQueueTicket returns a communicator-unique RMA counter key for the
// caller's next dynamic work-queue epoch. Collective: every rank must call
// it once per epoch, in the same order; each rank counts its own calls, so
// the N-th call agrees across ranks without communication (collectives are
// issued in the same order on every rank). Keys are never reused.
func (c *Comm) WorkQueueTicket() int64 {
	t := c.w.queueTick[c.rank]
	c.w.queueTick[c.rank]++
	return t
}

func elemSize[T Elem]() int64 {
	var z T
	switch any(z).(type) {
	case complex128:
		return 16
	case complex64, float64, int64:
		return 8
	case float32, int32:
		return 4
	default:
		return 8
	}
}

// accountTransfer meters one operation shipping `bytes` from this rank to
// rank `to`: globally, on the sender side, and on the receiver side (the
// per-rank ledgers the Stats conservation invariants are checked against).
// It is the single funnel every metered operation passes through, so it
// is also where AfterCalls crashes fire - before the payload moves.
func (c *Comm) accountTransfer(to int, class OpClass, bytes int64) {
	c.maybeCrashOnCall()
	c.w.bytes[class].Add(bytes)
	c.w.calls[class].Add(1)
	c.w.sent[c.rank][class].Add(bytes)
	c.w.recv[to][class].Add(bytes)
}

// deliver copies data into the destination mailbox with accounting, and
// charges the sender any injected wire latency for the (src, dst) link.
// Under an armed drop model the message may be lost in transit: the
// sender is billed for the ship attempt, the receiver never sees it and
// eventually trips its deadline.
func deliver[T Elem](c *Comm, to, tag int, data []T, class OpClass) {
	bytes := int64(len(data)) * elemSize[T]()
	ref := c.tr.Begin(class.String(), "xfer")
	if c.w.dropMessage() {
		c.maybeCrashOnCall()
		c.w.bytes[class].Add(bytes)
		c.w.calls[class].Add(1)
		c.w.sent[c.rank][class].Add(bytes)
		c.tr.EndBytes(ref, bytes)
		return
	}
	out := make([]T, len(data))
	copy(out, data)
	c.accountTransfer(to, class, bytes)
	if p := c.w.perturb; p != nil && p.WireDelay != nil {
		if d := p.WireDelay(c.rank, to, bytes); d > 0 {
			time.Sleep(d)
		}
	}
	c.w.boxes[c.rank][to].put(tag, out)
	c.tr.EndBytes(ref, bytes)
}

// Send ships a copy of data to rank `to` with a matching tag.
func Send[T Elem](c *Comm, to, tag int, data []T) {
	if to == c.rank {
		panic("mpi: self-send")
	}
	deliver(c, to, tag, data, ClassP2P)
}

// Recv receives a []T from rank `from` with the given tag, blocking until
// a matching message arrives. Under a configured deadline a silent peer
// trips a PeerLostError panic instead of hanging forever.
func Recv[T Elem](c *Comm, from, tag int) []T {
	return recvClass[T](c, from, tag, ClassP2P)
}

// recvClass is Recv with the wait span attributed to the collective class
// driving it, so a trace splits "blocked waiting for a broadcast" from
// "blocked waiting for a point-to-point message". The wait span brackets
// the blocking take: the time to this rank is stall, the payload's ship
// time is on the sender's transfer span.
func recvClass[T Elem](c *Comm, from, tag int, class OpClass) []T {
	ref := c.tr.Begin(class.String()+" wait", "wait")
	d := c.w.deadline
	data, ok := c.w.boxes[from][c.rank].take(tag, d)
	c.tr.End(ref)
	if !ok {
		c.lostPeer(from, fmt.Sprintf("Recv tag %d", tag), d)
	}
	return data.([]T)
}

// Barrier blocks until every rank has entered it. Reusable. Under a
// configured deadline a barrier that never completes (a peer died before
// entering) trips a PeerLostError panic on every waiting rank.
func (c *Comm) Barrier() {
	ref := c.tr.Begin("MPI_Barrier wait", "wait")
	defer c.tr.End(ref)
	w := c.w
	w.barrierMu.Lock()
	gen := w.barrierGen
	w.barrierN++
	if w.barrierN == w.size {
		w.barrierN = 0
		w.barrierGen++
		w.barrierCv.Broadcast()
		w.barrierMu.Unlock()
		return
	}
	deadline := w.deadline
	var limit time.Time
	if deadline > 0 {
		limit = time.Now().Add(deadline)
	}
	for gen == w.barrierGen {
		if deadline <= 0 {
			w.barrierCv.Wait()
			continue
		}
		remaining := time.Until(limit)
		if remaining <= 0 {
			// Withdraw so the count stays consistent for any
			// later-generation bookkeeping, then report the loss.
			w.barrierN--
			w.barrierMu.Unlock()
			c.lostPeer(-1, "Barrier", deadline)
		}
		t := time.AfterFunc(remaining+time.Millisecond, func() {
			w.barrierMu.Lock()
			w.barrierCv.Broadcast()
			w.barrierMu.Unlock()
		})
		w.barrierCv.Wait()
		t.Stop()
	}
	w.barrierMu.Unlock()
}

// Bcast broadcasts root's data to all ranks over a binomial tree (the
// paper's strategy for the Fock exchange wavefunction distribution, which
// "takes advantage of the fat-tree interconnect topology"). Non-root ranks
// pass a buffer of the same length that is overwritten.
func Bcast[T Elem](c *Comm, root, tag int, data []T) {
	bcastTree(c, root, tag, data, ClassBcast)
}

// bcastTree is the textbook binomial broadcast on relative ranks.
func bcastTree[T Elem](c *Comm, root, tag int, data []T, class OpClass) {
	size := c.w.size
	if size == 1 {
		return
	}
	rel := (c.rank - root + size) % size
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			src := (c.rank - mask + size) % size
			in := recvClass[T](c, src, tag, class)
			copy(data, in)
			break
		}
		mask <<= 1
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < size {
			dst := (c.rank + mask) % size
			deliver(c, dst, tag, data, class)
		}
	}
}

// AllreduceSum sums data element-wise across ranks, reducing in rank order
// for determinism, leaving the result on every rank (used for the overlap
// matrix and the charge density; sections 3.3/3.4). Consumes tags tag and
// tag+1.
func AllreduceSum[T Elem](c *Comm, tag int, data []T) {
	size := c.w.size
	if size == 1 {
		return
	}
	if c.rank == 0 {
		for r := 1; r < size; r++ {
			in := recvClass[T](c, r, tag, ClassAllreduce)
			for i := range data {
				data[i] += in[i]
			}
		}
	} else {
		deliver(c, 0, tag, data, ClassAllreduce)
	}
	bcastTree(c, 0, tag+1, data, ClassAllreduce)
}

// Alltoallv performs a personalized all-to-all: send[d] goes to rank d;
// the returned slice holds what each rank sent to us (recv[s] from rank s).
// This is the layout transpose between band-index and G-space
// parallelization (Fig. 1).
func Alltoallv[T Elem](c *Comm, tag int, send [][]T) [][]T {
	size := c.w.size
	if len(send) != size {
		panic("mpi: Alltoallv needs one slice per rank")
	}
	recv := make([][]T, size)
	recv[c.rank] = send[c.rank]
	for off := 1; off < size; off++ {
		dst := (c.rank + off) % size
		deliver(c, dst, tag, send[dst], ClassAlltoallv)
	}
	for off := 1; off < size; off++ {
		src := (c.rank - off + size) % size
		recv[src] = recvClass[T](c, src, tag, ClassAlltoallv)
	}
	return recv
}

// Allgatherv gathers each rank's (possibly differently sized) data onto
// every rank, returned indexed by source rank. Used for the
// exchange-correlation potential assembly (section 3.4).
func Allgatherv[T Elem](c *Comm, tag int, data []T) [][]T {
	size := c.w.size
	out := make([][]T, size)
	own := make([]T, len(data))
	copy(own, data)
	out[c.rank] = own
	for off := 1; off < size; off++ {
		dst := (c.rank + off) % size
		deliver(c, dst, tag, data, ClassAllgatherv)
	}
	for off := 1; off < size; off++ {
		src := (c.rank - off + size) % size
		out[src] = recvClass[T](c, src, tag, ClassAllgatherv)
	}
	return out
}

// newWorld allocates the shared state for a communicator of the given size.
func newWorld(size int) *world {
	w := &world{
		size:      size,
		splits:    map[int64]*world{},
		sent:      make([][numClasses]atomic.Int64, size),
		recv:      make([][numClasses]atomic.Int64, size),
		queueTick: make([]int64, size),
		opCalls:   make([]atomic.Int64, size),
		failed:    make([]atomic.Pointer[RankFailure], size),
	}
	w.barrierCv = sync.NewCond(&w.barrierMu)
	w.boxes = make([][]*pairBox, size)
	for s := 0; s < size; s++ {
		w.boxes[s] = make([]*pairBox, size)
		for d := 0; d < size; d++ {
			w.boxes[s][d] = newPairBox()
		}
	}
	return w
}

// Split partitions the communicator into sub-communicators by color, the
// MPI_Comm_split analogue used for the k-point parallelization layer the
// paper describes in section 3.1 ("wavefunctions can naturally be grouped
// according to the k-points, which adds an additional layer of
// parallelization"). All ranks must call Split collectively with the same
// tag; ranks sharing a color receive a new Comm ordered by (key, rank).
// Each sub-communicator has independent byte accounting that is NOT folded
// into the parent's Run statistics; use SubStats to retrieve it.
func (c *Comm) Split(tag int, color int64, key int) *Comm {
	// Gather (color, key) from every rank.
	mine := []int64{color, int64(key), int64(c.rank)}
	all := Allgatherv(c, tag, mine)

	// Build my group sorted by (key, parent rank).
	type member struct {
		key        int64
		parentRank int
	}
	var group []member
	for r := 0; r < c.w.size; r++ {
		if all[r][0] == color {
			group = append(group, member{key: all[r][1], parentRank: int(all[r][2])})
		}
	}
	for i := 1; i < len(group); i++ {
		for j := i; j > 0; j-- {
			a, b := group[j], group[j-1]
			if a.key < b.key || (a.key == b.key && a.parentRank < b.parentRank) {
				group[j], group[j-1] = group[j-1], group[j]
			} else {
				break
			}
		}
	}
	myRank := -1
	for i, m := range group {
		if m.parentRank == c.rank {
			myRank = i
		}
	}

	// All ranks of a color share one child world through the registry;
	// the last arriver retires the key so a later Split with the same
	// color builds a fresh world. The parent barrier below makes the
	// registry phase collective, so successive Splits cannot interleave.
	c.w.splitMu.Lock()
	child, ok := c.w.splits[color]
	if !ok {
		child = newWorld(len(group))
		// Peer-loss detection follows the ranks into the group: a
		// member stuck behind a dead parent-world rank must still
		// unblock. Crash schedules do not (they key parent ranks).
		child.deadline = c.w.deadline
		c.w.splits[color] = child
	}
	child.barrierMu.Lock()
	child.barrierN++
	full := child.barrierN == child.size
	if full {
		child.barrierN = 0
	}
	child.barrierMu.Unlock()
	if full {
		delete(c.w.splits, color)
	}
	c.w.splitMu.Unlock()
	c.Barrier()

	// The compute-slowdown factor follows the rank into the sub-
	// communicator (a straggler node is slow in every group it joins), as
	// does the span track (sub-communicator traffic appears on the parent
	// rank's timeline); wire delays are keyed by parent-world rank pairs
	// and do not.
	return &Comm{rank: myRank, w: child, scale: c.scale, tr: c.tr}
}

// SubStats snapshots the communication statistics of a sub-communicator
// created by Split.
func (c *Comm) SubStats() *Stats {
	st := &Stats{}
	for i := 0; i < int(numClasses); i++ {
		st.Bytes[i] = c.w.bytes[i].Load()
		st.Calls[i] = c.w.calls[i].Load()
	}
	return st
}

// SingleOf converts a double-precision complex payload to single precision
// for transfer, halving the communication volume (section 3.2,
// optimization 4: "single precision MPI").
func SingleOf(data []complex128) []complex64 {
	out := make([]complex64, len(data))
	for i, v := range data {
		out[i] = complex64(v)
	}
	return out
}

// DoubleOf converts a received single-precision payload back for
// computation ("wavefunctions are converted back to the double precision
// format for computation").
func DoubleOf(data []complex64) []complex128 {
	out := make([]complex128, len(data))
	for i, v := range data {
		out[i] = complex128(v)
	}
	return out
}
