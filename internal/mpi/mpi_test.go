package mpi

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestSendRecvRoundTrip(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 7, []complex128{1, complex(2, 3)})
			got := Recv[complex128](c, 1, 8)
			if got[0] != 10 {
				t.Errorf("rank0 received %v", got)
			}
		} else {
			got := Recv[complex128](c, 0, 7)
			if got[1] != complex(2, 3) {
				t.Errorf("rank1 received %v", got)
			}
			Send(c, 0, 8, []complex128{10})
		}
	})
}

func TestRecvTagMatching(t *testing.T) {
	// Out-of-order tags must be buffered and matched.
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 1, []float64{1})
			Send(c, 1, 2, []float64{2})
			Send(c, 1, 3, []float64{3})
		} else {
			if v := Recv[float64](c, 0, 3); v[0] != 3 {
				t.Errorf("tag 3 got %v", v)
			}
			if v := Recv[float64](c, 0, 1); v[0] != 1 {
				t.Errorf("tag 1 got %v", v)
			}
			if v := Recv[float64](c, 0, 2); v[0] != 2 {
				t.Errorf("tag 2 got %v", v)
			}
		}
	})
}

func TestBcastAllSizesAndRoots(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
		for root := 0; root < size; root += max(1, size/3) {
			stats := Run(size, func(c *Comm) {
				data := make([]complex128, 10)
				if c.Rank() == root {
					for i := range data {
						data[i] = complex(float64(i), float64(root))
					}
				}
				Bcast(c, root, 5, data)
				for i := range data {
					if data[i] != complex(float64(i), float64(root)) {
						t.Errorf("size=%d root=%d rank=%d: wrong data at %d", size, root, c.Rank(), i)
						return
					}
				}
			})
			if size > 1 {
				// A broadcast ships exactly (size-1) messages of the payload.
				want := int64(size-1) * 10 * 16
				if stats.BytesFor(ClassBcast) != want {
					t.Errorf("size=%d root=%d: bcast bytes = %d, want %d", size, root, stats.BytesFor(ClassBcast), want)
				}
			}
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8} {
		Run(size, func(c *Comm) {
			data := []float64{float64(c.Rank() + 1), 2}
			AllreduceSum(c, 10, data)
			wantFirst := float64(size*(size+1)) / 2
			if math.Abs(data[0]-wantFirst) > 1e-12 || math.Abs(data[1]-float64(2*size)) > 1e-12 {
				t.Errorf("size=%d rank=%d: allreduce got %v", size, c.Rank(), data)
			}
		})
	}
}

func TestAllreduceDeterministic(t *testing.T) {
	// Same inputs must give bit-identical results on every rank and run.
	results := make([][]float64, 2)
	for trial := 0; trial < 2; trial++ {
		var out atomic.Value
		Run(4, func(c *Comm) {
			rng := rand.New(rand.NewSource(int64(c.Rank())))
			data := make([]float64, 100)
			for i := range data {
				data[i] = rng.NormFloat64() * 1e-8
			}
			AllreduceSum(c, 1, data)
			if c.Rank() == 0 {
				out.Store(append([]float64(nil), data...))
			}
		})
		results[trial] = out.Load().([]float64)
	}
	for i := range results[0] {
		if results[0][i] != results[1][i] {
			t.Fatalf("allreduce not deterministic at %d", i)
		}
	}
}

func TestAlltoallvTranspose(t *testing.T) {
	size := 4
	Run(size, func(c *Comm) {
		send := make([][]complex128, size)
		for d := 0; d < size; d++ {
			send[d] = []complex128{complex(float64(c.Rank()), float64(d))}
		}
		recv := Alltoallv(c, 3, send)
		for s := 0; s < size; s++ {
			want := complex(float64(s), float64(c.Rank()))
			if recv[s][0] != want {
				t.Errorf("rank %d: from %d got %v want %v", c.Rank(), s, recv[s][0], want)
			}
		}
	})
}

func TestAlltoallvVariableSizes(t *testing.T) {
	size := 3
	Run(size, func(c *Comm) {
		send := make([][]float64, size)
		for d := 0; d < size; d++ {
			send[d] = make([]float64, c.Rank()+1) // rank r sends r+1 elements
			for i := range send[d] {
				send[d][i] = float64(c.Rank()*10 + d)
			}
		}
		recv := Alltoallv(c, 4, send)
		for s := 0; s < size; s++ {
			if len(recv[s]) != s+1 {
				t.Errorf("rank %d: from %d got %d elements, want %d", c.Rank(), s, len(recv[s]), s+1)
			}
		}
	})
}

func TestAllgatherv(t *testing.T) {
	size := 5
	Run(size, func(c *Comm) {
		data := []int64{int64(c.Rank() * 100)}
		all := Allgatherv(c, 6, data)
		for s := 0; s < size; s++ {
			if all[s][0] != int64(s*100) {
				t.Errorf("rank %d: gathered %v from %d", c.Rank(), all[s], s)
			}
		}
	})
}

func TestBarrier(t *testing.T) {
	var counter atomic.Int64
	Run(8, func(c *Comm) {
		counter.Add(1)
		c.Barrier()
		if counter.Load() != 8 {
			t.Errorf("rank %d passed barrier with counter %d", c.Rank(), counter.Load())
		}
		c.Barrier()
		c.Barrier() // reusable
	})
}

func TestConcurrentTaggedBcastsOverlap(t *testing.T) {
	// The Fock pipeline posts the next band's broadcast while processing
	// the current one; distinct tags keep them separable.
	size := 4
	nb := 8
	Run(size, func(c *Comm) {
		results := make([][]complex128, nb)
		done := make(chan int, nb)
		for band := 0; band < nb; band++ {
			root := band % size
			buf := make([]complex128, 16)
			if c.Rank() == root {
				for i := range buf {
					buf[i] = complex(float64(band), float64(i))
				}
			}
			results[band] = buf
			go func(band, root int, buf []complex128) {
				Bcast(c2(c), root, 100+band, buf)
				done <- band
			}(band, root, buf)
		}
		for i := 0; i < nb; i++ {
			<-done
		}
		for band := 0; band < nb; band++ {
			for i, v := range results[band] {
				if v != complex(float64(band), float64(i)) {
					t.Errorf("rank %d band %d wrong at %d: %v", c.Rank(), band, i, v)
					return
				}
			}
		}
	})
}

// c2 clones a Comm handle with a private pending buffer so concurrent
// goroutines on one rank do not race on the tag-matching map. (Concurrent
// collectives from one rank must use disjoint peer pairs or distinct
// handles, as real MPI requires thread-multiple handling.)
func c2(c *Comm) *Comm {
	return c.CloneHandle()
}

func TestSinglePrecisionConversion(t *testing.T) {
	in := []complex128{complex(1.00000001, -2), complex(3e-20, 4e20)}
	s := SingleOf(in)
	back := DoubleOf(s)
	if len(back) != len(in) {
		t.Fatal("length changed")
	}
	// Single precision keeps ~7 digits.
	if math.Abs(real(back[0])-1.00000001) > 1e-6 {
		t.Errorf("conversion error too large: %v", back[0])
	}
	// Volume halves.
	if 8*len(s) != 16*len(in)/2 {
		t.Error("single precision payload is not half the size")
	}
}

func TestRunPropagatesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic to propagate")
		}
	}()
	Run(2, func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
