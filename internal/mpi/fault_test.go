package mpi

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestCrashAfterCalls kills one rank at its N-th metered operation mid
// collective traffic and checks the tolerant runner reports the crash and
// the survivors' peer-loss aborts instead of hanging or crashing the test
// process.
func TestCrashAfterCalls(t *testing.T) {
	const size = 4
	p := &Perturb{
		Deadline: 200 * time.Millisecond,
		Fault:    &Fault{Crashes: []CrashRankAt{{Rank: 2, AfterCalls: 5}}},
	}
	start := time.Now()
	_, fail := RunTolerant(size, p, func(c *Comm) {
		buf := make([]float64, 8)
		for i := 0; i < 20; i++ {
			AllreduceSum(c, 100+2*i, buf)
		}
	})
	if fail == nil {
		t.Fatal("expected a Failure, got clean run")
	}
	if len(fail.Crashed) != 1 || fail.Crashed[0] != 2 {
		t.Fatalf("Crashed = %v, want [2]", fail.Crashed)
	}
	var rf *RankFailure
	if !errors.As(fail.Errs[2], &rf) {
		t.Fatalf("rank 2 error = %T %v, want *RankFailure", fail.Errs[2], fail.Errs[2])
	}
	for _, r := range fail.PeerLost {
		if !errors.Is(fail.Errs[r], ErrPeerLost) {
			t.Errorf("rank %d error %v does not match ErrPeerLost", r, fail.Errs[r])
		}
	}
	if len(fail.Crashed)+len(fail.PeerLost) > size {
		t.Fatalf("more failures than ranks: %v + %v", fail.Crashed, fail.PeerLost)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("survivors took %v to detect the crash (deadline 200ms)", elapsed)
	}
}

// TestCrashAfterStep fires a crash from the application-level step
// announcement and checks the step attribution in the failure.
func TestCrashAfterStep(t *testing.T) {
	p := &Perturb{
		Deadline: 200 * time.Millisecond,
		Fault:    &Fault{Crashes: []CrashRankAt{{Rank: 1, AfterStep: 3}}},
	}
	_, fail := RunTolerant(2, p, func(c *Comm) {
		buf := make([]float64, 4)
		for step := int64(0); step < 10; step++ {
			c.StepReached(step)
			AllreduceSum(c, 100, buf)
		}
	})
	if fail == nil || len(fail.Crashed) != 1 || fail.Crashed[0] != 1 {
		t.Fatalf("fail = %+v, want rank 1 crashed", fail)
	}
	if !strings.Contains(fail.Errs[1].Error(), "step 3") {
		t.Fatalf("crash error %q does not name step 3", fail.Errs[1])
	}
}

// TestDeadlineTripsEveryCollective checks the peer-loss detection
// satellite: for each collective class, a rank that never answers trips
// ErrPeerLost on every peer within the deadline - nobody hangs.
func TestDeadlineTripsEveryCollective(t *testing.T) {
	const (
		size     = 4
		silent   = 0
		deadline = 150 * time.Millisecond
	)
	cases := []struct {
		name string
		body func(c *Comm)
	}{
		{"Bcast", func(c *Comm) {
			buf := make([]complex128, 16)
			Bcast(c, silent, 100, buf) // root never broadcasts
		}},
		{"AllreduceSum", func(c *Comm) {
			buf := make([]float64, 16)
			AllreduceSum(c, 100, buf) // rank 0 never reduces or rebroadcasts
		}},
		{"Alltoallv", func(c *Comm) {
			send := make([][]float64, size)
			for i := range send {
				send[i] = make([]float64, 4)
			}
			Alltoallv(c, 100, send) // slice from rank 0 never arrives
		}},
		{"Allgatherv", func(c *Comm) {
			Allgatherv(c, 100, make([]float64, 4))
		}},
		{"Barrier", func(c *Comm) {
			c.Barrier() // rank 0 never enters
		}},
		{"Recv", func(c *Comm) {
			Recv[float64](c, silent, 100+c.Rank()) // rank 0 never sends
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			start := time.Now()
			_, fail := RunTolerant(size, &Perturb{Deadline: deadline}, func(c *Comm) {
				if c.Rank() == silent {
					return
				}
				tc.body(c)
			})
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("%s: detection took %v (deadline %v)", tc.name, elapsed, deadline)
			}
			if fail == nil {
				t.Fatalf("%s: expected peer-loss failures, got clean run", tc.name)
			}
			if len(fail.Crashed) != 0 {
				t.Fatalf("%s: unexpected crashes %v", tc.name, fail.Crashed)
			}
			want := []int{1, 2, 3}
			if fmt.Sprint(fail.PeerLost) != fmt.Sprint(want) {
				t.Fatalf("%s: PeerLost = %v, want %v (every peer)", tc.name, fail.PeerLost, want)
			}
			for _, r := range want {
				if !errors.Is(fail.Errs[r], ErrPeerLost) {
					t.Errorf("%s: rank %d error %v does not match ErrPeerLost", tc.name, r, fail.Errs[r])
				}
				var pl *PeerLostError
				if !errors.As(fail.Errs[r], &pl) {
					t.Errorf("%s: rank %d error is not a *PeerLostError", tc.name, r)
				} else if pl.Wait != deadline {
					t.Errorf("%s: reported wait %v, want %v", tc.name, pl.Wait, deadline)
				}
			}
		})
	}
}

// TestMessageDropsTripDeadline loses every message on the wire and checks
// the receiver detects the loss while the sender finishes cleanly.
func TestMessageDropsTripDeadline(t *testing.T) {
	p := &Perturb{
		Deadline: 150 * time.Millisecond,
		Fault:    &Fault{DropProb: 1, DropSeed: 42},
	}
	st, fail := RunTolerant(2, p, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 7, []float64{1, 2, 3})
			return
		}
		Recv[float64](c, 0, 7)
	})
	if fail == nil || len(fail.PeerLost) != 1 || fail.PeerLost[0] != 1 {
		t.Fatalf("fail = %+v, want rank 1 peer-lost", fail)
	}
	// The sender is billed for the ship attempt even though the payload
	// was lost.
	if got := st.SentBy(0, ClassP2P); got != 24 {
		t.Fatalf("sender billed %d bytes, want 24", got)
	}
	if got := st.RecvBy(1, ClassP2P); got != 0 {
		t.Fatalf("receiver billed %d bytes for a dropped message, want 0", got)
	}
}

// TestPartialDropsAreDeterministic reruns the same seeded drop plan and
// checks the loss pattern is reproducible.
func TestPartialDropsAreDeterministic(t *testing.T) {
	run := func() (sent, recvd int64) {
		p := &Perturb{
			Deadline: 100 * time.Millisecond,
			Fault:    &Fault{DropProb: 0.5, DropSeed: 7},
		}
		st, _ := RunTolerant(2, p, func(c *Comm) {
			defer func() { recover() }() // peer-loss after first dropped message is expected
			if c.Rank() == 0 {
				for i := 0; i < 20; i++ {
					Send(c, 1, 10+i, []float64{float64(i)})
				}
				return
			}
			for i := 0; i < 20; i++ {
				Recv[float64](c, 0, 10+i)
			}
		})
		return st.SentBy(0, ClassP2P), st.RecvBy(1, ClassP2P)
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 || r1 != r2 {
		t.Fatalf("drop pattern not deterministic: (%d,%d) vs (%d,%d)", s1, r1, s2, r2)
	}
	if r1 >= s1 {
		t.Fatalf("expected some loss at DropProb=0.5: sent %d, received %d", s1, r1)
	}
}

// TestRunPerturbedPanicsOnFault checks the non-tolerant entry points keep
// their contract: an injected fault ends the run with a loud panic that
// names the dead rank.
func TestRunPerturbedPanicsOnFault(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic from RunPerturbed under an injected crash")
		}
		msg := fmt.Sprint(p)
		if !strings.Contains(msg, "rank 1 crashed") {
			t.Fatalf("panic %q does not name the crashed rank", msg)
		}
	}()
	p := &Perturb{
		Deadline: 100 * time.Millisecond,
		Fault:    &Fault{Crashes: []CrashRankAt{{Rank: 1, AfterCalls: 1}}},
	}
	RunPerturbed(2, p, func(c *Comm) {
		AllreduceSum(c, 100, make([]float64, 4))
	})
}

// TestNonFaultPanicIsStillABug checks programming-error panics are not
// swallowed by the tolerant runner.
func TestNonFaultPanicIsStillABug(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected the bug panic to propagate")
		}
		if !strings.Contains(fmt.Sprint(p), "boom") {
			t.Fatalf("panic %q lost the original message", p)
		}
	}()
	RunTolerant(2, &Perturb{Deadline: 100 * time.Millisecond}, func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
}

// TestTolerantCleanRun checks a fault-free tolerant run returns nil
// Failure and full statistics.
func TestTolerantCleanRun(t *testing.T) {
	st, fail := RunTolerant(3, nil, func(c *Comm) {
		AllreduceSum(c, 100, make([]float64, 8))
		c.Barrier()
	})
	if fail != nil {
		t.Fatalf("unexpected failure: %v", fail)
	}
	if st.CallsFor(ClassAllreduce) == 0 {
		t.Fatal("statistics missing from clean tolerant run")
	}
}
