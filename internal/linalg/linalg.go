// Package linalg provides the dense complex linear algebra used by the
// plane-wave code: band overlap matrices (the Psi*H*Psi products of the
// PT-CN residual), subspace rotations, Cholesky factorization and triangular
// solves for orthogonalization, a Hermitian Jacobi eigensolver for subspace
// diagonalization, and small dense solvers for the Anderson mixing least
// squares problems. It is the CUBLAS/cuSOLVER stand-in of the reproduction.
//
// Matrices are stored row-major in flat []complex128 slices with explicit
// dimensions. Band sets ("wavefunction blocks") are stored band-major:
// band i occupies elements [i*ng, (i+1)*ng).
package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"ptdft/internal/parallel"
)

// Overlap computes the na x nb overlap matrix s[i*nb+j] = <a_i | b_j> =
// sum_g conj(a[i*ng+g]) * b[j*ng+g]. This is the S = Psi^* (H Psi) kernel of
// Algorithm 3 in the paper. s must have length na*nb.
func Overlap(s, a, b []complex128, na, nb, ng int) {
	if len(s) != na*nb || len(a) != na*ng || len(b) != nb*ng {
		panic(fmt.Sprintf("linalg: Overlap dims mismatch na=%d nb=%d ng=%d", na, nb, ng))
	}
	if parallel.MaxWorkers() <= 1 {
		// Inline loop: no closure, no goroutines (zero-alloc hot path).
		for i := 0; i < na; i++ {
			overlapRow(s, a, b, i, nb, ng)
		}
		return
	}
	parallel.For(na, func(i int) {
		overlapRow(s, a, b, i, nb, ng)
	})
}

// overlapRow fills row i of the overlap matrix.
func overlapRow(s, a, b []complex128, i, nb, ng int) {
	ai := a[i*ng : (i+1)*ng]
	for j := 0; j < nb; j++ {
		bj := b[j*ng : (j+1)*ng]
		var re, im float64
		for g := range ai {
			x, y := ai[g], bj[g]
			// conj(x)*y accumulated in parts to stay in registers.
			re += real(x)*real(y) + imag(x)*imag(y)
			im += real(x)*imag(y) - imag(x)*real(y)
		}
		s[i*nb+j] = complex(re, im)
	}
}

// ApplyMatrix computes the band rotation dst_j = sum_i u[i][j] * src_i,
// i.e. dst = U^T applied across bands, with u row-major nIn x nOut.
// This is the Psi <- Psi*S rotation of Algorithm 3 expressed band-major.
// dst must not alias src.
func ApplyMatrix(dst, src, u []complex128, nOut, nIn, ng int) {
	if len(dst) != nOut*ng || len(src) != nIn*ng || len(u) != nIn*nOut {
		panic(fmt.Sprintf("linalg: ApplyMatrix dims mismatch nOut=%d nIn=%d ng=%d", nOut, nIn, ng))
	}
	if parallel.MaxWorkers() <= 1 {
		// Inline loop: no closure, no goroutines (zero-alloc hot path).
		for j := 0; j < nOut; j++ {
			applyMatrixCol(dst, src, u, j, nOut, nIn, ng)
		}
		return
	}
	parallel.For(nOut, func(j int) {
		applyMatrixCol(dst, src, u, j, nOut, nIn, ng)
	})
}

// applyMatrixCol computes output band j of the rotation.
func applyMatrixCol(dst, src, u []complex128, j, nOut, nIn, ng int) {
	dj := dst[j*ng : (j+1)*ng]
	for g := range dj {
		dj[g] = 0
	}
	for i := 0; i < nIn; i++ {
		c := u[i*nOut+j]
		if c == 0 {
			continue
		}
		si := src[i*ng : (i+1)*ng]
		for g := range dj {
			dj[g] += c * si[g]
		}
	}
}

// CholeskyLower factors the Hermitian positive definite n x n matrix a
// in place into its lower Cholesky factor L (a = L L^H); entries above the
// diagonal are zeroed. It returns an error if a is not positive definite.
func CholeskyLower(a []complex128, n int) error {
	if len(a) != n*n {
		panic("linalg: CholeskyLower dims mismatch")
	}
	for j := 0; j < n; j++ {
		d := real(a[j*n+j])
		for k := 0; k < j; k++ {
			l := a[j*n+k]
			d -= real(l)*real(l) + imag(l)*imag(l)
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("linalg: matrix not positive definite at pivot %d (d=%g)", j, d)
		}
		ljj := math.Sqrt(d)
		a[j*n+j] = complex(ljj, 0)
		for i := j + 1; i < n; i++ {
			v := a[i*n+j]
			for k := 0; k < j; k++ {
				v -= a[i*n+k] * cmplx.Conj(a[j*n+k])
			}
			a[i*n+j] = v / complex(ljj, 0)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a[i*n+j] = 0
		}
	}
	return nil
}

// SolveLowerBands overwrites the band set x (n bands x ng) with
// conj(L)^{-1} x by forward substitution across bands. When L is the lower
// Cholesky factor of the overlap matrix S[i][j] = <x_i|x_j>, this
// orthonormalizes the band set: the Gram matrix of band-major rows is
// conj(S), so the conjugated factor is the one that whitens it. This is the
// Trsm-based orthogonalization of section 3.4.
func SolveLowerBands(l, x []complex128, n, ng int) {
	if len(l) != n*n || len(x) != n*ng {
		panic("linalg: SolveLowerBands dims mismatch")
	}
	if parallel.MaxWorkers() <= 1 {
		// Inline loop: no closure, no goroutines (zero-alloc hot path).
		solveLowerBandsRange(l, x, n, ng, 0, ng)
		return
	}
	// Parallelize over G-space blocks; the band recurrence is sequential.
	parallel.ForBlock(ng, func(lo, hi int) {
		solveLowerBandsRange(l, x, n, ng, lo, hi)
	})
}

// solveLowerBandsRange runs the forward substitution on G columns [lo, hi).
func solveLowerBandsRange(l, x []complex128, n, ng, lo, hi int) {
	for i := 0; i < n; i++ {
		xi := x[i*ng : (i+1)*ng]
		for j := 0; j < i; j++ {
			c := cmplx.Conj(l[i*n+j])
			if c == 0 {
				continue
			}
			xj := x[j*ng : (j+1)*ng]
			for g := lo; g < hi; g++ {
				xi[g] -= c * xj[g]
			}
		}
		inv := 1 / complex(real(l[i*n+i]), 0)
		for g := lo; g < hi; g++ {
			xi[g] *= inv
		}
	}
}

// SolveLinear solves a x = b in place for k right-hand sides using Gaussian
// elimination with partial pivoting. a is n x n and is destroyed; b is
// n x k row-major and is overwritten with the solution.
func SolveLinear(a, b []complex128, n, k int) error {
	if len(a) != n*n || len(b) != n*k {
		panic("linalg: SolveLinear dims mismatch")
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, pmax := col, cmplx.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if m := cmplx.Abs(a[r*n+col]); m > pmax {
				piv, pmax = r, m
			}
		}
		if pmax == 0 {
			return errors.New("linalg: singular matrix in SolveLinear")
		}
		if piv != col {
			for c := 0; c < n; c++ {
				a[col*n+c], a[piv*n+c] = a[piv*n+c], a[col*n+c]
			}
			for c := 0; c < k; c++ {
				b[col*k+c], b[piv*k+c] = b[piv*k+c], b[col*k+c]
			}
		}
		inv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * inv
			if f == 0 {
				continue
			}
			a[r*n+col] = 0
			for c := col + 1; c < n; c++ {
				a[r*n+c] -= f * a[col*n+c]
			}
			for c := 0; c < k; c++ {
				b[r*k+c] -= f * b[col*k+c]
			}
		}
	}
	for col := n - 1; col >= 0; col-- {
		inv := 1 / a[col*n+col]
		for c := 0; c < k; c++ {
			v := b[col*k+c]
			for r := col + 1; r < n; r++ {
				v -= a[col*n+r] * b[r*k+c]
			}
			b[col*k+c] = v * inv
		}
	}
	return nil
}

// HermEig diagonalizes the Hermitian n x n matrix a (not modified) with the
// cyclic Jacobi method. It returns eigenvalues in ascending order and the
// row-major matrix v whose column k (v[i*n+k]) is the unit eigenvector for
// eigenvalue k. Intended for the small subspace problems of the eigensolver
// and for analysis; O(n^3) per sweep.
func HermEig(a []complex128, n int) ([]float64, []complex128, error) {
	if len(a) != n*n {
		panic("linalg: HermEig dims mismatch")
	}
	w := make([]complex128, n*n)
	copy(w, a)
	v := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}
	var norm float64
	for i := range w {
		norm += real(w[i])*real(w[i]) + imag(w[i])*imag(w[i])
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return make([]float64, n), v, nil
	}
	tol := 1e-14 * norm
	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				off += cmplx.Abs(w[p*n+q])
			}
		}
		if off < tol {
			evals, evecs := sortEig(w, v, n)
			return evals, evecs, nil
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				beta := w[p*n+q]
				ab := cmplx.Abs(beta)
				if ab < tol/float64(n*n) {
					continue
				}
				alpha := real(w[p*n+p])
				gamma := real(w[q*n+q])
				// Phase of the off-diagonal element.
				phase := beta / complex(ab, 0)
				var theta float64
				if alpha == gamma {
					theta = math.Pi / 4
				} else {
					theta = 0.5 * math.Atan2(2*ab, alpha-gamma)
				}
				c := math.Cos(theta)
				s := complex(math.Sin(theta), 0) * cmplx.Conj(phase)
				// Columns p,q transform by U = [[c, -conj(s)], [s, c]].
				for i := 0; i < n; i++ {
					wip, wiq := w[i*n+p], w[i*n+q]
					w[i*n+p] = complex(c, 0)*wip + s*wiq
					w[i*n+q] = -cmplx.Conj(s)*wip + complex(c, 0)*wiq
				}
				for i := 0; i < n; i++ {
					wpi, wqi := w[p*n+i], w[q*n+i]
					w[p*n+i] = complex(c, 0)*wpi + cmplx.Conj(s)*wqi
					w[q*n+i] = -s*wpi + complex(c, 0)*wqi
				}
				for i := 0; i < n; i++ {
					vip, viq := v[i*n+p], v[i*n+q]
					v[i*n+p] = complex(c, 0)*vip + s*viq
					v[i*n+q] = -cmplx.Conj(s)*vip + complex(c, 0)*viq
				}
				// Clean tiny Hermiticity drift on the diagonal.
				w[p*n+p] = complex(real(w[p*n+p]), 0)
				w[q*n+q] = complex(real(w[q*n+q]), 0)
			}
		}
	}
	return nil, nil, errors.New("linalg: Jacobi eigensolver did not converge")
}

func sortEig(w, v []complex128, n int) ([]float64, []complex128) {
	evals := make([]float64, n)
	order := make([]int, n)
	for i := 0; i < n; i++ {
		evals[i] = real(w[i*n+i])
		order[i] = i
	}
	// Insertion sort: n is small.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && evals[order[j]] < evals[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	sorted := make([]float64, n)
	vs := make([]complex128, n*n)
	for k, idx := range order {
		sorted[k] = evals[idx]
		for i := 0; i < n; i++ {
			vs[i*n+k] = v[i*n+idx]
		}
	}
	return sorted, vs
}

// GenEigChol solves the generalized Hermitian eigenproblem A x = lambda B x
// with B positive definite, via B = L L^H, Atilde = L^{-1} A L^{-H}.
// a and b are not modified. Eigenvectors are returned B-orthonormal as
// columns of the row-major matrix x (x[i*n+k] is component i of vector k).
func GenEigChol(a, b []complex128, n int) ([]float64, []complex128, error) {
	if len(a) != n*n || len(b) != n*n {
		panic("linalg: GenEigChol dims mismatch")
	}
	l := make([]complex128, n*n)
	copy(l, b)
	if err := CholeskyLower(l, n); err != nil {
		return nil, nil, err
	}
	// at = L^{-1} A L^{-H}: first Y = L^{-1} A (forward substitution on
	// rows), then at = Y L^{-H} which is (L^{-1} Y^H)^H column-wise.
	y := make([]complex128, n*n)
	copy(y, a)
	forwardSubstRows(l, y, n)
	// Z = L^{-1} * Y^H, then at = Z^H.
	z := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			z[i*n+j] = cmplx.Conj(y[j*n+i])
		}
	}
	forwardSubstRows(l, z, n)
	at := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			at[i*n+j] = cmplx.Conj(z[j*n+i])
		}
	}
	evals, yv, err := HermEig(at, n)
	if err != nil {
		return nil, nil, err
	}
	// x = L^{-H} y: back substitution on each column.
	x := backSubstHCols(l, yv, n)
	return evals, x, nil
}

// forwardSubstRows overwrites m (n x n row-major) with L^{-1} m.
func forwardSubstRows(l, m []complex128, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			c := l[i*n+j]
			if c == 0 {
				continue
			}
			for col := 0; col < n; col++ {
				m[i*n+col] -= c * m[j*n+col]
			}
		}
		inv := 1 / l[i*n+i]
		for col := 0; col < n; col++ {
			m[i*n+col] *= inv
		}
	}
}

// backSubstHCols returns L^{-H} m where m columns are vectors.
func backSubstHCols(l, m []complex128, n int) []complex128 {
	x := make([]complex128, n*n)
	copy(x, m)
	// Solve L^H x = m: back substitution, row i depends on rows > i.
	for i := n - 1; i >= 0; i-- {
		for col := 0; col < n; col++ {
			v := x[i*n+col]
			for j := i + 1; j < n; j++ {
				v -= cmplx.Conj(l[j*n+i]) * x[j*n+col]
			}
			x[i*n+col] = v / complex(real(l[i*n+i]), 0)
		}
	}
	return x
}

// MatMul computes c = a*b for row-major a (m x k) and b (k x n).
func MatMul(c, a, b []complex128, m, k, n int) {
	if len(c) != m*n || len(a) != m*k || len(b) != k*n {
		panic("linalg: MatMul dims mismatch")
	}
	parallel.For(m, func(i int) {
		ci := c[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		for p := 0; p < k; p++ {
			f := a[i*k+p]
			if f == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j := range ci {
				ci[j] += f * bp[j]
			}
		}
	})
}

// ConjTranspose returns the conjugate transpose of the row-major m x n
// matrix a as an n x m matrix.
func ConjTranspose(a []complex128, m, n int) []complex128 {
	t := make([]complex128, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t[j*m+i] = cmplx.Conj(a[i*n+j])
		}
	}
	return t
}

// Dot returns <a|b> = sum conj(a_i) b_i.
func Dot(a, b []complex128) complex128 {
	var re, im float64
	for i := range a {
		x, y := a[i], b[i]
		re += real(x)*real(y) + imag(x)*imag(y)
		im += real(x)*imag(y) - imag(x)*real(y)
	}
	return complex(re, im)
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []complex128) float64 {
	var s float64
	for _, x := range a {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return math.Sqrt(s)
}

// AXPY computes y += alpha*x.
func AXPY(alpha complex128, x, y []complex128) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range y {
		y[i] += alpha * x[i]
	}
}
