package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, m, n int) []complex128 {
	a := make([]complex128, m*n)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return a
}

// randHermitian returns a random Hermitian n x n matrix.
func randHermitian(rng *rand.Rand, n int) []complex128 {
	a := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = complex(rng.NormFloat64(), 0)
		for j := i + 1; j < n; j++ {
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			a[i*n+j] = v
			a[j*n+i] = cmplx.Conj(v)
		}
	}
	return a
}

// randHPD returns a random Hermitian positive definite matrix B = M^H M + n*I.
func randHPD(rng *rand.Rand, n int) []complex128 {
	m := randMat(rng, n, n)
	b := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc complex128
			for k := 0; k < n; k++ {
				acc += cmplx.Conj(m[k*n+i]) * m[k*n+j]
			}
			b[i*n+j] = acc
		}
		b[i*n+i] += complex(float64(n), 0)
	}
	return b
}

func cAbsMax(a []complex128) float64 {
	var mx float64
	for _, v := range a {
		if x := cmplx.Abs(v); x > mx {
			mx = x
		}
	}
	return mx
}

func TestOverlapMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	na, nb, ng := 4, 5, 37
	a := randMat(rng, na, ng)
	b := randMat(rng, nb, ng)
	s := make([]complex128, na*nb)
	Overlap(s, a, b, na, nb, ng)
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			var want complex128
			for g := 0; g < ng; g++ {
				want += cmplx.Conj(a[i*ng+g]) * b[j*ng+g]
			}
			if cmplx.Abs(s[i*nb+j]-want) > 1e-10 {
				t.Fatalf("Overlap[%d,%d] = %v, want %v", i, j, s[i*nb+j], want)
			}
		}
	}
}

func TestOverlapHermitianOnSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, ng := 6, 50
	a := randMat(rng, n, ng)
	s := make([]complex128, n*n)
	Overlap(s, a, a, n, n, ng)
	for i := 0; i < n; i++ {
		if math.Abs(imag(s[i*n+i])) > 1e-10 {
			t.Errorf("diagonal %d not real: %v", i, s[i*n+i])
		}
		for j := 0; j < n; j++ {
			if cmplx.Abs(s[i*n+j]-cmplx.Conj(s[j*n+i])) > 1e-10 {
				t.Errorf("overlap not Hermitian at (%d,%d)", i, j)
			}
		}
	}
}

func TestApplyMatrixMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nIn, nOut, ng := 4, 3, 17
	src := randMat(rng, nIn, ng)
	u := randMat(rng, nIn, nOut)
	dst := make([]complex128, nOut*ng)
	ApplyMatrix(dst, src, u, nOut, nIn, ng)
	for j := 0; j < nOut; j++ {
		for g := 0; g < ng; g++ {
			var want complex128
			for i := 0; i < nIn; i++ {
				want += u[i*nOut+j] * src[i*ng+g]
			}
			if cmplx.Abs(dst[j*ng+g]-want) > 1e-10 {
				t.Fatalf("ApplyMatrix[%d,%d] mismatch", j, g)
			}
		}
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 5, 12} {
		b := randHPD(rng, n)
		l := make([]complex128, n*n)
		copy(l, b)
		if err := CholeskyLower(l, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Reconstruct L L^H and compare.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var acc complex128
				for k := 0; k <= min(i, j); k++ {
					acc += l[i*n+k] * cmplx.Conj(l[j*n+k])
				}
				if cmplx.Abs(acc-b[i*n+j]) > 1e-9*float64(n) {
					t.Fatalf("n=%d: LL^H differs from B at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := []complex128{1, 0, 0, -1} // diag(1,-1)
	if err := CholeskyLower(a, 2); err == nil {
		t.Error("expected failure for indefinite matrix")
	}
}

func TestSolveLowerBandsOrthogonalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, ng := 5, 64
	x := randMat(rng, n, ng)
	s := make([]complex128, n*n)
	Overlap(s, x, x, n, n, ng)
	if err := CholeskyLower(s, n); err != nil {
		t.Fatal(err)
	}
	SolveLowerBands(s, x, n, ng)
	s2 := make([]complex128, n*n)
	Overlap(s2, x, x, n, n, ng)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(s2[i*n+j]-want) > 1e-9 {
				t.Fatalf("not orthonormal at (%d,%d): %v", i, j, s2[i*n+j])
			}
		}
	}
}

func TestSolveLinearRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, k := 8, 3
	a := randMat(rng, n, n)
	x := randMat(rng, n, k)
	// b = a*x
	b := make([]complex128, n*k)
	MatMul(b, a, x, n, n, k)
	ac := make([]complex128, n*n)
	copy(ac, a)
	if err := SolveLinear(ac, b, n, k); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(b[i]-x[i]) > 1e-8 {
			t.Fatalf("solution differs at %d: got %v want %v", i, b[i], x[i])
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := make([]complex128, 4) // zero matrix
	b := make([]complex128, 2)
	if err := SolveLinear(a, b, 2, 1); err == nil {
		t.Error("expected singular matrix error")
	}
}

func TestHermEigDiagonalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 6, 10, 20} {
		a := randHermitian(rng, n)
		evals, v, err := HermEig(a, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Ascending order.
		for k := 1; k < n; k++ {
			if evals[k] < evals[k-1] {
				t.Fatalf("n=%d: eigenvalues not sorted", n)
			}
		}
		// A v_k = lambda_k v_k and orthonormality.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				var av complex128
				for j := 0; j < n; j++ {
					av += a[i*n+j] * v[j*n+k]
				}
				if cmplx.Abs(av-complex(evals[k], 0)*v[i*n+k]) > 1e-8*float64(n) {
					t.Fatalf("n=%d: residual too large for eigenpair %d", n, k)
				}
			}
			for k2 := 0; k2 < n; k2++ {
				var d complex128
				for i := 0; i < n; i++ {
					d += cmplx.Conj(v[i*n+k]) * v[i*n+k2]
				}
				want := complex128(0)
				if k == k2 {
					want = 1
				}
				if cmplx.Abs(d-want) > 1e-9*float64(n) {
					t.Fatalf("n=%d: eigenvectors not orthonormal (%d,%d)", n, k, k2)
				}
			}
		}
	}
}

func TestHermEigTraceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 4 + int(seed%5+5)%5
		a := randHermitian(local, n)
		evals, _, err := HermEig(a, n)
		if err != nil {
			return false
		}
		var tr, se float64
		for i := 0; i < n; i++ {
			tr += real(a[i*n+i])
			se += evals[i]
		}
		return math.Abs(tr-se) < 1e-9*float64(n)*(1+math.Abs(tr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestGenEigChol(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 7
	a := randHermitian(rng, n)
	b := randHPD(rng, n)
	evals, x, err := GenEigChol(a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		// Check A x_k = lambda_k B x_k.
		for i := 0; i < n; i++ {
			var ax, bx complex128
			for j := 0; j < n; j++ {
				ax += a[i*n+j] * x[j*n+k]
				bx += b[i*n+j] * x[j*n+k]
			}
			if cmplx.Abs(ax-complex(evals[k], 0)*bx) > 1e-7 {
				t.Fatalf("generalized eigenpair %d residual too large", k)
			}
		}
		// B-orthonormality.
		for k2 := 0; k2 < n; k2++ {
			var d complex128
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					d += cmplx.Conj(x[i*n+k]) * b[i*n+j] * x[j*n+k2]
				}
			}
			want := complex128(0)
			if k == k2 {
				want = 1
			}
			if cmplx.Abs(d-want) > 1e-8 {
				t.Fatalf("not B-orthonormal at (%d,%d): %v", k, k2, d)
			}
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 6
	a := randMat(rng, n, n)
	id := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	c := make([]complex128, n*n)
	MatMul(c, a, id, n, n, n)
	for i := range a {
		if cmplx.Abs(c[i]-a[i]) > 1e-12 {
			t.Fatal("A*I != A")
		}
	}
}

func TestConjTranspose(t *testing.T) {
	a := []complex128{complex(1, 2), complex(3, 4), complex(5, 6), complex(7, 8), complex(9, 10), complex(11, 12)}
	tr := ConjTranspose(a, 2, 3)
	if tr[0] != complex(1, -2) || tr[1] != complex(7, -8) || tr[5] != complex(11, -12) {
		t.Fatalf("ConjTranspose wrong: %v", tr)
	}
}

func TestDotNorm(t *testing.T) {
	a := []complex128{complex(3, 4)}
	if Norm2(a) != 5 {
		t.Errorf("Norm2 = %g, want 5", Norm2(a))
	}
	b := []complex128{complex(1, 1)}
	d := Dot(a, b)
	// conj(3+4i)*(1+i) = (3-4i)(1+i) = 3+3i-4i+4 = 7-i
	if cmplx.Abs(d-complex(7, -1)) > 1e-14 {
		t.Errorf("Dot = %v, want 7-i", d)
	}
}

func TestAXPY(t *testing.T) {
	x := []complex128{1, 2}
	y := []complex128{10, 20}
	AXPY(complex(2, 0), x, y)
	if y[0] != 12 || y[1] != 24 {
		t.Fatalf("AXPY result %v", y)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkOverlap32x32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, ng := 32, 4096
	x := randMat(rng, n, ng)
	s := make([]complex128, n*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Overlap(s, x, x, n, n, ng)
	}
}

func BenchmarkCholesky64(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 64
	hpd := randHPD(rng, n)
	w := make([]complex128, n*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(w, hpd)
		if err := CholeskyLower(w, n); err != nil {
			b.Fatal(err)
		}
	}
}
