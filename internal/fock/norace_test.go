//go:build !race

package fock

const raceEnabled = false
