// Serial adaptively compressed exchange (ACE): the rank-nb projector
// compression of the Fock operator (Lin, JCTC 2016; combined with the PT
// gauge in Jia & Lin, arXiv:1809.09609 - refs [24] and [22] of the paper),
// built and applied on the full band-major layout (nb x NG sphere
// coefficients, no distribution - the band-slab/G-slab split of this
// construction lives in internal/dist). It reproduces section 1's
// PT-vs-PT+ACE trade-off at laptop scale: construction costs one exact
// exchange application plus an nb x nb Cholesky, after which each
// application is nb dot products instead of nb Poisson solves - the
// operator the hamiltonian package holds through the serial acehold/MTS
// cadences.
package fock

import (
	"fmt"

	"ptdft/internal/linalg"
	"ptdft/internal/parallel"
	"ptdft/internal/trace"
)

// ACE is the adaptively compressed exchange operator (Lin, JCTC 2016;
// combined with the PT gauge in Jia & Lin, CPC 2019 - refs [24] and [22]
// of the paper). It compresses V_X into a rank-nb projector
//
//	V_ACE = -Xi Xi^H,  Xi = (V_X Phi) L^{-H},  -Phi^H V_X Phi = L L^H,
//
// which reproduces V_X exactly on the span of Phi and costs only nb dot
// products per application instead of nb FFT pairs. The paper found that
// on GPUs the plain PT formulation outperforms PT+ACE (section 1); the
// ablation benchmark quantifies that trade-off in this reproduction.
type ACE struct {
	xi []complex128 // band-major nb x NG projector vectors
	nb int
	ng int
	tr *trace.Track // copied from the building Operator; nil disables
}

// NewACE builds the compressed operator from a Fock operator and the
// reference orbitals phi (band-major sphere coefficients, nb x NG).
// The construction performs the pairwise FFT work once; when phi is the
// operator's own reference set (the usual case) the symmetry-halved
// ApplyToReference path runs nb(nb+1)/2 Poisson solves instead of nb^2.
func NewACE(op *Operator, phi []complex128, nb int) (*ACE, error) {
	ng := op.g.NG
	if len(phi) != nb*ng {
		return nil, fmt.Errorf("fock: NewACE size mismatch: %d != %d x %d", len(phi), nb, ng)
	}
	ref := op.tr.Begin("ace_build", "solver")
	defer op.tr.End(ref)
	w := make([]complex128, nb*ng)
	if op.IsReference(phi, nb) {
		op.ApplyToReference(w)
	} else {
		op.Apply(w, phi, nb)
	}
	m := make([]complex128, nb*nb)
	linalg.Overlap(m, phi, w, nb, nb, ng)
	// -M must be Hermitian positive definite (V_X is negative definite on
	// the occupied span for a screened kernel).
	for i := range m {
		m[i] = -m[i]
	}
	if err := linalg.CholeskyLower(m, nb); err != nil {
		return nil, fmt.Errorf("fock: ACE overlap not negative definite: %w", err)
	}
	linalg.SolveLowerBands(m, w, nb, ng)
	return &ACE{xi: w, nb: nb, ng: ng, tr: op.tr}, nil
}

// Apply accumulates V_ACE psi = -Xi (Xi^H psi) into dst for nbands
// sphere-coefficient bands (band-major).
func (a *ACE) Apply(dst, src []complex128, nbands int) {
	if len(dst) != nbands*a.ng || len(src) != nbands*a.ng {
		panic("fock: ACE.Apply buffer size mismatch")
	}
	ref := a.tr.Begin("ace_apply", "solver")
	defer a.tr.End(ref)
	parallel.For(nbands, func(j int) {
		s := src[j*a.ng : (j+1)*a.ng]
		d := dst[j*a.ng : (j+1)*a.ng]
		for k := 0; k < a.nb; k++ {
			xi := a.xi[k*a.ng : (k+1)*a.ng]
			c := -linalg.Dot(xi, s)
			if c == 0 {
				continue
			}
			for g := range d {
				d[g] += c * xi[g]
			}
		}
	})
}

// Rank reports the compression rank (number of reference orbitals).
func (a *ACE) Rank() int { return a.nb }
