package fock

import (
	"math"
	"math/cmplx"
	"testing"

	"ptdft/internal/grid"
	"ptdft/internal/lattice"
	"ptdft/internal/linalg"
	"ptdft/internal/parallel"
	"ptdft/internal/perf"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

func setup(t *testing.T, nb int) (*grid.Grid, []complex128, *Operator) {
	t.Helper()
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 3)
	phi := wavefunc.Random(g, nb, 42)
	op := NewOperator(g, xc.HSE06(), phi, nb)
	return g, phi, op
}

func TestFockHermitian(t *testing.T) {
	g, _, op := setup(t, 4)
	a := wavefunc.Random(g, 2, 7)
	ng := g.NG
	va := make([]complex128, 2*ng)
	op.Apply(va, a, 2)
	// <a_0|V a_1> == conj(<a_1|V a_0>)
	m01 := linalg.Dot(a[:ng], va[ng:])
	m10 := linalg.Dot(a[ng:], va[:ng])
	if cmplx.Abs(m01-cmplx.Conj(m10)) > 1e-9*(1+cmplx.Abs(m01)) {
		t.Errorf("Fock operator not Hermitian: %v vs conj %v", m01, cmplx.Conj(m10))
	}
}

func TestFockNegativeDefiniteOnSpan(t *testing.T) {
	g, phi, op := setup(t, 4)
	ng := g.NG
	v := make([]complex128, 4*ng)
	op.Apply(v, phi, 4)
	for j := 0; j < 4; j++ {
		e := real(linalg.Dot(phi[j*ng:(j+1)*ng], v[j*ng:(j+1)*ng]))
		if e >= 0 {
			t.Errorf("band %d: <phi|Vx phi> = %g, want negative", j, e)
		}
	}
}

func TestFockEnergyNegative(t *testing.T) {
	g, phi, op := setup(t, 4)
	_ = g
	e := op.Energy(phi, 4)
	if e >= 0 {
		t.Errorf("exchange energy %g, want negative", e)
	}
}

func TestFockLinear(t *testing.T) {
	g, _, op := setup(t, 3)
	ng := g.NG
	a := wavefunc.Random(g, 1, 11)
	b := wavefunc.Random(g, 1, 13)
	alpha := complex(0.7, -0.3)
	c := make([]complex128, ng)
	for i := range c {
		c[i] = a[i] + alpha*b[i]
	}
	va := make([]complex128, ng)
	vb := make([]complex128, ng)
	vc := make([]complex128, ng)
	op.Apply(va, a, 1)
	op.Apply(vb, b, 1)
	op.Apply(vc, c, 1)
	for i := range vc {
		want := va[i] + alpha*vb[i]
		if cmplx.Abs(vc[i]-want) > 1e-9 {
			t.Fatalf("Fock not linear at %d", i)
		}
	}
}

func TestFockKernelMatchesXC(t *testing.T) {
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 3)
	hyb := xc.HSE06()
	kernel := BuildKernel(g, hyb)
	// Index 0 is G=0: the finite screened limit.
	want := math.Pi / (hyb.Omega * hyb.Omega)
	if math.Abs(kernel[0]-want) > 1e-9*want {
		t.Errorf("kernel[G=0] = %g, want %g", kernel[0], want)
	}
	for i, k := range kernel {
		if k <= 0 {
			t.Fatalf("kernel not positive at %d: %g", i, k)
		}
	}
}

func TestSetOrbitalsChangesOperator(t *testing.T) {
	g, phi, op := setup(t, 3)
	ng := g.NG
	test := wavefunc.Random(g, 1, 5)
	v1 := make([]complex128, ng)
	op.Apply(v1, test, 1)
	phi2 := wavefunc.Random(g, 3, 99)
	op.SetOrbitals(phi2, 3)
	v2 := make([]complex128, ng)
	op.Apply(v2, test, 1)
	if wavefunc.MaxDiff(v1, v2) < 1e-10 {
		t.Error("operator unchanged after SetOrbitals")
	}
	_ = phi
}

func TestACEMatchesExactOnSpan(t *testing.T) {
	g, phi, op := setup(t, 4)
	ng := g.NG
	ace, err := NewACE(op, phi, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ace.Rank() != 4 {
		t.Errorf("ACE rank %d, want 4", ace.Rank())
	}
	exact := make([]complex128, 4*ng)
	op.Apply(exact, phi, 4)
	compressed := make([]complex128, 4*ng)
	ace.Apply(compressed, phi, 4)
	if d := wavefunc.MaxDiff(exact, compressed); d > 1e-8 {
		t.Errorf("ACE differs from exact on reference span by %g", d)
	}
}

func TestACEHermitianNegative(t *testing.T) {
	g, phi, op := setup(t, 4)
	ng := g.NG
	ace, err := NewACE(op, phi, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := wavefunc.Random(g, 2, 21)
	vx := make([]complex128, 2*ng)
	ace.Apply(vx, x, 2)
	m01 := linalg.Dot(x[:ng], vx[ng:])
	m10 := linalg.Dot(x[ng:], vx[:ng])
	if cmplx.Abs(m01-cmplx.Conj(m10)) > 1e-9*(1+cmplx.Abs(m01)) {
		t.Error("ACE operator not Hermitian")
	}
	e := real(linalg.Dot(x[:ng], vx[:ng]))
	if e > 1e-12 {
		t.Errorf("ACE quadratic form %g, want <= 0", e)
	}
}

// TestApplyToReferenceMatchesApply pins the conjugate-pair symmetry: the
// halved nb(nb+1)/2-solve path must agree with the generic band-by-band
// application to well below 1e-12, for both the screened HSE06 kernel and
// an unscreened hybrid. Odd nb exercises the round-robin bye.
func TestApplyToReferenceMatchesApply(t *testing.T) {
	for _, tc := range []struct {
		name string
		hyb  xc.HybridParams
	}{
		{"screened_hse06", xc.HSE06()},
		{"hybrid_unscreened", xc.HybridParams{Alpha: 0.3, Omega: 0}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Force goroutine fan-out so the round-parallel accumulation
			// and worker-bound workspaces are exercised even on 1-CPU
			// hosts.
			defer parallel.SetMaxWorkers(parallel.SetMaxWorkers(3))
			g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 3)
			ng := g.NG
			ntot := g.NTot
			kernel := BuildKernel(g, tc.hyb)
			for _, nb := range []int{1, 4, 5} {
				phi := wavefunc.Random(g, nb, 42)
				op := NewOperator(g, tc.hyb, phi, nb)
				// Independent oracle: the spelled-out nb^2 loop over
				// ContractReference, bypassing Apply entirely so neither
				// the reference detection nor the pair schedule is
				// involved in producing the expected values.
				phiR := make([]complex128, nb*ntot)
				for i := 0; i < nb; i++ {
					g.ToRealSerial(phiR[i*ntot:(i+1)*ntot], phi[i*ng:(i+1)*ng])
				}
				want := make([]complex128, nb*ng)
				acc := make([]complex128, ntot)
				pair := make([]complex128, ntot)
				for j := 0; j < nb; j++ {
					for k := range acc {
						acc[k] = 0
					}
					for i := 0; i < nb; i++ {
						ContractReference(g, kernel, tc.hyb.Alpha, phiR[i*ntot:(i+1)*ntot], phiR[j*ntot:(j+1)*ntot], acc, pair)
					}
					g.FromRealSerial(want[j*ng:(j+1)*ng], acc)
				}
				got := make([]complex128, nb*ng)
				op.ApplyToReference(got)
				if d := wavefunc.MaxDiff(want, got); d > 1e-12 {
					t.Errorf("nb=%d: symmetry path differs from generic by %g", nb, d)
				}
				// Apply on the full reference set routes through the
				// symmetric path and must agree as well.
				got2 := make([]complex128, nb*ng)
				op.Apply(got2, phi, nb)
				if d := wavefunc.MaxDiff(want, got2); d > 1e-12 {
					t.Errorf("nb=%d: Apply-on-reference differs from generic by %g", nb, d)
				}
			}
		})
	}
}

// TestEnergyMatchesApplyDot pins the streaming Energy against the
// spelled-out sum_j Re<psi_j|V_X psi_j>, on and off the reference set.
func TestEnergyMatchesApplyDot(t *testing.T) {
	g, phi, op := setup(t, 4)
	ng := g.NG
	manual := func(psi []complex128, nb int) float64 {
		var e float64
		for j := 0; j < nb; j++ {
			vx := make([]complex128, ng)
			op.Apply(vx, psi[j*ng:(j+1)*ng], 1)
			e += real(linalg.Dot(psi[j*ng:(j+1)*ng], vx))
		}
		return e
	}
	if want, got := manual(phi, 4), op.Energy(phi, 4); math.Abs(want-got) > 1e-12*(1+math.Abs(want)) {
		t.Errorf("reference-set energy %g, want %g", got, want)
	}
	psi := wavefunc.Random(g, 3, 77)
	if want, got := manual(psi, 3), op.Energy(psi, 3); math.Abs(want-got) > 1e-12*(1+math.Abs(want)) {
		t.Errorf("generic energy %g, want %g", got, want)
	}
}

// TestFockApplyAllocs pins the zero-allocation contract of the hot path:
// once the operator's workspace pool is warm, a steady-state Apply over the
// lane-blocked SoA layout performs no heap allocations. Workers are pinned
// to 1 so the loop runs on the calling goroutine (goroutine spawns allocate
// by design and are per-call, not per-band). The iterations always run -
// under -race they exercise the SoA slab path for data races while the
// allocation assertions are suspended (sync.Pool drops items under the race
// detector, so the counts are meaningless there).
func TestFockApplyAllocs(t *testing.T) {
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 3)
	nb := 4
	phi := wavefunc.Random(g, nb, 1)
	op := NewOperator(g, xc.HSE06(), phi, nb)
	x := wavefunc.Random(g, 1, 2)
	v := make([]complex128, g.NG)
	defer parallel.SetMaxWorkers(parallel.SetMaxWorkers(1))
	op.Apply(v, x, 1) // warm the workspace pool
	if a := testing.AllocsPerRun(10, func() { op.Apply(v, x, 1) }); a > 0 && !raceEnabled {
		t.Errorf("steady-state Apply allocates %v per band application, want 0", a)
	}
	full := make([]complex128, nb*g.NG)
	op.ApplyToReference(full) // warm the symmetric path's accumulator
	if a := testing.AllocsPerRun(5, func() { op.ApplyToReference(full) }); a > 0 && !raceEnabled {
		t.Errorf("steady-state ApplyToReference allocates %v per call, want 0", a)
	}
	// The streaming Energy rides the same slab workspaces; its per-call
	// allocations are the documented O(nb) edge tables (the eband/epair
	// partial sums and the worker table), never grid-sized buffers.
	op.Energy(phi, nb)
	if a := testing.AllocsPerRun(5, func() { op.Energy(phi, nb) }); a > 4 && !raceEnabled {
		t.Errorf("steady-state Energy allocates %v per call, want <= 4 edge tables", a)
	}
}

func BenchmarkFockApplySingleBand(b *testing.B) {
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 4)
	nb := 16
	phi := wavefunc.Random(g, nb, 1)
	op := NewOperator(g, xc.HSE06(), phi, nb)
	x := wavefunc.Random(g, 1, 2)
	v := make([]complex128, g.NG)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range v {
			v[k] = 0
		}
		op.Apply(v, x, 1)
	}
	b.StopTimer()
	if b.N > 0 {
		allocs := testing.AllocsPerRun(1, func() { op.Apply(v, x, 1) })
		nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		if err := perf.RecordMeasurement("BENCH_fock.json", "BenchmarkFockApplySingleBand", nsPerOp, allocs, g.N, nb, parallel.MaxWorkers()); err != nil {
			b.Logf("bench record not written: %v", err)
		}
	}
}
