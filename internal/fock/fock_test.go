package fock

import (
	"math"
	"math/cmplx"
	"testing"

	"ptdft/internal/grid"
	"ptdft/internal/lattice"
	"ptdft/internal/linalg"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

func setup(t *testing.T, nb int) (*grid.Grid, []complex128, *Operator) {
	t.Helper()
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 3)
	phi := wavefunc.Random(g, nb, 42)
	op := NewOperator(g, xc.HSE06(), phi, nb)
	return g, phi, op
}

func TestFockHermitian(t *testing.T) {
	g, _, op := setup(t, 4)
	a := wavefunc.Random(g, 2, 7)
	ng := g.NG
	va := make([]complex128, 2*ng)
	op.Apply(va, a, 2)
	// <a_0|V a_1> == conj(<a_1|V a_0>)
	m01 := linalg.Dot(a[:ng], va[ng:])
	m10 := linalg.Dot(a[ng:], va[:ng])
	if cmplx.Abs(m01-cmplx.Conj(m10)) > 1e-9*(1+cmplx.Abs(m01)) {
		t.Errorf("Fock operator not Hermitian: %v vs conj %v", m01, cmplx.Conj(m10))
	}
}

func TestFockNegativeDefiniteOnSpan(t *testing.T) {
	g, phi, op := setup(t, 4)
	ng := g.NG
	v := make([]complex128, 4*ng)
	op.Apply(v, phi, 4)
	for j := 0; j < 4; j++ {
		e := real(linalg.Dot(phi[j*ng:(j+1)*ng], v[j*ng:(j+1)*ng]))
		if e >= 0 {
			t.Errorf("band %d: <phi|Vx phi> = %g, want negative", j, e)
		}
	}
}

func TestFockEnergyNegative(t *testing.T) {
	g, phi, op := setup(t, 4)
	_ = g
	e := op.Energy(phi, 4)
	if e >= 0 {
		t.Errorf("exchange energy %g, want negative", e)
	}
}

func TestFockLinear(t *testing.T) {
	g, _, op := setup(t, 3)
	ng := g.NG
	a := wavefunc.Random(g, 1, 11)
	b := wavefunc.Random(g, 1, 13)
	alpha := complex(0.7, -0.3)
	c := make([]complex128, ng)
	for i := range c {
		c[i] = a[i] + alpha*b[i]
	}
	va := make([]complex128, ng)
	vb := make([]complex128, ng)
	vc := make([]complex128, ng)
	op.Apply(va, a, 1)
	op.Apply(vb, b, 1)
	op.Apply(vc, c, 1)
	for i := range vc {
		want := va[i] + alpha*vb[i]
		if cmplx.Abs(vc[i]-want) > 1e-9 {
			t.Fatalf("Fock not linear at %d", i)
		}
	}
}

func TestFockKernelMatchesXC(t *testing.T) {
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 3)
	hyb := xc.HSE06()
	kernel := BuildKernel(g, hyb)
	// Index 0 is G=0: the finite screened limit.
	want := math.Pi / (hyb.Omega * hyb.Omega)
	if math.Abs(kernel[0]-want) > 1e-9*want {
		t.Errorf("kernel[G=0] = %g, want %g", kernel[0], want)
	}
	for i, k := range kernel {
		if k <= 0 {
			t.Fatalf("kernel not positive at %d: %g", i, k)
		}
	}
}

func TestSetOrbitalsChangesOperator(t *testing.T) {
	g, phi, op := setup(t, 3)
	ng := g.NG
	test := wavefunc.Random(g, 1, 5)
	v1 := make([]complex128, ng)
	op.Apply(v1, test, 1)
	phi2 := wavefunc.Random(g, 3, 99)
	op.SetOrbitals(phi2, 3)
	v2 := make([]complex128, ng)
	op.Apply(v2, test, 1)
	if wavefunc.MaxDiff(v1, v2) < 1e-10 {
		t.Error("operator unchanged after SetOrbitals")
	}
	_ = phi
}

func TestACEMatchesExactOnSpan(t *testing.T) {
	g, phi, op := setup(t, 4)
	ng := g.NG
	ace, err := NewACE(op, phi, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ace.Rank() != 4 {
		t.Errorf("ACE rank %d, want 4", ace.Rank())
	}
	exact := make([]complex128, 4*ng)
	op.Apply(exact, phi, 4)
	compressed := make([]complex128, 4*ng)
	ace.Apply(compressed, phi, 4)
	if d := wavefunc.MaxDiff(exact, compressed); d > 1e-8 {
		t.Errorf("ACE differs from exact on reference span by %g", d)
	}
}

func TestACEHermitianNegative(t *testing.T) {
	g, phi, op := setup(t, 4)
	ng := g.NG
	ace, err := NewACE(op, phi, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := wavefunc.Random(g, 2, 21)
	vx := make([]complex128, 2*ng)
	ace.Apply(vx, x, 2)
	m01 := linalg.Dot(x[:ng], vx[ng:])
	m10 := linalg.Dot(x[ng:], vx[:ng])
	if cmplx.Abs(m01-cmplx.Conj(m10)) > 1e-9*(1+cmplx.Abs(m01)) {
		t.Error("ACE operator not Hermitian")
	}
	e := real(linalg.Dot(x[:ng], vx[:ng]))
	if e > 1e-12 {
		t.Errorf("ACE quadratic form %g, want <= 0", e)
	}
}

func BenchmarkFockApplySingleBand(b *testing.B) {
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 4)
	nb := 16
	phi := wavefunc.Random(g, nb, 1)
	op := NewOperator(g, xc.HSE06(), phi, nb)
	x := wavefunc.Random(g, 1, 2)
	v := make([]complex128, g.NG)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := range v {
			v[k] = 0
		}
		op.Apply(v, x, 1)
	}
}
