// Package fock implements the screened Fock exchange operator of Eq. 3,
// the component that consumes ~95% of a hybrid-functional calculation:
//
//	(V_X[P] psi_j)(r) = -alpha * sum_i phi_i(r) * Int K(r-r') phi_i*(r') psi_j(r') dr'
//
// Each (i,j) pair is a Poisson-like solve done with a pair of FFTs on the
// wavefunction grid (as in the paper, which evaluates the Fock operator on
// the wavefunction grid rather than the dense grid). The operator is
// "compiled" against a reference orbital set phi (the density matrix P of
// Eq. 2); in the PT-CN SCF loop it is refreshed every iteration.
//
// The package also implements the adaptively compressed exchange (ACE)
// representation (refs [22], [24] of the paper) as an optional
// lower-cost approximation used for ablation studies: V_ACE = -W W^H with
// W = V_X Phi (Phi^H V_X Phi)^{-1/2} via Cholesky.
package fock

import (
	"fmt"
	"math"

	"ptdft/internal/grid"
	"ptdft/internal/linalg"
	"ptdft/internal/parallel"
	"ptdft/internal/xc"
)

// Operator applies the screened Fock exchange for a fixed reference
// orbital set. Safe for concurrent Apply calls once built.
type Operator struct {
	g      *grid.Grid
	alpha  float64
	kernel []float64 // K(G) on the wavefunction box, includes screening
	// phiReal holds the reference orbitals in real space on the
	// wavefunction box, one band per NTot block.
	phiReal []complex128
	nb      int
}

// NewOperator builds the Fock operator for hybrid parameters hyb and
// reference orbitals phi given as sphere coefficients (band-major, nb x NG).
func NewOperator(g *grid.Grid, hyb xc.HybridParams, phi []complex128, nb int) *Operator {
	op := &Operator{g: g, alpha: hyb.Alpha, nb: nb}
	op.kernel = BuildKernel(g, hyb)
	op.SetOrbitals(phi, nb)
	return op
}

// BuildKernel tabulates the screened Coulomb kernel K(G) on every
// wavefunction-box point.
func BuildKernel(g *grid.Grid, hyb xc.HybridParams) []float64 {
	kernel := make([]float64, g.NTot)
	// Wavefunction-box G vectors: recompute from Miller indices per point.
	n := g.N
	b := [3]float64{
		2 * math.Pi / g.Cell.L[0],
		2 * math.Pi / g.Cell.L[1],
		2 * math.Pi / g.Cell.L[2],
	}
	idx := 0
	for ix := 0; ix < n[0]; ix++ {
		mx := ix
		if mx > n[0]/2 {
			mx -= n[0]
		}
		gx := float64(mx) * b[0]
		for iy := 0; iy < n[1]; iy++ {
			my := iy
			if my > n[1]/2 {
				my -= n[1]
			}
			gy := float64(my) * b[1]
			for iz := 0; iz < n[2]; iz++ {
				mz := iz
				if mz > n[2]/2 {
					mz -= n[2]
				}
				gz := float64(mz) * b[2]
				kernel[idx] = hyb.ScreenedKernel(gx*gx + gy*gy + gz*gz)
				idx++
			}
		}
	}
	return kernel
}

// SetOrbitals refreshes the reference orbital set (the P in V_X[P]).
func (op *Operator) SetOrbitals(phi []complex128, nb int) {
	if len(phi) != nb*op.g.NG {
		panic(fmt.Sprintf("fock: SetOrbitals size mismatch: %d bands x NG %d != %d", nb, op.g.NG, len(phi)))
	}
	op.nb = nb
	ntot := op.g.NTot
	if len(op.phiReal) != nb*ntot {
		op.phiReal = make([]complex128, nb*ntot)
	}
	parallel.For(nb, func(i int) {
		op.g.ToRealSerial(op.phiReal[i*ntot:(i+1)*ntot], phi[i*op.g.NG:(i+1)*op.g.NG])
	})
}

// NumBands reports the number of reference orbitals.
func (op *Operator) NumBands() int { return op.nb }

// Alpha reports the exchange mixing fraction.
func (op *Operator) Alpha() float64 { return op.alpha }

// ApplyReal accumulates (V_X psi)(r) into dstReal for a wavefunction given
// in real space on the wavefunction box. Both buffers have length NTot.
// This is the per-band inner loop of Alg. 2 (lines 6-10): nb Poisson
// solves, each a forward FFT, kernel multiply, and inverse FFT.
func (op *Operator) ApplyReal(dstReal, srcReal []complex128) {
	ntot := op.g.NTot
	if len(dstReal) != ntot || len(srcReal) != ntot {
		panic("fock: ApplyReal buffer size mismatch")
	}
	pair := make([]complex128, ntot)
	for i := 0; i < op.nb; i++ {
		ContractReference(op.g, op.kernel, op.alpha, op.phiReal[i*ntot:(i+1)*ntot], srcReal, dstReal, pair)
	}
}

// ContractReference accumulates the exchange contribution of one reference
// orbital into dstReal for a wavefunction, all in real space on the
// wavefunction box: dstReal += -alpha * phi * Poisson[phi^* src]. pair is a
// caller-provided NTot scratch buffer. This is the shared (i, j) inner step
// of Alg. 2; the serial Operator and the distributed exchange of
// internal/dist both fold bands through it.
func ContractReference(g *grid.Grid, kernel []float64, alpha float64, phiReal, srcReal, dstReal, pair []complex128) {
	// Charge-like quantity phi_i^*(r) psi(r).
	for k := range pair {
		p := phiReal[k]
		pair[k] = complex(real(p), -imag(p)) * srcReal[k]
	}
	// Poisson-like solve: coefficients rho_G = Forward/N, synthesis
	// multiplies by N; the factors cancel so Forward + kernel +
	// normalized Inverse yields v(r) directly.
	g.Plan.ApplySerial(pair, pair, false)
	for k := range pair {
		pair[k] *= complex(kernel[k], 0)
	}
	g.Plan.ApplySerial(pair, pair, true)
	a := complex(-alpha, 0)
	for k := range pair {
		dstReal[k] += a * phiReal[k] * pair[k]
	}
}

// Apply computes V_X applied to nb sphere-coefficient bands (band-major)
// and accumulates the result into dst (same layout). The band loop is
// parallelized; each band performs op.nb FFT pairs, mirroring the batched
// GPU execution of the paper.
func (op *Operator) Apply(dst, src []complex128, nbands int) {
	ng := op.g.NG
	if len(dst) != nbands*ng || len(src) != nbands*ng {
		panic("fock: Apply buffer size mismatch")
	}
	ntot := op.g.NTot
	parallel.For(nbands, func(j int) {
		srcReal := make([]complex128, ntot)
		acc := make([]complex128, ntot)
		op.g.ToRealSerial(srcReal, src[j*ng:(j+1)*ng])
		op.ApplyReal(acc, srcReal)
		c := make([]complex128, ng)
		op.g.FromRealSerial(c, acc)
		d := dst[j*ng : (j+1)*ng]
		for s := range d {
			d[s] += c[s]
		}
	})
}

// Energy returns the exchange energy E_X = sum_j Re<psi_j|V_X psi_j> for a
// band set (the spin factor 2 and the 1/2 double counting cancel for a
// closed shell).
func (op *Operator) Energy(psi []complex128, nbands int) float64 {
	ng := op.g.NG
	vx := make([]complex128, nbands*ng)
	op.Apply(vx, psi, nbands)
	var e float64
	for j := 0; j < nbands; j++ {
		d := linalg.Dot(psi[j*ng:(j+1)*ng], vx[j*ng:(j+1)*ng])
		e += real(d)
	}
	return e
}
