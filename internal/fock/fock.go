// Package fock implements the screened Fock exchange operator of Eq. 3,
// the component that consumes ~95% of a hybrid-functional calculation:
//
//	(V_X[P] psi_j)(r) = -alpha * sum_i phi_i(r) * Int K(r-r') phi_i*(r') psi_j(r') dr'
//
// Each (i,j) pair is a Poisson-like solve done with a pair of FFTs on the
// wavefunction grid (as in the paper, which evaluates the Fock operator on
// the wavefunction grid rather than the dense grid). The operator is
// "compiled" against a reference orbital set phi (the density matrix P of
// Eq. 2); in the PT-CN SCF loop it is refreshed every iteration.
//
// Performance contract: the hot path is allocation-free in steady state.
// All per-band scratch (real-space boxes, pair buffers, FFT line scratch)
// lives in Operator-owned Workspace objects bound one-per-worker through
// parallel.ForWorker, the Poisson solves run through the fused
// fourier.Plan3 round trips, and when the operator acts on its own
// reference set the conjugate-pair symmetry
//
//	Poisson[phi_i* phi_j] = conj(Poisson[phi_j* phi_i])
//
// halves the FFT count to nb(nb+1)/2 solves (ApplyToReference) - the
// dominant case in the PT-CN SCF refresh, Energy, and ACE construction.
//
// The package also implements the adaptively compressed exchange (ACE)
// representation (refs [22], [24] of the paper) as an optional
// lower-cost approximation used for ablation studies: V_ACE = -W W^H with
// W = V_X Phi (Phi^H V_X Phi)^{-1/2} via Cholesky.
package fock

import (
	"fmt"
	"math"

	"ptdft/internal/fourier"
	"ptdft/internal/grid"
	"ptdft/internal/lanes"
	"ptdft/internal/parallel"
	"ptdft/internal/trace"
	"ptdft/internal/xc"
)

// Operator applies the screened Fock exchange for a fixed reference
// orbital set. Safe for concurrent Apply/ApplyReal/Energy calls once
// built: scratch is checked out of internal pools, never shared.
type Operator struct {
	g      *grid.Grid
	alpha  float64
	kernel []float64 // K(G) on the wavefunction box, includes screening
	// phiReal holds the reference orbitals in real space on the
	// wavefunction box in the lane-blocked SoA layout (internal/lanes),
	// one band per NTot block - every contraction reads it without
	// re-interleaving.
	phiReal lanes.Slab
	// phi keeps a copy of the reference sphere coefficients so entry
	// points can recognize "the operator applied to its own reference
	// set" and take the symmetry-halved path.
	phi []complex128
	nb  int

	// pairs enumerates the upper triangle (i <= j) once; rounds is the
	// same set arranged as a round-robin tournament schedule - within a
	// round no two pairs share a band, so the symmetric accumulation is
	// both race-free and deterministic.
	pairs  [][2]int
	rounds [][][2]int

	// Workspace recycling: ws feeds both single-shot callers (ApplyReal)
	// and the band-parallel entry points; accPool recycles the symmetric
	// path's nb x NTot SoA accumulator, so concurrent calls stay correct
	// (a second caller simply builds a transient slab).
	ws      parallel.ScratchPool[*Workspace]
	accPool parallel.ScratchPool[*lanes.Slab]

	// tr records apply spans on the owning rank's timeline; nil (the
	// default) disables recording at the cost of one pointer check.
	tr *trace.Track
}

// SetTrace attaches a span track the exchange applications record on
// (nil disables). The serial drivers set it through the Hamiltonian.
func (op *Operator) SetTrace(t *trace.Track) { op.tr = t }

// Workspace is the per-worker scratch of one exchange application: two
// real-space SoA boxes, the pair (Poisson) slab, a sphere-coefficient
// vector, and the FFT line scratch. Obtain one from NewWorkspace; a
// Workspace must not be used by two goroutines at once.
type Workspace struct {
	src  lanes.Slab   // NTot: band in real space (SoA)
	acc  lanes.Slab   // NTot: exchange accumulator in real space (SoA)
	pair lanes.Slab   // NTot: Poisson solve buffer (SoA)
	sph  []complex128 // NG: sphere-coefficient scratch
	fft  *fourier.Workspace3
}

// NewWorkspace allocates the scratch one worker needs for Apply-family
// calls on this operator.
func (op *Operator) NewWorkspace() *Workspace {
	return &Workspace{
		src:  lanes.New(op.g.NTot),
		acc:  lanes.New(op.g.NTot),
		pair: lanes.New(op.g.NTot),
		sph:  make([]complex128, op.g.NG),
		fft:  op.g.Plan.NewWorkspace(),
	}
}

// acquireAcc hands out the nb x NTot real-space SoA accumulator of the
// symmetric reference application, zeroed. Slabs recycle through accPool -
// a deliberate memory-for-speed trade (one slab is the same size as the
// phiReal block the operator already holds, and PT-CN calls the symmetric
// path every SCF iteration).
func (op *Operator) acquireAcc() *lanes.Slab {
	n := op.nb * op.g.NTot
	acc := op.accPool.Get()
	if acc.Len() != n {
		acc = lanes.NewPtr(n)
	}
	acc.Zero()
	return acc
}

func (op *Operator) releaseAcc(acc *lanes.Slab) { op.accPool.Put(acc) }

// NewOperator builds the Fock operator for hybrid parameters hyb and
// reference orbitals phi given as sphere coefficients (band-major, nb x NG).
func NewOperator(g *grid.Grid, hyb xc.HybridParams, phi []complex128, nb int) *Operator {
	op := &Operator{g: g, alpha: hyb.Alpha, nb: nb}
	op.ws.New = op.NewWorkspace
	op.accPool.New = func() *lanes.Slab { return lanes.NewPtr(op.nb * op.g.NTot) }
	op.kernel = BuildKernel(g, hyb)
	op.SetOrbitals(phi, nb)
	return op
}

// BuildKernel tabulates the screened Coulomb kernel K(G) on every
// wavefunction-box point.
func BuildKernel(g *grid.Grid, hyb xc.HybridParams) []float64 {
	kernel := make([]float64, g.NTot)
	// Wavefunction-box G vectors: recompute from Miller indices per point.
	n := g.N
	b := [3]float64{
		2 * math.Pi / g.Cell.L[0],
		2 * math.Pi / g.Cell.L[1],
		2 * math.Pi / g.Cell.L[2],
	}
	idx := 0
	for ix := 0; ix < n[0]; ix++ {
		mx := ix
		if mx > n[0]/2 {
			mx -= n[0]
		}
		gx := float64(mx) * b[0]
		for iy := 0; iy < n[1]; iy++ {
			my := iy
			if my > n[1]/2 {
				my -= n[1]
			}
			gy := float64(my) * b[1]
			for iz := 0; iz < n[2]; iz++ {
				mz := iz
				if mz > n[2]/2 {
					mz -= n[2]
				}
				gz := float64(mz) * b[2]
				kernel[idx] = hyb.ScreenedKernel(gx*gx + gy*gy + gz*gz)
				idx++
			}
		}
	}
	return kernel
}

// SetOrbitals refreshes the reference orbital set (the P in V_X[P]).
func (op *Operator) SetOrbitals(phi []complex128, nb int) {
	if len(phi) != nb*op.g.NG {
		panic(fmt.Sprintf("fock: SetOrbitals size mismatch: %d bands x NG %d != %d", nb, op.g.NG, len(phi)))
	}
	if nb != op.nb || op.pairs == nil {
		op.pairs, op.rounds = pairSchedule(nb)
	}
	op.nb = nb
	ntot := op.g.NTot
	if op.phiReal.Len() != nb*ntot {
		op.phiReal = lanes.New(nb * ntot)
	}
	if len(op.phi) != nb*op.g.NG {
		op.phi = make([]complex128, nb*op.g.NG)
	}
	copy(op.phi, phi)
	nw := parallel.NumWorkers(nb)
	wss := op.ws.Acquire(nw)
	parallel.ForWorker(nb, func(w, i int) {
		op.g.ToRealSlabWS(op.phiReal.Row(i, ntot), phi[i*op.g.NG:(i+1)*op.g.NG], wss[w].fft)
	})
	op.ws.Release(wss)
}

// pairSchedule enumerates the upper-triangle band pairs (i <= j) and
// arranges the off-diagonal ones as a round-robin tournament (circle
// method): within each round every band appears in at most one pair, so
// the two-sided accumulation of ApplyToReference runs in parallel without
// write conflicts and with a deterministic accumulation order. The
// diagonal pairs form one final, trivially disjoint round.
func pairSchedule(nb int) (pairs [][2]int, rounds [][][2]int) {
	m := nb
	if m%2 == 1 {
		m++
	}
	for t := 0; t < m-1; t++ {
		var round [][2]int
		add := func(a, b int) {
			if a >= nb || b >= nb {
				return // the bye of an odd band count
			}
			if a > b {
				a, b = b, a
			}
			round = append(round, [2]int{a, b})
		}
		if m > 1 {
			add(m-1, t%(m-1))
		}
		for k := 1; k < m/2; k++ {
			add((t+k)%(m-1), (t-k+m-1)%(m-1))
		}
		if len(round) > 0 {
			rounds = append(rounds, round)
			pairs = append(pairs, round...)
		}
	}
	var diag [][2]int
	for i := 0; i < nb; i++ {
		diag = append(diag, [2]int{i, i})
	}
	rounds = append(rounds, diag)
	pairs = append(pairs, diag...)
	return pairs, rounds
}

// NumBands reports the number of reference orbitals.
func (op *Operator) NumBands() int { return op.nb }

// Alpha reports the exchange mixing fraction.
func (op *Operator) Alpha() float64 { return op.alpha }

// IsReference reports whether src (band-major sphere coefficients) equals
// the operator's own reference orbital set - the case where the symmetric
// ApplyToReference path applies. The scan exits at the first mismatch, so
// the common negative costs a handful of comparisons.
func (op *Operator) IsReference(src []complex128, nb int) bool {
	if nb != op.nb || len(src) != len(op.phi) {
		return false
	}
	if &src[0] == &op.phi[0] {
		return true
	}
	for i, v := range src {
		if v != op.phi[i] {
			return false
		}
	}
	return true
}

// ApplyReal accumulates (V_X psi)(r) into dstReal for a wavefunction given
// in real space on the wavefunction box. Both buffers have length NTot.
// This is the per-band inner loop of Alg. 2 (lines 6-10): nb Poisson
// solves, each a fused forward FFT, kernel multiply, and inverse FFT.
func (op *Operator) ApplyReal(dstReal, srcReal []complex128) {
	ntot := op.g.NTot
	if len(dstReal) != ntot || len(srcReal) != ntot {
		panic("fock: ApplyReal buffer size mismatch")
	}
	// Interleaved shim over the SoA core: pack once, contract nb bands in
	// slab layout, accumulate back - two extra box passes amortized over
	// nb Poisson solves.
	ws := op.ws.Get()
	lanes.Pack(ws.src, srcReal)
	ws.acc.Zero()
	op.applyRealWS(ws.acc, ws.src, ws)
	lanes.UnpackAdd(dstReal, ws.acc)
	op.ws.Put(ws)
}

// applyRealWS folds every reference band into the SoA accumulator dst
// using the caller's workspace (pair slab + FFT scratch).
func (op *Operator) applyRealWS(dst, src lanes.Slab, ws *Workspace) {
	ntot := op.g.NTot
	for i := 0; i < op.nb; i++ {
		op.g.Plan.ContractSlabWS(dst, op.phiReal.Row(i, ntot), src, ws.pair, op.kernel, -op.alpha, ws.fft)
	}
}

// ContractReference accumulates the exchange contribution of one reference
// orbital into dstReal for a wavefunction, all in real space on the
// wavefunction box: dstReal += -alpha * phi * Poisson[phi^* src]. pair is a
// caller-provided NTot scratch buffer. This is the shared (i, j) inner step
// of Alg. 2; the serial Operator and the distributed exchange of
// internal/dist both fold bands through it.
func ContractReference(g *grid.Grid, kernel []float64, alpha float64, phiReal, srcReal, dstReal, pair []complex128) {
	ws := g.Plan.CheckoutWorkspace()
	g.Plan.ContractSerialWS(dstReal, phiReal, srcReal, pair, kernel, complex(-alpha, 0), ws)
	g.Plan.ReturnWorkspace(ws)
}

// ContractReferenceWS is the SoA ContractReference with caller-owned FFT
// scratch, for loops that bind one workspace per worker: all four buffers
// are lane-blocked slabs, so the distributed exchange strategies chain
// contractions without re-interleaving between stages.
func ContractReferenceWS(g *grid.Grid, kernel []float64, alpha float64, phiReal, srcReal, dstReal, pair lanes.Slab, fws *fourier.Workspace3) {
	g.Plan.ContractSlabWS(dstReal, phiReal, srcReal, pair, kernel, -alpha, fws)
}

// ContractPairReferenceWS is the two-sided symmetric SoA contraction: one
// Poisson solve accumulating both accJ += -alpha phi_i v and (for i != j)
// accI += -alpha phi_j conj(v), v = Poisson[phi_i^* phi_j]. The triangle
// half of the dist steal schedule and the serial symmetric path share it.
func ContractPairReferenceWS(g *grid.Grid, kernel []float64, alpha float64, phiI, phiJ, accI, accJ, pair lanes.Slab, diag bool, fws *fourier.Workspace3) {
	g.Plan.ContractPairSlabWS(accI, accJ, phiI, phiJ, pair, kernel, -alpha, diag, fws)
}

// Apply computes V_X applied to nbands sphere-coefficient bands
// (band-major) and accumulates the result into dst (same layout). The band
// loop is parallelized with one workspace per worker, mirroring the
// batched GPU execution of the paper. When src is the operator's own
// reference set the call routes through ApplyToReference and performs only
// nb(nb+1)/2 Poisson solves.
func (op *Operator) Apply(dst, src []complex128, nbands int) {
	ng := op.g.NG
	if len(dst) != nbands*ng || len(src) != nbands*ng {
		panic("fock: Apply buffer size mismatch")
	}
	if op.IsReference(src, nbands) {
		op.ApplyToReference(dst)
		return
	}
	ref := op.tr.Begin("exchange", "fock")
	defer op.tr.End(ref)
	nw := parallel.NumWorkers(nbands)
	wss := op.ws.Acquire(nw)
	if nw <= 1 {
		// Serial fast path: no closure, no goroutines - this is the
		// zero-allocation steady state the alloc test pins.
		for j := 0; j < nbands; j++ {
			op.applyBand(dst, src, j, wss[0])
		}
	} else {
		parallel.ForWorker(nbands, func(w, j int) {
			op.applyBand(dst, src, j, wss[w])
		})
	}
	op.ws.Release(wss)
}

// applyBand computes band j of the generic application: real space, nb
// fused contractions, back to the sphere, accumulate into dst.
func (op *Operator) applyBand(dst, src []complex128, j int, ws *Workspace) {
	ng := op.g.NG
	op.g.ToRealSlabWS(ws.src, src[j*ng:(j+1)*ng], ws.fft)
	ws.acc.Zero()
	op.applyRealWS(ws.acc, ws.src, ws)
	op.g.FromRealSlabWS(ws.sph, ws.acc, ws.fft)
	d := dst[j*ng : (j+1)*ng]
	for s := range d {
		d[s] += ws.sph[s]
	}
}

// ApplyToReference accumulates V_X applied to the operator's own reference
// orbitals into dst (band-major sphere coefficients, nb x NG). It exploits
// the conjugate-pair symmetry Poisson[phi_i* phi_j] = conj(Poisson[phi_j*
// phi_i]) - the kernel is real and inversion-symmetric, so the Poisson
// round trip is convolution with a real function - to run one solve per
// unordered pair: nb(nb+1)/2 instead of nb^2. This is the dominant
// exchange call of the PT-CN refresh, Energy and ACE construction.
func (op *Operator) ApplyToReference(dst []complex128) {
	nb, ng := op.nb, op.g.NG
	if len(dst) != nb*ng {
		panic("fock: ApplyToReference buffer size mismatch")
	}
	ref := op.tr.Begin("exchange", "fock")
	defer op.tr.End(ref)
	acc := op.acquireAcc()
	nw := parallel.NumWorkers(nb)
	wss := op.ws.Acquire(nw)
	// Rounds are barriers: within one round no two pairs share a band, so
	// both sides of each pair accumulate without locks, and the fixed
	// round order keeps the floating-point accumulation deterministic.
	if nw <= 1 {
		// Serial fast path: no closures, no goroutines (zero-alloc).
		for _, round := range op.rounds {
			for t := range round {
				op.contractPair(acc, round[t][0], round[t][1], wss[0])
			}
		}
		for j := 0; j < nb; j++ {
			op.gatherBand(dst, acc, j, wss[0])
		}
	} else {
		for _, round := range op.rounds {
			r := round
			parallel.ForWorker(len(r), func(w, t int) {
				op.contractPair(acc, r[t][0], r[t][1], wss[w])
			})
		}
		parallel.ForWorker(nb, func(w, j int) {
			op.gatherBand(dst, acc, j, wss[w])
		})
	}
	op.ws.Release(wss)
	op.releaseAcc(acc)
}

// contractPair performs the single Poisson solve of the unordered pair
// (i, j) and accumulates both sides of the symmetry into the SoA
// accumulator: acc_j += -alpha phi_i v and (for i != j)
// acc_i += -alpha phi_j conj(v), with v = Poisson[phi_i^* phi_j]. Both
// accumulations ride inside the inverse z pass of the fused solve.
func (op *Operator) contractPair(acc *lanes.Slab, i, j int, ws *Workspace) {
	ntot := op.g.NTot
	phiI := op.phiReal.Row(i, ntot)
	phiJ := op.phiReal.Row(j, ntot)
	op.g.Plan.ContractPairSlabWS(acc.Row(i, ntot), acc.Row(j, ntot), phiI, phiJ, ws.pair, op.kernel, -op.alpha, i == j, ws.fft)
}

// gatherBand projects real-space accumulator band j back onto the sphere
// and adds it into dst (the accumulator is consumed).
func (op *Operator) gatherBand(dst []complex128, acc *lanes.Slab, j int, ws *Workspace) {
	ng, ntot := op.g.NG, op.g.NTot
	op.g.FromRealSlabWS(ws.sph, acc.Row(j, ntot), ws.fft)
	d := dst[j*ng : (j+1)*ng]
	for s := range d {
		d[s] += ws.sph[s]
	}
}

// Energy returns the exchange energy E_X = sum_j Re<psi_j|V_X psi_j> for a
// band set (the spin factor 2 and the 1/2 double counting cancel for a
// closed shell). The evaluation streams band by band through worker
// workspaces - no nbands x NG buffer is formed - and when psi is the
// operator's own reference set it uses the pair symmetry to halve the
// Poisson solves.
func (op *Operator) Energy(psi []complex128, nbands int) float64 {
	ng := op.g.NG
	if len(psi) != nbands*ng {
		panic("fock: Energy buffer size mismatch")
	}
	if op.IsReference(psi, nbands) {
		return op.energyReference()
	}
	// Generic path: per band, <psi_j|V_X psi_j> evaluated as the
	// real-space inner product dV * sum_r conj(psi_j(r)) (V_X psi_j)(r),
	// which equals the sphere-coefficient dot product by Parseval.
	eband := make([]float64, nbands)
	nw := parallel.NumWorkers(nbands)
	wss := op.ws.Acquire(nw)
	parallel.ForWorker(nbands, func(w, j int) {
		ws := wss[w]
		op.g.ToRealSlabWS(ws.src, psi[j*ng:(j+1)*ng], ws.fft)
		ws.acc.Zero()
		op.applyRealWS(ws.acc, ws.src, ws)
		eband[j] = lanes.DotRe(ws.src, ws.acc)
	})
	op.ws.Release(wss)
	var e float64
	for _, v := range eband {
		e += v
	}
	return e * op.g.DVWave()
}

// energyReference evaluates E_X on the reference set with one Poisson
// solve per unordered pair: E_X = -alpha dV sum_{i<=j} w_ij Re sum_r
// conj(rho_ij(r)) Poisson[rho_ij](r) with rho_ij = phi_i^* phi_j and
// w_ij = 2 - delta_ij (the (j,i) term is the complex conjugate).
func (op *Operator) energyReference() float64 {
	ntot := op.g.NTot
	epair := make([]float64, len(op.pairs))
	nw := parallel.NumWorkers(len(op.pairs))
	wss := op.ws.Acquire(nw)
	parallel.ForWorker(len(op.pairs), func(w, t int) {
		ws := wss[w]
		i, j := op.pairs[t][0], op.pairs[t][1]
		phiI := op.phiReal.Row(i, ntot)
		phiJ := op.phiReal.Row(j, ntot)
		pair, rho := ws.pair, ws.src
		lanes.PairConj(pair, phiI, phiJ)
		copy(rho.Re, pair.Re)
		copy(rho.Im, pair.Im)
		op.g.Plan.PoissonSlabWS(pair, op.kernel, ws.fft)
		s := lanes.DotRe(rho, pair)
		if i != j {
			s *= 2
		}
		epair[t] = s
	})
	op.ws.Release(wss)
	var e float64
	for _, v := range epair {
		e += v
	}
	return -op.alpha * op.g.DVWave() * e
}
