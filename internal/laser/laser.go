// Package laser models the external field of section 4: a Gaussian-envelope
// laser pulse with 380 nm wavelength, coupled to the electrons in the
// velocity gauge through the vector potential A(t). In the velocity gauge
// the kinetic term becomes (1/2)|G + A(t)|^2, which is diagonal in the
// plane-wave basis - the natural choice for periodic supercells.
//
// E(t) = E0 * exp(-(t-t0)^2/(2 sigma^2)) * cos(omega (t-t0))
// A(t) = -integral_0^t E(t') dt' (computed analytically for this shape).
package laser

import (
	"math"

	"ptdft/internal/units"
)

// Pulse is a linearly polarized Gaussian laser pulse. The zero value is no
// field.
type Pulse struct {
	E0    float64    // peak field strength (Ha/bohr/e)
	Omega float64    // carrier angular frequency (au)
	T0    float64    // envelope center (au)
	Sigma float64    // envelope width (au)
	Pol   [3]float64 // unit polarization vector
}

// New380nm builds the paper's pulse: wavelength 380 nm, Gaussian envelope
// centered at t0 (au) with width sigma (au) and peak amplitude e0
// (Ha/bohr). Polarized along z.
func New380nm(e0, t0, sigma float64) *Pulse {
	return &Pulse{
		E0:    e0,
		Omega: units.WavelengthNmToOmegaAU(380),
		T0:    t0,
		Sigma: sigma,
		Pol:   [3]float64{0, 0, 1},
	}
}

// Efield returns the electric field vector at time t (au).
func (p *Pulse) Efield(t float64) [3]float64 {
	if p == nil || p.E0 == 0 {
		return [3]float64{}
	}
	dt := t - p.T0
	amp := p.E0 * math.Exp(-dt*dt/(2*p.Sigma*p.Sigma)) * math.Cos(p.Omega*dt)
	return [3]float64{amp * p.Pol[0], amp * p.Pol[1], amp * p.Pol[2]}
}

// Avec returns the vector potential A(t) = -int_0^t E dt', evaluated
// analytically: for a Gaussian envelope the integral is expressible with
// the complex error function; we use the closed form for the dominant term
// and numerically integrate the small envelope-derivative correction via
// 5-point Gauss-Legendre on [0, t] in steps bounded by the carrier period.
func (p *Pulse) Avec(t float64) [3]float64 {
	if p == nil || p.E0 == 0 {
		return [3]float64{}
	}
	// Numerical integration is robust for arbitrary parameters; the pulse
	// extends over a few hundred au at most, so a fixed fine step is cheap
	// compared to a single H*Psi application.
	integral := p.integralE(t)
	return [3]float64{-integral * p.Pol[0], -integral * p.Pol[1], -integral * p.Pol[2]}
}

// integralE computes int_0^t E(t') dt' with composite Simpson using a step
// well below the carrier period.
func (p *Pulse) integralE(t float64) float64 {
	if t == 0 {
		return 0
	}
	period := 2 * math.Pi / p.Omega
	h := period / 40
	n := int(math.Abs(t)/h) + 1
	if n%2 == 1 {
		n++
	}
	h = t / float64(n)
	e := func(tt float64) float64 {
		dt := tt - p.T0
		return p.E0 * math.Exp(-dt*dt/(2*p.Sigma*p.Sigma)) * math.Cos(p.Omega*dt)
	}
	sum := e(0) + e(t)
	for i := 1; i < n; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4.0
		}
		sum += w * e(float64(i)*h)
	}
	return sum * h / 3
}

// Kick is a delta-function vector-potential kick used for absorption
// spectra: A(t) = k * pol for t >= 0. It implements the same interface
// shape as Pulse through Field.
type Kick struct {
	K   float64
	Pol [3]float64
}

// Field abstracts a time-dependent external field: anything that yields a
// vector potential A(t). Nil fields mean no external driving.
type Field interface {
	// A returns the vector potential at time t (au).
	A(t float64) [3]float64
}

// A implements Field for Pulse.
func (p *Pulse) A(t float64) [3]float64 { return p.Avec(t) }

// A implements Field for Kick: constant vector potential after t = 0.
func (k *Kick) A(t float64) [3]float64 {
	if t < 0 {
		return [3]float64{}
	}
	return [3]float64{k.K * k.Pol[0], k.K * k.Pol[1], k.K * k.Pol[2]}
}
