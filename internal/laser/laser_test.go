package laser

import (
	"math"
	"testing"

	"ptdft/internal/units"
)

func TestPulseFrequencyIs380nm(t *testing.T) {
	p := New380nm(0.01, 200, 50)
	want := units.WavelengthNmToOmegaAU(380)
	if p.Omega != want {
		t.Errorf("omega = %g, want %g", p.Omega, want)
	}
	// 380 nm photon is ~3.26 eV.
	ev := p.Omega * units.EVPerHartree
	if math.Abs(ev-3.263) > 0.01 {
		t.Errorf("photon energy %g eV, want ~3.26", ev)
	}
}

func TestEfieldEnvelope(t *testing.T) {
	p := New380nm(0.02, 100, 20)
	// Peak at the envelope center.
	e0 := p.Efield(100)
	if math.Abs(e0[2]-0.02) > 1e-12 {
		t.Errorf("field at center = %v, want peak 0.02 on z", e0)
	}
	if e0[0] != 0 || e0[1] != 0 {
		t.Error("polarization leaked off z")
	}
	// Far outside the envelope the field is negligible.
	far := p.Efield(100 + 20*10)
	if math.Abs(far[2]) > 1e-12 {
		t.Errorf("field far outside envelope = %g", far[2])
	}
}

func TestAvecDerivativeIsMinusE(t *testing.T) {
	p := New380nm(0.01, 50, 15)
	// dA/dt = -E: finite-difference check at several times.
	for _, tt := range []float64{10, 40, 50, 60, 90} {
		h := 1e-3
		ap := p.Avec(tt + h)
		am := p.Avec(tt - h)
		dadt := (ap[2] - am[2]) / (2 * h)
		e := p.Efield(tt)[2]
		if math.Abs(dadt+e) > 1e-5*(1+math.Abs(e)) {
			t.Errorf("t=%g: dA/dt = %g, -E = %g", tt, dadt, -e)
		}
	}
}

func TestAvecZeroAtTZero(t *testing.T) {
	p := New380nm(0.01, 50, 15)
	if a := p.Avec(0); a[2] != 0 {
		t.Errorf("A(0) = %g, want 0", a[2])
	}
}

func TestNilAndZeroPulse(t *testing.T) {
	var p *Pulse
	if a := p.Avec(10); a != ([3]float64{}) {
		t.Error("nil pulse should produce zero A")
	}
	z := &Pulse{}
	if e := z.Efield(10); e != ([3]float64{}) {
		t.Error("zero pulse should produce zero E")
	}
}

func TestKickField(t *testing.T) {
	k := &Kick{K: 0.05, Pol: [3]float64{0, 0, 1}}
	if a := k.A(-1); a != ([3]float64{}) {
		t.Error("kick before t=0 should be zero")
	}
	if a := k.A(5); math.Abs(a[2]-0.05) > 1e-15 {
		t.Errorf("kick A = %v", a)
	}
}

func TestPulseImplementsField(t *testing.T) {
	var _ Field = (*Pulse)(nil)
	var _ Field = (*Kick)(nil)
}
