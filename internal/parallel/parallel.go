// Package parallel provides a small shared-memory work-distribution helper
// used by the numerical kernels. It stands in for the node-level parallel
// substrate (the GPU streaming multiprocessors in the paper's setting): the
// batched FFTs, GEMMs and point-wise kernels all distribute their work
// through For and ForBlock.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the number of concurrent workers. It defaults to
// runtime.GOMAXPROCS(0) and can be lowered for deterministic profiling.
var maxWorkers atomic.Int64

func init() {
	maxWorkers.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetMaxWorkers sets the worker bound for subsequent For/ForBlock calls.
// n < 1 resets to GOMAXPROCS. It returns the previous value.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(maxWorkers.Swap(int64(n)))
}

// MaxWorkers reports the current worker bound.
func MaxWorkers() int { return int(maxWorkers.Load()) }

// For runs f(i) for every i in [0, n) using up to MaxWorkers goroutines.
// Iterations are claimed dynamically in order, so mildly unbalanced loops
// still distribute well. f must be safe for concurrent invocation on
// distinct indices.
func For(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	w := MaxWorkers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// NumWorkers reports how many workers For and ForWorker would launch for an
// n-iteration loop: min(MaxWorkers, n), and at least 1. Callers that bind
// one scratch workspace per worker size their workspace table with it.
func NumWorkers(n int) int {
	w := MaxWorkers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForWorker is For with a stable worker identity: f(worker, i) runs for
// every i in [0, n), and all invocations with the same worker index execute
// sequentially on the same goroutine, with worker in [0, NumWorkers(n)).
// This lets callers bind one preallocated workspace (FFT scratch, pair
// buffers) per worker instead of allocating per iteration - the hot-path
// memory discipline of the Fock exchange.
func ForWorker(n int, f func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := NumWorkers(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(worker, i)
			}
		}(g)
	}
	wg.Wait()
}

// ForBlock runs f(lo, hi) over contiguous chunks that partition [0, n).
// It is preferred over For when per-iteration work is tiny (point-wise
// array kernels) so that each worker touches a contiguous range.
func ForBlock(n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := MaxWorkers()
	if w > n {
		w = n
	}
	if w <= 1 {
		f(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
