package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		var hits atomic.Int64
		seen := make([]atomic.Bool, n)
		For(n, func(i int) {
			if seen[i].Swap(true) {
				t.Errorf("index %d visited twice", i)
			}
			hits.Add(1)
		})
		if int(hits.Load()) != n {
			t.Errorf("n=%d: %d iterations executed", n, hits.Load())
		}
	}
}

func TestForBlockPartitions(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1001} {
		covered := make([]atomic.Int32, n)
		ForBlock(n, func(lo, hi int) {
			if lo >= hi {
				t.Errorf("empty block [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		for i := range covered {
			if covered[i].Load() != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, covered[i].Load())
			}
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	orig := MaxWorkers()
	defer SetMaxWorkers(orig)
	prev := SetMaxWorkers(1)
	if prev != orig {
		t.Errorf("SetMaxWorkers returned %d, want %d", prev, orig)
	}
	if MaxWorkers() != 1 {
		t.Error("worker bound not applied")
	}
	// Serial path still covers everything.
	var count atomic.Int64
	For(50, func(int) { count.Add(1) })
	if count.Load() != 50 {
		t.Error("serial For incomplete")
	}
	SetMaxWorkers(0) // resets to GOMAXPROCS
	if MaxWorkers() < 1 {
		t.Error("reset failed")
	}
}

func TestForWorkerCoversAllIndices(t *testing.T) {
	defer SetMaxWorkers(SetMaxWorkers(4)) // force real goroutine fan-out
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		var hits atomic.Int64
		seen := make([]atomic.Bool, n)
		nw := NumWorkers(n)
		ForWorker(n, func(w, i int) {
			if w < 0 || w >= nw {
				t.Errorf("worker index %d out of range [0,%d)", w, nw)
			}
			if seen[i].Swap(true) {
				t.Errorf("index %d visited twice", i)
			}
			hits.Add(1)
		})
		if int(hits.Load()) != n {
			t.Errorf("n=%d: %d iterations executed", n, hits.Load())
		}
	}
}

// The per-worker serialization contract: two iterations on the same worker
// index must never overlap in time, so worker-bound scratch needs no locks.
func TestForWorkerSerializesPerWorker(t *testing.T) {
	defer SetMaxWorkers(SetMaxWorkers(4))
	n := 500
	nw := NumWorkers(n)
	busy := make([]atomic.Bool, nw)
	var violations atomic.Int64
	ForWorker(n, func(w, i int) {
		if busy[w].Swap(true) {
			violations.Add(1)
		}
		for k := 0; k < 100; k++ {
			_ = k * k
		}
		busy[w].Store(false)
	})
	if violations.Load() != 0 {
		t.Errorf("%d overlapping executions on the same worker", violations.Load())
	}
}

func TestNumWorkersBounds(t *testing.T) {
	orig := MaxWorkers()
	defer SetMaxWorkers(orig)
	SetMaxWorkers(4)
	for _, tc := range []struct{ n, want int }{{0, 1}, {1, 1}, {3, 3}, {4, 4}, {100, 4}} {
		if got := NumWorkers(tc.n); got != tc.want {
			t.Errorf("NumWorkers(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestForConcurrentResultsDeterministic(t *testing.T) {
	// Work writing to disjoint slots must produce identical results
	// regardless of scheduling.
	n := 500
	a := make([]int, n)
	b := make([]int, n)
	For(n, func(i int) { a[i] = i * i })
	For(n, func(i int) { b[i] = i * i })
	for i := range a {
		if a[i] != b[i] || a[i] != i*i {
			t.Fatalf("nondeterministic or wrong result at %d", i)
		}
	}
}
