package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		var hits atomic.Int64
		seen := make([]atomic.Bool, n)
		For(n, func(i int) {
			if seen[i].Swap(true) {
				t.Errorf("index %d visited twice", i)
			}
			hits.Add(1)
		})
		if int(hits.Load()) != n {
			t.Errorf("n=%d: %d iterations executed", n, hits.Load())
		}
	}
}

func TestForBlockPartitions(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1001} {
		covered := make([]atomic.Int32, n)
		ForBlock(n, func(lo, hi int) {
			if lo >= hi {
				t.Errorf("empty block [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		for i := range covered {
			if covered[i].Load() != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, covered[i].Load())
			}
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	orig := MaxWorkers()
	defer SetMaxWorkers(orig)
	prev := SetMaxWorkers(1)
	if prev != orig {
		t.Errorf("SetMaxWorkers returned %d, want %d", prev, orig)
	}
	if MaxWorkers() != 1 {
		t.Error("worker bound not applied")
	}
	// Serial path still covers everything.
	var count atomic.Int64
	For(50, func(int) { count.Add(1) })
	if count.Load() != 50 {
		t.Error("serial For incomplete")
	}
	SetMaxWorkers(0) // resets to GOMAXPROCS
	if MaxWorkers() < 1 {
		t.Error("reset failed")
	}
}

func TestForConcurrentResultsDeterministic(t *testing.T) {
	// Work writing to disjoint slots must produce identical results
	// regardless of scheduling.
	n := 500
	a := make([]int, n)
	b := make([]int, n)
	For(n, func(i int) { a[i] = i * i })
	For(n, func(i int) { b[i] = i * i })
	for i := range a {
		if a[i] != b[i] || a[i] != i*i {
			t.Fatalf("nondeterministic or wrong result at %d", i)
		}
	}
}
