package parallel

import "sync"

// ScratchPool recycles per-worker scratch for ForWorker loops. T should be
// a pointer type; New builds one workspace. Acquire hands out a table of n
// workspaces and Release returns it - both the workspaces and the table
// itself are recycled, so sequential acquire/release cycles allocate
// nothing in steady state. Concurrent acquirers never block and never
// share scratch: a second caller simply builds a transient table
// (correctness first, recycling for the steady state). Get/Put serve
// single-workspace callers from the same pool.
type ScratchPool[T any] struct {
	// New builds one workspace; must be set before first use.
	New func() T

	pool sync.Pool
	mu   sync.Mutex
	tab  []T
}

// Acquire returns a table of n workspaces, one per worker index.
func (p *ScratchPool[T]) Acquire(n int) []T {
	p.mu.Lock()
	t := p.tab
	p.tab = nil
	p.mu.Unlock()
	if cap(t) < n {
		t = make([]T, 0, n)
	}
	t = t[:0]
	for i := 0; i < n; i++ {
		t = append(t, p.Get())
	}
	return t
}

// Release returns an Acquire table and its workspaces to the pool.
func (p *ScratchPool[T]) Release(t []T) {
	for _, ws := range t {
		p.pool.Put(ws)
	}
	p.mu.Lock()
	if cap(p.tab) < cap(t) {
		p.tab = t[:0]
	}
	p.mu.Unlock()
}

// Get checks out a single workspace.
func (p *ScratchPool[T]) Get() T {
	if ws, ok := p.pool.Get().(T); ok {
		return ws
	}
	return p.New()
}

// Put returns a single workspace to the pool.
func (p *ScratchPool[T]) Put(ws T) { p.pool.Put(ws) }
