// Package xc implements the exchange-correlation models: the semi-local
// LDA (Slater exchange + Perdew-Zunger 81 correlation) and the hybrid
// functional parameters of the screened short-range Fock exchange
// (HSE06-like: mixing fraction alpha = 0.25, screening omega = 0.106
// bohr^-1). In the hybrid, a fraction alpha of the short-range semi-local
// exchange is replaced by explicit short-range Fock exchange evaluated by
// internal/fock; the semi-local part here is correspondingly attenuated.
//
// The paper uses HSE06 on top of PBE; we use HSE-like mixing on top of LDA.
// The Fock operator structure - the cost and communication driver - is
// identical (see DESIGN.md deviation #1).
package xc

import "math"

// HybridParams collects the screened-exchange mixing parameters.
type HybridParams struct {
	Alpha float64 // Fock exchange mixing fraction
	Omega float64 // screening parameter (bohr^-1)
}

// HSE06 returns the standard HSE06 mixing parameters.
func HSE06() HybridParams { return HybridParams{Alpha: 0.25, Omega: 0.106} }

// ScreenedKernel returns the short-range Coulomb kernel in reciprocal
// space, K(G) = 4*pi*(1 - exp(-G^2/(4 omega^2)))/G^2, with the finite
// G -> 0 limit pi/omega^2. This is the kernel of the Fock exchange
// operator (Eq. 3); its finite zero-G limit is what makes the screened
// hybrid well defined at the Gamma point without divergence corrections.
func (h HybridParams) ScreenedKernel(g2 float64) float64 {
	if h.Omega <= 0 {
		// Unscreened Coulomb: caller must regularize G = 0 itself.
		if g2 < 1e-12 {
			return 0
		}
		return 4 * math.Pi / g2
	}
	x := g2 / (4 * h.Omega * h.Omega)
	if x < 1e-8 {
		// Series: (1 - e^-x)/x -> 1 - x/2 + ...
		return math.Pi / (h.Omega * h.Omega) * (1 - x/2)
	}
	return 4 * math.Pi * (1 - math.Exp(-x)) / g2
}

// LDA evaluates the local density approximation energy density and
// potential at density rho (electrons/bohr^3): returns eps_xc (Ha per
// electron) and v_xc (Ha). Slater exchange + PZ81 correlation.
// exScale attenuates the semi-local exchange (1 for pure LDA, 1-alpha for
// the hybrid, where alpha of the exchange is handled by the Fock term).
func LDA(rho, exScale float64) (eps, v float64) {
	if rho <= 1e-14 {
		return 0, 0
	}
	// Slater exchange.
	cx := -0.75 * math.Pow(3/math.Pi, 1.0/3)
	rho13 := math.Pow(rho, 1.0/3)
	ex := cx * rho13             // energy per electron
	vx := 4.0 / 3.0 * cx * rho13 // d(rho*ex)/d(rho)
	ex *= exScale
	vx *= exScale

	// PZ81 correlation with rs = (3/(4 pi rho))^(1/3).
	rs := math.Pow(3/(4*math.Pi*rho), 1.0/3)
	var ec, vc float64
	if rs < 1 {
		const (
			a = 0.0311
			b = -0.048
			c = 0.0020
			d = -0.0116
		)
		ln := math.Log(rs)
		ec = a*ln + b + c*rs*ln + d*rs
		vc = a*ln + (b - a/3) + 2.0/3.0*c*rs*ln + (2*d-c)/3*rs
	} else {
		const (
			gamma = -0.1423
			beta1 = 1.0529
			beta2 = 0.3334
		)
		sq := math.Sqrt(rs)
		den := 1 + beta1*sq + beta2*rs
		ec = gamma / den
		vc = ec * (1 + 7.0/6.0*beta1*sq + 4.0/3.0*beta2*rs) / den
	}
	return ex + ec, vx + vc
}
