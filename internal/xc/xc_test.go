package xc

import (
	"math"
	"testing"
)

func TestScreenedKernelLimits(t *testing.T) {
	h := HSE06()
	// G -> 0 limit is pi/omega^2 (finite - the property that makes the
	// screened hybrid Gamma-point safe).
	want := math.Pi / (h.Omega * h.Omega)
	if got := h.ScreenedKernel(0); math.Abs(got-want) > 1e-6*want {
		t.Errorf("K(0) = %g, want %g", got, want)
	}
	// Large G: approaches bare Coulomb 4*pi/G^2.
	g2 := 100.0
	if got, wantC := h.ScreenedKernel(g2), 4*math.Pi/g2; math.Abs(got-wantC) > 1e-6*wantC {
		t.Errorf("K(large G) = %g, want %g", got, wantC)
	}
	// Monotone decreasing and positive.
	prev := h.ScreenedKernel(0)
	for g2 := 0.01; g2 < 50; g2 += 0.01 {
		v := h.ScreenedKernel(g2)
		if v <= 0 {
			t.Fatalf("kernel non-positive at g2=%g", g2)
		}
		if v > prev+1e-12 {
			t.Fatalf("kernel not monotone at g2=%g", g2)
		}
		prev = v
	}
}

func TestScreenedKernelSeriesBranchContinuity(t *testing.T) {
	h := HSE06()
	// The small-x series branch must join the general expression smoothly.
	x := 1e-8 * 4 * h.Omega * h.Omega
	a := h.ScreenedKernel(x * 0.999)
	b := h.ScreenedKernel(x * 1.001)
	if math.Abs(a-b) > 1e-6*a {
		t.Errorf("kernel discontinuous across series branch: %g vs %g", a, b)
	}
}

func TestUnscreenedKernel(t *testing.T) {
	h := HybridParams{Alpha: 1, Omega: 0}
	if h.ScreenedKernel(0) != 0 {
		t.Error("unscreened kernel at G=0 should be regularized to 0")
	}
	if got, want := h.ScreenedKernel(4.0), math.Pi; math.Abs(got-want) > 1e-12 {
		t.Errorf("unscreened K(4) = %g, want pi", got)
	}
}

func TestLDASignsAndScaling(t *testing.T) {
	for _, rho := range []float64{1e-6, 0.01, 0.1, 1, 10} {
		eps, v := LDA(rho, 1)
		if eps >= 0 || v >= 0 {
			t.Errorf("rho=%g: LDA eps=%g v=%g, want negative", rho, eps, v)
		}
	}
	// Zero density is safe.
	if eps, v := LDA(0, 1); eps != 0 || v != 0 {
		t.Error("LDA at zero density should vanish")
	}
}

func TestLDAExchangeAttenuation(t *testing.T) {
	rho := 0.5
	e1, v1 := LDA(rho, 1)
	e75, v75 := LDA(rho, 0.75)
	// Attenuating exchange makes both less negative, by exactly a quarter
	// of the Slater exchange part.
	cx := -0.75 * math.Pow(3/math.Pi, 1.0/3)
	dex := 0.25 * cx * math.Pow(rho, 1.0/3)
	if math.Abs((e1-e75)-dex) > 1e-12 {
		t.Errorf("exchange attenuation wrong in eps: %g vs %g", e1-e75, dex)
	}
	dvx := 0.25 * 4.0 / 3.0 * cx * math.Pow(rho, 1.0/3)
	if math.Abs((v1-v75)-dvx) > 1e-12 {
		t.Errorf("exchange attenuation wrong in v: %g vs %g", v1-v75, dvx)
	}
}

func TestLDACorrelationContinuityAtRs1(t *testing.T) {
	// The published PZ81 parametrization has a known tiny mismatch at the
	// rs = 1 branch point (a few 1e-5 Ha); verify it stays at that level.
	// rs = 1 corresponds to rho = 3/(4 pi).
	rho := 3 / (4 * math.Pi)
	e1, _ := LDA(rho*(1+1e-9), 1)
	e2, _ := LDA(rho*(1-1e-9), 1)
	if math.Abs(e1-e2) > 1e-4 {
		t.Errorf("PZ correlation discontinuous at rs=1 beyond the known mismatch: %g vs %g", e1, e2)
	}
}

func TestHSE06Parameters(t *testing.T) {
	h := HSE06()
	if h.Alpha != 0.25 {
		t.Errorf("alpha = %g, want 0.25", h.Alpha)
	}
	if math.Abs(h.Omega-0.106) > 1e-12 {
		t.Errorf("omega = %g, want 0.106", h.Omega)
	}
}
