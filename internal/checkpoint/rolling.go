// Rolling checkpoints: a sequence of durable step-stamped files behind a
// stable "last-good" symlink, so a crash at ANY instant - including mid
// checkpoint write - leaves a complete, checksummed state reachable under
// one well-known name. The recovery supervisor (dist.RunResilient) and
// the -ckptevery cadence of cmd/ptdft write through this.
package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Rolling manages the rolling checkpoint sequence rooted at Base:
//
//	<Base>.step0000000012   one durable checkpoint per saved step
//	<Base>                  symlink to the newest complete checkpoint
//
// Save appends a new step file with SaveFile's fsync-before-rename
// discipline, then atomically retargets the symlink, then prunes old
// step files beyond Keep. The symlink is only ever moved AFTER its new
// target is fully durable, and pruning spares the last Keep files, so
// the previous checkpoint survives until a newer one is complete.
type Rolling struct {
	Base string
	Keep int // completed checkpoints to retain; <= 0 means 2
}

func (rl *Rolling) keep() int {
	if rl.Keep <= 0 {
		return 2
	}
	return rl.Keep
}

func (rl *Rolling) stepPath(step int64) string {
	return fmt.Sprintf("%s.step%010d", rl.Base, step)
}

// Save durably writes s as the newest checkpoint of the sequence and
// retargets the last-good symlink at it.
func (rl *Rolling) Save(s *State) error {
	name := rl.stepPath(s.Step)
	if err := SaveFile(name, s); err != nil {
		return err
	}
	// Retarget <Base> atomically: build the new symlink under a side name
	// and rename it over the old one (symlinks cannot be repointed in
	// place). The target is relative so the directory stays relocatable.
	tmp := name + ".lnk"
	os.Remove(tmp)
	if err := os.Symlink(filepath.Base(name), tmp); err != nil {
		return fmt.Errorf("checkpoint: rolling link: %w", err)
	}
	if err := os.Rename(tmp, rl.Base); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: rolling link: %w", err)
	}
	syncDir(filepath.Dir(rl.Base))
	rl.prune()
	return nil
}

// prune removes step files beyond the retention count, oldest first.
// Best-effort: a failed remove never fails a save.
func (rl *Rolling) prune() {
	files := rl.stepFiles()
	for i := 0; i+rl.keep() < len(files); i++ {
		os.Remove(files[i])
	}
}

// stepFiles lists the sequence's step files sorted oldest to newest (the
// zero-padded step stamp makes lexical order numeric order).
func (rl *Rolling) stepFiles() []string {
	matches, _ := filepath.Glob(rl.Base + ".step*")
	var files []string
	for _, m := range matches {
		if filepath.Ext(m) == ".lnk" {
			continue
		}
		files = append(files, m)
	}
	sort.Strings(files)
	return files
}

// Clean removes every file of the sequence: the step files and the
// last-good symlink. The job server calls this when a job's trajectory is
// complete and its result recorded - the checkpoints were only ever crash
// insurance. Best-effort: missing files are not errors.
func (rl *Rolling) Clean() {
	for _, f := range rl.stepFiles() {
		os.Remove(f)
	}
	os.Remove(rl.Base)
}

// Latest loads the newest good checkpoint of the sequence, returning the
// state and the path it came from. The last-good symlink is tried first;
// if it dangles or its target fails verification (a torn or corrupted
// file), the step files are scanned newest first and the first one that
// loads cleanly wins. Only when no file of the sequence is loadable does
// Latest return an error (wrapping os.ErrNotExist when the sequence is
// empty).
func (rl *Rolling) Latest() (*State, string, error) {
	var firstErr error
	if target, err := os.Readlink(rl.Base); err == nil {
		p := target
		if !filepath.IsAbs(p) {
			p = filepath.Join(filepath.Dir(rl.Base), target)
		}
		if s, err := LoadFile(p); err == nil {
			return s, p, nil
		} else {
			firstErr = err
		}
	} else if s, err := LoadFile(rl.Base); err == nil {
		// Base may be a plain checkpoint file from a pre-rolling run.
		return s, rl.Base, nil
	}
	files := rl.stepFiles()
	for i := len(files) - 1; i >= 0; i-- {
		s, err := LoadFile(files[i])
		if err == nil {
			return s, files[i], nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, "", fmt.Errorf("checkpoint: no loadable checkpoint under %s (newest damage: %w)", rl.Base, firstErr)
	}
	return nil, "", fmt.Errorf("checkpoint: no checkpoint under %s: %w", rl.Base, os.ErrNotExist)
}
