package checkpoint

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleState(rng *rand.Rand) *State {
	nb, ng := 4, 37
	psi := make([]complex128, nb*ng)
	for i := range psi {
		psi[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return &State{
		Time: 12.625, Step: 42, NBands: nb, NG: ng,
		Natom: 8, Ecut: 4, Hybrid: true, Psi: psi,
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := sampleState(rng)
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != s.Time || got.Step != s.Step || got.NBands != s.NBands ||
		got.NG != s.NG || got.Natom != s.Natom || got.Ecut != s.Ecut || got.Hybrid != s.Hybrid {
		t.Errorf("metadata mismatch: %+v vs %+v", got, s)
	}
	for i := range s.Psi {
		if got.Psi[i] != s.Psi[i] {
			t.Fatalf("psi differs at %d", i)
		}
	}
}

func TestFileRoundTripAtomic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := sampleState(rng)
	path := filepath.Join(t.TempDir(), "state.ckp")
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 42 {
		t.Error("file round trip lost data")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := sampleState(rng)
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Error("corruption not detected")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := sampleState(rng)
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-20]
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Error("truncation not detected")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := Load(bytes.NewReader(make([]byte, 100))); err == nil {
		t.Error("bad magic not detected")
	}
}

func TestSaveRejectsInconsistentState(t *testing.T) {
	s := &State{NBands: 2, NG: 10, Psi: make([]complex128, 5)}
	if err := Save(&bytes.Buffer{}, s); err == nil {
		t.Error("inconsistent psi length not rejected")
	}
}

func TestCompatible(t *testing.T) {
	s := &State{NBands: 16, NG: 257, Natom: 8, Ecut: 3, Hybrid: true}
	if err := s.Compatible(16, 257, 8, 3, true); err != nil {
		t.Errorf("unexpected incompatibility: %v", err)
	}
	if err := s.Compatible(16, 257, 8, 4, true); err == nil {
		t.Error("Ecut mismatch not detected")
	}
	if err := s.Compatible(32, 257, 8, 3, true); err == nil {
		t.Error("band mismatch not detected")
	}
	// A hybrid checkpoint must not resume under a semi-local Hamiltonian
	// (or vice versa) - the propagated trajectories are not interchangeable.
	if err := s.Compatible(16, 257, 8, 3, false); err == nil {
		t.Error("hybrid mismatch not detected")
	} else if !strings.Contains(err.Error(), "hybrid") {
		t.Errorf("hybrid mismatch error not descriptive: %v", err)
	}
	sl := &State{NBands: 16, NG: 257, Natom: 8, Ecut: 3, Hybrid: false}
	if err := sl.Compatible(16, 257, 8, 3, true); err == nil {
		t.Error("semi-local state resumed under hybrid not detected")
	}
}

// TestContinuationStepAccounting pins the cumulative step provenance of a
// split production run: each segment's saved Step must be the loaded
// counter plus its own steps, through a save -> load -> continue chain.
func TestContinuationStepAccounting(t *testing.T) {
	if got := ContinuationStep(nil, 200); got != 200 {
		t.Errorf("fresh run: step %d, want 200", got)
	}
	rng := rand.New(rand.NewSource(5))
	path := filepath.Join(t.TempDir(), "segment.ckp")
	var loaded *State
	// A 600-step run split into three 200-step segments.
	for seg := 1; seg <= 3; seg++ {
		st := sampleState(rng)
		st.Step = ContinuationStep(loaded, 200)
		if err := SaveFile(path, st); err != nil {
			t.Fatal(err)
		}
		var err error
		if loaded, err = LoadFile(path); err != nil {
			t.Fatal(err)
		}
		if want := int64(200 * seg); loaded.Step != want {
			t.Fatalf("segment %d: step counter %d, want %d", seg, loaded.Step, want)
		}
	}
}
