package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleState(rng *rand.Rand) *State {
	nb, ng := 4, 37
	psi := make([]complex128, nb*ng)
	for i := range psi {
		psi[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return &State{
		Time: 12.625, Step: 42, NBands: nb, NG: ng,
		Natom: 8, Ecut: 4, Hybrid: true, Psi: psi,
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := sampleState(rng)
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != s.Time || got.Step != s.Step || got.NBands != s.NBands ||
		got.NG != s.NG || got.Natom != s.Natom || got.Ecut != s.Ecut || got.Hybrid != s.Hybrid {
		t.Errorf("metadata mismatch: %+v vs %+v", got, s)
	}
	for i := range s.Psi {
		if got.Psi[i] != s.Psi[i] {
			t.Fatalf("psi differs at %d", i)
		}
	}
}

// TestRoundTripMTS: the version-2 MTS section - period, phase, and the
// frozen exchange reference of a mid-cycle save - survives a round trip
// bit for bit.
func TestRoundTripMTS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := sampleState(rng)
	s.MTSPeriod, s.MTSPhase, s.MTSACE = 4, 3, true
	s.PhiRef = make([]complex128, len(s.Psi))
	for i := range s.PhiRef {
		s.PhiRef[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.MTSPeriod != 4 || got.MTSPhase != 3 || !got.MTSACE {
		t.Errorf("MTS cadence lost: period %d phase %d ace %v", got.MTSPeriod, got.MTSPhase, got.MTSACE)
	}
	for i := range s.PhiRef {
		if got.PhiRef[i] != s.PhiRef[i] {
			t.Fatalf("frozen reference differs at %d", i)
		}
	}
	// A reference block of the wrong shape must be rejected at save time.
	s.PhiRef = s.PhiRef[:len(s.PhiRef)-1]
	if err := Save(&bytes.Buffer{}, s); err == nil {
		t.Error("misshapen frozen reference accepted")
	}
}

// TestLoadVersion1 keeps the pre-MTS format readable: a hand-written
// version-1 stream (9-word header, psi, checksum) loads with zero cadence
// state.
func TestLoadVersion1(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := sampleState(rng)
	var raw bytes.Buffer
	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	mw := io.MultiWriter(&raw, crc)
	header := []uint64{
		magic, 1,
		math.Float64bits(s.Time), uint64(s.Step),
		uint64(s.NBands), uint64(s.NG), uint64(s.Natom),
		math.Float64bits(s.Ecut), 1,
	}
	for _, h := range header {
		if err := binary.Write(mw, binary.LittleEndian, h); err != nil {
			t.Fatal(err)
		}
	}
	if err := writeComplex(mw, s.Psi); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(&raw, binary.LittleEndian, crc.Sum64()); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&raw)
	if err != nil {
		t.Fatalf("version-1 stream rejected: %v", err)
	}
	if got.Step != s.Step || !got.Hybrid {
		t.Errorf("version-1 metadata lost: %+v", got)
	}
	if got.MTSPeriod != 0 || got.MTSPhase != 0 || got.MTSACE || got.PhiRef != nil {
		t.Errorf("version-1 load invented MTS state: %+v", got)
	}
	for i := range s.Psi {
		if got.Psi[i] != s.Psi[i] {
			t.Fatalf("psi differs at %d", i)
		}
	}
}

// TestRoundTripIon: the version-3 ion section - positions, velocities,
// force cache and the ion-step counter - survives a round trip bit for
// bit, and inconsistent sections are rejected at save time.
func TestRoundTripIon(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := sampleState(rng)
	s.IonSteps = 17
	n := int(s.Natom)
	s.IonPos = make([][3]float64, n)
	s.IonVel = make([][3]float64, n)
	s.IonForce = make([][3]float64, n)
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			s.IonPos[i][d] = rng.NormFloat64()
			s.IonVel[i][d] = rng.NormFloat64() * 1e-4
			s.IonForce[i][d] = rng.NormFloat64() * 1e-2
		}
	}
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasIons() || got.IonSteps != 17 {
		t.Fatalf("ion section lost: HasIons=%v IonSteps=%d", got.HasIons(), got.IonSteps)
	}
	for i := 0; i < n; i++ {
		if got.IonPos[i] != s.IonPos[i] || got.IonVel[i] != s.IonVel[i] || got.IonForce[i] != s.IonForce[i] {
			t.Fatalf("ion state differs at atom %d", i)
		}
	}
	// Section shape mismatches must be rejected at save time.
	bad := *s
	bad.IonVel = bad.IonVel[:n-1]
	if err := Save(&bytes.Buffer{}, &bad); err == nil {
		t.Error("misshapen ion velocity block accepted")
	}
	bad = *s
	bad.IonPos = bad.IonPos[:n-1]
	bad.IonVel = bad.IonVel[:n-1]
	bad.IonForce = bad.IonForce[:n-1]
	if err := Save(&bytes.Buffer{}, &bad); err == nil {
		t.Error("ion section with wrong atom count accepted")
	}
}

// TestLoadRejectsImplausibleIonCount: a corrupt version-3 header whose
// ion-count word is garbage must fail with an error before any
// header-sized allocation happens (no makeslice panic, no OOM).
func TestLoadRejectsImplausibleIonCount(t *testing.T) {
	var raw bytes.Buffer
	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	mw := io.MultiWriter(&raw, crc)
	header := []uint64{
		magic, 3,
		math.Float64bits(1.0), 1,
		1, 1, 1 << 60, // Natom garbage
		math.Float64bits(3.0), 0,
		0, 0, 0, 0,
		1 << 60, 0, // nion garbage matching Natom
	}
	for _, h := range header {
		if err := binary.Write(mw, binary.LittleEndian, h); err != nil {
			t.Fatal(err)
		}
	}
	_, err := Load(&raw)
	if err == nil {
		t.Fatal("implausible ion count accepted")
	}
	if !strings.Contains(err.Error(), "ion count") {
		t.Errorf("error does not name the ion count: %v", err)
	}
}

// TestLoadVersion2 keeps the MTS-era format readable: a hand-written
// version-2 stream (13-word header, psi, frozen reference, checksum)
// loads with its cadence state intact and no invented ion section.
func TestLoadVersion2(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := sampleState(rng)
	phiRef := make([]complex128, len(s.Psi))
	for i := range phiRef {
		phiRef[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var raw bytes.Buffer
	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	mw := io.MultiWriter(&raw, crc)
	header := []uint64{
		magic, 2,
		math.Float64bits(s.Time), uint64(s.Step),
		uint64(s.NBands), uint64(s.NG), uint64(s.Natom),
		math.Float64bits(s.Ecut), 1,
		4, 3, 1, uint64(s.NBands),
	}
	for _, h := range header {
		if err := binary.Write(mw, binary.LittleEndian, h); err != nil {
			t.Fatal(err)
		}
	}
	if err := writeComplex(mw, s.Psi); err != nil {
		t.Fatal(err)
	}
	if err := writeComplex(mw, phiRef); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(&raw, binary.LittleEndian, crc.Sum64()); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&raw)
	if err != nil {
		t.Fatalf("version-2 stream rejected: %v", err)
	}
	if got.MTSPeriod != 4 || got.MTSPhase != 3 || !got.MTSACE {
		t.Errorf("version-2 MTS state lost: %+v", got)
	}
	for i := range phiRef {
		if got.PhiRef[i] != phiRef[i] {
			t.Fatalf("frozen reference differs at %d", i)
		}
	}
	if got.HasIons() || got.IonSteps != 0 {
		t.Errorf("version-2 load invented ion state: %+v", got)
	}
}

func TestFileRoundTripAtomic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := sampleState(rng)
	path := filepath.Join(t.TempDir(), "state.ckp")
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 42 {
		t.Error("file round trip lost data")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := sampleState(rng)
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Error("corruption not detected")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := sampleState(rng)
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-20]
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Error("truncation not detected")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := Load(bytes.NewReader(make([]byte, 100))); err == nil {
		t.Error("bad magic not detected")
	}
}

func TestSaveRejectsInconsistentState(t *testing.T) {
	s := &State{NBands: 2, NG: 10, Psi: make([]complex128, 5)}
	if err := Save(&bytes.Buffer{}, s); err == nil {
		t.Error("inconsistent psi length not rejected")
	}
}

func TestCompatible(t *testing.T) {
	s := &State{NBands: 16, NG: 257, Natom: 8, Ecut: 3, Hybrid: true}
	if err := s.Compatible(16, 257, 8, 3, true, 0, false, false); err != nil {
		t.Errorf("unexpected incompatibility: %v", err)
	}
	if err := s.Compatible(16, 257, 8, 4, true, 0, false, false); err == nil {
		t.Error("Ecut mismatch not detected")
	}
	if err := s.Compatible(32, 257, 8, 3, true, 0, false, false); err == nil {
		t.Error("band mismatch not detected")
	}
	// A hybrid checkpoint must not resume under a semi-local Hamiltonian
	// (or vice versa) - the propagated trajectories are not interchangeable.
	if err := s.Compatible(16, 257, 8, 3, false, 0, false, false); err == nil {
		t.Error("hybrid mismatch not detected")
	} else if !strings.Contains(err.Error(), "hybrid") {
		t.Errorf("hybrid mismatch error not descriptive: %v", err)
	}
	sl := &State{NBands: 16, NG: 257, Natom: 8, Ecut: 3, Hybrid: false}
	if err := sl.Compatible(16, 257, 8, 3, true, 0, false, false); err == nil {
		t.Error("semi-local state resumed under hybrid not detected")
	}
}

// TestCompatibleMessagesReportExpectedVsGot pins the error-message
// contract: every mismatch names the field and reports the checkpoint's
// value against the run's, so the operator knows which flag to fix without
// reading code.
func TestCompatibleMessagesReportExpectedVsGot(t *testing.T) {
	s := &State{NBands: 16, NG: 257, Natom: 8, Ecut: 3, Hybrid: true}
	cases := []struct {
		name string
		err  error
		want []string
	}{
		{"bands", s.Compatible(32, 257, 8, 3, true, 0, false, false),
			[]string{"band count", "checkpoint has 16", "run has 32"}},
		{"ng", s.Compatible(16, 300, 8, 3, true, 0, false, false),
			[]string{"G-sphere size", "checkpoint has 257", "run has 300"}},
		{"natom", s.Compatible(16, 257, 64, 3, true, 0, false, false),
			[]string{"atom count", "checkpoint has 8", "run has 64"}},
		{"ecut", s.Compatible(16, 257, 8, 10, true, 0, false, false),
			[]string{"energy cutoff", "checkpoint has 3 Ha", "run has 10 Ha"}},
		{"hybrid", s.Compatible(16, 257, 8, 3, false, 0, false, false),
			[]string{"functional", "checkpoint has hybrid=true", "run has hybrid=false"}},
		{"md", s.Compatible(16, 257, 8, 3, true, 0, false, true),
			[]string{"ion dynamics", "checkpoint has md=false", "run has md=true"}},
	}
	mid := &State{NBands: 16, NG: 257, Natom: 8, Ecut: 3, Hybrid: true,
		MTSPeriod: 4, MTSPhase: 2, MTSACE: true, PhiRef: make([]complex128, 16*257)}
	cases = append(cases,
		struct {
			name string
			err  error
			want []string
		}{"mts", mid.Compatible(16, 257, 8, 3, true, 2, true, false),
			[]string{"mts period", "checkpoint has 4", "run has 2"}},
		struct {
			name string
			err  error
			want []string
		}{"ace", mid.Compatible(16, 257, 8, 3, true, 4, false, false),
			[]string{"exchange operator", "ACE-compressed exchange", "exact exchange"}},
	)
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: mismatch not detected", tc.name)
			continue
		}
		for _, w := range tc.want {
			if !strings.Contains(tc.err.Error(), w) {
				t.Errorf("%s: error %q does not report %q", tc.name, tc.err, w)
			}
		}
	}
}

// TestCompatibleMTS pins the cadence rules of a resume: a mid-cycle state
// is bound to its refresh period and must carry the frozen reference; a
// cycle-boundary state may change cadence freely.
func TestCompatibleMTS(t *testing.T) {
	n := 16 * 257
	mid := &State{NBands: 16, NG: 257, Natom: 8, Ecut: 3, Hybrid: true,
		MTSPeriod: 4, MTSPhase: 2, MTSACE: true, PhiRef: make([]complex128, n)}
	if err := mid.Compatible(16, 257, 8, 3, true, 4, true, false); err != nil {
		t.Errorf("matching mid-cycle resume rejected: %v", err)
	}
	if err := mid.Compatible(16, 257, 8, 3, true, 0, true, false); err == nil {
		t.Error("mid-cycle state resumed without -mts not detected")
	} else if !strings.Contains(err.Error(), "-mts") {
		t.Errorf("cadence mismatch error not descriptive: %v", err)
	}
	if err := mid.Compatible(16, 257, 8, 3, true, 2, true, false); err == nil {
		t.Error("mid-cycle period change not detected")
	}
	// The frozen operator kind is pinned too: the same orbitals back a
	// different operator under -ace vs exact exchange, so flipping the
	// flag mid-cycle must be loud, not a silent reconstruction.
	if err := mid.Compatible(16, 257, 8, 3, true, 4, false, false); err == nil {
		t.Error("mid-cycle ACE-to-exact flip not detected")
	} else if !strings.Contains(err.Error(), "-ace") {
		t.Errorf("operator-kind mismatch error not descriptive: %v", err)
	}
	mid.MTSACE = false
	if err := mid.Compatible(16, 257, 8, 3, true, 4, true, false); err == nil {
		t.Error("mid-cycle exact-to-ACE flip not detected")
	}
	mid.MTSACE = true
	mid.PhiRef = nil
	if err := mid.Compatible(16, 257, 8, 3, true, 4, true, false); err == nil {
		t.Error("mid-cycle state without frozen reference not detected")
	}
	// At a cycle boundary the cadence (period and operator kind) may
	// change: the next step is an outer step under any setting.
	boundary := &State{NBands: 16, NG: 257, Natom: 8, Ecut: 3, Hybrid: true, MTSPeriod: 4, MTSACE: true}
	for _, mts := range []int{0, 1, 2, 4, 8} {
		if err := boundary.Compatible(16, 257, 8, 3, true, mts, false, false); err != nil {
			t.Errorf("cycle-boundary resume under -mts %d rejected: %v", mts, err)
		}
	}
}

// TestContinuationStepAccounting pins the cumulative step provenance of a
// split production run: each segment's saved Step must be the loaded
// counter plus its own steps, through a save -> load -> continue chain.
func TestContinuationStepAccounting(t *testing.T) {
	if got := ContinuationStep(nil, 200); got != 200 {
		t.Errorf("fresh run: step %d, want 200", got)
	}
	rng := rand.New(rand.NewSource(5))
	path := filepath.Join(t.TempDir(), "segment.ckp")
	var loaded *State
	// A 600-step run split into three 200-step segments.
	for seg := 1; seg <= 3; seg++ {
		st := sampleState(rng)
		st.Step = ContinuationStep(loaded, 200)
		if err := SaveFile(path, st); err != nil {
			t.Fatal(err)
		}
		var err error
		if loaded, err = LoadFile(path); err != nil {
			t.Fatal(err)
		}
		if want := int64(200 * seg); loaded.Step != want {
			t.Fatalf("segment %d: step counter %d, want %d", seg, loaded.Step, want)
		}
	}
}
