// Package checkpoint serializes and restores rt-TDDFT simulation state -
// wavefunctions, simulation time, and metadata - so long runs (the paper's
// production runs are 600 steps over many hours) can be split across job
// allocations. The format is a versioned little-endian binary stream with
// a whole-file checksum. Version 2 adds the multiple-time-stepping (MTS)
// cadence state: the refresh period, the phase within the M-step cycle,
// and - when the save lands mid-cycle - the frozen exchange reference
// orbitals of the last outer step, so a resumed segment reconstructs the
// identical frozen operator instead of silently refreshing early. Version
// 3 adds the Ehrenfest ion section: positions, velocities and the cached
// force of every atom, so an interrupted MD trajectory resumes
// bit-compatibly (the first half kick after the resume uses the stored
// force, not a recomputation subject to parallel reduction order).
// Version 4 hardens the stream for fault-tolerant operation: the header
// and each payload section (psi, frozen reference, ions) carry their own
// CRC64, so corruption is localized to a named field and byte range and a
// damaged header is rejected before any payload-sized allocation. All
// older versions still load.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
)

const (
	magic   = 0x70746466_74636b70 // "ptdftckp"
	version = 4
)

var crcTab = crc64.MakeTable(crc64.ECMA)

// State is the restartable simulation state.
type State struct {
	Time   float64 // simulation time (au)
	Step   int64   // step counter
	NBands int
	NG     int
	Natom  int64 // system identification for mismatch detection
	Ecut   float64
	Hybrid bool
	Psi    []complex128 // band-major sphere coefficients

	// MTS cadence state (version 2). MTSPeriod is the refresh period M the
	// run propagated under (0 when MTS was off), MTSPhase the position
	// within the M-step cycle at save time (Step mod M). MTSACE records
	// which operator kind the frozen reference backs - the ACE compression
	// or the exact exchange - so a resume cannot silently reconstruct the
	// other kind from the same orbitals. PhiRef carries the frozen
	// exchange reference orbitals of the last outer step - band-major,
	// NBands x NG - and is present exactly when the save landed mid-cycle
	// (MTSPhase > 0 on a hybrid run); at a cycle boundary the next step
	// rebuilds from Psi anyway, so nothing is stored.
	MTSPeriod int64
	MTSPhase  int64
	MTSACE    bool
	PhiRef    []complex128

	// Ehrenfest ion state (version 3), present exactly when the run moved
	// ions (-md): positions, velocities and the cached Hellmann-Feynman
	// force of every atom (all length Natom), plus the count of completed
	// ion steps. The force cache is what makes the resume bit-compatible:
	// velocity Verlet opens every step with a half kick from the force of
	// the previous step's close.
	IonSteps int64
	IonPos   [][3]float64
	IonVel   [][3]float64
	IonForce [][3]float64
}

// HasIons reports whether the state carries an Ehrenfest ion section.
func (s *State) HasIons() bool { return len(s.IonPos) > 0 }

// Save writes the state to w (always in the current format version).
func Save(w io.Writer, s *State) error {
	if len(s.Psi) != s.NBands*s.NG {
		return fmt.Errorf("checkpoint: psi length %d != %d bands x %d", len(s.Psi), s.NBands, s.NG)
	}
	if len(s.PhiRef) != 0 && len(s.PhiRef) != s.NBands*s.NG {
		return fmt.Errorf("checkpoint: frozen reference length %d != %d bands x %d", len(s.PhiRef), s.NBands, s.NG)
	}
	nion := len(s.IonPos)
	if len(s.IonVel) != nion || len(s.IonForce) != nion {
		return fmt.Errorf("checkpoint: ion section inconsistent: %d positions, %d velocities, %d forces",
			nion, len(s.IonVel), len(s.IonForce))
	}
	if nion != 0 && int64(nion) != s.Natom {
		return fmt.Errorf("checkpoint: ion section holds %d atoms, system has %d", nion, s.Natom)
	}
	bw := bufio.NewWriter(w)
	crc := crc64.New(crcTab)
	mw := io.MultiWriter(bw, crc)
	hyb := int64(0)
	if s.Hybrid {
		hyb = 1
	}
	nref := uint64(0)
	if len(s.PhiRef) > 0 {
		nref = uint64(s.NBands)
	}
	ace := uint64(0)
	if s.MTSACE {
		ace = 1
	}
	header := []uint64{
		magic, version,
		math.Float64bits(s.Time), uint64(s.Step),
		uint64(s.NBands), uint64(s.NG), uint64(s.Natom),
		math.Float64bits(s.Ecut), uint64(hyb),
		uint64(s.MTSPeriod), uint64(s.MTSPhase), ace, nref,
		uint64(nion), uint64(s.IonSteps),
	}
	var hdr bytes.Buffer
	for _, h := range header {
		binary.Write(&hdr, binary.LittleEndian, h)
	}
	if _, err := mw.Write(hdr.Bytes()); err != nil {
		return err
	}
	// Version 4: the header carries its own checksum so a loader rejects a
	// damaged header before trusting any size word in it.
	if err := binary.Write(mw, binary.LittleEndian, crc64.Checksum(hdr.Bytes(), crcTab)); err != nil {
		return err
	}
	psiSec := crc64.New(crcTab)
	if err := writeComplex(io.MultiWriter(mw, psiSec), s.Psi); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, psiSec.Sum64()); err != nil {
		return err
	}
	if nref > 0 {
		refSec := crc64.New(crcTab)
		if err := writeComplex(io.MultiWriter(mw, refSec), s.PhiRef); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, refSec.Sum64()); err != nil {
			return err
		}
	}
	if nion > 0 {
		ionSec := crc64.New(crcTab)
		for _, block := range [][][3]float64{s.IonPos, s.IonVel, s.IonForce} {
			if err := writeVec3(io.MultiWriter(mw, ionSec), block); err != nil {
				return err
			}
		}
		if err := binary.Write(mw, binary.LittleEndian, ionSec.Sum64()); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum64()); err != nil {
		return err
	}
	return bw.Flush()
}

// writeComplex streams a complex slice as little-endian re/im float64
// pairs.
func writeComplex(w io.Writer, xs []complex128) error {
	buf := make([]byte, 16)
	for _, c := range xs {
		binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(real(c)))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(imag(c)))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// writeVec3 streams per-atom 3-vectors as little-endian float64 triplets.
func writeVec3(w io.Writer, xs [][3]float64) error {
	buf := make([]byte, 24)
	for _, v := range xs {
		binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(v[0]))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(v[1]))
		binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(v[2]))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// countReader tracks the byte offset of the underlying stream so load
// errors can name where in the file the damage sits.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readComplex fills a complex slice from little-endian re/im float64
// pairs; what reports which block a truncation hit, cnt the file offset.
func readComplex(r io.Reader, cnt *countReader, dst []complex128, what string) error {
	buf := make([]byte, 16)
	for i := range dst {
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("checkpoint: %s truncated at coefficient %d (byte offset %d): %w", what, i, cnt.n, err)
		}
		re := math.Float64frombits(binary.LittleEndian.Uint64(buf[0:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
		dst[i] = complex(re, im)
	}
	return nil
}

// readVec3 fills per-atom 3-vectors from little-endian float64 triplets.
func readVec3(r io.Reader, cnt *countReader, dst [][3]float64, what string) error {
	buf := make([]byte, 24)
	for i := range dst {
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("checkpoint: %s truncated at atom %d (byte offset %d): %w", what, i, cnt.n, err)
		}
		dst[i][0] = math.Float64frombits(binary.LittleEndian.Uint64(buf[0:]))
		dst[i][1] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
		dst[i][2] = math.Float64frombits(binary.LittleEndian.Uint64(buf[16:]))
	}
	return nil
}

// Load reads a state from r, verifying the checksums. All format versions
// load: version 1 carries no MTS section, versions 1 and 2 no ion
// section, versions before 4 only the whole-file checksum. Damage -
// truncation or flipped bits anywhere in the stream - is reported as a
// descriptive error naming the field and byte offset, never a panic or a
// silently corrupt state.
func Load(r io.Reader) (*State, error) {
	cnt := &countReader{r: bufio.NewReader(r)}
	crc := crc64.New(crcTab)
	tr := io.TeeReader(cnt, crc)
	var hdrBytes []byte
	readWords := func(n int, what string) ([]uint64, error) {
		out := make([]uint64, n)
		buf := make([]byte, 8)
		for i := range out {
			if _, err := io.ReadFull(tr, buf); err != nil {
				return nil, fmt.Errorf("checkpoint: %s truncated at byte %d: %w", what, cnt.n, err)
			}
			hdrBytes = append(hdrBytes, buf...)
			out[i] = binary.LittleEndian.Uint64(buf)
		}
		return out, nil
	}
	header, err := readWords(9, "header")
	if err != nil {
		return nil, err
	}
	if header[0] != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x", header[0])
	}
	ver := header[1]
	if ver < 1 || ver > version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", ver)
	}
	s := &State{
		Time:   math.Float64frombits(header[2]),
		Step:   int64(header[3]),
		NBands: int(header[4]),
		NG:     int(header[5]),
		Natom:  int64(header[6]),
		Ecut:   math.Float64frombits(header[7]),
		Hybrid: header[8] != 0,
	}
	nref := uint64(0)
	if ver >= 2 {
		ext, err := readWords(4, "MTS header")
		if err != nil {
			return nil, err
		}
		s.MTSPeriod = int64(ext[0])
		s.MTSPhase = int64(ext[1])
		s.MTSACE = ext[2] != 0
		nref = ext[3]
	}
	nion := uint64(0)
	if ver >= 3 {
		ext, err := readWords(2, "ion header")
		if err != nil {
			return nil, err
		}
		nion = ext[0]
		s.IonSteps = int64(ext[1])
	}
	if ver >= 4 {
		// The header checksum is verified before any size word below is
		// trusted for an allocation.
		var stored uint64
		if err := binary.Read(tr, binary.LittleEndian, &stored); err != nil {
			return nil, fmt.Errorf("checkpoint: header checksum truncated at byte %d: %w", cnt.n, err)
		}
		if got := crc64.Checksum(hdrBytes, crcTab); got != stored {
			return nil, fmt.Errorf("checkpoint: header corrupt (checksum mismatch over bytes 0..%d)", len(hdrBytes)-1)
		}
	}
	// verifySection brackets one payload section with its own checksum
	// word (version 4), so damage is attributed to the section by name
	// and byte range instead of a file-level mismatch after the fact.
	verifySection := func(what string, read func(io.Reader) error) error {
		if ver < 4 {
			return read(tr)
		}
		start := cnt.n
		sec := crc64.New(crcTab)
		if err := read(io.TeeReader(tr, sec)); err != nil {
			return err
		}
		end := cnt.n
		var stored uint64
		if err := binary.Read(tr, binary.LittleEndian, &stored); err != nil {
			return fmt.Errorf("checkpoint: %s checksum truncated at byte %d: %w", what, cnt.n, err)
		}
		if sec.Sum64() != stored {
			return fmt.Errorf("checkpoint: %s section corrupt (checksum mismatch over bytes %d..%d)", what, start, end-1)
		}
		return nil
	}
	n := s.NBands * s.NG
	if n < 0 || n > 1<<34 {
		return nil, fmt.Errorf("checkpoint: implausible size %d x %d", s.NBands, s.NG)
	}
	if nref != 0 && nref != uint64(s.NBands) {
		return nil, fmt.Errorf("checkpoint: frozen reference holds %d bands, want 0 or %d", nref, s.NBands)
	}
	if nion > 1<<24 {
		// Plausibility cap before any allocation sized by header words: a
		// corrupt file must fail with an error, not a makeslice panic.
		return nil, fmt.Errorf("checkpoint: implausible ion count %d", nion)
	}
	if nion != 0 && nion != uint64(s.Natom) {
		return nil, fmt.Errorf("checkpoint: ion section holds %d atoms, want 0 or %d", nion, s.Natom)
	}
	s.Psi = make([]complex128, n)
	if err := verifySection("psi", func(r io.Reader) error {
		return readComplex(r, cnt, s.Psi, "psi")
	}); err != nil {
		return nil, err
	}
	if nref > 0 {
		s.PhiRef = make([]complex128, n)
		if err := verifySection("frozen reference", func(r io.Reader) error {
			return readComplex(r, cnt, s.PhiRef, "frozen reference")
		}); err != nil {
			return nil, err
		}
	}
	if nion > 0 {
		s.IonPos = make([][3]float64, nion)
		s.IonVel = make([][3]float64, nion)
		s.IonForce = make([][3]float64, nion)
		if err := verifySection("ion", func(r io.Reader) error {
			for _, block := range []struct {
				dst  [][3]float64
				what string
			}{{s.IonPos, "ion positions"}, {s.IonVel, "ion velocities"}, {s.IonForce, "ion forces"}} {
				if err := readVec3(r, cnt, block.dst, block.what); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	want := crc.Sum64()
	var got uint64
	if err := binary.Read(cnt, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("checkpoint: missing checksum (file truncated at byte %d): %w", cnt.n, err)
	}
	if got != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (file %#x, computed %#x)", got, want)
	}
	return s, nil
}

// SaveFile writes the state to path atomically AND durably: the payload
// goes to a uniquely named temp file in the same directory (O_EXCL, so
// concurrent writers never clobber each other), is fsynced before the
// rename (so the rename can never install a file whose bytes are still in
// the page cache when power is lost), and the directory is fsynced after
// (so the new name itself survives a crash). The temp file is removed on
// every error path.
func SaveFile(path string, s *State) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := Save(f, s); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
// Filesystems that refuse directory fsync (some network mounts) degrade
// to rename-only atomicity rather than failing the save.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// LoadFile reads a state from path.
func LoadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Compatible reports whether a loaded state matches the current system
// discretization, functional and cadences, with every mismatch reported as
// an expected-vs-got pair. The hybrid flag matters as much as the grid:
// orbitals propagated under the screened-exchange Hamiltonian must not
// silently continue under a semi-local one (or vice versa) - the
// trajectories are not comparable. mts is the refresh period of the
// resuming run (0 for no MTS) and ace whether its exchange goes through
// the ACE compression: a state saved mid-cycle pins the whole cadence -
// the frozen operator it carries is only meaningful under the same M *and*
// the same operator kind - while a state saved at a cycle boundary may
// change both freely. md reports whether the resuming run moves ions: an
// Ehrenfest state must not silently continue with frozen ions (its stored
// geometry would be ignored), nor a frozen-ion state under -md (there is
// no velocity/force state to integrate from).
func (s *State) Compatible(nbands, ng int, natom int64, ecut float64, hybrid bool, mts int, ace bool, md bool) error {
	if s.NBands != nbands {
		return fmt.Errorf("checkpoint: band count: checkpoint has %d, run has %d", s.NBands, nbands)
	}
	if s.NG != ng {
		return fmt.Errorf("checkpoint: G-sphere size: checkpoint has %d, run has %d", s.NG, ng)
	}
	if s.Natom != natom {
		return fmt.Errorf("checkpoint: atom count: checkpoint has %d, run has %d", s.Natom, natom)
	}
	if s.Ecut != ecut {
		return fmt.Errorf("checkpoint: energy cutoff: checkpoint has %g Ha, run has %g Ha", s.Ecut, ecut)
	}
	if s.Hybrid != hybrid {
		return fmt.Errorf("checkpoint: functional: checkpoint has hybrid=%v, run has hybrid=%v (rerun with the matching -hybrid flag)",
			s.Hybrid, hybrid)
	}
	if s.MTSPhase != 0 {
		if int64(mts) != s.MTSPeriod {
			return fmt.Errorf("checkpoint: mts period: checkpoint has %d (saved mid-cycle at phase %d), run has %d (rerun with -mts %d, or restart from a cycle-boundary checkpoint)",
				s.MTSPeriod, s.MTSPhase, mts, s.MTSPeriod)
		}
		if s.MTSACE != ace {
			return fmt.Errorf("checkpoint: exchange operator: checkpoint froze the %s, run applies the %s (rerun with the matching -ace flag, or restart from a cycle-boundary checkpoint)",
				operatorKind(s.MTSACE), operatorKind(ace))
		}
		if s.Hybrid && len(s.PhiRef) == 0 {
			return fmt.Errorf("checkpoint: mid-cycle MTS state (phase %d of %d) is missing its frozen exchange reference", s.MTSPhase, s.MTSPeriod)
		}
	}
	if s.HasIons() != md {
		return fmt.Errorf("checkpoint: ion dynamics: checkpoint has md=%v, run has md=%v (rerun with the matching -md flag)",
			s.HasIons(), md)
	}
	return nil
}

// operatorKind names the exchange operator an MTS cycle froze.
func operatorKind(ace bool) string {
	if ace {
		return "ACE-compressed exchange"
	}
	return "exact exchange"
}

// ContinuationStep returns the global step counter after advancing `steps`
// further steps from a loaded checkpoint; a nil loaded state means a fresh
// run starting at step 0. Segments of a split production run chain their
// provenance through this: each segment's saved Step is the cumulative
// count, not the segment length.
func ContinuationStep(loaded *State, steps int) int64 {
	if loaded == nil {
		return int64(steps)
	}
	return loaded.Step + int64(steps)
}

// ContinuationIonSteps is ContinuationStep for the ion-step counter of an
// Ehrenfest trajectory.
func ContinuationIonSteps(loaded *State, ionSteps int) int64 {
	if loaded == nil {
		return int64(ionSteps)
	}
	return loaded.IonSteps + int64(ionSteps)
}
