// Package checkpoint serializes and restores rt-TDDFT simulation state -
// wavefunctions, simulation time, and metadata - so long runs (the paper's
// production runs are 600 steps over many hours) can be split across job
// allocations. The format is a versioned little-endian binary stream with
// a whole-file checksum. Version 2 adds the multiple-time-stepping (MTS)
// cadence state: the refresh period, the phase within the M-step cycle,
// and - when the save lands mid-cycle - the frozen exchange reference
// orbitals of the last outer step, so a resumed segment reconstructs the
// identical frozen operator instead of silently refreshing early. Version
// 3 adds the Ehrenfest ion section: positions, velocities and the cached
// force of every atom, so an interrupted MD trajectory resumes
// bit-compatibly (the first half kick after the resume uses the stored
// force, not a recomputation subject to parallel reduction order).
// Versions 1 and 2 still load.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
)

const (
	magic   = 0x70746466_74636b70 // "ptdftckp"
	version = 3
)

// State is the restartable simulation state.
type State struct {
	Time   float64 // simulation time (au)
	Step   int64   // step counter
	NBands int
	NG     int
	Natom  int64 // system identification for mismatch detection
	Ecut   float64
	Hybrid bool
	Psi    []complex128 // band-major sphere coefficients

	// MTS cadence state (version 2). MTSPeriod is the refresh period M the
	// run propagated under (0 when MTS was off), MTSPhase the position
	// within the M-step cycle at save time (Step mod M). MTSACE records
	// which operator kind the frozen reference backs - the ACE compression
	// or the exact exchange - so a resume cannot silently reconstruct the
	// other kind from the same orbitals. PhiRef carries the frozen
	// exchange reference orbitals of the last outer step - band-major,
	// NBands x NG - and is present exactly when the save landed mid-cycle
	// (MTSPhase > 0 on a hybrid run); at a cycle boundary the next step
	// rebuilds from Psi anyway, so nothing is stored.
	MTSPeriod int64
	MTSPhase  int64
	MTSACE    bool
	PhiRef    []complex128

	// Ehrenfest ion state (version 3), present exactly when the run moved
	// ions (-md): positions, velocities and the cached Hellmann-Feynman
	// force of every atom (all length Natom), plus the count of completed
	// ion steps. The force cache is what makes the resume bit-compatible:
	// velocity Verlet opens every step with a half kick from the force of
	// the previous step's close.
	IonSteps int64
	IonPos   [][3]float64
	IonVel   [][3]float64
	IonForce [][3]float64
}

// HasIons reports whether the state carries an Ehrenfest ion section.
func (s *State) HasIons() bool { return len(s.IonPos) > 0 }

// Save writes the state to w (always in the current format version).
func Save(w io.Writer, s *State) error {
	if len(s.Psi) != s.NBands*s.NG {
		return fmt.Errorf("checkpoint: psi length %d != %d bands x %d", len(s.Psi), s.NBands, s.NG)
	}
	if len(s.PhiRef) != 0 && len(s.PhiRef) != s.NBands*s.NG {
		return fmt.Errorf("checkpoint: frozen reference length %d != %d bands x %d", len(s.PhiRef), s.NBands, s.NG)
	}
	nion := len(s.IonPos)
	if len(s.IonVel) != nion || len(s.IonForce) != nion {
		return fmt.Errorf("checkpoint: ion section inconsistent: %d positions, %d velocities, %d forces",
			nion, len(s.IonVel), len(s.IonForce))
	}
	if nion != 0 && int64(nion) != s.Natom {
		return fmt.Errorf("checkpoint: ion section holds %d atoms, system has %d", nion, s.Natom)
	}
	bw := bufio.NewWriter(w)
	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	mw := io.MultiWriter(bw, crc)
	hyb := int64(0)
	if s.Hybrid {
		hyb = 1
	}
	nref := uint64(0)
	if len(s.PhiRef) > 0 {
		nref = uint64(s.NBands)
	}
	ace := uint64(0)
	if s.MTSACE {
		ace = 1
	}
	header := []uint64{
		magic, version,
		math.Float64bits(s.Time), uint64(s.Step),
		uint64(s.NBands), uint64(s.NG), uint64(s.Natom),
		math.Float64bits(s.Ecut), uint64(hyb),
		uint64(s.MTSPeriod), uint64(s.MTSPhase), ace, nref,
		uint64(nion), uint64(s.IonSteps),
	}
	for _, h := range header {
		if err := binary.Write(mw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := writeComplex(mw, s.Psi); err != nil {
		return err
	}
	if err := writeComplex(mw, s.PhiRef); err != nil {
		return err
	}
	for _, block := range [][][3]float64{s.IonPos, s.IonVel, s.IonForce} {
		if err := writeVec3(mw, block); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum64()); err != nil {
		return err
	}
	return bw.Flush()
}

// writeComplex streams a complex slice as little-endian re/im float64
// pairs.
func writeComplex(w io.Writer, xs []complex128) error {
	buf := make([]byte, 16)
	for _, c := range xs {
		binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(real(c)))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(imag(c)))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// writeVec3 streams per-atom 3-vectors as little-endian float64 triplets.
func writeVec3(w io.Writer, xs [][3]float64) error {
	buf := make([]byte, 24)
	for _, v := range xs {
		binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(v[0]))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(v[1]))
		binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(v[2]))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// readComplex fills a complex slice from little-endian re/im float64
// pairs; what reports which block a truncation hit.
func readComplex(r io.Reader, dst []complex128, what string) error {
	buf := make([]byte, 16)
	for i := range dst {
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("checkpoint: %s truncated at coefficient %d: %w", what, i, err)
		}
		re := math.Float64frombits(binary.LittleEndian.Uint64(buf[0:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
		dst[i] = complex(re, im)
	}
	return nil
}

// readVec3 fills per-atom 3-vectors from little-endian float64 triplets.
func readVec3(r io.Reader, dst [][3]float64, what string) error {
	buf := make([]byte, 24)
	for i := range dst {
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("checkpoint: %s truncated at atom %d: %w", what, i, err)
		}
		dst[i][0] = math.Float64frombits(binary.LittleEndian.Uint64(buf[0:]))
		dst[i][1] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
		dst[i][2] = math.Float64frombits(binary.LittleEndian.Uint64(buf[16:]))
	}
	return nil
}

// Load reads a state from r, verifying the checksum. All format versions
// load: version 1 carries no MTS section, versions 1 and 2 no ion section.
func Load(r io.Reader) (*State, error) {
	br := bufio.NewReader(r)
	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	tr := io.TeeReader(br, crc)
	header := make([]uint64, 9)
	for i := range header {
		if err := binary.Read(tr, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("checkpoint: short header: %w", err)
		}
	}
	if header[0] != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x", header[0])
	}
	ver := header[1]
	if ver < 1 || ver > version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", ver)
	}
	s := &State{
		Time:   math.Float64frombits(header[2]),
		Step:   int64(header[3]),
		NBands: int(header[4]),
		NG:     int(header[5]),
		Natom:  int64(header[6]),
		Ecut:   math.Float64frombits(header[7]),
		Hybrid: header[8] != 0,
	}
	nref := uint64(0)
	if ver >= 2 {
		ext := make([]uint64, 4)
		for i := range ext {
			if err := binary.Read(tr, binary.LittleEndian, &ext[i]); err != nil {
				return nil, fmt.Errorf("checkpoint: short MTS header: %w", err)
			}
		}
		s.MTSPeriod = int64(ext[0])
		s.MTSPhase = int64(ext[1])
		s.MTSACE = ext[2] != 0
		nref = ext[3]
	}
	nion := uint64(0)
	if ver >= 3 {
		ext := make([]uint64, 2)
		for i := range ext {
			if err := binary.Read(tr, binary.LittleEndian, &ext[i]); err != nil {
				return nil, fmt.Errorf("checkpoint: short ion header: %w", err)
			}
		}
		nion = ext[0]
		s.IonSteps = int64(ext[1])
	}
	n := s.NBands * s.NG
	if n < 0 || n > 1<<34 {
		return nil, fmt.Errorf("checkpoint: implausible size %d x %d", s.NBands, s.NG)
	}
	if nref != 0 && nref != uint64(s.NBands) {
		return nil, fmt.Errorf("checkpoint: frozen reference holds %d bands, want 0 or %d", nref, s.NBands)
	}
	if nion > 1<<24 {
		// Plausibility cap before any allocation sized by header words: a
		// corrupt file must fail with an error, not a makeslice panic.
		return nil, fmt.Errorf("checkpoint: implausible ion count %d", nion)
	}
	if nion != 0 && nion != uint64(s.Natom) {
		return nil, fmt.Errorf("checkpoint: ion section holds %d atoms, want 0 or %d", nion, s.Natom)
	}
	s.Psi = make([]complex128, n)
	if err := readComplex(tr, s.Psi, "psi"); err != nil {
		return nil, err
	}
	if nref > 0 {
		s.PhiRef = make([]complex128, n)
		if err := readComplex(tr, s.PhiRef, "frozen reference"); err != nil {
			return nil, err
		}
	}
	if nion > 0 {
		s.IonPos = make([][3]float64, nion)
		s.IonVel = make([][3]float64, nion)
		s.IonForce = make([][3]float64, nion)
		for _, block := range []struct {
			dst  [][3]float64
			what string
		}{{s.IonPos, "ion positions"}, {s.IonVel, "ion velocities"}, {s.IonForce, "ion forces"}} {
			if err := readVec3(tr, block.dst, block.what); err != nil {
				return nil, err
			}
		}
	}
	want := crc.Sum64()
	var got uint64
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("checkpoint: missing checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (file %#x, computed %#x)", got, want)
	}
	return s, nil
}

// SaveFile writes the state to path atomically (temp file + rename).
func SaveFile(path string, s *State) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Save(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a state from path.
func LoadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Compatible reports whether a loaded state matches the current system
// discretization, functional and cadences, with every mismatch reported as
// an expected-vs-got pair. The hybrid flag matters as much as the grid:
// orbitals propagated under the screened-exchange Hamiltonian must not
// silently continue under a semi-local one (or vice versa) - the
// trajectories are not comparable. mts is the refresh period of the
// resuming run (0 for no MTS) and ace whether its exchange goes through
// the ACE compression: a state saved mid-cycle pins the whole cadence -
// the frozen operator it carries is only meaningful under the same M *and*
// the same operator kind - while a state saved at a cycle boundary may
// change both freely. md reports whether the resuming run moves ions: an
// Ehrenfest state must not silently continue with frozen ions (its stored
// geometry would be ignored), nor a frozen-ion state under -md (there is
// no velocity/force state to integrate from).
func (s *State) Compatible(nbands, ng int, natom int64, ecut float64, hybrid bool, mts int, ace bool, md bool) error {
	if s.NBands != nbands {
		return fmt.Errorf("checkpoint: band count: checkpoint has %d, run has %d", s.NBands, nbands)
	}
	if s.NG != ng {
		return fmt.Errorf("checkpoint: G-sphere size: checkpoint has %d, run has %d", s.NG, ng)
	}
	if s.Natom != natom {
		return fmt.Errorf("checkpoint: atom count: checkpoint has %d, run has %d", s.Natom, natom)
	}
	if s.Ecut != ecut {
		return fmt.Errorf("checkpoint: energy cutoff: checkpoint has %g Ha, run has %g Ha", s.Ecut, ecut)
	}
	if s.Hybrid != hybrid {
		return fmt.Errorf("checkpoint: functional: checkpoint has hybrid=%v, run has hybrid=%v (rerun with the matching -hybrid flag)",
			s.Hybrid, hybrid)
	}
	if s.MTSPhase != 0 {
		if int64(mts) != s.MTSPeriod {
			return fmt.Errorf("checkpoint: mts period: checkpoint has %d (saved mid-cycle at phase %d), run has %d (rerun with -mts %d, or restart from a cycle-boundary checkpoint)",
				s.MTSPeriod, s.MTSPhase, mts, s.MTSPeriod)
		}
		if s.MTSACE != ace {
			return fmt.Errorf("checkpoint: exchange operator: checkpoint froze the %s, run applies the %s (rerun with the matching -ace flag, or restart from a cycle-boundary checkpoint)",
				operatorKind(s.MTSACE), operatorKind(ace))
		}
		if s.Hybrid && len(s.PhiRef) == 0 {
			return fmt.Errorf("checkpoint: mid-cycle MTS state (phase %d of %d) is missing its frozen exchange reference", s.MTSPhase, s.MTSPeriod)
		}
	}
	if s.HasIons() != md {
		return fmt.Errorf("checkpoint: ion dynamics: checkpoint has md=%v, run has md=%v (rerun with the matching -md flag)",
			s.HasIons(), md)
	}
	return nil
}

// operatorKind names the exchange operator an MTS cycle froze.
func operatorKind(ace bool) string {
	if ace {
		return "ACE-compressed exchange"
	}
	return "exact exchange"
}

// ContinuationStep returns the global step counter after advancing `steps`
// further steps from a loaded checkpoint; a nil loaded state means a fresh
// run starting at step 0. Segments of a split production run chain their
// provenance through this: each segment's saved Step is the cumulative
// count, not the segment length.
func ContinuationStep(loaded *State, steps int) int64 {
	if loaded == nil {
		return int64(steps)
	}
	return loaded.Step + int64(steps)
}

// ContinuationIonSteps is ContinuationStep for the ion-step counter of an
// Ehrenfest trajectory.
func ContinuationIonSteps(loaded *State, ionSteps int) int64 {
	if loaded == nil {
		return int64(ionSteps)
	}
	return loaded.IonSteps + int64(ionSteps)
}
