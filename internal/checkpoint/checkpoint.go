// Package checkpoint serializes and restores rt-TDDFT simulation state -
// wavefunctions, simulation time, and metadata - so long runs (the paper's
// production runs are 600 steps over many hours) can be split across job
// allocations. The format is a versioned little-endian binary stream with
// a whole-file checksum.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
)

const (
	magic   = 0x70746466_74636b70 // "ptdftckp"
	version = 1
)

// State is the restartable simulation state.
type State struct {
	Time   float64 // simulation time (au)
	Step   int64   // step counter
	NBands int
	NG     int
	Natom  int64 // system identification for mismatch detection
	Ecut   float64
	Hybrid bool
	Psi    []complex128 // band-major sphere coefficients
}

// Save writes the state to w.
func Save(w io.Writer, s *State) error {
	if len(s.Psi) != s.NBands*s.NG {
		return fmt.Errorf("checkpoint: psi length %d != %d bands x %d", len(s.Psi), s.NBands, s.NG)
	}
	bw := bufio.NewWriter(w)
	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	mw := io.MultiWriter(bw, crc)
	hyb := int64(0)
	if s.Hybrid {
		hyb = 1
	}
	header := []uint64{
		magic, version,
		math.Float64bits(s.Time), uint64(s.Step),
		uint64(s.NBands), uint64(s.NG), uint64(s.Natom),
		math.Float64bits(s.Ecut), uint64(hyb),
	}
	for _, h := range header {
		if err := binary.Write(mw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	buf := make([]byte, 16)
	for _, c := range s.Psi {
		binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(real(c)))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(imag(c)))
		if _, err := mw.Write(buf); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum64()); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads a state from r, verifying the checksum.
func Load(r io.Reader) (*State, error) {
	br := bufio.NewReader(r)
	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	tr := io.TeeReader(br, crc)
	header := make([]uint64, 9)
	for i := range header {
		if err := binary.Read(tr, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("checkpoint: short header: %w", err)
		}
	}
	if header[0] != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x", header[0])
	}
	if header[1] != version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", header[1])
	}
	s := &State{
		Time:   math.Float64frombits(header[2]),
		Step:   int64(header[3]),
		NBands: int(header[4]),
		NG:     int(header[5]),
		Natom:  int64(header[6]),
		Ecut:   math.Float64frombits(header[7]),
		Hybrid: header[8] != 0,
	}
	n := s.NBands * s.NG
	if n < 0 || n > 1<<34 {
		return nil, fmt.Errorf("checkpoint: implausible size %d x %d", s.NBands, s.NG)
	}
	s.Psi = make([]complex128, n)
	buf := make([]byte, 16)
	for i := range s.Psi {
		if _, err := io.ReadFull(tr, buf); err != nil {
			return nil, fmt.Errorf("checkpoint: truncated at coefficient %d: %w", i, err)
		}
		re := math.Float64frombits(binary.LittleEndian.Uint64(buf[0:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
		s.Psi[i] = complex(re, im)
	}
	want := crc.Sum64()
	var got uint64
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("checkpoint: missing checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (file %#x, computed %#x)", got, want)
	}
	return s, nil
}

// SaveFile writes the state to path atomically (temp file + rename).
func SaveFile(path string, s *State) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Save(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a state from path.
func LoadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Compatible reports whether a loaded state matches the current system
// discretization and functional, with a descriptive error when it does
// not. The hybrid flag matters as much as the grid: orbitals propagated
// under the screened-exchange Hamiltonian must not silently continue under
// a semi-local one (or vice versa) - the trajectories are not comparable.
func (s *State) Compatible(nbands, ng int, natom int64, ecut float64, hybrid bool) error {
	if s.NBands != nbands || s.NG != ng || s.Natom != natom || s.Ecut != ecut {
		return fmt.Errorf("checkpoint: state for Si%d nb=%d NG=%d Ecut=%g does not match system Si%d nb=%d NG=%d Ecut=%g",
			s.Natom, s.NBands, s.NG, s.Ecut, natom, nbands, ng, ecut)
	}
	if s.Hybrid != hybrid {
		return fmt.Errorf("checkpoint: state propagated with hybrid=%v cannot resume under hybrid=%v (rerun with the matching -hybrid flag)",
			s.Hybrid, hybrid)
	}
	return nil
}

// ContinuationStep returns the global step counter after advancing `steps`
// further steps from a loaded checkpoint; a nil loaded state means a fresh
// run starting at step 0. Segments of a split production run chain their
// provenance through this: each segment's saved Step is the cumulative
// count, not the segment length.
func ContinuationStep(loaded *State, steps int) int64 {
	if loaded == nil {
		return int64(steps)
	}
	return loaded.Step + int64(steps)
}
