// Package checkpoint serializes and restores rt-TDDFT simulation state -
// wavefunctions, simulation time, and metadata - so long runs (the paper's
// production runs are 600 steps over many hours) can be split across job
// allocations. The format is a versioned little-endian binary stream with
// a whole-file checksum. Version 2 adds the multiple-time-stepping (MTS)
// cadence state: the refresh period, the phase within the M-step cycle,
// and - when the save lands mid-cycle - the frozen exchange reference
// orbitals of the last outer step, so a resumed segment reconstructs the
// identical frozen operator instead of silently refreshing early. Version
// 1 files (no MTS section) still load.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
)

const (
	magic   = 0x70746466_74636b70 // "ptdftckp"
	version = 2
)

// State is the restartable simulation state.
type State struct {
	Time   float64 // simulation time (au)
	Step   int64   // step counter
	NBands int
	NG     int
	Natom  int64 // system identification for mismatch detection
	Ecut   float64
	Hybrid bool
	Psi    []complex128 // band-major sphere coefficients

	// MTS cadence state (version 2). MTSPeriod is the refresh period M the
	// run propagated under (0 when MTS was off), MTSPhase the position
	// within the M-step cycle at save time (Step mod M). MTSACE records
	// which operator kind the frozen reference backs - the ACE compression
	// or the exact exchange - so a resume cannot silently reconstruct the
	// other kind from the same orbitals. PhiRef carries the frozen
	// exchange reference orbitals of the last outer step - band-major,
	// NBands x NG - and is present exactly when the save landed mid-cycle
	// (MTSPhase > 0 on a hybrid run); at a cycle boundary the next step
	// rebuilds from Psi anyway, so nothing is stored.
	MTSPeriod int64
	MTSPhase  int64
	MTSACE    bool
	PhiRef    []complex128
}

// Save writes the state to w (always in the current format version).
func Save(w io.Writer, s *State) error {
	if len(s.Psi) != s.NBands*s.NG {
		return fmt.Errorf("checkpoint: psi length %d != %d bands x %d", len(s.Psi), s.NBands, s.NG)
	}
	if len(s.PhiRef) != 0 && len(s.PhiRef) != s.NBands*s.NG {
		return fmt.Errorf("checkpoint: frozen reference length %d != %d bands x %d", len(s.PhiRef), s.NBands, s.NG)
	}
	bw := bufio.NewWriter(w)
	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	mw := io.MultiWriter(bw, crc)
	hyb := int64(0)
	if s.Hybrid {
		hyb = 1
	}
	nref := uint64(0)
	if len(s.PhiRef) > 0 {
		nref = uint64(s.NBands)
	}
	ace := uint64(0)
	if s.MTSACE {
		ace = 1
	}
	header := []uint64{
		magic, version,
		math.Float64bits(s.Time), uint64(s.Step),
		uint64(s.NBands), uint64(s.NG), uint64(s.Natom),
		math.Float64bits(s.Ecut), uint64(hyb),
		uint64(s.MTSPeriod), uint64(s.MTSPhase), ace, nref,
	}
	for _, h := range header {
		if err := binary.Write(mw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := writeComplex(mw, s.Psi); err != nil {
		return err
	}
	if err := writeComplex(mw, s.PhiRef); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum64()); err != nil {
		return err
	}
	return bw.Flush()
}

// writeComplex streams a complex slice as little-endian re/im float64
// pairs.
func writeComplex(w io.Writer, xs []complex128) error {
	buf := make([]byte, 16)
	for _, c := range xs {
		binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(real(c)))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(imag(c)))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// readComplex fills a complex slice from little-endian re/im float64
// pairs; what reports which block a truncation hit.
func readComplex(r io.Reader, dst []complex128, what string) error {
	buf := make([]byte, 16)
	for i := range dst {
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("checkpoint: %s truncated at coefficient %d: %w", what, i, err)
		}
		re := math.Float64frombits(binary.LittleEndian.Uint64(buf[0:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
		dst[i] = complex(re, im)
	}
	return nil
}

// Load reads a state from r, verifying the checksum. Both format versions
// load: version 1 files carry no MTS section and yield zero cadence state.
func Load(r io.Reader) (*State, error) {
	br := bufio.NewReader(r)
	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	tr := io.TeeReader(br, crc)
	header := make([]uint64, 9)
	for i := range header {
		if err := binary.Read(tr, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("checkpoint: short header: %w", err)
		}
	}
	if header[0] != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x", header[0])
	}
	if header[1] != 1 && header[1] != version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", header[1])
	}
	s := &State{
		Time:   math.Float64frombits(header[2]),
		Step:   int64(header[3]),
		NBands: int(header[4]),
		NG:     int(header[5]),
		Natom:  int64(header[6]),
		Ecut:   math.Float64frombits(header[7]),
		Hybrid: header[8] != 0,
	}
	nref := uint64(0)
	if header[1] >= 2 {
		ext := make([]uint64, 4)
		for i := range ext {
			if err := binary.Read(tr, binary.LittleEndian, &ext[i]); err != nil {
				return nil, fmt.Errorf("checkpoint: short MTS header: %w", err)
			}
		}
		s.MTSPeriod = int64(ext[0])
		s.MTSPhase = int64(ext[1])
		s.MTSACE = ext[2] != 0
		nref = ext[3]
	}
	n := s.NBands * s.NG
	if n < 0 || n > 1<<34 {
		return nil, fmt.Errorf("checkpoint: implausible size %d x %d", s.NBands, s.NG)
	}
	if nref != 0 && nref != uint64(s.NBands) {
		return nil, fmt.Errorf("checkpoint: frozen reference holds %d bands, want 0 or %d", nref, s.NBands)
	}
	s.Psi = make([]complex128, n)
	if err := readComplex(tr, s.Psi, "psi"); err != nil {
		return nil, err
	}
	if nref > 0 {
		s.PhiRef = make([]complex128, n)
		if err := readComplex(tr, s.PhiRef, "frozen reference"); err != nil {
			return nil, err
		}
	}
	want := crc.Sum64()
	var got uint64
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("checkpoint: missing checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (file %#x, computed %#x)", got, want)
	}
	return s, nil
}

// SaveFile writes the state to path atomically (temp file + rename).
func SaveFile(path string, s *State) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Save(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a state from path.
func LoadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Compatible reports whether a loaded state matches the current system
// discretization and functional, with a descriptive error when it does
// not. The hybrid flag matters as much as the grid: orbitals propagated
// under the screened-exchange Hamiltonian must not silently continue under
// a semi-local one (or vice versa) - the trajectories are not comparable.
// mts is the refresh period of the resuming run (0 for no MTS) and ace
// whether its exchange goes through the ACE compression: a state saved
// mid-cycle pins the whole cadence - the frozen operator it carries is
// only meaningful under the same M *and* the same operator kind (the
// exact exchange and the compression differ off the reference span) -
// while a state saved at a cycle boundary may change both freely (the
// next step is an outer step that rebuilds under any setting).
func (s *State) Compatible(nbands, ng int, natom int64, ecut float64, hybrid bool, mts int, ace bool) error {
	if s.NBands != nbands || s.NG != ng || s.Natom != natom || s.Ecut != ecut {
		return fmt.Errorf("checkpoint: state for Si%d nb=%d NG=%d Ecut=%g does not match system Si%d nb=%d NG=%d Ecut=%g",
			s.Natom, s.NBands, s.NG, s.Ecut, natom, nbands, ng, ecut)
	}
	if s.Hybrid != hybrid {
		return fmt.Errorf("checkpoint: state propagated with hybrid=%v cannot resume under hybrid=%v (rerun with the matching -hybrid flag)",
			s.Hybrid, hybrid)
	}
	if s.MTSPhase != 0 {
		if int64(mts) != s.MTSPeriod {
			return fmt.Errorf("checkpoint: state saved mid-MTS-cycle (step %d of an M=%d cycle) cannot resume under -mts %d (rerun with -mts %d, or restart from a cycle-boundary checkpoint)",
				s.MTSPhase, s.MTSPeriod, mts, s.MTSPeriod)
		}
		if s.MTSACE != ace {
			return fmt.Errorf("checkpoint: mid-cycle MTS state froze the %s operator and cannot resume applying the %s one (rerun with the matching -ace flag, or restart from a cycle-boundary checkpoint)",
				operatorKind(s.MTSACE), operatorKind(ace))
		}
		if s.Hybrid && len(s.PhiRef) == 0 {
			return fmt.Errorf("checkpoint: mid-cycle MTS state (phase %d of %d) is missing its frozen exchange reference", s.MTSPhase, s.MTSPeriod)
		}
	}
	return nil
}

// operatorKind names the exchange operator an MTS cycle froze.
func operatorKind(ace bool) string {
	if ace {
		return "ACE-compressed exchange"
	}
	return "exact exchange"
}

// ContinuationStep returns the global step counter after advancing `steps`
// further steps from a loaded checkpoint; a nil loaded state means a fresh
// run starting at step 0. Segments of a split production run chain their
// provenance through this: each segment's saved Step is the cumulative
// count, not the segment length.
func ContinuationStep(loaded *State, steps int) int64 {
	if loaded == nil {
		return int64(steps)
	}
	return loaded.Step + int64(steps)
}
