package checkpoint

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fullState returns a state exercising every section: MTS frozen
// reference and the ion block.
func fullState(rng *rand.Rand) *State {
	s := sampleState(rng)
	s.MTSPeriod, s.MTSPhase, s.MTSACE = 4, 3, true
	s.PhiRef = make([]complex128, len(s.Psi))
	for i := range s.PhiRef {
		s.PhiRef[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	s.IonSteps = 5
	n := int(s.Natom)
	s.IonPos = make([][3]float64, n)
	s.IonVel = make([][3]float64, n)
	s.IonForce = make([][3]float64, n)
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			s.IonPos[i][d] = rng.NormFloat64()
			s.IonVel[i][d] = rng.NormFloat64() * 1e-4
			s.IonForce[i][d] = rng.NormFloat64() * 1e-2
		}
	}
	return s
}

// streamVersion serializes s in the given historical format version
// (hand-written for 1-3, Save for the current 4), reproducing exactly
// what those releases wrote.
func streamVersion(t *testing.T, ver int, s *State) []byte {
	t.Helper()
	if ver == 4 {
		var buf bytes.Buffer
		if err := Save(&buf, s); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	var raw bytes.Buffer
	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	mw := io.MultiWriter(&raw, crc)
	hyb := uint64(0)
	if s.Hybrid {
		hyb = 1
	}
	header := []uint64{
		magic, uint64(ver),
		math.Float64bits(s.Time), uint64(s.Step),
		uint64(s.NBands), uint64(s.NG), uint64(s.Natom),
		math.Float64bits(s.Ecut), hyb,
	}
	if ver >= 2 {
		ace := uint64(0)
		if s.MTSACE {
			ace = 1
		}
		nref := uint64(0)
		if len(s.PhiRef) > 0 {
			nref = uint64(s.NBands)
		}
		header = append(header, uint64(s.MTSPeriod), uint64(s.MTSPhase), ace, nref)
	}
	if ver >= 3 {
		header = append(header, uint64(len(s.IonPos)), uint64(s.IonSteps))
	}
	for _, h := range header {
		if err := binary.Write(mw, binary.LittleEndian, h); err != nil {
			t.Fatal(err)
		}
	}
	if err := writeComplex(mw, s.Psi); err != nil {
		t.Fatal(err)
	}
	if ver >= 2 {
		if err := writeComplex(mw, s.PhiRef); err != nil {
			t.Fatal(err)
		}
	}
	if ver >= 3 {
		for _, block := range [][][3]float64{s.IonPos, s.IonVel, s.IonForce} {
			if err := writeVec3(mw, block); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := binary.Write(&raw, binary.LittleEndian, crc.Sum64()); err != nil {
		t.Fatal(err)
	}
	return raw.Bytes()
}

// stateForVersion trims fullState to what a version can carry.
func stateForVersion(rng *rand.Rand, ver int) *State {
	s := fullState(rng)
	if ver < 3 {
		s.IonSteps = 0
		s.IonPos, s.IonVel, s.IonForce = nil, nil, nil
	}
	if ver < 2 {
		s.MTSPeriod, s.MTSPhase, s.MTSACE = 0, 0, false
		s.PhiRef = nil
	}
	return s
}

// TestCorruptionFuzzAllVersions flips bytes across streams of every
// format version and checks Load always returns a descriptive error -
// never a panic, never a silently corrupt state. Pre-v4 streams skip
// flips inside the size-bearing header words: those formats validate
// sizes only by plausibility caps, so a size flip may demand a huge
// (though capped) allocation - exactly the weakness the v4 header
// checksum closes, which is why v4 is fuzzed over every region including
// its header.
func TestCorruptionFuzzAllVersions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for ver := 1; ver <= version; ver++ {
		s := stateForVersion(rng, ver)
		clean := streamVersion(t, ver, s)
		if _, err := Load(bytes.NewReader(clean)); err != nil {
			t.Fatalf("v%d: clean stream rejected: %v", ver, err)
		}
		headerLen := 9 * 8
		if ver >= 2 {
			headerLen += 4 * 8
		}
		if ver >= 3 {
			headerLen += 2 * 8
		}
		var offsets []int
		for off := 0; off < len(clean); off += 61 {
			offsets = append(offsets, off)
		}
		offsets = append(offsets, 0, 8, len(clean)-1, len(clean)-8)
		for _, off := range offsets {
			if ver < 4 && off >= 32 && off < headerLen {
				continue // size-bearing words; see doc comment
			}
			data := append([]byte(nil), clean...)
			data[off] ^= 0x40
			got, err := func() (st *State, err error) {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("v%d: flip at byte %d panicked: %v", ver, off, p)
					}
				}()
				return Load(bytes.NewReader(data))
			}()
			if err == nil {
				t.Errorf("v%d: flip at byte %d loaded silently (state step %d)", ver, off, got.Step)
			}
		}
	}
}

// TestTruncationFuzzAllVersions cuts streams of every version at many
// lengths and checks Load errors out descriptively each time.
func TestTruncationFuzzAllVersions(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for ver := 1; ver <= version; ver++ {
		s := stateForVersion(rng, ver)
		clean := streamVersion(t, ver, s)
		cuts := []int{0, 1, 7, 8, 9, 71, 72, 73, 119, 120, 121, len(clean) / 3, len(clean) / 2, len(clean) - 9, len(clean) - 1}
		for i := 0; i < 20; i++ {
			cuts = append(cuts, rng.Intn(len(clean)))
		}
		for _, cut := range cuts {
			if cut < 0 || cut >= len(clean) {
				continue
			}
			got, err := func() (st *State, err error) {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("v%d: truncation at %d panicked: %v", ver, cut, p)
					}
				}()
				return Load(bytes.NewReader(clean[:cut]))
			}()
			if err == nil {
				t.Errorf("v%d: truncation at byte %d of %d loaded silently (step %d)", ver, cut, len(clean), got.Step)
			}
		}
	}
}

// TestV4ErrorsNameTheDamagedField pins the diagnosis quality of the v4
// per-section checksums: a flip lands an error naming the section it hit
// and a truncation an error with the byte offset.
func TestV4ErrorsNameTheDamagedField(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := fullState(rng)
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	const headerEnd = 15*8 + 8 // 15 words + header checksum
	psiBytes := 16 * len(s.Psi)
	psiEnd := headerEnd + psiBytes + 8
	refEnd := psiEnd + 16*len(s.PhiRef) + 8
	ionEnd := refEnd + 3*24*len(s.IonPos) + 8
	if ionEnd+8 != len(clean) {
		t.Fatalf("layout arithmetic off: computed %d, stream %d", ionEnd+8, len(clean))
	}
	cases := []struct {
		name string
		off  int
		want string
	}{
		{"header word", 40, "header corrupt"},
		{"header checksum", headerEnd - 4, "header corrupt"},
		{"psi payload", headerEnd + psiBytes/2, "psi section corrupt"},
		{"frozen reference payload", psiEnd + 24, "frozen reference section corrupt"},
		{"ion payload", refEnd + 24, "ion section corrupt"},
	}
	for _, tc := range cases {
		data := append([]byte(nil), clean...)
		data[tc.off] ^= 0x01
		_, err := Load(bytes.NewReader(data))
		if err == nil {
			t.Errorf("%s: flip at %d not detected", tc.name, tc.off)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
	_, err := Load(bytes.NewReader(clean[:headerEnd+100]))
	if err == nil || !strings.Contains(err.Error(), "byte offset") {
		t.Errorf("payload truncation error lacks byte offset: %v", err)
	}
}

// TestSaveFileCleansUpOnError checks the unique temp file never survives
// a failed save.
func TestSaveFileCleansUpOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckp")
	bad := &State{NBands: 2, NG: 10, Psi: make([]complex128, 5)} // inconsistent: Save fails
	if err := SaveFile(path, bad); err == nil {
		t.Fatal("inconsistent state saved")
	}
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if len(leftovers) != 0 {
		t.Errorf("temp files left after failed save: %v", leftovers)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("failed save created the destination")
	}
}

// TestSaveFileUniqueTempNames checks two interleaved writers to the same
// path cannot share (and thus clobber) a temp file: the temp names are
// unique per call.
func TestSaveFileUniqueTempNames(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckp")
	s := sampleState(rng)
	for i := 0; i < 4; i++ {
		if err := SaveFile(path, s); err != nil {
			t.Fatal(err)
		}
	}
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if len(leftovers) != 0 {
		t.Errorf("temp files left after successful saves: %v", leftovers)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
}
