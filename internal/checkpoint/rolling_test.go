package checkpoint

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestRollingSaveLatestAndPrune: successive saves advance the last-good
// link, Latest follows it, and pruning retains exactly Keep step files.
func TestRollingSaveLatestAndPrune(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := filepath.Join(t.TempDir(), "traj.ckp")
	rl := &Rolling{Base: base, Keep: 2}
	for _, step := range []int64{2, 4, 6} {
		s := sampleState(rng)
		s.Step = step
		if err := rl.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	got, path, err := rl.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 6 {
		t.Fatalf("Latest returned step %d, want 6", got.Step)
	}
	if filepath.Base(path) != "traj.ckp.step0000000006" {
		t.Errorf("Latest path %q does not name the newest step file", path)
	}
	files := rl.stepFiles()
	if len(files) != 2 {
		t.Fatalf("prune kept %d files %v, want 2", len(files), files)
	}
	if _, err := os.Stat(rl.stepPath(2)); !os.IsNotExist(err) {
		t.Error("oldest step file not pruned")
	}
	// The stable name also loads directly (it is a symlink to the newest).
	if s, err := LoadFile(base); err != nil || s.Step != 6 {
		t.Errorf("stable name load: step %v err %v", s, err)
	}
}

// TestRollingSurvivesTornNewest: when the newest checkpoint is damaged
// (the torn-write case the symlink scheme exists for), Latest falls back
// to the previous good file instead of failing.
func TestRollingSurvivesTornNewest(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	base := filepath.Join(t.TempDir(), "traj.ckp")
	rl := &Rolling{Base: base, Keep: 3}
	for _, step := range []int64{5, 10} {
		s := sampleState(rng)
		s.Step = step
		if err := rl.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest step file in place.
	newest := rl.stepPath(10)
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, path, err := rl.Latest()
	if err != nil {
		t.Fatalf("Latest failed despite a good older checkpoint: %v", err)
	}
	if got.Step != 5 {
		t.Fatalf("Latest returned step %d, want fallback to 5", got.Step)
	}
	if path != rl.stepPath(5) {
		t.Errorf("Latest path %q, want %q", path, rl.stepPath(5))
	}
}

// TestRollingEmptySequence: an empty sequence reports os.ErrNotExist so
// callers can distinguish "no checkpoint yet" from damage.
func TestRollingEmptySequence(t *testing.T) {
	rl := &Rolling{Base: filepath.Join(t.TempDir(), "traj.ckp")}
	_, _, err := rl.Latest()
	if err == nil {
		t.Fatal("Latest on empty sequence succeeded")
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("error %v does not wrap os.ErrNotExist", err)
	}
}

// TestRollingAdoptsPlainFile: a plain checkpoint at the base path (from
// a pre-rolling run) is picked up by Latest.
func TestRollingAdoptsPlainFile(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := filepath.Join(t.TempDir(), "traj.ckp")
	s := sampleState(rng)
	s.Step = 33
	if err := SaveFile(base, s); err != nil {
		t.Fatal(err)
	}
	rl := &Rolling{Base: base}
	got, path, err := rl.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 33 || path != base {
		t.Errorf("plain-file adoption: step %d path %q", got.Step, path)
	}
}

// TestRollingClean removes the whole sequence - step files and the
// last-good link - and leaves nothing for Latest to find.
func TestRollingClean(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := filepath.Join(t.TempDir(), "job.ckp")
	rl := &Rolling{Base: base}
	for _, step := range []int64{1, 2} {
		s := sampleState(rng)
		s.Step = step
		if err := rl.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	rl.Clean()
	if files := rl.stepFiles(); len(files) != 0 {
		t.Errorf("Clean left step files %v", files)
	}
	if _, err := os.Lstat(base); !os.IsNotExist(err) {
		t.Error("Clean left the last-good link")
	}
	if _, _, err := rl.Latest(); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("Latest after Clean: %v, want ErrNotExist", err)
	}
	// Clean on an already-empty sequence is a no-op, not an error.
	rl.Clean()
}
