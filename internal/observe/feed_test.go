package observe

import (
	"sync"
	"testing"
)

// TestFeedReplayThenFollow: a subscriber that attaches after some samples
// replays them all, then receives each later sample exactly once, and the
// iteration ends when the feed closes.
func TestFeedReplayThenFollow(t *testing.T) {
	f := NewFeed()
	for i := 0; i < 3; i++ {
		f.Append(Sample{Step: i + 1})
	}
	got := make(chan []int, 1)
	go func() {
		var steps []int
		for i := 0; ; i++ {
			s, ok := f.Wait(i, nil)
			if !ok {
				break
			}
			steps = append(steps, s.Step)
		}
		got <- steps
	}()
	f.Append(Sample{Step: 4})
	f.Append(Sample{Step: 5})
	f.Close()
	steps := <-got
	want := []int{1, 2, 3, 4, 5}
	if len(steps) != len(want) {
		t.Fatalf("got %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("got %v, want %v", steps, want)
		}
	}
}

// TestFeedWaitCancel: a blocked subscriber is released by its cancel
// channel without a sample.
func TestFeedWaitCancel(t *testing.T) {
	f := NewFeed()
	cancel := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, ok := f.Wait(0, cancel)
		done <- ok
	}()
	close(cancel)
	if ok := <-done; ok {
		t.Fatal("canceled Wait returned a sample")
	}
}

// TestFeedConcurrentSubscribers: many subscribers all see the complete
// stream (run under -race this also exercises the locking).
func TestFeedConcurrentSubscribers(t *testing.T) {
	f := NewFeed()
	const n, subs = 50, 8
	var wg sync.WaitGroup
	counts := make([]int, subs)
	for k := 0; k < subs; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; ; i++ {
				s, ok := f.Wait(i, nil)
				if !ok {
					return
				}
				if s.Step != i+1 {
					t.Errorf("subscriber %d: sample %d has step %d", k, i, s.Step)
					return
				}
				counts[k]++
			}
		}(k)
	}
	for i := 0; i < n; i++ {
		f.Append(Sample{Step: i + 1})
	}
	f.Close()
	wg.Wait()
	for k, c := range counts {
		if c != n {
			t.Errorf("subscriber %d saw %d of %d samples", k, c, n)
		}
	}
}

// TestFeedAppendAfterClosePanics: a trajectory cannot grow after it was
// declared complete.
func TestFeedAppendAfterClosePanics(t *testing.T) {
	f := NewFeed()
	f.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Append on a closed feed did not panic")
		}
	}()
	f.Append(Sample{Step: 1})
}
