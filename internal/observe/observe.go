// Package observe computes the physical observables of an rt-TDDFT run:
// total energy, macroscopic current (the velocity-gauge response quantity),
// the integrated dipole, and the absorption spectrum from a delta-kick
// response - the workloads the paper's introduction motivates (light
// absorption, charge dynamics).
package observe

import (
	"math"
	"math/cmplx"

	"ptdft/internal/core"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/linalg"
)

// Current returns the macroscopic current density J(t) = (occ/Omega) *
// sum_b <psi_b| (-i grad + A) |psi_b> for sphere-coefficient bands. In the
// plane-wave basis the expectation is sum_G (G+A) |c_G|^2 per band.
//
// The commutator correction [V_nl, r] of the nonlocal pseudopotential is
// neglected, the common velocity-gauge approximation; with the weak model
// projectors used here its effect on spectra is a few-percent amplitude
// rescaling and does not shift peak positions.
func Current(s *core.System, psi []complex128) [3]float64 {
	j := CurrentPartial(s.G, s.H.Field(), psi, s.NB)
	f := s.Occ / s.G.Volume()
	return [3]float64{j[0] * f, j[1] * f, j[2] * f}
}

// CurrentPartial returns the raw (G+A)-weighted band sums for nb
// band-major bands, without the occ/volume prefactor. Shared by Current
// and the distributed solver, which allreduces per-rank partials before
// scaling.
func CurrentPartial(g *grid.Grid, a [3]float64, psi []complex128, nb int) [3]float64 {
	ng := g.NG
	var jx, jy, jz float64
	for b := 0; b < nb; b++ {
		c := psi[b*ng : (b+1)*ng]
		for s := 0; s < ng; s++ {
			w := real(c[s])*real(c[s]) + imag(c[s])*imag(c[s])
			gv := g.GVec[s]
			jx += (gv[0] + a[0]) * w
			jy += (gv[1] + a[1]) * w
			jz += (gv[2] + a[2]) * w
		}
	}
	return [3]float64{jx, jy, jz}
}

// Energy evaluates the total energy breakdown with H fully refreshed from
// psi at time t (one extra Fock application per step, as the paper counts:
// 24 = 22 SCF + 1 residual + 1 energy).
func Energy(s *core.System, psi []complex128, t float64) hamiltonian.EnergyBreakdown {
	s.Prepare(psi, t)
	return s.H.TotalEnergy(psi, s.NB, s.Occ)
}

// NormError returns the maximum deviation of band norms from 1.
func NormError(s *core.System, psi []complex128) float64 {
	ng := s.G.NG
	var m float64
	for b := 0; b < s.NB; b++ {
		var n float64
		c := psi[b*ng : (b+1)*ng]
		for g := range c {
			n += real(c[g])*real(c[g]) + imag(c[g])*imag(c[g])
		}
		if d := math.Abs(n - 1); d > m {
			m = d
		}
	}
	return m
}

// Dipole integrates the current to the induced dipole moment per cell:
// P(t) = -Omega * int_0^t J dt' (electron charge -1), by trapezoid.
func Dipole(currents [][3]float64, dt, volume float64) [][3]float64 {
	out := make([][3]float64, len(currents))
	var acc [3]float64
	for i := 1; i < len(currents); i++ {
		for d := 0; d < 3; d++ {
			acc[d] += 0.5 * (currents[i-1][d] + currents[i][d]) * dt
			out[i][d] = -volume * acc[d]
		}
	}
	return out
}

// LayerCharge integrates the electron density over the slab
// zLo <= z < zHi (Cartesian bohr, axis z), the region charge used to track
// interlayer charge transfer.
func LayerCharge(g *grid.Grid, rho []float64, zLo, zHi float64) float64 {
	nd := g.ND
	lz := g.Cell.L[2]
	var q float64
	idx := 0
	for ix := 0; ix < nd[0]; ix++ {
		for iy := 0; iy < nd[1]; iy++ {
			for iz := 0; iz < nd[2]; iz++ {
				z := float64(iz) / float64(nd[2]) * lz
				if z >= zLo && z < zHi {
					q += rho[idx]
				}
				idx++
			}
		}
	}
	return q * g.DV()
}

// ExcitedElectrons counts the electrons promoted out of the initial
// occupied subspace - the excited-carrier observable of the paper's
// motivating applications ("excited carrier dynamics"):
//
//	n_exc(t) = Nelec - occ * sum_ij |<phi_i(0)|psi_j(t)>|^2.
//
// Gauge invariant, so PT orbitals can be compared directly against the
// t = 0 eigenstates.
func ExcitedElectrons(s *core.System, psi0, psi []complex128) float64 {
	nb := s.NB
	ng := s.G.NG
	overlap := make([]complex128, nb*nb)
	linalg.Overlap(overlap, psi0, psi, nb, nb, ng)
	var stay float64
	for _, v := range overlap {
		stay += real(v)*real(v) + imag(v)*imag(v)
	}
	return s.Occ * (float64(nb) - stay)
}

// AbsorptionSpectrum computes the optical response from the current after
// a delta kick A(t>0) = k: the complex conductivity sigma(omega) =
// -J(omega)/k with J(omega) = int J(t) exp(i omega t - eta t) dt.
// Sample i of jz is taken at t = t0 + i*dt: propagation drivers that record
// the current after each step (the first sample at t = dt) must pass
// t0 = dt, or every sample is transformed with a phase one sample too
// early, tilting the phase of Re sigma linearly in omega. It returns
// (omegas, Re sigma) on nw points up to omegaMax (au). eta is an
// exponential damping that models finite simulation time.
func AbsorptionSpectrum(jz []float64, dt, t0, kick, omegaMax float64, nw int, eta float64) (omegas, sigma []float64) {
	omegas = make([]float64, nw)
	sigma = make([]float64, nw)
	for w := 0; w < nw; w++ {
		omega := omegaMax * float64(w+1) / float64(nw)
		omegas[w] = omega
		var acc complex128
		for i, j := range jz {
			t := t0 + float64(i)*dt
			acc += complex(j*math.Exp(-eta*t), 0) * cmplx.Exp(complex(0, omega*t))
		}
		acc *= complex(dt, 0)
		sigma[w] = real(-acc / complex(kick, 0))
	}
	return omegas, sigma
}
