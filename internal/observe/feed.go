// Incremental observable feed: the streaming counterpart of the post-hoc
// observable functions in this package. A propagation appends one Sample
// per completed step; any number of subscribers (the job server's SSE
// streams, a test, a progress display) replay the history and then block
// for new samples, so a client attaching mid-run sees the full trajectory
// so far and every later step exactly once.
package observe

import "sync"

// Sample is one step's observables, the unit of the streaming feed and of
// the job server's result records.
type Sample struct {
	Step     int     `json:"step"` // cumulative step index (ion steps under MD)
	TimeFs   float64 `json:"time_fs"`
	Energy   float64 `json:"energy_ha"`
	CurrentZ float64 `json:"current_z"`
	Excited  float64 `json:"excited_electrons"`
	SCFIters int     `json:"scf_iterations"`
	WallSec  float64 `json:"wall_seconds"`
}

// Feed is an append-only sample log with blocking subscription. Appends
// and reads are safe from any goroutine; Close marks the trajectory
// complete and releases every waiting subscriber.
type Feed struct {
	mu      sync.Mutex
	samples []Sample
	closed  bool
	wake    chan struct{} // closed and replaced on every append/close
}

// NewFeed returns an empty, open feed.
func NewFeed() *Feed {
	return &Feed{wake: make(chan struct{})}
}

// Append adds one sample to the feed and wakes every blocked subscriber.
// Appending to a closed feed panics: a trajectory cannot grow after it
// was declared complete.
func (f *Feed) Append(s Sample) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		panic("observe: Append on a closed feed")
	}
	f.samples = append(f.samples, s)
	close(f.wake)
	f.wake = make(chan struct{})
}

// Close marks the feed complete. Idempotent.
func (f *Feed) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	close(f.wake)
	f.wake = make(chan struct{})
}

// Closed reports whether the feed was completed.
func (f *Feed) Closed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// Len returns the number of samples appended so far.
func (f *Feed) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.samples)
}

// Snapshot returns a copy of all samples appended so far.
func (f *Feed) Snapshot() []Sample {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Sample(nil), f.samples...)
}

// Wait blocks until sample i exists and returns it (ok=true), or until
// the feed is closed with fewer than i+1 samples or cancel fires
// (ok=false). Subscribers iterate i = 0, 1, 2, ... for an exactly-once
// replay-then-follow stream:
//
//	for i := 0; ; i++ {
//		s, ok := feed.Wait(i, ctx.Done())
//		if !ok { break }
//		emit(s)
//	}
func (f *Feed) Wait(i int, cancel <-chan struct{}) (Sample, bool) {
	for {
		f.mu.Lock()
		if i < len(f.samples) {
			s := f.samples[i]
			f.mu.Unlock()
			return s, true
		}
		if f.closed {
			f.mu.Unlock()
			return Sample{}, false
		}
		wake := f.wake
		f.mu.Unlock()
		select {
		case <-wake:
		case <-cancel:
			return Sample{}, false
		}
	}
}
