package observe

import (
	"math"
	"math/cmplx"
	"testing"

	"ptdft/internal/core"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/lattice"
	"ptdft/internal/potential"
	"ptdft/internal/pseudo"
	"ptdft/internal/scf"
	"ptdft/internal/wavefunc"
)

func setupSys(t *testing.T) (*core.System, []complex128) {
	t.Helper()
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 3)
	h := hamiltonian.New(g, map[int]*pseudo.Potential{0: pseudo.SiliconAH()}, hamiltonian.Config{})
	nb := cell.NumBands()
	res, err := scf.GroundState(g, h, nb, scf.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	return &core.System{G: g, H: h, NB: nb, Occ: 2}, res.Psi
}

func TestGroundStateCurrentVanishes(t *testing.T) {
	sys, psi := setupSys(t)
	sys.Prepare(psi, 0)
	j := Current(sys, psi)
	for d := 0; d < 3; d++ {
		if math.Abs(j[d]) > 1e-8 {
			t.Errorf("ground state current[%d] = %g, want ~0", d, j[d])
		}
	}
}

func TestKickInducesDiamagneticCurrent(t *testing.T) {
	// Immediately after a kick A, the current is (n_elec/Omega)*A
	// (diamagnetic response): the orbitals have not yet moved.
	sys, psi := setupSys(t)
	kick := 0.02
	sys.Field = &laser.Kick{K: kick, Pol: [3]float64{0, 0, 1}}
	sys.Prepare(psi, 0.001)
	j := Current(sys, psi)
	want := 32.0 / sys.G.Volume() * kick
	if math.Abs(j[2]-want) > 1e-9 {
		t.Errorf("diamagnetic current %g, want %g", j[2], want)
	}
}

func TestNormErrorZeroForOrthonormal(t *testing.T) {
	sys, psi := setupSys(t)
	if e := NormError(sys, psi); e > 1e-10 {
		t.Errorf("norm error %g for orthonormal set", e)
	}
	bad := wavefunc.Clone(psi)
	for i := 0; i < sys.G.NG; i++ {
		bad[i] *= 1.1
	}
	if e := NormError(sys, bad); math.Abs(e-0.21) > 1e-10 {
		t.Errorf("norm error %g, want 0.21 (1.1^2-1)", e)
	}
}

func TestEnergyMatchesHamiltonian(t *testing.T) {
	sys, psi := setupSys(t)
	eb := Energy(sys, psi, 0)
	direct := sys.H.TotalEnergy(psi, sys.NB, 2)
	if math.Abs(eb.Total()-direct.Total()) > 1e-12 {
		t.Error("Energy() does not match direct evaluation")
	}
}

func TestDipoleIntegration(t *testing.T) {
	// Constant current j for time T gives dipole -Omega*j*T.
	currents := make([][3]float64, 11)
	for i := range currents {
		currents[i] = [3]float64{0, 0, 2}
	}
	dip := Dipole(currents, 0.1, 5.0)
	last := dip[len(dip)-1]
	want := -5.0 * 2 * 1.0 // Omega * j * total time
	if math.Abs(last[2]-want) > 1e-12 {
		t.Errorf("dipole %g, want %g", last[2], want)
	}
	if dip[0][2] != 0 {
		t.Error("dipole must start at zero")
	}
}

func TestAbsorptionSpectrumPeakAtOscillation(t *testing.T) {
	// A damped cosine current at omega0 must produce a spectral peak at
	// omega0.
	omega0 := 0.5
	dt := 0.1
	n := 2000
	jz := make([]float64, n)
	for i := range jz {
		tt := float64(i) * dt
		jz[i] = math.Cos(omega0*tt) * math.Exp(-0.002*tt)
	}
	omegas, sigma := AbsorptionSpectrum(jz, dt, 0, -1.0, 1.0, 200, 0.002)
	best, bestVal := 0.0, math.Inf(-1)
	for i := range omegas {
		if sigma[i] > bestVal {
			bestVal = sigma[i]
			best = omegas[i]
		}
	}
	if math.Abs(best-omega0) > 0.02 {
		t.Errorf("spectrum peak at %g, want %g", best, omega0)
	}
}

func TestAbsorptionSpectrumLinearInKick(t *testing.T) {
	jz := []float64{0.1, 0.2, 0.15, 0.05, -0.02}
	_, s1 := AbsorptionSpectrum(jz, 0.1, 0.1, 0.01, 1, 10, 0.01)
	jz2 := make([]float64, len(jz))
	for i := range jz2 {
		jz2[i] = 2 * jz[i]
	}
	_, s2 := AbsorptionSpectrum(jz2, 0.1, 0.1, 0.02, 1, 10, 0.01)
	for i := range s1 {
		if math.Abs(s1[i]-s2[i]) > 1e-12 {
			t.Fatal("sigma not invariant under linear response scaling")
		}
	}
}

// TestAbsorptionSpectrumTimeBase pins the t0 sample offset against the
// closed form of the transform for an analytic damped cosine: with
// j(t) = cos(omega0 t) exp(-gamma t) sampled at t_i = t0 + i*dt, the sum
//
//	S(omega) = dt * sum_i j(t_i) exp((i omega - eta) t_i)
//
// is a pair of geometric series. The pre-fix code phased sample i at
// t = i*dt while recording it at t = (i+1)*dt - a linear-in-omega phase
// tilt that this closed-form comparison catches immediately.
func TestAbsorptionSpectrumTimeBase(t *testing.T) {
	const (
		omega0 = 0.35
		gamma  = 0.004
		eta    = 0.002
		dt     = 0.25
		t0     = dt // samples recorded after each step, as cmd/spectra does
		n      = 1500
		nw     = 64
		wmax   = 1.0
	)
	jz := make([]float64, n)
	for i := range jz {
		ti := t0 + float64(i)*dt
		jz[i] = math.Cos(omega0*ti) * math.Exp(-gamma*ti)
	}
	omegas, sigma := AbsorptionSpectrum(jz, dt, t0, -1.0, wmax, nw, eta)

	// Closed form: cos splits into e^{+i omega0 t} and e^{-i omega0 t};
	// each series has ratio r = exp((i(omega +- omega0) - eta - gamma) dt)
	// and first term exp(z * t0).
	series := func(omega, s0 float64) complex128 {
		z := complex(-eta-gamma, omega+s0*omega0)
		r := cmplx.Exp(z * complex(dt, 0))
		first := cmplx.Exp(z * complex(t0, 0))
		return first * (1 - cmplx.Pow(r, complex(n, 0))) / (1 - r)
	}
	for w := range omegas {
		want := real(complex(dt/2, 0) * (series(omegas[w], 1) + series(omegas[w], -1)))
		if d := math.Abs(sigma[w] - want); d > 1e-10*float64(n) {
			t.Fatalf("omega=%g: sigma %g differs from analytic %g by %g", omegas[w], sigma[w], want, d)
		}
	}

	// The same series phased without the offset must disagree visibly at
	// high omega - the regression the t0 parameter exists to prevent.
	_, tilted := AbsorptionSpectrum(jz, dt, 0, -1.0, wmax, nw, eta)
	if d := math.Abs(tilted[nw-1] - sigma[nw-1]); d < 1e-6 {
		t.Errorf("dropping t0 changed the high-frequency response by only %g; the phase pin is vacuous", d)
	}
}

func TestLayerChargePartitionsTotal(t *testing.T) {
	sys, psi := setupSys(t)
	g := sys.G
	rho := potential.Density(g, psi, sys.NB, 2)
	half := g.Cell.L[2] / 2
	qLo := LayerCharge(g, rho, 0, half)
	qHi := LayerCharge(g, rho, half, g.Cell.L[2])
	total := qLo + qHi
	if math.Abs(total-32) > 1e-8 {
		t.Errorf("layer charges %g + %g = %g, want 32", qLo, qHi, total)
	}
	// The Si8 crystal maps onto itself under the half-cell FCC
	// translation, so the halves hold equal charge up to the egg-box
	// error of the real-space projectors: the 9-point wavefunction grid
	// cannot represent the half-grid shift exactly (the artifact the
	// paper's ref [37] mask functions mitigate). Converging Ecut shrinks
	// it; at Ecut = 3 it sits near 7e-3 electrons.
	if math.Abs(qLo-qHi) > 2e-2 {
		t.Errorf("layer asymmetry %g beyond the expected egg-box level", math.Abs(qLo-qHi))
	}
}

func TestExcitedElectronsZeroAtStart(t *testing.T) {
	sys, psi := setupSys(t)
	if n := ExcitedElectrons(sys, psi, psi); math.Abs(n) > 1e-9 {
		t.Errorf("excited electrons of identical states = %g, want 0", n)
	}
	// A band swap is still the same subspace: gauge invariant, still 0.
	ng := sys.G.NG
	rot := wavefunc.Clone(psi)
	copy(rot[:ng], psi[ng:2*ng])
	copy(rot[ng:2*ng], psi[:ng])
	if n := ExcitedElectrons(sys, psi, rot); math.Abs(n) > 1e-9 {
		t.Errorf("excited electrons under band swap = %g, want 0 (gauge invariance)", n)
	}
}
