package machine

import (
	"math"
	"testing"
)

func TestNodePower(t *testing.T) {
	s := Default()
	// Section 6: GPU node = 2x190 + 6x300 = 2180 W, CPU node = 380 W.
	if got := s.GPUNodePowerW(); got != 2180 {
		t.Errorf("GPU node power %g, want 2180", got)
	}
	if got := s.CPUNodePowerW(); got != 380 {
		t.Errorf("CPU node power %g, want 380", got)
	}
}

func TestPaperPowerNumbers(t *testing.T) {
	s := Default()
	// 73 CPU nodes at 380 W = 27740 W; 12 GPU nodes at 2180 W = 26160 W.
	if got := 73 * s.CPUNodePowerW(); got != 27740 {
		t.Errorf("73 CPU nodes = %g W, paper reports 27740", got)
	}
	if got := 12 * s.GPUNodePowerW(); got != 26160 {
		t.Errorf("12 GPU nodes = %g W, paper reports 26160", got)
	}
}

func TestNodesForGPUs(t *testing.T) {
	s := Default()
	cases := map[int]int{6: 1, 36: 6, 72: 12, 768: 128, 3072: 512, 7: 2}
	for gpus, nodes := range cases {
		if got := s.NodesForGPUs(gpus); got != nodes {
			t.Errorf("NodesForGPUs(%d) = %d, want %d", gpus, got, nodes)
		}
	}
}

func TestNodesForCores(t *testing.T) {
	s := Default()
	// 44 cores per node; 3072 cores -> 70 nodes by division.
	if got := s.NodesForCores(3072); got != 70 {
		t.Errorf("NodesForCores(3072) = %d, want 70", got)
	}
	if got := s.NodesForCores(44); got != 1 {
		t.Errorf("NodesForCores(44) = %d, want 1", got)
	}
}

func TestComparePower(t *testing.T) {
	s := Default()
	pc := s.ComparePower(3072, 72, 8874, 1269.1)
	if pc.GPUNodes != 12 {
		t.Errorf("GPU nodes %d, want 12", pc.GPUNodes)
	}
	if pc.GPUPowerW != 26160 {
		t.Errorf("GPU power %g, want 26160", pc.GPUPowerW)
	}
	// Table 1: 7.0x at 72 GPUs.
	if math.Abs(pc.SpeedupAtEqualPower-6.99) > 0.05 {
		t.Errorf("speedup %g, want ~7.0", pc.SpeedupAtEqualPower)
	}
}

func TestHardwareConstants(t *testing.T) {
	s := Default()
	if s.GPUPeakTFLOPS != 7.8 || s.GPUMemGBs != 900 || s.GPUMemGB != 16 {
		t.Error("V100 constants do not match section 5")
	}
	if s.NVLinkGBs != 50 || s.XBusGBs != 64 || s.NodeNICGBs != 25 {
		t.Error("interconnect constants do not match section 5")
	}
	if s.NodeDRAMGB != 512 || s.CPUMemGBs != 135 {
		t.Error("memory constants do not match section 5")
	}
	if s.CoresPerSocket != 22 {
		t.Error("POWER9 has 22 physical cores per socket")
	}
}
