// Package machine describes the Summit supercomputer configuration of
// section 5 - node composition, bandwidths, peak rates, and power draw -
// and provides the power-equivalence comparison of section 6.
package machine

// Summit holds the hardware constants of one Summit node and its
// interconnect (section 5 and Fig. 5 of the paper).
type Summit struct {
	GPUsPerNode    int     // NVIDIA V100 per node
	SocketsPerNode int     // IBM POWER9 sockets
	CoresPerSocket int     // physical CPU cores
	GPUPeakTFLOPS  float64 // double precision peak per GPU
	GPUMemGBs      float64 // HBM bandwidth per GPU (GB/s)
	GPUMemGB       float64 // HBM capacity per GPU
	CPUMemGBs      float64 // DDR4 bandwidth per socket (GB/s)
	NodeDRAMGB     float64 // CPU main memory per node
	NVLinkGBs      float64 // CPU-GPU link bandwidth
	XBusGBs        float64 // socket-to-socket bus
	NICGBs         float64 // injection bandwidth per NIC (one per socket)
	NodeNICGBs     float64 // total node injection (dual rail EDR)
	GPUPowerW      float64 // per V100
	SocketPowerW   float64 // per POWER9 socket
}

// Default returns the configuration the paper reports.
func Default() Summit {
	return Summit{
		GPUsPerNode:    6,
		SocketsPerNode: 2,
		CoresPerSocket: 22,
		GPUPeakTFLOPS:  7.8,
		GPUMemGBs:      900,
		GPUMemGB:       16,
		CPUMemGBs:      135,
		NodeDRAMGB:     512,
		NVLinkGBs:      50,
		XBusGBs:        64,
		NICGBs:         12.5,
		NodeNICGBs:     25,
		GPUPowerW:      300,
		SocketPowerW:   190,
	}
}

// GPUNodePowerW is the draw of a node with all GPUs active:
// 2 sockets + 6 V100 = 2180 W in the paper's accounting.
func (s Summit) GPUNodePowerW() float64 {
	return float64(s.SocketsPerNode)*s.SocketPowerW + float64(s.GPUsPerNode)*s.GPUPowerW
}

// CPUNodePowerW is the draw of a CPU-only node: 380 W.
func (s Summit) CPUNodePowerW() float64 {
	return float64(s.SocketsPerNode) * s.SocketPowerW
}

// NodesForGPUs returns the number of nodes hosting p GPUs (6 per node).
func (s Summit) NodesForGPUs(p int) int {
	return (p + s.GPUsPerNode - 1) / s.GPUsPerNode
}

// NodesForCores returns the number of nodes hosting n CPU cores.
func (s Summit) NodesForCores(n int) int {
	perNode := s.SocketsPerNode * s.CoresPerSocket
	return (n + perNode - 1) / perNode
}

// PowerComparison reproduces the section 6 equal-power argument: the CPU
// configuration (3072 cores = 73 nodes, 27,740 W) versus the 12-node GPU
// configuration (72 GPUs, 26,160 W).
type PowerComparison struct {
	CPUCores            int
	CPUNodes            int
	CPUPowerW           float64
	GPUs                int
	GPUNodes            int
	GPUPowerW           float64
	CPUTimeS            float64
	GPUTimeS            float64
	SpeedupAtEqualPower float64
}

// ComparePower evaluates the power-normalized comparison for the given
// configurations and measured/modelled wall-clock times.
func (s Summit) ComparePower(cpuCores, gpus int, cpuTime, gpuTime float64) PowerComparison {
	pc := PowerComparison{
		CPUCores: cpuCores,
		CPUNodes: s.NodesForCores(cpuCores),
		GPUs:     gpus,
		GPUNodes: s.NodesForGPUs(gpus),
		CPUTimeS: cpuTime,
		GPUTimeS: gpuTime,
	}
	pc.CPUPowerW = float64(pc.CPUNodes) * s.CPUNodePowerW()
	pc.GPUPowerW = float64(pc.GPUNodes) * s.GPUNodePowerW()
	if gpuTime > 0 {
		pc.SpeedupAtEqualPower = cpuTime / gpuTime
	}
	return pc
}
