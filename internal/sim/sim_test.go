package sim

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"ptdft/internal/observe"
)

// testSpec is the smallest real system: Si8, low cutoff, a short PT-CN
// kick trajectory.
func testSpec() Spec {
	return Spec{
		Cells: [3]int{1, 1, 1}, Ecut: 2, Method: "ptcn",
		DtAs: 24, Steps: 6, Kick: 0.02, Seed: 1234, Exchange: "bcast",
	}
}

// TestSpecValidateRules pins the validation table: every rule the CLI
// used to enforce must reject through the spec too.
func TestSpecValidateRules(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Spec)
		want string // substring of the error; "" means valid
	}{
		{"baseline", func(s *Spec) {}, ""},
		{"zero cells", func(s *Spec) { s.Cells[1] = 0 }, "cells"},
		{"zero ecut", func(s *Spec) { s.Ecut = 0 }, "ecut"},
		{"bad method", func(s *Spec) { s.Method = "euler" }, "method"},
		{"negative steps", func(s *Spec) { s.Steps = -1 }, "step count"},
		{"ace without hybrid", func(s *Spec) { s.ACE = true }, "hybrid"},
		{"acehold serial", func(s *Spec) { s.ACEHold = true; s.Hybrid = true }, "distributed"},
		{"mts without hybrid", func(s *Spec) { s.MTS = 4 }, "hybrid"},
		{"mts with rk4", func(s *Spec) { s.MTS = 4; s.Hybrid = true; s.Method = "rk4" }, "PT-CN"},
		{"mts vs acehold", func(s *Spec) { s.MTS = 2; s.ACEHold = true; s.Hybrid = true; s.Ranks = 2 }, "cadence"},
		{"md with rk4", func(s *Spec) { s.MD = true; s.IonSteps = 2; s.Method = "rk4" }, "PT-CN"},
		{"md zero ion steps", func(s *Spec) { s.MD = true; s.IonSteps = 0 }, "ion_steps"},
		{"md bad tiling", func(s *Spec) { s.MD = true; s.IonSteps = 2; s.IonDtAs = 100 }, "multiple"},
		{"negative ranks", func(s *Spec) { s.Ranks = -2 }, "rank"},
		{"distributed rk4", func(s *Spec) { s.Ranks = 2; s.Method = "rk4" }, "ptcn"},
		{"bad exchange", func(s *Spec) { s.Exchange = "quantum" }, "strategy"},
		{"negative steal chunk", func(s *Spec) { s.StealChunk = -1 }, "chunk"},
		{"steal chunk wrong strategy", func(s *Spec) { s.StealChunk = 4 }, "steal"},
		{"bad displace", func(s *Spec) { s.Displace = "frog" }, "displace"},
		{"indivisible bands", func(s *Spec) { s.Ranks = 3 }, "divisible"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := testSpec()
			tc.mod(&s)
			err := s.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid spec rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSpecNormalizeDefaults: a sparse JSON spec gets the CLI defaults.
func TestSpecNormalizeDefaults(t *testing.T) {
	s := Spec{Cells: [3]int{1, 1, 1}, Ecut: 2, Steps: 1, MD: true, IonSteps: 1, ACEHold: true, Hybrid: true, Ranks: 2}
	s.Normalize()
	if s.Method != "ptcn" || s.Exchange != "overlap" || s.DtAs != 24 || s.IonDtAs != 96 {
		t.Errorf("defaults not filled: %+v", s)
	}
	if !s.ACE {
		t.Error("acehold did not imply ace")
	}
}

// TestSCFKeySensitivity: the cache key must separate every spec
// dimension that changes the converged ground state - including the
// functional-adjacent flags (ACE, MD) that perturb it at round-off.
func TestSCFKeySensitivity(t *testing.T) {
	key := func(mod func(*Spec)) string {
		s := testSpec()
		mod(&s)
		k, err := s.SCFKey()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base := key(func(s *Spec) {})
	if base != key(func(s *Spec) {}) {
		t.Fatal("equal specs produced different keys")
	}
	// Steps and kick do NOT change the ground state: same key, so an
	// ensemble over trajectories shares one solve.
	if base != key(func(s *Spec) { s.Steps = 100; s.Kick = 0.5 }) {
		t.Error("trajectory-only fields changed the key")
	}
	if base != key(func(s *Spec) { s.Ranks = 4 }) {
		t.Error("rank layout changed the key")
	}
	for name, mod := range map[string]func(*Spec){
		"ecut":     func(s *Spec) { s.Ecut = 3 },
		"hybrid":   func(s *Spec) { s.Hybrid = true },
		"ace":      func(s *Spec) { s.Hybrid = true; s.ACE = true },
		"md":       func(s *Spec) { s.MD = true; s.IonSteps = 1; s.IonDtAs = 96 },
		"seed":     func(s *Spec) { s.Seed = 99 },
		"cells":    func(s *Spec) { s.Cells = [3]int{1, 1, 2} },
		"displace": func(s *Spec) { s.Displace = "0:0.1,0,0" },
	} {
		if base == key(mod) {
			t.Errorf("%s change did not change the SCF key", name)
		}
	}
}

// TestRunSplitEqualsContinuous: running 3+3 steps through an in-memory
// checkpoint (the server's preempt/resume path, without the disk) agrees
// with the uninterrupted 6-step run - same ground state, same samples,
// same final orbitals.
func TestRunSplitEqualsContinuous(t *testing.T) {
	spec := testSpec()
	cont, err := Run(&spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	specA := testSpec()
	specA.Steps = 3
	segA, err := Run(&specA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if segA.Final == nil || segA.Final.Step != 3 {
		t.Fatalf("segment A final state covers step %v, want 3", segA.Final)
	}
	specB := testSpec()
	specB.Steps = 3
	segB, err := Run(&specB, Options{Ground: segA.Ground, Resume: segA.Final})
	if err != nil {
		t.Fatal(err)
	}
	if !segB.GroundCached {
		t.Error("supplied ground state not marked cached")
	}
	if segB.Final.Step != 6 {
		t.Errorf("resumed final step %d, want 6", segB.Final.Step)
	}
	all := append(append([]observe.Sample{}, segA.Samples...), segB.Samples...)
	if len(all) != len(cont.Samples) {
		t.Fatalf("split yielded %d samples, continuous %d", len(all), len(cont.Samples))
	}
	for i := range all {
		if all[i].Step != cont.Samples[i].Step {
			t.Errorf("sample %d: step %d vs %d", i, all[i].Step, cont.Samples[i].Step)
		}
		if d := math.Abs(all[i].Energy - cont.Samples[i].Energy); d > 1e-10 {
			t.Errorf("sample %d: energy differs by %g", i, d)
		}
	}
	if len(segB.Psi) != len(cont.Psi) {
		t.Fatalf("psi length %d vs %d", len(segB.Psi), len(cont.Psi))
	}
	var maxd float64
	for i := range cont.Psi {
		if d := cmplx.Abs(segB.Psi[i] - cont.Psi[i]); d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-10 {
		t.Errorf("split and continuous orbitals differ by %g, want <= 1e-10", maxd)
	}
}

// TestRunPulseSplitEqualsContinuous: the 380nm pulse envelope is a
// function of the TOTAL trajectory length, so a segment resumed through a
// checkpoint must propagate under the identical field as the
// uninterrupted run - Options.PulseSteps carries the total when the
// spec's step count is only the remainder.
func TestRunPulseSplitEqualsContinuous(t *testing.T) {
	pulsed := func(steps int) Spec {
		s := testSpec()
		s.Kick = 0
		s.PulseE0 = 0.005
		s.Steps = steps
		return s
	}
	spec := pulsed(6)
	cont, err := Run(&spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	specA := pulsed(3)
	segA, err := Run(&specA, Options{PulseSteps: 6})
	if err != nil {
		t.Fatal(err)
	}
	specB := pulsed(3)
	segB, err := Run(&specB, Options{Ground: segA.Ground, Resume: segA.Final, PulseSteps: 6})
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]observe.Sample{}, segA.Samples...), segB.Samples...)
	if len(all) != len(cont.Samples) {
		t.Fatalf("split yielded %d samples, continuous %d", len(all), len(cont.Samples))
	}
	for i := range all {
		if d := math.Abs(all[i].Energy - cont.Samples[i].Energy); d > 1e-10 {
			t.Errorf("sample %d: energy differs by %g - the resumed segment saw a different laser field", i, d)
		}
	}
	var maxd float64
	for i := range cont.Psi {
		if d := cmplx.Abs(segB.Psi[i] - cont.Psi[i]); d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-10 {
		t.Errorf("split and continuous orbitals differ by %g, want <= 1e-10", maxd)
	}
}

// TestRunStopAndStream: the Stop channel ends the run after the step in
// flight; OnSample saw exactly the completed steps, in order.
func TestRunStopAndStream(t *testing.T) {
	spec := testSpec()
	spec.Steps = 10
	stop := make(chan struct{})
	var streamed []int
	res, err := Run(&spec, Options{
		Stop:     stop,
		OnSample: func(s observe.Sample) { streamed = append(streamed, s.Step) },
		AfterStep: func(done int) {
			if done == 4 {
				close(stop)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Error("Stopped not set")
	}
	if len(res.Samples) != 4 {
		t.Fatalf("ran %d steps, want 4", len(res.Samples))
	}
	if len(streamed) != 4 || streamed[3] != 4 {
		t.Errorf("streamed steps %v, want [1 2 3 4]", streamed)
	}
	if res.Final.Step != 4 {
		t.Errorf("final state step %d, want 4", res.Final.Step)
	}
}
