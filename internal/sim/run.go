// Run drivers: the four propagation paths (serial/distributed x
// electron-only/Ehrenfest MD) extracted from cmd/ptdft so the CLI and the
// job server share one implementation. Every driver supports cooperative
// shutdown (the Stop channel finishes the step in flight, checkpoints the
// completed steps, and returns), per-step observable emission, periodic
// rolling checkpoints, and resume from a loaded checkpoint - the
// machinery preemption and crash recovery are built from.
package sim

import (
	"fmt"
	"math"
	"time"

	"ptdft/internal/checkpoint"
	"ptdft/internal/core"
	"ptdft/internal/dist"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/mpi"
	"ptdft/internal/observe"
	"ptdft/internal/scf"
	"ptdft/internal/trace"
	"ptdft/internal/units"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

// tagStop is the AllreduceSum tag (consumes tagStop and tagStop+1) for
// the per-step shutdown vote: far above the dist tag namespace (fixed
// tags end at 131; the exchange windows are 1<<10..1<<12 + band index).
const tagStop = 9000

// Options carries the runtime wiring of one Run: hooks, checkpointing,
// and reusable inputs. All fields are optional.
type Options struct {
	// Stop is closed to request a graceful shutdown (SIGINT on the CLI,
	// preemption or drain on the server): the driver finishes the step in
	// flight, the final checkpoint covers the completed steps, and Run
	// returns with Result.Stopped set.
	Stop chan struct{}
	// AfterStep observes each completed step (rank 0 in distributed
	// runs); a test hook and the preemption trigger.
	AfterStep func(done int)
	// OnSample receives each step's observables as it completes - the
	// streaming feed. Called from the driver goroutine (rank 0).
	OnSample func(observe.Sample)
	// Ground supplies a pre-computed ground state (an SCF-cache hit); nil
	// means Run solves it. The orbitals are treated as read-only.
	Ground *scf.Result
	// Resume continues from a loaded checkpoint instead of the ground
	// state. Run validates compatibility against the spec.
	Resume *checkpoint.State
	// Ckpt, when set, receives a durable rolling checkpoint every
	// CkptEvery steps (ion steps under MD) plus the final state. With
	// Ckpt nil and SavePath set, only the final state is written there.
	Ckpt      *checkpoint.Rolling
	CkptEvery int
	SavePath  string
	// Trace, when set, records per-rank span timelines for the whole
	// segment: the drivers attach one track per rank (track 0 serially)
	// and the solver/comm layers fill it. Result carries the folded
	// aggregates; export the recorder for the full timeline. nil (the
	// default) keeps every recording site on its zero-alloc disabled path.
	Trace *trace.Recorder
	// PulseSteps overrides the electronic step count the 380nm pulse
	// envelope is shaped from (sigma = dt*PulseSteps/4, peak at 2*sigma).
	// When the spec covers only a segment of a longer trajectory (a
	// checkpoint resume), set it to the TOTAL length so every segment
	// propagates under the identical laser field; the field is a function
	// of absolute time, which the checkpoint carries. 0 means Spec.Steps.
	PulseSteps int
	// Logf receives progress notices (system, ground state, cadence,
	// communication volume); nil silences them.
	Logf func(format string, args ...any)
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// stopped reports whether a shutdown was requested.
func (o *Options) stopRequested() bool {
	if o.Stop == nil {
		return false
	}
	select {
	case <-o.Stop:
		return true
	default:
		return false
	}
}

// Result is the outcome of one Run segment.
type Result struct {
	Samples []observe.Sample // one per completed step (ion steps under MD)
	Psi     []complex128     // full band set after the last completed step
	Time    float64          // simulation time (au)
	Stopped bool             // the segment ended on a shutdown request

	Ground        *scf.Result // the ground state used (cached or solved)
	GroundCached  bool        // true when Options.Ground supplied it
	GroundWallSec float64     // SCF wall time (0 on a cache hit)

	EhrenfestDrift float64           // max |E_tot - E_0| over the segment (MD only)
	Final          *checkpoint.State // the assembled restartable state

	// Observability aggregates (zero/nil unless Options.Trace was set, and
	// Comm only on distributed runs): cumulative busy seconds summed over
	// rank timelines, total bytes moved through the communicator, the
	// per-phase wall breakdown, and the raw comm ledgers for heat maps.
	RankSeconds  float64
	BytesMoved   int64
	PhaseSeconds map[string]float64
	Comm         *mpi.Stats
}

// runner bundles the derived state the drivers share.
type runner struct {
	spec   *Spec
	opt    *Options
	g      *grid.Grid
	nb     int
	natom  int64
	ex     dist.ExchangeStrategy
	field  laser.Field
	dt     float64
	t0     float64
	loaded *checkpoint.State
	psiGS  []complex128 // ground-state reference for excited-electron counts
	psi0   []complex128 // starting orbitals of this segment

	commStats *mpi.Stats // comm ledgers of the distributed drivers' world
}

// Run executes the spec to completion (or until Stop fires), returning
// the trajectory segment. The driver is selected by (MD, Ranks) exactly
// like the CLI: serial or distributed, electron-only or Ehrenfest.
func Run(spec *Spec, opt Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cell, g, nb, err := spec.System()
	if err != nil {
		return nil, err
	}
	opt.logf("system: Si%d (%dx%dx%d cells), Ecut %.1f Ha; grid %v (NG=%d), bands %d",
		cell.NumAtoms(), spec.Cells[0], spec.Cells[1], spec.Cells[2], spec.Ecut, g.N, g.NG, nb)

	res := &Result{}
	gs := opt.Ground
	if gs != nil {
		res.GroundCached = true
		opt.logf("ground state: E = %.8f Ha (cached; %d SCF iterations at build)", gs.Energy.Total(), gs.SCFIterations)
	} else {
		start := time.Now()
		gs, err = GroundState(spec)
		if err != nil {
			return nil, err
		}
		res.GroundWallSec = time.Since(start).Seconds()
		opt.logf("ground state: E = %.8f Ha (%d SCF iterations, density err %.2e)",
			gs.Energy.Total(), gs.SCFIterations, gs.DensityError)
	}
	res.Ground = gs

	var field laser.Field
	switch {
	case spec.PulseE0 != 0:
		pulseSteps := spec.Steps
		if opt.PulseSteps > 0 {
			pulseSteps = opt.PulseSteps
		}
		sigma := units.AttosecondsToAU(spec.DtAs) * float64(pulseSteps) / 4
		field = laser.New380nm(spec.PulseE0, 2*sigma, sigma)
		opt.logf("field: 380nm pulse, E0=%.4g Ha/bohr, envelope over %d steps", spec.PulseE0, pulseSteps)
	case spec.Kick != 0:
		field = &laser.Kick{K: spec.Kick, Pol: [3]float64{0, 0, 1}}
		opt.logf("field: delta kick A=%.4g au along z", spec.Kick)
	}

	psiStart := gs.Psi
	t0 := 0.0
	if opt.Resume != nil {
		st := opt.Resume
		if err := st.Compatible(nb, g.NG, int64(cell.NumAtoms()), spec.Ecut, spec.Hybrid, spec.MTS, spec.ACE, spec.MD); err != nil {
			return nil, err
		}
		psiStart = st.Psi
		t0 = st.Time
		opt.logf("resumed at t = %.2f as (step %d)", units.AUToAttoseconds(st.Time), st.Step)
	}

	ex, err := spec.ExchangeStrategy()
	if err != nil {
		return nil, err
	}
	r := &runner{
		spec: spec, opt: &opt, g: g, nb: nb, natom: int64(cell.NumAtoms()),
		ex: ex, field: field, dt: units.AttosecondsToAU(spec.DtAs), t0: t0,
		loaded: opt.Resume, psiGS: gs.Psi, psi0: psiStart,
	}

	var samples []observe.Sample
	var psiFinal []complex128
	var tFinal float64
	var mts mtsSnapshot
	var ions ionSnapshot
	switch {
	case spec.MD && spec.Ranks > 1:
		samples, psiFinal, tFinal, mts, ions, err = r.runDistributedMD(cell)
	case spec.MD:
		samples, psiFinal, tFinal, mts, ions, err = r.runSerialMD(cell)
	case spec.Ranks > 1:
		samples, psiFinal, tFinal, mts, err = r.runDistributed()
	default:
		samples, psiFinal, tFinal, mts, err = r.runSerial()
	}
	if err != nil {
		return nil, err
	}
	res.Samples = samples
	res.Psi = psiFinal
	res.Time = tFinal
	res.Stopped = opt.stopRequested()
	res.Comm = r.commStats
	if opt.Trace != nil {
		res.RankSeconds = opt.Trace.RankSeconds()
		res.PhaseSeconds = opt.Trace.PhaseSeconds()
	}
	if r.commStats != nil {
		res.BytesMoved = r.commStats.TotalBytes()
	}
	if spec.MD && len(samples) > 0 {
		for _, s := range samples {
			if d := math.Abs(s.Energy - ions.e0); d > res.EhrenfestDrift {
				res.EhrenfestDrift = d
			}
		}
		opt.logf("ehrenfest: %d ion steps of %g as (K=%d electronic steps each); max total-energy drift %.3e Ha",
			len(samples), spec.IonDtAs, spec.IonSubsteps(), res.EhrenfestDrift)
	}

	// Assemble the restartable state covering the completed steps. The
	// step counter is cumulative provenance: a resumed segment saves
	// loaded.Step + its own steps, so a trajectory split across segments
	// reports the true global step on every file.
	elSteps := len(samples)
	if spec.MD {
		elSteps = len(samples) * spec.IonSubsteps()
	}
	st := r.segmentState(tFinal, psiFinal, elSteps, mts.phase, mts.phiRef)
	if spec.MD {
		st.IonSteps = checkpoint.ContinuationIonSteps(r.loaded, len(samples))
		st.IonPos, st.IonVel, st.IonForce = ions.pos, ions.vel, ions.force
	}
	res.Final = st
	switch {
	case opt.Ckpt != nil:
		if err := opt.Ckpt.Save(st); err != nil {
			return nil, err
		}
	case opt.SavePath != "":
		if err := checkpoint.SaveFile(opt.SavePath, st); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// GroundState solves the spec's ground-state SCF (the cache-miss path of
// the job server, and the default path of Run).
func GroundState(spec *Spec) (*scf.Result, error) {
	_, g, nb, err := spec.System()
	if err != nil {
		return nil, err
	}
	h := hamiltonian.New(g, spec.Pots(), hamiltonian.Config{
		Hybrid: spec.Hybrid, UseACE: spec.ACE, Params: xc.HSE06(), IonDynamics: spec.MD,
	})
	o := scf.Defaults()
	o.Seed = spec.Seed
	return scf.GroundState(g, h, nb, o)
}

// emit records one completed step on rank 0: appended to the segment's
// sample list and forwarded to the streaming hook.
func (r *runner) emit(samples []observe.Sample, s observe.Sample) []observe.Sample {
	if r.opt.OnSample != nil {
		r.opt.OnSample(s)
	}
	return append(samples, s)
}

// baseStep returns the cumulative step offset of this segment (driver
// steps: ion steps under MD, electronic steps otherwise).
func (r *runner) baseStep() int {
	if r.loaded == nil {
		return 0
	}
	if r.spec.MD {
		return int(r.loaded.IonSteps)
	}
	return int(r.loaded.Step)
}

// segmentState assembles the restartable state after elDone completed
// electronic steps of this segment (MD callers add the ion block).
func (r *runner) segmentState(t float64, psi []complex128, elDone, phase int, phiRef []complex128) *checkpoint.State {
	return &checkpoint.State{
		Time: t, Step: checkpoint.ContinuationStep(r.loaded, elDone), NBands: r.nb, NG: r.g.NG,
		Natom: r.natom, Ecut: r.spec.Ecut, Hybrid: r.spec.Hybrid, Psi: psi,
		MTSPeriod: int64(r.spec.MTS), MTSPhase: int64(phase), MTSACE: r.spec.ACE && r.spec.MTS > 0,
		PhiRef: phiRef,
	}
}

// mtsSnapshot carries the MTS cadence state out of a propagation for
// checkpointing: the cycle phase at the end of the run and - mid-cycle
// only - the frozen exchange reference of the last outer step.
type mtsSnapshot struct {
	phase  int
	phiRef []complex128
}

// needRef reports whether the final state must carry the frozen exchange
// reference: only mid-cycle, and only when a checkpoint will be written.
func (r *runner) needRef() bool {
	return r.opt.Ckpt != nil || r.opt.SavePath != ""
}

func (r *runner) runSerial() ([]observe.Sample, []complex128, float64, mtsSnapshot, error) {
	spec, opt := r.spec, r.opt
	h := hamiltonian.New(r.g, spec.Pots(), hamiltonian.Config{
		Hybrid: spec.Hybrid, UseACE: spec.ACE, Params: xc.HSE06(),
	})
	tr := opt.Trace.Track(0, "rank 0")
	h.SetTrace(tr)
	sys := &core.System{G: r.g, H: h, NB: r.nb, Occ: 2, Field: r.field, Tr: tr}
	psi := wavefunc.Clone(r.psi0)
	var samples []observe.Sample
	var snap mtsSnapshot
	var stepFn func([]complex128, float64) ([]complex128, core.StepStats, error)
	var now func() float64
	var pt *core.PTCN
	switch spec.Method {
	case "ptcn":
		pt = core.NewPTCN(sys, core.DefaultPTCN())
		pt.Time = r.t0
		pt.MTS = spec.MTS
		if r.loaded != nil {
			if err := pt.ResumeMTS(int(r.loaded.MTSPhase), r.loaded.PhiRef); err != nil {
				return nil, nil, 0, snap, err
			}
		}
		stepFn, now = pt.Step, func() float64 { return pt.Time }
	case "rk4":
		rk := core.NewRK4(sys)
		rk.Time = r.t0
		stepFn, now = rk.Step, func() float64 { return rk.Time }
	}
	base := r.baseStep()
	for i := 0; i < spec.Steps; i++ {
		start := time.Now()
		var stats core.StepStats
		var err error
		psi, stats, err = stepFn(psi, r.dt)
		if err != nil {
			return nil, nil, 0, snap, fmt.Errorf("step %d: %w", i, err)
		}
		wall := time.Since(start).Seconds()
		obsRef := tr.Begin("observe", "observe")
		eb := observe.Energy(sys, psi, now())
		j := observe.Current(sys, psi)
		nexc := observe.ExcitedElectrons(sys, r.psiGS, psi)
		tr.End(obsRef)
		samples = r.emit(samples, observe.Sample{
			Step:     base + i + 1,
			TimeFs:   now() * units.FemtosecondPerAU,
			Energy:   eb.Total(),
			CurrentZ: j[2],
			Excited:  nexc,
			SCFIters: stats.SCFIterations,
			WallSec:  wall,
		})
		done := i + 1
		if opt.AfterStep != nil {
			opt.AfterStep(done)
		}
		if opt.Ckpt != nil && opt.CkptEvery > 0 && done%opt.CkptEvery == 0 && done < spec.Steps {
			phase := 0
			var ref []complex128
			if pt != nil && spec.MTS > 0 {
				if phase = pt.MTSPhase(); phase != 0 {
					ref = wavefunc.Clone(pt.MTSRef())
				}
			}
			ckRef := tr.Begin("checkpoint", "io")
			st := r.segmentState(now(), wavefunc.Clone(psi), done, phase, ref)
			err := opt.Ckpt.Save(st)
			tr.End(ckRef)
			if err != nil {
				return nil, nil, 0, snap, fmt.Errorf("periodic checkpoint after step %d: %w", done, err)
			}
		}
		if opt.stopRequested() {
			break
		}
	}
	// Report which exchange operator actually propagated the run: a
	// degenerate reference set downgrades an ACE refresh to the exact
	// operator, and that must never stay invisible.
	if spec.Hybrid && spec.ACE {
		if n, lastErr := h.ACEFallbacks(); n > 0 {
			opt.logf("exchange operator: ACE with %d refresh(es) fallen back to exact exchange (last failure: %v)", n, lastErr)
		} else {
			opt.logf("exchange operator: ACE (no fallbacks)")
		}
	}
	if pt != nil && spec.MTS > 0 {
		snap.phase = pt.MTSPhase()
		if snap.phase != 0 && r.needRef() {
			// The frozen-reference copy only matters to a checkpoint.
			snap.phiRef = wavefunc.Clone(pt.MTSRef())
		}
		opt.logf("MTS cadence: exchange refreshed every %d steps (ended at cycle phase %d)", spec.MTS, snap.phase)
	}
	return samples, psi, now(), snap, nil
}

func (r *runner) runDistributed() ([]observe.Sample, []complex128, float64, mtsSnapshot, error) {
	spec, opt := r.spec, r.opt
	var snap mtsSnapshot
	exOpt := dist.ExchangeOptions{
		Strategy:          r.ex,
		SinglePrecision:   spec.SinglePrec,
		ACE:               spec.ACE,
		ACEHoldThroughSCF: spec.ACEHold,
		MTSPeriod:         spec.MTS,
		StealChunk:        spec.StealChunk,
	}
	op := "none (semi-local)"
	switch {
	case spec.Hybrid && spec.MTS > 0 && spec.ACE:
		op = fmt.Sprintf("ACE frozen between outer steps (MTS M=%d)", spec.MTS)
	case spec.Hybrid && spec.MTS > 0:
		op = fmt.Sprintf("exact exchange frozen between outer steps (MTS M=%d)", spec.MTS)
	case spec.Hybrid && spec.ACEHold:
		op = "ACE (held through inner SCF)"
	case spec.Hybrid && spec.ACE:
		op = "ACE (rebuilt per refresh)"
	case spec.Hybrid:
		op = "exact exchange"
	}
	opt.logf("distributed: %d ranks, exchange strategy %v, operator %s, single precision %v", spec.Ranks, r.ex, op, spec.SinglePrec)

	base := r.baseStep()
	samples := make([]observe.Sample, spec.Steps)
	psiFinal := make([]complex128, r.nb*r.g.NG)
	var tFinal float64
	var firstErr, saveErr error
	doneSteps := 0
	stats := mpi.Run(spec.Ranks, func(c *mpi.Comm) {
		// One flight-recorder track per rank: the solver and the comm layer
		// record onto it through the Comm handle (nil recorder -> nil track
		// -> every site stays on its disabled path).
		c.SetTrace(opt.Trace.Track(c.Rank(), fmt.Sprintf("rank %d", c.Rank())))
		d, err := dist.NewCtx(c, r.g, r.nb, 2)
		if err != nil {
			if c.Rank() == 0 {
				firstErr = err
			}
			return
		}
		h := hamiltonian.New(r.g, spec.Pots(), hamiltonian.Config{})
		s := dist.NewPTCNSolver(d, h, xc.HSE06(), spec.Hybrid, r.field, core.DefaultPTCN(), exOpt)
		s.Time = r.t0
		lo, hi := d.BandRange(c.Rank())
		ng := r.g.NG
		local := wavefunc.Clone(r.psi0[lo*ng : hi*ng])
		if r.loaded != nil {
			// Land on the saved cycle phase; mid-cycle the frozen exchange
			// reference of the last outer step is restored (and the
			// compressed operator reconstructed from it, collectively).
			var ref []complex128
			if r.loaded.PhiRef != nil {
				ref = r.loaded.PhiRef[lo*ng : hi*ng]
			}
			if err := s.ResumeMTS(int(r.loaded.MTSPhase), ref); err != nil {
				if c.Rank() == 0 {
					firstErr = err
				}
				return
			}
		}
		for i := 0; i < spec.Steps; i++ {
			start := time.Now()
			var st core.StepStats
			local, st, err = s.Step(local, r.dt)
			if err != nil {
				// Convergence failures are symmetric across ranks (the
				// density criterion is global), so every rank exits here
				// together and no collective is left half-entered.
				if c.Rank() == 0 {
					firstErr = fmt.Errorf("step %d: %w", i, err)
				}
				return
			}
			// The wall clock covers the step only, not the observable
			// evaluations after it (matches the serial driver).
			wall := time.Since(start).Seconds()
			eb := s.TotalEnergy(local, s.Time)
			j := s.Current(local)
			nexc := s.ExcitedElectrons(r.psiGS, local)
			done := i + 1
			if c.Rank() == 0 {
				samples[i] = observe.Sample{
					Step:     base + done,
					TimeFs:   s.Time * units.FemtosecondPerAU,
					Energy:   eb.Total(),
					CurrentZ: j[2],
					Excited:  nexc,
					SCFIters: st.SCFIterations,
					WallSec:  wall,
				}
				doneSteps = done
				if opt.OnSample != nil {
					opt.OnSample(samples[i])
				}
				if opt.AfterStep != nil {
					opt.AfterStep(done)
				}
			}
			// Periodic durable checkpoint: the cadence test is on the shared
			// step counter, so every rank enters the gathers together. A
			// failed save must not abort mid-collective (the other ranks
			// would hang); it is recorded and reported after the run.
			if opt.Ckpt != nil && opt.CkptEvery > 0 && done%opt.CkptEvery == 0 && done < spec.Steps {
				ckRef := c.Trace().Begin("checkpoint", "io")
				phase := 0
				if spec.MTS > 0 {
					phase = s.MTSPhase()
				}
				full := d.Gather(local)
				var ref []complex128
				if phase != 0 {
					refFull := d.Gather(s.MTSRef())
					if c.Rank() == 0 {
						ref = wavefunc.Clone(refFull)
					}
				}
				if c.Rank() == 0 {
					st := r.segmentState(s.Time, wavefunc.Clone(full), done, phase, ref)
					if err := opt.Ckpt.Save(st); err != nil && saveErr == nil {
						saveErr = fmt.Errorf("periodic checkpoint after step %d: %w", done, err)
					}
				}
				c.Trace().End(ckRef)
			}
			// Shutdown vote: only rank 0 sees the stop flag; the sum makes
			// the break rank-symmetric so no collective is left half-entered.
			stopFlag := []float64{0}
			if c.Rank() == 0 && opt.stopRequested() {
				stopFlag[0] = 1
			}
			mpi.AllreduceSum(c, tagStop, stopFlag)
			if stopFlag[0] != 0 {
				break
			}
		}
		full := d.Gather(local)
		if c.Rank() == 0 {
			copy(psiFinal, full)
			tFinal = s.Time
		}
		if spec.MTS > 0 {
			// The phase and the save decision are rank-symmetric, so the
			// gather decision is a collective-safe branch; only mid-cycle
			// saves need the frozen reference on the wire at all.
			phase := s.MTSPhase()
			if c.Rank() == 0 {
				snap.phase = phase
			}
			if phase != 0 && r.needRef() {
				ref := d.Gather(s.MTSRef())
				if c.Rank() == 0 {
					snap.phiRef = wavefunc.Clone(ref)
				}
			}
		}
	})
	r.commStats = stats
	if firstErr != nil {
		return nil, nil, 0, snap, firstErr
	}
	if saveErr != nil {
		return nil, nil, 0, snap, saveErr
	}
	opt.logf("communication volume: Bcast %.1f MB, Alltoallv %.1f MB, Allreduce %.1f MB, AllGatherv %.1f MB",
		mb(stats.BytesFor(mpi.ClassBcast)), mb(stats.BytesFor(mpi.ClassAlltoallv)),
		mb(stats.BytesFor(mpi.ClassAllreduce)), mb(stats.BytesFor(mpi.ClassAllgatherv)))
	return samples[:doneSteps], psiFinal, tFinal, snap, nil
}

func mb(b int64) float64 { return float64(b) / 1e6 }
