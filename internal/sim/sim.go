// Package sim is the reusable run layer shared by cmd/ptdft and the job
// server (internal/server, cmd/ptdftd): a JSON-serializable simulation
// Spec with the full flag-validation rules, the ground-state solve, and
// the four propagation drivers (serial/distributed x electron-only/
// Ehrenfest MD) with hooks for streaming observables, cooperative
// preemption, checkpoint-backed resume, and a pre-computed (cached)
// ground state. cmd/ptdft's CLI is a thin flag front-end over this
// package; the server multiplexes many Specs over a worker pool.
package sim

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"ptdft/internal/dist"
	"ptdft/internal/grid"
	"ptdft/internal/lattice"
	"ptdft/internal/pseudo"
	"ptdft/internal/scf"
)

// Spec fully describes one simulation: the physical system, the
// functional and exchange cadence, the integrator, and the parallel
// layout. It is JSON-serializable (the job server's POST /jobs body) and
// carries the same validation rules the ptdft CLI enforces, so a spec
// that validates here runs on every driver.
type Spec struct {
	Cells      [3]int  `json:"cells"`                 // supercell repetitions (8 Si atoms per cell)
	Ecut       float64 `json:"ecut"`                  // kinetic energy cutoff (Ha)
	Hybrid     bool    `json:"hybrid,omitempty"`      // HSE-like screened-exchange functional
	ACE        bool    `json:"ace,omitempty"`         // apply exchange through the ACE compression
	ACEHold    bool    `json:"acehold,omitempty"`     // hold the distributed ACE operator through each inner SCF
	MTS        int     `json:"mts,omitempty"`         // exchange refresh period M (0 = off)
	Method     string  `json:"method,omitempty"`      // "ptcn" (default) or "rk4"
	DtAs       float64 `json:"dt_as,omitempty"`       // electronic time step in attoseconds (default 24)
	Steps      int     `json:"steps"`                 // propagation steps (electronic; ignored under MD)
	Kick       float64 `json:"kick,omitempty"`        // delta-kick vector potential (au)
	PulseE0    float64 `json:"pulse_e0,omitempty"`    // 380nm pulse peak field (Ha/bohr); overrides Kick
	Ranks      int     `json:"ranks,omitempty"`       // goroutine-MPI ranks (0/1 = serial)
	Seed       int64   `json:"seed,omitempty"`        // ground-state starting-guess seed
	Exchange   string  `json:"exchange,omitempty"`    // distributed exchange strategy (default "overlap")
	StealChunk int     `json:"steal_chunk,omitempty"` // pairs per claim under "steal" (0 = auto)
	SinglePrec bool    `json:"single_prec,omitempty"` // single-precision MPI payloads
	MD         bool    `json:"md,omitempty"`          // Ehrenfest ion dynamics
	IonSteps   int     `json:"ion_steps,omitempty"`   // ion MD steps (trajectory length under MD)
	IonDtAs    float64 `json:"ion_dt_as,omitempty"`   // ion time step (attoseconds); integer multiple of DtAs
	Displace   string  `json:"displace,omitempty"`    // pre-SCF displacement "i:dx,dy,dz" (Bohr)
}

// Normalize fills defaulted fields in place (the CLI's flag defaults),
// so a sparse JSON spec and a full flag set describe the same run.
func (s *Spec) Normalize() {
	if s.Method == "" {
		s.Method = "ptcn"
	}
	if s.Exchange == "" {
		s.Exchange = "overlap"
	}
	if s.DtAs == 0 {
		s.DtAs = 24
	}
	if s.MD && s.IonDtAs == 0 {
		s.IonDtAs = 96
	}
	if s.ACEHold {
		// -acehold implies -ace: the hold is a cadence of the compression.
		s.ACE = true
	}
}

// Validate checks the full rule set the ptdft CLI enforces (no silent
// flag drops: every request must reach a code path that honors it). It
// normalizes first, so callers can hand it a sparse spec directly.
func (s *Spec) Validate() error {
	s.Normalize()
	for _, v := range s.Cells {
		if v < 1 {
			return fmt.Errorf("sim: cells want nx,ny,nz >= 1, got %v", s.Cells)
		}
	}
	if s.Ecut <= 0 {
		return fmt.Errorf("sim: ecut wants a positive cutoff (Ha), got %g", s.Ecut)
	}
	if s.Method != "ptcn" && s.Method != "rk4" {
		return fmt.Errorf("sim: unknown method %q", s.Method)
	}
	if s.Steps < 0 {
		return fmt.Errorf("sim: negative step count %d", s.Steps)
	}
	if s.ACEHold && s.Ranks <= 1 {
		return fmt.Errorf("sim: acehold is a distributed cadence (requires ranks > 1); the serial ACE always rebuilds per refresh - for a serial hold use mts=1")
	}
	if s.ACE && !s.Hybrid {
		return fmt.Errorf("sim: ace selects the exchange operator of the hybrid functional; set hybrid")
	}
	switch {
	case s.MTS < 0:
		return fmt.Errorf("sim: mts wants a refresh period >= 1 (or 0 to disable), got %d", s.MTS)
	case s.MTS > 0 && !s.Hybrid:
		return fmt.Errorf("sim: mts freezes the hybrid exchange between outer steps; it needs hybrid")
	case s.MTS > 0 && s.Method != "ptcn":
		return fmt.Errorf("sim: mts is a PT-CN refresh cadence; method %s does not support it", s.Method)
	case s.MTS > 1 && s.ACEHold:
		return fmt.Errorf("sim: acehold is exactly mts=1; it cannot combine with mts=%d - pick one cadence", s.MTS)
	}
	if s.MD {
		if s.Method != "ptcn" {
			return fmt.Errorf("sim: md couples the ions to the PT-CN propagator; method %s does not support it", s.Method)
		}
		if s.IonSteps < 1 {
			return fmt.Errorf("sim: md wants ion_steps >= 1, got %d", s.IonSteps)
		}
		if s.DtAs <= 0 || s.IonDtAs <= 0 {
			return fmt.Errorf("sim: md wants positive time steps, got dt %g and ion_dt %g", s.DtAs, s.IonDtAs)
		}
		k := s.IonDtAs / s.DtAs
		if k < 0.5 || math.Abs(k-math.Round(k)) > 1e-9*k {
			return fmt.Errorf("sim: ion_dt %g as is not an integer multiple of dt %g as (each ion step spans K electronic steps)", s.IonDtAs, s.DtAs)
		}
	}
	if s.Ranks < 0 {
		return fmt.Errorf("sim: negative rank count %d", s.Ranks)
	}
	if s.Ranks > 1 && s.Method != "ptcn" {
		return fmt.Errorf("sim: distributed runs support method ptcn only")
	}
	if _, err := dist.ParseStrategy(s.Exchange); err != nil {
		return err
	}
	if s.StealChunk < 0 {
		return fmt.Errorf("sim: steal_chunk wants a positive chunk size (or 0 for auto), got %d", s.StealChunk)
	}
	if ex, _ := dist.ParseStrategy(s.Exchange); s.StealChunk > 0 && ex != dist.Steal {
		return fmt.Errorf("sim: steal_chunk tunes the work-queue granularity of exchange=steal; it does nothing under exchange=%s", s.Exchange)
	}
	if s.Displace != "" {
		if _, _, err := ParseDisplace(s.Displace); err != nil {
			return err
		}
	}
	// Band/rank divisibility and displacement bounds need the cell; it is
	// cheap (no grid, no FFT plans), so a spec that validates here cannot
	// fail those checks after an expensive ground state.
	cell, err := s.Cell()
	if err != nil {
		return err
	}
	if s.Ranks > 1 && cell.NumBands()%s.Ranks != 0 {
		return fmt.Errorf("sim: %d bands not divisible by %d ranks", cell.NumBands(), s.Ranks)
	}
	return nil
}

// ParseDisplace parses a displacement spec "i:dx,dy,dz" (Bohr).
func ParseDisplace(s string) (int, [3]float64, error) {
	var vec [3]float64
	head, tail, ok := strings.Cut(s, ":")
	if !ok {
		return 0, vec, fmt.Errorf("sim: displace wants i:dx,dy,dz, got %q", s)
	}
	atom, err := strconv.Atoi(strings.TrimSpace(head))
	if err != nil || atom < 0 {
		return 0, vec, fmt.Errorf("sim: displace: bad atom index %q", head)
	}
	parts := strings.Split(tail, ",")
	if len(parts) != 3 {
		return 0, vec, fmt.Errorf("sim: displace wants three components, got %q", tail)
	}
	for i, p := range parts {
		if vec[i], err = strconv.ParseFloat(strings.TrimSpace(p), 64); err != nil {
			return 0, vec, fmt.Errorf("sim: displace: bad component %q", p)
		}
	}
	return atom, vec, nil
}

// Cell builds the (possibly displaced) supercell of the spec.
func (s *Spec) Cell() (*lattice.Cell, error) {
	cell, err := lattice.SiliconSupercell(s.Cells[0], s.Cells[1], s.Cells[2])
	if err != nil {
		return nil, err
	}
	if s.Displace != "" {
		atom, vec, err := ParseDisplace(s.Displace)
		if err != nil {
			return nil, err
		}
		if err := cell.DisplaceAtom(atom, vec); err != nil {
			return nil, err
		}
	}
	return cell, nil
}

// System builds the cell, wavefunction grid and band count of the spec.
func (s *Spec) System() (*lattice.Cell, *grid.Grid, int, error) {
	cell, err := s.Cell()
	if err != nil {
		return nil, nil, 0, err
	}
	g, err := grid.New(cell, s.Ecut)
	if err != nil {
		return nil, nil, 0, err
	}
	return cell, g, cell.NumBands(), nil
}

// ExchangeStrategy resolves the spec's exchange strategy name.
func (s *Spec) ExchangeStrategy() (dist.ExchangeStrategy, error) {
	return dist.ParseStrategy(s.Exchange)
}

// Functional names the exchange-correlation treatment of the ground-state
// solve for cache keying: everything that changes the converged orbitals
// beyond (cell, grid, bands) must be encoded here.
func (s *Spec) Functional() string {
	name := "lda"
	if s.Hybrid {
		name = "hse06"
		if s.ACE {
			name += "+ace"
		}
	}
	if s.MD {
		// Ion dynamics switches the Hamiltonian to the gradient-capable
		// (band-limited, full-grid) nonlocal projectors, which perturbs the
		// converged ground state at round-off level.
		name += "+md"
	}
	return name
}

// SCFKey returns the content hash identifying this spec's ground-state
// problem for the SCF cache: two specs with equal keys converge to the
// bit-identical ground state.
func (s *Spec) SCFKey() (string, error) {
	cell, err := s.Cell()
	if err != nil {
		return "", err
	}
	return scf.Fingerprint(cell, s.Ecut, s.Functional(), cell.NumBands(), s.Seed), nil
}

// IonSubsteps returns K, the electronic PT-CN steps per ion step.
func (s *Spec) IonSubsteps() int { return int(math.Round(s.IonDtAs / s.DtAs)) }

// TotalSteps is the trajectory length in driver steps: ion steps under
// MD, electronic steps otherwise.
func (s *Spec) TotalSteps() int {
	if s.MD {
		return s.IonSteps
	}
	return s.Steps
}

// Pots returns the pseudopotential table for the spec's species set
// (silicon supercells only today).
func (s *Spec) Pots() map[int]*pseudo.Potential {
	return map[int]*pseudo.Potential{0: pseudo.SiliconAH()}
}
