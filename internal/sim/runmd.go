// Ehrenfest MD drivers: velocity-Verlet ions coupled to PT-CN electrons,
// serial and distributed, with the same shutdown/checkpoint/streaming
// contract as the electron-only drivers in run.go.
package sim

import (
	"fmt"
	"time"

	"ptdft/internal/checkpoint"
	"ptdft/internal/core"
	"ptdft/internal/dist"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/ion"
	"ptdft/internal/lattice"
	"ptdft/internal/mpi"
	"ptdft/internal/observe"
	"ptdft/internal/units"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

// ionSnapshot carries the Ehrenfest ion state out of a propagation for
// checkpointing: positions, velocities and the cached force after the
// last completed ion step.
type ionSnapshot struct {
	pos, vel, force [][3]float64
	e0              float64 // conserved total before the first recorded step
}

// snapshotIons captures the integrator's restartable state.
func snapshotIons(v *ion.Verlet) ionSnapshot {
	return ionSnapshot{
		pos:   v.Cell.Positions(),
		vel:   append([][3]float64(nil), v.Vel...),
		force: append([][3]float64(nil), v.F...),
	}
}

// runSerialMD drives the coupled Ehrenfest system serially: a velocity-
// Verlet ion integrator over the cell, with core.PTCN advancing the
// electrons K steps per ion step. The recorded energy is the conserved
// total (electronic + ion kinetic + ion-ion).
func (r *runner) runSerialMD(cell *lattice.Cell) ([]observe.Sample, []complex128, float64, mtsSnapshot, ionSnapshot, error) {
	spec, opt := r.spec, r.opt
	var snap mtsSnapshot
	var ionsnap ionSnapshot
	h := hamiltonian.New(r.g, spec.Pots(), hamiltonian.Config{
		Hybrid: spec.Hybrid, UseACE: spec.ACE, Params: xc.HSE06(), IonDynamics: true,
	})
	tr := opt.Trace.Track(0, "rank 0")
	h.SetTrace(tr)
	sys := &core.System{G: r.g, H: h, NB: r.nb, Occ: 2, Field: r.field, Tr: tr}
	pt := core.NewPTCN(sys, core.DefaultPTCN())
	pt.Time = r.t0
	pt.MTS = spec.MTS
	if r.loaded != nil {
		if err := pt.ResumeMTS(int(r.loaded.MTSPhase), r.loaded.PhiRef); err != nil {
			return nil, nil, 0, snap, ionsnap, err
		}
	}
	se := &ion.SerialElectrons{P: pt, Psi: wavefunc.Clone(r.psi0), Pots: spec.Pots()}
	v, err := ion.NewVerlet(cell, se, units.AttosecondsToAU(spec.IonDtAs), spec.IonSubsteps())
	if err != nil {
		return nil, nil, 0, snap, ionsnap, err
	}
	if r.loaded != nil && r.loaded.HasIons() {
		if err := v.Resume(r.loaded.IonPos, r.loaded.IonVel, r.loaded.IonForce, int(r.loaded.IonSteps)); err != nil {
			return nil, nil, 0, snap, ionsnap, err
		}
	}
	// The drift baseline is the conserved total BEFORE any ion step: the
	// first step is the largest for a released atom and must not hide its
	// own error. (This also fills the initial force cache.)
	e0, err := v.TotalEnergy()
	if err != nil {
		return nil, nil, 0, snap, ionsnap, err
	}
	ionsnap.e0 = e0
	base := r.baseStep()
	var samples []observe.Sample
	for i := 0; i < spec.IonSteps; i++ {
		start := time.Now()
		se.SCF = 0
		ionRef := tr.Begin("ion_step", "step")
		err := v.Step()
		tr.EndN(ionRef, int64(i))
		if err != nil {
			return nil, nil, 0, snap, ionsnap, fmt.Errorf("ion step %d: %w", i, err)
		}
		wall := time.Since(start).Seconds()
		obsRef := tr.Begin("observe", "observe")
		etot, err := v.TotalEnergy()
		if err != nil {
			tr.End(obsRef)
			return nil, nil, 0, snap, ionsnap, err
		}
		j := observe.Current(sys, se.Psi)
		nexc := observe.ExcitedElectrons(sys, r.psiGS, se.Psi)
		tr.End(obsRef)
		samples = r.emit(samples, observe.Sample{
			Step:     base + i + 1,
			TimeFs:   pt.Time * units.FemtosecondPerAU,
			Energy:   etot,
			CurrentZ: j[2],
			Excited:  nexc,
			SCFIters: se.SCF,
			WallSec:  wall,
		})
		done := i + 1
		if opt.AfterStep != nil {
			opt.AfterStep(done)
		}
		if opt.Ckpt != nil && opt.CkptEvery > 0 && done%opt.CkptEvery == 0 && done < spec.IonSteps {
			phase := 0
			var ref []complex128
			if spec.MTS > 0 {
				if phase = pt.MTSPhase(); phase != 0 {
					ref = wavefunc.Clone(pt.MTSRef())
				}
			}
			ckRef := tr.Begin("checkpoint", "io")
			st := r.segmentState(pt.Time, wavefunc.Clone(se.Psi), done*spec.IonSubsteps(), phase, ref)
			st.IonSteps = checkpoint.ContinuationIonSteps(r.loaded, done)
			is := snapshotIons(v)
			st.IonPos, st.IonVel, st.IonForce = is.pos, is.vel, is.force
			err := opt.Ckpt.Save(st)
			tr.End(ckRef)
			if err != nil {
				return nil, nil, 0, snap, ionsnap, fmt.Errorf("periodic checkpoint after ion step %d: %w", done, err)
			}
		}
		if opt.stopRequested() {
			break
		}
	}
	if spec.MTS > 0 {
		snap.phase = pt.MTSPhase()
		if snap.phase != 0 && r.needRef() {
			snap.phiRef = wavefunc.Clone(pt.MTSRef())
		}
	}
	e0 = ionsnap.e0
	ionsnap = snapshotIons(v)
	ionsnap.e0 = e0
	return samples, se.Psi, pt.Time, snap, ionsnap, nil
}

// runDistributedMD drives the coupled system over goroutine-MPI ranks.
// Each rank owns a cloned cell and a grid/Hamiltonian built on it, and
// integrates a replicated Verlet trajectory: the forces are allreduced in
// deterministic rank order, so every replica is bit-identical and the
// trajectory matches the serial driver to reduction round-off.
func (r *runner) runDistributedMD(cell *lattice.Cell) ([]observe.Sample, []complex128, float64, mtsSnapshot, ionSnapshot, error) {
	spec, opt := r.spec, r.opt
	var snap mtsSnapshot
	var ionsnap ionSnapshot
	exOpt := dist.ExchangeOptions{
		Strategy:          r.ex,
		SinglePrecision:   spec.SinglePrec,
		ACE:               spec.ACE,
		ACEHoldThroughSCF: spec.ACEHold,
		MTSPeriod:         spec.MTS,
		StealChunk:        spec.StealChunk,
	}
	opt.logf("distributed ehrenfest: %d ranks, %d ion steps x K=%d electronic steps", spec.Ranks, spec.IonSteps, spec.IonSubsteps())

	base := r.baseStep()
	samples := make([]observe.Sample, spec.IonSteps)
	psiFinal := make([]complex128, r.nb*r.g.NG)
	var tFinal float64
	var firstErr, saveErr error
	doneSteps := 0
	stats := mpi.Run(spec.Ranks, func(c *mpi.Comm) {
		c.SetTrace(opt.Trace.Track(c.Rank(), fmt.Sprintf("rank %d", c.Rank())))
		fail := func(err error) {
			if c.Rank() == 0 {
				firstErr = err
			}
		}
		// Per-rank geometry: a cloned cell and a grid built on it, so the
		// concurrent position updates of the replicated trajectories never
		// touch shared memory.
		cellR := cell.Clone()
		gR, err := grid.New(cellR, spec.Ecut)
		if err != nil {
			fail(err)
			return
		}
		d, err := dist.NewCtx(c, gR, r.nb, 2)
		if err != nil {
			fail(err)
			return
		}
		h := hamiltonian.New(gR, spec.Pots(), hamiltonian.Config{IonDynamics: true})
		s := dist.NewPTCNSolver(d, h, xc.HSE06(), spec.Hybrid, r.field, core.DefaultPTCN(), exOpt)
		s.Time = r.t0
		ng := r.g.NG
		lo, hi := d.BandRange(c.Rank())
		de := &ion.DistElectrons{S: s, Local: wavefunc.Clone(r.psi0[lo*ng : hi*ng]), Pots: spec.Pots()}
		if r.loaded != nil {
			var ref []complex128
			if r.loaded.PhiRef != nil {
				ref = r.loaded.PhiRef[lo*ng : hi*ng]
			}
			if err := s.ResumeMTS(int(r.loaded.MTSPhase), ref); err != nil {
				fail(err)
				return
			}
		}
		v, err := ion.NewVerlet(cellR, de, units.AttosecondsToAU(spec.IonDtAs), spec.IonSubsteps())
		if err != nil {
			fail(err)
			return
		}
		if r.loaded != nil && r.loaded.HasIons() {
			if err := v.Resume(r.loaded.IonPos, r.loaded.IonVel, r.loaded.IonForce, int(r.loaded.IonSteps)); err != nil {
				fail(err)
				return
			}
		}
		// Drift baseline before the first step, mirroring runSerialMD.
		e0, err := v.TotalEnergy()
		if err != nil {
			fail(err)
			return
		}
		for i := 0; i < spec.IonSteps; i++ {
			start := time.Now()
			de.SCF = 0
			ionRef := c.Trace().Begin("ion_step", "step")
			err := v.Step()
			c.Trace().EndN(ionRef, int64(i))
			if err != nil {
				// PT-CN convergence failure is decided on the global
				// density, so every rank exits here together.
				fail(fmt.Errorf("ion step %d: %w", i, err))
				return
			}
			wall := time.Since(start).Seconds()
			etot, err := v.TotalEnergy()
			if err != nil {
				fail(err)
				return
			}
			j := s.Current(de.Local)
			nexc := s.ExcitedElectrons(r.psiGS, de.Local)
			done := i + 1
			if c.Rank() == 0 {
				samples[i] = observe.Sample{
					Step:     base + done,
					TimeFs:   s.Time * units.FemtosecondPerAU,
					Energy:   etot,
					CurrentZ: j[2],
					Excited:  nexc,
					SCFIters: de.SCF,
					WallSec:  wall,
				}
				doneSteps = done
				if opt.OnSample != nil {
					opt.OnSample(samples[i])
				}
				if opt.AfterStep != nil {
					opt.AfterStep(done)
				}
			}
			// Periodic durable checkpoint (same collective discipline and
			// failure handling as the electron-only distributed driver).
			if opt.Ckpt != nil && opt.CkptEvery > 0 && done%opt.CkptEvery == 0 && done < spec.IonSteps {
				ckRef := c.Trace().Begin("checkpoint", "io")
				phase := 0
				if spec.MTS > 0 {
					phase = s.MTSPhase()
				}
				full := d.Gather(de.Local)
				var ref []complex128
				if phase != 0 {
					refFull := d.Gather(s.MTSRef())
					if c.Rank() == 0 {
						ref = wavefunc.Clone(refFull)
					}
				}
				if c.Rank() == 0 {
					st := r.segmentState(s.Time, wavefunc.Clone(full), done*spec.IonSubsteps(), phase, ref)
					st.IonSteps = checkpoint.ContinuationIonSteps(r.loaded, done)
					is := snapshotIons(v)
					st.IonPos, st.IonVel, st.IonForce = is.pos, is.vel, is.force
					if err := opt.Ckpt.Save(st); err != nil && saveErr == nil {
						saveErr = fmt.Errorf("periodic checkpoint after ion step %d: %w", done, err)
					}
				}
				c.Trace().End(ckRef)
			}
			stopFlag := []float64{0}
			if c.Rank() == 0 && opt.stopRequested() {
				stopFlag[0] = 1
			}
			mpi.AllreduceSum(c, tagStop, stopFlag)
			if stopFlag[0] != 0 {
				break
			}
		}
		full := d.Gather(de.Local)
		if c.Rank() == 0 {
			copy(psiFinal, full)
			tFinal = s.Time
			ionsnap = snapshotIons(v)
			ionsnap.e0 = e0
		}
		if spec.MTS > 0 {
			phase := s.MTSPhase()
			if c.Rank() == 0 {
				snap.phase = phase
			}
			if phase != 0 && r.needRef() {
				ref := d.Gather(s.MTSRef())
				if c.Rank() == 0 {
					snap.phiRef = wavefunc.Clone(ref)
				}
			}
		}
	})
	r.commStats = stats
	if firstErr != nil {
		return nil, nil, 0, snap, ionsnap, firstErr
	}
	if saveErr != nil {
		return nil, nil, 0, snap, ionsnap, saveErr
	}
	opt.logf("communication volume: Bcast %.1f MB, Alltoallv %.1f MB, Allreduce %.1f MB, AllGatherv %.1f MB",
		mb(stats.BytesFor(mpi.ClassBcast)), mb(stats.BytesFor(mpi.ClassAlltoallv)),
		mb(stats.BytesFor(mpi.ClassAllreduce)), mb(stats.BytesFor(mpi.ClassAllgatherv)))
	return samples[:doneSteps], psiFinal, tFinal, snap, ionsnap, nil
}
