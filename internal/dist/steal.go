// Work-stealing Fock-exchange schedule: the static band-ownership loops of
// the other strategies are replaced by a dynamic work queue over the
// symmetric exchange pairs, following the HONPAS dynamic parallel
// distribution algorithm (arXiv:2009.03555). Ranks claim chunks of
// consecutive pairs through an MPI_Fetch_and_op counter while the band
// broadcasts run ahead of the contraction, so a straggling rank claims
// fewer chunks instead of gating every one of the nb broadcast rounds.
//
// Two schedule shapes share the machinery:
//
//   - Triangle: when the reference and target blocks hold the same values
//     at full wire precision (the dominant case - the exact operator on the
//     live iterate, the ACE build), one Poisson solve serves the unordered
//     pair (i, j): acc_j += -alpha phi_i v and acc_i += -alpha phi_j
//     conj(v) with v = Poisson[phi_i^* phi_j], exactly the serial
//     operator's pair symmetry. nb(nb+1)/2 solves instead of nb*nb.
//   - Rectangle: when the blocks differ (frozen MTS references) or the
//     wire rounds phi to single precision (the mirrored contribution would
//     diverge from the bcast result at wire precision), every ordered pair
//     (i, j) is scheduled and contributes only to target j, from exactly
//     the inputs the bcast strategy uses: wire-precision phi_i, full-
//     precision psi_j (targets always ship in double).
//
// Pairs are ordered by their readiness index m = max(i, j): a chunk is
// contractable as soon as band m has arrived, so claims overlap the
// broadcast pipeline instead of waiting for the full reference set.
//
// Contributions to bands this rank does not own are staged in real space
// and shipped to their owners after the claim loop with one dense
// Alltoallv of sphere coefficients; FockExchangeWS folds the received sum
// into vx after the accumulator projection. The reduce always runs in
// double precision - single-precision wire payloads round only the
// reference orbitals, as in the static strategies - so the result matches
// bcast to accumulation-order rounding regardless of which rank computed
// which pair.
package dist

import (
	"ptdft/internal/fock"
	"ptdft/internal/lanes"
	"ptdft/internal/mpi"
)

// stealState holds the work-stealing schedule's buffers, allocated lazily
// on the first Steal call and reused forever after (the steady-state
// exchange performs no allocations on one rank; on several ranks only the
// mailbox copies of the mpi layer remain).
type stealState struct {
	// Schedule, cached for (nb, rect): positions map to pairs through
	// pairI/pairJ, readiness-ordered (see stealFillPairs).
	rect   bool
	npairs int
	pairI  []int32
	pairJ  []int32

	allR    lanes.Slab // NB x NTot: every reference band in real space (SoA)
	psiAllR lanes.Slab // NB x NTot: every target band (rectangle, size > 1)
	psiBand [2][]complex128
	remR    lanes.Slab     // NB x NTot: accumulators for bands owned elsewhere (SoA)
	remG    []complex128   // NB x NG: remote contributions on the sphere
	touched []bool         // NB: remote bands this rank contributed to
	send    [][]complex128 // Alltoallv views into remG, one per rank
	vxAdd   []complex128   // nbl x NG: summed contributions received for our bands
	pending bool           // vxAdd awaits the post-projection fold
}

// stealPairCount returns how many pairs the schedule hands out.
func stealPairCount(nb int, rect bool) int {
	if rect {
		return nb * nb
	}
	return nb * (nb + 1) / 2
}

// stealFillPairs writes the readiness-ordered pair schedule into pi/pj
// (each at least stealPairCount long): block m lists every pair whose
// larger band index is m, so positions [0, cum(m)) only need bands
// [0, m] - the claim loop can contract them while later broadcasts are
// still in flight. Triangle blocks hold (i, m) for i <= m; rectangle
// blocks add the transposed (m, j) for j < m.
func stealFillPairs(nb int, rect bool, pi, pj []int32) {
	t := 0
	for m := 0; m < nb; m++ {
		for i := 0; i <= m; i++ {
			pi[t], pj[t] = int32(i), int32(m)
			t++
		}
		if rect {
			for j := 0; j < m; j++ {
				pi[t], pj[t] = int32(m), int32(j)
				t++
			}
		}
	}
}

// stealChunkSize resolves the pairs-per-claim granularity: the requested
// size, or a default targeting about eight claims per rank - fine enough
// that a 2x straggler sheds most of its share to the fast ranks, coarse
// enough that counter traffic stays negligible next to the Poisson solves
// (one 8-byte fetch-and-op buys a chunk of full-box FFT pipelines).
func stealChunkSize(npairs, size, req int) int {
	if req > 0 {
		return req
	}
	c := npairs / (8 * size)
	if c < 1 {
		c = 1
	}
	return c
}

// sameBlock reports whether two band blocks carry identical values (the
// pair symmetry is only valid when reference and target coincide).
func sameBlock(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ensureSteal sizes the schedule and buffers for this exchange shape.
// Everything is grown once and kept; switching between triangle and
// rectangle (the MTS cadence alternates them) only refills the pair index
// tables in place.
func (ws *ExchangeWorkspace) ensureSteal(rect bool) *stealState {
	d := ws.g
	ng, ntot, nb := d.G.NG, d.G.NTot, d.NB
	size := d.C.Size()
	st := ws.steal
	if st == nil {
		st = &stealState{npairs: -1}
		ws.steal = st
	}
	if cap(st.pairI) < nb*nb {
		st.pairI = make([]int32, nb*nb)
		st.pairJ = make([]int32, nb*nb)
		st.npairs = -1
	}
	if st.npairs < 0 || st.rect != rect {
		st.rect, st.npairs = rect, stealPairCount(nb, rect)
		stealFillPairs(nb, rect, st.pairI, st.pairJ)
	}
	if st.allR.Len() < nb*ntot {
		st.allR = lanes.New(nb * ntot)
	}
	if size > 1 {
		if st.remR.Len() < nb*ntot {
			st.remR = lanes.New(nb * ntot)
			st.remG = make([]complex128, nb*ng)
			st.touched = make([]bool, nb)
			st.vxAdd = make([]complex128, ws.nbl*ng)
			st.send = make([][]complex128, size)
			for r := 0; r < size; r++ {
				lo, hi := d.BandRange(r)
				st.send[r] = st.remG[lo*ng : hi*ng]
			}
		}
		if rect && st.psiAllR.Len() < nb*ntot {
			st.psiAllR = lanes.New(nb * ntot)
			st.psiBand[0] = make([]complex128, ng)
			st.psiBand[1] = make([]complex128, ng)
		}
	}
	return st
}

// stealDst returns the real-space SoA accumulator for band b: the local
// acc row when this rank owns b, the staged remote row otherwise.
func (ws *ExchangeWorkspace) stealDst(b, myLo int, st *stealState) lanes.Slab {
	ntot := ws.g.G.NTot
	if b >= myLo && b < myLo+ws.nbl {
		return ws.acc.Row(b-myLo, ntot)
	}
	st.touched[b] = true
	return st.remR.Row(b, ntot)
}

// stealContract folds one claimed pair. Pairs within a chunk run serially
// on the claiming rank (they share target rows); rank-level stealing is
// the parallel dimension of this schedule.
func (ws *ExchangeWorkspace) stealContract(i, j, myLo int, st *stealState) {
	d := ws.g
	ntot := d.G.NTot
	phiI := st.allR.Row(i, ntot)
	pair := ws.pairs.Row(0, ntot)
	if st.rect {
		// One-sided fold from the bcast strategy's exact inputs: wire-
		// precision reference i, full-precision target j.
		var src lanes.Slab
		if j >= myLo && j < myLo+ws.nbl {
			src = ws.psiReal.Row(j-myLo, ntot)
		} else {
			src = st.psiAllR.Row(j, ntot)
		}
		fock.ContractReferenceWS(d.G, ws.kernel, ws.alpha, phiI, src, ws.stealDst(j, myLo, st), pair, ws.fft[0])
		return
	}
	// Symmetric fold: one Poisson solve serves both sides of the pair,
	// the serial operator's two-sided SoA contraction. stealDst(j) before
	// stealDst(i) keeps the touched-marking order of the scalar path.
	accJ := ws.stealDst(j, myLo, st)
	phiJ := st.allR.Row(j, ntot)
	if i == j {
		fock.ContractPairReferenceWS(d.G, ws.kernel, ws.alpha, phiI, phiJ, accJ, accJ, pair, true, ws.fft[0])
		return
	}
	accI := ws.stealDst(i, myLo, st)
	fock.ContractPairReferenceWS(d.G, ws.kernel, ws.alpha, phiI, phiJ, accI, accJ, pair, false, ws.fft[0])
}

// exchangeSteal runs the dynamic schedule: pipeline the band broadcasts,
// claim readiness-ordered pair chunks from the shared counter, contract,
// then reduce remotely-computed contributions to their owners.
func (d *Ctx) exchangeSteal(phi, psi []complex128, single bool, chunkReq int, ws *ExchangeWorkspace) {
	ng, ntot, nb := d.G.NG, d.G.NTot, d.NB
	rank, size := d.C.Rank(), d.C.Size()
	myLo, _ := d.BandRange(rank)
	same := sameBlock(phi, psi)
	if size > 1 {
		// The schedule shape must agree across ranks (it decides tags and
		// pair counts), and each rank can only inspect its local blocks:
		// vote, and take the triangle only when every rank's blocks match.
		vote := []int64{0}
		if same {
			vote[0] = 1
		}
		mpi.AllreduceSum(d.C, tagStealMode, vote)
		same = vote[0] == int64(size)
	}
	rect := single || !same
	st := ws.ensureSteal(rect)
	chunk := stealChunkSize(st.npairs, size, chunkReq)
	nchunks := (st.npairs + chunk - 1) / chunk

	if size == 1 {
		// Single-rank fast path: no counter, no broadcasts, no reduce,
		// and no goroutines - the zero-allocation steady state. Only the
		// wire rounding of the single-precision format remains observable.
		buf := ws.band[0]
		for i := 0; i < nb; i++ {
			copy(buf, phi[i*ng:(i+1)*ng])
			if single {
				roundSingle(buf)
			}
			d.G.ToRealSlabWS(st.allR.Row(i, ntot), buf, ws.fftPhi)
		}
		t0 := d.C.WorkStart()
		for t := 0; t < st.npairs; t++ {
			ws.stealContract(int(st.pairI[t]), int(st.pairJ[t]), myLo, st)
		}
		d.C.WorkEnd(t0)
		return
	}

	// Broadcast-ahead pipeline: the fetch of band i+1 is posted as soon as
	// band i lands, re-using the overlapped strategy's ping-pong wire
	// buffers and handoff channel; ensure(m) drains the pipeline just far
	// enough for the claimed chunk. Rectangle mode rides a second,
	// always-double broadcast of the target bands on its own tag block.
	fetch := func(i int) {
		go func() {
			defer ws.forwardFault()
			buf := ws.band[i%2]
			owner := d.bandOwner(i)
			if owner == rank {
				copy(buf, phi[(i-myLo)*ng:(i-myLo+1)*ng])
			}
			d.bcastBand(buf, owner, tagExchBcast+i, single)
			if rect {
				pb := st.psiBand[i%2]
				if owner == rank {
					copy(pb, psi[(i-myLo)*ng:(i-myLo+1)*ng])
				}
				d.bcastBand(pb, owner, tagExchPsi+i, false)
			}
			ws.ch <- buf
		}()
	}
	received := 0
	ensure := func(m int) {
		for received <= m {
			buf, ok := <-ws.ch
			if !ok {
				ws.refault()
			}
			if received+1 < nb {
				fetch(received + 1)
			}
			d.G.ToRealSlabWS(st.allR.Row(received, ntot), buf, ws.fftPhi)
			if rect && d.bandOwner(received) != rank {
				d.G.ToRealSlabWS(st.psiAllR.Row(received, ntot), st.psiBand[received%2], ws.fftPhi)
			}
			received++
		}
	}
	fetch(0)

	// Claim loop: tickets come from a communicator-unique Fetch_and_op
	// counter; each rank overshoots nchunks exactly once, so the rank
	// drawing the last ticket retires the counter.
	key := d.C.WorkQueueTicket()
	for {
		t := int(d.C.FetchAdd(key, 1))
		if t >= nchunks {
			if t == nchunks+size-1 {
				d.C.ForgetCounter(key)
			}
			break
		}
		lo := t * chunk
		hi := lo + chunk
		if hi > st.npairs {
			hi = st.npairs
		}
		// The chunk's last pair has its largest readiness index.
		m := int(st.pairI[hi-1])
		if int(st.pairJ[hi-1]) > m {
			m = int(st.pairJ[hi-1])
		}
		ensure(m)
		// One span per claimed chunk (n = chunk ticket), so the timeline
		// shows which rank won which chunk and how long its fold took -
		// the signature a steal-pipeline stall is diagnosed from.
		chunkRef := d.C.Trace().Begin("steal_chunk", "sched")
		t0 := d.C.WorkStart()
		for p := lo; p < hi; p++ {
			ws.stealContract(int(st.pairI[p]), int(st.pairJ[p]), myLo, st)
		}
		d.C.WorkEnd(t0)
		d.C.Trace().EndN(chunkRef, int64(t))
	}
	// Every rank participates in every broadcast: drain the pipeline even
	// if all remaining chunks were stolen by someone else.
	ensure(nb - 1)

	// Reduce: project the staged remote accumulators onto the sphere and
	// ship each band's contribution to its owner in one dense Alltoallv
	// (always double precision). Untouched rows go as zeros - the payload
	// shape stays deterministic regardless of who claimed what.
	for b := 0; b < nb; b++ {
		if d.bandOwner(b) == rank {
			continue
		}
		row := st.remG[b*ng : (b+1)*ng]
		if st.touched[b] {
			d.G.FromRealSlabWS(row, st.remR.Row(b, ntot), ws.fft[0])
			st.remR.Row(b, ntot).Zero()
			st.touched[b] = false
		} else {
			for k := range row {
				row[k] = 0
			}
		}
	}
	parts := mpi.Alltoallv(d.C, tagStealReduce, st.send)
	for i := range st.vxAdd {
		st.vxAdd[i] = 0
	}
	for r := 0; r < size; r++ {
		if r == rank {
			continue
		}
		blk := parts[r]
		for i := range blk {
			st.vxAdd[i] += blk[i]
		}
	}
	st.pending = true
}
