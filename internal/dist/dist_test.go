package dist

import (
	"math"
	"testing"

	"ptdft/internal/fock"
	"ptdft/internal/grid"
	"ptdft/internal/lattice"
	"ptdft/internal/mpi"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

// testGrid builds a small Si8 discretization shared by the tests. Random
// orthonormal bands stand in for converged orbitals: the decomposition and
// communication machinery is insensitive to where the coefficients come
// from.
func testGrid(t testing.TB) (*grid.Grid, []complex128, int) {
	t.Helper()
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 2)
	nb := cell.NumBands()
	return g, wavefunc.Random(g, nb, 7), nb
}

func TestBandRangePartitionInvariants(t *testing.T) {
	g, _, _ := testGrid(t)
	for _, tc := range []struct{ nb, ranks int }{
		{16, 1}, {16, 2}, {16, 4}, {16, 3}, {16, 5}, {16, 16}, {17, 4}, {97, 8},
	} {
		mpi.Run(tc.ranks, func(c *mpi.Comm) {
			d, err := NewCtx(c, g, tc.nb, 2)
			if err != nil {
				t.Errorf("NewCtx(nb=%d, ranks=%d): %v", tc.nb, tc.ranks, err)
				return
			}
			if c.Rank() != 0 {
				return
			}
			prev := 0
			for r := 0; r < tc.ranks; r++ {
				lo, hi := d.BandRange(r)
				if lo != prev {
					t.Errorf("nb=%d ranks=%d: rank %d starts at %d, want %d (cover/disjoint)", tc.nb, tc.ranks, r, lo, prev)
				}
				if hi < lo {
					t.Errorf("nb=%d ranks=%d: rank %d range [%d,%d) not ordered", tc.nb, tc.ranks, r, lo, hi)
				}
				if w := hi - lo; w < tc.nb/tc.ranks || w > tc.nb/tc.ranks+1 {
					t.Errorf("nb=%d ranks=%d: rank %d owns %d bands, not balanced", tc.nb, tc.ranks, r, w)
				}
				for i := lo; i < hi; i++ {
					if own := d.bandOwner(i); own != r {
						t.Errorf("bandOwner(%d) = %d, want %d", i, own, r)
					}
				}
				prev = hi
			}
			if prev != tc.nb {
				t.Errorf("nb=%d ranks=%d: partition covers [0,%d), want [0,%d)", tc.nb, tc.ranks, prev, tc.nb)
			}
			// Same invariants for the G slab partition.
			prev = 0
			for r := 0; r < tc.ranks; r++ {
				lo, hi := d.GRange(r)
				if lo != prev || hi < lo {
					t.Errorf("GRange(%d) = [%d,%d), want contiguous from %d", r, lo, hi, prev)
				}
				prev = hi
			}
			if prev != g.NG {
				t.Errorf("G partition covers [0,%d), want [0,%d)", prev, g.NG)
			}
		})
	}
}

func TestNewCtxValidation(t *testing.T) {
	g, _, nb := testGrid(t)
	mpi.Run(2, func(c *mpi.Comm) {
		if _, err := NewCtx(c, g, nb, 3); err == nil {
			t.Error("dims=3 accepted")
		}
		if _, err := NewCtx(c, g, 0, 2); err == nil {
			t.Error("nb=0 accepted")
		}
		if _, err := NewCtx(c, g, 1, 2); err == nil {
			t.Error("more ranks than bands accepted")
		}
		if _, err := NewCtx(nil, g, nb, 2); err == nil {
			t.Error("nil communicator accepted")
		}
		if _, err := NewCtx(c, g, nb, 1); err != nil {
			t.Errorf("dims=1 rejected: %v", err)
		}
	})
}

func TestGatherRoundTrip(t *testing.T) {
	g, psi, nb := testGrid(t)
	for _, ranks := range []int{1, 2, 3, 4} {
		mpi.Run(ranks, func(c *mpi.Comm) {
			d, err := NewCtx(c, g, nb, 2)
			if err != nil {
				t.Error(err)
				return
			}
			lo, hi := d.BandRange(c.Rank())
			full := d.Gather(wavefunc.Clone(psi[lo*g.NG : hi*g.NG]))
			if len(full) != nb*g.NG {
				t.Errorf("rank %d: Gather returned %d coefficients, want %d", c.Rank(), len(full), nb*g.NG)
				return
			}
			for i := range full {
				if full[i] != psi[i] {
					t.Errorf("rank %d: Gather differs from source at %d", c.Rank(), i)
					return
				}
			}
		})
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	g, psi, nb := testGrid(t)
	for _, ranks := range []int{1, 2, 4} {
		mpi.Run(ranks, func(c *mpi.Comm) {
			d, err := NewCtx(c, g, nb, 2)
			if err != nil {
				t.Error(err)
				return
			}
			lo, hi := d.BandRange(c.Rank())
			local := wavefunc.Clone(psi[lo*g.NG : hi*g.NG])
			// Double precision round trip is exact.
			back := d.GToBand(d.BandToG(local, false), false)
			if diff := wavefunc.MaxDiff(local, back); diff != 0 {
				t.Errorf("ranks=%d rank %d: double transpose round trip differs by %g", ranks, c.Rank(), diff)
			}
			// Single precision round trip loses only wire precision.
			back = d.GToBand(d.BandToG(local, true), true)
			if diff := wavefunc.MaxDiff(local, back); diff > 1e-6 {
				t.Errorf("ranks=%d rank %d: single transpose round trip differs by %g", ranks, c.Rank(), diff)
			}
		})
	}
}

// TestFockExchangeMatchesSerialOperator checks all three strategies
// against the serial fock.Operator on the gathered band set: identical
// reference data, so double precision must agree to accumulation-order
// round-off and single precision within wire precision.
func TestFockExchangeMatchesSerialOperator(t *testing.T) {
	g, psi, nb := testGrid(t)
	hyb := xc.HSE06()
	kernel := fock.BuildKernel(g, hyb)
	want := make([]complex128, nb*g.NG)
	fock.NewOperator(g, hyb, psi, nb).Apply(want, psi, nb)

	cases := []struct {
		name string
		opt  ExchangeOptions
		tol  float64
	}{
		{"bcast", ExchangeOptions{Strategy: BcastSequential}, 1e-12},
		{"overlap", ExchangeOptions{Strategy: BcastOverlapped}, 1e-12},
		{"roundrobin", ExchangeOptions{Strategy: RoundRobin}, 1e-11},
		{"bcast_single", ExchangeOptions{Strategy: BcastSequential, SinglePrecision: true}, 1e-5},
		{"steal", ExchangeOptions{Strategy: Steal}, 1e-12},
		{"steal_chunk1", ExchangeOptions{Strategy: Steal, StealChunk: 1}, 1e-12},
		{"steal_single", ExchangeOptions{Strategy: Steal, SinglePrecision: true}, 1e-5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := make([]complex128, nb*g.NG)
			mpi.Run(4, func(c *mpi.Comm) {
				d, err := NewCtx(c, g, nb, 2)
				if err != nil {
					t.Error(err)
					return
				}
				lo, hi := d.BandRange(c.Rank())
				local := wavefunc.Clone(psi[lo*g.NG : hi*g.NG])
				vx := d.FockExchange(local, local, kernel, hyb.Alpha, tc.opt)
				full := d.Gather(vx)
				if c.Rank() == 0 {
					copy(got, full)
				}
			})
			if diff := wavefunc.MaxDiff(got, want); diff > tc.tol {
				t.Errorf("%s: distributed exchange differs from serial operator by %g (tol %g)", tc.name, diff, tc.tol)
			}
		})
	}
}

func TestParseStrategy(t *testing.T) {
	for _, name := range StrategyNames() {
		s, err := ParseStrategy(name)
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", name, err)
		}
		if s.String() != name {
			t.Errorf("ParseStrategy(%q).String() = %q", name, s.String())
		}
	}
	if _, err := ParseStrategy("banana"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestCommunicationIsMetered pins the exchange strategies to their
// collective classes: broadcasts bill to MPI_Bcast, the ring to Send/Recv,
// and single precision halves the shipped volume.
func TestCommunicationIsMetered(t *testing.T) {
	g, psi, nb := testGrid(t)
	hyb := xc.HSE06()
	kernel := fock.BuildKernel(g, hyb)
	run := func(opt ExchangeOptions) *mpi.Stats {
		return mpi.Run(4, func(c *mpi.Comm) {
			d, err := NewCtx(c, g, nb, 2)
			if err != nil {
				t.Error(err)
				return
			}
			lo, hi := d.BandRange(c.Rank())
			local := wavefunc.Clone(psi[lo*g.NG : hi*g.NG])
			d.FockExchange(local, local, kernel, hyb.Alpha, opt)
		})
	}
	bc := run(ExchangeOptions{Strategy: BcastSequential})
	if bc.BytesFor(mpi.ClassBcast) == 0 || bc.BytesFor(mpi.ClassP2P) != 0 {
		t.Errorf("bcast strategy billed Bcast=%d P2P=%d", bc.BytesFor(mpi.ClassBcast), bc.BytesFor(mpi.ClassP2P))
	}
	rr := run(ExchangeOptions{Strategy: RoundRobin})
	if rr.BytesFor(mpi.ClassP2P) == 0 || rr.BytesFor(mpi.ClassBcast) != 0 {
		t.Errorf("roundrobin strategy billed Bcast=%d P2P=%d", rr.BytesFor(mpi.ClassBcast), rr.BytesFor(mpi.ClassP2P))
	}
	bcS := run(ExchangeOptions{Strategy: BcastSequential, SinglePrecision: true})
	ratio := float64(bc.BytesFor(mpi.ClassBcast)) / float64(bcS.BytesFor(mpi.ClassBcast))
	if math.Abs(ratio-2) > 1e-9 {
		t.Errorf("single precision volume ratio %g, want 2", ratio)
	}
	// The steal schedule broadcasts the same nb reference bands over the
	// same trees as bcast, claims chunks over the RMA counter, votes on the
	// schedule shape, and ships its remote contributions in one Alltoallv;
	// nothing bills to P2P.
	sl := run(ExchangeOptions{Strategy: Steal})
	if sl.BytesFor(mpi.ClassBcast) != bc.BytesFor(mpi.ClassBcast) {
		t.Errorf("steal Bcast bytes = %d, want bcast's %d", sl.BytesFor(mpi.ClassBcast), bc.BytesFor(mpi.ClassBcast))
	}
	if sl.BytesFor(mpi.ClassRMA) == 0 || sl.CallsFor(mpi.ClassRMA) != sl.BytesFor(mpi.ClassRMA)/8 {
		t.Errorf("steal RMA accounting: bytes=%d calls=%d", sl.BytesFor(mpi.ClassRMA), sl.CallsFor(mpi.ClassRMA))
	}
	if sl.BytesFor(mpi.ClassAlltoallv) == 0 || sl.BytesFor(mpi.ClassP2P) != 0 {
		t.Errorf("steal strategy billed Alltoallv=%d P2P=%d", sl.BytesFor(mpi.ClassAlltoallv), sl.BytesFor(mpi.ClassP2P))
	}
}
