// Distributed adaptively compressed exchange (ACE): the rank-nb projector
// compression of the Fock operator (Lin, JCTC 2016; combined with the PT
// gauge in Jia & Lin, arXiv:1809.09609 - refs [24] and [22] of the paper)
// constructed and applied collectively on the band-index x G-space
// decomposition:
//
//	V_ACE = -Xi Xi^H,  Xi = W conj(L)^{-1},  -Phi^H W = L L^H,  W = V_X Phi.
//
// Construction (collective): W is computed band-block by band-block with
// the configured exchange communication strategy (the same nb broadcasts /
// ring hops and nb x nbl fused Poisson solves as one exact application),
// Phi and W are transposed into the G layout with one MPI_Alltoallv each,
// the nb x nb overlap -Phi^H W is accumulated slab-wise and MPI_Allreduced
// in deterministic rank order, the Cholesky factorization is replicated on
// every rank (bit-identical inputs, so the success/failure decision is
// symmetric), and the triangular solve for Xi runs slab-locally - each G
// column of the band recurrence is independent, so the G layout needs no
// further communication.
//
// Application (collective): one transpose of the local band block into the
// G layout, the slab-partial projections Xi^H Psi allreduced as a single
// nb x nb matrix - the one Allreduce of the paper's nb-dot-products
// accounting - the rank-nb update -Xi (Xi^H Psi) evaluated per slab, and
// one transpose back. Per application that is at most two MPI_Alltoallv
// plus one nb x nb MPI_Allreduce, versus nb broadcasts of NG coefficients
// and nb x nbl Poisson solves for the exact operator; the solver's
// residual already holds the iterate transposed into the G layout and
// hands it to ApplyFromG, so the inbound transpose is not paid twice.
package dist

import (
	"fmt"

	"ptdft/internal/linalg"
	"ptdft/internal/mpi"
	"ptdft/internal/parallel"
)

// ACE is one rank's view of the distributed compressed exchange operator:
// all NB projector bands over this rank's G slab, plus the scratch the
// collective construction and application reuse. Build it with NewACE once
// and Rebuild it whenever the reference orbitals change; the steady state
// performs no band-block allocations.
type ACE struct {
	d  *Ctx
	nb int

	xiG  []complex128 // NB x local slab: the Xi projector in the G layout
	phiG []complex128 // NB x local slab: reference transpose scratch
	psiG []complex128 // NB x local slab: application transpose scratch
	vxG  []complex128 // NB x local slab: rank-nb update in the G layout
	vx   []complex128 // nbl x NG: application result in the band layout
	m    []complex128 // nb x nb: overlap / projection matrix
	tw   *TransposeWorkspace

	built bool
}

// NewACE allocates the distributed ACE scratch for this rank. The operator
// is unusable until the first Rebuild.
func (d *Ctx) NewACE() *ACE {
	w := d.NumLocalG()
	nb := d.NB
	return &ACE{
		d:    d,
		nb:   nb,
		xiG:  make([]complex128, nb*w),
		phiG: make([]complex128, nb*w),
		psiG: make([]complex128, nb*w),
		vxG:  make([]complex128, nb*w),
		vx:   make([]complex128, d.NumLocalBands()*d.G.NG),
		m:    make([]complex128, nb*nb),
		tw:   d.NewTransposeWorkspace(),
	}
}

// Rebuild reconstructs Xi from the reference band block phi (this rank's
// local bands, sphere coefficients). phiG may carry the caller's already
// transposed copy of phi in the G layout (the solver's residual holds one
// anyway), saving one Alltoallv; pass nil to transpose internally.
// kernel/alpha/opt select the screened kernel and the communication
// strategy of the W = V_X Phi stage; ex is the caller's exchange workspace
// (the solver shares one across the exact and ACE paths). Collective: all
// ranks must call it together; the Cholesky failure of a degenerate
// reference set is symmetric across ranks and is returned loudly rather
// than silently falling back to the exact operator.
func (a *ACE) Rebuild(phi, phiG []complex128, kernel []float64, alpha float64, opt ExchangeOptions, ex *ExchangeWorkspace) error {
	d := a.d
	ref := d.C.Trace().Begin("ace_build", "solver")
	defer d.C.Trace().End(ref)
	nb := a.nb
	w := d.NumLocalG()

	// W = V_X Phi on the local band block, delivered by the configured
	// exchange strategy; ex.vx is only borrowed, so transpose immediately.
	vx := d.FockExchangeWS(phi, phi, kernel, alpha, opt, ex)
	d.BandToGWS(a.xiG, vx, false, a.tw)
	if phiG == nil {
		d.BandToGWS(a.phiG, phi, false, a.tw)
		phiG = a.phiG
	}

	// M = -Phi^H W, accumulated slab-wise and allreduced in deterministic
	// rank order so every rank factors bit-identical data.
	linalg.Overlap(a.m, phiG, a.xiG, nb, nb, w)
	mpi.AllreduceSum(d.C, tagACE, a.m)
	for i := range a.m {
		a.m[i] = -a.m[i]
	}
	if err := linalg.CholeskyLower(a.m, nb); err != nil {
		a.built = false
		return fmt.Errorf("dist: ACE overlap not negative definite (degenerate reference set): %w", err)
	}

	// Xi = conj(L)^{-1} W, slab-local: the band recurrence couples bands,
	// not G columns, and the G layout holds every band over the slab.
	linalg.SolveLowerBands(a.m, a.xiG, nb, w)
	a.built = true
	return nil
}

// Apply accumulates V_ACE psi = -Xi (Xi^H psi) into dst for this rank's
// band block (band-major sphere coefficients). Collective: two layout
// transposes and one allreduce of the nb x nb projection matrix.
func (a *ACE) Apply(dst, psi []complex128) {
	d := a.d
	d.BandToGWS(a.psiG, psi, false, a.tw)
	a.ApplyFromG(dst, a.psiG)
}

// ApplyFromG is Apply with the band block already transposed into the G
// layout (all NB bands x local slab), saving one Alltoallv when the caller
// - the solver's residual - holds that transpose anyway. Collective.
func (a *ACE) ApplyFromG(dst, psiG []complex128) {
	if !a.built {
		panic("dist: ACE applied before Rebuild")
	}
	d := a.d
	ref := d.C.Trace().Begin("ace_apply", "solver")
	defer d.C.Trace().End(ref)
	nb := a.nb
	w := d.NumLocalG()

	// Projections P[k][j] = <Xi_k|psi_j>: slab partials, one Allreduce.
	linalg.Overlap(a.m, a.xiG, psiG, nb, nb, w)
	mpi.AllreduceSum(d.C, tagACEProj, a.m)
	for i := range a.m {
		a.m[i] = -a.m[i]
	}

	// vxG_j = sum_k (-P[k][j]) Xi_k over the slab, then back to bands.
	linalg.ApplyMatrix(a.vxG, a.xiG, a.m, nb, nb, w)
	d.GToBandWS(a.vx, a.vxG, false, a.tw)
	if parallel.MaxWorkers() <= 1 {
		for i := range dst {
			dst[i] += a.vx[i]
		}
		return
	}
	parallel.ForBlock(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] += a.vx[i]
		}
	})
}

// Rank reports the compression rank (number of reference orbitals).
func (a *ACE) Rank() int { return a.nb }
