package dist

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ptdft/internal/checkpoint"
	"ptdft/internal/core"
	"ptdft/internal/fock"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/mpi"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

// referenceRun propagates steps semi-local PT-CN steps on `ranks` ranks
// without any supervisor and returns the gathered final bands and energy.
func referenceRun(t *testing.T, psi0 []complex128, ranks, steps int, dt float64) ([]complex128, float64) {
	t.Helper()
	g, _, nb := testGrid(t)
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	psi := make([]complex128, nb*g.NG)
	var energy float64
	mpi.Run(ranks, func(c *mpi.Comm) {
		d, err := NewCtx(c, g, nb, 2)
		if err != nil {
			t.Error(err)
			return
		}
		h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
		s := NewPTCNSolver(d, h, xc.HSE06(), false, kick, core.DefaultPTCN(), ExchangeOptions{})
		lo, hi := d.BandRange(c.Rank())
		local := wavefunc.Clone(psi0[lo*g.NG : hi*g.NG])
		for i := 0; i < steps; i++ {
			if local, _, err = s.Step(local, dt); err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
				return
			}
		}
		eb := s.TotalEnergy(local, s.Time)
		full := d.Gather(local)
		if c.Rank() == 0 {
			copy(psi, full)
			energy = eb.Total()
		}
	})
	return psi, energy
}

// resilientConfig assembles the shared semi-local test configuration.
func resilientConfig(t *testing.T, psi0 []complex128, ranks, steps int, dt float64, ckptBase string, every int) ResilientConfig {
	t.Helper()
	g, _, nb := testGrid(t)
	cfg := ResilientConfig{
		Ranks: ranks, G: g, NB: nb,
		NewHamiltonian: func() *hamiltonian.Hamiltonian {
			return hamiltonian.New(g, siPots(), hamiltonian.Config{})
		},
		Hyb: xc.HSE06(), Hybrid: false,
		Field: &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}},
		Opt:   core.DefaultPTCN(),
		Psi0:  psi0, Steps: steps, Dt: dt,
		Natom: 8, Ecut: 2,
		MaxRestarts: 3,
		Deadline:    2 * time.Second,
	}
	if ckptBase != "" {
		cfg.Ckpt = &checkpoint.Rolling{Base: ckptBase}
		cfg.CkptEvery = every
	}
	return cfg
}

// TestResilientCleanRunMatchesPlain: with no faults the supervisor is a
// transparent wrapper - the trajectory matches an unsupervised run
// exactly and no restarts are recorded.
func TestResilientCleanRunMatchesPlain(t *testing.T) {
	_, psi0, _ := testGrid(t)
	const ranks, steps, dt = 2, 4, 1.0
	want, wantE := referenceRun(t, psi0, ranks, steps, dt)
	cfg := resilientConfig(t, psi0, ranks, steps, dt, filepath.Join(t.TempDir(), "ck"), 2)
	res, err := RunResilient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 0 || res.LostSteps != 0 {
		t.Errorf("clean run recorded restarts=%d lost=%d", res.Restarts, res.LostSteps)
	}
	if res.Step != steps {
		t.Errorf("final step %d, want %d", res.Step, steps)
	}
	if diff := wavefunc.MaxDiff(res.Psi, want); diff > 1e-12 {
		t.Errorf("supervised trajectory differs from plain by %g", diff)
	}
	if e := res.Energy - wantE; e > 1e-12 || e < -1e-12 {
		t.Errorf("energy differs by %g", e)
	}
	// The final state is always checkpointed.
	if st, _, err := cfg.Ckpt.Latest(); err != nil || st.Step != steps {
		t.Errorf("final checkpoint missing or stale: %+v, %v", st, err)
	}
}

// TestResilientRecoversFromStepCrash: a rank killed at a step boundary on
// the first attempt is recovered from the rolling checkpoint and the
// completed trajectory matches the uninterrupted one to 1e-10.
func TestResilientRecoversFromStepCrash(t *testing.T) {
	_, psi0, _ := testGrid(t)
	const ranks, steps, dt = 4, 6, 1.0
	want, wantE := referenceRun(t, psi0, ranks, steps, dt)
	cfg := resilientConfig(t, psi0, ranks, steps, dt, filepath.Join(t.TempDir(), "ck"), 2)
	cfg.FaultFor = func(attempt int) *mpi.Fault {
		if attempt > 0 {
			return nil
		}
		return &mpi.Fault{Crashes: []mpi.CrashRankAt{{Rank: 2, AfterStep: 3}}}
	}
	res, err := RunResilient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", res.Restarts)
	}
	if res.LostSteps != 1 {
		// Crash arrives before step 3; steps 0-2 completed, the cadence-2
		// checkpoint holds step 2, so exactly one step is re-run.
		t.Errorf("lost steps = %d, want 1", res.LostSteps)
	}
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "rank 2 crashed") {
		t.Errorf("failures = %v, want one naming rank 2", res.Failures)
	}
	if diff := wavefunc.MaxDiff(res.Psi, want); diff > 1e-10 {
		t.Errorf("recovered trajectory differs from uninterrupted by %g", diff)
	}
	if e := res.Energy - wantE; e > 1e-10 || e < -1e-10 {
		t.Errorf("recovered energy differs by %g", e)
	}
}

// TestResilientRecoversFromMidCollectiveCrash: a rank killed mid
// collective (call-count trigger, not step-aligned) leaves peers inside
// Allreduce/Alltoallv waits; the deadline unblocks them and recovery
// still completes and matches.
func TestResilientRecoversFromMidCollectiveCrash(t *testing.T) {
	_, psi0, _ := testGrid(t)
	const ranks, steps, dt = 4, 4, 1.0
	want, _ := referenceRun(t, psi0, ranks, steps, dt)
	cfg := resilientConfig(t, psi0, ranks, steps, dt, filepath.Join(t.TempDir(), "ck"), 1)
	cfg.Deadline = 1 * time.Second
	cfg.FaultFor = func(attempt int) *mpi.Fault {
		if attempt > 0 {
			return nil
		}
		return &mpi.Fault{Crashes: []mpi.CrashRankAt{{Rank: 1, AfterCalls: 200}}}
	}
	start := time.Now()
	res, err := RunResilient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("recovery took %v - a peer hung past the deadline", elapsed)
	}
	if res.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", res.Restarts)
	}
	if diff := wavefunc.MaxDiff(res.Psi, want); diff > 1e-10 {
		t.Errorf("recovered trajectory differs from uninterrupted by %g", diff)
	}
}

// TestResilientRetryBudget: a fault injected on every attempt exhausts
// the budget and surfaces the last failure instead of looping forever.
func TestResilientRetryBudget(t *testing.T) {
	_, psi0, _ := testGrid(t)
	cfg := resilientConfig(t, psi0, 2, 4, 1.0, filepath.Join(t.TempDir(), "ck"), 2)
	cfg.MaxRestarts = 2
	cfg.Deadline = 500 * time.Millisecond
	cfg.FaultFor = func(attempt int) *mpi.Fault {
		return &mpi.Fault{Crashes: []mpi.CrashRankAt{{Rank: 0, AfterStep: 1}}}
	}
	_, err := RunResilient(cfg)
	if err == nil {
		t.Fatal("expected budget exhaustion")
	}
	if !strings.Contains(err.Error(), "giving up after 2 restarts") {
		t.Errorf("error %q does not report the exhausted budget", err)
	}
}

// TestResilientRejectsMidCycleStart: the supervisor refuses a starting
// step inside an MTS cycle - recovery state would be unreconstructable.
func TestResilientRejectsMidCycleStart(t *testing.T) {
	_, psi0, _ := testGrid(t)
	cfg := resilientConfig(t, psi0, 2, 2, 1.0, "", 0)
	cfg.Ex = ExchangeOptions{MTSPeriod: 2}
	cfg.Step0 = 1
	if _, err := RunResilient(cfg); err == nil || !strings.Contains(err.Error(), "cycle boundary") {
		t.Errorf("mid-cycle start not rejected: %v", err)
	}
}

// TestFetchPipelineForwardsFaults: a crash landing inside the
// overlapped-broadcast or steal fetch goroutine (which runs mpi calls off
// the rank's main goroutine) must be forwarded to the main goroutine and
// recovered by the tolerant runner - not kill the process, not hang.
func TestFetchPipelineForwardsFaults(t *testing.T) {
	g, psi, nb := testGrid(t)
	hyb := xc.HSE06()
	kernel := fock.BuildKernel(g, hyb)
	for _, strat := range []ExchangeStrategy{BcastOverlapped, Steal} {
		p := &mpi.Perturb{
			Deadline: 1 * time.Second,
			Fault:    &mpi.Fault{Crashes: []mpi.CrashRankAt{{Rank: 1, AfterCalls: 3}}},
		}
		start := time.Now()
		_, fail := mpi.RunTolerant(4, p, func(c *mpi.Comm) {
			d, err := NewCtx(c, g, nb, 2)
			if err != nil {
				t.Error(err)
				return
			}
			lo, hi := d.BandRange(c.Rank())
			local := wavefunc.Clone(psi[lo*g.NG : hi*g.NG])
			d.FockExchange(local, local, kernel, hyb.Alpha, ExchangeOptions{Strategy: strat})
		})
		if elapsed := time.Since(start); elapsed > 20*time.Second {
			t.Fatalf("%v: exchange under injected crash took %v", strat, elapsed)
		}
		if fail == nil {
			t.Fatalf("%v: injected crash vanished", strat)
		}
		found := false
		for _, r := range fail.Crashed {
			if r == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: crashed ranks %v do not include rank 1", strat, fail.Crashed)
		}
	}
}
