package dist

import (
	"strings"
	"testing"

	"ptdft/internal/core"
	"ptdft/internal/fock"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/mpi"
	"ptdft/internal/parallel"
	"ptdft/internal/pseudo"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

func siPots() map[int]*pseudo.Potential {
	return map[int]*pseudo.Potential{0: pseudo.SiliconAH()}
}

// TestDistACEExactOnReference: the compression reproduces the exact
// operator on its own reference span, V_ACE Phi = V_X Phi, so applying the
// freshly built Xi to the reference block must match the distributed exact
// exchange to round-off - on every rank count and under every strategy.
func TestDistACEExactOnReference(t *testing.T) {
	g, psi, nb := testGrid(t)
	hyb := xc.HSE06()
	kernel := fock.BuildKernel(g, hyb)
	for _, ranks := range []int{1, 2, 4} {
		for _, strat := range []ExchangeStrategy{BcastSequential, BcastOverlapped, RoundRobin, Steal} {
			opt := ExchangeOptions{Strategy: strat}
			mpi.Run(ranks, func(c *mpi.Comm) {
				d, err := NewCtx(c, g, nb, 2)
				if err != nil {
					t.Error(err)
					return
				}
				lo, hi := d.BandRange(c.Rank())
				local := wavefunc.Clone(psi[lo*g.NG : hi*g.NG])
				ex := d.NewExchangeWorkspace()

				want := make([]complex128, len(local))
				copy(want, d.FockExchangeWS(local, local, kernel, hyb.Alpha, opt, ex))

				a := d.NewACE()
				if err := a.Rebuild(local, nil, kernel, hyb.Alpha, opt, ex); err != nil {
					t.Errorf("ranks=%d %v: %v", ranks, strat, err)
					return
				}
				got := make([]complex128, len(local))
				a.Apply(got, local)
				if diff := wavefunc.MaxDiff(got, want); diff > 1e-10 {
					t.Errorf("ranks=%d %v rank %d: V_ACE Phi differs from V_X Phi by %g", ranks, strat, c.Rank(), diff)
				}
			})
		}
	}
}

// TestDistACEDegenerateSetFailsLoudly: a zero reference band makes the
// overlap singular; every rank must see the same descriptive Cholesky
// error - never a silent fallback.
func TestDistACEDegenerateSetFailsLoudly(t *testing.T) {
	g, psi, nb := testGrid(t)
	hyb := xc.HSE06()
	kernel := fock.BuildKernel(g, hyb)
	mpi.Run(2, func(c *mpi.Comm) {
		d, err := NewCtx(c, g, nb, 2)
		if err != nil {
			t.Error(err)
			return
		}
		lo, hi := d.BandRange(c.Rank())
		local := wavefunc.Clone(psi[lo*g.NG : hi*g.NG])
		if c.Rank() == 0 {
			for i := 0; i < g.NG; i++ {
				local[i] = 0
			}
		}
		a := d.NewACE()
		err = a.Rebuild(local, nil, kernel, hyb.Alpha, ExchangeOptions{}, d.NewExchangeWorkspace())
		if err == nil {
			t.Errorf("rank %d: degenerate reference set accepted", c.Rank())
			return
		}
		if !strings.Contains(err.Error(), "degenerate") {
			t.Errorf("rank %d: error not descriptive: %v", c.Rank(), err)
		}
	})
}

// TestDistStepAllocs pins the solver's inner-SCF hot loop - the PT residual
// with the distributed exchange (exact and ACE) plus the fixed-point
// assembly - at zero steady-state heap allocations per iteration. The pin
// runs on one rank with one worker: that isolates the caller-side
// discipline the step workspace provides, with no mailbox wire copies (the
// mpi layer's Send/Bcast copies model the interconnect and are exempt) and
// no goroutine fan-out (allocation at the edges, per DESIGN.md section 5).
// The iterations themselves always run: under -race they drive the
// lane-blocked SoA exchange path through every strategy with the detector
// armed, and only the allocation counts (meaningless there - sync.Pool
// drops items under -race) are suspended.
func TestDistStepAllocs(t *testing.T) {
	defer parallel.SetMaxWorkers(parallel.SetMaxWorkers(1))
	g, psi, nb := testGrid(t)
	for _, mode := range []struct {
		name string
		opt  ExchangeOptions
	}{
		{"exact_bcast", ExchangeOptions{Strategy: BcastSequential}},
		{"exact_roundrobin", ExchangeOptions{Strategy: RoundRobin}},
		{"ace", ExchangeOptions{Strategy: BcastSequential, ACE: true}},
		// The MTS hold cadences: the frozen-operator residual path (the
		// cost that dominates the M-1 intermediate steps) must stay
		// zero-alloc too.
		{"ace_mts", ExchangeOptions{Strategy: BcastSequential, ACE: true, MTSPeriod: 4}},
		{"exact_mts", ExchangeOptions{Strategy: BcastSequential, MTSPeriod: 4}},
		// The work queue must ride the existing workspaces: the triangle
		// schedule (live iterate), the ACE build, and the rectangle
		// schedule (frozen MTS references) all claim from preallocated
		// pair tables and contract into preallocated accumulators.
		{"exact_steal", ExchangeOptions{Strategy: Steal}},
		{"ace_steal", ExchangeOptions{Strategy: Steal, ACE: true}},
		{"exact_steal_mts", ExchangeOptions{Strategy: Steal, MTSPeriod: 4}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			mpi.Run(1, func(c *mpi.Comm) {
				d, err := NewCtx(c, g, nb, 2)
				if err != nil {
					t.Error(err)
					return
				}
				h := hamiltonian.New(g, siPots(), hamiltonian.Config{})
				s := NewPTCNSolver(d, h, xc.HSE06(), true, nil, core.DefaultPTCN(), mode.opt)
				local := wavefunc.Clone(psi)
				rho := s.density(local)
				s.prepare(rho, 0)
				// Prime the hold-cadence state the way an outer step
				// would: mark the compressed operator stale and freeze
				// the exact-path reference at Psi_n.
				if s.mtsPeriod() > 0 {
					s.aceStale = true
					s.freezeRef(local)
				}
				ihalf := complex(0, 0.5)
				iteration := func() {
					rf, err := s.residual(local)
					if err != nil {
						panic(err)
					}
					ws := s.ws
					for i := range ws.fp {
						ws.fp[i] = ws.half[i] - local[i] - ihalf*rf[i]
					}
				}
				// Warm up: workspaces allocate on first use.
				iteration()
				iteration()
				if a := testing.AllocsPerRun(3, iteration); a > 0 && !raceEnabled {
					t.Errorf("%s: inner SCF iteration allocates %.1f objects in steady state, want 0", mode.name, a)
				}
			})
		})
	}
}
