// Package dist implements the paper's section 3 parallelization on the
// goroutine message-passing runtime of internal/mpi: the two-dimensional
// band-index x G-space decomposition of Fig. 1, the MPI_Alltoallv layout
// transpose between the two layouts, the three Fock-exchange communication
// strategies of section 3.2 (sequential broadcast, broadcast overlapped
// with computation, round-robin point-to-point), single-precision MPI
// payloads (optimization 4), and a distributed PT-CN propagator that
// mirrors Algorithm 1 band-block by band-block.
//
// Layouts. In the band-index layout each rank owns a contiguous block of
// bands with every G coefficient of those bands: this is where H*Psi, the
// Fock exchange and the Anderson mixing run, because each of those is
// independent per band once the shared state (potential, exchange
// reference orbitals) is in place. In the G-space layout each rank owns a
// contiguous slab of the G sphere for every band: this is where overlap
// matrices, the PT residual projection and the Trsm orthogonalization run,
// because those couple all bands at each G. BandToG/GToBand transpose
// between the two with one MPI_Alltoallv, exactly the data movement the
// paper's Fig. 1 depicts.
//
// See DESIGN.md for the decomposition walkthrough and the deviations from
// the paper's Summit implementation.
package dist

import (
	"fmt"

	"ptdft/internal/grid"
	"ptdft/internal/mpi"
)

// Tag blocks for the collectives of one Ctx. Collectives are issued in the
// same order on every rank, and the mailbox runtime preserves per-tag FIFO
// order, so a fixed tag per call site is safe; only the pipelined exchange
// broadcast needs a distinct tag per band (two broadcasts are in flight at
// once) and the round-robin ring a tag per hop.
const (
	tagGather      = 10
	tagBandToG     = 20
	tagGToBand     = 30
	tagDensity     = 40      // AllreduceSum consumes 40 and 41
	tagOverlap     = 50      // AllreduceSum consumes 50 and 51
	tagScalars     = 60      // AllreduceSum consumes 60 and 61
	tagCurrent     = 70      // AllreduceSum consumes 70 and 71
	tagExcited     = 80      // AllreduceSum consumes 80 and 81
	tagACE         = 90      // AllreduceSum consumes 90 and 91 (build overlap)
	tagACEProj     = 100     // AllreduceSum consumes 100 and 101 (apply projections)
	tagForces      = 110     // AllreduceSum consumes 110 and 111 (ion force partials)
	tagStealReduce = 120     // work-stealing remote-contribution Alltoallv
	tagStealMode   = 130     // AllreduceSum consumes 130 and 131 (schedule shape vote)
	tagExchBcast   = 1 << 10 // + global band index
	tagExchRing    = 1 << 11 // + ring hop
	tagExchPsi     = 1 << 12 // + global band index (steal rectangle-mode targets)
)

// Ctx owns one rank's view of the band-index x G-space decomposition: the
// communicator, the grid, and the partition arithmetic shared by the
// transpose, gather and exchange operations.
type Ctx struct {
	C    *mpi.Comm
	G    *grid.Grid
	NB   int // global number of bands
	Dims int // decomposition dimensions: 1 = band only, 2 = band x G
}

// NewCtx validates and builds the decomposition context. dims selects how
// many index spaces are partitioned: 1 partitions bands only (no transposed
// layout, so the G-space operations are unavailable), 2 partitions both
// bands and the G sphere across the same ranks as the paper does.
func NewCtx(c *mpi.Comm, g *grid.Grid, nb, dims int) (*Ctx, error) {
	if c == nil || g == nil {
		return nil, fmt.Errorf("dist: nil communicator or grid")
	}
	if dims != 1 && dims != 2 {
		return nil, fmt.Errorf("dist: unsupported decomposition dims %d (want 1 or 2)", dims)
	}
	if nb < 1 {
		return nil, fmt.Errorf("dist: non-positive band count %d", nb)
	}
	if nb < c.Size() {
		return nil, fmt.Errorf("dist: %d bands cannot feed %d ranks (band-index parallelization needs ranks <= bands)", nb, c.Size())
	}
	if dims == 2 && g.NG < c.Size() {
		return nil, fmt.Errorf("dist: G sphere of %d coefficients cannot be sliced across %d ranks", g.NG, c.Size())
	}
	return &Ctx{C: c, G: g, NB: nb, Dims: dims}, nil
}

// Rank returns this rank's index.
func (d *Ctx) Rank() int { return d.C.Rank() }

// Size returns the communicator size.
func (d *Ctx) Size() int { return d.C.Size() }

// BandRange returns the contiguous half-open global band range [lo, hi)
// owned by rank. Blocks are balanced to within one band, cover [0, NB)
// without gaps, and are ordered by rank.
func (d *Ctx) BandRange(rank int) (lo, hi int) {
	size := d.C.Size()
	return rank * d.NB / size, (rank + 1) * d.NB / size
}

// NumLocalBands returns the number of bands this rank owns.
func (d *Ctx) NumLocalBands() int {
	lo, hi := d.BandRange(d.C.Rank())
	return hi - lo
}

// bandOwner returns the rank owning global band i under the balanced
// contiguous partition.
func (d *Ctx) bandOwner(i int) int {
	size := d.C.Size()
	// Inverse of BandRange: the candidate from the uniform estimate is off
	// by at most one in either direction.
	r := i * size / d.NB
	for {
		lo, hi := d.BandRange(r)
		if i < lo {
			r--
		} else if i >= hi {
			r++
		} else {
			return r
		}
	}
}

// GRange returns the contiguous half-open G-sphere slab [lo, hi) owned by
// rank in the transposed layout, with the same balanced-partition
// invariants as BandRange.
func (d *Ctx) GRange(rank int) (lo, hi int) {
	size := d.C.Size()
	return rank * d.G.NG / size, (rank + 1) * d.G.NG / size
}

// NumLocalG returns the width of this rank's G slab.
func (d *Ctx) NumLocalG() int {
	lo, hi := d.GRange(d.C.Rank())
	return hi - lo
}

// Gather reassembles the full band-major orbital set from every rank's
// local block (MPI_Allgatherv); every rank returns the complete NB x NG
// array. Collective: all ranks must call it together.
func (d *Ctx) Gather(local []complex128) []complex128 {
	ng := d.G.NG
	if len(local) != d.NumLocalBands()*ng {
		panic(fmt.Sprintf("dist: Gather local block has %d coefficients, want %d bands x %d", len(local), d.NumLocalBands(), ng))
	}
	parts := mpi.Allgatherv(d.C, tagGather, local)
	out := make([]complex128, d.NB*ng)
	for r := 0; r < d.C.Size(); r++ {
		lo, _ := d.BandRange(r)
		copy(out[lo*ng:], parts[r])
	}
	return out
}

// TransposeWorkspace holds the send-side staging of the layout transposes
// so repeated BandToGWS/GToBandWS calls perform no caller-side allocations:
// one flat backing array re-sliced into per-rank blocks each call. The
// receive-side copies made inside the mpi layer model the wire and are not
// the caller's to avoid.
type TransposeWorkspace struct {
	send [][]complex128
	flat []complex128
}

// NewTransposeWorkspace allocates transpose staging for this rank's band
// block: nbl x NG outbound in the band->G direction, NB x local slab in the
// G->band direction (the two differ by partition remainders).
func (d *Ctx) NewTransposeWorkspace() *TransposeWorkspace {
	n := d.NumLocalBands() * d.G.NG
	if m := d.NB * d.NumLocalG(); m > n {
		n = m
	}
	return &TransposeWorkspace{
		send: make([][]complex128, d.C.Size()),
		flat: make([]complex128, n),
	}
}

// roundSingle rounds a block through the single-precision wire format in
// place, so a size-1 communicator sees the same rounding as a real transfer.
func roundSingle(x []complex128) {
	for i := range x {
		x[i] = complex128(complex64(x[i]))
	}
}

// BandToG transposes this rank's band-layout block (local bands x full NG)
// into the G-space layout (all NB bands x local G slab) with one
// MPI_Alltoallv. When single is true the wire payload is down-converted to
// complex64, halving the transpose volume (section 3.2, optimization 4);
// the returned data is always complex128. Collective.
func (d *Ctx) BandToG(local []complex128, single bool) []complex128 {
	out := make([]complex128, d.NB*d.NumLocalG())
	d.BandToGWS(out, local, single, d.NewTransposeWorkspace())
	return out
}

// BandToGWS is BandToG with a caller-owned destination (NB x local slab)
// and staging workspace. Collective.
func (d *Ctx) BandToGWS(dst, local []complex128, single bool, tw *TransposeWorkspace) {
	if d.Dims < 2 {
		panic("dist: BandToG requires a dims=2 decomposition")
	}
	ng := d.G.NG
	nbl := d.NumLocalBands()
	if len(local) != nbl*ng {
		panic("dist: BandToG local block size mismatch")
	}
	w := d.NumLocalG()
	if len(dst) != d.NB*w {
		panic("dist: BandToG destination size mismatch")
	}
	size := d.C.Size()
	if size == 1 {
		// The two layouts coincide on one rank; only the wire rounding of
		// the single-precision format remains observable.
		copy(dst, local)
		if single {
			roundSingle(dst)
		}
		return
	}
	off := 0
	for r := 0; r < size; r++ {
		glo, ghi := d.GRange(r)
		rw := ghi - glo
		buf := tw.flat[off : off+nbl*rw]
		off += nbl * rw
		for j := 0; j < nbl; j++ {
			copy(buf[j*rw:(j+1)*rw], local[j*ng+glo:j*ng+ghi])
		}
		tw.send[r] = buf
	}
	recv := d.alltoallv(tw.send, tagBandToG, single)
	for r := 0; r < size; r++ {
		blo, bhi := d.BandRange(r)
		for j := 0; j < bhi-blo; j++ {
			copy(dst[(blo+j)*w:(blo+j+1)*w], recv[r][j*w:(j+1)*w])
		}
	}
}

// GToBand is the inverse transpose: from the G-space layout (all NB bands x
// local G slab) back to this rank's band-layout block. Collective.
func (d *Ctx) GToBand(gd []complex128, single bool) []complex128 {
	out := make([]complex128, d.NumLocalBands()*d.G.NG)
	d.GToBandWS(out, gd, single, d.NewTransposeWorkspace())
	return out
}

// GToBandWS is GToBand with a caller-owned destination (local bands x NG)
// and staging workspace. Collective.
func (d *Ctx) GToBandWS(dst, gd []complex128, single bool, tw *TransposeWorkspace) {
	if d.Dims < 2 {
		panic("dist: GToBand requires a dims=2 decomposition")
	}
	w := d.NumLocalG()
	if len(gd) != d.NB*w {
		panic("dist: GToBand slab size mismatch")
	}
	ng := d.G.NG
	nbl := d.NumLocalBands()
	if len(dst) != nbl*ng {
		panic("dist: GToBand destination size mismatch")
	}
	size := d.C.Size()
	if size == 1 {
		copy(dst, gd)
		if single {
			roundSingle(dst)
		}
		return
	}
	off := 0
	for r := 0; r < size; r++ {
		blo, bhi := d.BandRange(r)
		buf := tw.flat[off : off+(bhi-blo)*w]
		off += (bhi - blo) * w
		for j := blo; j < bhi; j++ {
			copy(buf[(j-blo)*w:(j-blo+1)*w], gd[j*w:(j+1)*w])
		}
		tw.send[r] = buf
	}
	recv := d.alltoallv(tw.send, tagGToBand, single)
	for r := 0; r < size; r++ {
		rglo, rghi := d.GRange(r)
		rw := rghi - rglo
		for j := 0; j < nbl; j++ {
			copy(dst[j*ng+rglo:j*ng+rghi], recv[r][j*rw:(j+1)*rw])
		}
	}
}

// alltoallv runs the personalized all-to-all in double or single wire
// precision. In single mode every block - including the rank's own - is
// passed through complex64, so all ranks see identically rounded data.
func (d *Ctx) alltoallv(send [][]complex128, tag int, single bool) [][]complex128 {
	if !single {
		return mpi.Alltoallv(d.C, tag, send)
	}
	s32 := make([][]complex64, len(send))
	for i := range send {
		s32[i] = mpi.SingleOf(send[i])
	}
	r32 := mpi.Alltoallv(d.C, tag, s32)
	out := make([][]complex128, len(r32))
	for i := range r32 {
		out[i] = mpi.DoubleOf(r32[i])
	}
	return out
}
