// Distributed PT-CN: Algorithm 1 executed band-block by band-block. Each
// rank advances its band block with the shared-state pieces (density,
// potential, exchange reference) synchronized by collectives:
//
//   - the charge density is accumulated from local bands and MPI_Allreduced
//     (section 3.4), so every rank rebuilds an identical potential and the
//     SCF convergence decision is symmetric across ranks;
//   - the Fock exchange ships reference orbitals by the configured
//     strategy (section 3.2);
//   - the PT residual projection and the Trsm orthogonalization run in the
//     G-space layout after an Alltoallv transpose (sections 3.3-3.4),
//     where every rank holds all bands over its G slab and the nb x nb
//     matrix work is replicated deterministically.
package dist

import (
	"fmt"
	"math"

	"ptdft/internal/core"
	"ptdft/internal/fock"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/linalg"
	"ptdft/internal/mixing"
	"ptdft/internal/mpi"
	"ptdft/internal/observe"
	"ptdft/internal/potential"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

// PTCNSolver propagates one rank's band block with the parallel transport
// Crank-Nicolson integrator. The Hamiltonian must be built without the
// hybrid term (hamiltonian.Config{}); when useHybrid is set the solver
// applies the exchange itself - through the distributed communication
// strategies, or through the distributed ACE compression when Ex.ACE is
// set - since the reference orbitals live across ranks.
type PTCNSolver struct {
	D      *Ctx
	H      *hamiltonian.Hamiltonian
	Hyb    xc.HybridParams
	Hybrid bool
	Field  laser.Field
	Opt    core.PTCNOptions
	Ex     ExchangeOptions
	Occ    float64 // orbital occupation (2 for closed shell)
	Time   float64 // current simulation time (au)

	kernel []float64 // screened Coulomb kernel, built once when hybrid
	exWS   *ExchangeWorkspace
	ws     *stepWorkspace
	ace    *ACE
	// aceStale marks the compressed operator for a rebuild at the next
	// exchange application; Step raises it on outer steps, so the hold
	// cadences (acehold, MTS) rebuild from Psi_n and then hold through
	// the inner SCF iterations - and, under MTS, through the M-1
	// intermediate steps that follow.
	aceStale bool
	// stepIndex counts completed Steps and anchors the MTS cycle: step n
	// is an outer step iff n mod M == 0. ResumeMTS restores it from a
	// checkpoint so a resumed segment lands on the correct cycle phase.
	stepIndex int
	// mtsPhi is this rank's frozen exchange reference block, copied from
	// Psi_n at the last outer step of a hold cadence. The exact-exchange
	// path ships it as the reference of V_X[Phi_frozen]; the ACE path
	// retains it only so checkpoints can persist the reference Xi was
	// built from.
	mtsPhi []complex128
}

// stepWorkspace owns every band-block buffer of the solver hot loop, bound
// to the solver and reused across steps and SCF iterations so the
// per-iteration residual path performs no heap allocations (the mailbox
// copies inside the mpi layer remain - they model the wire, and vanish on
// one rank). TestDistStepAllocs pins the contract.
type stepWorkspace struct {
	hp   []complex128 // nbl x NG: H psi
	res  []complex128 // nbl x NG: PT residual, returned by residual
	half []complex128 // nbl x NG: half-step RHS Psi_{n+1/2}
	fp   []complex128 // nbl x NG: fixed-point residual fed to the mixer
	psiG []complex128 // NB x w: iterate in the G layout
	hpG  []complex128 // NB x w: H psi in the G layout
	resG []complex128 // NB x w: residual in the G layout
	ov   []complex128 // nb x nb: overlap / projection matrix
	tw   *TransposeWorkspace
}

// stepWS returns the solver's step workspace, allocating it on first use.
func (s *PTCNSolver) stepWS() *stepWorkspace {
	if s.ws == nil {
		nbl, ng := s.D.NumLocalBands(), s.D.G.NG
		nb, w := s.D.NB, s.D.NumLocalG()
		s.ws = &stepWorkspace{
			hp:   make([]complex128, nbl*ng),
			res:  make([]complex128, nbl*ng),
			half: make([]complex128, nbl*ng),
			fp:   make([]complex128, nbl*ng),
			psiG: make([]complex128, nb*w),
			hpG:  make([]complex128, nb*w),
			resG: make([]complex128, nb*w),
			ov:   make([]complex128, nb*nb),
			tw:   s.D.NewTransposeWorkspace(),
		}
	}
	return s.ws
}

// NewPTCNSolver builds the distributed propagator starting at t = 0.
func NewPTCNSolver(d *Ctx, h *hamiltonian.Hamiltonian, hyb xc.HybridParams, useHybrid bool, field laser.Field, opt core.PTCNOptions, ex ExchangeOptions) *PTCNSolver {
	s := &PTCNSolver{D: d, H: h, Hyb: hyb, Hybrid: useHybrid, Field: field, Opt: opt, Ex: ex, Occ: 2}
	if useHybrid {
		s.kernel = fock.BuildKernel(d.G, hyb)
	}
	return s
}

// exScale attenuates the semi-local exchange when the Fock operator
// carries alpha of it, matching the serial hybrid Hamiltonian.
func (s *PTCNSolver) exScale() float64 {
	if s.Hybrid {
		return 1 - s.Hyb.Alpha
	}
	return 1
}

// density accumulates the global charge density: local bands on the dense
// grid, then MPI_Allreduce in deterministic rank order so every rank holds
// bit-identical data. Collective.
func (s *PTCNSolver) density(local []complex128) []float64 {
	ref := s.D.C.Trace().Begin("density", "solver")
	nbl := len(local) / s.D.G.NG
	rho := potential.Density(s.D.G, local, nbl, s.Occ)
	mpi.AllreduceSum(s.D.C, tagDensity, rho)
	s.D.C.Trace().End(ref)
	return rho
}

// prepare refreshes the field and the density-dependent potential for the
// given global density; each rank assembles the identical Veff redundantly
// from the allreduced density and hands it to its Hamiltonian.
func (s *PTCNSolver) prepare(rho []float64, t float64) {
	if s.Field != nil {
		s.H.SetField(s.Field.A(t))
	} else {
		s.H.SetField([3]float64{})
	}
	veff, en := potential.SCFPotential(s.D.G, rho, s.H.VlocDense(), s.exScale())
	s.H.SetVeffDense(veff, en)
}

// exchangeWS returns the solver's exchange workspace, allocated on first
// use and shared by the exact and ACE construction paths.
func (s *PTCNSolver) exchangeWS() *ExchangeWorkspace {
	if s.exWS == nil {
		s.exWS = s.D.NewExchangeWorkspace()
	}
	return s.exWS
}

// exchange applies the distributed Fock exchange V_X[phi] psi through the
// solver's reusable workspace, so the per-iteration exchange performs no
// band-block allocations. phi is the reference block the strategies ship
// (the iterate itself, or the frozen MTS reference).
func (s *PTCNSolver) exchange(phi, psi []complex128) []complex128 {
	return s.D.FockExchangeWS(phi, psi, s.kernel, s.Hyb.Alpha, s.Ex, s.exchangeWS())
}

// mtsPeriod resolves the effective exchange refresh cadence: the explicit
// MTS period when set, 1 under the Jia & Lin hold cadence (-acehold is the
// M = 1 special case of -mts), 0 for per-refresh rebuilds.
// ACEHoldThroughSCF is an ACE cadence and stays inert on the exact path
// (its pre-MTS contract); freezing the exact exchange requires an explicit
// MTSPeriod.
func (s *PTCNSolver) mtsPeriod() int {
	if s.Ex.MTSPeriod > 0 {
		return s.Ex.MTSPeriod
	}
	if s.Ex.ACEHoldThroughSCF && s.Ex.ACE {
		return 1
	}
	return 0
}

// freezeRef snapshots this rank's band block as the frozen exchange
// reference of the current MTS cycle. The buffer is solver-owned and
// reused, keeping the outer-step refresh allocation-free in steady state.
func (s *PTCNSolver) freezeRef(local []complex128) {
	if len(s.mtsPhi) != len(local) {
		s.mtsPhi = make([]complex128, len(local))
	}
	copy(s.mtsPhi, local)
}

// MTSPhase reports the position within the current MTS cycle: the number
// of steps completed since the last outer step, in [0, M). It is 0 when no
// hold cadence is active, and 0 at cycle boundaries - where a checkpoint
// needs no frozen reference because the next step rebuilds anyway.
func (s *PTCNSolver) MTSPhase() int {
	if m := s.mtsPeriod(); m > 0 {
		return s.stepIndex % m
	}
	return 0
}

// MTSRef exposes this rank's frozen exchange reference block (nil before
// the first outer step or when no hold cadence is active). Checkpointing
// gathers it so a resumed segment can reconstruct the frozen operator.
func (s *PTCNSolver) MTSRef() []complex128 {
	if s.mtsPeriod() == 0 {
		return nil
	}
	return s.mtsPhi
}

// ResumeMTS restores the multiple-time-stepping cadence state after a
// checkpoint load: phase is the position within the M-step cycle (the
// loaded cumulative step modulo M) and phiRef is this rank's band block of
// the frozen exchange reference saved at the last outer step - required
// when phase > 0, ignored at a cycle boundary (the next step is an outer
// step and rebuilds from Psi_n anyway). Collective when the compressed
// operator must be reconstructed: all ranks call it together.
func (s *PTCNSolver) ResumeMTS(phase int, phiRef []complex128) error {
	m := s.mtsPeriod()
	if m == 0 {
		if phase != 0 {
			return fmt.Errorf("dist: ResumeMTS(phase=%d) without an MTS/hold cadence", phase)
		}
		return nil
	}
	if phase < 0 || phase >= m {
		return fmt.Errorf("dist: ResumeMTS phase %d outside cycle [0, %d)", phase, m)
	}
	s.stepIndex = phase
	if phase == 0 || !s.Hybrid {
		return nil
	}
	if phiRef == nil {
		return fmt.Errorf("dist: resuming mid-cycle (phase %d of %d) needs the frozen exchange reference", phase, m)
	}
	s.freezeRef(phiRef)
	if s.Ex.ACE {
		if s.ace == nil {
			s.ace = s.D.NewACE()
		}
		if err := s.ace.Rebuild(s.mtsPhi, nil, s.kernel, s.Hyb.Alpha, s.Ex, s.exchangeWS()); err != nil {
			return err
		}
		s.aceStale = false
	}
	return nil
}

// applyH computes H psi into hp for the local band block: the semi-local
// part per band, plus the distributed Fock exchange. Without a hold
// cadence the exchange takes the current block as its own reference
// (V_X[P] with P from the iterate, as in Alg. 1 line 5); under acehold or
// MTS the reference is frozen at the Psi_n of the last outer step. localG
// is the caller's transpose of local into the G layout, reused by the ACE
// build and application so the iterate crosses the wire once per residual.
// In ACE mode the exchange goes through the compressed operator, rebuilt
// per the configured cadence; a failed rebuild (degenerate reference set)
// is a loud, rank-symmetric error, never a silent fallback to the exact
// operator.
func (s *PTCNSolver) applyH(hp, local, localG []complex128) error {
	nbl := len(local) / s.D.G.NG
	s.H.Apply(hp, local, nbl)
	if !s.Hybrid {
		return nil
	}
	if s.Ex.ACE {
		if s.ace == nil {
			s.ace = s.D.NewACE()
		}
		if s.aceStale || s.mtsPeriod() == 0 {
			if err := s.ace.Rebuild(local, localG, s.kernel, s.Hyb.Alpha, s.Ex, s.exchangeWS()); err != nil {
				return err
			}
			s.aceStale = false
		}
		s.ace.ApplyFromG(hp, localG)
		return nil
	}
	phi := local
	if s.mtsPeriod() > 0 {
		// Exact exchange under a hold cadence: the frozen Psi_n of the
		// last outer step is the reference the strategies ship.
		phi = s.mtsPhi
	}
	vx := s.exchange(phi, local)
	for i := range hp {
		hp[i] += vx[i]
	}
	return nil
}

// residual computes the PT residual R = H psi - psi (Psi^* H Psi) for the
// local block into the step workspace; the returned slice is ws.res, valid
// until the next call. The band-coupled projection runs in the G-space
// layout: psi and H psi are transposed, the overlap is accumulated
// slab-wise and allreduced, the projection applied per slab, and the
// result transposed back - three Alltoallv and one Allreduce per call
// (Fig. 1's data path).
func (s *PTCNSolver) residual(local []complex128) ([]complex128, error) {
	ref := s.D.C.Trace().Begin("residual", "solver")
	defer s.D.C.Trace().End(ref)
	nb := s.D.NB
	ws := s.stepWS()
	s.D.BandToGWS(ws.psiG, local, false, ws.tw)
	if err := s.applyH(ws.hp, local, ws.psiG); err != nil {
		return nil, err
	}
	s.D.BandToGWS(ws.hpG, ws.hp, false, ws.tw)
	w := s.D.NumLocalG()
	linalg.Overlap(ws.ov, ws.psiG, ws.hpG, nb, nb, w)
	mpi.AllreduceSum(s.D.C, tagOverlap, ws.ov)
	linalg.ApplyMatrix(ws.resG, ws.psiG, ws.ov, nb, nb, w)
	for i := range ws.resG {
		ws.resG[i] = ws.hpG[i] - ws.resG[i]
	}
	s.D.GToBandWS(ws.res, ws.resG, false, ws.tw)
	return ws.res, nil
}

// orthonormalize re-orthogonalizes the global band set from local blocks:
// overlap in the G layout, replicated Cholesky, Trsm per slab (section
// 3.4). It returns the new block and the pre-factorization orthonormality
// error.
func (s *PTCNSolver) orthonormalize(local []complex128) ([]complex128, float64, error) {
	ref := s.D.C.Trace().Begin("orthonormalize", "solver")
	defer s.D.C.Trace().End(ref)
	nb := s.D.NB
	ws := s.stepWS()
	s.D.BandToGWS(ws.psiG, local, false, ws.tw)
	w := s.D.NumLocalG()
	linalg.Overlap(ws.ov, ws.psiG, ws.psiG, nb, nb, w)
	mpi.AllreduceSum(s.D.C, tagOverlap, ws.ov)
	var oerr float64
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			v := ws.ov[i*nb+j]
			if i == j {
				v -= 1
			}
			if a := math.Hypot(real(v), imag(v)); a > oerr {
				oerr = a
			}
		}
	}
	if err := linalg.CholeskyLower(ws.ov, nb); err != nil {
		return nil, oerr, fmt.Errorf("dist: orthogonalization failed: %w", err)
	}
	linalg.SolveLowerBands(ws.ov, ws.psiG, nb, w)
	// The orthonormalized block becomes the caller's new state, so this
	// final transpose returns a fresh slice rather than workspace memory.
	return s.D.GToBand(ws.psiG, false), oerr, nil
}

// Step advances the local band block by dt with Algorithm 1. All ranks
// must call it together; the convergence decision is made on the global
// density, so success and failure are symmetric across ranks.
func (s *PTCNSolver) Step(local []complex128, dt float64) ([]complex128, core.StepStats, error) {
	stepRef := s.D.C.Trace().Begin("step", "step")
	defer s.D.C.Trace().EndN(stepRef, int64(s.stepIndex))
	var stats core.StepStats
	ws := s.stepWS()
	// Exchange refresh cadence. Outer steps (every step without MTS; every
	// M-th step with it) mark the compressed operator stale - so the hold
	// cadences rebuild from Psi_n at the step's first exchange application
	// - and freeze the exact-path reference at Psi_n. Intermediate MTS
	// steps touch neither: the operator of the last outer step propagates.
	if m := s.mtsPeriod(); m == 0 || s.stepIndex%m == 0 {
		s.aceStale = true
		// The frozen reference backs the exact-path application (any M)
		// and mid-cycle checkpointing (M > 1); under ACE at M = 1 neither
		// reads it, so the hold cadence skips the per-step copy.
		if s.Hybrid && m > 0 && (!s.Ex.ACE || m > 1) {
			s.freezeRef(local)
		}
	}

	// Residual at t_n with the current state's H.
	rho := s.density(local)
	s.prepare(rho, s.Time)
	rn, err := s.residual(local)
	if err != nil {
		return nil, stats, err
	}
	stats.HApplications++

	// Half-step RHS Psi_{n+1/2} = Psi_n - i dt/2 Rn.
	half := ws.half
	ihalf := complex(0, dt/2)
	for i := range half {
		half[i] = local[i] - ihalf*rn[i]
	}
	psif := wavefunc.Clone(half)
	rhof := s.density(psif)

	nbl := len(local) / s.D.G.NG
	mixer := mixing.NewBandMixer(nbl, s.D.G.NG, s.Opt.MixHistory, s.Opt.MixBeta)
	tNext := s.Time + dt
	converged := false
	for j := 0; j < s.Opt.MaxSCF; j++ {
		iterRef := s.D.C.Trace().Begin("scf_iter", "solver")
		s.prepare(rhof, tNext)
		rf, err := s.residual(psif)
		if err != nil {
			s.D.C.Trace().EndN(iterRef, int64(j))
			return nil, stats, err
		}
		stats.HApplications++
		for i := range ws.fp {
			// Mixer convention: next = x + beta*f, so pass f = -R_f.
			ws.fp[i] = half[i] - psif[i] - ihalf*rf[i]
		}
		psif = mixer.Mix(psif, ws.fp)
		rhoNew := s.density(psif)
		stats.DensityError = potential.DensityDiff(s.D.G, rhoNew, rhof, s.Occ*float64(s.D.NB))
		rhof = rhoNew
		stats.SCFIterations++
		s.D.C.Trace().EndN(iterRef, int64(j))
		if stats.DensityError < s.Opt.TolDensity {
			converged = true
			break
		}
	}
	if !converged {
		return nil, stats, fmt.Errorf("dist: PT-CN SCF did not converge in %d iterations (density error %.3e)",
			s.Opt.MaxSCF, stats.DensityError)
	}

	out, oerr, err := s.orthonormalize(psif)
	if err != nil {
		return nil, stats, err
	}
	stats.OrthogonalityE = oerr
	s.Time = tNext
	s.stepIndex++
	return out, stats, nil
}

// IonGeometryChanged is the coupled-step hook of the Ehrenfest ion
// integrator, the distributed twin of core.PTCN.IonGeometryChanged: it
// rebuilds this rank's static geometry-dependent operators after an ion
// drift. Each rank owns a cloned cell (and grid/Hamiltonian built on it),
// so concurrent rebuilds never touch shared memory; the replicated ion
// trajectories stay bit-identical because the forces they integrate are
// allreduced. A held exchange operator (acehold/MTS) survives the rebuild
// unchanged - it has no explicit position dependence.
func (s *PTCNSolver) IonGeometryChanged() {
	s.H.RebuildGeometry()
}

// GlobalDensity returns the allreduced electron density of the band set
// whose local block this rank holds - bit-identical on every rank (the
// reduction runs in deterministic rank order). The force assembly derives
// the local-pseudopotential force from it. Collective.
func (s *PTCNSolver) GlobalDensity(local []complex128) []float64 {
	return s.density(local)
}

// AllreduceForces sums per-rank force partials (one [3] per atom) across
// ranks in deterministic rank order, leaving the identical total on every
// rank. The nonlocal projector force is accumulated per band, so each rank
// contributes its band block's share. Collective.
func (s *PTCNSolver) AllreduceForces(f [][3]float64) {
	ref := s.D.C.Trace().Begin("forces", "observe")
	defer s.D.C.Trace().End(ref)
	flat := make([]float64, 3*len(f))
	for i, v := range f {
		flat[3*i], flat[3*i+1], flat[3*i+2] = v[0], v[1], v[2]
	}
	mpi.AllreduceSum(s.D.C, tagForces, flat)
	for i := range f {
		f[i] = [3]float64{flat[3*i], flat[3*i+1], flat[3*i+2]}
	}
}

// TotalEnergy evaluates the energy functional for the local block at time
// t, refreshing H from the global density first (the "+1 energy
// evaluation" Fock application of the paper's per-step accounting). The
// kinetic, nonlocal and exchange partial sums are allreduced; the
// Hartree/XC/local terms come from the replicated potential assembly and
// are already global. The exchange term always goes through the exact
// operator - on its own reference set the ACE compression reproduces it
// exactly, so the once-per-step energy pays no accuracy for skipping the
// compressed path. Collective.
func (s *PTCNSolver) TotalEnergy(local []complex128, t float64) hamiltonian.EnergyBreakdown {
	ref := s.D.C.Trace().Begin("energy", "observe")
	defer s.D.C.Trace().End(ref)
	ng := s.D.G.NG
	nbl := len(local) / ng
	rho := s.density(local)
	s.prepare(rho, t)
	eb := s.H.TotalEnergy(local, nbl, s.Occ)
	part := []float64{eb.Kinetic, eb.Nonlocal, 0}
	if s.Hybrid {
		vx := s.exchange(local, local)
		var ex float64
		for j := 0; j < nbl; j++ {
			ex += real(linalg.Dot(local[j*ng:(j+1)*ng], vx[j*ng:(j+1)*ng]))
		}
		part[2] = ex
	}
	mpi.AllreduceSum(s.D.C, tagScalars, part)
	eb.Kinetic, eb.Nonlocal, eb.Exchange = part[0], part[1], part[2]
	return eb
}

// Current returns the macroscopic current density summed over all bands
// (velocity gauge, same conventions as observe.Current), with the per-rank
// partial sums allreduced. Uses the field most recently installed on H.
// Collective.
func (s *PTCNSolver) Current(local []complex128) [3]float64 {
	ref := s.D.C.Trace().Begin("current", "observe")
	defer s.D.C.Trace().End(ref)
	nbl := len(local) / s.D.G.NG
	j := observe.CurrentPartial(s.D.G, s.H.Field(), local, nbl)
	part := j[:]
	mpi.AllreduceSum(s.D.C, tagCurrent, part)
	f := s.Occ / s.D.G.Volume()
	return [3]float64{part[0] * f, part[1] * f, part[2] * f}
}

// ExcitedElectrons counts the electrons promoted out of the reference
// subspace (observe.ExcitedElectrons distributed over bands): ref is the
// full t = 0 band set, local this rank's current block. Each rank
// accumulates |<ref_i|psi_j>|^2 over its local j and the partial sums are
// allreduced. Collective.
func (s *PTCNSolver) ExcitedElectrons(ref, local []complex128) float64 {
	spanRef := s.D.C.Trace().Begin("excited", "observe")
	defer s.D.C.Trace().End(spanRef)
	ng := s.D.G.NG
	nbl := len(local) / ng
	overlap := make([]complex128, s.D.NB*nbl)
	linalg.Overlap(overlap, ref, local, s.D.NB, nbl, ng)
	part := make([]float64, 1)
	for _, v := range overlap {
		part[0] += real(v)*real(v) + imag(v)*imag(v)
	}
	mpi.AllreduceSum(s.D.C, tagExcited, part)
	return s.Occ * (float64(s.D.NB) - part[0])
}
