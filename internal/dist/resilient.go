// Resilient propagation: a supervisor around the distributed PT-CN loop
// that turns injected (or real) rank failures into bounded recovery
// instead of lost trajectories. Each attempt runs the world under
// mpi.RunTolerant with a peer-loss deadline; when a rank dies - a typed
// mpi.RankFailure from fault injection, or survivors' ErrPeerLost
// deadlines - the attempt's world is torn down (every goroutine unblocks
// via the deadline), the last good rolling checkpoint is loaded and
// validated, and a fresh world relaunches from it, with exponential
// backoff and a bounded retry budget. The recovered trajectory is
// bit-compatible with an uninterrupted one: checkpoints carry the exact
// Psi plus the mid-cycle MTS reference, the same state the PR 4 resume
// contract pins to 1e-10.
package dist

import (
	"fmt"
	"sync/atomic"
	"time"

	"ptdft/internal/checkpoint"
	"ptdft/internal/core"
	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/mpi"
	"ptdft/internal/trace"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

// ResilientConfig describes a fault-tolerant distributed propagation.
type ResilientConfig struct {
	Ranks int
	G     *grid.Grid
	NB    int
	// NewHamiltonian builds a fresh Hamiltonian per attempt: the solver
	// mutates potential state in place, so attempts must not share one.
	NewHamiltonian func() *hamiltonian.Hamiltonian
	Hyb            xc.HybridParams
	Hybrid         bool
	Field          laser.Field
	Opt            core.PTCNOptions
	Ex             ExchangeOptions
	Occ            float64 // 0 means the solver default (2, closed shell)

	Psi0  []complex128 // full band set at Step0 (band-major, NB x NG)
	T0    float64      // simulation time at Step0 (au)
	Step0 int64        // cumulative step counter at Psi0; must sit on an MTS cycle boundary
	Steps int          // steps to advance
	Dt    float64      // time step (au)

	// System identity stamped into checkpoints and validated on recovery.
	Natom int64
	Ecut  float64

	// Ckpt is the rolling checkpoint sequence recovery restarts from;
	// CkptEvery is the cadence in steps (0 disables periodic saves - a
	// failed attempt then replays from its own starting state). The final
	// state is always saved when Ckpt is set.
	Ckpt      *checkpoint.Rolling
	CkptEvery int

	// MaxRestarts bounds the retry budget; Backoff is the first retry's
	// delay, doubling per restart (0 disables the wait). Deadline is the
	// peer-loss detection bound (0 means mpi.DefaultDeadline).
	MaxRestarts int
	Backoff     time.Duration
	Deadline    time.Duration

	// FaultFor/PerturbFor configure the injection per attempt (attempt 0
	// is the first launch). Either may be nil.
	FaultFor   func(attempt int) *mpi.Fault
	PerturbFor func(attempt int) *mpi.Perturb

	// Trace, when set, records one span track per rank across every
	// attempt: Track(id) is idempotent, so a relaunched rank appends to
	// the same timeline and the export shows the crash, the gap, and the
	// recovery replay in sequence.
	Trace *trace.Recorder

	// Logf receives recovery-timeline notices (nil silences them).
	Logf func(format string, args ...any)
}

func (cfg *ResilientConfig) logf(format string, args ...any) {
	if cfg.Logf != nil {
		cfg.Logf(format, args...)
	}
}

// mtsPeriod mirrors PTCNSolver.mtsPeriod for the config's cadence.
func (cfg *ResilientConfig) mtsPeriod() int {
	if cfg.Ex.MTSPeriod > 0 {
		return cfg.Ex.MTSPeriod
	}
	if cfg.Ex.ACEHoldThroughSCF && cfg.Ex.ACE {
		return 1
	}
	return 0
}

// ResilientResult is the outcome of a completed resilient propagation.
type ResilientResult struct {
	Psi     []complex128 // full band set at the final step
	Time    float64
	Step    int64
	Energy  float64    // total energy at the final step
	Current [3]float64 // macroscopic current at the final step

	Restarts  int      // world relaunches performed
	LostSteps int64    // steps re-run because they postdated the last checkpoint
	Failures  []string // one line per failed attempt
}

// RunResilient propagates cfg.Steps distributed PT-CN steps to completion
// across rank failures. It returns the final state once an attempt
// finishes cleanly, or an error when the retry budget is exhausted, the
// recovery checkpoint is unusable, or the propagation itself fails
// (application errors such as SCF divergence are rank-symmetric and are
// never retried - a relaunch would fail identically).
func RunResilient(cfg ResilientConfig) (*ResilientResult, error) {
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("dist: resilient run needs >= 1 rank")
	}
	if len(cfg.Psi0) != cfg.NB*cfg.G.NG {
		return nil, fmt.Errorf("dist: psi0 length %d != %d bands x %d", len(cfg.Psi0), cfg.NB, cfg.G.NG)
	}
	if cfg.NewHamiltonian == nil {
		return nil, fmt.Errorf("dist: resilient run needs a Hamiltonian factory")
	}
	if cfg.CkptEvery < 0 {
		return nil, fmt.Errorf("dist: negative checkpoint cadence %d", cfg.CkptEvery)
	}
	if cfg.CkptEvery > 0 && cfg.Ckpt == nil {
		return nil, fmt.Errorf("dist: checkpoint cadence %d without a rolling checkpoint base", cfg.CkptEvery)
	}
	m := cfg.mtsPeriod()
	if m > 0 && cfg.Step0%int64(m) != 0 {
		return nil, fmt.Errorf("dist: resilient run must start on an MTS cycle boundary (step %d, period %d)", cfg.Step0, m)
	}
	deadline := cfg.Deadline
	if deadline == 0 {
		deadline = mpi.DefaultDeadline
	}

	// cur is the state the next attempt launches from; it starts at the
	// caller's initial conditions and advances to the recovered
	// checkpoint after each failure.
	cur := &checkpoint.State{
		Time: cfg.T0, Step: cfg.Step0,
		NBands: cfg.NB, NG: cfg.G.NG, Natom: cfg.Natom, Ecut: cfg.Ecut,
		Hybrid: cfg.Hybrid, Psi: wavefunc.Clone(cfg.Psi0),
		MTSPeriod: int64(m), MTSACE: cfg.Ex.ACE && m > 0,
	}
	target := cfg.Step0 + int64(cfg.Steps)
	res := &ResilientResult{}

	for attempt := 0; ; attempt++ {
		var p *mpi.Perturb
		if cfg.PerturbFor != nil {
			p = cfg.PerturbFor(attempt)
		}
		if p == nil {
			p = &mpi.Perturb{}
		}
		if cfg.FaultFor != nil {
			p.Fault = cfg.FaultFor(attempt)
		}
		if p.Deadline == 0 {
			p.Deadline = deadline
		}

		var progress atomic.Int64 // furthest completed step, for lost-step accounting
		progress.Store(cur.Step)
		var final *checkpoint.State
		var appErr, saveErr error
		_, fail := mpi.RunTolerant(cfg.Ranks, p, func(c *mpi.Comm) {
			c.SetTrace(cfg.Trace.Track(c.Rank(), fmt.Sprintf("rank %d", c.Rank())))
			d, err := NewCtx(c, cfg.G, cfg.NB, 2)
			if err != nil {
				if c.Rank() == 0 {
					appErr = err
				}
				return
			}
			s := NewPTCNSolver(d, cfg.NewHamiltonian(), cfg.Hyb, cfg.Hybrid, cfg.Field, cfg.Opt, cfg.Ex)
			if cfg.Occ != 0 {
				s.Occ = cfg.Occ
			}
			s.Time = cur.Time
			ng := cfg.G.NG
			lo, hi := d.BandRange(c.Rank())
			local := wavefunc.Clone(cur.Psi[lo*ng : hi*ng])
			var ref []complex128
			if cur.MTSPhase > 0 && cur.PhiRef != nil {
				ref = cur.PhiRef[lo*ng : hi*ng]
			}
			if err := s.ResumeMTS(int(cur.MTSPhase), ref); err != nil {
				if c.Rank() == 0 {
					appErr = err
				}
				return
			}
			for step := cur.Step; step < target; step++ {
				c.StepReached(step)
				local, _, err = s.Step(local, cfg.Dt)
				if err != nil {
					if c.Rank() == 0 {
						appErr = fmt.Errorf("step %d: %w", step, err)
					}
					return
				}
				done := step + 1
				if c.Rank() == 0 {
					progress.Store(done)
				}
				if cfg.CkptEvery > 0 && done < target && (done-cfg.Step0)%int64(cfg.CkptEvery) == 0 {
					st := cfg.snapshot(d, s, local, done)
					if c.Rank() == 0 {
						if err := cfg.Ckpt.Save(st); err != nil && saveErr == nil {
							saveErr = err
						}
					}
				}
			}
			eb := s.TotalEnergy(local, s.Time)
			j := s.Current(local)
			st := cfg.snapshot(d, s, local, target)
			if c.Rank() == 0 {
				final = st
				res.Energy = eb.Total()
				res.Current = j
			}
		})
		if appErr != nil {
			return nil, appErr
		}
		if saveErr != nil {
			// A failed periodic save does not stop propagation, but the
			// operator must know the recovery point is stale.
			cfg.logf("resilient: checkpoint save failed: %v", saveErr)
		}
		if fail == nil {
			if cfg.Ckpt != nil {
				if err := cfg.Ckpt.Save(final); err != nil {
					return nil, fmt.Errorf("dist: final checkpoint: %w", err)
				}
			}
			res.Psi, res.Time, res.Step = final.Psi, final.Time, final.Step
			return res, nil
		}

		// The attempt went down. Tear-down already happened (RunTolerant
		// only returns once every rank goroutine exited); recover.
		res.Failures = append(res.Failures, fail.Error())
		res.Restarts++
		if res.Restarts > cfg.MaxRestarts {
			return nil, fmt.Errorf("dist: giving up after %d restarts; last failure: %s", res.Restarts-1, fail.Error())
		}
		cfg.logf("resilient: attempt %d failed (%s); restart %d/%d", attempt, fail.Error(), res.Restarts, cfg.MaxRestarts)
		if cfg.Backoff > 0 {
			wait := cfg.Backoff << (res.Restarts - 1)
			if wait > 30*time.Second {
				wait = 30 * time.Second
			}
			time.Sleep(wait)
		}
		reached := progress.Load()
		if cfg.Ckpt != nil {
			st, file, err := cfg.Ckpt.Latest()
			switch {
			case err == nil:
				if cerr := st.Compatible(cfg.NB, cfg.G.NG, cfg.Natom, cfg.Ecut, cfg.Hybrid, m, cfg.Ex.ACE, false); cerr != nil {
					return nil, fmt.Errorf("dist: last good checkpoint %s unusable: %w", file, cerr)
				}
				if st.Step < cur.Step || st.Step > target {
					return nil, fmt.Errorf("dist: last good checkpoint %s at step %d outside segment [%d, %d]", file, st.Step, cur.Step, target)
				}
				cur = st
				cfg.logf("resilient: recovered from %s (step %d)", file, st.Step)
			case cfg.CkptEvery > 0:
				// No checkpoint landed yet: replay the attempt from its
				// own starting state.
				cfg.logf("resilient: no checkpoint yet (%v); replaying from step %d", err, cur.Step)
			default:
				cfg.logf("resilient: periodic checkpoints disabled; replaying from step %d", cur.Step)
			}
		}
		if reached > cur.Step {
			res.LostSteps += reached - cur.Step
		}
	}
}

// snapshot gathers the full restartable state (collective: every rank
// calls it, rank 0 keeps the result): the complete band set at `step`,
// and - mid MTS cycle - the frozen exchange reference the next attempt
// rebuilds the held operator from.
func (cfg *ResilientConfig) snapshot(d *Ctx, s *PTCNSolver, local []complex128, step int64) *checkpoint.State {
	m := cfg.mtsPeriod()
	st := &checkpoint.State{
		Time: s.Time, Step: step,
		NBands: cfg.NB, NG: cfg.G.NG, Natom: cfg.Natom, Ecut: cfg.Ecut,
		Hybrid: cfg.Hybrid, Psi: d.Gather(local),
		MTSPeriod: int64(m), MTSPhase: int64(s.MTSPhase()),
		MTSACE: cfg.Ex.ACE && m > 0,
	}
	if st.MTSPhase > 0 && cfg.Hybrid {
		st.PhiRef = d.Gather(s.MTSRef())
	}
	return st
}
