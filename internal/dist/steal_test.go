package dist

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"ptdft/internal/fock"
	"ptdft/internal/mpi"
	"ptdft/internal/parallel"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

// TestStealScheduleProperty fuzzes the pair schedule: for random (nb,
// ranks, chunk, interleaving seed), simulating the claim protocol must
// execute every pair exactly once, and every (pair, target band)
// contribution must land in exactly one accumulator slot - no drops, no
// double counts - regardless of which rank claims what in which order.
func TestStealScheduleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 200; trial++ {
		nb := 1 + rng.Intn(20)
		ranks := 1 + rng.Intn(8)
		if ranks > nb {
			ranks = nb
		}
		rect := rng.Intn(2) == 1
		chunkReq := rng.Intn(6) // 0 = auto
		npairs := stealPairCount(nb, rect)
		pi := make([]int32, npairs)
		pj := make([]int32, npairs)
		stealFillPairs(nb, rect, pi, pj)

		// The pair tables themselves: readiness-ordered, covering the
		// expected set exactly once.
		seen := map[[2]int32]int{}
		maxBand := int32(-1)
		for p := 0; p < npairs; p++ {
			i, j := pi[p], pj[p]
			if i < 0 || j < 0 || int(i) >= nb || int(j) >= nb {
				t.Fatalf("trial %d: pair %d = (%d,%d) out of range", trial, p, i, j)
			}
			if !rect && i > j {
				t.Fatalf("trial %d: triangle pair %d = (%d,%d) not ordered", trial, p, i, j)
			}
			m := i
			if j > m {
				m = j
			}
			if m < maxBand {
				t.Fatalf("trial %d: pair %d breaks readiness order (max band %d after %d)", trial, p, m, maxBand)
			}
			maxBand = m
			seen[[2]int32{i, j}]++
		}
		if len(seen) != npairs {
			t.Fatalf("trial %d: %d distinct pairs, want %d", trial, len(seen), npairs)
		}

		// Simulate the claim protocol under a random rank interleaving.
		chunk := stealChunkSize(npairs, ranks, chunkReq)
		if chunk < 1 {
			t.Fatalf("trial %d: chunk %d", trial, chunk)
		}
		nchunks := (npairs + chunk - 1) / chunk
		counter := 0
		claimedBy := make([]int, npairs)
		for i := range claimedBy {
			claimedBy[i] = -1
		}
		live := rng.Perm(ranks)
		for len(live) > 0 {
			k := rng.Intn(len(live))
			r := live[k]
			tkt := counter
			counter++
			if tkt >= nchunks {
				live = append(live[:k], live[k+1:]...)
				continue
			}
			lo, hi := tkt*chunk, (tkt+1)*chunk
			if hi > npairs {
				hi = npairs
			}
			for p := lo; p < hi; p++ {
				if claimedBy[p] != -1 {
					t.Fatalf("trial %d: pair %d claimed by both rank %d and rank %d", trial, p, claimedBy[p], r)
				}
				claimedBy[p] = r
			}
		}
		if counter != nchunks+ranks {
			t.Fatalf("trial %d: %d tickets drawn, want %d chunks + %d overshoots", trial, counter, nchunks, ranks)
		}

		// Accumulation ownership: each pair contributes to its target
		// band(s) through exactly one slot - the claimer's local
		// accumulator when it owns the band, else the claimer's staged
		// row, which the reduce folds into the owner exactly once.
		type slot struct{ rank, band int }
		contrib := map[slot]map[[2]int32]int{}
		owner := func(b int) int {
			for r := 0; r < ranks; r++ {
				lo := r * nb / ranks
				hi := (r + 1) * nb / ranks
				if b >= lo && b < hi {
					return r
				}
			}
			t.Fatalf("band %d unowned", b)
			return -1
		}
		for p := 0; p < npairs; p++ {
			if claimedBy[p] == -1 {
				t.Fatalf("trial %d: pair %d never claimed", trial, p)
			}
			targets := []int32{pj[p]}
			if !rect && pi[p] != pj[p] {
				targets = append(targets, pi[p])
			}
			for _, b := range targets {
				s := slot{rank: claimedBy[p], band: int(b)}
				if contrib[s] == nil {
					contrib[s] = map[[2]int32]int{}
				}
				contrib[s][[2]int32{pi[p], pj[p]}]++
			}
		}
		for s, pairs := range contrib {
			for pr, n := range pairs {
				if n != 1 {
					t.Fatalf("trial %d: pair %v folded %d times into slot %v", trial, pr, n, s)
				}
			}
			_ = owner(s.band) // every staged band has a well-defined reduce owner
		}
	}
}

// TestStealClaimStress drives the real claim machinery - WorkQueueTicket,
// FetchAdd, the overshoot-retire protocol - across repeated epochs and
// perturbed GOMAXPROCS values, asserting exactly-once chunk coverage every
// time. Runs under -race in CI.
func TestStealClaimStress(t *testing.T) {
	for _, procs := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		prev := runtime.GOMAXPROCS(procs)
		func() {
			defer runtime.GOMAXPROCS(prev)
			for _, size := range []int{2, 3, 8} {
				nchunks := 97
				epochs := 20
				claims := make([][]atomic.Int32, epochs)
				for e := range claims {
					claims[e] = make([]atomic.Int32, nchunks)
				}
				mpi.Run(size, func(c *mpi.Comm) {
					for e := 0; e < epochs; e++ {
						key := c.WorkQueueTicket()
						for {
							tkt := int(c.FetchAdd(key, 1))
							if tkt >= nchunks {
								if tkt == nchunks+size-1 {
									c.ForgetCounter(key)
								}
								break
							}
							claims[e][tkt].Add(1)
						}
					}
				})
				for e := range claims {
					for i := range claims[e] {
						if n := claims[e][i].Load(); n != 1 {
							t.Fatalf("procs=%d size=%d epoch %d: chunk %d claimed %d times", procs, size, e, i, n)
						}
					}
				}
			}
		}()
	}
}

// TestStealMatchesBcast is the cross-schedule equivalence pin: the dynamic
// schedule must reproduce the static bcast result to 1e-12 across rank
// counts, wire precisions, distinct reference/target blocks (the rectangle
// schedule) and chunk granularities - and, since the claim order is
// whatever the race produces, the result is order-independent by
// construction of the test.
func TestStealMatchesBcast(t *testing.T) {
	g, psi, nb := testGrid(t)
	hyb := xc.HSE06()
	kernel := fock.BuildKernel(g, hyb)
	phi := wavefunc.Random(g, nb, 11) // distinct reference block for the rectangle case

	run := func(ranks int, opt ExchangeOptions, sameRef bool, p *mpi.Perturb) []complex128 {
		out := make([]complex128, nb*g.NG)
		mpi.RunPerturbed(ranks, p, func(c *mpi.Comm) {
			d, err := NewCtx(c, g, nb, 2)
			if err != nil {
				t.Error(err)
				return
			}
			lo, hi := d.BandRange(c.Rank())
			localPsi := wavefunc.Clone(psi[lo*g.NG : hi*g.NG])
			localPhi := localPsi
			if !sameRef {
				localPhi = wavefunc.Clone(phi[lo*g.NG : hi*g.NG])
			}
			vx := d.FockExchange(localPhi, localPsi, kernel, hyb.Alpha, opt)
			full := d.Gather(vx)
			if c.Rank() == 0 {
				copy(out, full)
			}
		})
		return out
	}

	for _, ranks := range []int{1, 2, 4} {
		for _, single := range []bool{false, true} {
			for _, sameRef := range []bool{true, false} {
				name := fmt.Sprintf("ranks%d_single%v_same%v", ranks, single, sameRef)
				t.Run(name, func(t *testing.T) {
					want := run(ranks, ExchangeOptions{Strategy: BcastSequential, SinglePrecision: single}, sameRef, nil)
					for _, chunk := range []int{0, 1, 3} {
						got := run(ranks, ExchangeOptions{Strategy: Steal, SinglePrecision: single, StealChunk: chunk}, sameRef, nil)
						if diff := wavefunc.MaxDiff(got, want); diff > 1e-12 {
							t.Errorf("chunk=%d: steal differs from bcast by %g", chunk, diff)
						}
					}
				})
			}
		}
	}

	// Injected stragglers and NIC delay reshuffle who claims what; the
	// result must not move.
	t.Run("straggler", func(t *testing.T) {
		p := &mpi.Perturb{
			ComputeScale: func(rank int) float64 {
				if rank == 0 {
					return 3.0
				}
				return 1.0
			},
			WireDelay: func(src, dst int, bytes int64) time.Duration {
				if src == 1 || dst == 1 {
					return 200 * time.Microsecond
				}
				return 0
			},
		}
		want := run(4, ExchangeOptions{Strategy: BcastSequential}, true, nil)
		got := run(4, ExchangeOptions{Strategy: Steal, StealChunk: 1}, true, p)
		if diff := wavefunc.MaxDiff(got, want); diff > 1e-12 {
			t.Errorf("steal under stragglers differs from unperturbed bcast by %g", diff)
		}
	})
}

// TestStealMatchesBcastACE extends the equivalence through the compressed
// operator: Xi built under the steal schedule must act like Xi built under
// bcast. The Cholesky factorization of the ACE build can amplify the
// accumulation-order round-off of its input by a few orders, hence the
// 1e-10 tolerance (the same bound TestDistACEExactOnReference uses).
func TestStealMatchesBcastACE(t *testing.T) {
	g, psi, nb := testGrid(t)
	hyb := xc.HSE06()
	kernel := fock.BuildKernel(g, hyb)
	for _, ranks := range []int{1, 2, 4} {
		aceApply := func(opt ExchangeOptions) []complex128 {
			out := make([]complex128, nb*g.NG)
			mpi.Run(ranks, func(c *mpi.Comm) {
				d, err := NewCtx(c, g, nb, 2)
				if err != nil {
					t.Error(err)
					return
				}
				lo, hi := d.BandRange(c.Rank())
				local := wavefunc.Clone(psi[lo*g.NG : hi*g.NG])
				a := d.NewACE()
				if err := a.Rebuild(local, nil, kernel, hyb.Alpha, opt, d.NewExchangeWorkspace()); err != nil {
					t.Error(err)
					return
				}
				got := make([]complex128, len(local))
				a.Apply(got, local)
				full := d.Gather(got)
				if c.Rank() == 0 {
					copy(out, full)
				}
			})
			return out
		}
		want := aceApply(ExchangeOptions{Strategy: BcastSequential})
		got := aceApply(ExchangeOptions{Strategy: Steal})
		if diff := wavefunc.MaxDiff(got, want); diff > 1e-10 {
			t.Errorf("ranks=%d: ACE built under steal differs from bcast-built by %g", ranks, diff)
		}
	}
}

// TestExchangePipelinesDoNotInflateVolume: broadcast-ahead changes when
// payloads move, never how much moves. The overlapped pipeline must bill
// exactly the sequential strategy's bytes, and the steal pipeline must
// bill exactly the sequential Bcast volume for its reference distribution.
func TestExchangePipelinesDoNotInflateVolume(t *testing.T) {
	g, psi, nb := testGrid(t)
	hyb := xc.HSE06()
	kernel := fock.BuildKernel(g, hyb)
	run := func(opt ExchangeOptions) *mpi.Stats {
		return mpi.Run(4, func(c *mpi.Comm) {
			d, err := NewCtx(c, g, nb, 2)
			if err != nil {
				t.Error(err)
				return
			}
			lo, hi := d.BandRange(c.Rank())
			local := wavefunc.Clone(psi[lo*g.NG : hi*g.NG])
			d.FockExchange(local, local, kernel, hyb.Alpha, opt)
		})
	}
	seq := run(ExchangeOptions{Strategy: BcastSequential})
	ovl := run(ExchangeOptions{Strategy: BcastOverlapped})
	if ovl.TotalBytes() != seq.TotalBytes() {
		t.Errorf("overlapped pipeline ships %d bytes, sequential %d", ovl.TotalBytes(), seq.TotalBytes())
	}
	sl := run(ExchangeOptions{Strategy: Steal})
	if sl.BytesFor(mpi.ClassBcast) != seq.BytesFor(mpi.ClassBcast) {
		t.Errorf("steal broadcast-ahead ships %d Bcast bytes, sequential %d", sl.BytesFor(mpi.ClassBcast), seq.BytesFor(mpi.ClassBcast))
	}
}

// TestStealBalancesStragglers is the load-balance smoke check behind the
// benchmark claim: with one 4x straggler on four ranks, the dynamic
// schedule finishes the exchange measurably faster than the static
// pipeline on the identical workload. (The quantitative 1.3x bound on
// eight ranks is pinned against BENCH_fock.json by the trajectory test.)
func TestStealBalancesStragglers(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	defer parallel.SetMaxWorkers(parallel.SetMaxWorkers(1))
	g, psi, nb := testGrid(t)
	hyb := xc.HSE06()
	kernel := fock.BuildKernel(g, hyb)
	p := &mpi.Perturb{ComputeScale: func(rank int) float64 {
		if rank == 0 {
			return 4.0
		}
		return 1.0
	}}
	wall := func(opt ExchangeOptions) time.Duration {
		var el atomic.Int64
		mpi.RunPerturbed(4, p, func(c *mpi.Comm) {
			d, err := NewCtx(c, g, nb, 2)
			if err != nil {
				t.Error(err)
				return
			}
			lo, hi := d.BandRange(c.Rank())
			local := wavefunc.Clone(psi[lo*g.NG : hi*g.NG])
			ex := d.NewExchangeWorkspace()
			d.FockExchangeWS(local, local, kernel, hyb.Alpha, opt, ex) // warm
			c.Barrier()
			t0 := time.Now()
			for rep := 0; rep < 3; rep++ {
				d.FockExchangeWS(local, local, kernel, hyb.Alpha, opt, ex)
			}
			c.Barrier()
			if c.Rank() == 0 {
				el.Store(int64(time.Since(t0)))
			}
		})
		return time.Duration(el.Load())
	}
	static := wall(ExchangeOptions{Strategy: BcastOverlapped})
	steal := wall(ExchangeOptions{Strategy: Steal})
	if float64(static) < 1.05*float64(steal) {
		t.Errorf("steal (%v) not faster than overlap (%v) under a 4x straggler", steal, static)
	}
}
