//go:build race

package dist

// raceEnabled reports that the race detector is active; sync.Pool drops
// items randomly under race, so allocation pins are meaningless.
const raceEnabled = true
