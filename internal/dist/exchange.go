// Fock-exchange communication: the three strategies of section 3.2 for
// shipping the reference orbitals phi to every rank, and the distributed
// application of the screened exchange operator to the local band block.
package dist

import (
	"fmt"
	"strings"

	"ptdft/internal/fock"
	"ptdft/internal/mpi"
	"ptdft/internal/parallel"
)

// ExchangeStrategy selects how the exchange reference orbitals travel.
type ExchangeStrategy int

const (
	// BcastSequential broadcasts each reference band from its owner in
	// global band order and computes its contribution before the next
	// broadcast starts - the paper's baseline binomial-tree scheme
	// (section 3.2, optimization 3).
	BcastSequential ExchangeStrategy = iota
	// BcastOverlapped posts the broadcast of band i+1 while band i is
	// being folded into the local accumulators, hiding the broadcast
	// latency behind the FFT work (section 3.2, optimization 5 - the
	// paper overlaps MPI_Bcast with GPU computation the same way).
	BcastOverlapped
	// RoundRobin passes band blocks around a ring with point-to-point
	// Send/Recv instead of broadcasts: after P-1 hops every rank has
	// folded in every block. Trades the log(P) tree for P-1 neighbor
	// messages; the paper discusses it as the broadcast alternative.
	RoundRobin
)

// strategyTable is the single source of truth for strategy names: String,
// StrategyNames and ParseStrategy all derive from it, so adding a strategy
// means adding exactly one row.
var strategyTable = []struct {
	strategy ExchangeStrategy
	name     string
}{
	{BcastSequential, "bcast"},
	{BcastOverlapped, "overlap"},
	{RoundRobin, "roundrobin"},
}

// String names the strategy as the -exchange flag spells it.
func (s ExchangeStrategy) String() string {
	for _, e := range strategyTable {
		if e.strategy == s {
			return e.name
		}
	}
	return fmt.Sprintf("ExchangeStrategy(%d)", int(s))
}

// StrategyNames lists the recognized strategy names in flag order.
func StrategyNames() []string {
	names := make([]string, len(strategyTable))
	for i, e := range strategyTable {
		names[i] = e.name
	}
	return names
}

// ParseStrategy resolves a CLI name to a strategy, rejecting unknown names
// instead of silently mapping them to the zero value.
func ParseStrategy(name string) (ExchangeStrategy, error) {
	for _, e := range strategyTable {
		if e.name == name {
			return e.strategy, nil
		}
	}
	return 0, fmt.Errorf("dist: unknown exchange strategy %q (valid: %s)", name, strings.Join(StrategyNames(), ", "))
}

// ExchangeOptions bundle the communication choices for one exchange
// application. SinglePrecision down-converts the orbital payloads to
// complex64 on the wire (section 3.2, optimization 4: "single precision
// MPI"), halving the dominant communication volume; wavefunctions are
// converted back to double precision for computation.
type ExchangeOptions struct {
	Strategy        ExchangeStrategy
	SinglePrecision bool
}

// FockExchange applies the distributed screened Fock exchange
// V_X[phi] psi_j for every local band j and returns the band-major result
// (sphere coefficients): each reference band phi_i - owned rank by rank
// across the communicator - is delivered to every rank by the selected
// strategy and folded into the local accumulators with one FFT Poisson
// solve per (i, j) pair, the Alg. 2 inner loop. phi and psi are this
// rank's band blocks; kernel is the screened Coulomb kernel K(G) on the
// wavefunction box (fock.BuildKernel); alpha is the exchange mixing
// fraction. Collective: all ranks must call it together with the same
// options.
func (d *Ctx) FockExchange(phi, psi []complex128, kernel []float64, alpha float64, opt ExchangeOptions) []complex128 {
	ng := d.G.NG
	ntot := d.G.NTot
	nbl := d.NumLocalBands()
	if len(phi) != nbl*ng || len(psi) != nbl*ng {
		panic("dist: FockExchange band block size mismatch")
	}
	if len(kernel) != ntot {
		panic("dist: FockExchange kernel must cover the wavefunction box")
	}

	// Real-space local psi bands and accumulators, computed once.
	psiReal := make([]complex128, nbl*ntot)
	parallel.For(nbl, func(j int) {
		d.G.ToRealSerial(psiReal[j*ntot:(j+1)*ntot], psi[j*ng:(j+1)*ng])
	})
	acc := make([]complex128, nbl*ntot)

	// process folds one reference band (sphere coefficients) into every
	// local accumulator through the shared Alg. 2 inner step. Scratch is
	// hoisted out of the hot loop: one phiR reused across reference bands
	// (process runs sequentially) and one pair buffer per local band
	// (parallel.For hands each j to exactly one worker).
	phiR := make([]complex128, ntot)
	pairs := make([]complex128, nbl*ntot)
	process := func(band []complex128) {
		d.G.ToRealSerial(phiR, band)
		parallel.For(nbl, func(j int) {
			fock.ContractReference(d.G, kernel, alpha, phiR, psiReal[j*ntot:(j+1)*ntot], acc[j*ntot:(j+1)*ntot], pairs[j*ntot:(j+1)*ntot])
		})
	}

	switch opt.Strategy {
	case BcastOverlapped:
		d.exchangeBcastOverlapped(phi, opt.SinglePrecision, process)
	case RoundRobin:
		d.exchangeRoundRobin(phi, opt.SinglePrecision, process)
	default:
		d.exchangeBcastSequential(phi, opt.SinglePrecision, process)
	}

	vx := make([]complex128, nbl*ng)
	parallel.For(nbl, func(j int) {
		d.G.FromRealSerial(vx[j*ng:(j+1)*ng], acc[j*ntot:(j+1)*ntot])
	})
	return vx
}

// bcastBand broadcasts one band from root into buf, optionally through a
// single-precision wire format. In single mode the root's own copy passes
// through complex64 too, so every rank computes from identical values.
func (d *Ctx) bcastBand(buf []complex128, root, tag int, single bool) {
	if single {
		b32 := mpi.SingleOf(buf)
		mpi.Bcast(d.C, root, tag, b32)
		copy(buf, mpi.DoubleOf(b32))
		return
	}
	mpi.Bcast(d.C, root, tag, buf)
}

// exchangeBcastSequential delivers reference bands in global order, one
// blocking broadcast each.
func (d *Ctx) exchangeBcastSequential(phi []complex128, single bool, process func([]complex128)) {
	ng := d.G.NG
	myLo, _ := d.BandRange(d.C.Rank())
	buf := make([]complex128, ng)
	for i := 0; i < d.NB; i++ {
		owner := d.bandOwner(i)
		if owner == d.C.Rank() {
			copy(buf, phi[(i-myLo)*ng:(i-myLo+1)*ng])
		}
		d.bcastBand(buf, owner, tagExchBcast+i, single)
		process(buf)
	}
}

// exchangeBcastOverlapped pipelines the broadcasts: the fetch of band i+1
// runs on its own goroutine (distinct tag, so the Comm handle is safe)
// while band i is folded into the accumulators.
func (d *Ctx) exchangeBcastOverlapped(phi []complex128, single bool, process func([]complex128)) {
	ng := d.G.NG
	myLo, _ := d.BandRange(d.C.Rank())
	fetch := func(i int) chan []complex128 {
		ch := make(chan []complex128, 1)
		go func() {
			buf := make([]complex128, ng)
			owner := d.bandOwner(i)
			if owner == d.C.Rank() {
				copy(buf, phi[(i-myLo)*ng:(i-myLo+1)*ng])
			}
			d.bcastBand(buf, owner, tagExchBcast+i, single)
			ch <- buf
		}()
		return ch
	}
	next := fetch(0)
	for i := 0; i < d.NB; i++ {
		band := <-next
		if i+1 < d.NB {
			next = fetch(i + 1)
		}
		process(band)
	}
}

// exchangeRoundRobin circulates band blocks around the rank ring: at hop t
// each rank holds (and folds in) the block originally owned by rank
// (rank - t) mod P, then passes it to the next rank.
func (d *Ctx) exchangeRoundRobin(phi []complex128, single bool, process func([]complex128)) {
	ng := d.G.NG
	rank, size := d.C.Rank(), d.C.Size()
	cur := append([]complex128(nil), phi...)
	if single {
		// Round own block through the wire precision up front so all
		// strategies compute from identically rounded reference data.
		cur = mpi.DoubleOf(mpi.SingleOf(cur))
	}
	for t := 0; t < size; t++ {
		src := (rank - t + size) % size
		lo, hi := d.BandRange(src)
		for i := 0; i < hi-lo; i++ {
			process(cur[i*ng : (i+1)*ng])
		}
		if t == size-1 {
			break
		}
		next, prev := (rank+1)%size, (rank-1+size)%size
		if single {
			mpi.Send(d.C, next, tagExchRing+t, mpi.SingleOf(cur))
			cur = mpi.DoubleOf(mpi.Recv[complex64](d.C, prev, tagExchRing+t))
		} else {
			mpi.Send(d.C, next, tagExchRing+t, cur)
			cur = mpi.Recv[complex128](d.C, prev, tagExchRing+t)
		}
	}
}
