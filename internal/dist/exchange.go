// Fock-exchange communication: the three strategies of section 3.2 for
// shipping the reference orbitals phi to every rank, and the distributed
// application of the screened exchange operator to the local band block.
package dist

import (
	"fmt"
	"strings"

	"ptdft/internal/fock"
	"ptdft/internal/fourier"
	"ptdft/internal/lanes"
	"ptdft/internal/mpi"
	"ptdft/internal/parallel"
)

// ExchangeStrategy selects how the exchange reference orbitals travel.
type ExchangeStrategy int

const (
	// BcastSequential broadcasts each reference band from its owner in
	// global band order and computes its contribution before the next
	// broadcast starts - the paper's baseline binomial-tree scheme
	// (section 3.2, optimization 3).
	BcastSequential ExchangeStrategy = iota
	// BcastOverlapped posts the broadcast of band i+1 while band i is
	// being folded into the local accumulators, hiding the broadcast
	// latency behind the FFT work (section 3.2, optimization 5 - the
	// paper overlaps MPI_Bcast with GPU computation the same way).
	BcastOverlapped
	// RoundRobin passes band blocks around a ring with point-to-point
	// Send/Recv instead of broadcasts: after P-1 hops every rank has
	// folded in every block. Trades the log(P) tree for P-1 neighbor
	// messages; the paper discusses it as the broadcast alternative.
	RoundRobin
	// Steal replaces the static band-ownership schedule with a dynamic
	// work queue over the symmetric exchange pairs: ranks claim pair
	// chunks on demand through an MPI_Fetch_and_op counter (the HONPAS
	// dynamic parallel distribution, arXiv:2009.03555) while the band
	// broadcasts run ahead of the contraction on the overlapped pipeline.
	// A straggling rank simply claims fewer chunks instead of gating
	// every round. See steal.go for the schedule and DESIGN.md for the
	// overlap timeline.
	Steal
)

// strategyTable is the single source of truth for strategy names: String,
// StrategyNames and ParseStrategy all derive from it, so adding a strategy
// means adding exactly one row.
var strategyTable = []struct {
	strategy ExchangeStrategy
	name     string
}{
	{BcastSequential, "bcast"},
	{BcastOverlapped, "overlap"},
	{RoundRobin, "roundrobin"},
	{Steal, "steal"},
}

// String names the strategy as the -exchange flag spells it.
func (s ExchangeStrategy) String() string {
	for _, e := range strategyTable {
		if e.strategy == s {
			return e.name
		}
	}
	return fmt.Sprintf("ExchangeStrategy(%d)", int(s))
}

// StrategyNames lists the recognized strategy names in flag order.
func StrategyNames() []string {
	names := make([]string, len(strategyTable))
	for i, e := range strategyTable {
		names[i] = e.name
	}
	return names
}

// ParseStrategy resolves a CLI name to a strategy, rejecting unknown names
// instead of silently mapping them to the zero value.
func ParseStrategy(name string) (ExchangeStrategy, error) {
	for _, e := range strategyTable {
		if e.name == name {
			return e.strategy, nil
		}
	}
	return 0, fmt.Errorf("dist: unknown exchange strategy %q (valid: %s)", name, strings.Join(StrategyNames(), ", "))
}

// ExchangeOptions bundle the communication choices for one exchange
// application. SinglePrecision down-converts the orbital payloads to
// complex64 on the wire (section 3.2, optimization 4: "single precision
// MPI"), halving the dominant communication volume; wavefunctions are
// converted back to double precision for computation.
type ExchangeOptions struct {
	Strategy        ExchangeStrategy
	SinglePrecision bool

	// ACE applies the Fock operator through the distributed adaptively
	// compressed exchange (dist.ACE): Xi is constructed collectively with
	// the selected strategy and each application costs two layout
	// transposes plus one nb x nb Allreduce instead of nb broadcasts and
	// nb x nbl Poisson solves. Consumed by PTCNSolver; FockExchange itself
	// always applies the exact operator.
	ACE bool
	// ACEHoldThroughSCF rebuilds Xi once per PT-CN step - at the step's
	// first exchange application, from Psi_n - and holds it fixed through
	// the inner SCF iterations (the Jia & Lin cadence, arXiv:1809.09609).
	// When false Xi is rebuilt from the iterate at every refresh, which
	// keeps PT+ACE numerically equivalent to the exact-exchange path (the
	// compression is exact on its own reference span).
	ACEHoldThroughSCF bool
	// MTSPeriod enables multiple time stepping (Mandal et al.,
	// arXiv:2110.07670, adapted to the PT-CN gauge): the hybrid exchange
	// operator is refreshed from Psi_n only on "outer" steps - every M-th
	// step - and the frozen operator (the held Xi in ACE mode, the frozen
	// reference orbitals of the exact operator otherwise) propagates the
	// M-1 intermediate steps together with the per-step semi-local
	// physics. 0 disables MTS (the cadence is then per-refresh, or
	// once-per-step under ACEHoldThroughSCF); 1 is exactly the
	// ACEHoldThroughSCF cadence - every step is an outer step - which is
	// what makes -acehold the M = 1 special case of -mts. Consumed by
	// PTCNSolver.
	MTSPeriod int
	// StealChunk sets how many consecutive exchange pairs one work-queue
	// claim hands out under the Steal strategy. 0 picks a balance-oriented
	// default (about eight claims per rank); larger chunks cut counter
	// traffic, smaller chunks improve straggler resilience. Ignored by the
	// static strategies.
	StealChunk int
}

// ExchangeWorkspace holds every buffer one rank's FockExchange needs:
// real-space band blocks, per-worker Poisson scratch with FFT line
// workspaces, the wire buffers of the communication strategies, and the
// result block. The distributed solver builds one per rank and reuses it
// across SCF iterations, so the steady-state exchange performs no
// band-block allocations (the mailbox copies inside the mpi layer's
// Send/Bcast semantics remain - they model the wire).
type ExchangeWorkspace struct {
	g       *Ctx
	psiReal lanes.Slab            // nbl x NTot: local bands in real space (SoA)
	acc     lanes.Slab            // nbl x NTot: exchange accumulators (SoA)
	pairs   lanes.Slab            // nw x NTot: per-worker Poisson buffers (SoA)
	phiR    lanes.Slab            // NTot: current reference band in real space (SoA)
	band    [2]([]complex128)     // NG wire buffers (two for the overlapped pipeline)
	ring    []complex128          // nbl x NG: round-robin staging block
	vx      []complex128          // nbl x NG: result block, valid until the next call
	fft     []*fourier.Workspace3 // nw: per-worker FFT line scratch
	fftPhi  *fourier.Workspace3
	ch      chan []complex128 // overlapped-fetch handoff, capacity 1
	fault   any               // fault panic forwarded off a fetch goroutine

	// Per-application fold state, bound by FockExchangeWS so the strategy
	// loops call ws.process as a plain method instead of through a freshly
	// allocated closure (the strict zero-allocation contract of the solver
	// hot loop).
	kernel []float64
	alpha  float64
	nbl    int

	// steal holds the work-stealing schedule's buffers, allocated on the
	// first Steal-strategy call so the static strategies pay nothing.
	steal *stealState
}

// NewExchangeWorkspace allocates the exchange scratch for this rank's band
// block. Per-worker buffers are sized for the current worker bound and
// regrown on demand if it is raised later.
func (d *Ctx) NewExchangeWorkspace() *ExchangeWorkspace {
	ng, ntot, nbl := d.G.NG, d.G.NTot, d.NumLocalBands()
	ws := &ExchangeWorkspace{
		g:       d,
		psiReal: lanes.New(nbl * ntot),
		acc:     lanes.New(nbl * ntot),
		phiR:    lanes.New(ntot),
		ring:    make([]complex128, nbl*ng),
		vx:      make([]complex128, nbl*ng),
		fftPhi:  d.G.Plan.NewWorkspace(),
		ch:      make(chan []complex128, 1),
	}
	ws.band[0] = make([]complex128, ng)
	ws.band[1] = make([]complex128, ng)
	ws.ensureWorkers(parallel.NumWorkers(nbl))
	return ws
}

// forwardFault is deferred on every fetch-pipeline goroutine: an
// injected-fault panic there (a scheduled crash or a lost peer, raised
// inside the mpi layer) must not kill the process - only the rank's main
// goroutine is recovered by the tolerant runner. The fault is stashed and
// the handoff channel closed, so the main goroutine's next receive
// re-raises it on the recoverable goroutine. Non-fault panics are bugs
// and propagate. The workspace is dead after a forwarded fault; resilient
// drivers rebuild their contexts per attempt.
func (ws *ExchangeWorkspace) forwardFault() {
	p := recover()
	if p == nil {
		return
	}
	if !mpi.IsFault(p) {
		panic(p)
	}
	ws.fault = p
	close(ws.ch)
}

// refault re-raises a fault forwarded off a fetch goroutine (the closed-
// channel receive path).
func (ws *ExchangeWorkspace) refault() {
	if ws.fault != nil {
		panic(ws.fault)
	}
	panic("dist: fetch pipeline closed without a recorded fault")
}

// ensureWorkers grows the per-worker Poisson buffers and FFT workspaces to
// cover nw workers. Scratch scales with parallelism, not band count.
func (ws *ExchangeWorkspace) ensureWorkers(nw int) {
	ntot := ws.g.G.NTot
	if ws.pairs.Len() < nw*ntot {
		ws.pairs = lanes.New(nw * ntot)
	}
	for len(ws.fft) < nw {
		ws.fft = append(ws.fft, ws.g.G.Plan.NewWorkspace())
	}
}

// FockExchange applies the distributed screened Fock exchange
// V_X[phi] psi_j for every local band j and returns the band-major result
// (sphere coefficients): each reference band phi_i - owned rank by rank
// across the communicator - is delivered to every rank by the selected
// strategy and folded into the local accumulators with one fused FFT
// Poisson solve per (i, j) pair, the Alg. 2 inner loop. phi and psi are
// this rank's band blocks; kernel is the screened Coulomb kernel K(G) on
// the wavefunction box (fock.BuildKernel); alpha is the exchange mixing
// fraction. Collective: all ranks must call it together with the same
// options.
func (d *Ctx) FockExchange(phi, psi []complex128, kernel []float64, alpha float64, opt ExchangeOptions) []complex128 {
	return d.FockExchangeWS(phi, psi, kernel, alpha, opt, d.NewExchangeWorkspace())
}

// FockExchangeWS is FockExchange with caller-owned scratch. The returned
// slice is ws.vx: it stays valid until the next call with the same
// workspace. Collective.
func (d *Ctx) FockExchangeWS(phi, psi []complex128, kernel []float64, alpha float64, opt ExchangeOptions, ws *ExchangeWorkspace) []complex128 {
	exRef := d.C.Trace().Begin("exchange", "solver")
	defer d.C.Trace().End(exRef)
	ng := d.G.NG
	ntot := d.G.NTot
	nbl := d.NumLocalBands()
	if len(phi) != nbl*ng || len(psi) != nbl*ng {
		panic("dist: FockExchange band block size mismatch")
	}
	if len(kernel) != ntot {
		panic("dist: FockExchange kernel must cover the wavefunction box")
	}

	nw := parallel.NumWorkers(nbl)
	ws.ensureWorkers(nw)
	ws.kernel, ws.alpha, ws.nbl = kernel, alpha, nbl

	// Real-space local psi bands and accumulators, computed once. The
	// nw <= 1 branches run the loops inline - no closures, no goroutines -
	// which is the zero-allocation steady state the solver alloc test pins.
	fftRef := d.C.Trace().Begin("fft_to_real", "fft")
	if nw <= 1 {
		for j := 0; j < nbl; j++ {
			d.G.ToRealSlabWS(ws.psiReal.Row(j, ntot), psi[j*ng:(j+1)*ng], ws.fft[0])
		}
	} else {
		parallel.ForWorker(nbl, func(w, j int) {
			d.G.ToRealSlabWS(ws.psiReal.Row(j, ntot), psi[j*ng:(j+1)*ng], ws.fft[w])
		})
	}
	d.C.Trace().EndN(fftRef, int64(nbl))
	ws.acc.Zero()

	switch opt.Strategy {
	case BcastOverlapped:
		d.exchangeBcastOverlapped(phi, opt.SinglePrecision, ws)
	case RoundRobin:
		d.exchangeRoundRobin(phi, opt.SinglePrecision, ws)
	case Steal:
		d.exchangeSteal(phi, psi, opt.SinglePrecision, opt.StealChunk, ws)
	default:
		d.exchangeBcastSequential(phi, opt.SinglePrecision, ws)
	}

	fftRef = d.C.Trace().Begin("fft_from_real", "fft")
	if nw <= 1 {
		for j := 0; j < nbl; j++ {
			d.G.FromRealSlabWS(ws.vx[j*ng:(j+1)*ng], ws.acc.Row(j, ntot), ws.fft[0])
		}
	} else {
		parallel.ForWorker(nbl, func(w, j int) {
			d.G.FromRealSlabWS(ws.vx[j*ng:(j+1)*ng], ws.acc.Row(j, ntot), ws.fft[w])
		})
	}
	d.C.Trace().EndN(fftRef, int64(nbl))
	// Contributions other ranks computed for our bands arrive on the sphere
	// (the steal reduce runs after the claim loop), so they join after the
	// accumulator projection above.
	if st := ws.steal; st != nil && st.pending {
		for i := range st.vxAdd {
			ws.vx[i] += st.vxAdd[i]
		}
		st.pending = false
	}
	return ws.vx
}

// process folds one reference band (sphere coefficients) into every local
// accumulator through the shared Alg. 2 inner step, using the fold state
// bound by FockExchangeWS. Scratch is bound out of the hot loop: one phiR
// reused across reference bands (process runs sequentially) and one pair
// buffer plus FFT workspace per worker (ForWorker serializes all iterations
// of a worker index).
func (ws *ExchangeWorkspace) process(band []complex128) {
	d := ws.g
	ntot := d.G.NTot
	ref := d.C.Trace().Begin("contract", "fock")
	defer d.C.Trace().End(ref)
	t0 := d.C.WorkStart() // straggler model: stretch this rank's fold work
	d.G.ToRealSlabWS(ws.phiR, band, ws.fftPhi)
	if parallel.NumWorkers(ws.nbl) <= 1 {
		for j := 0; j < ws.nbl; j++ {
			fock.ContractReferenceWS(d.G, ws.kernel, ws.alpha, ws.phiR, ws.psiReal.Row(j, ntot), ws.acc.Row(j, ntot), ws.pairs.Row(0, ntot), ws.fft[0])
		}
	} else {
		parallel.ForWorker(ws.nbl, func(w, j int) {
			fock.ContractReferenceWS(d.G, ws.kernel, ws.alpha, ws.phiR, ws.psiReal.Row(j, ntot), ws.acc.Row(j, ntot), ws.pairs.Row(w, ntot), ws.fft[w])
		})
	}
	d.C.WorkEnd(t0)
}

// bcastBand broadcasts one band from root into buf, optionally through a
// single-precision wire format. In single mode the root's own copy passes
// through complex64 too, so every rank computes from identical values.
func (d *Ctx) bcastBand(buf []complex128, root, tag int, single bool) {
	if single {
		b32 := mpi.SingleOf(buf)
		mpi.Bcast(d.C, root, tag, b32)
		copy(buf, mpi.DoubleOf(b32))
		return
	}
	mpi.Bcast(d.C, root, tag, buf)
}

// exchangeBcastSequential delivers reference bands in global order, one
// blocking broadcast each into the workspace wire buffer.
func (d *Ctx) exchangeBcastSequential(phi []complex128, single bool, ws *ExchangeWorkspace) {
	ng := d.G.NG
	myLo, _ := d.BandRange(d.C.Rank())
	buf := ws.band[0]
	for i := 0; i < d.NB; i++ {
		owner := d.bandOwner(i)
		if owner == d.C.Rank() {
			copy(buf, phi[(i-myLo)*ng:(i-myLo+1)*ng])
		}
		d.bcastBand(buf, owner, tagExchBcast+i, single)
		ws.process(buf)
	}
}

// exchangeBcastOverlapped pipelines the broadcasts: the fetch of band i+1
// runs on its own goroutine (distinct tag, so the Comm handle is safe)
// while band i is folded into the accumulators. The two wire buffers
// ping-pong so the in-flight fetch never touches the band being processed.
// On one rank there is no broadcast to hide and the pipeline degenerates to
// the sequential loop (keeping the single-rank path goroutine-free).
func (d *Ctx) exchangeBcastOverlapped(phi []complex128, single bool, ws *ExchangeWorkspace) {
	if d.C.Size() == 1 {
		d.exchangeBcastSequential(phi, single, ws)
		return
	}
	ng := d.G.NG
	myLo, _ := d.BandRange(d.C.Rank())
	fetch := func(i int) {
		go func() {
			defer ws.forwardFault()
			buf := ws.band[i%2]
			owner := d.bandOwner(i)
			if owner == d.C.Rank() {
				copy(buf, phi[(i-myLo)*ng:(i-myLo+1)*ng])
			}
			d.bcastBand(buf, owner, tagExchBcast+i, single)
			ws.ch <- buf
		}()
	}
	fetch(0)
	for i := 0; i < d.NB; i++ {
		band, ok := <-ws.ch
		if !ok {
			ws.refault()
		}
		if i+1 < d.NB {
			fetch(i + 1)
		}
		ws.process(band)
	}
}

// exchangeRoundRobin circulates band blocks around the rank ring: at hop t
// each rank holds (and folds in) the block originally owned by rank
// (rank - t) mod P, then passes it to the next rank. The starting block is
// staged in the workspace ring buffer; the blocks received on later hops
// are the mailbox copies the mpi layer makes anyway (its Send semantics),
// so the caller side adds no allocations of its own.
func (d *Ctx) exchangeRoundRobin(phi []complex128, single bool, ws *ExchangeWorkspace) {
	ng := d.G.NG
	rank, size := d.C.Rank(), d.C.Size()
	cur := ws.ring[:len(phi)]
	copy(cur, phi)
	if single {
		// Round own block through the wire precision up front (in place)
		// so all strategies compute from identically rounded reference
		// data.
		for i := range cur {
			cur[i] = complex128(complex64(cur[i]))
		}
	}
	for t := 0; t < size; t++ {
		src := (rank - t + size) % size
		lo, hi := d.BandRange(src)
		for i := 0; i < hi-lo; i++ {
			ws.process(cur[i*ng : (i+1)*ng])
		}
		if t == size-1 {
			break
		}
		next, prev := (rank+1)%size, (rank-1+size)%size
		if single {
			mpi.Send(d.C, next, tagExchRing+t, mpi.SingleOf(cur))
			cur = mpi.DoubleOf(mpi.Recv[complex64](d.C, prev, tagExchRing+t))
		} else {
			mpi.Send(d.C, next, tagExchRing+t, cur)
			cur = mpi.Recv[complex128](d.C, prev, tagExchRing+t)
		}
	}
}
