// Package pseudo provides norm-conserving pseudopotentials in the form the
// plane-wave code consumes: an analytic local form factor v(q) per species
// and Kleinman-Bylander nonlocal projectors stored as sparse real-space
// vectors (the paper's representation, section 3.2 / ref [37]: real-space
// projectors are >5x faster than reciprocal space for systems beyond a few
// hundred atoms and need no communication because every rank stores them).
//
// The silicon potential is the Appelbaum-Hamann analytic model
// (PRB 8, 1777 (1973)) converted to Hartree units, standing in for the
// paper's SG15 ONCV potentials, plus a weak model s-channel KB projector so
// that the nonlocal code path is exercised exactly as in PWDFT.
package pseudo

import (
	"math"

	"ptdft/internal/grid"
)

// ProjectorSpec describes one Kleinman-Bylander channel with a Gaussian
// radial shape beta(r) = norm * exp(-r^2/(2 rc^2)) (s symmetry).
type ProjectorSpec struct {
	D    float64 // KB energy (Ha): contribution D * |beta><beta|
	Rc   float64 // Gaussian width (bohr)
	Rmax float64 // support cutoff radius (bohr); beta is truncated beyond
}

// Potential is a species pseudopotential.
type Potential struct {
	Symbol string
	Zval   float64
	// Local part parameters: V(r) = -(Z/r) erf(sqrt(alpha) r)
	//                              + (A + B r^2) exp(-alpha r^2).
	Alpha, A, B float64
	Projectors  []ProjectorSpec
}

// SiliconAH returns the Appelbaum-Hamann silicon potential with a weak
// model KB s-projector. AH parameters (Rydberg): alpha = 0.6102 bohr^-2,
// v1 = 3.042 Ry, v2 = -1.372 Ry/bohr^2; halved here for Hartree.
func SiliconAH() *Potential {
	return &Potential{
		Symbol: "Si",
		Zval:   4,
		Alpha:  0.6102,
		A:      3.042 / 2,
		B:      -1.372 / 2,
		Projectors: []ProjectorSpec{
			{D: 0.35, Rc: 1.1, Rmax: 3.5},
		},
	}
}

// GermaniumModel returns an Appelbaum-Hamann-style model potential for a
// germanium-like species: same valence (4) on the same lattice, with a
// softer core and shallower repulsive correction so its valence states sit
// higher than silicon's. Not fitted to real Ge - it exists to build
// heterostructure demonstrations (charge transfer between chemically
// distinct layers, one of the paper's motivating applications).
func GermaniumModel() *Potential {
	return &Potential{
		Symbol: "Ge",
		Zval:   4,
		Alpha:  0.52,
		A:      1.10,
		B:      -0.42,
		Projectors: []ProjectorSpec{
			{D: 0.30, Rc: 1.2, Rmax: 3.6},
		},
	}
}

// LocalFormFactor returns the Fourier transform of the local potential of
// one atom, in Ha*bohr^3, at squared wavevector q2. The q^2 -> 0 Coulomb
// divergence is excluded: callers must treat G = 0 separately (it cancels
// against the Hartree and ion-ion G = 0 terms in a neutral cell).
func (p *Potential) LocalFormFactor(q2 float64) float64 {
	e := math.Exp(-q2 / (4 * p.Alpha))
	gauss := math.Pow(math.Pi/p.Alpha, 1.5) * e
	var v float64
	if q2 > 1e-12 {
		v = -4 * math.Pi * p.Zval / q2 * e
	}
	// FT[(A + B r^2) e^{-alpha r^2}] = A*gauss + B*gauss*(3/(2 alpha) - q2/(4 alpha^2)).
	v += p.A * gauss
	v += p.B * gauss * (3/(2*p.Alpha) - q2/(4*p.Alpha*p.Alpha))
	return v
}

// Nonlocal holds the sparse real-space KB projectors of all atoms on the
// wavefunction grid. Every rank stores the full set (as in the paper, where
// the 432 MB of Si1536 projectors fit every V100), so applying it needs no
// communication.
type Nonlocal struct {
	projs []sparseProjector
	ng    int // wavefunction box size the projectors index into
	dv    float64
}

type sparseProjector struct {
	d    float64
	atom int // index into Cell.Atoms, for force assembly
	idx  []int32
	val  []float64
	// grad holds the center-gradient fields d beta / d R_d sampled on the
	// same support, present only for ion-dynamics builds (BuildNonlocalMD).
	grad [3][]float64
}

// BuildNonlocal constructs the sparse projectors for every atom in the cell
// on the wavefunction grid. pots maps species index to its Potential.
func BuildNonlocal(g *grid.Grid, pots map[int]*Potential) *Nonlocal {
	nl := &Nonlocal{ng: g.NTot, dv: g.DVWave()}
	pos := g.WavePointPositions()
	cellL := g.Cell.L
	for ai, atom := range g.Cell.Atoms {
		pot, ok := pots[atom.Species]
		if !ok {
			continue
		}
		for _, spec := range pot.Projectors {
			sp := buildSparse(pos, cellL, atom.Pos, spec, g.DVWave())
			sp.d = spec.D
			sp.atom = ai
			nl.projs = append(nl.projs, sp)
		}
	}
	return nl
}

func buildSparse(pos [][3]float64, cellL, center [3]float64, spec ProjectorSpec, dv float64) sparseProjector {
	var sp sparseProjector
	rmax2 := spec.Rmax * spec.Rmax
	for i, p := range pos {
		// Minimum-image distance in the orthorhombic cell.
		var r2 float64
		for d := 0; d < 3; d++ {
			dd := p[d] - center[d]
			dd -= cellL[d] * math.Round(dd/cellL[d])
			r2 += dd * dd
		}
		if r2 > rmax2 {
			continue
		}
		v := math.Exp(-r2 / (2 * spec.Rc * spec.Rc))
		sp.idx = append(sp.idx, int32(i))
		sp.val = append(sp.val, v)
	}
	// Normalize so that <beta|beta> = 1 on the grid: the KB energy D then
	// carries all the strength.
	var norm float64
	for _, v := range sp.val {
		norm += v * v
	}
	norm *= dv
	if norm > 0 {
		s := 1 / math.Sqrt(norm)
		for i := range sp.val {
			sp.val[i] *= s
		}
	}
	return sp
}

// NumProjectors reports the number of projector channels (atoms x channels).
func (nl *Nonlocal) NumProjectors() int { return len(nl.projs) }

// MemoryBytes estimates the storage of the sparse projectors, mirroring the
// paper's 432 MB accounting for Si1536.
func (nl *Nonlocal) MemoryBytes() int64 {
	var b int64
	for _, p := range nl.projs {
		b += int64(len(p.idx))*4 + int64(len(p.val))*8
	}
	return b
}

// Apply accumulates the nonlocal potential action dst += sum_a D_a
// |beta_a><beta_a|psi> for a wavefunction given in real space on the
// wavefunction grid. dst and src have length NTot and may not alias.
func (nl *Nonlocal) Apply(dst, src []complex128) {
	if len(dst) != nl.ng || len(src) != nl.ng {
		panic("pseudo: Nonlocal.Apply buffer size mismatch")
	}
	for _, p := range nl.projs {
		var re, im float64
		for k, ix := range p.idx {
			v := src[ix]
			re += p.val[k] * real(v)
			im += p.val[k] * imag(v)
		}
		c := complex(re*nl.dv*p.d, im*nl.dv*p.d)
		if c == 0 {
			continue
		}
		for k, ix := range p.idx {
			dst[ix] += complex(p.val[k], 0) * c
		}
	}
}

// Energy returns sum_a D_a |<beta_a|psi>|^2 for a real-space wavefunction.
func (nl *Nonlocal) Energy(src []complex128) float64 {
	if len(src) != nl.ng {
		panic("pseudo: Nonlocal.Energy buffer size mismatch")
	}
	var e float64
	for _, p := range nl.projs {
		var re, im float64
		for k, ix := range p.idx {
			v := src[ix]
			re += p.val[k] * real(v)
			im += p.val[k] * imag(v)
		}
		re *= nl.dv
		im *= nl.dv
		e += p.d * (re*re + im*im)
	}
	return e
}
