package pseudo

import (
	"math"

	"ptdft/internal/grid"
)

// BuildNonlocalBandLimited constructs the sparse real-space projectors by
// Fourier interpolation instead of point sampling: the analytic projector
// transform is synthesized on the wavefunction grid through the FFT box,
// so the sampled values are exactly band-limited to the grid's reciprocal
// vectors. This is the essence of the mask-function real-space scheme of
// the paper's ref [37] (Wang, PRB 64, 201107): band-limiting removes the
// "egg-box" translation dependence that naive point sampling of a
// localized projector suffers on coarse grids.
//
// The Gaussian channel beta(r) = exp(-r^2/(2 rc^2)) has transform
// betaT(q) = (2 pi)^{3/2} rc^3 exp(-q^2 rc^2 / 2).
func BuildNonlocalBandLimited(g *grid.Grid, pots map[int]*Potential) *Nonlocal {
	nl := &Nonlocal{ng: g.NTot, dv: g.DVWave()}
	pos := g.WavePointPositions()
	for ai, atom := range g.Cell.Atoms {
		pot, ok := pots[atom.Species]
		if !ok {
			continue
		}
		for _, spec := range pot.Projectors {
			sp := buildBandLimited(g, pos, atom.Pos, spec)
			sp.d = spec.D
			sp.atom = ai
			nl.projs = append(nl.projs, sp)
		}
	}
	return nl
}

func buildBandLimited(g *grid.Grid, pos [][3]float64, center [3]float64, spec ProjectorSpec) sparseProjector {
	n := g.N
	b := [3]float64{
		2 * math.Pi / g.Cell.L[0],
		2 * math.Pi / g.Cell.L[1],
		2 * math.Pi / g.Cell.L[2],
	}
	rc2 := spec.Rc * spec.Rc
	pref := math.Pow(2*math.Pi, 1.5) * spec.Rc * spec.Rc * spec.Rc / g.Volume()
	coeff := make([]complex128, g.NTot)
	idx := 0
	for ix := 0; ix < n[0]; ix++ {
		mx := ix
		if mx > n[0]/2 {
			mx -= n[0]
		}
		gx := float64(mx) * b[0]
		for iy := 0; iy < n[1]; iy++ {
			my := iy
			if my > n[1]/2 {
				my -= n[1]
			}
			gy := float64(my) * b[1]
			for iz := 0; iz < n[2]; iz++ {
				mz := iz
				if mz > n[2]/2 {
					mz -= n[2]
				}
				gz := float64(mz) * b[2]
				q2 := gx*gx + gy*gy + gz*gz
				amp := pref * math.Exp(-q2*rc2/2)
				ph := gx*center[0] + gy*center[1] + gz*center[2]
				s, c := math.Sincos(-ph)
				coeff[idx] = complex(amp*c, amp*s)
				idx++
			}
		}
	}
	// Synthesize beta(r) = sum_G coeff_G exp(iG.r): unnormalized inverse.
	g.Plan.Inverse(coeff, coeff)
	scale := float64(g.NTot)
	var sp sparseProjector
	rmax2 := spec.Rmax * spec.Rmax
	for i, p := range pos {
		var r2 float64
		for d := 0; d < 3; d++ {
			dd := p[d] - center[d]
			dd -= g.Cell.L[d] * math.Round(dd/g.Cell.L[d])
			r2 += dd * dd
		}
		if r2 > rmax2 {
			continue
		}
		sp.idx = append(sp.idx, int32(i))
		sp.val = append(sp.val, real(coeff[i])*scale)
	}
	var norm float64
	for _, v := range sp.val {
		norm += v * v
	}
	norm *= g.DVWave()
	if norm > 0 {
		s := 1 / math.Sqrt(norm)
		for i := range sp.val {
			sp.val[i] *= s
		}
	}
	return sp
}

// EggBoxError measures the translation dependence of a projector's raw
// (pre-normalization) grid norm: the relative spread of <beta|beta> as the
// center moves by sub-grid offsets. Band-limited construction should push
// this toward zero; point sampling leaves a percent-level ripple on coarse
// grids. Exposed for diagnostics and tests.
func EggBoxError(g *grid.Grid, spec ProjectorSpec, bandLimited bool, samples int) float64 {
	pos := g.WavePointPositions()
	h := g.Cell.L[0] / float64(g.N[0]) // one grid spacing
	var min, max float64
	for s := 0; s < samples; s++ {
		frac := float64(s) / float64(samples)
		center := [3]float64{
			g.Cell.L[0]/2 + frac*h,
			g.Cell.L[1] / 2,
			g.Cell.L[2] / 2,
		}
		var sp sparseProjector
		if bandLimited {
			sp = buildBandLimited(g, pos, center, spec)
		} else {
			sp = buildSparse(pos, g.Cell.L, center, spec, g.DVWave())
		}
		// Metric: the normalized projector's overlap with the constant
		// function, <beta|1> = sum_j beta(r_j) dV. On the exact grid sum
		// this picks out the G = 0 Fourier component, which is rigorously
		// translation invariant for a band-limited projector (up to the
		// rmax tail truncation); point sampling leaves a ripple.
		var ref float64
		for k := range sp.idx {
			ref += sp.val[k]
		}
		ref *= g.DVWave()
		if s == 0 {
			min, max = ref, ref
		} else {
			if ref < min {
				min = ref
			}
			if ref > max {
				max = ref
			}
		}
	}
	if max == 0 {
		return 0
	}
	return (max - min) / math.Abs(max)
}
