package pseudo

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"ptdft/internal/grid"
	"ptdft/internal/lattice"
)

func TestLocalFormFactorLimits(t *testing.T) {
	p := SiliconAH()
	// Large q: everything decays to zero.
	if v := p.LocalFormFactor(1e4); math.Abs(v) > 1e-10 {
		t.Errorf("form factor at large q = %g, want ~0", v)
	}
	// Small but nonzero q: dominated by the attractive Coulomb term.
	if v := p.LocalFormFactor(0.01); v >= 0 {
		t.Errorf("form factor at small q = %g, want negative (Coulombic)", v)
	}
	// Relative continuity over a range (the Coulomb tail makes absolute
	// steps large near q = 0).
	prev := p.LocalFormFactor(0.1)
	for q2 := 0.101; q2 < 50; q2 += 0.001 {
		v := p.LocalFormFactor(q2)
		if math.Abs(v-prev) > 0.05*(math.Abs(prev)+1) {
			t.Fatalf("form factor jump at q2=%g: %g -> %g", q2, prev, v)
		}
		prev = v
	}
}

func TestNonlocalProjectorCount(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 4)
	nl := BuildNonlocal(g, map[int]*Potential{0: SiliconAH()})
	if nl.NumProjectors() != 8 {
		t.Errorf("projectors = %d, want 8 (one per Si atom)", nl.NumProjectors())
	}
	if nl.MemoryBytes() <= 0 {
		t.Error("projector memory accounting is zero")
	}
}

func TestNonlocalHermitian(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 4)
	nl := BuildNonlocal(g, map[int]*Potential{0: SiliconAH()})
	rng := rand.New(rand.NewSource(1))
	a := make([]complex128, g.NTot)
	b := make([]complex128, g.NTot)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	va := make([]complex128, g.NTot)
	vb := make([]complex128, g.NTot)
	nl.Apply(va, a)
	nl.Apply(vb, b)
	// <b|V a> == conj(<a|V b>) with the real-space inner product.
	var ba, ab complex128
	for i := range a {
		ba += cmplx.Conj(b[i]) * va[i]
		ab += cmplx.Conj(a[i]) * vb[i]
	}
	if cmplx.Abs(ba-cmplx.Conj(ab)) > 1e-8*(1+cmplx.Abs(ba)) {
		t.Errorf("nonlocal operator not Hermitian: %v vs conj %v", ba, cmplx.Conj(ab))
	}
}

func TestNonlocalEnergyMatchesApply(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 4)
	nl := BuildNonlocal(g, map[int]*Potential{0: SiliconAH()})
	rng := rand.New(rand.NewSource(2))
	a := make([]complex128, g.NTot)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	va := make([]complex128, g.NTot)
	nl.Apply(va, a)
	var quad complex128
	for i := range a {
		quad += cmplx.Conj(a[i]) * va[i]
	}
	quad *= complex(g.DVWave(), 0)
	e := nl.Energy(a)
	if math.Abs(real(quad)-e) > 1e-8*(1+math.Abs(e)) {
		t.Errorf("energy %g != quadratic form %g", e, real(quad))
	}
	if math.Abs(imag(quad)) > 1e-8 {
		t.Errorf("quadratic form has imaginary part %g", imag(quad))
	}
}

func TestNonlocalPositiveForPositiveD(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 4)
	nl := BuildNonlocal(g, map[int]*Potential{0: SiliconAH()})
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		a := make([]complex128, g.NTot)
		for i := range a {
			a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		if e := nl.Energy(a); e < 0 {
			t.Fatalf("trial %d: energy %g < 0 for D > 0", trial, e)
		}
	}
}

func TestBuildSparseNormalization(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 6)
	pos := g.WavePointPositions()
	sp := buildSparse(pos, g.Cell.L, [3]float64{1, 2, 3}, ProjectorSpec{D: 1, Rc: 1.1, Rmax: 3.5}, g.DVWave())
	var norm float64
	for _, v := range sp.val {
		norm += v * v
	}
	norm *= g.DVWave()
	if math.Abs(norm-1) > 1e-12 {
		t.Errorf("projector norm = %g, want 1", norm)
	}
	if len(sp.idx) == 0 || len(sp.idx) == g.NTot {
		t.Errorf("projector support %d not sparse in %d points", len(sp.idx), g.NTot)
	}
}

func TestBandLimitedProjectorsReduceEggBox(t *testing.T) {
	// The ref [37] motivation: Fourier-interpolated (band-limited)
	// projectors are translation invariant on the grid - the egg-box
	// ripple of point sampling disappears to machine precision. This
	// holds for full-cell support; truncating to a finite rmax
	// reintroduces a boundary ripple for either construction (the
	// trade-off ref [37]'s mask smoothing addresses), which is why the
	// comparison here uses untruncated projectors.
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 3)
	spec := ProjectorSpec{D: 0.35, Rc: 1.1, Rmax: 99}
	sampled := EggBoxError(g, spec, false, 8)
	limited := EggBoxError(g, spec, true, 8)
	if limited > sampled/100 {
		t.Errorf("band limiting did not remove egg-box: sampled %g vs limited %g", sampled, limited)
	}
	if sampled < 1e-6 {
		t.Errorf("point-sampled egg-box suspiciously small (%g): metric broken?", sampled)
	}
}

func TestBandLimitedNonlocalHermitianAndNormalized(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 3)
	nl := BuildNonlocalBandLimited(g, map[int]*Potential{0: SiliconAH()})
	if nl.NumProjectors() != 8 {
		t.Fatalf("projectors = %d, want 8", nl.NumProjectors())
	}
	rng := rand.New(rand.NewSource(7))
	a := make([]complex128, g.NTot)
	b := make([]complex128, g.NTot)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	va := make([]complex128, g.NTot)
	vb := make([]complex128, g.NTot)
	nl.Apply(va, a)
	nl.Apply(vb, b)
	var ba, ab complex128
	for i := range a {
		ba += cmplx.Conj(b[i]) * va[i]
		ab += cmplx.Conj(a[i]) * vb[i]
	}
	if cmplx.Abs(ba-cmplx.Conj(ab)) > 1e-8*(1+cmplx.Abs(ba)) {
		t.Error("band-limited nonlocal not Hermitian")
	}
	for trial := 0; trial < 3; trial++ {
		if e := nl.Energy(a); e < 0 {
			t.Fatalf("band-limited energy %g < 0 for positive D", e)
		}
	}
}

func TestBandLimitedMatchesSampledLoosely(t *testing.T) {
	// Both constructions represent the same physical projector; their
	// action on a smooth function should agree to grid-resolution level.
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 4)
	pots := map[int]*Potential{0: SiliconAH()}
	a := BuildNonlocal(g, pots)
	b := BuildNonlocalBandLimited(g, pots)
	// Smooth test function: the lowest plane wave.
	src := make([]complex128, g.NTot)
	for i := range src {
		src[i] = 1
	}
	ea := a.Energy(src)
	eb := b.Energy(src)
	if math.Abs(ea-eb) > 0.05*(math.Abs(ea)+1e-12) {
		t.Errorf("sampled vs band-limited energies differ too much: %g vs %g", ea, eb)
	}
}
