package pseudo

import (
	"math"

	"ptdft/internal/grid"
)

// NonlocalBloch holds phase-twisted Kleinman-Bylander projectors for a
// Bloch wavevector k: acting on the cell-periodic part u_k of
// psi = exp(ik.r) u_k(r), the projector carries the extra exp(-ik.r)
// phase, making its sparse values complex. Used by the k-point machinery
// the paper describes in section 3.1 ("for solid state systems with
// k-point sampling, the wavefunctions can naturally be grouped according
// to the k-points").
type NonlocalBloch struct {
	projs []sparseProjectorC
	ng    int
	dv    float64
}

type sparseProjectorC struct {
	d   float64
	idx []int32
	val []complex128
}

// BuildNonlocalBloch constructs the twisted projectors for wavevector k
// (reciprocal units, bohr^-1) on the wavefunction grid.
func BuildNonlocalBloch(g *grid.Grid, pots map[int]*Potential, k [3]float64) *NonlocalBloch {
	nl := &NonlocalBloch{ng: g.NTot, dv: g.DVWave()}
	pos := g.WavePointPositions()
	for _, atom := range g.Cell.Atoms {
		pot, ok := pots[atom.Species]
		if !ok {
			continue
		}
		for _, spec := range pot.Projectors {
			sp := buildSparse(pos, g.Cell.L, atom.Pos, spec, g.DVWave())
			c := sparseProjectorC{
				d:   spec.D,
				idx: sp.idx,
				val: make([]complex128, len(sp.val)),
			}
			for i, ix := range sp.idx {
				p := pos[ix]
				ph := k[0]*p[0] + k[1]*p[1] + k[2]*p[2]
				s, co := math.Sincos(-ph)
				c.val[i] = complex(sp.val[i]*co, sp.val[i]*s)
			}
			nl.projs = append(nl.projs, c)
		}
	}
	return nl
}

// Apply accumulates dst += sum_a D_a |beta_a><beta_a|u> for the
// cell-periodic part u in real space on the wavefunction grid.
func (nl *NonlocalBloch) Apply(dst, src []complex128) {
	if len(dst) != nl.ng || len(src) != nl.ng {
		panic("pseudo: NonlocalBloch.Apply buffer size mismatch")
	}
	for _, p := range nl.projs {
		var acc complex128
		for k, ix := range p.idx {
			// <beta|u> = sum conj(val) * u * dv
			v := p.val[k]
			acc += complex(real(v), -imag(v)) * src[ix]
		}
		acc *= complex(nl.dv*p.d, 0)
		if acc == 0 {
			continue
		}
		for k, ix := range p.idx {
			dst[ix] += p.val[k] * acc
		}
	}
}

// NumProjectors reports the number of projector channels.
func (nl *NonlocalBloch) NumProjectors() int { return len(nl.projs) }
