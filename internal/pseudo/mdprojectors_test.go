package pseudo

import (
	"math"
	"testing"

	"ptdft/internal/grid"
	"ptdft/internal/lattice"
	"ptdft/internal/wavefunc"
)

// TestMDProjectorNormTranslationInvariant: the force-ready projectors are
// band-limited to the inversion-symmetric G-sphere, so their grid norm is
// exactly 1 wherever the atom sits - including sub-grid offsets, where
// point-sampled projectors show the egg-box ripple.
func TestMDProjectorNormTranslationInvariant(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 3)
	h := cell.L[0] / float64(g.N[0])
	for _, frac := range []float64{0, 0.25, 0.37, 0.5} {
		c := cell.Clone()
		if err := c.DisplaceAtom(0, [3]float64{frac * h, 0, 0}); err != nil {
			t.Fatal(err)
		}
		gg := grid.MustNew(c, 3)
		nl := BuildNonlocalMD(gg, map[int]*Potential{0: SiliconAH()})
		for k, p := range nl.projs {
			var norm float64
			for _, v := range p.val {
				norm += v * v
			}
			norm *= gg.DVWave()
			if math.Abs(norm-1) > 1e-10 {
				t.Errorf("offset %.2f h: projector %d grid norm %.12f, want exactly 1", frac, k, norm)
			}
		}
	}
}

// TestMDProjectorGradientMatchesFD: the stored gradient fields are the
// exact center-derivatives of the projection <beta|psi>.
func TestMDProjectorGradientMatchesFD(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 3)
	pots := map[int]*Potential{0: SiliconAH()}
	psi := wavefunc.Random(g, 1, 5)
	box := make([]complex128, g.NTot)
	g.ToRealSerial(box, psi[:g.NG])

	project := func(c *lattice.Cell) (re, im float64) {
		nl := BuildNonlocalMD(grid.MustNew(c, 3), pots)
		p := nl.projs[0]
		for j, ix := range p.idx {
			v := box[ix]
			re += p.val[j] * real(v)
			im += p.val[j] * imag(v)
		}
		return re * nl.dv, im * nl.dv
	}
	nl := BuildNonlocalMD(g, pots)
	p := nl.projs[0]
	const h = 1e-4
	for d := 0; d < 3; d++ {
		var gre, gim float64
		for j, ix := range p.idx {
			v := box[ix]
			gre += p.grad[d][j] * real(v)
			gim += p.grad[d][j] * imag(v)
		}
		gre *= nl.dv
		gim *= nl.dv
		plus := cell.Clone()
		var dp [3]float64
		dp[d] = h
		plus.DisplaceAtom(0, dp)
		minus := cell.Clone()
		dp[d] = -h
		minus.DisplaceAtom(0, dp)
		pre, pim := project(plus)
		mre, mim := project(minus)
		if diff := math.Abs((pre-mre)/(2*h) - gre); diff > 1e-6 {
			t.Errorf("component %d: Re gradient %g vs FD %g", d, gre, (pre-mre)/(2*h))
		}
		if diff := math.Abs((pim-mim)/(2*h) - gim); diff > 1e-6 {
			t.Errorf("component %d: Im gradient %g vs FD %g", d, gim, (pim-mim)/(2*h))
		}
	}
}

// TestForcesRequiresGradients: the sparse builders carry no gradients and
// must be rejected loudly by the force assembly, never return zeros.
func TestForcesRequiresGradients(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 3)
	pots := map[int]*Potential{0: SiliconAH()}
	psi := wavefunc.Random(g, 1, 6)
	dst := make([][3]float64, cell.NumAtoms())
	if err := BuildNonlocal(g, pots).Forces(dst, g, psi, 1, 2); err == nil {
		t.Error("point-sampled projectors accepted by Forces")
	}
	if err := BuildNonlocalBandLimited(g, pots).Forces(dst, g, psi, 1, 2); err == nil {
		t.Error("band-limited truncated projectors accepted by Forces")
	}
	if !BuildNonlocalMD(g, pots).HasGradients() {
		t.Error("MD projectors report no gradients")
	}
}

// TestMDProjectorApplyHermitian: the dense-support projectors feed the
// same Apply path as the sparse ones; the operator must stay Hermitian
// and positive for a positive KB energy.
func TestMDProjectorApplyHermitian(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g := grid.MustNew(cell, 3)
	nl := BuildNonlocalMD(g, map[int]*Potential{0: SiliconAH()})
	psi := wavefunc.Random(g, 2, 7)
	boxA := make([]complex128, g.NTot)
	boxB := make([]complex128, g.NTot)
	g.ToRealSerial(boxA, psi[:g.NG])
	g.ToRealSerial(boxB, psi[g.NG:])
	outA := make([]complex128, g.NTot)
	outB := make([]complex128, g.NTot)
	nl.Apply(outA, boxA)
	nl.Apply(outB, boxB)
	dv := complex(g.DVWave(), 0)
	var ab, ba complex128
	for i := range outA {
		ab += complexConj(boxA[i]) * outB[i]
		ba += complexConj(boxB[i]) * outA[i]
	}
	ab *= dv
	ba *= dv
	if d := math.Hypot(real(ab)-real(ba), imag(ab)+imag(ba)); d > 1e-10 {
		t.Errorf("<a|V|b> = %v vs conj(<b|V|a>) = %v", ab, ba)
	}
	if e := nl.Energy(boxA); e < 0 {
		t.Errorf("positive-D channel produced negative energy %g", e)
	}
}

func complexConj(c complex128) complex128 { return complex(real(c), -imag(c)) }
