package pseudo

import (
	"fmt"
	"math"

	"ptdft/internal/grid"
	"ptdft/internal/parallel"
)

// BuildNonlocalMD constructs the nonlocal projectors for ion dynamics:
// band-limited to the wavefunction G-sphere (the same basis the orbitals
// live in), supported on the full grid (no Rmax truncation), and carrying
// the analytic center-gradient fields d beta / d R. Three properties make
// this the force-ready representation:
//
//   - the sphere is inversion symmetric, so the synthesized projector is
//     exactly real and its grid norm is exactly translation invariant
//     (Parseval over the sphere coefficients) - there is no egg-box ripple
//     for the normalization to leak into the forces;
//   - dropping the Rmax truncation removes the support-set discontinuities
//     a moving atom would otherwise sweep through, so the nonlocal energy
//     is a smooth function of the positions and the Hellmann-Feynman force
//     matches finite differences of the discrete energy to integrator
//     accuracy;
//   - the gradient fields are the exact derivatives of the sampled values
//     (the -iG factor in the sphere coefficients), not a finite-difference
//     resampling.
//
// The cost is a dense support (NTot points per projector instead of the
// Rmax ball) and 4x the projector storage - acceptable for MD runs, which
// rebuild these once per ion step; static runs keep the sparse builders.
func BuildNonlocalMD(g *grid.Grid, pots map[int]*Potential) *Nonlocal {
	nl := &Nonlocal{ng: g.NTot, dv: g.DVWave()}
	for ai, atom := range g.Cell.Atoms {
		pot, ok := pots[atom.Species]
		if !ok {
			continue
		}
		for _, spec := range pot.Projectors {
			sp := buildMD(g, atom.Pos, spec)
			sp.d = spec.D
			sp.atom = ai
			nl.projs = append(nl.projs, sp)
		}
	}
	return nl
}

// buildMD synthesizes one Gaussian channel and its three center-gradient
// fields from sphere coefficients. The Gaussian transform is
// exp(-q^2 rc^2/2) up to a constant absorbed by the normalization; the
// gradient coefficients carry the extra -i G_d.
func buildMD(g *grid.Grid, center [3]float64, spec ProjectorSpec) sparseProjector {
	ng := g.NG
	rc2 := spec.Rc * spec.Rc
	c := make([]complex128, ng)
	var norm float64
	for s := 0; s < ng; s++ {
		amp := math.Exp(-g.G2[s] * rc2 / 2)
		gv := g.GVec[s]
		ph := gv[0]*center[0] + gv[1]*center[1] + gv[2]*center[2]
		sn, cs := math.Sincos(-ph)
		c[s] = complex(amp*cs, amp*sn)
		norm += amp * amp
	}
	// Parseval: the grid norm of the synthesized field is sum_s |c_s|^2,
	// independent of the center. Scaling here makes <beta|beta> = 1 exactly.
	scale := 1 / math.Sqrt(norm)

	box := make([]complex128, g.NTot)
	sp := sparseProjector{
		idx: make([]int32, g.NTot),
		val: make([]float64, g.NTot),
	}
	for i := range sp.idx {
		sp.idx[i] = int32(i)
	}
	g.ToReal(box, c)
	for i, v := range box {
		sp.val[i] = real(v) * scale
	}
	cd := make([]complex128, ng)
	for d := 0; d < 3; d++ {
		for s := 0; s < ng; s++ {
			// d/dR_d of e^{-iG.R} brings down -i G_d.
			cd[s] = c[s] * complex(0, -g.GVec[s][d])
		}
		g.ToReal(box, cd)
		gv := make([]float64, g.NTot)
		for i, v := range box {
			gv[i] = real(v) * scale
		}
		sp.grad[d] = gv
	}
	return sp
}

// HasGradients reports whether this projector set carries the
// center-gradient fields force assembly needs (BuildNonlocalMD builds).
func (nl *Nonlocal) HasGradients() bool {
	for _, p := range nl.projs {
		if p.grad[0] == nil {
			return false
		}
	}
	return len(nl.projs) > 0
}

// Forces accumulates the Hellmann-Feynman nonlocal force into dst (one
// [3] per atom, Ha/Bohr): for each channel a with projection
// p_b = <beta_a|psi_b>,
//
//	F_a = -2 occ D_a sum_b Re[ conj(p_b) <d beta_a/d R | psi_b> ].
//
// psi is band-major sphere coefficients. The band loop is parallel but the
// reduction is performed in fixed (band, projector) order, so the result is
// bit-reproducible - the distributed solver allreduces per-rank partials
// and every rank must integrate the identical ion trajectory.
func (nl *Nonlocal) Forces(dst [][3]float64, g *grid.Grid, psi []complex128, nb int, occ float64) error {
	if !nl.HasGradients() {
		return fmt.Errorf("pseudo: Forces needs gradient-capable projectors (BuildNonlocalMD)")
	}
	if len(dst) < nl.maxAtom()+1 {
		return fmt.Errorf("pseudo: Forces dst holds %d atoms, projectors reference atom %d", len(dst), nl.maxAtom())
	}
	np := len(nl.projs)
	// part[b*np+k] is band b's contribution through projector k.
	part := make([][3]float64, nb*np)
	parallel.For(nb, func(b int) {
		box := make([]complex128, g.NTot)
		g.ToRealSerial(box, psi[b*g.NG:(b+1)*g.NG])
		for k := range nl.projs {
			p := &nl.projs[k]
			var pre, pim float64
			for j, ix := range p.idx {
				v := box[ix]
				pre += p.val[j] * real(v)
				pim += p.val[j] * imag(v)
			}
			pre *= nl.dv
			pim *= nl.dv
			var f [3]float64
			for d := 0; d < 3; d++ {
				gd := p.grad[d]
				var qre, qim float64
				for j, ix := range p.idx {
					v := box[ix]
					qre += gd[j] * real(v)
					qim += gd[j] * imag(v)
				}
				qre *= nl.dv
				qim *= nl.dv
				// Re[conj(p) q]
				f[d] = -2 * occ * p.d * (pre*qre + pim*qim)
			}
			part[b*np+k] = f
		}
	})
	for b := 0; b < nb; b++ {
		for k := range nl.projs {
			a := nl.projs[k].atom
			for d := 0; d < 3; d++ {
				dst[a][d] += part[b*np+k][d]
			}
		}
	}
	return nil
}

// maxAtom returns the largest atom index any projector references.
func (nl *Nonlocal) maxAtom() int {
	m := -1
	for _, p := range nl.projs {
		if p.atom > m {
			m = p.atom
		}
	}
	return m
}
