package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndRegion(t *testing.T) {
	p := New()
	p.Add("fock", 1.5)
	p.Add("fock", 0.5)
	p.Add("density", 0.25)
	r := p.Region("fock")
	if r.Seconds != 2.0 || r.Calls != 2 {
		t.Errorf("fock region %+v", r)
	}
	if p.Total() != 2.25 {
		t.Errorf("total %g, want 2.25", p.Total())
	}
	if p.Region("missing").Seconds != 0 {
		t.Error("missing region should be zero")
	}
}

func TestTimeAndTimer(t *testing.T) {
	p := New()
	p.Time("sleep", func() { time.Sleep(5 * time.Millisecond) })
	if p.Region("sleep").Seconds < 0.004 {
		t.Errorf("timed region too short: %g", p.Region("sleep").Seconds)
	}
	stop := p.Timer("lap")
	time.Sleep(2 * time.Millisecond)
	stop()
	if p.Region("lap").Calls != 1 {
		t.Error("timer did not record")
	}
}

func TestCounters(t *testing.T) {
	p := New()
	p.AddFLOP("fft", 1000)
	p.AddFLOP("fft", 500)
	p.AddBytes("fft", 4096)
	r := p.Region("fft")
	if r.FLOP != 1500 || r.Bytes != 4096 {
		t.Errorf("counters %+v", r)
	}
}

func TestSnapshotSorted(t *testing.T) {
	p := New()
	p.Add("small", 1)
	p.Add("big", 10)
	p.Add("mid", 5)
	s := p.Snapshot()
	if len(s) != 3 || s[0].Name != "big" || s[2].Name != "small" {
		t.Errorf("snapshot order wrong: %+v", s)
	}
}

func TestReportFormat(t *testing.T) {
	p := New()
	p.Add("phase", 2)
	var sb strings.Builder
	p.Report(&sb)
	out := sb.String()
	if !strings.Contains(out, "phase") || !strings.Contains(out, "100.0%") {
		t.Errorf("report missing content:\n%s", out)
	}
}

func TestConcurrentUse(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p.Add("hot", 0.001)
				p.AddFLOP("hot", 1)
			}
		}()
	}
	wg.Wait()
	r := p.Region("hot")
	if r.Calls != 1600 || r.FLOP != 1600 {
		t.Errorf("concurrent accounting lost updates: %+v", r)
	}
}
