package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestSpanBasics records a small nested timeline and checks the
// aggregates: per-phase sums, union-of-interval rank seconds, coverage.
func TestSpanBasics(t *testing.T) {
	r := NewRecorder()
	tr := r.Track(0, "rank 0")
	// step [0,100ms] containing density [10,30] and scf [40,90],
	// in deterministic recorded form.
	tr.Record(Span{Name: "step", Cat: "step", Start: 0, Dur: 100e6})
	tr.Record(Span{Name: "density", Cat: "solver", Start: 10e6, Dur: 20e6})
	tr.Record(Span{Name: "scf_iter", Cat: "solver", Start: 40e6, Dur: 50e6, N: 1})
	tr.Record(Span{Name: "MPI_Allreduce", Cat: "xfer", Start: 95e6, Dur: 5e6, Bytes: 64})

	ph := r.PhaseSeconds()
	if math.Abs(ph["step"]-0.1) > 1e-12 || math.Abs(ph["density"]-0.02) > 1e-12 {
		t.Fatalf("phase seconds wrong: %v", ph)
	}
	// All spans nest inside step: the union is exactly the step span.
	if rs := r.RankSeconds(); math.Abs(rs-0.1) > 1e-12 {
		t.Fatalf("rank seconds = %v, want 0.1", rs)
	}
	if cov := r.Coverage()[0]; math.Abs(cov-1) > 1e-12 {
		t.Fatalf("coverage = %v, want 1", cov)
	}

	p := r.Profile()
	if g := p.Region("step"); g.Calls != 1 || math.Abs(g.Seconds-0.1) > 1e-12 {
		t.Fatalf("profile fold wrong: %+v", g)
	}
	if g := p.Region("MPI_Allreduce"); g.Bytes != 64 {
		t.Fatalf("profile bytes not folded: %+v", g)
	}
}

// TestSpanUnionGaps checks that disjoint spans sum and overlapping spans
// merge in the interval union.
func TestSpanUnionGaps(t *testing.T) {
	r := NewRecorder()
	tr := r.Track(3, "rank 3")
	tr.Record(Span{Name: "a", Start: 0, Dur: 10})
	tr.Record(Span{Name: "b", Start: 5, Dur: 10}) // overlaps a -> [0,15]
	tr.Record(Span{Name: "c", Start: 100, Dur: 20})
	got := unionNs([]Span{{Start: 0, Dur: 10}, {Start: 5, Dur: 10}, {Start: 100, Dur: 20}})
	if got != 35 {
		t.Fatalf("unionNs = %d, want 35", got)
	}
	// Extent [0,120], busy 35.
	if cov := r.Coverage()[3]; math.Abs(cov-35.0/120.0) > 1e-12 {
		t.Fatalf("coverage = %v", cov)
	}
}

// TestSpanConcurrent exercises concurrent Begin/End/Event on one track
// and on the recorder from many goroutines; run under -race this pins
// the locking discipline the shared-Comm fetch pipelines rely on.
func TestSpanConcurrent(t *testing.T) {
	r := NewRecorder()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shared := r.Track(0, "shared")
			own := r.Track(1+w, "own")
			for i := 0; i < perWorker; i++ {
				ref := shared.Begin("op", "comm")
				own.Event("tick", "sched", int64(i), int64(w))
				shared.EndBytes(ref, int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Track(0, "shared").Len(); got != workers*perWorker {
		t.Fatalf("shared track has %d spans, want %d", got, workers*perWorker)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
}

// TestDisabledPathZeroAlloc pins the disabled path: a nil track (and nil
// recorder) must record nothing, never read the clock, and allocate
// nothing - the contract that lets the instrumentation stay unconditionally
// in solver and comm hot paths.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var r *Recorder
	tr := r.Track(0, "disabled")
	if tr != nil {
		t.Fatal("nil recorder must hand out nil tracks")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		ref := tr.Begin("step", "step")
		tr.Event("tick", "sched", 1, 2)
		tr.EndBytes(ref, 99)
		tr.End(ref)
		tr.EndN(ref, 3)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v per op, want 0", allocs)
	}
	if r.RankSeconds() != 0 || r.PhaseSeconds() != nil || r.Coverage() != nil {
		t.Fatal("nil recorder aggregates must be empty")
	}
}

// TestChromeTraceGolden pins the exporter's exact output for a
// deterministic recording: event shape, microsecond conversion, metadata
// thread names, args attribution.
func TestChromeTraceGolden(t *testing.T) {
	r := NewRecorder()
	t0 := r.Track(0, "rank 0")
	t0.Record(Span{Name: "step", Cat: "step", Start: 0, Dur: 2_000_000})
	t0.Record(Span{Name: "MPI_Bcast", Cat: "xfer", Start: 500_000, Dur: 250_000, Bytes: 4096})
	t1 := r.Track(1, "rank 1")
	t1.Record(Span{Name: "scf_iter", Cat: "solver", Start: 1_000, Dur: 1_500_000, N: 2})

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	const want = `{"traceEvents":[` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"rank 0"}},` +
		`{"name":"step","cat":"step","ph":"X","ts":0,"dur":2000,"pid":0,"tid":0},` +
		`{"name":"MPI_Bcast","cat":"xfer","ph":"X","ts":500,"dur":250,"pid":0,"tid":0,"args":{"bytes":4096}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":1,"args":{"name":"rank 1"}},` +
		`{"name":"scf_iter","cat":"solver","ph":"X","ts":1,"dur":1500,"pid":0,"tid":1,"args":{"n":2}}` +
		`],"displayTimeUnit":"ms"}`
	got := strings.TrimSpace(buf.String())
	if got != want {
		t.Fatalf("golden mismatch:\n got %s\nwant %s", got, want)
	}
}

// TestStructuredJSON checks the raw-nanosecond dump round-trips.
func TestStructuredJSON(t *testing.T) {
	r := NewRecorder()
	r.Track(2, "rank 2").Record(Span{Name: "exchange", Cat: "solver", Start: 7, Dur: 11, Bytes: 3, N: 4})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	var dump struct {
		Tracks []TrackJSON `json:"tracks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(dump.Tracks) != 1 || dump.Tracks[0].ID != 2 || len(dump.Tracks[0].Spans) != 1 {
		t.Fatalf("dump shape wrong: %+v", dump)
	}
	s := dump.Tracks[0].Spans[0]
	if s.Name != "exchange" || s.StartNs != 7 || s.DurNs != 11 || s.Bytes != 3 || s.N != 4 {
		t.Fatalf("span round-trip wrong: %+v", s)
	}
}
