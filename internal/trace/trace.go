// Package trace provides lightweight phase timers and operation counters
// for the real (laptop-scale) runs - the NVPROF stand-in used to produce
// wall-clock breakdowns in the style of Table 1 from actual executions.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Profile accumulates named regions. Safe for concurrent use.
type Profile struct {
	mu      sync.Mutex
	regions map[string]*Region
}

// Region is one named accounting bucket.
type Region struct {
	Name    string
	Seconds float64
	Calls   int64
	FLOP    int64
	Bytes   int64
}

// New creates an empty profile.
func New() *Profile {
	return &Profile{regions: map[string]*Region{}}
}

func (p *Profile) get(name string) *Region {
	r, ok := p.regions[name]
	if !ok {
		r = &Region{Name: name}
		p.regions[name] = r
	}
	return r
}

// Add records a completed region execution.
func (p *Profile) Add(name string, seconds float64) {
	p.mu.Lock()
	r := p.get(name)
	r.Seconds += seconds
	r.Calls++
	p.mu.Unlock()
}

// AddFLOP attributes floating point operations to a region.
func (p *Profile) AddFLOP(name string, flop int64) {
	p.mu.Lock()
	p.get(name).FLOP += flop
	p.mu.Unlock()
}

// AddBytes attributes moved bytes to a region.
func (p *Profile) AddBytes(name string, bytes int64) {
	p.mu.Lock()
	p.get(name).Bytes += bytes
	p.mu.Unlock()
}

// Time runs f and accounts its wall time under name.
func (p *Profile) Time(name string, f func()) {
	start := time.Now()
	f()
	p.Add(name, time.Since(start).Seconds())
}

// Timer starts a region and returns a stop function, for use with defer.
func (p *Profile) Timer(name string) func() {
	start := time.Now()
	return func() { p.Add(name, time.Since(start).Seconds()) }
}

// Region returns a snapshot of one region (zero value if absent).
func (p *Profile) Region(name string) Region {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.regions[name]; ok {
		return *r
	}
	return Region{Name: name}
}

// Total returns the summed seconds across all regions.
func (p *Profile) Total() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var t float64
	for _, r := range p.regions {
		t += r.Seconds
	}
	return t
}

// Snapshot returns all regions sorted by descending time.
func (p *Profile) Snapshot() []Region {
	p.mu.Lock()
	out := make([]Region, 0, len(p.regions))
	for _, r := range p.regions {
		out = append(out, *r)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seconds > out[j].Seconds })
	return out
}

// Report writes a Table-1-style breakdown.
func (p *Profile) Report(w io.Writer) {
	total := p.Total()
	fmt.Fprintf(w, "%-32s %10s %8s %9s\n", "region", "time (s)", "calls", "share")
	for _, r := range p.Snapshot() {
		share := 0.0
		if total > 0 {
			share = r.Seconds / total * 100
		}
		fmt.Fprintf(w, "%-32s %10.4f %8d %8.1f%%\n", r.Name, r.Seconds, r.Calls, share)
	}
	fmt.Fprintf(w, "%-32s %10.4f\n", "total", total)
}
