// Span flight recorder: per-rank (or per-worker) append-only timelines
// of hierarchical start/stop spans, the structured companion to the flat
// Profile accumulator. Each Track is one timeline (one goroutine-MPI rank,
// one worker); spans carry a name, a category, nanosecond start/duration
// relative to the recorder's epoch, and optional byte/count attribution.
// The disabled path is a nil *Track / nil *Recorder: every method no-ops
// on a nil receiver without reading the clock or allocating, so
// instrumented hot paths cost one pointer check when tracing is off.
package trace

import (
	"sort"
	"sync"
	"time"
)

// Span is one timed interval (or instantaneous event, Dur 0) on a track.
type Span struct {
	Name  string
	Cat   string
	Start int64 // ns since the recorder epoch
	Dur   int64 // ns; -1 while still open
	Bytes int64 // payload bytes attributed to the span (0 = none)
	N     int64 // generic count attribution: iteration, chunk index (0 = none)
}

// SpanRef identifies an open span returned by Begin, to be closed by
// End/EndBytes/EndN. The zero-track Begin returns a sentinel that every
// End variant ignores, so call sites need no enabled/disabled branches.
type SpanRef int32

const noSpan SpanRef = -1

// Track is one append-only timeline. A track is owned by one logical
// actor (a rank), but its methods are mutex-guarded because pipelined
// fetch goroutines share the owner's Comm handle and record concurrently.
// All methods are safe on a nil receiver; that is the disabled path.
type Track struct {
	rec   *Recorder
	id    int
	label string

	mu    sync.Mutex
	spans []Span
}

// Begin opens a span. The returned ref stays valid under concurrent
// Begin/End on the same track (spans are append-only; refs are indices).
func (t *Track) Begin(name, cat string) SpanRef {
	if t == nil {
		return noSpan
	}
	now := t.rec.now()
	t.mu.Lock()
	ref := SpanRef(len(t.spans))
	t.spans = append(t.spans, Span{Name: name, Cat: cat, Start: now, Dur: -1})
	t.mu.Unlock()
	return ref
}

// End closes a span opened by Begin.
func (t *Track) End(ref SpanRef) {
	if t == nil || ref < 0 {
		return
	}
	now := t.rec.now()
	t.mu.Lock()
	t.spans[ref].Dur = now - t.spans[ref].Start
	t.mu.Unlock()
}

// EndBytes closes a span and attributes moved payload bytes to it.
func (t *Track) EndBytes(ref SpanRef, bytes int64) {
	if t == nil || ref < 0 {
		return
	}
	now := t.rec.now()
	t.mu.Lock()
	t.spans[ref].Dur = now - t.spans[ref].Start
	t.spans[ref].Bytes = bytes
	t.mu.Unlock()
}

// EndN closes a span and attributes a count (iteration number, chunk
// index) to it.
func (t *Track) EndN(ref SpanRef, n int64) {
	if t == nil || ref < 0 {
		return
	}
	now := t.rec.now()
	t.mu.Lock()
	t.spans[ref].Dur = now - t.spans[ref].Start
	t.spans[ref].N = n
	t.mu.Unlock()
}

// Event records an instantaneous marker (Dur 0) with attribution.
func (t *Track) Event(name, cat string, bytes, n int64) {
	if t == nil {
		return
	}
	now := t.rec.now()
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Cat: cat, Start: now, Bytes: bytes, N: n})
	t.mu.Unlock()
}

// Record appends a fully formed span verbatim. It exists for callers
// that measured the interval themselves and for deterministic tests of
// the exporters; instrumentation uses Begin/End.
func (t *Track) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Len reports the number of recorded spans.
func (t *Track) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// snapshot copies the track's spans, closing still-open ones at "now" so
// a mid-run export is well formed.
func (t *Track) snapshot(now int64) []Span {
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	for i := range out {
		if out[i].Dur < 0 {
			out[i].Dur = now - out[i].Start
		}
	}
	return out
}

// Recorder owns a set of tracks sharing one time epoch. The zero value
// is not usable; construct with NewRecorder. A nil *Recorder is the
// disabled recorder: Track returns a nil *Track and every aggregate
// reports empty.
type Recorder struct {
	t0     time.Time
	mu     sync.Mutex
	tracks map[int]*Track
}

// NewRecorder returns an empty recorder whose epoch is now.
func NewRecorder() *Recorder {
	return &Recorder{t0: time.Now(), tracks: make(map[int]*Track)}
}

func (r *Recorder) now() int64 { return time.Since(r.t0).Nanoseconds() }

// Track returns the timeline with the given id, creating it (with the
// given label) on first use. Repeat calls with one id return the same
// track, so a relaunched world (fault recovery) keeps appending to its
// rank's timeline. Returns nil on a nil recorder.
func (r *Recorder) Track(id int, label string) *Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tracks[id]
	if t == nil {
		t = &Track{rec: r, id: id, label: label}
		r.tracks[id] = t
	}
	return t
}

// trackSnap is a consistent copy of one track for exporters.
type trackSnap struct {
	id    int
	label string
	spans []Span
}

// snapshot copies every track, ordered by id, with open spans closed at
// a single "now".
func (r *Recorder) snapshot() []trackSnap {
	if r == nil {
		return nil
	}
	now := r.now()
	r.mu.Lock()
	tracks := make([]*Track, 0, len(r.tracks))
	for _, t := range r.tracks {
		tracks = append(tracks, t)
	}
	r.mu.Unlock()
	sort.Slice(tracks, func(i, j int) bool { return tracks[i].id < tracks[j].id })
	out := make([]trackSnap, len(tracks))
	for i, t := range tracks {
		out[i] = trackSnap{id: t.id, label: t.label, spans: t.snapshot(now)}
	}
	return out
}

// PhaseSeconds sums span durations by name across all tracks. Nested
// spans each contribute their own duration (a "step" span includes the
// "density" spans inside it), matching how the flat Profile is read.
func (r *Recorder) PhaseSeconds() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	for _, ts := range r.snapshot() {
		for _, s := range ts.spans {
			out[s.Name] += float64(s.Dur) / 1e9
		}
	}
	return out
}

// RankSeconds returns the total busy time summed over tracks, counting
// overlapping spans on one track once (union of intervals), so nesting
// and concurrent fetch-pipeline spans do not double-bill.
func (r *Recorder) RankSeconds() float64 {
	if r == nil {
		return 0
	}
	var total int64
	for _, ts := range r.snapshot() {
		total += unionNs(ts.spans)
	}
	return float64(total) / 1e9
}

// Coverage reports, per track id, the union-of-spans busy time as a
// fraction of the track's first-to-last extent (1 for a track with a
// single span; 0 for an empty extent). This is the quantity the
// trace-validation checker enforces on emitted Chrome traces.
func (r *Recorder) Coverage() map[int]float64 {
	if r == nil {
		return nil
	}
	out := make(map[int]float64)
	for _, ts := range r.snapshot() {
		if len(ts.spans) == 0 {
			continue
		}
		lo, hi := ts.spans[0].Start, ts.spans[0].Start+ts.spans[0].Dur
		for _, s := range ts.spans {
			if s.Start < lo {
				lo = s.Start
			}
			if end := s.Start + s.Dur; end > hi {
				hi = end
			}
		}
		if hi <= lo {
			out[ts.id] = 0
			continue
		}
		out[ts.id] = float64(unionNs(ts.spans)) / float64(hi-lo)
	}
	return out
}

// unionNs measures the union of the span intervals in nanoseconds.
func unionNs(spans []Span) int64 {
	if len(spans) == 0 {
		return 0
	}
	iv := make([][2]int64, 0, len(spans))
	for _, s := range spans {
		if s.Dur > 0 {
			iv = append(iv, [2]int64{s.Start, s.Start + s.Dur})
		}
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	var total int64
	var curLo, curHi int64
	open := false
	for _, v := range iv {
		if !open {
			curLo, curHi, open = v[0], v[1], true
			continue
		}
		if v[0] <= curHi {
			if v[1] > curHi {
				curHi = v[1]
			}
			continue
		}
		total += curHi - curLo
		curLo, curHi = v[0], v[1]
	}
	if open {
		total += curHi - curLo
	}
	return total
}

// Profile folds the recorded spans into a flat Profile, one region per
// span name, for the Table-1 text report.
func (r *Recorder) Profile() *Profile {
	p := New()
	if r == nil {
		return p
	}
	for _, ts := range r.snapshot() {
		for _, s := range ts.spans {
			p.Add(s.Name, float64(s.Dur)/1e9)
			if s.Bytes != 0 {
				p.AddBytes(s.Name, s.Bytes)
			}
		}
	}
	return p
}
