// Exporters for the span flight recorder: Chrome trace-event JSON
// (loadable in chrome://tracing and Perfetto, one pid per recorder and
// one tid per track, "X" complete events in microseconds) and a
// structured JSON dump that keeps the raw nanosecond spans for scripted
// analysis. The Table-1 text exporter is Recorder.Profile + the existing
// Profile.Report.
package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event "traceEvents"
// array. Complete spans use ph "X" with ts/dur in microseconds; track
// labels ride thread_name metadata events (ph "M").
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container format ({"traceEvents": ...}),
// which both chrome://tracing and Perfetto accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the recorder's tracks as Chrome trace-event
// JSON. Tracks map to threads (tid = track id) of one process; events
// appear in recorded order per track, which the viewers re-sort anyway.
// A nil recorder writes an empty, still-valid trace.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	snaps := r.snapshot()
	events := make([]chromeEvent, 0, 16)
	for _, ts := range snaps {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Tid: ts.id,
			Args: map[string]any{"name": ts.label},
		})
		for _, s := range ts.spans {
			ev := chromeEvent{
				Name: s.Name, Cat: s.Cat, Ph: "X",
				Ts:  float64(s.Start) / 1e3,
				Dur: float64(s.Dur) / 1e3,
				Tid: ts.id,
			}
			if s.Bytes != 0 || s.N != 0 {
				ev.Args = make(map[string]any, 2)
				if s.Bytes != 0 {
					ev.Args["bytes"] = s.Bytes
				}
				if s.N != 0 {
					ev.Args["n"] = s.N
				}
			}
			events = append(events, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// TrackJSON is one track of the structured JSON dump.
type TrackJSON struct {
	ID    int        `json:"id"`
	Label string     `json:"label"`
	Spans []SpanJSON `json:"spans"`
}

// SpanJSON is one span of the structured JSON dump, in raw nanoseconds.
type SpanJSON struct {
	Name    string `json:"name"`
	Cat     string `json:"cat,omitempty"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Bytes   int64  `json:"bytes,omitempty"`
	N       int64  `json:"n,omitempty"`
}

// Tracks returns the recorder's content as the structured JSON model
// (ordered by track id, open spans closed at the snapshot instant).
func (r *Recorder) Tracks() []TrackJSON {
	snaps := r.snapshot()
	out := make([]TrackJSON, len(snaps))
	for i, ts := range snaps {
		spans := make([]SpanJSON, len(ts.spans))
		for j, s := range ts.spans {
			spans[j] = SpanJSON{
				Name: s.Name, Cat: s.Cat,
				StartNs: s.Start, DurNs: s.Dur,
				Bytes: s.Bytes, N: s.N,
			}
		}
		out[i] = TrackJSON{ID: ts.id, Label: ts.label, Spans: spans}
	}
	return out
}

// WriteJSON writes the structured dump: {"tracks": [...]}.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		Tracks []TrackJSON `json:"tracks"`
	}{Tracks: r.Tracks()})
}
