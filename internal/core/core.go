// Package core implements the paper's primary contribution: real-time
// TDDFT propagation in the parallel transport (PT) gauge with the implicit
// Crank-Nicolson integrator (PT-CN, Algorithm 1), together with the
// explicit 4th-order Runge-Kutta (RK4) baseline it is compared against in
// Fig. 6.
//
// The PT gauge transforms the orbitals so they obey
//
//	i dPsi/dt = H Psi - Psi (Psi^* H Psi),
//
// the slowest-possible dynamics among all gauge choices; the density matrix
// P = Psi Psi^* - and hence every physical observable - is unchanged.
// Coupled with Crank-Nicolson this permits ~50 attosecond steps where RK4
// needs ~0.5 as, cutting the number of Fock exchange applications by two
// orders of magnitude - the enabling algorithm for hybrid-functional
// rt-TDDFT at the thousand-atom scale.
package core

import (
	"errors"
	"fmt"
	"math"

	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/linalg"
	"ptdft/internal/mixing"
	"ptdft/internal/potential"
	"ptdft/internal/trace"
	"ptdft/internal/wavefunc"
)

// System bundles the pieces of a time-dependent simulation.
type System struct {
	G     *grid.Grid
	H     *hamiltonian.Hamiltonian
	NB    int         // occupied orbitals
	Occ   float64     // orbital occupation (2 for closed shell)
	Field laser.Field // external vector potential; nil for none

	// Tr is the serial driver's span track ("rank 0" of the flight
	// recorder); nil disables recording. The propagators open step and
	// SCF-iteration spans on it; exchange-level spans come from the
	// Hamiltonian's forwarded copy.
	Tr *trace.Track
}

// Prepare refreshes every time- and state-dependent piece of H for the
// given orbitals at time t, and returns the density. This is the
// "update the potential and the Hamiltonian" step of Alg. 1 line 5.
func (s *System) Prepare(psi []complex128, t float64) []float64 {
	if s.Field != nil {
		s.H.SetField(s.Field.A(t))
	} else {
		s.H.SetField([3]float64{})
	}
	rho := potential.Density(s.G, psi, s.NB, s.Occ)
	s.H.UpdatePotential(rho)
	s.H.SetFockOrbitals(psi, s.NB)
	return rho
}

// PrepareWithDensity is Prepare with a caller-supplied density (used inside
// the PT-CN SCF loop, where the density of the current iterate is already
// known).
func (s *System) PrepareWithDensity(psi []complex128, rho []float64, t float64) {
	if s.Field != nil {
		s.H.SetField(s.Field.A(t))
	} else {
		s.H.SetField([3]float64{})
	}
	s.H.UpdatePotential(rho)
	s.H.SetFockOrbitals(psi, s.NB)
}

// StepStats records the work done in one propagation step - the quantities
// the paper's Table 1 accounting is built from.
type StepStats struct {
	SCFIterations  int     // PT-CN only
	HApplications  int     // full H*Psi band-set applications
	DensityError   float64 // final SCF residual (PT-CN)
	OrthogonalityE float64 // orthonormality error before re-orthogonalization
}

// ptResidual computes the PT residual R = H psi - psi (psi^* H psi) and
// returns (R, HPsi). This is the right-hand side of the PT equation of
// motion; its smallness relative to H psi is what buys the large steps.
func ptResidual(g *grid.Grid, h *hamiltonian.Hamiltonian, psi []complex128, nb int) (res, hp []complex128) {
	ng := g.NG
	hp = make([]complex128, nb*ng)
	h.Apply(hp, psi, nb)
	s := make([]complex128, nb*nb)
	linalg.Overlap(s, psi, hp, nb, nb, ng)
	// res = hp - psi * S, band-major: res_j = hp_j - sum_i S[i][j] psi_i.
	res = make([]complex128, nb*ng)
	linalg.ApplyMatrix(res, psi, s, nb, nb, ng)
	for i := range res {
		res[i] = hp[i] - res[i]
	}
	return res, hp
}

// PTCNOptions control the implicit solver.
type PTCNOptions struct {
	MaxSCF     int     // cap on fixed-point iterations per step
	TolDensity float64 // density convergence criterion (paper: 1e-6)
	MixHistory int     // Anderson history (paper: 20)
	MixBeta    float64 // Anderson relaxation
}

// DefaultPTCN mirrors the paper's settings (section 4).
func DefaultPTCN() PTCNOptions {
	return PTCNOptions{MaxSCF: 40, TolDensity: 1e-6, MixHistory: 20, MixBeta: 0.4}
}

// PTCN is the parallel transport Crank-Nicolson propagator (Algorithm 1).
type PTCN struct {
	Sys  *System
	Opt  PTCNOptions
	Time float64 // current simulation time (au)

	// MTS is the multiple-time-stepping refresh period M (Mandal et al.,
	// arXiv:2110.07670, adapted to PT-CN): when M >= 1 and the Hamiltonian
	// is hybrid, the Fock/ACE exchange operator is rebuilt from Psi_n only
	// on outer steps (StepIndex mod M == 0) and held frozen - through the
	// inner SCF and through the M-1 intermediate steps - while the
	// semi-local physics advances every step. 0 (the default) refreshes
	// the exchange at every H rebuild, the pre-MTS behavior.
	MTS int
	// StepIndex counts completed steps and anchors the MTS cycle; set it
	// (or call ResumeMTS) when resuming from a checkpoint so the segment
	// lands on the correct outer/inner phase.
	StepIndex int
}

// NewPTCN builds a PT-CN propagator starting at t = 0.
func NewPTCN(sys *System, opt PTCNOptions) *PTCN {
	return &PTCN{Sys: sys, Opt: opt}
}

// MTSPhase reports the position within the current MTS cycle, in [0, M);
// 0 when MTS is off. A checkpoint taken at phase 0 needs no frozen
// reference - the next step is an outer step and rebuilds from Psi_n.
func (p *PTCN) MTSPhase() int {
	if p.MTS > 0 {
		return p.StepIndex % p.MTS
	}
	return 0
}

// MTSRef exposes the frozen exchange reference of the current MTS cycle
// (nil when MTS is off, no hold is active, or the functional is not
// hybrid), for checkpoint persistence.
func (p *PTCN) MTSRef() []complex128 {
	if p.MTS <= 0 {
		return nil
	}
	return p.Sys.H.FrozenFockRef()
}

// ResumeMTS restores the MTS cadence after a checkpoint load: phase is the
// loaded cumulative step modulo M, phiRef the frozen exchange reference
// saved at the last outer step (required mid-cycle, ignored at phase 0
// where the next step rebuilds anyway).
func (p *PTCN) ResumeMTS(phase int, phiRef []complex128) error {
	if p.MTS <= 0 {
		if phase != 0 {
			return fmt.Errorf("core: ResumeMTS(phase=%d) without MTS", phase)
		}
		return nil
	}
	if phase < 0 || phase >= p.MTS {
		return fmt.Errorf("core: ResumeMTS phase %d outside cycle [0, %d)", phase, p.MTS)
	}
	p.StepIndex = phase
	if phase == 0 || !p.Sys.H.Hybrid() {
		return nil
	}
	if phiRef == nil {
		return fmt.Errorf("core: resuming mid-cycle (phase %d of %d) needs the frozen exchange reference", phase, p.MTS)
	}
	p.Sys.H.SetFockOrbitalsFrozen(phiRef, p.Sys.NB)
	return nil
}

// IonGeometryChanged is the coupled-step hook of the Ehrenfest ion
// integrator: after an ion drift it rebuilds the Hamiltonian's static
// geometry-dependent operators (nonlocal projectors, local
// pseudopotential). The exchange operator carries no explicit position
// dependence - a frozen MTS reference stays valid across the rebuild and
// the next outer step re-anchors it on the propagated orbitals - so the
// MTS cadence composes with ion stepping without special cases.
func (p *PTCN) IonGeometryChanged() {
	p.Sys.H.RebuildGeometry()
}

// Step advances psi by dt using Algorithm 1 and returns the new orbitals.
func (p *PTCN) Step(psi []complex128, dt float64) ([]complex128, StepStats, error) {
	s := p.Sys
	g, h, nb := s.G, s.H, s.NB
	ng := g.NG
	var stats StepStats
	stepRef := s.Tr.Begin("step", "step")
	defer s.Tr.EndN(stepRef, int64(p.StepIndex))

	// Exchange refresh cadence. MTS outer steps freeze the operator at
	// Psi_n; the hold makes every SetFockOrbitals below (and in the
	// observable evaluations between steps) a no-op until the next outer
	// step. Without MTS this propagator owns the per-refresh schedule, so
	// a hold left behind by a previous MTS propagator on the same
	// Hamiltonian is released rather than silently freezing this run.
	if h.Hybrid() {
		switch {
		case p.MTS > 0 && p.StepIndex%p.MTS == 0:
			h.SetFockOrbitalsFrozen(psi, nb)
		case p.MTS <= 0 && h.FockHeld():
			h.ReleaseFockHold()
		}
	}

	// Line 1: residual Rn at time tn with the current state's H.
	s.Prepare(psi, p.Time)
	rn, _ := ptResidual(g, h, psi, nb)
	stats.HApplications++

	// Line 2: half-step RHS Psi_{n+1/2} = Psi_n - i dt/2 Rn.
	half := make([]complex128, nb*ng)
	ihalf := complex(0, dt/2)
	for i := range half {
		half[i] = psi[i] - ihalf*rn[i]
	}
	psif := wavefunc.Clone(half)

	// Line 3: density of the trial state.
	rhof := potential.Density(g, psif, nb, s.Occ)

	mixer := mixing.NewBandMixer(nb, ng, p.Opt.MixHistory, p.Opt.MixBeta)
	tNext := p.Time + dt
	converged := false
	for j := 0; j < p.Opt.MaxSCF; j++ {
		iterRef := s.Tr.Begin("scf_iter", "solver")
		// Line 5: refresh H_f from the current iterate.
		s.PrepareWithDensity(psif, rhof, tNext)

		// Line 6: fixed-point residual
		// R_f = Psi_f + i dt/2 (H Psi_f - Psi_f (Psi_f^* H Psi_f)) - Psi_{n+1/2}.
		rf, _ := ptResidual(g, h, psif, nb)
		stats.HApplications++
		fp := make([]complex128, nb*ng)
		for i := range fp {
			// Mixer convention: next = x + beta*f, so pass f = -R_f.
			fp[i] = half[i] - psif[i] - ihalf*rf[i]
		}

		// Line 7: Anderson mixing per band.
		psif = mixer.Mix(psif, fp)

		// Line 8-9: density change convergence monitor.
		rhoNew := potential.Density(g, psif, nb, s.Occ)
		stats.DensityError = potential.DensityDiff(g, rhoNew, rhof, s.Occ*float64(nb))
		rhof = rhoNew
		stats.SCFIterations++
		s.Tr.EndN(iterRef, int64(j))
		if stats.DensityError < p.Opt.TolDensity {
			converged = true
			break
		}
	}
	if !converged {
		return nil, stats, fmt.Errorf("core: PT-CN SCF did not converge in %d iterations (density error %.3e)",
			p.Opt.MaxSCF, stats.DensityError)
	}

	// Line 11: re-orthogonalize.
	orthRef := s.Tr.Begin("orthonormalize", "solver")
	stats.OrthogonalityE = wavefunc.OrthonormalityError(psif, nb, ng)
	if err := wavefunc.Orthonormalize(psif, nb, ng); err != nil {
		s.Tr.End(orthRef)
		return nil, stats, fmt.Errorf("core: orthogonalization failed: %w", err)
	}
	s.Tr.End(orthRef)
	p.Time = tNext
	p.StepIndex++
	return psif, stats, nil
}

// RK4 is the explicit 4th-order Runge-Kutta propagator for the original
// Schroedinger-gauge equation i dPsi/dt = H(t, P) Psi - the baseline of
// Fig. 6. Stability limits dt to ~0.5 as where PT-CN takes 50 as.
type RK4 struct {
	Sys  *System
	Time float64
	// ReorthoEvery re-orthonormalizes every k steps to curb drift
	// (0 disables; explicit RK4 is not exactly unitary).
	ReorthoEvery int
	steps        int
}

// NewRK4 builds an RK4 propagator starting at t = 0.
func NewRK4(sys *System) *RK4 { return &RK4{Sys: sys, ReorthoEvery: 20} }

// derivative evaluates F(t, psi) = -i H(t, P[psi]) psi, rebuilding the
// density, potentials and Fock operator from psi (the nonlinear TDDFT
// right-hand side).
func (r *RK4) derivative(psi []complex128, t float64) []complex128 {
	s := r.Sys
	s.Prepare(psi, t)
	hp := make([]complex128, s.NB*s.G.NG)
	s.H.Apply(hp, psi, s.NB)
	for i := range hp {
		hp[i] *= complex(0, -1)
	}
	return hp
}

// Step advances psi by dt with four H rebuilds/applications.
func (r *RK4) Step(psi []complex128, dt float64) ([]complex128, StepStats, error) {
	// RK4 rebuilds the exchange reference at every derivative; a frozen
	// hold left on the Hamiltonian by an MTS propagator would silently
	// stale it, so take the refresh schedule back.
	if r.Sys.H.FockHeld() {
		r.Sys.H.ReleaseFockHold()
	}
	stepRef := r.Sys.Tr.Begin("step", "step")
	defer r.Sys.Tr.EndN(stepRef, int64(r.steps))
	n := len(psi)
	var stats StepStats
	add := func(base []complex128, k []complex128, c float64) []complex128 {
		out := make([]complex128, n)
		cc := complex(c, 0)
		for i := range out {
			out[i] = base[i] + cc*k[i]
		}
		return out
	}
	k1 := r.derivative(psi, r.Time)
	k2 := r.derivative(add(psi, k1, dt/2), r.Time+dt/2)
	k3 := r.derivative(add(psi, k2, dt/2), r.Time+dt/2)
	k4 := r.derivative(add(psi, k3, dt), r.Time+dt)
	stats.HApplications = 4
	out := make([]complex128, n)
	c := complex(dt/6, 0)
	for i := range out {
		out[i] = psi[i] + c*(k1[i]+2*k2[i]+2*k3[i]+k4[i])
	}
	r.Time += dt
	r.steps++
	stats.OrthogonalityE = wavefunc.OrthonormalityError(out, r.Sys.NB, r.Sys.G.NG)
	if r.ReorthoEvery > 0 && r.steps%r.ReorthoEvery == 0 {
		if err := wavefunc.Orthonormalize(out, r.Sys.NB, r.Sys.G.NG); err != nil {
			return nil, stats, fmt.Errorf("core: RK4 orthogonalization failed: %w", err)
		}
	}
	if !finite(out) {
		return nil, stats, errors.New("core: RK4 blew up (NaN/Inf); time step too large for stability")
	}
	return out, stats, nil
}

func finite(x []complex128) bool {
	for _, v := range x {
		if math.IsNaN(real(v)) || math.IsNaN(imag(v)) || math.IsInf(real(v), 0) || math.IsInf(imag(v), 0) {
			return false
		}
	}
	return true
}
