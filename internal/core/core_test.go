package core

import (
	"math"
	"testing"

	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/laser"
	"ptdft/internal/lattice"
	"ptdft/internal/potential"
	"ptdft/internal/pseudo"
	"ptdft/internal/scf"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

// groundStateSystem builds a converged Si8 ground state to propagate.
func groundStateSystem(t testing.TB, ecut float64, hybrid bool, field laser.Field) (*System, []complex128) {
	t.Helper()
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), ecut)
	h := hamiltonian.New(g, map[int]*pseudo.Potential{0: pseudo.SiliconAH()},
		hamiltonian.Config{Hybrid: hybrid, Params: xc.HSE06()})
	nb := g.Cell.NumBands()
	opt := scf.Defaults()
	opt.TolDensity = 1e-8
	if hybrid {
		opt.MaxSCF = 40
		opt.HybridOuter = 3
	}
	res, err := scf.GroundState(g, h, nb, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("ground state not converged (density error %g)", res.DensityError)
	}
	return &System{G: g, H: h, NB: nb, Occ: 2, Field: field}, res.Psi
}

func energyOf(s *System, psi []complex128, tm float64) float64 {
	s.Prepare(psi, tm)
	return s.H.TotalEnergy(psi, s.NB, s.Occ).Total()
}

func TestPTCNStepPreservesOrthonormalityAndNorm(t *testing.T) {
	sys, psi := groundStateSystem(t, 3, false, nil)
	p := NewPTCN(sys, DefaultPTCN())
	out, stats, err := p.Step(psi, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SCFIterations < 1 {
		t.Error("no SCF iterations recorded")
	}
	if e := wavefunc.OrthonormalityError(out, sys.NB, sys.G.NG); e > 1e-9 {
		t.Errorf("orthonormality error after step: %g", e)
	}
}

func TestPTCNStationaryGroundState(t *testing.T) {
	// Propagating the ground state with no field must keep the density
	// (and energy) fixed: the PT orbitals only acquire phases absorbed by
	// the PT gauge, so even the orbitals stay close.
	sys, psi := groundStateSystem(t, 3, false, nil)
	rho0 := potential.Density(sys.G, psi, sys.NB, sys.Occ)
	e0 := energyOf(sys, psi, 0)
	p := NewPTCN(sys, DefaultPTCN())
	cur := psi
	var err error
	for i := 0; i < 3; i++ {
		cur, _, err = p.Step(cur, 2.0) // ~48 as steps
		if err != nil {
			t.Fatal(err)
		}
	}
	rho1 := potential.Density(sys.G, cur, sys.NB, sys.Occ)
	d := potential.DensityDiff(sys.G, rho0, rho1, 2*float64(sys.NB))
	if d > 1e-5 {
		t.Errorf("ground state density drifted by %g over 3 PT-CN steps", d)
	}
	e1 := energyOf(sys, cur, p.Time)
	if math.Abs(e1-e0) > 1e-5*math.Abs(e0) {
		t.Errorf("energy drifted: %g -> %g", e0, e1)
	}
}

func TestPTCNEnergyConservationAfterKick(t *testing.T) {
	// After an instantaneous vector-potential kick the Hamiltonian is time
	// independent again, so the total energy must be conserved along the
	// nonlinear propagation.
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	sys, psi := groundStateSystem(t, 3, false, kick)
	p := NewPTCN(sys, DefaultPTCN())
	cur, _, err := p.Step(psi, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	eStart := energyOf(sys, cur, p.Time)
	for i := 0; i < 4; i++ {
		cur, _, err = p.Step(cur, 1.0)
		if err != nil {
			t.Fatal(err)
		}
	}
	eEnd := energyOf(sys, cur, p.Time)
	if math.Abs(eEnd-eStart) > 2e-5*(1+math.Abs(eStart)) {
		t.Errorf("energy not conserved after kick: %.8f -> %.8f (drift %g)",
			eStart, eEnd, eEnd-eStart)
	}
}

func TestPTCNMatchesRK4Observables(t *testing.T) {
	// The PT gauge is exact, so PT-CN differs from finely-stepped RK4 only
	// by the O(dt^2) Crank-Nicolson discretization error. Verify (a) the
	// difference is small at dt = 1 au (~24 as), and (b) it shrinks at
	// second order when dt is halved.
	kick := &laser.Kick{K: 0.05, Pol: [3]float64{0, 0, 1}}
	sysA, psiA := groundStateSystem(t, 3, false, kick)
	sysB := &System{G: sysA.G, H: sysA.H, NB: sysA.NB, Occ: 2, Field: kick}
	psiB := wavefunc.Clone(psiA)

	const tEnd = 2.0
	var err error

	// Reference: RK4 with a fine step.
	rk := NewRK4(sysB)
	for rk.Time < tEnd-1e-9 {
		psiB, _, err = rk.Step(psiB, 0.025)
		if err != nil {
			t.Fatal(err)
		}
	}
	rhoRK := potential.Density(sysB.G, psiB, sysB.NB, 2)

	runPT := func(dt float64) ([]float64, []complex128) {
		pt := NewPTCN(sysA, DefaultPTCN())
		cur := wavefunc.Clone(psiA)
		for pt.Time < tEnd-1e-9 {
			cur, _, err = pt.Step(cur, dt)
			if err != nil {
				t.Fatal(err)
			}
		}
		return potential.Density(sysA.G, cur, sysA.NB, 2), cur
	}
	rhoCoarse, psiCoarse := runPT(1.0)
	rhoFine, _ := runPT(0.5)

	dCoarse := potential.DensityDiff(sysA.G, rhoCoarse, rhoRK, 2*float64(sysA.NB))
	dFine := potential.DensityDiff(sysA.G, rhoFine, rhoRK, 2*float64(sysA.NB))
	if dCoarse > 5e-3 {
		t.Errorf("PT-CN (dt=1.0) vs RK4 density differs by %g", dCoarse)
	}
	if dFine > dCoarse/2.5 {
		t.Errorf("halving dt did not shrink error at ~2nd order: %g -> %g", dCoarse, dFine)
	}
	// Subspace fidelity is gauge invariant and must be ~1.
	f := wavefunc.SubspaceFidelity(psiCoarse, psiB, sysA.NB, sysA.G.NG)
	if math.Abs(f-1) > 2e-3 {
		t.Errorf("subspace fidelity %g, want ~1", f)
	}
}

func TestPTCNStepCountAdvantageOverRK4(t *testing.T) {
	// The enabling claim: PT-CN takes steps ~40-100x larger than RK4 with
	// far fewer H applications per unit time. Count them over t=2 au.
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	sys, psi := groundStateSystem(t, 3, false, kick)
	pt := NewPTCN(sys, DefaultPTCN())
	var hPT int
	cur := psi
	for pt.Time < 2.0-1e-9 {
		var stats StepStats
		var err error
		cur, stats, err = pt.Step(cur, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		hPT += stats.HApplications
	}
	// RK4 at the same accuracy would need dt <~ 0.025 au here:
	// 80 steps x 4 applications = 320 vs PT-CN's ~10-30.
	rk4Apps := int(2.0/0.025) * 4
	if hPT*3 >= rk4Apps {
		t.Errorf("PT-CN used %d H applications; expected at least 3x fewer than RK4's %d", hPT, rk4Apps)
	}
}

func TestRK4StationaryGroundState(t *testing.T) {
	sys, psi := groundStateSystem(t, 3, false, nil)
	rho0 := potential.Density(sys.G, psi, sys.NB, 2)
	rk := NewRK4(sys)
	cur := psi
	var err error
	for i := 0; i < 20; i++ {
		cur, _, err = rk.Step(cur, 0.05)
		if err != nil {
			t.Fatal(err)
		}
	}
	rho1 := potential.Density(sys.G, cur, sys.NB, 2)
	if d := potential.DensityDiff(sys.G, rho0, rho1, 2*float64(sys.NB)); d > 1e-6 {
		t.Errorf("RK4 ground state density drifted by %g", d)
	}
}

func TestPTCNHybridRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("hybrid propagation is slow")
	}
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	sys, psi := groundStateSystem(t, 3, true, kick)
	p := NewPTCN(sys, DefaultPTCN())
	cur, stats, err := p.Step(psi, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SCFIterations < 1 {
		t.Error("no SCF iterations")
	}
	e1 := energyOf(sys, cur, p.Time)
	cur, _, err = p.Step(cur, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	e2 := energyOf(sys, cur, p.Time)
	if math.Abs(e2-e1) > 5e-5*(1+math.Abs(e1)) {
		t.Errorf("hybrid energy drift %g", e2-e1)
	}
}

// TestPTCNMTSAccuracy: serial multiple time stepping - the exchange frozen
// at the last outer step - must stay physically close to the every-step
// hybrid propagation, with the frozen-exchange error bounded at the test
// discretization (the same dt x kick scaling as the held-ACE cadence).
func TestPTCNMTSAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("hybrid propagation is slow")
	}
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	sys, psi0 := groundStateSystem(t, 3, true, kick)
	const steps, dt = 2, 1.0

	run := func(mts int) []complex128 {
		p := NewPTCN(sys, DefaultPTCN())
		p.MTS = mts
		cur := wavefunc.Clone(psi0)
		var err error
		for i := 0; i < steps; i++ {
			if cur, _, err = p.Step(cur, dt); err != nil {
				t.Fatalf("mts=%d step %d: %v", mts, i, err)
			}
		}
		return cur
	}
	ref := run(0)
	mts := run(2)
	rhoRef := potential.Density(sys.G, ref, sys.NB, 2)
	rhoMTS := potential.Density(sys.G, mts, sys.NB, 2)
	if d := potential.DensityDiff(sys.G, rhoRef, rhoMTS, 2*float64(sys.NB)); d > 4e-3 {
		t.Errorf("M=2 density deviates from every-step hybrid by %g", d)
	}
	if f := wavefunc.SubspaceFidelity(ref, mts, sys.NB, sys.G.NG); math.Abs(f-1) > 4e-3 {
		t.Errorf("M=2 subspace fidelity %g", f)
	}
}

// TestPTCNMTSResumeMidCycle: a serial mid-cycle resume - fresh Hamiltonian,
// frozen reference reinstalled through ResumeMTS - reproduces the
// uninterrupted M = 2 trajectory to 1e-10.
func TestPTCNMTSResumeMidCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("hybrid propagation is slow")
	}
	kick := &laser.Kick{K: 0.02, Pol: [3]float64{0, 0, 1}}
	sys, psi0 := groundStateSystem(t, 3, true, kick)
	const dt = 1.0

	// Uninterrupted: one full M = 2 cycle.
	p := NewPTCN(sys, DefaultPTCN())
	p.MTS = 2
	full := wavefunc.Clone(psi0)
	var err error
	for i := 0; i < 2; i++ {
		if full, _, err = p.Step(full, dt); err != nil {
			t.Fatal(err)
		}
	}

	// Interrupted after step 1 (phase 1, mid-cycle; the outer step of the
	// fresh cycle re-freezes over the previous run's hold).
	p1 := NewPTCN(sys, DefaultPTCN())
	p1.MTS = 2
	half := wavefunc.Clone(psi0)
	if half, _, err = p1.Step(half, dt); err != nil {
		t.Fatal(err)
	}
	if p1.MTSPhase() != 1 {
		t.Fatalf("phase after 1 of 2 steps = %d, want 1", p1.MTSPhase())
	}
	phiRef := wavefunc.Clone(p1.MTSRef())

	// Resume on a fresh Hamiltonian, as a restarted job would.
	h2 := hamiltonian.New(sys.G, map[int]*pseudo.Potential{0: pseudo.SiliconAH()},
		hamiltonian.Config{Hybrid: true, Params: xc.HSE06()})
	sys2 := &System{G: sys.G, H: h2, NB: sys.NB, Occ: 2, Field: kick}
	p2 := NewPTCN(sys2, DefaultPTCN())
	p2.MTS = 2
	p2.Time = p1.Time
	if err := p2.ResumeMTS(1, phiRef); err != nil {
		t.Fatal(err)
	}
	resumed := wavefunc.Clone(half)
	if resumed, _, err = p2.Step(resumed, dt); err != nil {
		t.Fatal(err)
	}
	if d := wavefunc.MaxDiff(full, resumed); d > 1e-10 {
		t.Errorf("resumed mid-cycle trajectory deviates by %g (tol 1e-10)", d)
	}

	// Mid-cycle resume without the frozen reference must fail loudly.
	p3 := NewPTCN(sys2, DefaultPTCN())
	p3.MTS = 2
	if err := p3.ResumeMTS(1, nil); err == nil {
		t.Error("mid-cycle resume without frozen reference accepted")
	}
}

func TestPTCNFailsGracefullyWhenNotConverging(t *testing.T) {
	sys, psi := groundStateSystem(t, 3, false, nil)
	opt := DefaultPTCN()
	opt.MaxSCF = 1
	opt.TolDensity = 1e-300 // unreachable
	p := NewPTCN(sys, opt)
	if _, _, err := p.Step(psi, 1.0); err == nil {
		t.Error("expected convergence failure error")
	}
}
