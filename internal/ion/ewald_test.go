package ion

import (
	"math"
	"testing"

	"ptdft/internal/lattice"
)

// TestEwaldAlphaInvariance: the Ewald energy and forces are a resummation
// identity - the split between real and reciprocal space must not matter.
func TestEwaldAlphaInvariance(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	if err := cell.DisplaceAtom(0, [3]float64{0.3, -0.2, 0.1}); err != nil {
		t.Fatal(err)
	}
	a := EwaldWithAlpha(cell, 0.45)
	b := EwaldWithAlpha(cell, 0.75)
	if d := math.Abs(a.Energy - b.Energy); d > 1e-9 {
		t.Errorf("energy depends on alpha: %.12f vs %.12f (diff %g)", a.Energy, b.Energy, d)
	}
	for i := range a.Forces {
		for d := 0; d < 3; d++ {
			if diff := math.Abs(a.Forces[i][d] - b.Forces[i][d]); diff > 1e-9 {
				t.Errorf("force[%d][%d] depends on alpha: %g vs %g", i, d, a.Forces[i][d], b.Forces[i][d])
			}
		}
	}
}

// TestEwaldTranslationInvariance: rigidly shifting all ions changes
// nothing - energy and forces are functions of relative geometry only.
func TestEwaldTranslationInvariance(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	if err := cell.DisplaceAtom(2, [3]float64{0.2, 0.1, -0.3}); err != nil {
		t.Fatal(err)
	}
	ref := Ewald(cell)
	shifted := cell.Clone()
	for i := range shifted.Atoms {
		if err := shifted.DisplaceAtom(i, [3]float64{1.7, -2.3, 0.9}); err != nil {
			t.Fatal(err)
		}
	}
	got := Ewald(shifted)
	if d := math.Abs(ref.Energy - got.Energy); d > 1e-9 {
		t.Errorf("energy not translation invariant: diff %g", d)
	}
	for i := range ref.Forces {
		for d := 0; d < 3; d++ {
			if diff := math.Abs(ref.Forces[i][d] - got.Forces[i][d]); diff > 1e-9 {
				t.Errorf("force[%d][%d] not translation invariant: %g vs %g", i, d, ref.Forces[i][d], got.Forces[i][d])
			}
		}
	}
}

// TestEwaldPerfectDiamondForcesZero: every atom of the undistorted diamond
// lattice sits on an inversion-symmetric site - all forces vanish.
func TestEwaldPerfectDiamondForcesZero(t *testing.T) {
	res := Ewald(lattice.MustSiliconSupercell(1, 1, 1))
	for i, f := range res.Forces {
		for d := 0; d < 3; d++ {
			if math.Abs(f[d]) > 1e-9 {
				t.Errorf("perfect-crystal force[%d][%d] = %g, want 0", i, d, f[d])
			}
		}
	}
}

// TestEwaldTotalForceZero: the ion-ion interaction is translation
// invariant, so the forces of a distorted geometry must sum to zero.
func TestEwaldTotalForceZero(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	cell.DisplaceAtom(0, [3]float64{0.4, 0.0, -0.1})
	cell.DisplaceAtom(5, [3]float64{-0.2, 0.3, 0.0})
	res := Ewald(cell)
	var tot [3]float64
	for _, f := range res.Forces {
		for d := 0; d < 3; d++ {
			tot[d] += f[d]
		}
	}
	for d := 0; d < 3; d++ {
		if math.Abs(tot[d]) > 1e-9 {
			t.Errorf("total force component %d = %g, want 0", d, tot[d])
		}
	}
}

// TestEwaldForceMatchesFD: the analytic force is the negative gradient of
// the Ewald energy, pinned by central finite differences.
func TestEwaldForceMatchesFD(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	cell.DisplaceAtom(0, [3]float64{0.25, -0.15, 0.05})
	res := Ewald(cell)
	const h = 1e-4
	for _, atom := range []int{0, 4} {
		for d := 0; d < 3; d++ {
			plus := cell.Clone()
			var dp [3]float64
			dp[d] = h
			plus.DisplaceAtom(atom, dp)
			minus := cell.Clone()
			dp[d] = -h
			minus.DisplaceAtom(atom, dp)
			fd := -(Ewald(plus).Energy - Ewald(minus).Energy) / (2 * h)
			if diff := math.Abs(fd - res.Forces[atom][d]); diff > 1e-6 {
				t.Errorf("atom %d component %d: analytic %g vs FD %g (diff %g)", atom, d, res.Forces[atom][d], fd, diff)
			}
		}
	}
}

// TestEwaldInversionPairAntisymmetry: displacing a bonded pair
// symmetrically about its bond center preserves the inversion symmetry
// that maps the two atoms onto each other, so their forces must be exactly
// equal and opposite.
func TestEwaldInversionPairAntisymmetry(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	// Atoms 0 (origin) and 4 (a/4 (1,1,1)) are a bonded pair; inversion
	// about the bond midpoint maps the diamond lattice onto itself.
	d := [3]float64{0.1, 0.1, 0.1}
	cell.DisplaceAtom(0, d)
	cell.DisplaceAtom(4, [3]float64{-d[0], -d[1], -d[2]})
	res := Ewald(cell)
	for k := 0; k < 3; k++ {
		if diff := math.Abs(res.Forces[0][k] + res.Forces[4][k]); diff > 1e-9 {
			t.Errorf("component %d: F0 = %g, F4 = %g not antisymmetric (diff %g)", k, res.Forces[0][k], res.Forces[4][k], diff)
		}
	}
	// The displacement is along the bond, so the force on the displaced
	// atom must be nonzero (the pair was pushed together).
	var norm float64
	for k := 0; k < 3; k++ {
		norm += res.Forces[0][k] * res.Forces[0][k]
	}
	if math.Sqrt(norm) < 1e-4 {
		t.Errorf("displaced atom feels no force: %v", res.Forces[0])
	}
}
