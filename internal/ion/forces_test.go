package ion

import (
	"math"
	"testing"

	"ptdft/internal/grid"
	"ptdft/internal/lattice"
	"ptdft/internal/potential"
	"ptdft/internal/pseudo"
	"ptdft/internal/wavefunc"
)

func siPots() map[int]*pseudo.Potential {
	return map[int]*pseudo.Potential{0: pseudo.SiliconAH()}
}

// displacedSi8 returns a Si8 cell with atom 0 pushed off its lattice site,
// the standard distorted test geometry.
func displacedSi8(t *testing.T) *lattice.Cell {
	t.Helper()
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	if err := cell.DisplaceAtom(0, [3]float64{0.2, -0.1, 0.15}); err != nil {
		t.Fatal(err)
	}
	return cell
}

// localEnergy evaluates E_loc = integral Vloc rho dr for the cell's
// current geometry with a fixed density - the discrete functional
// LocalForces differentiates.
func localEnergy(g *grid.Grid, pots map[int]*pseudo.Potential, rho []float64) float64 {
	vloc := potential.BuildVloc(g, pots)
	var e float64
	for i := range vloc {
		e += vloc[i] * rho[i]
	}
	return e * g.DV()
}

// TestLocalForceMatchesFD pins the structure-factor-gradient force against
// central finite differences of the discrete local energy at fixed
// density, to the acceptance tolerance 1e-5 Ha/Bohr per component.
func TestLocalForceMatchesFD(t *testing.T) {
	cell := displacedSi8(t)
	g := grid.MustNew(cell, 3)
	nb := 4
	psi := wavefunc.Random(g, nb, 11)
	rho := potential.Density(g, psi, nb, 2)
	forces := LocalForces(g, siPots(), rho)
	const h = 1e-3
	for _, atom := range []int{0, 4} {
		for d := 0; d < 3; d++ {
			plus := cell.Clone()
			var dp [3]float64
			dp[d] = h
			plus.DisplaceAtom(atom, dp)
			minus := cell.Clone()
			dp[d] = -h
			minus.DisplaceAtom(atom, dp)
			// The grids share the discretization; only atom positions
			// differ, so rho carries over unchanged.
			fd := -(localEnergy(grid.MustNew(plus, 3), siPots(), rho) -
				localEnergy(grid.MustNew(minus, 3), siPots(), rho)) / (2 * h)
			if diff := math.Abs(fd - forces[atom][d]); diff > 1e-5 {
				t.Errorf("atom %d component %d: analytic %g vs FD %g (diff %g)", atom, d, forces[atom][d], fd, diff)
			}
		}
	}
}

// nonlocalEnergy evaluates E_nl = occ sum_b <psi_b|V_nl|psi_b> with the
// MD projectors of the cell's current geometry at fixed orbitals.
func nonlocalEnergy(g *grid.Grid, pots map[int]*pseudo.Potential, psi []complex128, nb int, occ float64) float64 {
	nl := pseudo.BuildNonlocalMD(g, pots)
	box := make([]complex128, g.NTot)
	var e float64
	for b := 0; b < nb; b++ {
		g.ToRealSerial(box, psi[b*g.NG:(b+1)*g.NG])
		e += occ * nl.Energy(box)
	}
	return e
}

// TestNonlocalForceMatchesFD pins the band-limited projector-gradient
// force against finite differences of the discrete nonlocal energy at
// fixed orbitals.
func TestNonlocalForceMatchesFD(t *testing.T) {
	cell := displacedSi8(t)
	g := grid.MustNew(cell, 3)
	nb := 4
	psi := wavefunc.Random(g, nb, 12)
	nl := pseudo.BuildNonlocalMD(g, siPots())
	if !nl.HasGradients() {
		t.Fatal("MD projectors carry no gradients")
	}
	forces := make([][3]float64, cell.NumAtoms())
	if err := nl.Forces(forces, g, psi, nb, 2); err != nil {
		t.Fatal(err)
	}
	const h = 1e-3
	for _, atom := range []int{0, 4} {
		for d := 0; d < 3; d++ {
			plus := cell.Clone()
			var dp [3]float64
			dp[d] = h
			plus.DisplaceAtom(atom, dp)
			minus := cell.Clone()
			dp[d] = -h
			minus.DisplaceAtom(atom, dp)
			fd := -(nonlocalEnergy(grid.MustNew(plus, 3), siPots(), psi, nb, 2) -
				nonlocalEnergy(grid.MustNew(minus, 3), siPots(), psi, nb, 2)) / (2 * h)
			if diff := math.Abs(fd - forces[atom][d]); diff > 1e-5 {
				t.Errorf("atom %d component %d: analytic %g vs FD %g (diff %g)", atom, d, forces[atom][d], fd, diff)
			}
		}
	}
}

// TestTotalForceMatchesFD is the acceptance pin: the full Hellmann-Feynman
// force (local + nonlocal + Ewald) against central finite differences of
// the complete position-dependent energy E_loc + E_nl + E_II at fixed
// orbitals, to 1e-5 Ha/Bohr per component. Terms with no explicit position
// dependence (kinetic, Hartree, XC, Fock exchange) drop out of the
// difference exactly and are omitted from both sides.
func TestTotalForceMatchesFD(t *testing.T) {
	cell := displacedSi8(t)
	g := grid.MustNew(cell, 3)
	nb := 4
	psi := wavefunc.Random(g, nb, 13)
	rho := potential.Density(g, psi, nb, 2)
	pots := siPots()

	forces := LocalForces(g, pots, rho)
	nl := pseudo.BuildNonlocalMD(g, pots)
	if err := nl.Forces(forces, g, psi, nb, 2); err != nil {
		t.Fatal(err)
	}
	ew := Ewald(cell)
	if err := addInto(forces, ew.Forces); err != nil {
		t.Fatal(err)
	}

	energy := func(c *lattice.Cell) float64 {
		gg := grid.MustNew(c, 3)
		return localEnergy(gg, pots, rho) + nonlocalEnergy(gg, pots, psi, nb, 2) + Ewald(c).Energy
	}
	const h = 1e-3
	for _, atom := range []int{0, 4} {
		for d := 0; d < 3; d++ {
			plus := cell.Clone()
			var dp [3]float64
			dp[d] = h
			plus.DisplaceAtom(atom, dp)
			minus := cell.Clone()
			dp[d] = -h
			minus.DisplaceAtom(atom, dp)
			fd := -(energy(plus) - energy(minus)) / (2 * h)
			if diff := math.Abs(fd - forces[atom][d]); diff > 1e-5 {
				t.Errorf("atom %d component %d: analytic %g vs FD %g (diff %g)", atom, d, forces[atom][d], fd, diff)
			}
		}
	}
}

// TestDisplacedPairForceAntisymmetry: the bonded pair (0, 4) displaced
// symmetrically about its bond center keeps the inversion symmetry mapping
// the two atoms onto each other; with an inversion-symmetric electronic
// state the full Hellmann-Feynman forces on the pair are equal and
// opposite. The Ewald part is exactly antisymmetric (pure geometry); here
// the electron terms use the symmetric density/orbitals of a uniform
// occupancy-free probe: the G = 0-only density, for which the local force
// vanishes identically, leaving the exact ion-ion antisymmetry as the
// observable.
func TestDisplacedPairForceAntisymmetry(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	d := [3]float64{0.12, 0.12, 0.12}
	cell.DisplaceAtom(0, d)
	cell.DisplaceAtom(4, [3]float64{-d[0], -d[1], -d[2]})
	g := grid.MustNew(cell, 3)
	pots := siPots()

	// Uniform density: the local force has no G != 0 structure to couple
	// to and must vanish on every atom.
	rho := make([]float64, g.NDTot)
	for i := range rho {
		rho[i] = 32.0 / g.Volume()
	}
	loc := LocalForces(g, pots, rho)
	for i, f := range loc {
		for k := 0; k < 3; k++ {
			if math.Abs(f[k]) > 1e-10 {
				t.Errorf("uniform-density local force[%d][%d] = %g, want 0", i, k, f[k])
			}
		}
	}
	ew := Ewald(cell)
	for k := 0; k < 3; k++ {
		if diff := math.Abs(ew.Forces[0][k] + ew.Forces[4][k]); diff > 1e-9 {
			t.Errorf("component %d: pair forces %g / %g not antisymmetric", k, ew.Forces[0][k], ew.Forces[4][k])
		}
	}
}
