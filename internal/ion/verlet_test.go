package ion

import (
	"math"
	"testing"

	"ptdft/internal/lattice"
)

// harmonicStub is a synthetic Electrons implementation: a single ion in a
// harmonic well F = -k (R - R0) with electronic energy k (R-R0)^2 / 2, so
// the coupled system is an exactly solvable oscillator. It counts calls to
// verify the integrator's drive sequence.
type harmonicStub struct {
	cell     *lattice.Cell
	k        float64
	r0       [3]float64
	steps    int
	rebuilds int
}

func (h *harmonicStub) StepElectrons(dt float64) error { h.steps++; return nil }
func (h *harmonicStub) GeometryChanged() error         { h.rebuilds++; return nil }

func (h *harmonicStub) dx() [3]float64 {
	d, _ := h.cell.MinimumImage(h.r0, h.cell.Atoms[0].Pos)
	return d
}

func (h *harmonicStub) ElectronForces() ([][3]float64, error) {
	d := h.dx()
	return [][3]float64{{-h.k * d[0], -h.k * d[1], -h.k * d[2]}}, nil
}

func (h *harmonicStub) ElectronicEnergy() (float64, error) {
	d := h.dx()
	return 0.5 * h.k * (d[0]*d[0] + d[1]*d[1] + d[2]*d[2]), nil
}

// oneAtomCell builds a single-atom cell centered in a box, with the ion-ion
// interaction negligible (one ion + background: position independent).
func oneAtomCell() *lattice.Cell {
	c, _ := lattice.NewCell(20, 20, 20)
	c.Species = []lattice.Species{{Symbol: "X", Zval: 0, MassAMU: 1}}
	c.Atoms = []lattice.Atom{{Species: 0, Pos: [3]float64{10, 10, 10}}}
	return c
}

// TestVerletHarmonicOscillator integrates the synthetic oscillator and
// checks amplitude, period and energy conservation against the analytic
// solution.
func TestVerletHarmonicOscillator(t *testing.T) {
	cell := oneAtomCell()
	const k = 0.5
	stub := &harmonicStub{cell: cell, k: k, r0: [3]float64{10, 10, 10}}
	mass := 1 * 1822.888486209
	omega := math.Sqrt(k / mass)
	period := 2 * math.Pi / omega

	// Displace and release.
	const amp = 0.3
	cell.DisplaceAtom(0, [3]float64{amp, 0, 0})
	const kSub = 3
	v, err := NewVerlet(cell, stub, period/400, kSub)
	if err != nil {
		t.Fatal(err)
	}
	e0, err := v.TotalEnergy()
	if err != nil {
		t.Fatal(err)
	}
	// Half a period: the ion should arrive at -amp with ~zero velocity.
	steps := 200
	for i := 0; i < steps; i++ {
		if err := v.Step(); err != nil {
			t.Fatal(err)
		}
	}
	d := stub.dx()
	if math.Abs(d[0]+amp) > 0.01*amp {
		t.Errorf("after T/2 the ion sits at %g, want %g", d[0], -amp)
	}
	if math.Abs(d[1]) > 1e-12 || math.Abs(d[2]) > 1e-12 {
		t.Errorf("motion leaked off-axis: %v", d)
	}
	e1, err := v.TotalEnergy()
	if err != nil {
		t.Fatal(err)
	}
	if drift := math.Abs(e1 - e0); drift > 1e-8 {
		t.Errorf("energy drift %g over half a period", drift)
	}
	if v.Steps != steps {
		t.Errorf("step counter %d, want %d", v.Steps, steps)
	}
	if stub.steps != steps*kSub {
		t.Errorf("electronic steps %d, want %d (K=%d per ion step)", stub.steps, steps*kSub, kSub)
	}
	if stub.rebuilds != 2*steps {
		t.Errorf("geometry rebuilds %d, want two per ion step (%d): midpoint and endpoint", stub.rebuilds, 2*steps)
	}
}

// TestVerletResumeBitCompatible: an interrupted trajectory resumed from
// (R, v, F) reproduces the uninterrupted one exactly - the contract behind
// checkpoint format v3.
func TestVerletResumeBitCompatible(t *testing.T) {
	build := func() (*Verlet, *harmonicStub) {
		cell := oneAtomCell()
		stub := &harmonicStub{cell: cell, k: 0.4, r0: [3]float64{10, 10, 10}}
		cell.DisplaceAtom(0, [3]float64{0.2, 0.1, -0.05})
		v, err := NewVerlet(cell, stub, 25.0, 2)
		if err != nil {
			t.Fatal(err)
		}
		return v, stub
	}
	vFull, _ := build()
	for i := 0; i < 6; i++ {
		if err := vFull.Step(); err != nil {
			t.Fatal(err)
		}
	}

	vHalf, _ := build()
	for i := 0; i < 3; i++ {
		if err := vHalf.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint state: positions, velocities, force cache.
	pos := vHalf.Cell.Positions()
	vel := append([][3]float64(nil), vHalf.Vel...)
	force := append([][3]float64(nil), vHalf.F...)

	vRes, _ := build()
	if err := vRes.Resume(pos, vel, force, vHalf.Steps); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := vRes.Step(); err != nil {
			t.Fatal(err)
		}
	}
	pf, pr := vFull.Cell.Positions(), vRes.Cell.Positions()
	for d := 0; d < 3; d++ {
		if pf[0][d] != pr[0][d] {
			t.Errorf("position[%d] %v != %v, want bit-identical", d, pf[0][d], pr[0][d])
		}
		if vFull.Vel[0][d] != vRes.Vel[0][d] {
			t.Errorf("velocity[%d] %v != %v, want bit-identical", d, vFull.Vel[0][d], vRes.Vel[0][d])
		}
	}
	if vRes.Steps != vFull.Steps {
		t.Errorf("resumed step counter %d, want %d", vRes.Steps, vFull.Steps)
	}
}

// TestVerletRejectsBadSetup: missing masses and nonsense cadences fail
// loudly at construction.
func TestVerletRejectsBadSetup(t *testing.T) {
	cell := oneAtomCell()
	stub := &harmonicStub{cell: cell, k: 1, r0: cell.Atoms[0].Pos}
	if _, err := NewVerlet(cell, stub, -1, 1); err == nil {
		t.Error("negative ion step accepted")
	}
	if _, err := NewVerlet(cell, stub, 1, 0); err == nil {
		t.Error("zero electronic substeps accepted")
	}
	noMass := oneAtomCell()
	noMass.Species[0].MassAMU = 0
	if _, err := NewVerlet(noMass, stub, 1, 1); err == nil {
		t.Error("massless species accepted")
	}
}
