package ion

import (
	"math"

	"ptdft/internal/lattice"
)

// EwaldResult is the ion-ion interaction of the periodic point-charge
// array: the total energy (Ha) and the force on every atom (Ha/Bohr).
type EwaldResult struct {
	Energy float64
	Forces [][3]float64
}

// ewaldAlpha picks the Gaussian splitting parameter so the real-space sum
// converges within one cell image: erfc(alpha * Lmin) ~ erfc(6) ~ 2e-17.
func ewaldAlpha(cell *lattice.Cell) float64 {
	lmin := math.Min(cell.L[0], math.Min(cell.L[1], cell.L[2]))
	return 6 / lmin
}

// Ewald evaluates the ion-ion energy and forces of the cell's valence
// point charges with a neutralizing background (the G = 0 convention that
// matches the dropped Hartree and local-pseudopotential G = 0 terms). The
// splitting parameter is chosen automatically; EwaldWithAlpha exposes it
// for the alpha-invariance test.
func Ewald(cell *lattice.Cell) EwaldResult {
	return EwaldWithAlpha(cell, ewaldAlpha(cell))
}

// EwaldWithAlpha is Ewald with an explicit splitting parameter alpha
// (Bohr^-1). The result is alpha-independent up to the truncation
// tolerance (~1e-14 relative): both sums run until their Gaussian tails
// fall below 1e-16.
func EwaldWithAlpha(cell *lattice.Cell, alpha float64) EwaldResult {
	n := cell.NumAtoms()
	res := EwaldResult{Forces: make([][3]float64, n)}
	z := make([]float64, n)
	var ztot, z2tot float64
	for i, a := range cell.Atoms {
		z[i] = cell.Species[a.Species].Zval
		ztot += z[i]
		z2tot += z[i] * z[i]
	}
	omega := cell.Volume()

	// Real-space sum: pairs over enough periodic images that
	// erfc(alpha*r) has decayed below 1e-16 (alpha*rcut = 6.1).
	rcut := 6.1 / alpha
	rcut2 := rcut * rcut
	var nmax [3]int
	for d := 0; d < 3; d++ {
		nmax[d] = int(math.Ceil(rcut/cell.L[d])) + 1
	}
	twoAlphaPi := 2 * alpha / math.Sqrt(math.Pi)
	for a := 0; a < n; a++ {
		pa := cell.Atoms[a].Pos
		for b := 0; b < n; b++ {
			pb := cell.Atoms[b].Pos
			zz := z[a] * z[b]
			for ix := -nmax[0]; ix <= nmax[0]; ix++ {
				for iy := -nmax[1]; iy <= nmax[1]; iy++ {
					for iz := -nmax[2]; iz <= nmax[2]; iz++ {
						rx := pa[0] - pb[0] + float64(ix)*cell.L[0]
						ry := pa[1] - pb[1] + float64(iy)*cell.L[1]
						rz := pa[2] - pb[2] + float64(iz)*cell.L[2]
						r2 := rx*rx + ry*ry + rz*rz
						if r2 > rcut2 || r2 < 1e-18 {
							continue // outside range, or a's own image (a == b, n == 0)
						}
						r := math.Sqrt(r2)
						e := math.Erfc(alpha*r) / r
						res.Energy += 0.5 * zz * e
						// -d/dr [erfc(ar)/r] = erfc(ar)/r^2 + (2a/sqrt(pi)) e^{-a^2 r^2}/r.
						fr := zz * (e + twoAlphaPi*math.Exp(-alpha*alpha*r2)) / r2
						res.Forces[a][0] += fr * rx
						res.Forces[a][1] += fr * ry
						res.Forces[a][2] += fr * rz
					}
				}
			}
		}
	}

	// Reciprocal sum over G != 0 until exp(-G^2/(4 alpha^2)) < 1e-16.
	gmax := 2 * alpha * math.Sqrt(16*math.Ln10)
	var mmax [3]int
	var bv [3]float64
	for d := 0; d < 3; d++ {
		bv[d] = 2 * math.Pi / cell.L[d]
		mmax[d] = int(math.Ceil(gmax / bv[d]))
	}
	inv4a2 := 1 / (4 * alpha * alpha)
	pref := 2 * math.Pi / omega
	for mx := -mmax[0]; mx <= mmax[0]; mx++ {
		gx := float64(mx) * bv[0]
		for my := -mmax[1]; my <= mmax[1]; my++ {
			gy := float64(my) * bv[1]
			for mz := -mmax[2]; mz <= mmax[2]; mz++ {
				gz := float64(mz) * bv[2]
				g2 := gx*gx + gy*gy + gz*gz
				if g2 < 1e-12 || g2 > gmax*gmax {
					continue
				}
				k := math.Exp(-g2*inv4a2) / g2
				// S(G) = sum_a Z_a e^{iG.R_a}
				var sre, sim float64
				for a := 0; a < n; a++ {
					p := cell.Atoms[a].Pos
					ph := gx*p[0] + gy*p[1] + gz*p[2]
					sn, cs := math.Sincos(ph)
					sre += z[a] * cs
					sim += z[a] * sn
				}
				res.Energy += pref * k * (sre*sre + sim*sim)
				// F_a = (4 pi / Omega) Z_a k(G) G Im[conj(S) e^{iG.R_a}]
				for a := 0; a < n; a++ {
					p := cell.Atoms[a].Pos
					ph := gx*p[0] + gy*p[1] + gz*p[2]
					sn, cs := math.Sincos(ph)
					im := sre*sn - sim*cs
					w := 2 * pref * z[a] * k * im
					res.Forces[a][0] += w * gx
					res.Forces[a][1] += w * gy
					res.Forces[a][2] += w * gz
				}
			}
		}
	}

	// Self-interaction and neutralizing-background corrections (position
	// independent: no force contribution).
	res.Energy -= alpha / math.Sqrt(math.Pi) * z2tot
	res.Energy -= math.Pi / (2 * alpha * alpha * omega) * ztot * ztot
	return res
}
