package ion

import (
	"fmt"

	"ptdft/internal/lattice"
)

// Electrons is the electronic half of the coupled Ehrenfest system: the
// ion integrator drives it between force evaluations. core.PTCN and
// dist.PTCNSolver plug in through the adapters in this package; every
// method of a distributed implementation is collective, so all ranks run
// the integrator in lockstep on replicated ion state.
type Electrons interface {
	// StepElectrons advances the electronic state by one PT-CN step of dt.
	StepElectrons(dt float64) error
	// ElectronForces returns the electron contribution to the
	// Hellmann-Feynman force (local pseudopotential + nonlocal
	// projectors) of the current electronic state on the current geometry.
	ElectronForces() ([][3]float64, error)
	// GeometryChanged rebuilds the geometry-dependent operators (nonlocal
	// projectors, local potential) after the ion positions moved.
	GeometryChanged() error
	// ElectronicEnergy evaluates the electronic total energy.
	ElectronicEnergy() (float64, error)
}

// Verlet integrates the Ehrenfest equations of motion with velocity
// Verlet: one ion step of DtIon spans K electronic PT-CN steps of DtIon/K,
// the Mandal-et-al interleave stacked on top of the PT-CN (and optionally
// MTS) electronic cadence. The sequence per step is
//
//	v      += (DtIon/2) F(R, psi) / M        (half kick, cached force)
//	R      += (DtIon/2) v                    (half drift; operators rebuilt)
//	psi    -> K PT-CN steps of DtIon/K       (electrons at the MIDPOINT geometry)
//	R      += (DtIon/2) v                    (second half drift; rebuilt again)
//	F      =  F(R', psi')                    (new force, cached)
//	v      += (DtIon/2) F / M                (second half kick)
//
// Propagating the electrons under the midpoint geometry - rather than the
// end-of-drift one - keeps the electron-ion coupling time symmetric,
// removing the one-sided scheme's leading energy bias (measured 1.61e-3 ->
// 1.09e-3 Ha over a quarter period of the Si8 oscillation at dtIon = 8
// au; see EXPERIMENTS.md). The remaining drift is dt-independent - it is
// the wave-box aliasing of the applied local potential, a discretization
// consistency term, not integrator error (DESIGN.md deviation list). The
// ion positions still advance by the exact velocity-Verlet drift
// (velocity is constant across the two half drifts).
//
// The cached force F makes an interrupted trajectory restartable
// bit-compatibly: a checkpoint carries (R, v, F), so the resumed first
// half kick uses the identical force instead of a recomputation subject to
// parallel reduction order.
type Verlet struct {
	Cell *lattice.Cell
	El   Electrons

	Mass []float64    // per-atom ion mass (au)
	Vel  [][3]float64 // per-atom velocity (Bohr / au-time)
	F    [][3]float64 // cached total force (electron + ion-ion), Ha/Bohr
	EII  float64      // ion-ion energy at the current geometry (Ha)

	DtIon float64 // ion time step (au)
	K     int     // electronic PT-CN steps per ion step
	Steps int     // completed ion steps
}

// NewVerlet builds the integrator for the cell's atoms with zero initial
// velocities. The force cache starts empty; the first Step (or an explicit
// ComputeForces) fills it.
func NewVerlet(cell *lattice.Cell, el Electrons, dtIon float64, k int) (*Verlet, error) {
	if dtIon <= 0 {
		return nil, fmt.Errorf("ion: non-positive ion time step %g", dtIon)
	}
	if k < 1 {
		return nil, fmt.Errorf("ion: need at least one electronic step per ion step, got %d", k)
	}
	mass, err := cell.Masses()
	if err != nil {
		return nil, err
	}
	return &Verlet{
		Cell:  cell,
		El:    el,
		Mass:  mass,
		Vel:   make([][3]float64, cell.NumAtoms()),
		DtIon: dtIon,
		K:     k,
	}, nil
}

// ComputeForces refreshes the cached total force and the ion-ion energy
// from the current electronic state and geometry. Collective in
// distributed runs.
func (v *Verlet) ComputeForces() error {
	f, err := v.El.ElectronForces()
	if err != nil {
		return err
	}
	ew := Ewald(v.Cell)
	if err := addInto(f, ew.Forces); err != nil {
		return err
	}
	v.F = f
	v.EII = ew.Energy
	return nil
}

// Step advances the coupled system by one ion step (K electronic steps).
func (v *Verlet) Step() error {
	if v.F == nil {
		if err := v.ComputeForces(); err != nil {
			return err
		}
	}
	half := v.DtIon / 2
	for a := range v.Vel {
		for d := 0; d < 3; d++ {
			v.Vel[a][d] += half * v.F[a][d] / v.Mass[a]
		}
	}
	if err := v.drift(half); err != nil {
		return err
	}
	dtEl := v.DtIon / float64(v.K)
	for i := 0; i < v.K; i++ {
		if err := v.El.StepElectrons(dtEl); err != nil {
			return fmt.Errorf("ion: electronic step %d of ion step %d: %w", i, v.Steps, err)
		}
	}
	if err := v.drift(half); err != nil {
		return err
	}
	if err := v.ComputeForces(); err != nil {
		return err
	}
	for a := range v.Vel {
		for d := 0; d < 3; d++ {
			v.Vel[a][d] += half * v.F[a][d] / v.Mass[a]
		}
	}
	v.Steps++
	return nil
}

// drift advances the ion positions by dt at the current velocities and
// rebuilds the geometry-dependent operators.
func (v *Verlet) drift(dt float64) error {
	pos := v.Cell.Positions()
	for a := range pos {
		for d := 0; d < 3; d++ {
			pos[a][d] += dt * v.Vel[a][d]
		}
	}
	if err := v.Cell.SetPositions(pos); err != nil {
		return err
	}
	return v.El.GeometryChanged()
}

// KineticEnergy returns the ion kinetic energy sum_a M_a v_a^2 / 2 (Ha).
func (v *Verlet) KineticEnergy() float64 {
	var e float64
	for a, vel := range v.Vel {
		e += 0.5 * v.Mass[a] * (vel[0]*vel[0] + vel[1]*vel[1] + vel[2]*vel[2])
	}
	return e
}

// TotalEnergy evaluates the conserved quantity of the Ehrenfest dynamics:
// electronic total energy + ion kinetic energy + ion-ion energy. The
// ion-ion term comes from the force cache (ComputeForces/Step keep it in
// sync with the geometry). Collective in distributed runs.
func (v *Verlet) TotalEnergy() (float64, error) {
	if v.F == nil {
		if err := v.ComputeForces(); err != nil {
			return 0, err
		}
	}
	eel, err := v.El.ElectronicEnergy()
	if err != nil {
		return 0, err
	}
	return eel + v.KineticEnergy() + v.EII, nil
}

// Resume restores the integrator mid-trajectory from checkpointed state:
// positions are written into the cell (with the geometry-dependent
// operators rebuilt), velocities and the force cache installed verbatim,
// and the ion-ion energy re-derived from the restored geometry. Loading
// the cached force - rather than recomputing it - is what makes the
// resumed trajectory bit-compatible with the uninterrupted one.
func (v *Verlet) Resume(pos, vel, force [][3]float64, steps int) error {
	n := v.Cell.NumAtoms()
	if len(pos) != n || len(vel) != n || len(force) != n {
		return fmt.Errorf("ion: resume state holds %d/%d/%d atoms, cell has %d", len(pos), len(vel), len(force), n)
	}
	if err := v.Cell.SetPositions(pos); err != nil {
		return err
	}
	if err := v.El.GeometryChanged(); err != nil {
		return err
	}
	v.Vel = make([][3]float64, n)
	copy(v.Vel, vel)
	v.F = make([][3]float64, n)
	copy(v.F, force)
	v.EII = Ewald(v.Cell).Energy
	v.Steps = steps
	return nil
}
