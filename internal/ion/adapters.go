package ion

import (
	"ptdft/internal/core"
	"ptdft/internal/dist"
	"ptdft/internal/observe"
	"ptdft/internal/potential"
	"ptdft/internal/pseudo"
)

// SerialElectrons couples the serial core.PTCN propagator to the ion
// integrator. It owns the evolving orbital set; Psi always holds the
// current state.
type SerialElectrons struct {
	P    *core.PTCN
	Psi  []complex128
	Pots map[int]*pseudo.Potential
	SCF  int // cumulative inner-SCF iterations, for per-ion-step reporting
}

// StepElectrons advances the orbitals by one PT-CN step.
func (se *SerialElectrons) StepElectrons(dt float64) error {
	psi, stats, err := se.P.Step(se.Psi, dt)
	if err != nil {
		return err
	}
	se.Psi = psi
	se.SCF += stats.SCFIterations
	return nil
}

// ElectronForces assembles the electron contribution to the
// Hellmann-Feynman force from the current orbitals: the local
// pseudopotential force from the density plus the nonlocal projector
// force.
func (se *SerialElectrons) ElectronForces() ([][3]float64, error) {
	sys := se.P.Sys
	rho := potential.Density(sys.G, se.Psi, sys.NB, sys.Occ)
	f := LocalForces(sys.G, se.Pots, rho)
	if err := sys.H.NL.Forces(f, sys.G, se.Psi, sys.NB, sys.Occ); err != nil {
		return nil, err
	}
	return f, nil
}

// GeometryChanged rebuilds the static operators through the propagator's
// coupled-step hook.
func (se *SerialElectrons) GeometryChanged() error {
	se.P.IonGeometryChanged()
	return nil
}

// ElectronicEnergy evaluates the electronic total energy with H refreshed
// from the current orbitals.
func (se *SerialElectrons) ElectronicEnergy() (float64, error) {
	return observe.Energy(se.P.Sys, se.Psi, se.P.Time).Total(), nil
}

// DistElectrons couples one rank of the distributed dist.PTCNSolver to the
// ion integrator. Every method is collective: all ranks drive their
// replicated Verlet integrators through the same call sequence, and the
// force assembly allreduces in deterministic rank order, so the replicated
// ion trajectories are bit-identical.
type DistElectrons struct {
	S     *dist.PTCNSolver
	Local []complex128 // this rank's band block (current state)
	Pots  map[int]*pseudo.Potential
	SCF   int // cumulative inner-SCF iterations, for per-ion-step reporting
}

// StepElectrons advances this rank's band block by one PT-CN step.
// Collective.
func (de *DistElectrons) StepElectrons(dt float64) error {
	local, stats, err := de.S.Step(de.Local, dt)
	if err != nil {
		return err
	}
	de.Local = local
	de.SCF += stats.SCFIterations
	return nil
}

// ElectronForces assembles the Hellmann-Feynman electron force: the local
// part from the allreduced global density (identical on every rank), the
// nonlocal part from this rank's band block allreduced across ranks.
// Collective.
func (de *DistElectrons) ElectronForces() ([][3]float64, error) {
	g := de.S.D.G
	rho := de.S.GlobalDensity(de.Local)
	f := LocalForces(g, de.Pots, rho)
	nbl := len(de.Local) / g.NG
	nlf := make([][3]float64, g.Cell.NumAtoms())
	if err := de.S.H.NL.Forces(nlf, g, de.Local, nbl, de.S.Occ); err != nil {
		return nil, err
	}
	de.S.AllreduceForces(nlf)
	if err := addInto(f, nlf); err != nil {
		return nil, err
	}
	return f, nil
}

// GeometryChanged rebuilds this rank's static operators through the
// solver's coupled-step hook.
func (de *DistElectrons) GeometryChanged() error {
	de.S.IonGeometryChanged()
	return nil
}

// ElectronicEnergy evaluates the electronic total energy of the global
// band set. Collective.
func (de *DistElectrons) ElectronicEnergy() (float64, error) {
	return de.S.TotalEnergy(de.Local, de.S.Time).Total(), nil
}
