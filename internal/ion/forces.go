// Package ion adds ion dynamics to the rt-TDDFT stack: Hellmann-Feynman
// forces on the ions (local pseudopotential via structure-factor gradients
// in G space, nonlocal Kleinman-Bylander projectors via their band-limited
// center gradients, and the Ewald ion-ion sum on the periodic supercell)
// and a velocity-Verlet Ehrenfest integrator that advances the ions one MD
// step per K electronic PT-CN steps. In the plane-wave basis the orbitals
// carry no atom-position dependence, so the Hellmann-Feynman force is the
// exact derivative of the discrete total energy at fixed orbitals - there
// are no Pulay terms - and a trajectory's conserved quantity is
// E_electronic + E_ion-kinetic + E_ion-ion.
//
// The integrator is solver-agnostic: serial core.PTCN and the distributed
// dist.PTCNSolver plug in through the Electrons interface, and because the
// distributed force assembly allreduces in deterministic rank order, every
// rank integrates a bit-identical replica of the ion trajectory.
package ion

import (
	"fmt"
	"math"

	"ptdft/internal/grid"
	"ptdft/internal/parallel"
	"ptdft/internal/pseudo"
)

// LocalForces computes the Hellmann-Feynman force of the local
// pseudopotential on every atom from the dense-grid electron density:
//
//	F_a = Re sum_G  i G v_s(|G|^2) e^{-iG.R_a} conj(rho_G),
//
// the exact derivative of E_loc = Omega sum_G Vloc_G conj(rho_G) with
// respect to the atom position (the structure-factor gradient). The G = 0
// term is excluded by the same neutral-cell convention as BuildVloc; it is
// position independent, so the force is unaffected. The per-atom G sum is
// serial, making the result bit-reproducible across ranks and runs.
func LocalForces(g *grid.Grid, pots map[int]*pseudo.Potential, rho []float64) [][3]float64 {
	rhoG := make([]complex128, g.NDTot)
	for i, r := range rho {
		rhoG[i] = complex(r, 0)
	}
	g.DenseForward(rhoG, rhoG)
	// One form-factor table per species, shared by its atoms.
	ffs := map[int][]float64{}
	for s := range pots {
		ffs[s] = make([]float64, g.NDTot)
	}
	parallel.ForBlock(g.NDTot, func(lo, hi int) {
		for s, tab := range ffs {
			pot := pots[s]
			for k := lo; k < hi; k++ {
				tab[k] = pot.LocalFormFactor(g.G2Dense[k])
			}
		}
	})
	n := g.Cell.NumAtoms()
	f := make([][3]float64, n)
	parallel.For(n, func(a int) {
		tab, ok := ffs[g.Cell.Atoms[a].Species]
		if !ok {
			return
		}
		tau := g.Cell.Atoms[a].Pos
		var acc [3]float64
		for k := 0; k < g.NDTot; k++ {
			g2 := g.G2Dense[k]
			if g2 < 1e-12 {
				continue
			}
			gv := g.GVecDense[k]
			ph := gv[0]*tau[0] + gv[1]*tau[1] + gv[2]*tau[2]
			sn, cs := math.Sincos(-ph)
			// z = conj(rho_G) e^{-iG.R_a}; F_d += Re[i G_d z] = -G_d Im[z].
			im := real(rhoG[k])*sn - imag(rhoG[k])*cs
			w := tab[k] * im
			acc[0] -= gv[0] * w
			acc[1] -= gv[1] * w
			acc[2] -= gv[2] * w
		}
		f[a] = acc
	})
	return f
}

// addInto accumulates src into dst component-wise.
func addInto(dst, src [][3]float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("ion: force arrays hold %d and %d atoms", len(dst), len(src))
	}
	for i := range dst {
		for d := 0; d < 3; d++ {
			dst[i][d] += src[i][d]
		}
	}
	return nil
}
