package mixing

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"ptdft/internal/linalg"
)

// linearFixedPoint builds the residual f(x) = b - A x for a well-conditioned
// SPD-like complex system; the fixed point solves A x = b.
func linearFixedPoint(n int, seed int64) (apply func(x []complex128) []complex128, solution []complex128) {
	rng := rand.New(rand.NewSource(seed))
	a := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = complex(1.5+rng.Float64(), 0)
		for j := i + 1; j < n; j++ {
			v := complex(0.3*rng.NormFloat64(), 0.3*rng.NormFloat64()) / complex(float64(n), 0)
			a[i*n+j] = v
			a[j*n+i] = cmplx.Conj(v)
		}
	}
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b := make([]complex128, n)
	linalg.MatMul(b, a, x, n, n, 1)
	apply = func(xx []complex128) []complex128 {
		ax := make([]complex128, n)
		linalg.MatMul(ax, a, xx, n, n, 1)
		f := make([]complex128, n)
		for i := range f {
			f[i] = b[i] - ax[i]
		}
		return f
	}
	return apply, x
}

func resNorm(f []complex128) float64 {
	var s float64
	for _, v := range f {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

func TestAndersonSolvesLinearSystem(t *testing.T) {
	n := 20
	residual, want := linearFixedPoint(n, 3)
	a := NewAnderson(10, 0.5)
	x := make([]complex128, n)
	var final float64
	for it := 0; it < 60; it++ {
		f := residual(x)
		final = resNorm(f)
		if final < 1e-10 {
			break
		}
		x = a.Mix(x, f)
	}
	if final > 1e-8 {
		t.Fatalf("Anderson did not converge: residual %g", final)
	}
	for i := range x {
		if cmplx.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("solution wrong at %d", i)
		}
	}
}

func TestAndersonBeatsSimpleMixing(t *testing.T) {
	n := 30
	residual, _ := linearFixedPoint(n, 5)
	iterate := func(useAnderson bool) int {
		a := NewAnderson(12, 0.4)
		x := make([]complex128, n)
		for it := 0; it < 200; it++ {
			f := residual(x)
			if resNorm(f) < 1e-9 {
				return it
			}
			if useAnderson {
				x = a.Mix(x, f)
			} else {
				for i := range x {
					x[i] += complex(0.4, 0) * f[i]
				}
			}
		}
		return 200
	}
	and := iterate(true)
	simple := iterate(false)
	if and >= simple {
		t.Errorf("Anderson (%d iters) not faster than simple mixing (%d)", and, simple)
	}
}

func TestAndersonHistoryCap(t *testing.T) {
	a := NewAnderson(3, 0.5)
	x := make([]complex128, 4)
	f := make([]complex128, 4)
	for i := 0; i < 10; i++ {
		f[0] = complex(float64(i+1), 0)
		x = a.Mix(x, f)
		if a.HistoryLen() > 3 {
			t.Fatalf("history grew to %d beyond cap 3", a.HistoryLen())
		}
	}
	if a.HistoryLen() != 3 {
		t.Errorf("history %d, want 3", a.HistoryLen())
	}
	a.Reset()
	if a.HistoryLen() != 0 {
		t.Error("Reset did not clear history")
	}
	if a.MemoryBytes() != 0 {
		t.Error("MemoryBytes nonzero after reset")
	}
}

func TestAndersonFirstStepIsSimpleMixing(t *testing.T) {
	a := NewAnderson(5, 0.7)
	x := []complex128{1, 2}
	f := []complex128{complex(0.5, 0), complex(-0.5, 0)}
	got := a.Mix(x, f)
	want := []complex128{complex(1.35, 0), complex(1.65, 0)}
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > 1e-14 {
			t.Fatalf("first step = %v, want %v", got, want)
		}
	}
}

func TestAndersonCoefficientsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		a := NewAnderson(6, 0.5)
		n := 8
		x := make([]complex128, n)
		for step := 0; step < 5; step++ {
			fv := make([]complex128, n)
			for i := range fv {
				fv[i] = complex(local.NormFloat64(), local.NormFloat64())
			}
			x = a.Mix(x, fv)
		}
		c := a.coefficients(a.HistoryLen())
		var sum complex128
		for _, v := range c {
			sum += v
		}
		return cmplx.Abs(sum-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestBandMixerIndependence(t *testing.T) {
	// Two bands with different linear problems must each converge.
	ng := 10
	res0, want0 := linearFixedPoint(ng, 11)
	res1, want1 := linearFixedPoint(ng, 12)
	bm := NewBandMixer(2, ng, 10, 0.5)
	x := make([]complex128, 2*ng)
	for it := 0; it < 80; it++ {
		f := make([]complex128, 2*ng)
		copy(f[:ng], res0(x[:ng]))
		copy(f[ng:], res1(x[ng:]))
		if resNorm(f) < 1e-10 {
			break
		}
		x = bm.Mix(x, f)
	}
	for i := 0; i < ng; i++ {
		if cmplx.Abs(x[i]-want0[i]) > 1e-6 || cmplx.Abs(x[ng+i]-want1[i]) > 1e-6 {
			t.Fatal("band mixer failed to converge both bands")
		}
	}
	if bm.MemoryBytes() <= 0 {
		t.Error("BandMixer memory accounting zero")
	}
	bm.Reset()
	if bm.MemoryBytes() != 0 {
		t.Error("BandMixer memory nonzero after reset")
	}
}

func TestRealMixerDensityStyle(t *testing.T) {
	// Fixed point: x = 0.3 + 0.5*x (solution 0.6), elementwise.
	rm := NewRealMixer(5, 0.5)
	x := make([]float64, 6)
	for it := 0; it < 50; it++ {
		f := make([]float64, 6)
		for i := range f {
			f[i] = 0.3 + 0.5*x[i] - x[i]
		}
		x = rm.Mix(x, f)
	}
	for i := range x {
		if math.Abs(x[i]-0.6) > 1e-8 {
			t.Fatalf("real mixer fixed point %g, want 0.6", x[i])
		}
	}
}

func TestMemoryAccountingTwentyCopies(t *testing.T) {
	// The paper stores up to 20 wavefunction copies for Anderson mixing.
	ng := 100
	a := NewAnderson(20, 0.5)
	x := make([]complex128, ng)
	f := make([]complex128, ng)
	for i := 0; i < 25; i++ {
		f[0] = complex(float64(i+1), 0) // keep residuals distinct
		x = a.Mix(x, f)
	}
	// 20 history slots, each storing x and f: 20 * 2 * ng * 16 bytes.
	want := int64(20 * 2 * ng * 16)
	if a.MemoryBytes() != want {
		t.Errorf("memory = %d, want %d", a.MemoryBytes(), want)
	}
}
