// Package mixing implements Anderson mixing (Anderson 1965, ref [2] of the
// paper) for the two fixed-point problems of the code: the PT-CN
// wavefunction equation (Alg. 1 line 7, one mixer per band with history up
// to 20 - the memory-hungry part that the paper stages through the 512 GB
// Summit node memory) and the ground-state density SCF.
package mixing

import (
	"fmt"

	"ptdft/internal/linalg"
	"ptdft/internal/parallel"
)

// Anderson accelerates the fixed-point iteration x -> x + f(x) (f is the
// residual). After recording m previous (x_k, f_k) pairs it proposes
//
//	x_new = sum_k c_k (x_k + beta*f_k),  sum_k c_k = 1,
//
// with coefficients minimizing |sum_k c_k f_k|^2, solved through the
// (m+1) x (m+1) bordered normal equations - the small least squares
// problem of section 3.4 (at most 20 x 20).
type Anderson struct {
	maxHist int
	beta    float64
	xs, fs  [][]complex128
}

// NewAnderson creates a mixer with history depth maxHist (the paper uses
// 20) and simple-mixing parameter beta.
func NewAnderson(maxHist int, beta float64) *Anderson {
	if maxHist < 1 {
		maxHist = 1
	}
	return &Anderson{maxHist: maxHist, beta: beta}
}

// Reset clears the history (new time step / new SCF problem).
func (a *Anderson) Reset() {
	a.xs = a.xs[:0]
	a.fs = a.fs[:0]
}

// HistoryLen reports the current history depth.
func (a *Anderson) HistoryLen() int { return len(a.xs) }

// MemoryBytes reports the history storage, mirroring the paper's accounting
// of up to 20 wavefunction copies.
func (a *Anderson) MemoryBytes() int64 {
	var b int64
	for i := range a.xs {
		b += int64(len(a.xs[i])+len(a.fs[i])) * 16
	}
	return b
}

// Mix records the pair (x, f) and returns the next iterate. The returned
// slice is freshly allocated; x and f are copied into the history.
func (a *Anderson) Mix(x, f []complex128) []complex128 {
	if len(x) != len(f) {
		panic(fmt.Sprintf("mixing: x and f lengths differ: %d vs %d", len(x), len(f)))
	}
	xc := append([]complex128(nil), x...)
	fc := append([]complex128(nil), f...)
	a.xs = append(a.xs, xc)
	a.fs = append(a.fs, fc)
	if len(a.xs) > a.maxHist {
		a.xs = a.xs[1:]
		a.fs = a.fs[1:]
	}
	m := len(a.xs)
	out := make([]complex128, len(x))
	if m == 1 {
		for i := range out {
			out[i] = x[i] + complex(a.beta, 0)*f[i]
		}
		return out
	}
	c := a.coefficients(m)
	for k := 0; k < m; k++ {
		ck := c[k]
		if ck == 0 {
			continue
		}
		xk, fk := a.xs[k], a.fs[k]
		b := complex(a.beta, 0)
		for i := range out {
			out[i] += ck * (xk[i] + b*fk[i])
		}
	}
	return out
}

// coefficients solves the bordered system
//
//	[ A   1 ] [c]   [0]
//	[ 1^H 0 ] [l] = [1]
//
// with A_ij = <f_i|f_j>, regularized for near-degenerate histories.
func (a *Anderson) coefficients(m int) []complex128 {
	n := m + 1
	sys := make([]complex128, n*n)
	var trace float64
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			v := linalg.Dot(a.fs[i], a.fs[j])
			sys[i*n+j] = v
			if i == j {
				trace += real(v)
			}
		}
	}
	// Tikhonov regularization keeps the system solvable when residuals
	// become linearly dependent near convergence.
	eps := 1e-12 * (trace/float64(m) + 1e-300)
	for i := 0; i < m; i++ {
		sys[i*n+i] += complex(eps, 0)
	}
	for i := 0; i < m; i++ {
		sys[i*n+m] = 1
		sys[m*n+i] = 1
	}
	rhs := make([]complex128, n)
	rhs[m] = 1
	if err := linalg.SolveLinear(sys, rhs, n, 1); err != nil {
		// Degenerate history: fall back to plain mixing on the latest pair.
		c := make([]complex128, m)
		c[m-1] = 1
		return c
	}
	return rhs[:m]
}

// BandMixer runs one Anderson mixer per band, as the paper does for the
// PT-CN wavefunction fixed point: each band's least squares problem is
// independent and at most maxHist x maxHist.
type BandMixer struct {
	mixers []*Anderson
	ng     int
}

// NewBandMixer creates nb independent per-band mixers for bands of length ng.
func NewBandMixer(nb, ng, maxHist int, beta float64) *BandMixer {
	bm := &BandMixer{mixers: make([]*Anderson, nb), ng: ng}
	for i := range bm.mixers {
		bm.mixers[i] = NewAnderson(maxHist, beta)
	}
	return bm
}

// Mix applies per-band Anderson mixing to the band-major iterate x and
// residual f, returning the new iterate (band-major). Bands mix in
// parallel.
func (bm *BandMixer) Mix(x, f []complex128) []complex128 {
	nb := len(bm.mixers)
	if len(x) != nb*bm.ng || len(f) != nb*bm.ng {
		panic("mixing: BandMixer buffer size mismatch")
	}
	out := make([]complex128, len(x))
	parallel.For(nb, func(i int) {
		r := bm.mixers[i].Mix(x[i*bm.ng:(i+1)*bm.ng], f[i*bm.ng:(i+1)*bm.ng])
		copy(out[i*bm.ng:(i+1)*bm.ng], r)
	})
	return out
}

// Reset clears all band histories.
func (bm *BandMixer) Reset() {
	for _, m := range bm.mixers {
		m.Reset()
	}
}

// MemoryBytes totals the history storage across bands.
func (bm *BandMixer) MemoryBytes() int64 {
	var b int64
	for _, m := range bm.mixers {
		b += m.MemoryBytes()
	}
	return b
}

// RealMixer adapts Anderson mixing to real vectors (density SCF).
type RealMixer struct{ a *Anderson }

// NewRealMixer creates a real-vector Anderson mixer.
func NewRealMixer(maxHist int, beta float64) *RealMixer {
	return &RealMixer{a: NewAnderson(maxHist, beta)}
}

// Mix records (x, f) and returns the next iterate for real vectors.
func (r *RealMixer) Mix(x, f []float64) []float64 {
	cx := make([]complex128, len(x))
	cf := make([]complex128, len(f))
	for i := range x {
		cx[i] = complex(x[i], 0)
		cf[i] = complex(f[i], 0)
	}
	res := r.a.Mix(cx, cf)
	out := make([]float64, len(x))
	for i := range out {
		out[i] = real(res[i])
	}
	return out
}

// Reset clears the history.
func (r *RealMixer) Reset() { r.a.Reset() }
