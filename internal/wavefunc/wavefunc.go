// Package wavefunc provides band-set utilities: construction of random
// initial orbitals, Cholesky-based orthonormalization (the Trsm
// orthogonalization of section 3.4), norms and fidelity measures between
// band sets.
package wavefunc

import (
	"fmt"
	"math"
	"math/rand"

	"ptdft/internal/grid"
	"ptdft/internal/linalg"
)

// Random returns nb orthonormal random bands (band-major sphere
// coefficients) seeded deterministically. Low-G components are favored so
// the eigensolver starts near the smooth subspace.
func Random(g *grid.Grid, nb int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	psi := make([]complex128, nb*g.NG)
	for i := 0; i < nb; i++ {
		for s := 0; s < g.NG; s++ {
			damp := 1.0 / (1.0 + g.G2[s])
			psi[i*g.NG+s] = complex(rng.NormFloat64()*damp, rng.NormFloat64()*damp)
		}
	}
	if err := Orthonormalize(psi, nb, g.NG); err != nil {
		panic(fmt.Sprintf("wavefunc: random bands degenerate: %v", err))
	}
	return psi
}

// Orthonormalize makes the band set orthonormal in place via the overlap
// matrix, Cholesky factorization and triangular solve (section 3.4: the
// overlap is evaluated in the G-space layout, the Cholesky factor computed
// once, and the bands rotated by Trsm).
func Orthonormalize(psi []complex128, nb, ng int) error {
	s := make([]complex128, nb*nb)
	linalg.Overlap(s, psi, psi, nb, nb, ng)
	if err := linalg.CholeskyLower(s, nb); err != nil {
		return fmt.Errorf("wavefunc: overlap not positive definite: %w", err)
	}
	linalg.SolveLowerBands(s, psi, nb, ng)
	return nil
}

// OrthonormalityError returns max_ij |<psi_i|psi_j> - delta_ij|.
func OrthonormalityError(psi []complex128, nb, ng int) float64 {
	s := make([]complex128, nb*nb)
	linalg.Overlap(s, psi, psi, nb, nb, ng)
	var m float64
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			want := complex(0, 0)
			if i == j {
				want = 1
			}
			d := s[i*nb+j] - want
			if a := math.Hypot(real(d), imag(d)); a > m {
				m = a
			}
		}
	}
	return m
}

// SubspaceFidelity measures how close two orthonormal band sets span the
// same subspace: (1/nb) * sum_ij |<a_i|b_j>|^2, which is 1 for identical
// spans and ~nb*ng^-1 for random ones. Gauge-invariant, so it is the right
// comparison between parallel-transport orbitals and Schroedinger orbitals.
func SubspaceFidelity(a, b []complex128, nb, ng int) float64 {
	s := make([]complex128, nb*nb)
	linalg.Overlap(s, a, b, nb, nb, ng)
	var f float64
	for _, v := range s {
		f += real(v)*real(v) + imag(v)*imag(v)
	}
	return f / float64(nb)
}

// Clone returns a deep copy of a band set.
func Clone(psi []complex128) []complex128 {
	return append([]complex128(nil), psi...)
}

// MaxDiff returns the largest coefficient-wise magnitude difference.
func MaxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		d := a[i] - b[i]
		if v := math.Hypot(real(d), imag(d)); v > m {
			m = v
		}
	}
	return m
}
