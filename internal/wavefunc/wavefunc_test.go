package wavefunc

import (
	"math"
	"testing"

	"ptdft/internal/grid"
	"ptdft/internal/lattice"
)

func TestRandomIsOrthonormal(t *testing.T) {
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 4)
	psi := Random(g, 6, 1)
	if e := OrthonormalityError(psi, 6, g.NG); e > 1e-10 {
		t.Errorf("orthonormality error %g", e)
	}
}

func TestRandomDeterministic(t *testing.T) {
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 3)
	a := Random(g, 3, 7)
	b := Random(g, 3, 7)
	if MaxDiff(a, b) != 0 {
		t.Error("same seed gave different bands")
	}
	c := Random(g, 3, 8)
	if MaxDiff(a, c) == 0 {
		t.Error("different seeds gave identical bands")
	}
}

func TestOrthonormalizeIdempotent(t *testing.T) {
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 3)
	psi := Random(g, 4, 2)
	before := Clone(psi)
	if err := Orthonormalize(psi, 4, g.NG); err != nil {
		t.Fatal(err)
	}
	// Already orthonormal: must be (nearly) unchanged.
	if d := MaxDiff(before, psi); d > 1e-10 {
		t.Errorf("orthonormalize changed orthonormal set by %g", d)
	}
}

func TestSubspaceFidelityIdentity(t *testing.T) {
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 3)
	psi := Random(g, 4, 3)
	if f := SubspaceFidelity(psi, psi, 4, g.NG); math.Abs(f-1) > 1e-10 {
		t.Errorf("self fidelity %g, want 1", f)
	}
	// Gauge rotation within the span keeps fidelity 1: swap two bands.
	rot := Clone(psi)
	copy(rot[:g.NG], psi[g.NG:2*g.NG])
	copy(rot[g.NG:2*g.NG], psi[:g.NG])
	if f := SubspaceFidelity(psi, rot, 4, g.NG); math.Abs(f-1) > 1e-10 {
		t.Errorf("rotated fidelity %g, want 1", f)
	}
	// Random other set: fidelity well below 1.
	other := Random(g, 4, 99)
	if f := SubspaceFidelity(psi, other, 4, g.NG); f > 0.9 {
		t.Errorf("random fidelity %g, want << 1", f)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), 3)
	a := Random(g, 2, 4)
	b := Clone(a)
	b[0] += 1
	if a[0] == b[0] {
		t.Error("Clone aliases the original")
	}
}

func TestMaxDiff(t *testing.T) {
	a := []complex128{1, 2, complex(3, 4)}
	b := []complex128{1, 2, complex(3, 0)}
	if d := MaxDiff(a, b); math.Abs(d-4) > 1e-15 {
		t.Errorf("MaxDiff = %g, want 4", d)
	}
}
