package lanes

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// sizes crossing the Width boundary: empty tail, full tail, 1-element tail.
var sizes = []int{1, 7, 8, 9, 15, 16, 17, 64, 100}

func randComplex(rng *rand.Rand, n int) []complex128 {
	c := make([]complex128, n)
	for i := range c {
		c[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return c
}

func toSlab(c []complex128) Slab {
	s := New(len(c))
	Pack(s, c)
	return s
}

func requireClose(t *testing.T, got Slab, want []complex128, tol float64) {
	t.Helper()
	for i, w := range want {
		if math.Abs(got.Re[i]-real(w)) > tol || math.Abs(got.Im[i]-imag(w)) > tol {
			t.Fatalf("element %d: got (%g,%g) want %v", i, got.Re[i], got.Im[i], w)
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range sizes {
		src := randComplex(rng, n)
		s := toSlab(src)
		back := make([]complex128, n)
		Unpack(back, s)
		for i := range src {
			if back[i] != src[i] {
				t.Fatalf("n=%d i=%d round trip %v != %v", n, i, back[i], src[i])
			}
		}
	}
}

func TestKernelsMatchComplexReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const tol = 1e-13
	for _, n := range sizes {
		a := randComplex(rng, n)
		b := randComplex(rng, n)
		d := randComplex(rng, n)
		s := 0.75

		sa, sb := toSlab(a), toSlab(b)

		// Scale
		sd := toSlab(d)
		Scale(sd, s)
		want := make([]complex128, n)
		for i := range d {
			want[i] = d[i] * complex(s, 0)
		}
		requireClose(t, sd, want, tol)

		// PairConj
		sd = New(n)
		PairConj(sd, sa, sb)
		for i := range want {
			want[i] = cmplx.Conj(a[i]) * b[i]
		}
		requireClose(t, sd, want, tol)

		// MulAccum
		sd = toSlab(d)
		MulAccum(sd, sa, sb, s)
		for i := range want {
			want[i] = d[i] + complex(s, 0)*a[i]*b[i]
		}
		requireClose(t, sd, want, tol)

		// MulConjAccum
		sd = toSlab(d)
		MulConjAccum(sd, sa, sb, s)
		for i := range want {
			want[i] = d[i] + complex(s, 0)*a[i]*cmplx.Conj(b[i])
		}
		requireClose(t, sd, want, tol)

		// Add
		sd = toSlab(d)
		Add(sd, sa)
		for i := range want {
			want[i] = d[i] + a[i]
		}
		requireClose(t, sd, want, tol)

		// UnpackAdd
		dst := append([]complex128(nil), d...)
		UnpackAdd(dst, sa)
		for i := range dst {
			w := d[i] + a[i]
			if cmplx.Abs(dst[i]-w) > tol {
				t.Fatalf("UnpackAdd n=%d i=%d got %v want %v", n, i, dst[i], w)
			}
		}

		// DotRe
		got := DotRe(sa, sb)
		var ref float64
		for i := range a {
			ref += real(cmplx.Conj(a[i]) * b[i])
		}
		if math.Abs(got-ref) > tol*float64(n) {
			t.Fatalf("DotRe n=%d got %g want %g", n, got, ref)
		}
	}
}

func TestRowSliceViews(t *testing.T) {
	s := New(24)
	r := s.Row(1, 8)
	if r.Len() != 8 {
		t.Fatalf("row len %d", r.Len())
	}
	r.Re[0] = 42
	if s.Re[8] != 42 {
		t.Fatal("Row is not a view")
	}
	v := s.Slice(8, 16)
	if v.Re[0] != 42 {
		t.Fatal("Slice is not a view")
	}
	s.Zero()
	if s.Re[8] != 0 {
		t.Fatal("Zero did not clear")
	}
}

func TestReduceAdd(t *testing.T) {
	acc := [Width]float64{1, 2, 3, 4, 5, 6, 7, 8}
	if got := ReduceAdd(&acc); got != 36 {
		t.Fatalf("ReduceAdd got %g", got)
	}
}
