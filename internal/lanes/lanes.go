// Package lanes defines the lane-blocked structure-of-arrays layout the
// FFT/Fock hot path computes in. A Slab stores n complex values as two
// parallel float64 arrays (split re/im) instead of interleaved complex128;
// every kernel below walks the arrays in fixed Width-wide blocks through
// *[Width]float64 views, so the compiler drops the bounds checks and the
// inner loops are straight-line float64 arithmetic with Width independent
// dependency chains - the plain-Go rendition of the SPMD-Go
// uniform/varying discipline (coefficients like twiddles and kernel values
// are "uniform": one scalar load serves all Width lanes; the data is
// "varying": one element per lane).
//
// Two layout conventions share the type:
//
//   - Grid slab: element i of an n-point field lives at Re[i]/Im[i]. This
//     is how real-space boxes and accumulators are stored in fock and dist.
//   - Lane block: Width interleaved pencils of length n, element k of lane
//     l at Re[k*Width+l]. This is the FFT working layout - the butterfly
//     arithmetic is identical for all Width pencils, so the lane index is
//     the vector dimension.
//
// Remainders (n not a multiple of Width) are handled by scalar tail loops
// here and by scalar-epilogue pencils in the FFT passes; no kernel ever
// requires padded lengths.
package lanes

// Width is the lane count: 8 float64 lanes = one 64-byte cache line per
// block, and two AVX-512 (or four AVX2) vector registers per slab array.
const Width = 8

// Slab is n complex values in split re/im layout. The zero Slab is empty;
// a Slab is a pair of slice headers, so sub-views (Row) are allocation-free
// values.
type Slab struct {
	Re, Im []float64
}

// New allocates a zeroed n-element slab.
func New(n int) Slab {
	return Slab{Re: make([]float64, n), Im: make([]float64, n)}
}

// NewPtr allocates a slab and returns its address, for ScratchPool use
// (the pool wants a pointer type).
func NewPtr(n int) *Slab {
	s := New(n)
	return &s
}

// Len reports the element count.
func (s Slab) Len() int { return len(s.Re) }

// Row views elements [i*n, (i+1)*n) - band i of a band-major slab.
func (s Slab) Row(i, n int) Slab {
	return Slab{Re: s.Re[i*n : (i+1)*n], Im: s.Im[i*n : (i+1)*n]}
}

// Slice views elements [lo, hi).
func (s Slab) Slice(lo, hi int) Slab {
	return Slab{Re: s.Re[lo:hi], Im: s.Im[lo:hi]}
}

// Zero clears the slab.
func (s Slab) Zero() {
	for i := range s.Re {
		s.Re[i] = 0
	}
	for i := range s.Im {
		s.Im[i] = 0
	}
}

// Pack converts interleaved complex128 values into the slab (dst must have
// len(src) elements).
func Pack(dst Slab, src []complex128) {
	_ = dst.Re[len(src)-1]
	_ = dst.Im[len(src)-1]
	for i, v := range src {
		dst.Re[i] = real(v)
		dst.Im[i] = imag(v)
	}
}

// Unpack converts the slab back to interleaved complex128 values.
func Unpack(dst []complex128, src Slab) {
	re, im := src.Re, src.Im
	_ = re[len(dst)-1]
	_ = im[len(dst)-1]
	for i := range dst {
		dst[i] = complex(re[i], im[i])
	}
}

// UnpackAdd accumulates the slab into interleaved complex128 values.
func UnpackAdd(dst []complex128, src Slab) {
	re, im := src.Re, src.Im
	_ = re[len(dst)-1]
	_ = im[len(dst)-1]
	for i := range dst {
		dst[i] += complex(re[i], im[i])
	}
}

// Scale multiplies every element by the real factor a.
func Scale(s Slab, a float64) {
	re, im := s.Re, s.Im
	n := len(re)
	i := 0
	for ; i+Width <= n; i += Width {
		r := (*[Width]float64)(re[i:])
		m := (*[Width]float64)(im[i:])
		for l := 0; l < Width; l++ {
			r[l] *= a
			m[l] *= a
		}
	}
	for ; i < n; i++ {
		re[i] *= a
		im[i] *= a
	}
}

// PairConj forms the exchange pair density dst = conj(a) * b elementwise.
// This is the Alg. 2 gather product in SoA form: 4 multiplies per element
// with no interleave shuffles.
func PairConj(dst, a, b Slab) {
	n := len(dst.Re)
	_ = a.Re[n-1]
	_ = a.Im[n-1]
	_ = b.Re[n-1]
	_ = b.Im[n-1]
	i := 0
	for ; i+Width <= n; i += Width {
		ar := (*[Width]float64)(a.Re[i:])
		ai := (*[Width]float64)(a.Im[i:])
		br := (*[Width]float64)(b.Re[i:])
		bi := (*[Width]float64)(b.Im[i:])
		dr := (*[Width]float64)(dst.Re[i:])
		di := (*[Width]float64)(dst.Im[i:])
		for l := 0; l < Width; l++ {
			dr[l] = ar[l]*br[l] + ai[l]*bi[l]
			di[l] = ar[l]*bi[l] - ai[l]*br[l]
		}
	}
	for ; i < n; i++ {
		dst.Re[i] = a.Re[i]*b.Re[i] + a.Im[i]*b.Im[i]
		dst.Im[i] = a.Re[i]*b.Im[i] - a.Im[i]*b.Re[i]
	}
}

// MulAccum accumulates dst += s * a * b (complex elementwise product,
// uniform real scale) - the scatter side of the exchange contraction. The
// real scale saves half the multiplies of the complex128 formulation,
// where s rode along as a full complex factor.
func MulAccum(dst, a, b Slab, s float64) {
	n := len(dst.Re)
	_ = a.Re[n-1]
	_ = a.Im[n-1]
	_ = b.Re[n-1]
	_ = b.Im[n-1]
	i := 0
	for ; i+Width <= n; i += Width {
		ar := (*[Width]float64)(a.Re[i:])
		ai := (*[Width]float64)(a.Im[i:])
		br := (*[Width]float64)(b.Re[i:])
		bi := (*[Width]float64)(b.Im[i:])
		dr := (*[Width]float64)(dst.Re[i:])
		di := (*[Width]float64)(dst.Im[i:])
		for l := 0; l < Width; l++ {
			dr[l] += s * (ar[l]*br[l] - ai[l]*bi[l])
			di[l] += s * (ar[l]*bi[l] + ai[l]*br[l])
		}
	}
	for ; i < n; i++ {
		dst.Re[i] += s * (a.Re[i]*b.Re[i] - a.Im[i]*b.Im[i])
		dst.Im[i] += s * (a.Re[i]*b.Im[i] + a.Im[i]*b.Re[i])
	}
}

// MulConjAccum accumulates dst += s * a * conj(b) - the mirror side of the
// symmetric pair contraction.
func MulConjAccum(dst, a, b Slab, s float64) {
	n := len(dst.Re)
	_ = a.Re[n-1]
	_ = a.Im[n-1]
	_ = b.Re[n-1]
	_ = b.Im[n-1]
	i := 0
	for ; i+Width <= n; i += Width {
		ar := (*[Width]float64)(a.Re[i:])
		ai := (*[Width]float64)(a.Im[i:])
		br := (*[Width]float64)(b.Re[i:])
		bi := (*[Width]float64)(b.Im[i:])
		dr := (*[Width]float64)(dst.Re[i:])
		di := (*[Width]float64)(dst.Im[i:])
		for l := 0; l < Width; l++ {
			dr[l] += s * (ar[l]*br[l] + ai[l]*bi[l])
			di[l] += s * (ai[l]*br[l] - ar[l]*bi[l])
		}
	}
	for ; i < n; i++ {
		dst.Re[i] += s * (a.Re[i]*b.Re[i] + a.Im[i]*b.Im[i])
		dst.Im[i] += s * (a.Im[i]*b.Re[i] - a.Re[i]*b.Im[i])
	}
}

// Add accumulates dst += a elementwise.
func Add(dst, a Slab) {
	n := len(dst.Re)
	_ = a.Re[n-1]
	_ = a.Im[n-1]
	i := 0
	for ; i+Width <= n; i += Width {
		ar := (*[Width]float64)(a.Re[i:])
		ai := (*[Width]float64)(a.Im[i:])
		dr := (*[Width]float64)(dst.Re[i:])
		di := (*[Width]float64)(dst.Im[i:])
		for l := 0; l < Width; l++ {
			dr[l] += ar[l]
			di[l] += ai[l]
		}
	}
	for ; i < n; i++ {
		dst.Re[i] += a.Re[i]
		dst.Im[i] += a.Im[i]
	}
}

// DotRe returns sum_i Re(conj(a_i) b_i) = sum a.Re*b.Re + a.Im*b.Im - the
// inner product the exchange energy accumulates. Width partial sums
// accumulate per lane and fold once at the end (the cross-lane reduction of
// the SPMD discipline), which also fixes the summation order independent of
// how the loop is blocked.
func DotRe(a, b Slab) float64 {
	var acc [Width]float64
	n := len(a.Re)
	_ = b.Re[n-1]
	_ = b.Im[n-1]
	i := 0
	for ; i+Width <= n; i += Width {
		ar := (*[Width]float64)(a.Re[i:])
		ai := (*[Width]float64)(a.Im[i:])
		br := (*[Width]float64)(b.Re[i:])
		bi := (*[Width]float64)(b.Im[i:])
		for l := 0; l < Width; l++ {
			acc[l] += ar[l]*br[l] + ai[l]*bi[l]
		}
	}
	var tail float64
	for ; i < n; i++ {
		tail += a.Re[i]*b.Re[i] + a.Im[i]*b.Im[i]
	}
	return ReduceAdd(&acc) + tail
}

// ReduceAdd folds a per-lane accumulator to one scalar (tree order, so the
// result does not depend on Width beyond the fixed pairing).
func ReduceAdd(acc *[Width]float64) float64 {
	s01 := acc[0] + acc[1]
	s23 := acc[2] + acc[3]
	s45 := acc[4] + acc[5]
	s67 := acc[6] + acc[7]
	return (s01 + s23) + (s45 + s67)
}
