package scf

import (
	"math"
	"testing"

	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/lattice"
	"ptdft/internal/linalg"
	"ptdft/internal/potential"
	"ptdft/internal/pseudo"
	"ptdft/internal/wavefunc"
	"ptdft/internal/xc"
)

func siSetup(ecut float64, hybrid bool) (*grid.Grid, *hamiltonian.Hamiltonian) {
	g := grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), ecut)
	h := hamiltonian.New(g, map[int]*pseudo.Potential{0: pseudo.SiliconAH()},
		hamiltonian.Config{Hybrid: hybrid, Params: xc.HSE06()})
	return g, h
}

func TestGroundStateConvergesLDA(t *testing.T) {
	g, h := siSetup(3, false)
	nb := g.Cell.NumBands() // 16 for Si8
	opt := Defaults()
	opt.TolDensity = 1e-6
	res, err := GroundState(g, h, nb, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("SCF did not converge: density error %g after %d iterations", res.DensityError, res.SCFIterations)
	}
	if e := wavefunc.OrthonormalityError(res.Psi, nb, g.NG); e > 1e-8 {
		t.Errorf("ground state not orthonormal: %g", e)
	}
	if n := potential.IntegrateDensity(g, res.Rho); math.Abs(n-32) > 1e-6 {
		t.Errorf("density integrates to %g, want 32", n)
	}
	if res.Energy.Total() >= 0 {
		t.Errorf("total energy %g, want negative (bound crystal)", res.Energy.Total())
	}
}

func TestGroundStateEigenResiduals(t *testing.T) {
	g, h := siSetup(3, false)
	nb := g.Cell.NumBands()
	res, err := GroundState(g, h, nb, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	ng := g.NG
	hp := make([]complex128, nb*ng)
	h.Apply(hp, res.Psi, nb)
	for j := 0; j < nb; j++ {
		p := res.Psi[j*ng : (j+1)*ng]
		hpj := hp[j*ng : (j+1)*ng]
		theta := real(linalg.Dot(p, hpj))
		var rn float64
		for s := 0; s < ng; s++ {
			d := hpj[s] - complex(theta, 0)*p[s]
			rn += real(d)*real(d) + imag(d)*imag(d)
		}
		rn = math.Sqrt(rn)
		if rn > 5e-2 {
			t.Errorf("band %d eigen-residual %g too large", j, rn)
		}
	}
}

func TestGroundStateBandEnergiesOrderedAfterSort(t *testing.T) {
	g, h := siSetup(3, false)
	nb := g.Cell.NumBands()
	res, err := GroundState(g, h, nb, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	// The Ritz values should come out (weakly) ascending.
	for j := 1; j < nb; j++ {
		if res.BandEnergies[j] < res.BandEnergies[j-1]-1e-6 {
			t.Errorf("band energies not ascending at %d: %g < %g", j, res.BandEnergies[j], res.BandEnergies[j-1])
		}
	}
	_ = g
}

func TestGroundStateHybridConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("hybrid ground state is slow")
	}
	g, h := siSetup(3, true)
	nb := g.Cell.NumBands()
	opt := Defaults()
	opt.MaxSCF = 40
	opt.HybridOuter = 3
	opt.TolDensity = 1e-6
	res, err := GroundState(g, h, nb, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("hybrid SCF did not converge: density error %g", res.DensityError)
	}
	if res.Energy.Exchange >= 0 {
		t.Errorf("exchange energy %g, want negative", res.Energy.Exchange)
	}
}

func TestGapComputation(t *testing.T) {
	bands := []float64{-0.5, -0.4, -0.1, 0.2}
	gap, err := Gap(bands, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gap-0.3) > 1e-12 {
		t.Errorf("gap = %g, want 0.3", gap)
	}
	if _, err := Gap(bands, 4); err == nil {
		t.Error("expected error when all bands occupied")
	}
	if _, err := Gap(bands, 0); err == nil {
		t.Error("expected error for zero occupation")
	}
}

func TestTeterPreconditioner(t *testing.T) {
	// ~1 at x=0, decaying beyond; monotone in between.
	if math.Abs(teter(0)-1) > 1e-12 {
		t.Errorf("teter(0) = %g, want 1", teter(0))
	}
	if teter(10) > 0.1 {
		t.Errorf("teter(10) = %g, want small", teter(10))
	}
	prev := teter(0)
	for x := 0.1; x < 20; x += 0.1 {
		v := teter(x)
		if v > prev+1e-12 {
			t.Fatalf("teter not monotone at %g", x)
		}
		prev = v
	}
}

func TestGroundStateRejectsZeroBands(t *testing.T) {
	g, h := siSetup(3, false)
	if _, err := GroundState(g, h, 0, Defaults()); err == nil {
		t.Error("expected error for nb=0")
	}
}
