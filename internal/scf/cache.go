// Ground-state caching: a content-hash fingerprint of the SCF problem and
// a singleflight cache over it, so repeated submissions of the same system
// (the job server's dominant ensemble workload) skip the most expensive
// phase of a short trajectory entirely. Two specs with equal fingerprints
// converge to the bit-identical ground state: the solve is deterministic
// in (cell, grid, functional, band count, seed), so a cache hit changes
// nothing downstream.
package scf

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"

	"ptdft/internal/lattice"
)

// Fingerprint returns a content hash identifying a ground-state problem:
// the cell geometry (edge lengths, species table, atom positions), the
// wavefunction grid (via the energy cutoff - the sphere and FFT box are
// functions of cell and cutoff), the functional name, the band count, and
// the starting-guess seed. Everything that can change the converged
// orbitals must be in the hash; nothing else should be, or equal systems
// stop deduplicating.
func Fingerprint(cell *lattice.Cell, ecut float64, functional string, nb int, seed int64) string {
	h := sha256.New()
	w := func(v uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(v float64) { w(math.Float64bits(v)) }
	for _, l := range cell.L {
		wf(l)
	}
	w(uint64(len(cell.Species)))
	for _, sp := range cell.Species {
		h.Write([]byte(sp.Symbol))
		h.Write([]byte{0})
		wf(sp.Zval)
		wf(sp.MassAMU)
	}
	w(uint64(len(cell.Atoms)))
	for _, a := range cell.Atoms {
		w(uint64(a.Species))
		for _, p := range a.Pos {
			wf(p)
		}
	}
	wf(ecut)
	h.Write([]byte(functional))
	h.Write([]byte{0})
	w(uint64(nb))
	w(uint64(seed))
	return hex.EncodeToString(h.Sum(nil))
}

// DefaultCacheCap bounds the cache to this many retained ground states
// unless the caller picks its own bound. Each entry pins a complete
// orbital set, so a long-lived daemon must not let distinct submissions
// grow the cache without limit.
const DefaultCacheCap = 16

// Cache deduplicates ground-state solves by fingerprint with singleflight
// semantics: concurrent requests for the same key block on one solve
// instead of each running their own, and later requests reuse the stored
// result. Failed solves are not cached (a retry rebuilds). The cache is
// bounded: past the cap, the least-recently-used completed entry is
// evicted (in-flight solves are never dropped - their waiters hold them).
// The stored Result is shared between callers and must be treated as
// read-only - every propagation driver clones the orbitals before
// mutating them.
type Cache struct {
	mu      sync.Mutex
	cap     int
	tick    int64
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	done    chan struct{} // closed when the solve finished
	res     *Result
	err     error
	lastUse int64 // LRU clock at the most recent lookup
}

// NewCache returns an empty ground-state cache holding at most
// DefaultCacheCap entries.
func NewCache() *Cache {
	return NewCacheCap(DefaultCacheCap)
}

// NewCacheCap returns an empty cache bounded to max retained entries;
// max <= 0 means unbounded.
func NewCacheCap(max int) *Cache {
	return &Cache{cap: max, entries: make(map[string]*cacheEntry)}
}

// GroundState returns the cached result for key, or runs solve to build
// it. hit reports whether this caller reused work (a stored result or
// another caller's in-flight solve) rather than computing the ground
// state itself.
func (c *Cache) GroundState(key string, solve func() (*Result, error)) (res *Result, hit bool, err error) {
	c.mu.Lock()
	c.tick++
	if e, ok := c.entries[key]; ok {
		e.lastUse = c.tick
		c.mu.Unlock()
		<-e.done
		if e.err != nil {
			return nil, true, e.err
		}
		return e.res, true, nil
	}
	e := &cacheEntry{done: make(chan struct{}), lastUse: c.tick}
	c.entries[key] = e
	c.evictLocked()
	c.mu.Unlock()

	e.res, e.err = solve()
	if e.err != nil {
		// Do not cache failures: the next submission retries the solve.
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.done)
	return e.res, false, e.err
}

// evictLocked drops least-recently-used completed entries until the cache
// fits its cap. Called with c.mu held. In-flight entries are skipped: a
// waiter blocked on one must still receive the result, and evicting the
// builder's map slot would let a concurrent lookup start a duplicate
// solve.
func (c *Cache) evictLocked() {
	for c.cap > 0 && len(c.entries) > c.cap {
		victim := ""
		var oldest int64
		for k, e := range c.entries {
			select {
			case <-e.done:
			default:
				continue // in-flight
			}
			if victim == "" || e.lastUse < oldest {
				victim, oldest = k, e.lastUse
			}
		}
		if victim == "" {
			return // everything is in flight; allow the overshoot
		}
		delete(c.entries, victim)
	}
}

// Len reports the number of completed or in-flight entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
