package scf

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ptdft/internal/hamiltonian"
	"ptdft/internal/lattice"
)

// TestCacheSingleflight: concurrent requests for one key run the solve
// exactly once; every caller but the builder reports a hit. (Run under
// -race in CI.)
func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	var solves atomic.Int64
	res := &Result{Energy: hamiltonian.EnergyBreakdown{Kinetic: 42}}
	const callers = 16
	var wg sync.WaitGroup
	hits := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, hit, err := c.GroundState("k", func() (*Result, error) {
				solves.Add(1)
				return res, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			if got != res {
				t.Errorf("caller %d got a different result object", i)
			}
			hits[i] = hit
		}(i)
	}
	wg.Wait()
	if n := solves.Load(); n != 1 {
		t.Fatalf("solve ran %d times, want 1", n)
	}
	nhit := 0
	for _, h := range hits {
		if h {
			nhit++
		}
	}
	if nhit != callers-1 {
		t.Errorf("%d of %d callers reported a hit, want %d (all but the builder)", nhit, callers, callers-1)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}

// TestCacheErrorNotCached: a failed solve is retried by the next caller
// instead of being served from the cache.
func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache()
	calls := 0
	_, _, err := c.GroundState("k", func() (*Result, error) {
		calls++
		return nil, fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
	res := &Result{}
	got, hit, err := c.GroundState("k", func() (*Result, error) {
		calls++
		return res, nil
	})
	if err != nil || got != res || hit {
		t.Fatalf("retry after failure: res=%v hit=%v err=%v", got == res, hit, err)
	}
	if calls != 2 {
		t.Fatalf("solve ran %d times, want 2", calls)
	}
}

// TestCacheEviction: the cache is bounded - past the cap the
// least-recently-used completed entry is dropped, so a long-lived daemon
// cannot pin an unbounded number of orbital sets. Recently-used entries
// survive; the evicted key re-solves on the next request.
func TestCacheEviction(t *testing.T) {
	c := NewCacheCap(2)
	solves := map[string]int{}
	get := func(key string) bool {
		_, hit, err := c.GroundState(key, func() (*Result, error) {
			solves[key]++
			return &Result{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}
	get("a")
	get("b")
	get("a") // refresh a: b is now the LRU entry
	get("c") // over cap: evicts b
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2 (the cap)", c.Len())
	}
	if !get("a") {
		t.Error("recently-used entry was evicted")
	}
	if get("b") {
		t.Error("LRU entry was not evicted")
	}
	if solves["a"] != 1 || solves["b"] != 2 || solves["c"] != 1 {
		t.Errorf("solve counts %v, want a:1 b:2 c:1", solves)
	}
	// Unbounded cache (cap <= 0) never evicts.
	u := NewCacheCap(0)
	for _, k := range []string{"a", "b", "c", "d"} {
		u.GroundState(k, func() (*Result, error) { return &Result{}, nil })
	}
	if u.Len() != 4 {
		t.Errorf("unbounded cache holds %d entries, want 4", u.Len())
	}
}

// TestFingerprintSensitivity: the fingerprint must change when any field
// that can change the converged orbitals changes, and must not change
// otherwise.
func TestFingerprintSensitivity(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	base := Fingerprint(cell, 4, "lda", 16, 1234)
	if base != Fingerprint(lattice.MustSiliconSupercell(1, 1, 1), 4, "lda", 16, 1234) {
		t.Fatal("equal problems produced different fingerprints")
	}
	if base == Fingerprint(cell, 4.5, "lda", 16, 1234) {
		t.Error("ecut change did not change the fingerprint")
	}
	if base == Fingerprint(cell, 4, "hse06", 16, 1234) {
		t.Error("functional change did not change the fingerprint")
	}
	if base == Fingerprint(cell, 4, "lda", 17, 1234) {
		t.Error("band-count change did not change the fingerprint")
	}
	if base == Fingerprint(cell, 4, "lda", 16, 1235) {
		t.Error("seed change did not change the fingerprint")
	}
	if base == Fingerprint(lattice.MustSiliconSupercell(1, 1, 2), 4, "lda", 16, 1234) {
		t.Error("cell change did not change the fingerprint")
	}
	moved := lattice.MustSiliconSupercell(1, 1, 1)
	if err := moved.DisplaceAtom(0, [3]float64{0.1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if base == Fingerprint(moved, 4, "lda", 16, 1234) {
		t.Error("atom displacement did not change the fingerprint")
	}
}
