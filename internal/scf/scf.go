// Package scf computes the ground state that seeds the rt-TDDFT
// propagation: a blocked, preconditioned eigensolver (LOBPCG-style
// two-block subspace iteration with the Teter-Payne-Allan preconditioner)
// wrapped in a density self-consistency loop with Anderson mixing, plus an
// outer fixed-point loop over the Fock exchange operator for hybrid
// functionals (the standard nested-SCF structure of hybrid DFT).
package scf

import (
	"errors"
	"fmt"
	"math"

	"ptdft/internal/grid"
	"ptdft/internal/hamiltonian"
	"ptdft/internal/linalg"
	"ptdft/internal/mixing"
	"ptdft/internal/parallel"
	"ptdft/internal/potential"
	"ptdft/internal/wavefunc"
)

// Options control the ground-state solve.
type Options struct {
	MaxSCF      int     // density SCF iterations per Fock phase
	TolDensity  float64 // density convergence (per electron)
	EigIters    int     // eigensolver steps per SCF iteration
	MixHistory  int     // Anderson history for density mixing
	MixBeta     float64 // Anderson relaxation
	HybridOuter int     // Fock operator refresh cycles (hybrid only)
	Seed        int64   // initial wavefunction seed
	Logf        func(format string, args ...any)
}

// Defaults returns options adequate for the laptop-scale test systems.
func Defaults() Options {
	return Options{
		MaxSCF:      60,
		TolDensity:  1e-7,
		EigIters:    4,
		MixHistory:  10,
		MixBeta:     0.5,
		HybridOuter: 4,
		Seed:        1234,
	}
}

// Result is the converged ground state.
type Result struct {
	Psi           []complex128 // band-major sphere coefficients
	Rho           []float64    // dense-grid density
	BandEnergies  []float64
	Energy        hamiltonian.EnergyBreakdown
	SCFIterations int
	Converged     bool
	DensityError  float64
}

// GroundState solves for the nb lowest orbitals of the self-consistent
// Hamiltonian. For hybrid Hamiltonians it first converges the semi-local
// problem, then alternates Fock-operator refreshes with density SCF.
func GroundState(g *grid.Grid, h *hamiltonian.Hamiltonian, nb int, opt Options) (*Result, error) {
	if nb < 1 {
		return nil, errors.New("scf: need at least one band")
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	occ := 2.0
	nelec := occ * float64(nb)
	psi := wavefunc.Random(g, nb, opt.Seed)
	rho := potential.Density(g, psi, nb, occ)
	h.UpdatePotential(rho)

	res := &Result{Psi: psi}
	phases := 1
	if h.Hybrid() {
		phases = 1 + opt.HybridOuter
		// A self-consistency solve owns the exchange refresh schedule: a
		// frozen hold left by a previous MTS propagation on this
		// Hamiltonian would silently no-op the phase refreshes below.
		h.ReleaseFockHold()
	}
	totalIter := 0
	for phase := 0; phase < phases; phase++ {
		if phase > 0 {
			// Refresh the Fock reference orbitals and re-converge.
			h.SetFockOrbitals(psi, nb)
			logf("scf: hybrid phase %d/%d", phase, phases-1)
		}
		mixer := mixing.NewRealMixer(opt.MixHistory, opt.MixBeta)
		converged := false
		iters := opt.MaxSCF
		if phase > 0 {
			// Later phases start close to the fixed point.
			iters = opt.MaxSCF/2 + 1
		}
		var lastErr float64
		for it := 0; it < iters; it++ {
			for e := 0; e < opt.EigIters; e++ {
				var err error
				psi, err = eigStep(g, h, psi, nb)
				if err != nil {
					return nil, fmt.Errorf("scf: eigensolver failed at iteration %d: %w", it, err)
				}
			}
			rhoOut := potential.Density(g, psi, nb, occ)
			lastErr = potential.DensityDiff(g, rhoOut, rho, nelec)
			totalIter++
			logf("scf: phase %d iter %d density error %.3e", phase, it, lastErr)
			if lastErr < opt.TolDensity {
				converged = true
				rho = rhoOut
				h.UpdatePotential(rho)
				break
			}
			f := make([]float64, len(rho))
			for i := range f {
				f[i] = rhoOut[i] - rho[i]
			}
			rho = sanitizeDensity(g, mixer.Mix(rho, f), nelec)
			h.UpdatePotential(rho)
		}
		res.Converged = converged
		res.DensityError = lastErr
	}
	res.Psi = psi
	res.Rho = rho
	res.SCFIterations = totalIter
	res.BandEnergies = h.BandEnergies(psi, nb)
	res.Energy = h.TotalEnergy(psi, nb, occ)
	return res, nil
}

// DiagonalizeFixed solves for the nb lowest eigenpairs of the Hamiltonian
// with its current (frozen) potential: the non-self-consistent band
// evaluation used for band structures at arbitrary k-points (set via
// h.SetBloch) once the Gamma-point density has been converged.
func DiagonalizeFixed(g *grid.Grid, h *hamiltonian.Hamiltonian, nb, iters int, seed int64) ([]float64, []complex128, error) {
	if nb < 1 {
		return nil, nil, errors.New("scf: need at least one band")
	}
	psi := wavefunc.Random(g, nb, seed)
	var err error
	for i := 0; i < iters; i++ {
		psi, err = eigStep(g, h, psi, nb)
		if err != nil {
			return nil, nil, err
		}
	}
	return h.BandEnergies(psi, nb), psi, nil
}

// sanitizeDensity clips negative regions introduced by the mixer and
// rescales to the exact electron count.
func sanitizeDensity(g *grid.Grid, rho []float64, nelec float64) []float64 {
	for i := range rho {
		if rho[i] < 0 {
			rho[i] = 0
		}
	}
	n := potential.IntegrateDensity(g, rho)
	if n > 0 {
		s := nelec / n
		for i := range rho {
			rho[i] *= s
		}
	}
	return rho
}

// eigStep performs one two-block LOBPCG-style update: expand the subspace
// with Teter-preconditioned residuals, solve the 2nb x 2nb projected
// generalized eigenproblem, and keep the lowest nb Ritz vectors.
func eigStep(g *grid.Grid, h *hamiltonian.Hamiltonian, psi []complex128, nb int) ([]complex128, error) {
	ng := g.NG
	hp := make([]complex128, nb*ng)
	h.Apply(hp, psi, nb)

	// Rayleigh quotients and preconditioned residuals.
	w := make([]complex128, nb*ng)
	parallel.For(nb, func(j int) {
		p := psi[j*ng : (j+1)*ng]
		hpj := hp[j*ng : (j+1)*ng]
		theta := real(linalg.Dot(p, hpj))
		ekin := h.KineticEnergyBand(p)
		if ekin < 1e-8 {
			ekin = 1e-8
		}
		wj := w[j*ng : (j+1)*ng]
		for s := 0; s < ng; s++ {
			r := hpj[s] - complex(theta, 0)*p[s]
			wj[s] = complex(teter(h.KineticFactor(s)/ekin), 0) * r
		}
	})

	// Build the expanded basis [psi | w] and the projected matrices.
	m := 2 * nb
	basis := make([]complex128, m*ng)
	copy(basis[:nb*ng], psi)
	copy(basis[nb*ng:], w)
	hw := make([]complex128, nb*ng)
	h.Apply(hw, w, nb)
	hbasis := make([]complex128, m*ng)
	copy(hbasis[:nb*ng], hp)
	copy(hbasis[nb*ng:], hw)

	a := make([]complex128, m*m)
	b := make([]complex128, m*m)
	linalg.Overlap(a, basis, hbasis, m, m, ng)
	linalg.Overlap(b, basis, basis, m, m, ng)
	hermitize(a, m)
	hermitize(b, m)

	_, vecs, err := linalg.GenEigChol(a, b, m)
	if err != nil {
		// Degenerate expansion (residuals collinear with psi near
		// convergence): orthonormalize the basis and retry with B = I.
		if err2 := wavefunc.Orthonormalize(basis, m, ng); err2 != nil {
			// Last resort: keep psi unchanged this step.
			return psi, nil
		}
		h.Apply(hbasis[:nb*ng], basis[:nb*ng], nb)
		h.Apply(hbasis[nb*ng:], basis[nb*ng:], nb)
		linalg.Overlap(a, basis, hbasis, m, m, ng)
		hermitize(a, m)
		_, vecs, err = linalg.HermEig(a, m)
		if err != nil {
			return nil, err
		}
	}
	// Rotate onto the lowest nb Ritz vectors: u[i*nb+j] = vecs[i*m+j].
	u := make([]complex128, m*nb)
	for i := 0; i < m; i++ {
		copy(u[i*nb:(i+1)*nb], vecs[i*m:i*m+nb])
	}
	out := make([]complex128, nb*ng)
	linalg.ApplyMatrix(out, basis, u, nb, m, ng)
	if err := wavefunc.Orthonormalize(out, nb, ng); err != nil {
		return nil, err
	}
	return out, nil
}

// hermitize symmetrizes numerical noise: a <- (a + a^H)/2.
func hermitize(a []complex128, n int) {
	for i := 0; i < n; i++ {
		a[i*n+i] = complex(real(a[i*n+i]), 0)
		for j := i + 1; j < n; j++ {
			v := (a[i*n+j] + conj(a[j*n+i])) / 2
			a[i*n+j] = v
			a[j*n+i] = conj(v)
		}
	}
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// teter is the Teter-Payne-Allan preconditioner profile: ~1 for low kinetic
// energy components, ~x^-4 decay for high ones.
func teter(x float64) float64 {
	x2 := x * x
	num := 27 + 18*x + 12*x2 + 8*x2*x
	return num / (num + 16*x2*x2)
}

// Gap returns the HOMO-LUMO gap estimate from a band-energy list with nocc
// occupied orbitals; requires len(bands) > nocc.
func Gap(bands []float64, nocc int) (float64, error) {
	if nocc <= 0 || nocc >= len(bands) {
		return 0, fmt.Errorf("scf: cannot compute gap with %d occupied of %d bands", nocc, len(bands))
	}
	sorted := append([]float64(nil), bands...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	gap := sorted[nocc] - sorted[nocc-1]
	if math.IsNaN(gap) {
		return 0, errors.New("scf: NaN band energies")
	}
	return gap, nil
}
