// Package lattice describes orthorhombic periodic supercells and builds the
// silicon test systems of the paper (section 4): diamond-structure
// supercells assembled from the 8-atom simple-cubic unit cell with lattice
// constant 5.43 Angstrom, from Si8 up to Si1536 (4 x 6 x 8 unit cells).
package lattice

import (
	"fmt"
	"math"

	"ptdft/internal/units"
)

// Species identifies an atomic species and its pseudopotential-relevant
// parameters.
type Species struct {
	Symbol  string
	Zval    float64 // valence charge seen by the pseudopotential
	MassAMU float64 // ion mass in atomic mass units (0 = unknown; ion dynamics rejects it)
}

// Atom is an atom at a Cartesian position (Bohr) inside the cell.
type Atom struct {
	Species int // index into Cell.Species
	Pos     [3]float64
}

// Cell is an orthorhombic periodic supercell.
type Cell struct {
	L       [3]float64 // box edge lengths in Bohr
	Species []Species
	Atoms   []Atom
}

// NewCell creates an empty cell with the given edge lengths (Bohr).
func NewCell(lx, ly, lz float64) (*Cell, error) {
	if lx <= 0 || ly <= 0 || lz <= 0 {
		return nil, fmt.Errorf("lattice: non-positive cell edge (%g, %g, %g)", lx, ly, lz)
	}
	return &Cell{L: [3]float64{lx, ly, lz}}, nil
}

// Volume returns the cell volume in Bohr^3.
func (c *Cell) Volume() float64 { return c.L[0] * c.L[1] * c.L[2] }

// NumAtoms returns the number of atoms in the cell.
func (c *Cell) NumAtoms() int { return len(c.Atoms) }

// NumElectrons returns the total number of valence electrons.
func (c *Cell) NumElectrons() float64 {
	var n float64
	for _, a := range c.Atoms {
		n += c.Species[a.Species].Zval
	}
	return n
}

// NumBands returns the number of doubly-occupied orbitals for a
// spin-restricted insulator: Nelec/2. The paper's Si1536 system has 6144
// valence electrons and therefore 3072 orbitals.
func (c *Cell) NumBands() int {
	ne := c.NumElectrons()
	nb := int(ne / 2)
	if float64(2*nb) != ne {
		nb++ // odd electron counts get one extra (partially filled) band
	}
	return nb
}

// Wrap maps a Cartesian position into the home cell [0, L).
func (c *Cell) Wrap(p [3]float64) [3]float64 {
	for d := 0; d < 3; d++ {
		for p[d] < 0 {
			p[d] += c.L[d]
		}
		for p[d] >= c.L[d] {
			p[d] -= c.L[d]
		}
	}
	return p
}

// diamondBasis lists the 8 fractional positions of the conventional
// diamond-structure cubic cell (FCC lattice + 2-atom basis).
var diamondBasis = [8][3]float64{
	{0, 0, 0}, {0, 0.5, 0.5}, {0.5, 0, 0.5}, {0.5, 0.5, 0},
	{0.25, 0.25, 0.25}, {0.25, 0.75, 0.75}, {0.75, 0.25, 0.75}, {0.75, 0.75, 0.25},
}

// SiliconSupercell builds an nx x ny x nz supercell of the 8-atom diamond
// cubic silicon cell. The paper's systems range from Si48 to Si1536
// (4 x 6 x 8). The returned cell has one species (Si, Zval = 4).
func SiliconSupercell(nx, ny, nz int) (*Cell, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("lattice: invalid supercell %dx%dx%d", nx, ny, nz)
	}
	a := units.SiliconLatticeAngstrom * units.BohrPerAngstrom
	cell, err := NewCell(float64(nx)*a, float64(ny)*a, float64(nz)*a)
	if err != nil {
		return nil, err
	}
	cell.Species = []Species{{Symbol: "Si", Zval: 4, MassAMU: units.SiliconMassAMU}}
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				for _, b := range diamondBasis {
					cell.Atoms = append(cell.Atoms, Atom{
						Species: 0,
						Pos: [3]float64{
							(float64(ix) + b[0]) * a,
							(float64(iy) + b[1]) * a,
							(float64(iz) + b[2]) * a,
						},
					})
				}
			}
		}
	}
	return cell, nil
}

// MustSiliconSupercell is SiliconSupercell that panics on error.
func MustSiliconSupercell(nx, ny, nz int) *Cell {
	c, err := SiliconSupercell(nx, ny, nz)
	if err != nil {
		panic(err)
	}
	return c
}

// Clone returns a deep copy of the cell. Ion-dynamics ranks each clone the
// shared cell so concurrent position updates never touch shared memory.
func (c *Cell) Clone() *Cell {
	out := &Cell{L: c.L}
	out.Species = append([]Species(nil), c.Species...)
	out.Atoms = append([]Atom(nil), c.Atoms...)
	return out
}

// MinimumImage returns the minimum-image separation vector b - a in the
// periodic cell and its length.
func (c *Cell) MinimumImage(a, b [3]float64) ([3]float64, float64) {
	var d [3]float64
	var r2 float64
	for k := 0; k < 3; k++ {
		dd := b[k] - a[k]
		dd -= c.L[k] * math.Round(dd/c.L[k])
		d[k] = dd
		r2 += dd * dd
	}
	return d, math.Sqrt(r2)
}

// DisplaceAtom moves atom i by the Cartesian vector d (Bohr), wrapping the
// result into the home cell.
func (c *Cell) DisplaceAtom(i int, d [3]float64) error {
	if i < 0 || i >= len(c.Atoms) {
		return fmt.Errorf("lattice: atom index %d outside [0, %d)", i, len(c.Atoms))
	}
	p := c.Atoms[i].Pos
	for k := 0; k < 3; k++ {
		p[k] += d[k]
	}
	c.Atoms[i].Pos = c.Wrap(p)
	return nil
}

// Positions returns a copy of all atom positions in atom order.
func (c *Cell) Positions() [][3]float64 {
	pos := make([][3]float64, len(c.Atoms))
	for i, a := range c.Atoms {
		pos[i] = a.Pos
	}
	return pos
}

// SetPositions installs new atom positions (wrapped into the home cell),
// keeping species assignments. The ion integrator writes the advanced
// geometry through this before the operators are rebuilt.
func (c *Cell) SetPositions(pos [][3]float64) error {
	if len(pos) != len(c.Atoms) {
		return fmt.Errorf("lattice: %d positions for %d atoms", len(pos), len(c.Atoms))
	}
	for i, p := range pos {
		c.Atoms[i].Pos = c.Wrap(p)
	}
	return nil
}

// Masses returns the per-atom ion masses in atomic units (electron
// masses), or an error if any species has no mass assigned.
func (c *Cell) Masses() ([]float64, error) {
	m := make([]float64, len(c.Atoms))
	for i, a := range c.Atoms {
		amu := c.Species[a.Species].MassAMU
		if amu <= 0 {
			return nil, fmt.Errorf("lattice: species %q has no mass; ion dynamics needs MassAMU", c.Species[a.Species].Symbol)
		}
		m[i] = amu * units.ElectronMassPerAMU
	}
	return m, nil
}
