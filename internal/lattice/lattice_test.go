package lattice

import (
	"math"
	"testing"

	"ptdft/internal/units"
)

func TestSiliconSupercellCounts(t *testing.T) {
	cases := []struct {
		nx, ny, nz, atoms int
	}{
		{1, 1, 1, 8},
		{1, 1, 3, 24},
		{2, 1, 3, 48},   // paper's smallest test system
		{4, 6, 8, 1536}, // paper's largest
	}
	for _, c := range cases {
		cell, err := SiliconSupercell(c.nx, c.ny, c.nz)
		if err != nil {
			t.Fatal(err)
		}
		if got := cell.NumAtoms(); got != c.atoms {
			t.Errorf("%dx%dx%d: %d atoms, want %d", c.nx, c.ny, c.nz, got, c.atoms)
		}
		if got := cell.NumBands(); got != 2*c.atoms {
			t.Errorf("%dx%dx%d: %d bands, want %d", c.nx, c.ny, c.nz, got, 2*c.atoms)
		}
		if got := cell.NumElectrons(); got != float64(4*c.atoms) {
			t.Errorf("%dx%dx%d: %g electrons, want %d", c.nx, c.ny, c.nz, got, 4*c.atoms)
		}
	}
}

func TestSiliconLatticeConstant(t *testing.T) {
	cell := MustSiliconSupercell(1, 1, 1)
	a := units.SiliconLatticeAngstrom * units.BohrPerAngstrom
	for d := 0; d < 3; d++ {
		if math.Abs(cell.L[d]-a) > 1e-12 {
			t.Errorf("edge %d = %g, want %g (5.43 Angstrom)", d, cell.L[d], a)
		}
	}
	if math.Abs(a-10.2612) > 1e-3 {
		t.Errorf("5.43 Angstrom = %g bohr, expected ~10.2612", a)
	}
}

func TestAtomsInsideCell(t *testing.T) {
	cell := MustSiliconSupercell(2, 3, 1)
	for i, at := range cell.Atoms {
		for d := 0; d < 3; d++ {
			if at.Pos[d] < 0 || at.Pos[d] >= cell.L[d] {
				t.Fatalf("atom %d outside cell: %v", i, at.Pos)
			}
		}
	}
}

func TestAtomsDistinct(t *testing.T) {
	cell := MustSiliconSupercell(1, 1, 2)
	seen := map[[3]int]bool{}
	for _, at := range cell.Atoms {
		key := [3]int{int(at.Pos[0] * 1e6), int(at.Pos[1] * 1e6), int(at.Pos[2] * 1e6)}
		if seen[key] {
			t.Fatalf("duplicate atom at %v", at.Pos)
		}
		seen[key] = true
	}
}

func TestNearestNeighborDistance(t *testing.T) {
	// Diamond structure: nearest neighbor at a*sqrt(3)/4 = 2.35 Angstrom.
	cell := MustSiliconSupercell(1, 1, 1)
	a := cell.L[0]
	want := a * math.Sqrt(3) / 4
	min := math.Inf(1)
	for i := 0; i < len(cell.Atoms); i++ {
		for j := i + 1; j < len(cell.Atoms); j++ {
			var d2 float64
			for d := 0; d < 3; d++ {
				dd := cell.Atoms[i].Pos[d] - cell.Atoms[j].Pos[d]
				dd -= cell.L[d] * math.Round(dd/cell.L[d])
				d2 += dd * dd
			}
			if d := math.Sqrt(d2); d < min {
				min = d
			}
		}
	}
	if math.Abs(min-want) > 1e-9 {
		t.Errorf("nearest neighbor %g, want %g", min, want)
	}
}

func TestVolume(t *testing.T) {
	cell := MustSiliconSupercell(2, 3, 4)
	a := units.SiliconLatticeAngstrom * units.BohrPerAngstrom
	want := 24 * a * a * a
	if math.Abs(cell.Volume()-want) > 1e-6 {
		t.Errorf("volume %g, want %g", cell.Volume(), want)
	}
}

func TestWrap(t *testing.T) {
	cell := MustSiliconSupercell(1, 1, 1)
	l := cell.L[0]
	p := cell.Wrap([3]float64{-1, l + 2, 0.5 * l})
	if p[0] < 0 || p[0] >= l || p[1] < 0 || p[1] >= l {
		t.Errorf("wrap failed: %v", p)
	}
	if math.Abs(p[0]-(l-1)) > 1e-12 || math.Abs(p[1]-2) > 1e-12 {
		t.Errorf("wrap values wrong: %v", p)
	}
}

func TestNewCellRejectsBadEdges(t *testing.T) {
	if _, err := NewCell(0, 1, 1); err == nil {
		t.Error("expected error for zero edge")
	}
	if _, err := SiliconSupercell(0, 1, 1); err == nil {
		t.Error("expected error for zero supercell")
	}
}

// TestCloneIsDeep: mutating a clone's atoms or species must not touch the
// original - the distributed ion ranks rely on this isolation.
func TestCloneIsDeep(t *testing.T) {
	cell := MustSiliconSupercell(1, 1, 1)
	clone := cell.Clone()
	if err := clone.DisplaceAtom(0, [3]float64{0.5, 0, 0}); err != nil {
		t.Fatal(err)
	}
	clone.Species[0].MassAMU = 1
	if cell.Atoms[0].Pos != (MustSiliconSupercell(1, 1, 1).Atoms[0].Pos) {
		t.Error("clone displacement leaked into the original cell")
	}
	if cell.Species[0].MassAMU == 1 {
		t.Error("clone species edit leaked into the original cell")
	}
	if clone.Volume() != cell.Volume() || clone.NumAtoms() != cell.NumAtoms() {
		t.Error("clone lost cell invariants")
	}
}

// TestDisplaceAtomPreservesInvariants: displacing one atom keeps every
// cell invariant - counts, volume, electron count, positions in the home
// cell - and moves exactly the requested atom by exactly the requested
// minimum-image offset.
func TestDisplaceAtomPreservesInvariants(t *testing.T) {
	cell := MustSiliconSupercell(1, 1, 1)
	ref := cell.Clone()
	d := [3]float64{0.3, -0.2, 11.0} // the z component wraps around the cell
	if err := cell.DisplaceAtom(3, d); err != nil {
		t.Fatal(err)
	}
	if cell.NumAtoms() != ref.NumAtoms() || cell.NumElectrons() != ref.NumElectrons() ||
		cell.NumBands() != ref.NumBands() || cell.Volume() != ref.Volume() {
		t.Error("displacement changed a cell invariant")
	}
	for i, at := range cell.Atoms {
		for k := 0; k < 3; k++ {
			if at.Pos[k] < 0 || at.Pos[k] >= cell.L[k] {
				t.Errorf("atom %d outside home cell after displacement: %v", i, at.Pos)
			}
		}
		if i != 3 && at.Pos != ref.Atoms[i].Pos {
			t.Errorf("displacement of atom 3 moved atom %d", i)
		}
	}
	// The minimum-image separation from the original site equals the
	// wrapped displacement.
	mi, dist := cell.MinimumImage(ref.Atoms[3].Pos, cell.Atoms[3].Pos)
	want := [3]float64{0.3, -0.2, 11.0 - cell.L[2]}
	var wantLen float64
	for k := 0; k < 3; k++ {
		if math.Abs(mi[k]-want[k]) > 1e-12 {
			t.Errorf("minimum image component %d = %g, want %g", k, mi[k], want[k])
		}
		wantLen += want[k] * want[k]
	}
	if math.Abs(dist-math.Sqrt(wantLen)) > 1e-12 {
		t.Errorf("minimum image length %g, want %g", dist, math.Sqrt(wantLen))
	}
	if err := cell.DisplaceAtom(99, d); err == nil {
		t.Error("out-of-range atom index accepted")
	}
}

// TestPositionsSetPositionsRoundTrip: the integrator's position plumbing -
// read, advance, write back wrapped - preserves the atom order and wraps
// into the home cell.
func TestPositionsSetPositionsRoundTrip(t *testing.T) {
	cell := MustSiliconSupercell(1, 1, 1)
	pos := cell.Positions()
	for i := range pos {
		pos[i][0] += cell.L[0] // a full period: must wrap to the identical point
	}
	if err := cell.SetPositions(pos); err != nil {
		t.Fatal(err)
	}
	ref := MustSiliconSupercell(1, 1, 1)
	for i := range cell.Atoms {
		_, d := cell.MinimumImage(ref.Atoms[i].Pos, cell.Atoms[i].Pos)
		if d > 1e-12 {
			t.Errorf("atom %d moved by %g under a full-period shift", i, d)
		}
	}
	if err := cell.SetPositions(pos[:3]); err == nil {
		t.Error("short position list accepted")
	}
}

// TestMasses: silicon cells carry the Si mass for every atom; species
// without a mass are rejected - the ion integrator must not divide by
// zero.
func TestMasses(t *testing.T) {
	cell := MustSiliconSupercell(1, 1, 2)
	m, err := cell.Masses()
	if err != nil {
		t.Fatal(err)
	}
	want := units.SiliconMassAMU * units.ElectronMassPerAMU
	for i, mi := range m {
		if math.Abs(mi-want) > 1e-6 {
			t.Errorf("atom %d mass %g, want %g", i, mi, want)
		}
	}
	bad, _ := NewCell(1, 1, 1)
	bad.Species = []Species{{Symbol: "X", Zval: 1}}
	bad.Atoms = []Atom{{Species: 0}}
	if _, err := bad.Masses(); err == nil {
		t.Error("massless species accepted")
	}
}

func TestOddElectronBandCount(t *testing.T) {
	c, _ := NewCell(1, 1, 1)
	c.Species = []Species{{Symbol: "X", Zval: 3}}
	c.Atoms = []Atom{{Species: 0}}
	if c.NumBands() != 2 {
		t.Errorf("3 electrons need 2 bands, got %d", c.NumBands())
	}
}
