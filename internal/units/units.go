// Package units collects the physical constants and unit conversions used
// throughout the code. Everything internal is in Hartree atomic units
// (hbar = m_e = e = 1); these constants convert at the boundaries.
package units

const (
	// BohrPerAngstrom converts lengths from Angstrom to Bohr.
	BohrPerAngstrom = 1.8897259886

	// AttosecondPerAU is the atomic unit of time in attoseconds:
	// 1 au = 24.18884 as, so the paper's 50 as step is ~2.067 au.
	AttosecondPerAU = 24.188843265857

	// FemtosecondPerAU is the atomic unit of time in femtoseconds.
	FemtosecondPerAU = AttosecondPerAU / 1000

	// EVPerHartree converts energies from Hartree to electron volts.
	EVPerHartree = 27.211386245988

	// NmPerBohr converts lengths from Bohr to nanometers.
	NmPerBohr = 0.0529177210903

	// SpeedOfLightAU is c in atomic units (1/alpha).
	SpeedOfLightAU = 137.035999084

	// SiliconLatticeAngstrom is the conventional diamond-cubic lattice
	// constant of silicon used in the paper's test systems (section 4).
	SiliconLatticeAngstrom = 5.43

	// ElectronMassPerAMU converts atomic mass units to atomic units of
	// mass (electron masses): 1 u = 1822.888... m_e. Ion masses enter the
	// Ehrenfest equations of motion in these units.
	ElectronMassPerAMU = 1822.888486209

	// SiliconMassAMU is the standard atomic weight of silicon.
	SiliconMassAMU = 28.0855
)

// AttosecondsToAU converts a time in attoseconds to atomic units.
func AttosecondsToAU(as float64) float64 { return as / AttosecondPerAU }

// AUToAttoseconds converts a time in atomic units to attoseconds.
func AUToAttoseconds(au float64) float64 { return au * AttosecondPerAU }

// WavelengthNmToOmegaAU converts a laser wavelength in nm to the photon
// angular frequency in Hartree atomic units: omega = 2*pi*c/lambda.
func WavelengthNmToOmegaAU(nm float64) float64 {
	lambdaBohr := nm / NmPerBohr
	return 2 * 3.14159265358979323846 * SpeedOfLightAU / lambdaBohr
}
