package units

import (
	"math"
	"testing"
)

func TestTimeConversionRoundTrip(t *testing.T) {
	for _, as := range []float64{0.5, 24, 50, 1000} {
		au := AttosecondsToAU(as)
		if math.Abs(AUToAttoseconds(au)-as) > 1e-12*as {
			t.Errorf("round trip failed for %g as", as)
		}
	}
}

func TestPaperTimeStep(t *testing.T) {
	// The paper's 50 as PT-CN step is ~2.067 au.
	au := AttosecondsToAU(50)
	if math.Abs(au-2.0671) > 1e-3 {
		t.Errorf("50 as = %g au, want ~2.067", au)
	}
}

func Test380nmPhotonEnergy(t *testing.T) {
	// 380 nm -> 3.263 eV.
	omega := WavelengthNmToOmegaAU(380)
	ev := omega * EVPerHartree
	if math.Abs(ev-3.2627) > 5e-3 {
		t.Errorf("380 nm photon = %g eV, want ~3.263", ev)
	}
}

func TestHartreeEV(t *testing.T) {
	if math.Abs(EVPerHartree-27.2114) > 1e-3 {
		t.Errorf("Hartree = %g eV", EVPerHartree)
	}
}

func TestBohrAngstrom(t *testing.T) {
	// 1 Angstrom = 1.8897 bohr; silicon lattice 5.43 A = 10.26 bohr.
	if math.Abs(SiliconLatticeAngstrom*BohrPerAngstrom-10.2612) > 1e-3 {
		t.Error("silicon lattice conversion off")
	}
	if math.Abs(BohrPerAngstrom*NmPerBohr*10-1) > 1e-6 {
		t.Error("BohrPerAngstrom and NmPerBohr are inconsistent")
	}
}

func TestTotalSimulationLength(t *testing.T) {
	// Section 4: 30 fs at 50 as per step = 600 steps.
	steps := 30.0 * 1000 / 50
	if steps != 600 {
		t.Errorf("step count %g, want 600", steps)
	}
	// 600 steps at 2.067 au each ~ 1240 au total.
	total := 600 * AttosecondsToAU(50)
	if math.Abs(total-1240.3) > 1 {
		t.Errorf("30 fs = %g au", total)
	}
}
