package fourier

import "ptdft/internal/lanes"

// This file is the lane-blocked SoA rendition of the 1D transform: the same
// mixed-radix recursion and Bluestein fallback as fft.go, but operating on
// lanes.Width pencils at once. Data lives in a lane block - a Slab of
// length n*lanes.Width with element k of pencil l at offset k*Width+l - so
// each butterfly loads its twiddle once (uniform) and applies it to Width
// independent pencils (varying) in a fixed-width, bounds-check-free inner
// loop. One recursion walk and one twiddle stream now serve Width pencils,
// amortizing the call overhead and table traffic that dominate the scalar
// per-pencil path.

const lw = lanes.Width

// transformLanes runs one unnormalized transform over a lane block of
// lanes.Width pencils. dst and src are lane blocks of length n*Width and
// must not alias; plans with a Bluestein fallback require a workspace from
// NewWorkspace.
func (p *Plan) transformLanes(dst, src lanes.Slab, inverse bool, ws *Workspace) {
	if p.n == 1 {
		*(*[lw]float64)(dst.Re) = *(*[lw]float64)(src.Re)
		*(*[lw]float64)(dst.Im) = *(*[lw]float64)(src.Im)
		return
	}
	if p.blu != nil {
		p.blu.transformLanes(dst, src, inverse, ws)
		return
	}
	p.recurseLanes(dst, src, 1, 0, inverse)
}

// recurseLanes is the decimation-in-time step over a lane block: identical
// index structure to recurse, with every element offset scaled by Width.
func (p *Plan) recurseLanes(dst, src lanes.Slab, stride, d int, inverse bool) {
	if d == len(p.stages) {
		*(*[lw]float64)(dst.Re) = *(*[lw]float64)(src.Re)
		*(*[lw]float64)(dst.Im) = *(*[lw]float64)(src.Im)
		return
	}
	st := &p.stages[d]
	r, m := st.r, st.m
	for q := 0; q < r; q++ {
		sub := lanes.Slab{Re: src.Re[q*stride*lw:], Im: src.Im[q*stride*lw:]}
		p.recurseLanes(dst.Slice(q*m*lw, (q+1)*m*lw), sub, stride*r, d+1, inverse)
	}
	twre, twim := st.twFre, st.twFim
	rore, roim := st.rootFre, st.rootFim
	if inverse {
		twre, twim = st.twIre, st.twIim
		rore, roim = st.rootIre, st.rootIim
	}
	dre, dim := dst.Re, dst.Im
	switch r {
	case 2:
		for k := 0; k < m; k++ {
			wr, wi := twre[m+k], twim[m+k]
			ar := (*[lw]float64)(dre[k*lw:])
			ai := (*[lw]float64)(dim[k*lw:])
			br := (*[lw]float64)(dre[(m+k)*lw:])
			bi := (*[lw]float64)(dim[(m+k)*lw:])
			for l := 0; l < lw; l++ {
				tr := br[l]*wr - bi[l]*wi
				ti := br[l]*wi + bi[l]*wr
				br[l] = ar[l] - tr
				bi[l] = ai[l] - ti
				ar[l] += tr
				ai[l] += ti
			}
		}
	case 3:
		w1r, w1i := rore[1], roim[1]
		w2r, w2i := rore[2], roim[2]
		for k := 0; k < m; k++ {
			b1r, b1i := twre[m+k], twim[m+k]
			b2r, b2i := twre[2*m+k], twim[2*m+k]
			ar := (*[lw]float64)(dre[k*lw:])
			ai := (*[lw]float64)(dim[k*lw:])
			br := (*[lw]float64)(dre[(m+k)*lw:])
			bi := (*[lw]float64)(dim[(m+k)*lw:])
			cr := (*[lw]float64)(dre[(2*m+k)*lw:])
			ci := (*[lw]float64)(dim[(2*m+k)*lw:])
			for l := 0; l < lw; l++ {
				xr := br[l]*b1r - bi[l]*b1i
				xi := br[l]*b1i + bi[l]*b1r
				yr := cr[l]*b2r - ci[l]*b2i
				yi := cr[l]*b2i + ci[l]*b2r
				a0r, a0i := ar[l], ai[l]
				ar[l] = a0r + xr + yr
				ai[l] = a0i + xi + yi
				br[l] = a0r + (xr*w1r - xi*w1i) + (yr*w2r - yi*w2i)
				bi[l] = a0i + (xr*w1i + xi*w1r) + (yr*w2i + yi*w2r)
				cr[l] = a0r + (xr*w2r - xi*w2i) + (yr*w1r - yi*w1i)
				ci[l] = a0i + (xr*w2i + xi*w2r) + (yr*w1i + yi*w1r)
			}
		}
	case 4:
		// root[1] is ∓i (up to rounding); keep the tabulated value so the
		// lane path tracks the scalar path bit for bit.
		jr, ji := rore[1], roim[1]
		for k := 0; k < m; k++ {
			w1r, w1i := twre[m+k], twim[m+k]
			w2r, w2i := twre[2*m+k], twim[2*m+k]
			w3r, w3i := twre[3*m+k], twim[3*m+k]
			ar := (*[lw]float64)(dre[k*lw:])
			ai := (*[lw]float64)(dim[k*lw:])
			br := (*[lw]float64)(dre[(m+k)*lw:])
			bi := (*[lw]float64)(dim[(m+k)*lw:])
			cr := (*[lw]float64)(dre[(2*m+k)*lw:])
			ci := (*[lw]float64)(dim[(2*m+k)*lw:])
			er := (*[lw]float64)(dre[(3*m+k)*lw:])
			ei := (*[lw]float64)(dim[(3*m+k)*lw:])
			for l := 0; l < lw; l++ {
				xr := br[l]*w1r - bi[l]*w1i
				xi := br[l]*w1i + bi[l]*w1r
				yr := cr[l]*w2r - ci[l]*w2i
				yi := cr[l]*w2i + ci[l]*w2r
				zr := er[l]*w3r - ei[l]*w3i
				zi := er[l]*w3i + ei[l]*w3r
				apcr, apci := ar[l]+yr, ai[l]+yi
				amcr, amci := ar[l]-yr, ai[l]-yi
				bpdr, bpdi := xr+zr, xi+zi
				dr0, di0 := xr-zr, xi-zi
				bmdr := dr0*jr - di0*ji
				bmdi := dr0*ji + di0*jr
				ar[l] = apcr + bpdr
				ai[l] = apci + bpdi
				br[l] = amcr + bmdr
				bi[l] = amci + bmdi
				cr[l] = apcr - bpdr
				ci[l] = apci - bpdi
				er[l] = amcr - bmdr
				ei[l] = amci - bmdi
			}
		}
	default:
		var tr, ti [maxDirectRadix][lw]float64
		for k := 0; k < m; k++ {
			for q := 0; q < r; q++ {
				wr, wi := twre[q*m+k], twim[q*m+k]
				sr := (*[lw]float64)(dre[(q*m+k)*lw:])
				si := (*[lw]float64)(dim[(q*m+k)*lw:])
				for l := 0; l < lw; l++ {
					tr[q][l] = sr[l]*wr - si[l]*wi
					ti[q][l] = sr[l]*wi + si[l]*wr
				}
			}
			for pp := 0; pp < r; pp++ {
				accr := tr[0]
				acci := ti[0]
				idx := 0
				for q := 1; q < r; q++ {
					idx += pp
					if idx >= r {
						idx -= r
					}
					wr, wi := rore[idx], roim[idx]
					for l := 0; l < lw; l++ {
						accr[l] += tr[q][l]*wr - ti[q][l]*wi
						acci[l] += tr[q][l]*wi + ti[q][l]*wr
					}
				}
				*(*[lw]float64)(dre[(pp*m+k)*lw:]) = accr
				*(*[lw]float64)(dim[(pp*m+k)*lw:]) = acci
			}
		}
	}
}

// transformLanes is the lane-blocked Bluestein chirp-z transform. The 1/m
// normalization of the inner inverse is folded into the final chirp
// multiply, saving one pass over the convolution buffer.
func (b *bluestein) transformLanes(dst, src lanes.Slab, inverse bool, ws *Workspace) {
	chre, chim := b.chirpFre, b.chirpFim
	kre, kim := b.kernelFre, b.kernelFim
	if inverse {
		chre, chim = b.chirpIre, b.chirpIim
		kre, kim = b.kernelBre, b.kernelBim
	}
	la, lfa := ws.la, ws.lfa
	for j := 0; j < b.n; j++ {
		wr, wi := chre[j], chim[j]
		sr := (*[lw]float64)(src.Re[j*lw:])
		si := (*[lw]float64)(src.Im[j*lw:])
		ar := (*[lw]float64)(la.Re[j*lw:])
		ai := (*[lw]float64)(la.Im[j*lw:])
		for l := 0; l < lw; l++ {
			ar[l] = sr[l]*wr - si[l]*wi
			ai[l] = sr[l]*wi + si[l]*wr
		}
	}
	for j := b.n * lw; j < b.m*lw; j++ {
		la.Re[j] = 0
		la.Im[j] = 0
	}
	b.inner.recurseLanes(lfa, la, 1, 0, false)
	for i := 0; i < b.m; i++ {
		wr, wi := kre[i], kim[i]
		ar := (*[lw]float64)(lfa.Re[i*lw:])
		ai := (*[lw]float64)(lfa.Im[i*lw:])
		for l := 0; l < lw; l++ {
			xr := ar[l]*wr - ai[l]*wi
			ai[l] = ar[l]*wi + ai[l]*wr
			ar[l] = xr
		}
	}
	b.inner.recurseLanes(la, lfa, 1, 0, true)
	invm := 1 / float64(b.m)
	for k := 0; k < b.n; k++ {
		wr, wi := chre[k]*invm, chim[k]*invm
		ar := (*[lw]float64)(la.Re[k*lw:])
		ai := (*[lw]float64)(la.Im[k*lw:])
		dr := (*[lw]float64)(dst.Re[k*lw:])
		di := (*[lw]float64)(dst.Im[k*lw:])
		for l := 0; l < lw; l++ {
			dr[l] = ar[l]*wr - ai[l]*wi
			di[l] = ar[l]*wi + ai[l]*wr
		}
	}
}
