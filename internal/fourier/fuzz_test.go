package fourier

import (
	"math"
	"math/rand"
	"testing"

	"ptdft/internal/lanes"
)

// FuzzLaneVsScalar is the property pin of the lane-blocked SoA kernel
// layer: for ANY (grid, nb, lane-remainder) shape the slab kernels must
// agree with the scalar []complex128 reference path to 1e-12. The seed
// corpus crosses lane-multiple pencil counts, off-by-one remainders, grids
// smaller than one lane group, axes that are not multiples of lanes.Width,
// and Bluestein lengths (primes above maxDirectRadix); the fuzzer then
// mutates freely inside the capped shape space. The corpus runs as part of
// a plain `go test`, so the property is checked on every CI run; `go test
// -fuzz FuzzLaneVsScalar ./internal/fourier` explores beyond it.
func FuzzLaneVsScalar(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(8), uint8(4), int64(1))
	f.Add(uint8(8), uint8(9), uint8(10), uint8(3), int64(2))
	f.Add(uint8(5), uint8(7), uint8(3), uint8(1), int64(3))
	f.Add(uint8(4), uint8(67), uint8(3), uint8(2), int64(4)) // Bluestein axis: 67 is prime
	f.Add(uint8(1), uint8(16), uint8(5), uint8(6), int64(5)) // single-pencil x, lane-multiple y
	f.Add(uint8(13), uint8(2), uint8(9), uint8(5), int64(6)) // 13 and 9: no lane multiple anywhere
	f.Add(uint8(31), uint8(4), uint8(4), uint8(2), int64(7)) // Bluestein axis: 31 is prime
	f.Add(uint8(3), uint8(3), uint8(3), uint8(1), int64(8))  // smaller than one lane group
	f.Fuzz(func(t *testing.T, bx, by, bz, bnb uint8, seed int64) {
		nx := 1 + int(bx)%67
		ny := 1 + int(by)%67
		nz := 1 + int(bz)%67
		nb := 1 + int(bnb)%6
		n := nx * ny * nz
		if n > 5000 {
			t.Skip("grid too large for a fuzz iteration")
		}
		p := MustPlan3(nx, ny, nz)
		ws := p.NewWorkspace()
		rng := rand.New(rand.NewSource(seed))
		src := randGridRng(rng, n)
		kernel := make([]float64, n)
		for i := range kernel {
			kernel[i] = rng.Float64()
		}
		// The tolerance is absolute against ~N(0,1) inputs; scale it with
		// the magnitude the unnormalized forward transform accumulates.
		tol := 1e-12 * (1 + math.Sqrt(float64(n)))
		check := func(what string, ref []complex128, got lanes.Slab) {
			t.Helper()
			if d := maxDiff(ref, got); d > tol {
				t.Errorf("%dx%dx%d nb=%d: %s lane vs scalar max diff %g (tol %g)", nx, ny, nz, nb, what, d, tol)
			}
		}

		// Raw transform, forward and inverse.
		for _, inverse := range []bool{false, true} {
			ref := make([]complex128, n)
			p.RawSerialWS(ref, src, inverse, ws)
			s, d := lanes.New(n), lanes.New(n)
			lanes.Pack(s, src)
			p.RawSlabWS(d, s, inverse, ws)
			check("raw transform", ref, d)
		}

		// Fused Poisson solve.
		ref := append([]complex128(nil), src...)
		p.PoissonSerialWS(ref, kernel, ws)
		s := lanes.New(n)
		lanes.Pack(s, src)
		p.PoissonSlabWS(s, kernel, ws)
		check("Poisson", ref, s)

		// nb-band contraction: the fock-style accumulation of nb pair
		// contractions into nb accumulator rows.
		phi := randGridRng(rng, nb*n)
		refAcc := make([]complex128, nb*n)
		buf := make([]complex128, n)
		sphi, sacc, ssrc, sbuf := lanes.New(nb*n), lanes.New(nb*n), lanes.New(n), lanes.New(n)
		lanes.Pack(sphi, phi)
		lanes.Pack(ssrc, src)
		for b := 0; b < nb; b++ {
			row := phi[b*n : (b+1)*n]
			p.ContractSerialWS(refAcc[b*n:(b+1)*n], row, src, buf, kernel, complex(-0.25, 0), ws)
			p.ContractSlabWS(sacc.Row(b, n), sphi.Row(b, n), ssrc, sbuf, kernel, -0.25, ws)
		}
		check("nb-band contraction", refAcc, sacc)

		// Two-sided pair contraction, off-diagonal and diagonal, against a
		// spelled-out scalar oracle (no kernel-symmetry assumption: conj(v)
		// is taken explicitly).
		if nb >= 2 {
			phiI, phiJ := phi[:n], phi[n:2*n]
			v := make([]complex128, n)
			for i := range v {
				v[i] = complex(real(phiI[i]), -imag(phiI[i])) * phiJ[i]
			}
			p.PoissonSerialWS(v, kernel, ws)
			refI := make([]complex128, n)
			refJ := make([]complex128, n)
			for i := range v {
				refJ[i] += -0.25 * phiI[i] * v[i]
				refI[i] += -0.25 * phiJ[i] * complex(real(v[i]), -imag(v[i]))
			}
			accI, accJ := lanes.New(n), lanes.New(n)
			p.ContractPairSlabWS(accI, accJ, sphi.Row(0, n), sphi.Row(1, n), sbuf, kernel, -0.25, false, ws)
			check("pair contraction accJ", refJ, accJ)
			check("pair contraction accI", refI, accI)
		}
		refD := make([]complex128, n)
		p.ContractSerialWS(refD, src, src, buf, kernel, complex(-0.25, 0), ws)
		accD := lanes.New(n)
		p.ContractPairSlabWS(accD, accD, ssrc, ssrc, sbuf, kernel, -0.25, true, ws)
		check("diagonal pair contraction", refD, accD)
	})
}
