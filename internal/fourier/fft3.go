package fourier

import (
	"fmt"

	"ptdft/internal/parallel"
)

// Plan3 is a three-dimensional transform plan over a row-major grid with
// index (ix*Ny + iy)*Nz + iz. Forward/Inverse parallelize over pencils using
// the shared worker pool. A Plan3 is immutable and safe for concurrent use.
type Plan3 struct {
	nx, ny, nz int
	px, py, pz *Plan
}

// NewPlan3 creates a 3D plan for an nx x ny x nz grid.
func NewPlan3(nx, ny, nz int) (*Plan3, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("fourier: invalid 3D dims %dx%dx%d", nx, ny, nz)
	}
	px, err := NewPlan(nx)
	if err != nil {
		return nil, err
	}
	py, err := NewPlan(ny)
	if err != nil {
		return nil, err
	}
	pz, err := NewPlan(nz)
	if err != nil {
		return nil, err
	}
	return &Plan3{nx: nx, ny: ny, nz: nz, px: px, py: py, pz: pz}, nil
}

// MustPlan3 is NewPlan3 that panics on error.
func MustPlan3(nx, ny, nz int) *Plan3 {
	p, err := NewPlan3(nx, ny, nz)
	if err != nil {
		panic(err)
	}
	return p
}

// Dims reports the grid dimensions.
func (p *Plan3) Dims() (nx, ny, nz int) { return p.nx, p.ny, p.nz }

// Size reports the total number of grid points.
func (p *Plan3) Size() int { return p.nx * p.ny * p.nz }

// Forward computes the unnormalized 3D DFT of src into dst.
// Buffers must have length Size(); dst and src may alias.
func (p *Plan3) Forward(dst, src []complex128) { p.apply(dst, src, false) }

// Inverse computes the normalized (1/N) inverse 3D DFT of src into dst.
// Buffers must have length Size(); dst and src may alias.
func (p *Plan3) Inverse(dst, src []complex128) {
	p.apply(dst, src, true)
	scale := complex(1/float64(p.Size()), 0)
	parallel.ForBlock(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] *= scale
		}
	})
}

func (p *Plan3) apply(dst, src []complex128, inverse bool) {
	n := p.Size()
	if len(dst) != n || len(src) != n {
		panic(fmt.Sprintf("fourier: 3D buffer length mismatch: plan %d, dst %d, src %d", n, len(dst), len(src)))
	}
	nx, ny, nz := p.nx, p.ny, p.nz
	oneD := func(pl *Plan, dstRow, srcRow []complex128) {
		if inverse {
			// Unnormalized inverse; the 1/N factor is applied once at the end.
			pl.transform(dstRow, srcRow, true)
		} else {
			pl.transform(dstRow, srcRow, false)
		}
	}

	// Pass 1: transform along z (contiguous pencils), src -> dst.
	parallel.ForBlock(nx*ny, func(lo, hi int) {
		buf := make([]complex128, nz)
		for r := lo; r < hi; r++ {
			row := dst[r*nz : (r+1)*nz]
			oneD(p.pz, buf, src[r*nz:(r+1)*nz])
			copy(row, buf)
		}
	})

	// Pass 2: transform along y (stride nz) in place in dst.
	parallel.ForBlock(nx*nz, func(lo, hi int) {
		in := make([]complex128, ny)
		out := make([]complex128, ny)
		for r := lo; r < hi; r++ {
			ix, iz := r/nz, r%nz
			base := ix*ny*nz + iz
			for iy := 0; iy < ny; iy++ {
				in[iy] = dst[base+iy*nz]
			}
			oneD(p.py, out, in)
			for iy := 0; iy < ny; iy++ {
				dst[base+iy*nz] = out[iy]
			}
		}
	})

	// Pass 3: transform along x (stride ny*nz) in place in dst.
	stride := ny * nz
	parallel.ForBlock(ny*nz, func(lo, hi int) {
		in := make([]complex128, nx)
		out := make([]complex128, nx)
		for r := lo; r < hi; r++ {
			for ix := 0; ix < nx; ix++ {
				in[ix] = dst[r+ix*stride]
			}
			oneD(p.px, out, in)
			for ix := 0; ix < nx; ix++ {
				dst[r+ix*stride] = out[ix]
			}
		}
	})
}

// ForwardBatch applies Forward to nb arrays stored back to back in src,
// writing the transforms back to back into dst. This mirrors the batched
// CUFFT execution of the paper (optimization step 2 in section 3.2): the
// batch is distributed across the worker pool one transform per task so
// wide batches saturate all workers even when individual grids are small.
func (p *Plan3) ForwardBatch(dst, src []complex128, nb int) { p.applyBatch(dst, src, nb, false) }

// InverseBatch applies Inverse to nb arrays stored back to back.
func (p *Plan3) InverseBatch(dst, src []complex128, nb int) { p.applyBatch(dst, src, nb, true) }

func (p *Plan3) applyBatch(dst, src []complex128, nb int, inverse bool) {
	n := p.Size()
	if len(dst) != nb*n || len(src) != nb*n {
		panic(fmt.Sprintf("fourier: batch buffer mismatch: want %d elements, dst %d, src %d", nb*n, len(dst), len(src)))
	}
	// Individual transforms run single-threaded inside a batch; the batch
	// dimension supplies the parallelism.
	parallel.For(nb, func(b int) {
		d := dst[b*n : (b+1)*n]
		s := src[b*n : (b+1)*n]
		p.applySerial(d, s, inverse)
		if inverse {
			scale := complex(1/float64(n), 0)
			for i := range d {
				d[i] *= scale
			}
		}
	})
}

// ApplySerial runs a single transform without touching the worker pool,
// for callers that manage their own outer parallelism. The inverse variant
// includes the 1/N normalization.
func (p *Plan3) ApplySerial(dst, src []complex128, inverse bool) {
	p.applySerial(dst, src, inverse)
	if inverse {
		scale := complex(1/float64(p.Size()), 0)
		for i := range dst {
			dst[i] *= scale
		}
	}
}

// applySerial is the single-goroutine transform core (unnormalized).
func (p *Plan3) applySerial(dst, src []complex128, inverse bool) {
	nx, ny, nz := p.nx, p.ny, p.nz
	buf := make([]complex128, nz)
	for r := 0; r < nx*ny; r++ {
		p.pz.transform(buf, src[r*nz:(r+1)*nz], inverse)
		copy(dst[r*nz:(r+1)*nz], buf)
	}
	in := make([]complex128, ny)
	out := make([]complex128, ny)
	for r := 0; r < nx*nz; r++ {
		ix, iz := r/nz, r%nz
		base := ix*ny*nz + iz
		for iy := 0; iy < ny; iy++ {
			in[iy] = dst[base+iy*nz]
		}
		p.py.transform(out, in, inverse)
		for iy := 0; iy < ny; iy++ {
			dst[base+iy*nz] = out[iy]
		}
	}
	stride := ny * nz
	inx := make([]complex128, nx)
	outx := make([]complex128, nx)
	for r := 0; r < ny*nz; r++ {
		for ix := 0; ix < nx; ix++ {
			inx[ix] = dst[r+ix*stride]
		}
		p.px.transform(outx, inx, inverse)
		for ix := 0; ix < nx; ix++ {
			dst[r+ix*stride] = outx[ix]
		}
	}
}
