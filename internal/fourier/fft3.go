package fourier

import (
	"fmt"
	"sync"

	"ptdft/internal/lanes"
	"ptdft/internal/parallel"
)

// Plan3 is a three-dimensional transform plan over a row-major grid with
// index (ix*Ny + iy)*Nz + iz. Forward/Inverse parallelize over pencils using
// the shared worker pool. A Plan3 is immutable and safe for concurrent use:
// per-call scratch lives in Workspace3 objects held by callers or drawn
// from the plan's pool, so steady-state transforms allocate nothing.
type Plan3 struct {
	nx, ny, nz int
	px, py, pz *Plan
	pool       sync.Pool // *Workspace3
}

// Workspace3 is the scratch one serial 3D transform needs: two line
// buffers sized for the longest axis plus the 1D workspaces of any axis
// plan that falls back to Bluestein. A Workspace3 must not be shared
// between concurrent transforms.
type Workspace3 struct {
	u, v          []complex128
	lu, lv        lanes.Slab // lane blocks for the slab passes, maxdim*lanes.Width
	wsx, wsy, wsz *Workspace
}

// NewWorkspace allocates the scratch for one serial transform of this plan.
func (p *Plan3) NewWorkspace() *Workspace3 {
	n := p.nx
	if p.ny > n {
		n = p.ny
	}
	if p.nz > n {
		n = p.nz
	}
	return &Workspace3{
		u:   make([]complex128, n),
		v:   make([]complex128, n),
		lu:  lanes.New(n * lanes.Width),
		lv:  lanes.New(n * lanes.Width),
		wsx: p.px.NewWorkspace(),
		wsy: p.py.NewWorkspace(),
		wsz: p.pz.NewWorkspace(),
	}
}

func (p *Plan3) getWS() *Workspace3   { return p.pool.Get().(*Workspace3) }
func (p *Plan3) putWS(ws *Workspace3) { p.pool.Put(ws) }

// CheckoutWorkspace draws a workspace from the plan's pool; pair it with
// ReturnWorkspace. For one-shot use ApplySerial and friends manage this
// internally; checkout is for callers that run several transforms back to
// back and want a single Get/Put round trip.
func (p *Plan3) CheckoutWorkspace() *Workspace3 { return p.getWS() }

// ReturnWorkspace gives a checked-out workspace back to the pool.
func (p *Plan3) ReturnWorkspace(ws *Workspace3) { p.putWS(ws) }

// NewPlan3 creates a 3D plan for an nx x ny x nz grid.
func NewPlan3(nx, ny, nz int) (*Plan3, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("fourier: invalid 3D dims %dx%dx%d", nx, ny, nz)
	}
	px, err := NewPlan(nx)
	if err != nil {
		return nil, err
	}
	py, err := NewPlan(ny)
	if err != nil {
		return nil, err
	}
	pz, err := NewPlan(nz)
	if err != nil {
		return nil, err
	}
	p := &Plan3{nx: nx, ny: ny, nz: nz, px: px, py: py, pz: pz}
	p.pool.New = func() any { return p.NewWorkspace() }
	return p, nil
}

// MustPlan3 is NewPlan3 that panics on error.
func MustPlan3(nx, ny, nz int) *Plan3 {
	p, err := NewPlan3(nx, ny, nz)
	if err != nil {
		panic(err)
	}
	return p
}

// Dims reports the grid dimensions.
func (p *Plan3) Dims() (nx, ny, nz int) { return p.nx, p.ny, p.nz }

// Size reports the total number of grid points.
func (p *Plan3) Size() int { return p.nx * p.ny * p.nz }

func (p *Plan3) checkLen(dst, src []complex128) {
	n := p.Size()
	if len(dst) != n || len(src) != n {
		panic(fmt.Sprintf("fourier: 3D buffer length mismatch: plan %d, dst %d, src %d", n, len(dst), len(src)))
	}
}

// Forward computes the unnormalized 3D DFT of src into dst.
// Buffers must have length Size(); dst and src may alias.
func (p *Plan3) Forward(dst, src []complex128) { p.apply(dst, src, false) }

// Inverse computes the normalized (1/N) inverse 3D DFT of src into dst.
// Buffers must have length Size(); dst and src may alias.
func (p *Plan3) Inverse(dst, src []complex128) {
	p.apply(dst, src, true)
	scale := complex(1/float64(p.Size()), 0)
	parallel.ForBlock(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] *= scale
		}
	})
}

func (p *Plan3) apply(dst, src []complex128, inverse bool) {
	p.checkLen(dst, src)
	nx, ny, nz := p.nx, p.ny, p.nz

	// Pass 1: transform along z (contiguous pencils), src -> dst.
	parallel.ForBlock(nx*ny, func(lo, hi int) {
		ws := p.getWS()
		buf := ws.u[:nz]
		for r := lo; r < hi; r++ {
			row := dst[r*nz : (r+1)*nz]
			p.pz.TransformWS(buf, src[r*nz:(r+1)*nz], inverse, ws.wsz)
			copy(row, buf)
		}
		p.putWS(ws)
	})

	// Pass 2: transform along y (stride nz) in place in dst.
	parallel.ForBlock(nx*nz, func(lo, hi int) {
		ws := p.getWS()
		in, out := ws.u[:ny], ws.v[:ny]
		for r := lo; r < hi; r++ {
			ix, iz := r/nz, r%nz
			base := ix*ny*nz + iz
			for iy := 0; iy < ny; iy++ {
				in[iy] = dst[base+iy*nz]
			}
			p.py.TransformWS(out, in, inverse, ws.wsy)
			for iy := 0; iy < ny; iy++ {
				dst[base+iy*nz] = out[iy]
			}
		}
		p.putWS(ws)
	})

	// Pass 3: transform along x (stride ny*nz) in place in dst.
	stride := ny * nz
	parallel.ForBlock(ny*nz, func(lo, hi int) {
		ws := p.getWS()
		in, out := ws.u[:nx], ws.v[:nx]
		for r := lo; r < hi; r++ {
			for ix := 0; ix < nx; ix++ {
				in[ix] = dst[r+ix*stride]
			}
			p.px.TransformWS(out, in, inverse, ws.wsx)
			for ix := 0; ix < nx; ix++ {
				dst[r+ix*stride] = out[ix]
			}
		}
		p.putWS(ws)
	})
}

// ForwardBatch applies Forward to nb arrays stored back to back in src,
// writing the transforms back to back into dst. This mirrors the batched
// CUFFT execution of the paper (optimization step 2 in section 3.2): the
// batch is distributed across the worker pool one transform per task so
// wide batches saturate all workers even when individual grids are small.
func (p *Plan3) ForwardBatch(dst, src []complex128, nb int) { p.applyBatch(dst, src, nb, false) }

// InverseBatch applies Inverse to nb arrays stored back to back.
func (p *Plan3) InverseBatch(dst, src []complex128, nb int) { p.applyBatch(dst, src, nb, true) }

func (p *Plan3) applyBatch(dst, src []complex128, nb int, inverse bool) {
	n := p.Size()
	if len(dst) != nb*n || len(src) != nb*n {
		panic(fmt.Sprintf("fourier: batch buffer mismatch: want %d elements, dst %d, src %d", nb*n, len(dst), len(src)))
	}
	// Individual transforms run single-threaded inside a batch; the batch
	// dimension supplies the parallelism. Each worker binds one workspace.
	nw := parallel.NumWorkers(nb)
	wss := make([]*Workspace3, nw)
	for i := range wss {
		wss[i] = p.getWS()
	}
	parallel.ForWorker(nb, func(w, b int) {
		d := dst[b*n : (b+1)*n]
		s := src[b*n : (b+1)*n]
		p.applySerial(d, s, inverse, wss[w])
		if inverse {
			scale := complex(1/float64(n), 0)
			for i := range d {
				d[i] *= scale
			}
		}
	})
	for _, ws := range wss {
		p.putWS(ws)
	}
}

// ApplySerial runs a single transform without touching the worker pool,
// for callers that manage their own outer parallelism. The inverse variant
// includes the 1/N normalization. Scratch comes from the plan's pool;
// steady state allocates nothing.
func (p *Plan3) ApplySerial(dst, src []complex128, inverse bool) {
	ws := p.getWS()
	p.ApplySerialWS(dst, src, inverse, ws)
	p.putWS(ws)
}

// ApplySerialWS is ApplySerial with caller-owned scratch (from
// NewWorkspace), for hot loops that bind one workspace per worker.
func (p *Plan3) ApplySerialWS(dst, src []complex128, inverse bool, ws *Workspace3) {
	p.checkLen(dst, src)
	p.applySerial(dst, src, inverse, ws)
	if inverse {
		scale := complex(1/float64(p.Size()), 0)
		for i := range dst {
			dst[i] *= scale
		}
	}
}

// RawSerialWS runs a single unnormalized transform (no 1/N on the inverse)
// with caller-owned scratch. Callers that fold normalization into their own
// pointwise scaling (the grid scatter/gather, the Poisson kernel multiply)
// use this to avoid a separate pass over the data.
func (p *Plan3) RawSerialWS(dst, src []complex128, inverse bool, ws *Workspace3) {
	p.checkLen(dst, src)
	p.applySerial(dst, src, inverse, ws)
}

// applySerial is the single-goroutine transform core (unnormalized).
// dst and src may alias.
func (p *Plan3) applySerial(dst, src []complex128, inverse bool, ws *Workspace3) {
	nx, ny, nz := p.nx, p.ny, p.nz
	buf := ws.u[:nz]
	for r := 0; r < nx*ny; r++ {
		p.pz.TransformWS(buf, src[r*nz:(r+1)*nz], inverse, ws.wsz)
		copy(dst[r*nz:(r+1)*nz], buf)
	}
	p.passY(dst, inverse, ws)
	p.passX(dst, inverse, ws)
}

// passY transforms along y (stride nz) in place.
func (p *Plan3) passY(dst []complex128, inverse bool, ws *Workspace3) {
	nx, ny, nz := p.nx, p.ny, p.nz
	in, out := ws.u[:ny], ws.v[:ny]
	for r := 0; r < nx*nz; r++ {
		ix, iz := r/nz, r%nz
		base := ix*ny*nz + iz
		for iy := 0; iy < ny; iy++ {
			in[iy] = dst[base+iy*nz]
		}
		p.py.TransformWS(out, in, inverse, ws.wsy)
		for iy := 0; iy < ny; iy++ {
			dst[base+iy*nz] = out[iy]
		}
	}
}

// passX transforms along x (stride ny*nz) in place.
func (p *Plan3) passX(dst []complex128, inverse bool, ws *Workspace3) {
	nx, ny, nz := p.nx, p.ny, p.nz
	stride := ny * nz
	in, out := ws.u[:nx], ws.v[:nx]
	for r := 0; r < ny*nz; r++ {
		for ix := 0; ix < nx; ix++ {
			in[ix] = dst[r+ix*stride]
		}
		p.px.TransformWS(out, in, inverse, ws.wsx)
		for ix := 0; ix < nx; ix++ {
			dst[r+ix*stride] = out[ix]
		}
	}
}

// PoissonSerial performs the fused Poisson-like round trip of the Fock
// exchange in place:
//
//	buf <- IFFT[ kernel ⊙ FFT[buf] ] / N
//
// i.e. forward transform, pointwise kernel multiply (with the inverse
// normalization folded in), inverse transform - without the two extra
// full-grid passes a Forward + caller multiply + Inverse sequence costs.
// Scratch comes from the plan's pool.
func (p *Plan3) PoissonSerial(buf []complex128, kernel []float64) {
	ws := p.getWS()
	p.PoissonSerialWS(buf, kernel, ws)
	p.putWS(ws)
}

// PoissonSerialWS is PoissonSerial with caller-owned scratch.
//
// The kernel multiply rides inside the x-axis pass: after the z and y
// forward passes, each x line is forward-transformed, multiplied by
// kernel/N while still in the line buffer, and inverse-transformed before
// being written back - five grid passes total instead of seven.
func (p *Plan3) PoissonSerialWS(buf []complex128, kernel []float64, ws *Workspace3) {
	n := p.Size()
	if len(buf) != n || len(kernel) != n {
		panic(fmt.Sprintf("fourier: Poisson buffer mismatch: plan %d, buf %d, kernel %d", n, len(buf), len(kernel)))
	}
	nx, ny, nz := p.nx, p.ny, p.nz
	// Forward z pass in place.
	zbuf := ws.u[:nz]
	for r := 0; r < nx*ny; r++ {
		p.pz.TransformWS(zbuf, buf[r*nz:(r+1)*nz], false, ws.wsz)
		copy(buf[r*nz:(r+1)*nz], zbuf)
	}
	// Forward y pass in place.
	p.passY(buf, false, ws)
	// Fused x pass: forward, kernel multiply, inverse per line.
	p.passXKernel(buf, kernel, ws)
	// Inverse y pass, then inverse z pass, both in place.
	p.passY(buf, true, ws)
	for r := 0; r < nx*ny; r++ {
		p.pz.TransformWS(zbuf, buf[r*nz:(r+1)*nz], true, ws.wsz)
		copy(buf[r*nz:(r+1)*nz], zbuf)
	}
}

// passXKernel is the kernel-fused x pass of the Poisson round trip: for
// each x line, forward transform, multiply by kernel (carrying the global
// 1/N), inverse transform, write back.
func (p *Plan3) passXKernel(buf []complex128, kernel []float64, ws *Workspace3) {
	nx, ny, nz := p.nx, p.ny, p.nz
	stride := ny * nz
	invN := 1 / float64(p.Size())
	in, out := ws.u[:nx], ws.v[:nx]
	for r := 0; r < ny*nz; r++ {
		for ix := 0; ix < nx; ix++ {
			in[ix] = buf[r+ix*stride]
		}
		p.px.TransformWS(out, in, false, ws.wsx)
		for ix := 0; ix < nx; ix++ {
			out[ix] *= complex(kernel[r+ix*stride]*invN, 0)
		}
		p.px.TransformWS(in, out, true, ws.wsx)
		for ix := 0; ix < nx; ix++ {
			buf[r+ix*stride] = in[ix]
		}
	}
}

// ContractSerialWS is the fully fused Fock-exchange contraction of one
// reference orbital (the (i, j) inner step of Alg. 2):
//
//	dst += scale * phi ⊙ Poisson[ conj(phi) ⊙ src ]
//
// where Poisson[.] is the PoissonSerial round trip with the given kernel.
// The pair product conj(phi)*src is formed inside the first forward pass
// and the final accumulation inside the last inverse pass, so the whole
// contraction makes five passes over the grid. buf is caller scratch of
// length Size() (the pair buffer); dst, phi, src are full grids; dst must
// not alias buf.
func (p *Plan3) ContractSerialWS(dst, phi, src, buf []complex128, kernel []float64, scale complex128, ws *Workspace3) {
	n := p.Size()
	if len(dst) != n || len(phi) != n || len(src) != n || len(buf) != n || len(kernel) != n {
		panic("fourier: Contract buffer size mismatch")
	}
	nx, ny, nz := p.nx, p.ny, p.nz
	// Forward z pass with the pair product conj(phi)*src formed in the
	// gather, src/phi -> buf.
	in, out := ws.u[:nz], ws.v[:nz]
	for r := 0; r < nx*ny; r++ {
		base := r * nz
		for iz := 0; iz < nz; iz++ {
			ph := phi[base+iz]
			in[iz] = complex(real(ph), -imag(ph)) * src[base+iz]
		}
		p.pz.TransformWS(out, in, false, ws.wsz)
		copy(buf[base:base+nz], out)
	}
	p.passY(buf, false, ws)
	p.passXKernel(buf, kernel, ws)
	p.passY(buf, true, ws)
	// Inverse z pass with the accumulation dst += scale*phi*v fused into
	// the scatter.
	for r := 0; r < nx*ny; r++ {
		base := r * nz
		p.pz.TransformWS(out, buf[base:base+nz], true, ws.wsz)
		for iz := 0; iz < nz; iz++ {
			dst[base+iz] += scale * phi[base+iz] * out[iz]
		}
	}
}
