package fourier

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(N^2) reference implementation.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			acc += x[j] * cmplx.Exp(complex(0, sign*2*math.Pi*float64(j*k)/float64(n)))
		}
		if inverse {
			acc /= complex(float64(n), 0)
		}
		out[k] = acc
	}
	return out
}

func randomVec(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxAbsDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 15, 16, 17, 18, 20, 24, 30, 32, 36, 45, 48, 60, 64, 90, 97, 101, 120, 128}
	for _, n := range sizes {
		p := MustPlan(n)
		x := randomVec(rng, n)
		got := make([]complex128, n)
		p.Forward(got, x)
		want := naiveDFT(x, false)
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: forward max diff %g", n, d)
		}
	}
}

func TestInverseMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 5, 8, 12, 21, 32, 60, 97, 120} {
		p := MustPlan(n)
		x := randomVec(rng, n)
		got := make([]complex128, n)
		p.Inverse(got, x)
		want := naiveDFT(x, true)
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: inverse max diff %g", n, d)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 7, 30, 64, 97, 100, 210} {
		p := MustPlan(n)
		f := func(seed int64) bool {
			local := rand.New(rand.NewSource(seed))
			x := randomVec(local, n)
			fx := make([]complex128, n)
			back := make([]complex128, n)
			p.Forward(fx, x)
			p.Inverse(back, fx)
			return maxAbsDiff(back, x) < 1e-9*float64(n)
		}
		cfg := &quick.Config{MaxCount: 20, Rand: rng}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("n=%d: round trip property failed: %v", n, err)
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{8, 15, 60, 101} {
		p := MustPlan(n)
		x := randomVec(rng, n)
		fx := make([]complex128, n)
		p.Forward(fx, x)
		var st, sf float64
		for i := 0; i < n; i++ {
			st += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			sf += real(fx[i])*real(fx[i]) + imag(fx[i])*imag(fx[i])
		}
		sf /= float64(n)
		if math.Abs(st-sf) > 1e-8*st {
			t.Errorf("n=%d: Parseval violated: time %g freq %g", n, st, sf)
		}
	}
}

func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 48
	p := MustPlan(n)
	x := randomVec(rng, n)
	y := randomVec(rng, n)
	alpha := complex(1.3, -0.7)
	z := make([]complex128, n)
	for i := range z {
		z[i] = x[i] + alpha*y[i]
	}
	fx, fy, fz := make([]complex128, n), make([]complex128, n), make([]complex128, n)
	p.Forward(fx, x)
	p.Forward(fy, y)
	p.Forward(fz, z)
	for i := range fz {
		want := fx[i] + alpha*fy[i]
		if cmplx.Abs(fz[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at %d: got %v want %v", i, fz[i], want)
		}
	}
}

func TestDeltaTransformsToConstant(t *testing.T) {
	n := 30
	p := MustPlan(n)
	x := make([]complex128, n)
	x[0] = 1
	fx := make([]complex128, n)
	p.Forward(fx, x)
	for i, v := range fx {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("delta transform not constant at %d: %v", i, v)
		}
	}
}

func TestShiftTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 36
	s := 5
	p := MustPlan(n)
	x := randomVec(rng, n)
	shifted := make([]complex128, n)
	for i := range x {
		shifted[i] = x[(i+s)%n]
	}
	fx, fs := make([]complex128, n), make([]complex128, n)
	p.Forward(fx, x)
	p.Forward(fs, shifted)
	for k := 0; k < n; k++ {
		phase := cmplx.Exp(complex(0, 2*math.Pi*float64(k*s)/float64(n)))
		if cmplx.Abs(fs[k]-fx[k]*phase) > 1e-9 {
			t.Fatalf("shift theorem violated at k=%d", k)
		}
	}
}

func TestNewPlanRejectsBadLength(t *testing.T) {
	if _, err := NewPlan(0); err == nil {
		t.Error("NewPlan(0) should fail")
	}
	if _, err := NewPlan(-3); err == nil {
		t.Error("NewPlan(-3) should fail")
	}
}

func TestNextFast(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 7: 7, 11: 12, 13: 14, 17: 18, 23: 24, 31: 32, 97: 98, 121: 125}
	for in, want := range cases {
		if got := NextFast(in); got != want {
			t.Errorf("NextFast(%d) = %d, want %d", in, got, want)
		}
	}
	if !IsFast(60) || IsFast(97) {
		t.Error("IsFast misclassifies 60 or 97")
	}
}

func TestFactorize(t *testing.T) {
	cases := map[int][]int{
		60:  {2, 2, 3, 5},
		97:  {97},
		1:   nil,
		128: {2, 2, 2, 2, 2, 2, 2},
	}
	for n, want := range cases {
		got := factorize(n)
		if len(got) != len(want) {
			t.Errorf("factorize(%d) = %v, want %v", n, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("factorize(%d) = %v, want %v", n, got, want)
				break
			}
		}
	}
}

func TestMergeRadix4(t *testing.T) {
	got := mergeRadix4([]int{2, 2, 2, 3, 5})
	want := []int{2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("mergeRadix4 = %v, want %v", got, want)
	}
	prod := 1
	for i := range got {
		prod *= got[i]
		if got[i] != want[i] {
			t.Fatalf("mergeRadix4 = %v, want %v", got, want)
		}
	}
	if prod != 120 {
		t.Fatalf("product changed: %d", prod)
	}
}

func naiveDFT3(x []complex128, nx, ny, nz int, inverse bool) []complex128 {
	// Transform axis by axis with the 1D reference.
	out := make([]complex128, len(x))
	copy(out, x)
	// z axis
	for r := 0; r < nx*ny; r++ {
		copy(out[r*nz:(r+1)*nz], naiveDFT(out[r*nz:(r+1)*nz], inverse))
	}
	// y axis
	row := make([]complex128, ny)
	for ix := 0; ix < nx; ix++ {
		for iz := 0; iz < nz; iz++ {
			for iy := 0; iy < ny; iy++ {
				row[iy] = out[(ix*ny+iy)*nz+iz]
			}
			res := naiveDFT(row, inverse)
			for iy := 0; iy < ny; iy++ {
				out[(ix*ny+iy)*nz+iz] = res[iy]
			}
		}
	}
	// x axis
	col := make([]complex128, nx)
	for iy := 0; iy < ny; iy++ {
		for iz := 0; iz < nz; iz++ {
			for ix := 0; ix < nx; ix++ {
				col[ix] = out[(ix*ny+iy)*nz+iz]
			}
			res := naiveDFT(col, inverse)
			for ix := 0; ix < nx; ix++ {
				out[(ix*ny+iy)*nz+iz] = res[ix]
			}
		}
	}
	return out
}

func TestPlan3MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := [][3]int{{2, 3, 4}, {4, 4, 4}, {3, 5, 6}, {6, 5, 4}, {8, 9, 10}}
	for _, d := range dims {
		p := MustPlan3(d[0], d[1], d[2])
		x := randomVec(rng, p.Size())
		got := make([]complex128, p.Size())
		p.Forward(got, x)
		want := naiveDFT3(x, d[0], d[1], d[2], false)
		if diff := maxAbsDiff(got, want); diff > 1e-8 {
			t.Errorf("dims %v: 3D forward max diff %g", d, diff)
		}
	}
}

func TestPlan3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := MustPlan3(6, 10, 12)
	x := randomVec(rng, p.Size())
	fx := make([]complex128, p.Size())
	back := make([]complex128, p.Size())
	p.Forward(fx, x)
	p.Inverse(back, fx)
	if d := maxAbsDiff(back, x); d > 1e-9 {
		t.Errorf("3D round trip max diff %g", d)
	}
}

func TestPlan3InPlaceAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := MustPlan3(4, 6, 5)
	x := randomVec(rng, p.Size())
	want := make([]complex128, p.Size())
	p.Forward(want, x)
	// In-place: dst aliases src.
	p.Forward(x, x)
	if d := maxAbsDiff(x, want); d > 1e-10 {
		t.Errorf("in-place 3D transform differs from out-of-place by %g", d)
	}
}

func TestPlan3Batch(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := MustPlan3(4, 5, 6)
	nb := 7
	n := p.Size()
	src := randomVec(rng, nb*n)
	dst := make([]complex128, nb*n)
	p.ForwardBatch(dst, src, nb)
	for b := 0; b < nb; b++ {
		want := make([]complex128, n)
		p.Forward(want, src[b*n:(b+1)*n])
		if d := maxAbsDiff(dst[b*n:(b+1)*n], want); d > 1e-10 {
			t.Errorf("batch %d: forward differs by %g", b, d)
		}
	}
	back := make([]complex128, nb*n)
	p.InverseBatch(back, dst, nb)
	if d := maxAbsDiff(back, src); d > 1e-9 {
		t.Errorf("batch round trip differs by %g", d)
	}
}

func TestApplySerialMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := MustPlan3(6, 6, 6)
	x := randomVec(rng, p.Size())
	a := make([]complex128, p.Size())
	b := make([]complex128, p.Size())
	p.Forward(a, x)
	p.ApplySerial(b, x, false)
	if d := maxAbsDiff(a, b); d > 1e-12 {
		t.Errorf("serial/parallel forward differ by %g", d)
	}
	p.Inverse(a, x)
	p.ApplySerial(b, x, true)
	if d := maxAbsDiff(a, b); d > 1e-12 {
		t.Errorf("serial/parallel inverse differ by %g", d)
	}
}

func BenchmarkFFT1D60(b *testing.B)  { benchFFT1D(b, 60) }
func BenchmarkFFT1D128(b *testing.B) { benchFFT1D(b, 128) }

func benchFFT1D(b *testing.B, n int) {
	p := MustPlan(n)
	rng := rand.New(rand.NewSource(1))
	x := randomVec(rng, n)
	y := make([]complex128, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(y, x)
	}
}

func BenchmarkFFT3DWavefunctionGrid(b *testing.B) {
	// 18^3 is a typical laptop-scale wavefunction box for Si8 at 10 Ha.
	p := MustPlan3(18, 18, 18)
	rng := rand.New(rand.NewSource(1))
	x := randomVec(rng, p.Size())
	y := make([]complex128, p.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(y, x)
	}
}

func TestPlanConcurrentUse(t *testing.T) {
	// Plans are immutable after creation: many goroutines transforming
	// through one plan must not interfere (the batched Fock loop relies
	// on this).
	p := MustPlan3(6, 9, 10)
	rng := rand.New(rand.NewSource(42))
	inputs := make([][]complex128, 16)
	wants := make([][]complex128, 16)
	for i := range inputs {
		inputs[i] = randomVec(rng, p.Size())
		wants[i] = make([]complex128, p.Size())
		p.ApplySerial(wants[i], inputs[i], false)
	}
	done := make(chan error, len(inputs))
	for i := range inputs {
		go func(i int) {
			got := make([]complex128, p.Size())
			p.ApplySerial(got, inputs[i], false)
			if maxAbsDiff(got, wants[i]) > 1e-12 {
				done <- fmt.Errorf("goroutine %d: concurrent transform differs", i)
				return
			}
			done <- nil
		}(i)
	}
	for range inputs {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestBluesteinLargePrime(t *testing.T) {
	// Sizes with prime factors beyond the direct-radix bound route through
	// the chirp-z path; verify a large prime against the naive DFT.
	for _, n := range []int{127, 251} {
		p := MustPlan(n)
		rng := rand.New(rand.NewSource(int64(n)))
		x := randomVec(rng, n)
		got := make([]complex128, n)
		p.Forward(got, x)
		want := naiveDFT(x, false)
		if d := maxAbsDiff(got, want); d > 1e-8*float64(n) {
			t.Errorf("n=%d: Bluestein differs from naive DFT by %g", n, d)
		}
	}
}
