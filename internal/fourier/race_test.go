//go:build race

package fourier

// raceEnabled reports that the race detector is active; sync.Pool drops
// items randomly under race, so allocation pins are meaningless.
const raceEnabled = true
