package fourier

import (
	"fmt"

	"ptdft/internal/lanes"
)

// This file is the slab (grid-layout SoA) face of the 3D plan: the same
// fused passes as fft3.go's serial path, but the grid lives in a
// lanes.Slab (element i at Re[i]/Im[i]) and every axis pass transforms
// lanes.Width pencils at once through transformLanes. Pencil-count
// remainders (grids whose pencil counts are not multiples of Width) run
// through the same lane kernels with the unused lanes zero-filled - the
// transform of a zero lane is zero, so the padding never leaks into real
// output and the code stays branch-uniform.
//
// Lane geometry per pass, for the row-major index (ix*Ny + iy)*Nz + iz:
//
//	z pass: lanes = Width consecutive rows (ix,iy); gather is a small
//	        transpose (rows are contiguous, the lane block is element-major).
//	y pass: lanes = Width consecutive iz within one ix; element iy of the
//	        group starts at ix*Ny*Nz + iy*Nz + iz0, so each gather step is
//	        one contiguous Width-wide copy.
//	x pass: lanes = Width consecutive flat pencil indices r in [0, Ny*Nz);
//	        element ix of the group starts at r0 + ix*Ny*Nz - again one
//	        contiguous Width-wide copy per element.

func (p *Plan3) checkSlab(s lanes.Slab, what string) {
	if s.Len() != p.Size() {
		panic(fmt.Sprintf("fourier: slab %s length %d != grid %d", what, s.Len(), p.Size()))
	}
}

// zPassSlab transforms along z, src -> dst (which may be the same slab).
func (p *Plan3) zPassSlab(dst, src lanes.Slab, inverse bool, ws *Workspace3) {
	nz := p.nz
	rows := p.nx * p.ny
	lu := ws.lu.Slice(0, nz*lw)
	lv := ws.lv.Slice(0, nz*lw)
	for r0 := 0; r0 < rows; r0 += lw {
		L := min(lw, rows-r0)
		for l := 0; l < L; l++ {
			base := (r0 + l) * nz
			rre := src.Re[base : base+nz]
			rim := src.Im[base : base+nz]
			for k := 0; k < nz; k++ {
				lu.Re[k*lw+l] = rre[k]
				lu.Im[k*lw+l] = rim[k]
			}
		}
		zeroTailLanes(lu, nz, L)
		p.pz.transformLanes(lv, lu, inverse, ws.wsz)
		for l := 0; l < L; l++ {
			base := (r0 + l) * nz
			rre := dst.Re[base : base+nz]
			rim := dst.Im[base : base+nz]
			for k := 0; k < nz; k++ {
				rre[k] = lv.Re[k*lw+l]
				rim[k] = lv.Im[k*lw+l]
			}
		}
	}
}

// zeroTailLanes clears lanes [L, Width) of an n-element lane block.
func zeroTailLanes(b lanes.Slab, n, L int) {
	if L == lw {
		return
	}
	for k := 0; k < n; k++ {
		for l := L; l < lw; l++ {
			b.Re[k*lw+l] = 0
			b.Im[k*lw+l] = 0
		}
	}
}

// gatherStrided packs Width pencils of length n with element stride into a
// lane block: lane l element k reads src[off + k*stride + l]. The Width
// consecutive source values per element are contiguous, so the full-group
// fast path is an 8-wide copy per element.
func gatherStrided(b lanes.Slab, src lanes.Slab, off, n, stride, L int) {
	if L == lw {
		for k := 0; k < n; k++ {
			o := off + k*stride
			*(*[lw]float64)(b.Re[k*lw:]) = *(*[lw]float64)(src.Re[o:])
			*(*[lw]float64)(b.Im[k*lw:]) = *(*[lw]float64)(src.Im[o:])
		}
		return
	}
	for k := 0; k < n; k++ {
		o := off + k*stride
		for l := 0; l < L; l++ {
			b.Re[k*lw+l] = src.Re[o+l]
			b.Im[k*lw+l] = src.Im[o+l]
		}
		for l := L; l < lw; l++ {
			b.Re[k*lw+l] = 0
			b.Im[k*lw+l] = 0
		}
	}
}

// scatterStrided is the inverse of gatherStrided.
func scatterStrided(dst lanes.Slab, b lanes.Slab, off, n, stride, L int) {
	if L == lw {
		for k := 0; k < n; k++ {
			o := off + k*stride
			*(*[lw]float64)(dst.Re[o:]) = *(*[lw]float64)(b.Re[k*lw:])
			*(*[lw]float64)(dst.Im[o:]) = *(*[lw]float64)(b.Im[k*lw:])
		}
		return
	}
	for k := 0; k < n; k++ {
		o := off + k*stride
		for l := 0; l < L; l++ {
			dst.Re[o+l] = b.Re[k*lw+l]
			dst.Im[o+l] = b.Im[k*lw+l]
		}
	}
}

// yPassSlab transforms along y (stride nz) in place.
func (p *Plan3) yPassSlab(dst lanes.Slab, inverse bool, ws *Workspace3) {
	nx, ny, nz := p.nx, p.ny, p.nz
	lu := ws.lu.Slice(0, ny*lw)
	lv := ws.lv.Slice(0, ny*lw)
	for ix := 0; ix < nx; ix++ {
		base := ix * ny * nz
		for iz0 := 0; iz0 < nz; iz0 += lw {
			L := min(lw, nz-iz0)
			gatherStrided(lu, dst, base+iz0, ny, nz, L)
			p.py.transformLanes(lv, lu, inverse, ws.wsy)
			scatterStrided(dst, lv, base+iz0, ny, nz, L)
		}
	}
}

// xPassSlab transforms along x (stride ny*nz) in place.
func (p *Plan3) xPassSlab(dst lanes.Slab, inverse bool, ws *Workspace3) {
	nx, ny, nz := p.nx, p.ny, p.nz
	stride := ny * nz
	lu := ws.lu.Slice(0, nx*lw)
	lv := ws.lv.Slice(0, nx*lw)
	for r0 := 0; r0 < stride; r0 += lw {
		L := min(lw, stride-r0)
		gatherStrided(lu, dst, r0, nx, stride, L)
		p.px.transformLanes(lv, lu, inverse, ws.wsx)
		scatterStrided(dst, lv, r0, nx, stride, L)
	}
}

// xPassKernelSlab is the kernel-fused x pass of the Poisson round trip:
// per lane group, forward transform, multiply by kernel (carrying the
// global 1/N), inverse transform, write back. The kernel values are
// varying (one per lane), read as contiguous Width-wide blocks.
func (p *Plan3) xPassKernelSlab(buf lanes.Slab, kernel []float64, ws *Workspace3) {
	nx, ny, nz := p.nx, p.ny, p.nz
	stride := ny * nz
	invN := 1 / float64(p.Size())
	lu := ws.lu.Slice(0, nx*lw)
	lv := ws.lv.Slice(0, nx*lw)
	for r0 := 0; r0 < stride; r0 += lw {
		L := min(lw, stride-r0)
		gatherStrided(lu, buf, r0, nx, stride, L)
		p.px.transformLanes(lv, lu, false, ws.wsx)
		if L == lw {
			for k := 0; k < nx; k++ {
				kv := (*[lw]float64)(kernel[r0+k*stride:])
				vr := (*[lw]float64)(lv.Re[k*lw:])
				vi := (*[lw]float64)(lv.Im[k*lw:])
				for l := 0; l < lw; l++ {
					s := kv[l] * invN
					vr[l] *= s
					vi[l] *= s
				}
			}
		} else {
			for k := 0; k < nx; k++ {
				for l := 0; l < L; l++ {
					s := kernel[r0+k*stride+l] * invN
					lv.Re[k*lw+l] *= s
					lv.Im[k*lw+l] *= s
				}
			}
		}
		p.px.transformLanes(lu, lv, true, ws.wsx)
		scatterStrided(buf, lu, r0, nx, stride, L)
	}
}

// RawSlabWS runs one unnormalized transform over a grid slab (no 1/N on
// the inverse), the SoA counterpart of RawSerialWS. dst and src may be the
// same slab.
func (p *Plan3) RawSlabWS(dst, src lanes.Slab, inverse bool, ws *Workspace3) {
	p.checkSlab(dst, "dst")
	p.checkSlab(src, "src")
	p.zPassSlab(dst, src, inverse, ws)
	p.yPassSlab(dst, inverse, ws)
	p.xPassSlab(dst, inverse, ws)
}

// PoissonSlabWS is the fused Poisson round trip over a grid slab:
//
//	buf <- IFFT[ kernel ⊙ FFT[buf] ] / N
//
// the SoA counterpart of PoissonSerialWS: five grid passes, each
// transforming Width pencils per lane-kernel call.
func (p *Plan3) PoissonSlabWS(buf lanes.Slab, kernel []float64, ws *Workspace3) {
	p.checkSlab(buf, "buf")
	if len(kernel) != p.Size() {
		panic(fmt.Sprintf("fourier: Poisson kernel length %d != grid %d", len(kernel), p.Size()))
	}
	p.zPassSlab(buf, buf, false, ws)
	p.yPassSlab(buf, false, ws)
	p.xPassKernelSlab(buf, kernel, ws)
	p.yPassSlab(buf, true, ws)
	p.zPassSlab(buf, buf, true, ws)
}

// ContractSlabWS is the fused Fock-exchange contraction over grid slabs:
//
//	dst += scale * phi ⊙ Poisson[ conj(phi) ⊙ src ]
//
// the SoA counterpart of ContractSerialWS. The pair product is formed
// inside the first z gather and the accumulation inside the last z
// scatter; scale is real (the -alpha/2-or-alpha prefactor is always real),
// which halves the multiplies of the complex-scale formulation. buf is
// caller scratch of grid size and must not alias dst.
func (p *Plan3) ContractSlabWS(dst, phi, src, buf lanes.Slab, kernel []float64, scale float64, ws *Workspace3) {
	p.checkSlab(dst, "dst")
	p.checkSlab(phi, "phi")
	p.checkSlab(src, "src")
	p.checkSlab(buf, "buf")
	if len(kernel) != p.Size() {
		panic(fmt.Sprintf("fourier: Contract kernel length %d != grid %d", len(kernel), p.Size()))
	}
	nz := p.nz
	rows := p.nx * p.ny
	lu := ws.lu.Slice(0, nz*lw)
	lv := ws.lv.Slice(0, nz*lw)
	// Forward z pass with the pair product conj(phi)*src fused into the
	// gather transpose.
	for r0 := 0; r0 < rows; r0 += lw {
		L := min(lw, rows-r0)
		for l := 0; l < L; l++ {
			base := (r0 + l) * nz
			for k := 0; k < nz; k++ {
				pr, pi := phi.Re[base+k], phi.Im[base+k]
				sr, si := src.Re[base+k], src.Im[base+k]
				lu.Re[k*lw+l] = pr*sr + pi*si
				lu.Im[k*lw+l] = pr*si - pi*sr
			}
		}
		zeroTailLanes(lu, nz, L)
		p.pz.transformLanes(lv, lu, false, ws.wsz)
		for l := 0; l < L; l++ {
			base := (r0 + l) * nz
			for k := 0; k < nz; k++ {
				buf.Re[base+k] = lv.Re[k*lw+l]
				buf.Im[base+k] = lv.Im[k*lw+l]
			}
		}
	}
	p.yPassSlab(buf, false, ws)
	p.xPassKernelSlab(buf, kernel, ws)
	p.yPassSlab(buf, true, ws)
	// Inverse z pass with dst += scale*phi*v fused into the scatter.
	for r0 := 0; r0 < rows; r0 += lw {
		L := min(lw, rows-r0)
		for l := 0; l < L; l++ {
			base := (r0 + l) * nz
			for k := 0; k < nz; k++ {
				lu.Re[k*lw+l] = buf.Re[base+k]
				lu.Im[k*lw+l] = buf.Im[base+k]
			}
		}
		zeroTailLanes(lu, nz, L)
		p.pz.transformLanes(lv, lu, true, ws.wsz)
		for l := 0; l < L; l++ {
			base := (r0 + l) * nz
			for k := 0; k < nz; k++ {
				vr, vi := lv.Re[k*lw+l], lv.Im[k*lw+l]
				pr, pi := phi.Re[base+k], phi.Im[base+k]
				dst.Re[base+k] += scale * (pr*vr - pi*vi)
				dst.Im[base+k] += scale * (pr*vi + pi*vr)
			}
		}
	}
}

// ContractPairSlabWS is the two-sided symmetric pair contraction: one
// Poisson solve of v = Poisson[conj(phiI) ⊙ phiJ] with BOTH accumulations
// of the conjugate-pair symmetry fused into the final inverse z pass:
//
//	accJ += scale * phiI ⊙ v
//	accI += scale * phiJ ⊙ conj(v)   (skipped when diag)
//
// This is the (i, j) step of the symmetry-halved reference application;
// fusing the second side saves the separate read-modify-write pass the
// scalar path performs over the pair buffer.
func (p *Plan3) ContractPairSlabWS(accI, accJ, phiI, phiJ, buf lanes.Slab, kernel []float64, scale float64, diag bool, ws *Workspace3) {
	p.checkSlab(accJ, "accJ")
	p.checkSlab(phiI, "phiI")
	p.checkSlab(phiJ, "phiJ")
	p.checkSlab(buf, "buf")
	if !diag {
		p.checkSlab(accI, "accI")
	}
	nz := p.nz
	rows := p.nx * p.ny
	lu := ws.lu.Slice(0, nz*lw)
	lv := ws.lv.Slice(0, nz*lw)
	for r0 := 0; r0 < rows; r0 += lw {
		L := min(lw, rows-r0)
		for l := 0; l < L; l++ {
			base := (r0 + l) * nz
			for k := 0; k < nz; k++ {
				pr, pi := phiI.Re[base+k], phiI.Im[base+k]
				sr, si := phiJ.Re[base+k], phiJ.Im[base+k]
				lu.Re[k*lw+l] = pr*sr + pi*si
				lu.Im[k*lw+l] = pr*si - pi*sr
			}
		}
		zeroTailLanes(lu, nz, L)
		p.pz.transformLanes(lv, lu, false, ws.wsz)
		for l := 0; l < L; l++ {
			base := (r0 + l) * nz
			for k := 0; k < nz; k++ {
				buf.Re[base+k] = lv.Re[k*lw+l]
				buf.Im[base+k] = lv.Im[k*lw+l]
			}
		}
	}
	p.yPassSlab(buf, false, ws)
	p.xPassKernelSlab(buf, kernel, ws)
	p.yPassSlab(buf, true, ws)
	for r0 := 0; r0 < rows; r0 += lw {
		L := min(lw, rows-r0)
		for l := 0; l < L; l++ {
			base := (r0 + l) * nz
			for k := 0; k < nz; k++ {
				lu.Re[k*lw+l] = buf.Re[base+k]
				lu.Im[k*lw+l] = buf.Im[base+k]
			}
		}
		zeroTailLanes(lu, nz, L)
		p.pz.transformLanes(lv, lu, true, ws.wsz)
		if diag {
			for l := 0; l < L; l++ {
				base := (r0 + l) * nz
				for k := 0; k < nz; k++ {
					vr, vi := lv.Re[k*lw+l], lv.Im[k*lw+l]
					pr, pi := phiI.Re[base+k], phiI.Im[base+k]
					accJ.Re[base+k] += scale * (pr*vr - pi*vi)
					accJ.Im[base+k] += scale * (pr*vi + pi*vr)
				}
			}
			continue
		}
		for l := 0; l < L; l++ {
			base := (r0 + l) * nz
			for k := 0; k < nz; k++ {
				vr, vi := lv.Re[k*lw+l], lv.Im[k*lw+l]
				ir, ii := phiI.Re[base+k], phiI.Im[base+k]
				jr, ji := phiJ.Re[base+k], phiJ.Im[base+k]
				accJ.Re[base+k] += scale * (ir*vr - ii*vi)
				accJ.Im[base+k] += scale * (ir*vi + ii*vr)
				accI.Re[base+k] += scale * (jr*vr + ji*vi)
				accI.Im[base+k] += scale * (ji*vr - jr*vi)
			}
		}
	}
}
