//go:build !race

package fourier

const raceEnabled = false
