// Package fourier implements complex discrete Fourier transforms used by the
// plane-wave machinery: mixed-radix Cooley-Tukey for sizes whose prime
// factors are at most 61 and a Bluestein chirp-z fallback for everything
// else, plus 3D plans that parallelize over grid pencils. It is the CUFFT
// stand-in of the reproduction: the Fock exchange operator performs all of
// its N^2 Poisson-like solves through these plans.
//
// Conventions: Forward computes X[k] = sum_j x[j] exp(-2*pi*i*j*k/N) with no
// normalization; Inverse carries the 1/N factor so Inverse(Forward(x)) == x.
package fourier

import (
	"fmt"
	"math"
	"math/cmplx"
)

// maxDirectRadix is the largest prime handled by the O(r^2) generic
// butterfly inside the mixed-radix recursion. Larger prime factors route the
// whole transform through Bluestein.
const maxDirectRadix = 61

// Plan holds precomputed twiddle tables for a 1D transform of fixed length.
// A Plan is immutable after creation and safe for concurrent use.
type Plan struct {
	n       int
	factors []int        // prime factorization of n, ascending
	tw      []complex128 // tw[j] = exp(-2*pi*i*j/n)
	twInv   []complex128 // twInv[j] = exp(+2*pi*i*j/n)
	blu     *bluestein   // non-nil when a prime factor exceeds maxDirectRadix
}

// NewPlan creates a transform plan for length n >= 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("fourier: transform length %d < 1", n)
	}
	p := &Plan{n: n, factors: mergeRadix4(factorize(n))}
	p.tw = make([]complex128, n)
	p.twInv = make([]complex128, n)
	for j := 0; j < n; j++ {
		s, c := math.Sincos(-2 * math.Pi * float64(j) / float64(n))
		p.tw[j] = complex(c, s)
		p.twInv[j] = complex(c, -s)
	}
	if len(p.factors) > 0 && p.factors[len(p.factors)-1] > maxDirectRadix {
		b, err := newBluestein(n)
		if err != nil {
			return nil, err
		}
		p.blu = b
	}
	return p, nil
}

// MustPlan is NewPlan that panics on error; for use with known-good sizes.
func MustPlan(n int) *Plan {
	p, err := NewPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Len reports the transform length.
func (p *Plan) Len() int { return p.n }

// Forward computes the unnormalized DFT of src into dst.
// dst and src must have length Len() and must not alias.
func (p *Plan) Forward(dst, src []complex128) {
	p.transform(dst, src, false)
}

// Inverse computes the inverse DFT (including the 1/N factor) of src into
// dst. dst and src must have length Len() and must not alias.
func (p *Plan) Inverse(dst, src []complex128) {
	p.transform(dst, src, true)
	scale := complex(1/float64(p.n), 0)
	for i := range dst {
		dst[i] *= scale
	}
}

func (p *Plan) transform(dst, src []complex128, inverse bool) {
	if len(dst) != p.n || len(src) != p.n {
		panic(fmt.Sprintf("fourier: buffer length mismatch: plan %d, dst %d, src %d", p.n, len(dst), len(src)))
	}
	if p.n == 1 {
		dst[0] = src[0]
		return
	}
	if p.blu != nil {
		p.blu.transform(dst, src, inverse)
		return
	}
	tw := p.tw
	if inverse {
		tw = p.twInv
	}
	p.recurse(dst, src, p.n, 1, tw, p.factors)
}

// recurse performs a decimation-in-time mixed-radix step: it splits length n
// into r sub-transforms of length m = n/r reading src with stride, then
// combines them in place in dst. tw is the full-length twiddle table; the
// roots of unity of any sub-length divide the top-level table evenly.
func (p *Plan) recurse(dst, src []complex128, n, stride int, tw []complex128, factors []int) {
	if n == 1 {
		dst[0] = src[0]
		return
	}
	r := factors[len(factors)-1] // split off the largest factor for shallow recursion
	m := n / r
	sub := factors[:len(factors)-1]
	for q := 0; q < r; q++ {
		p.recurse(dst[q*m:(q+1)*m], src[q*stride:], m, stride*r, tw, sub)
	}
	// Combine: X[k + p*m] = sum_q tw_n^{q*k} * tw_r^{q*p} * F_q[k].
	step := p.n / n  // maps exponents mod n onto the length-N table
	rstep := p.n / r // maps exponents mod r onto the length-N table
	var t [maxDirectRadix]complex128
	switch r {
	case 2:
		for k := 0; k < m; k++ {
			a := dst[k]
			b := dst[m+k] * tw[k*step]
			dst[k] = a + b
			dst[m+k] = a - b
		}
	case 3:
		w1 := tw[rstep]
		w2 := tw[2*rstep]
		for k := 0; k < m; k++ {
			a := dst[k]
			b := dst[m+k] * tw[k*step]
			c := dst[2*m+k] * tw[(2*k*step)%p.n]
			dst[k] = a + b + c
			dst[m+k] = a + b*w1 + c*w2
			dst[2*m+k] = a + b*w2 + c*w1
		}
	case 4:
		// i factor differs between forward and inverse tables; read it from tw.
		j := tw[rstep] // -i forward, +i inverse
		for k := 0; k < m; k++ {
			a := dst[k]
			b := dst[m+k] * tw[k*step]
			c := dst[2*m+k] * tw[(2*k*step)%p.n]
			d := dst[3*m+k] * tw[(3*k*step)%p.n]
			apc, amc := a+c, a-c
			bpd, bmd := b+d, (b-d)*j
			dst[k] = apc + bpd
			dst[m+k] = amc + bmd
			dst[2*m+k] = apc - bpd
			dst[3*m+k] = amc - bmd
		}
	default:
		for k := 0; k < m; k++ {
			for q := 0; q < r; q++ {
				t[q] = dst[q*m+k] * tw[(q*k*step)%p.n]
			}
			for pp := 0; pp < r; pp++ {
				acc := t[0]
				for q := 1; q < r; q++ {
					acc += t[q] * tw[(q*pp*rstep)%p.n]
				}
				dst[pp*m+k] = acc
			}
		}
	}
}

// mergeRadix4 rewrites pairs of 2s as radix-4 passes, which have a cheaper
// butterfly, keeping the list sorted ascending.
func mergeRadix4(f []int) []int {
	twos := 0
	rest := f[:0]
	for _, v := range f {
		if v == 2 {
			twos++
		} else {
			rest = append(rest, v)
		}
	}
	out := make([]int, 0, len(f))
	if twos%2 == 1 {
		out = append(out, 2)
	}
	for i := 0; i < twos/2; i++ {
		out = append(out, 4)
	}
	out = append(out, rest...)
	// rest was already ascending and >= 3; a single insertion pass keeps
	// the merged list sorted.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// factorize returns the ascending prime factorization of n >= 1.
func factorize(n int) []int {
	var f []int
	for d := 2; d*d <= n; d++ {
		for n%d == 0 {
			f = append(f, d)
			n /= d
		}
	}
	if n > 1 {
		f = append(f, n)
	}
	return f
}

// IsFast reports whether n factors entirely into primes <= 7, the sizes for
// which the mixed-radix path is most efficient.
func IsFast(n int) bool {
	if n < 1 {
		return false
	}
	for _, d := range []int{2, 3, 5, 7} {
		for n%d == 0 {
			n /= d
		}
	}
	return n == 1
}

// NextFast returns the smallest m >= n with prime factors <= 7.
func NextFast(n int) int {
	if n < 1 {
		return 1
	}
	for !IsFast(n) {
		n++
	}
	return n
}

// bluestein implements the chirp-z transform for arbitrary lengths via a
// power-of-two convolution.
type bluestein struct {
	n     int
	m     int // power-of-two convolution length >= 2n-1
	inner *Plan
	chirp []complex128 // chirp[j] = exp(-i*pi*j^2/n), j in [0, n)
	// kernelF / kernelB are the precomputed forward FFTs of the padded
	// conjugate-chirp sequences for the forward and inverse transforms.
	kernelF []complex128
	kernelB []complex128
}

func newBluestein(n int) (*bluestein, error) {
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	inner, err := NewPlan(m)
	if err != nil {
		return nil, err
	}
	b := &bluestein{n: n, m: m, inner: inner}
	b.chirp = make([]complex128, n)
	for j := 0; j < n; j++ {
		// j^2 mod 2n keeps the argument bounded for large n.
		e := float64((j * j) % (2 * n))
		b.chirp[j] = cmplx.Exp(complex(0, -math.Pi*e/float64(n)))
	}
	mk := func(conjugate bool) []complex128 {
		seq := make([]complex128, m)
		for j := 0; j < n; j++ {
			c := b.chirp[j]
			if conjugate {
				c = cmplx.Conj(c)
			}
			// The convolution kernel is the conjugate chirp.
			seq[j] = cmplx.Conj(c)
			if j > 0 {
				seq[m-j] = cmplx.Conj(c)
			}
		}
		out := make([]complex128, m)
		inner.Forward(out, seq)
		return out
	}
	b.kernelF = mk(false)
	b.kernelB = mk(true)
	return b, nil
}

func (b *bluestein) transform(dst, src []complex128, inverse bool) {
	chirpAt := func(j int) complex128 {
		c := b.chirp[j]
		if inverse {
			c = cmplx.Conj(c)
		}
		return c
	}
	kernel := b.kernelF
	if inverse {
		kernel = b.kernelB
	}
	a := make([]complex128, b.m)
	for j := 0; j < b.n; j++ {
		a[j] = src[j] * chirpAt(j)
	}
	fa := make([]complex128, b.m)
	b.inner.Forward(fa, a)
	for i := range fa {
		fa[i] *= kernel[i]
	}
	b.inner.Inverse(a, fa)
	for k := 0; k < b.n; k++ {
		dst[k] = a[k] * chirpAt(k)
	}
}
