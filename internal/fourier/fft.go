// Package fourier implements complex discrete Fourier transforms used by the
// plane-wave machinery: mixed-radix Cooley-Tukey for sizes whose prime
// factors are at most 61 and a Bluestein chirp-z fallback for everything
// else, plus 3D plans that parallelize over grid pencils. It is the CUFFT
// stand-in of the reproduction: the Fock exchange operator performs all of
// its N^2 Poisson-like solves through these plans.
//
// Conventions: Forward computes X[k] = sum_j x[j] exp(-2*pi*i*j*k/N) with no
// normalization; Inverse carries the 1/N factor so Inverse(Forward(x)) == x.
//
// Memory discipline: all per-transform scratch lives in plan-owned
// Workspace objects. NewPlan precomputes every twiddle table the butterfly
// passes read (one dense table per recursion level, so the hot loops index
// sequentially with no modular arithmetic), and callers either hold an
// explicit Workspace or draw one from the plan's sync.Pool - either way the
// steady-state transform performs zero heap allocations.
package fourier

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	"ptdft/internal/lanes"
)

// maxDirectRadix is the largest prime handled by the O(r^2) generic
// butterfly inside the mixed-radix recursion. Larger prime factors route the
// whole transform through Bluestein.
const maxDirectRadix = 61

// stage holds the precomputed combine tables for one level of the
// decimation-in-time recursion: a length-n_l twiddle table indexed q*m+k
// (replacing the (q*k*step) mod N lookups of a table-free implementation)
// and the order-r roots of unity for the cross-output butterfly.
type stage struct {
	r, m     int
	twF, twI []complex128 // tw[q*m+k] = exp(∓2*pi*i*q*k*step/N), len r*m
	rootF    []complex128 // rootF[q] = exp(-2*pi*i*q/r), len r
	rootI    []complex128
	// Split re/im copies of the same tables for the lane-blocked SoA
	// butterflies (internal/lanes layout): one scalar load per lane group
	// instead of a complex128 load per element.
	twFre, twFim, twIre, twIim         []float64
	rootFre, rootFim, rootIre, rootIim []float64
}

// Plan holds precomputed twiddle tables for a 1D transform of fixed length.
// A Plan is immutable after creation and safe for concurrent use; scratch
// needed by the Bluestein fallback is checked out of a pool (or passed
// explicitly as a Workspace), never allocated per call.
type Plan struct {
	n       int
	factors []int   // prime factorization of n, ascending (4s merged)
	stages  []stage // one entry per recursion level, top level first
	blu     *bluestein
	pool    sync.Pool // *Workspace
}

// Workspace is the per-call scratch of one 1D transform. Only plans that
// fall back to Bluestein need backing storage; mixed-radix plans carry a
// zero-cost empty workspace. A Workspace must not be shared between
// concurrent transforms.
type Workspace struct {
	a, fa   []complex128 // Bluestein convolution buffers, length blu.m
	la, lfa lanes.Slab   // lane-blocked Bluestein buffers, length blu.m*lanes.Width
}

// NewWorkspace allocates the scratch one transform of this plan needs.
func (p *Plan) NewWorkspace() *Workspace {
	ws := &Workspace{}
	if p.blu != nil {
		ws.a = make([]complex128, p.blu.m)
		ws.fa = make([]complex128, p.blu.m)
		ws.la = lanes.New(p.blu.m * lanes.Width)
		ws.lfa = lanes.New(p.blu.m * lanes.Width)
	}
	return ws
}

func (p *Plan) getWS() *Workspace   { return p.pool.Get().(*Workspace) }
func (p *Plan) putWS(ws *Workspace) { p.pool.Put(ws) }

// NewPlan creates a transform plan for length n >= 1. All setup work -
// factorization, per-level twiddle tables, Bluestein kernels - happens
// here; the transform itself reads precomputed tables only.
func NewPlan(n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("fourier: transform length %d < 1", n)
	}
	p := &Plan{n: n, factors: mergeRadix4(factorize(n))}
	if len(p.factors) > 0 && p.factors[len(p.factors)-1] > maxDirectRadix {
		b, err := newBluestein(n)
		if err != nil {
			return nil, err
		}
		p.blu = b
	} else {
		p.buildStages()
	}
	p.pool.New = func() any { return p.NewWorkspace() }
	return p, nil
}

// buildStages tabulates the combine twiddles for every recursion level.
// Level l transforms length n_l = n / prod(r_0..r_{l-1}), splitting off
// r_l = the largest remaining factor; its table twF[q*m+k] equals the
// global twiddle exp(-2*pi*i*q*k*step/N) with step = N/n_l.
func (p *Plan) buildStages() {
	n := p.n
	rem := append([]int(nil), p.factors...)
	nl := n
	for len(rem) > 0 {
		r := rem[len(rem)-1]
		rem = rem[:len(rem)-1]
		m := nl / r
		st := stage{
			r: r, m: m,
			twF:   make([]complex128, nl),
			twI:   make([]complex128, nl),
			rootF: make([]complex128, r),
			rootI: make([]complex128, r),
		}
		step := n / nl
		for q := 0; q < r; q++ {
			for k := 0; k < m; k++ {
				e := (q * k * step) % n
				s, c := math.Sincos(-2 * math.Pi * float64(e) / float64(n))
				st.twF[q*m+k] = complex(c, s)
				st.twI[q*m+k] = complex(c, -s)
			}
			s, c := math.Sincos(-2 * math.Pi * float64(q) / float64(r))
			st.rootF[q] = complex(c, s)
			st.rootI[q] = complex(c, -s)
		}
		st.twFre, st.twFim = splitComplex(st.twF)
		st.twIre, st.twIim = splitComplex(st.twI)
		st.rootFre, st.rootFim = splitComplex(st.rootF)
		st.rootIre, st.rootIim = splitComplex(st.rootI)
		p.stages = append(p.stages, st)
		nl = m
	}
}

// splitComplex copies a complex table into separate re/im arrays, the
// uniform-coefficient layout the lane-blocked butterflies read.
func splitComplex(c []complex128) (re, im []float64) {
	re = make([]float64, len(c))
	im = make([]float64, len(c))
	for i, v := range c {
		re[i] = real(v)
		im[i] = imag(v)
	}
	return re, im
}

// MustPlan is NewPlan that panics on error; for use with known-good sizes.
func MustPlan(n int) *Plan {
	p, err := NewPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Len reports the transform length.
func (p *Plan) Len() int { return p.n }

// Forward computes the unnormalized DFT of src into dst.
// dst and src must have length Len() and must not alias.
func (p *Plan) Forward(dst, src []complex128) {
	p.transform(dst, src, false)
}

// Inverse computes the inverse DFT (including the 1/N factor) of src into
// dst. dst and src must have length Len() and must not alias.
func (p *Plan) Inverse(dst, src []complex128) {
	p.transform(dst, src, true)
	scale := complex(1/float64(p.n), 0)
	for i := range dst {
		dst[i] *= scale
	}
}

// transform is TransformWS with pool-backed scratch.
func (p *Plan) transform(dst, src []complex128, inverse bool) {
	if p.blu == nil {
		p.TransformWS(dst, src, inverse, nil)
		return
	}
	ws := p.getWS()
	p.TransformWS(dst, src, inverse, ws)
	p.putWS(ws)
}

// TransformWS runs one unnormalized transform using the caller's
// workspace. ws may be nil for mixed-radix plans (no scratch needed); plans
// with a Bluestein fallback require a workspace from NewWorkspace.
func (p *Plan) TransformWS(dst, src []complex128, inverse bool, ws *Workspace) {
	if len(dst) != p.n || len(src) != p.n {
		panic(fmt.Sprintf("fourier: buffer length mismatch: plan %d, dst %d, src %d", p.n, len(dst), len(src)))
	}
	if p.n == 1 {
		dst[0] = src[0]
		return
	}
	if p.blu != nil {
		if ws == nil || ws.a == nil {
			ws = p.getWS()
			p.blu.transform(dst, src, inverse, ws)
			p.putWS(ws)
			return
		}
		p.blu.transform(dst, src, inverse, ws)
		return
	}
	p.recurse(dst, src, 1, 0, inverse)
}

// recurse performs the decimation-in-time mixed-radix step at recursion
// depth d: split into r sub-transforms of length m reading src with stride,
// then combine in place in dst using the stage's precomputed tables.
func (p *Plan) recurse(dst, src []complex128, stride, d int, inverse bool) {
	if d == len(p.stages) {
		dst[0] = src[0]
		return
	}
	st := &p.stages[d]
	r, m := st.r, st.m
	for q := 0; q < r; q++ {
		p.recurse(dst[q*m:(q+1)*m], src[q*stride:], stride*r, d+1, inverse)
	}
	tw, root := st.twF, st.rootF
	if inverse {
		tw, root = st.twI, st.rootI
	}
	// Combine: X[k + p*m] = sum_q tw[q*m+k] * root[(q*p) mod r] * F_q[k].
	switch r {
	case 2:
		for k := 0; k < m; k++ {
			a := dst[k]
			b := dst[m+k] * tw[m+k]
			dst[k] = a + b
			dst[m+k] = a - b
		}
	case 3:
		w1, w2 := root[1], root[2]
		for k := 0; k < m; k++ {
			a := dst[k]
			b := dst[m+k] * tw[m+k]
			c := dst[2*m+k] * tw[2*m+k]
			dst[k] = a + b + c
			dst[m+k] = a + b*w1 + c*w2
			dst[2*m+k] = a + b*w2 + c*w1
		}
	case 4:
		// root[1] is -i forward, +i inverse.
		j := root[1]
		for k := 0; k < m; k++ {
			a := dst[k]
			b := dst[m+k] * tw[m+k]
			c := dst[2*m+k] * tw[2*m+k]
			d := dst[3*m+k] * tw[3*m+k]
			apc, amc := a+c, a-c
			bpd, bmd := b+d, (b-d)*j
			dst[k] = apc + bpd
			dst[m+k] = amc + bmd
			dst[2*m+k] = apc - bpd
			dst[3*m+k] = amc - bmd
		}
	default:
		var t [maxDirectRadix]complex128
		for k := 0; k < m; k++ {
			for q := 0; q < r; q++ {
				t[q] = dst[q*m+k] * tw[q*m+k]
			}
			for pp := 0; pp < r; pp++ {
				acc := t[0]
				idx := 0
				for q := 1; q < r; q++ {
					idx += pp
					if idx >= r {
						idx -= r
					}
					acc += t[q] * root[idx]
				}
				dst[pp*m+k] = acc
			}
		}
	}
}

// mergeRadix4 rewrites pairs of 2s as radix-4 passes, which have a cheaper
// butterfly, keeping the list sorted ascending.
func mergeRadix4(f []int) []int {
	twos := 0
	rest := f[:0]
	for _, v := range f {
		if v == 2 {
			twos++
		} else {
			rest = append(rest, v)
		}
	}
	out := make([]int, 0, len(f))
	if twos%2 == 1 {
		out = append(out, 2)
	}
	for i := 0; i < twos/2; i++ {
		out = append(out, 4)
	}
	out = append(out, rest...)
	// rest was already ascending and >= 3; a single insertion pass keeps
	// the merged list sorted.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// factorize returns the ascending prime factorization of n >= 1.
func factorize(n int) []int {
	var f []int
	for d := 2; d*d <= n; d++ {
		for n%d == 0 {
			f = append(f, d)
			n /= d
		}
	}
	if n > 1 {
		f = append(f, n)
	}
	return f
}

// IsFast reports whether n factors entirely into primes <= 7, the sizes for
// which the mixed-radix path is most efficient.
func IsFast(n int) bool {
	if n < 1 {
		return false
	}
	for _, d := range []int{2, 3, 5, 7} {
		for n%d == 0 {
			n /= d
		}
	}
	return n == 1
}

// NextFast returns the smallest m >= n with prime factors <= 7.
func NextFast(n int) int {
	if n < 1 {
		return 1
	}
	for !IsFast(n) {
		n++
	}
	return n
}

// bluestein implements the chirp-z transform for arbitrary lengths via a
// power-of-two convolution. Its two convolution buffers live in the
// caller's Workspace, so repeated transforms allocate nothing.
type bluestein struct {
	n     int
	m     int // power-of-two convolution length >= 2n-1
	inner *Plan
	// chirpF / chirpI are the pre/post multipliers exp(∓i*pi*j^2/n) for the
	// forward and inverse transforms.
	chirpF []complex128
	chirpI []complex128
	// kernelF / kernelB are the precomputed forward FFTs of the padded
	// conjugate-chirp sequences for the forward and inverse transforms.
	kernelF []complex128
	kernelB []complex128
	// Split re/im copies for the lane-blocked path.
	chirpFre, chirpFim, chirpIre, chirpIim     []float64
	kernelFre, kernelFim, kernelBre, kernelBim []float64
}

func newBluestein(n int) (*bluestein, error) {
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	inner, err := NewPlan(m)
	if err != nil {
		return nil, err
	}
	b := &bluestein{n: n, m: m, inner: inner}
	b.chirpF = make([]complex128, n)
	b.chirpI = make([]complex128, n)
	for j := 0; j < n; j++ {
		// j^2 mod 2n keeps the argument bounded for large n.
		e := float64((j * j) % (2 * n))
		b.chirpF[j] = cmplx.Exp(complex(0, -math.Pi*e/float64(n)))
		b.chirpI[j] = cmplx.Conj(b.chirpF[j])
	}
	mk := func(conjugate bool) []complex128 {
		seq := make([]complex128, m)
		for j := 0; j < n; j++ {
			c := b.chirpF[j]
			if conjugate {
				c = cmplx.Conj(c)
			}
			// The convolution kernel is the conjugate chirp.
			seq[j] = cmplx.Conj(c)
			if j > 0 {
				seq[m-j] = cmplx.Conj(c)
			}
		}
		out := make([]complex128, m)
		inner.Forward(out, seq)
		return out
	}
	b.kernelF = mk(false)
	b.kernelB = mk(true)
	b.chirpFre, b.chirpFim = splitComplex(b.chirpF)
	b.chirpIre, b.chirpIim = splitComplex(b.chirpI)
	b.kernelFre, b.kernelFim = splitComplex(b.kernelF)
	b.kernelBre, b.kernelBim = splitComplex(b.kernelB)
	return b, nil
}

func (b *bluestein) transform(dst, src []complex128, inverse bool, ws *Workspace) {
	chirp, kernel := b.chirpF, b.kernelF
	if inverse {
		chirp, kernel = b.chirpI, b.kernelB
	}
	a, fa := ws.a, ws.fa
	for j := 0; j < b.n; j++ {
		a[j] = src[j] * chirp[j]
	}
	for j := b.n; j < b.m; j++ {
		a[j] = 0
	}
	b.inner.Forward(fa, a)
	for i := range fa {
		fa[i] *= kernel[i]
	}
	b.inner.Inverse(a, fa)
	for k := 0; k < b.n; k++ {
		dst[k] = a[k] * chirp[k]
	}
}
