package fourier

import (
	"math"
	"math/rand"
	"testing"

	"ptdft/internal/lanes"
)

// slabGrids crosses the lane-remainder space: pencil counts that are
// multiples of lanes.Width, off-by-one remainders, tiny grids smaller than
// one lane group, and a Bluestein axis (67 is prime > maxDirectRadix).
var slabGrids = [][3]int{
	{8, 8, 8},
	{8, 9, 10},
	{5, 7, 3},
	{4, 6, 12},
	{3, 3, 3},
	{1, 16, 5},
	{4, 67, 3},
	{13, 2, 9},
}

func randGridRng(rng *rand.Rand, n int) []complex128 {
	c := make([]complex128, n)
	for i := range c {
		c[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return c
}

func maxDiff(a []complex128, s lanes.Slab) float64 {
	var m float64
	for i, v := range a {
		if d := math.Abs(real(v) - s.Re[i]); d > m {
			m = d
		}
		if d := math.Abs(imag(v) - s.Im[i]); d > m {
			m = d
		}
	}
	return m
}

func TestRawSlabMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range slabGrids {
		p := MustPlan3(dims[0], dims[1], dims[2])
		n := p.Size()
		src := randGridRng(rng, n)
		for _, inverse := range []bool{false, true} {
			ref := make([]complex128, n)
			ws := p.NewWorkspace()
			p.RawSerialWS(ref, src, inverse, ws)

			ss := lanes.New(n)
			lanes.Pack(ss, src)
			ds := lanes.New(n)
			p.RawSlabWS(ds, ss, inverse, ws)
			if d := maxDiff(ref, ds); d > 1e-12 {
				t.Errorf("grid %v inverse=%v: slab vs serial max diff %g", dims, inverse, d)
			}
			// In-place (dst == src) must match too.
			p.RawSlabWS(ss, ss, inverse, ws)
			if d := maxDiff(ref, ss); d > 1e-12 {
				t.Errorf("grid %v inverse=%v: in-place slab max diff %g", dims, inverse, d)
			}
		}
	}
}

func TestPoissonSlabMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dims := range slabGrids {
		p := MustPlan3(dims[0], dims[1], dims[2])
		n := p.Size()
		src := randGridRng(rng, n)
		kernel := make([]float64, n)
		for i := range kernel {
			kernel[i] = rng.Float64()
		}
		ws := p.NewWorkspace()

		ref := append([]complex128(nil), src...)
		p.PoissonSerialWS(ref, kernel, ws)

		s := lanes.New(n)
		lanes.Pack(s, src)
		p.PoissonSlabWS(s, kernel, ws)
		if d := maxDiff(ref, s); d > 1e-12 {
			t.Errorf("grid %v: Poisson slab vs serial max diff %g", dims, d)
		}
	}
}

func TestContractSlabMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, dims := range slabGrids {
		p := MustPlan3(dims[0], dims[1], dims[2])
		n := p.Size()
		phi := randGridRng(rng, n)
		src := randGridRng(rng, n)
		dst0 := randGridRng(rng, n)
		kernel := make([]float64, n)
		for i := range kernel {
			kernel[i] = rng.Float64()
		}
		scale := -0.3125
		ws := p.NewWorkspace()

		ref := append([]complex128(nil), dst0...)
		buf := make([]complex128, n)
		p.ContractSerialWS(ref, phi, src, buf, kernel, complex(scale, 0), ws)

		sphi, ssrc, sdst, sbuf := lanes.New(n), lanes.New(n), lanes.New(n), lanes.New(n)
		lanes.Pack(sphi, phi)
		lanes.Pack(ssrc, src)
		lanes.Pack(sdst, dst0)
		p.ContractSlabWS(sdst, sphi, ssrc, sbuf, kernel, scale, ws)
		if d := maxDiff(ref, sdst); d > 1e-12 {
			t.Errorf("grid %v: Contract slab vs serial max diff %g", dims, d)
		}
	}
}

func TestSlabTransformAllocs(t *testing.T) {
	for _, dims := range [][3]int{{8, 9, 10}, {4, 67, 3}} {
		p := MustPlan3(dims[0], dims[1], dims[2])
		n := p.Size()
		s := lanes.New(n)
		kernel := make([]float64, n)
		ws := p.NewWorkspace()
		p.PoissonSlabWS(s, kernel, ws) // warm
		allocs := testing.AllocsPerRun(5, func() {
			p.RawSlabWS(s, s, false, ws)
			p.PoissonSlabWS(s, kernel, ws)
		})
		if allocs != 0 {
			t.Errorf("grid %v: slab transforms allocated %v per run", dims, allocs)
		}
	}
}

func BenchmarkPoissonSlab(b *testing.B) {
	p := MustPlan3(36, 36, 36)
	n := p.Size()
	s := lanes.New(n)
	for i := 0; i < n; i++ {
		s.Re[i] = float64(i%17) * 0.1
	}
	kernel := make([]float64, n)
	for i := range kernel {
		kernel[i] = 1 / float64(i+1)
	}
	ws := p.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PoissonSlabWS(s, kernel, ws)
	}
}

func BenchmarkPoissonSerialRef(b *testing.B) {
	p := MustPlan3(36, 36, 36)
	n := p.Size()
	buf := make([]complex128, n)
	for i := range buf {
		buf[i] = complex(float64(i%17)*0.1, 0)
	}
	kernel := make([]float64, n)
	for i := range kernel {
		kernel[i] = 1 / float64(i+1)
	}
	ws := p.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PoissonSerialWS(buf, kernel, ws)
	}
}
