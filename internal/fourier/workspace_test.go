package fourier

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func randGrid(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// The workspace-threaded serial path must agree with the pooled one for
// mixed-radix and Bluestein axis sizes alike (67 is prime > maxDirectRadix).
func TestApplySerialWSMatchesApplySerial(t *testing.T) {
	for _, dims := range [][3]int{{8, 9, 10}, {4, 67, 3}, {5, 5, 5}} {
		p := MustPlan3(dims[0], dims[1], dims[2])
		src := randGrid(p.Size(), 1)
		want := make([]complex128, p.Size())
		got := make([]complex128, p.Size())
		ws := p.NewWorkspace()
		for _, inverse := range []bool{false, true} {
			p.ApplySerial(want, src, inverse)
			p.ApplySerialWS(got, src, inverse, ws)
			if d := maxAbsDiff(want, got); d > 1e-12 {
				t.Errorf("dims %v inverse=%v: WS path differs by %g", dims, inverse, d)
			}
		}
	}
}

// RawSerialWS is the unnormalized core: inverse must equal ApplySerial
// scaled back up by N.
func TestRawSerialWSUnnormalized(t *testing.T) {
	p := MustPlan3(6, 5, 4)
	n := p.Size()
	src := randGrid(n, 2)
	norm := make([]complex128, n)
	raw := make([]complex128, n)
	p.ApplySerial(norm, src, true)
	ws := p.NewWorkspace()
	p.RawSerialWS(raw, src, true, ws)
	scale := complex(float64(n), 0)
	for i := range norm {
		if d := cmplx.Abs(raw[i] - norm[i]*scale); d > 1e-9 {
			t.Fatalf("raw inverse differs at %d by %g", i, d)
		}
	}
}

// The fused Poisson round trip must equal the unfused Forward + pointwise
// kernel multiply + normalized Inverse sequence.
func TestPoissonSerialMatchesManual(t *testing.T) {
	for _, dims := range [][3]int{{8, 9, 10}, {4, 67, 3}} {
		p := MustPlan3(dims[0], dims[1], dims[2])
		n := p.Size()
		rng := rand.New(rand.NewSource(3))
		kernel := make([]float64, n)
		for i := range kernel {
			kernel[i] = rng.Float64() + 0.1
		}
		src := randGrid(n, 4)

		want := make([]complex128, n)
		p.ApplySerial(want, src, false)
		for i := range want {
			want[i] *= complex(kernel[i], 0)
		}
		p.ApplySerial(want, want, true)

		got := append([]complex128(nil), src...)
		p.PoissonSerial(got, kernel)
		if d := maxAbsDiff(want, got); d > 1e-9 {
			t.Errorf("dims %v: fused Poisson differs by %g", dims, d)
		}
	}
}

// The fully fused contraction must equal the spelled-out pair product,
// Poisson solve, and accumulation.
func TestContractSerialMatchesManual(t *testing.T) {
	p := MustPlan3(6, 9, 5)
	n := p.Size()
	rng := rand.New(rand.NewSource(5))
	kernel := make([]float64, n)
	for i := range kernel {
		kernel[i] = rng.Float64() + 0.1
	}
	phi := randGrid(n, 6)
	src := randGrid(n, 7)
	scale := complex(-0.25, 0)

	pair := make([]complex128, n)
	for k := range pair {
		pair[k] = cmplx.Conj(phi[k]) * src[k]
	}
	p.PoissonSerial(pair, kernel)
	want := randGrid(n, 8) // nonzero start: Contract accumulates
	got := append([]complex128(nil), want...)
	for k := range want {
		want[k] += scale * phi[k] * pair[k]
	}

	ws := p.NewWorkspace()
	buf := make([]complex128, n)
	p.ContractSerialWS(got, phi, src, buf, kernel, scale, ws)
	if d := maxAbsDiff(want, got); d > 1e-9 {
		t.Errorf("fused contraction differs by %g", d)
	}
}

// The plan-owned scratch makes the steady-state serial transforms
// allocation-free, including the Bluestein fallback and the fused paths.
func TestSerialTransformAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	for _, dims := range [][3]int{{8, 9, 10}, {4, 67, 3}} {
		p := MustPlan3(dims[0], dims[1], dims[2])
		n := p.Size()
		kernel := make([]float64, n)
		for i := range kernel {
			kernel[i] = 1
		}
		buf := randGrid(n, 9)
		dst := make([]complex128, n)
		phi := randGrid(n, 10)
		ws := p.NewWorkspace()
		pairBuf := make([]complex128, n)
		// Warm the pool, then demand zero steady-state allocations.
		p.ApplySerial(dst, buf, true)
		p.PoissonSerial(buf, kernel)
		if a := testing.AllocsPerRun(10, func() { p.ApplySerial(dst, buf, false) }); a > 0 {
			t.Errorf("dims %v: ApplySerial allocates %v per run", dims, a)
		}
		if a := testing.AllocsPerRun(10, func() { p.PoissonSerial(buf, kernel) }); a > 0 {
			t.Errorf("dims %v: PoissonSerial allocates %v per run", dims, a)
		}
		if a := testing.AllocsPerRun(10, func() {
			p.ContractSerialWS(dst, phi, buf, pairBuf, kernel, 1, ws)
		}); a > 0 {
			t.Errorf("dims %v: ContractSerialWS allocates %v per run", dims, a)
		}
	}
}
