package potential

import (
	"math"
	"testing"

	"ptdft/internal/grid"
	"ptdft/internal/lattice"
	"ptdft/internal/pseudo"
	"ptdft/internal/wavefunc"
)

func si8(t *testing.T, ecut float64) *grid.Grid {
	t.Helper()
	return grid.MustNew(lattice.MustSiliconSupercell(1, 1, 1), ecut)
}

func TestDensityIntegratesToElectronCount(t *testing.T) {
	g := si8(t, 4)
	nb := g.Cell.NumBands()
	psi := wavefunc.Random(g, nb, 1)
	rho := Density(g, psi, nb, 2)
	n := IntegrateDensity(g, rho)
	want := g.Cell.NumElectrons()
	if math.Abs(n-want) > 1e-8*want {
		t.Errorf("integrated density %g, want %g", n, want)
	}
	for i, r := range rho {
		if r < 0 {
			t.Fatalf("negative density at %d: %g", i, r)
		}
	}
}

func TestHartreeOfGaussianChargePositive(t *testing.T) {
	// A neutral-compensated Gaussian blob: VH at the blob center must
	// exceed VH far away (repulsive potential hill at the charge).
	g := si8(t, 4)
	rho := make([]float64, g.NDTot)
	center := [3]float64{g.Cell.L[0] / 2, g.Cell.L[1] / 2, g.Cell.L[2] / 2}
	idx := 0
	sigma := 1.5
	for ix := 0; ix < g.ND[0]; ix++ {
		x := float64(ix) / float64(g.ND[0]) * g.Cell.L[0]
		for iy := 0; iy < g.ND[1]; iy++ {
			y := float64(iy) / float64(g.ND[1]) * g.Cell.L[1]
			for iz := 0; iz < g.ND[2]; iz++ {
				z := float64(iz) / float64(g.ND[2]) * g.Cell.L[2]
				r2 := sq(x-center[0]) + sq(y-center[1]) + sq(z-center[2])
				rho[idx] = math.Exp(-r2 / (2 * sigma * sigma))
				idx++
			}
		}
	}
	vh, eh := Hartree(g, rho)
	if eh <= 0 {
		t.Errorf("Hartree energy %g, want positive", eh)
	}
	// Potential at center vs at corner.
	ci := (g.ND[0]/2*g.ND[1]+g.ND[1]/2)*g.ND[2] + g.ND[2]/2
	if vh[ci] <= vh[0] {
		t.Errorf("VH(center)=%g not above VH(corner)=%g", vh[ci], vh[0])
	}
}

func TestHartreeEnergyQuadraticScaling(t *testing.T) {
	g := si8(t, 3)
	rho := make([]float64, g.NDTot)
	for i := range rho {
		rho[i] = math.Sin(float64(i)) + 1.5
	}
	_, e1 := Hartree(g, rho)
	rho2 := make([]float64, len(rho))
	for i := range rho {
		rho2[i] = 2 * rho[i]
	}
	_, e2 := Hartree(g, rho2)
	if math.Abs(e2-4*e1) > 1e-8*math.Abs(e1) {
		t.Errorf("Hartree energy not quadratic: E(2rho)=%g, 4E(rho)=%g", e2, 4*e1)
	}
}

func TestBuildVlocRealAndAttractiveAtAtoms(t *testing.T) {
	g := si8(t, 4)
	vloc := BuildVloc(g, map[int]*pseudo.Potential{0: pseudo.SiliconAH()})
	// Mean is zero by the G=0 convention.
	var mean float64
	for _, v := range vloc {
		mean += v
	}
	mean /= float64(len(vloc))
	if math.Abs(mean) > 1e-8 {
		t.Errorf("Vloc mean = %g, want 0 (G=0 convention)", mean)
	}
	// The potential at an atom site must be below the cell average: find
	// the dense grid point nearest the first atom.
	atom := g.Cell.Atoms[0].Pos
	ix := int(atom[0]/g.Cell.L[0]*float64(g.ND[0])+0.5) % g.ND[0]
	iy := int(atom[1]/g.Cell.L[1]*float64(g.ND[1])+0.5) % g.ND[1]
	iz := int(atom[2]/g.Cell.L[2]*float64(g.ND[2])+0.5) % g.ND[2]
	v := vloc[(ix*g.ND[1]+iy)*g.ND[2]+iz]
	if v >= 0 {
		t.Errorf("Vloc at atom = %g, want negative (attractive core)", v)
	}
}

func TestSCFPotentialEnergiesFinite(t *testing.T) {
	g := si8(t, 4)
	nb := g.Cell.NumBands()
	psi := wavefunc.Random(g, nb, 2)
	rho := Density(g, psi, nb, 2)
	vloc := BuildVloc(g, map[int]*pseudo.Potential{0: pseudo.SiliconAH()})
	veff, en := SCFPotential(g, rho, vloc, 1)
	if len(veff) != g.NDTot {
		t.Fatal("veff size mismatch")
	}
	for _, e := range []float64{en.Hartree, en.XC, en.Local} {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("non-finite energy %v", en)
		}
	}
	if en.Hartree <= 0 {
		t.Errorf("Hartree energy %g, want positive", en.Hartree)
	}
	if en.XC >= 0 {
		t.Errorf("XC energy %g, want negative", en.XC)
	}
}

func TestRestrictToWaveConstant(t *testing.T) {
	g := si8(t, 3)
	dense := make([]float64, g.NDTot)
	for i := range dense {
		dense[i] = 3.25
	}
	wave := RestrictToWave(g, dense)
	for i, v := range wave {
		if math.Abs(v-3.25) > 1e-9 {
			t.Fatalf("restricted constant differs at %d: %g", i, v)
		}
	}
}

func TestDensityDiffZeroForIdentical(t *testing.T) {
	g := si8(t, 3)
	rho := make([]float64, g.NDTot)
	for i := range rho {
		rho[i] = float64(i % 7)
	}
	if d := DensityDiff(g, rho, rho, 32); d != 0 {
		t.Errorf("DensityDiff identical = %g", d)
	}
	rho2 := make([]float64, len(rho))
	copy(rho2, rho)
	rho2[0] += 1
	if d := DensityDiff(g, rho, rho2, 32); d <= 0 {
		t.Errorf("DensityDiff different = %g, want > 0", d)
	}
}

func sq(x float64) float64 { return x * x }
