// Package potential evaluates the density-dependent local potentials of
// Eq. 2: the electron density on the dense grid, the Hartree potential
// (Poisson solve in G space), the semi-local exchange-correlation
// potential, and the static local pseudopotential assembled from form
// factors and structure factors. These are the "others" components of the
// paper's cost breakdown (section 3.4) - cheap in absolute terms but the
// part that limits strong scaling once the Fock operator is accelerated.
package potential

import (
	"math"
	"sync"

	"ptdft/internal/grid"
	"ptdft/internal/parallel"
	"ptdft/internal/pseudo"
	"ptdft/internal/xc"
)

// Energies collects the local-potential energy contributions (Ha).
type Energies struct {
	Hartree float64
	XC      float64
	Local   float64
}

// BuildVloc assembles the static local pseudopotential on the dense grid in
// real space: V(G) = (1/Omega) * sum_s v_s(|G|) S_s(G), with the G = 0 term
// set to zero (it cancels against the Hartree and ion-ion G = 0 terms for a
// neutral cell; the constant shift does not affect dynamics).
func BuildVloc(g *grid.Grid, pots map[int]*pseudo.Potential) []float64 {
	coeff := make([]complex128, g.NDTot)
	invOmega := 1 / g.Volume()
	// Group atoms by species once.
	bySpecies := map[int][][3]float64{}
	for _, a := range g.Cell.Atoms {
		bySpecies[a.Species] = append(bySpecies[a.Species], a.Pos)
	}
	parallel.ForBlock(g.NDTot, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			g2 := g.G2Dense[k]
			if g2 < 1e-12 {
				continue // G = 0 handled by convention
			}
			gv := g.GVecDense[k]
			var acc complex128
			for s, positions := range bySpecies {
				pot, ok := pots[s]
				if !ok {
					continue
				}
				ff := pot.LocalFormFactor(g2)
				var sre, sim float64
				for _, tau := range positions {
					ph := gv[0]*tau[0] + gv[1]*tau[1] + gv[2]*tau[2]
					s, c := math.Sincos(-ph)
					sre += c
					sim += s
				}
				acc += complex(ff*sre, ff*sim)
			}
			coeff[k] = acc * complex(invOmega, 0)
		}
	})
	field := make([]complex128, g.NDTot)
	g.DenseInverse(field, coeff)
	out := make([]float64, g.NDTot)
	for i, v := range field {
		out[i] = real(v)
	}
	return out
}

// Density accumulates the electron density rho(r) = occ * sum_i |psi_i(r)|^2
// on the dense grid from sphere-coefficient bands (band-major, nb x NG).
// occ is the orbital occupation (2 for spin-restricted).
func Density(g *grid.Grid, bands []complex128, nb int, occ float64) []float64 {
	rho := make([]float64, g.NDTot)
	var mu sync.Mutex
	parallel.For(nb, func(i int) {
		box := make([]complex128, g.NDTot)
		c := bands[i*g.NG : (i+1)*g.NG]
		// Serial transform: the band loop supplies the parallelism.
		for j := range box {
			box[j] = 0
		}
		for s, k := range g.SphereIdxD {
			box[k] = c[s]
		}
		g.PlanD.ApplySerial(box, box, true)
		scale := float64(g.NDTot) / math.Sqrt(g.Volume())
		local := make([]float64, g.NDTot)
		for j, v := range box {
			re := real(v) * scale
			im := imag(v) * scale
			local[j] = occ * (re*re + im*im)
		}
		mu.Lock()
		for j := range rho {
			rho[j] += local[j]
		}
		mu.Unlock()
	})
	return rho
}

// Hartree solves the Poisson equation for the given density and returns the
// Hartree potential on the dense grid together with the Hartree energy.
// The G = 0 component is dropped (jellium compensation).
func Hartree(g *grid.Grid, rho []float64) ([]float64, float64) {
	work := make([]complex128, g.NDTot)
	for i, r := range rho {
		work[i] = complex(r, 0)
	}
	g.DenseForward(work, work)
	parallel.ForBlock(g.NDTot, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			g2 := g.G2Dense[k]
			if g2 < 1e-12 {
				work[k] = 0
				continue
			}
			work[k] *= complex(4*math.Pi/g2, 0)
		}
	})
	g.DenseInverse(work, work)
	vh := make([]float64, g.NDTot)
	for i, v := range work {
		vh[i] = real(v)
	}
	var eh float64
	for i := range rho {
		eh += vh[i] * rho[i]
	}
	eh *= 0.5 * g.DV()
	return vh, eh
}

// XCPotential evaluates the semi-local exchange-correlation potential and
// energy for the density. exScale attenuates the semi-local exchange when a
// hybrid functional carries part of it through the Fock operator.
func XCPotential(rho []float64, exScale, dv float64) ([]float64, float64) {
	v := make([]float64, len(rho))
	var mu sync.Mutex
	var exc float64
	parallel.ForBlock(len(rho), func(lo, hi int) {
		var acc float64
		for i := lo; i < hi; i++ {
			eps, pot := xc.LDA(rho[i], exScale)
			v[i] = pot
			acc += eps * rho[i]
		}
		mu.Lock()
		exc += acc
		mu.Unlock()
	})
	return v, exc * dv
}

// SCFPotential bundles the density-dependent potential assembly: given the
// density it returns Veff = Vloc + VH + Vxc on the dense grid and the
// energy pieces.
func SCFPotential(g *grid.Grid, rho, vloc []float64, exScale float64) ([]float64, Energies) {
	vh, eh := Hartree(g, rho)
	vxc, exc := XCPotential(rho, exScale, g.DV())
	var eloc float64
	veff := make([]float64, g.NDTot)
	for i := range veff {
		veff[i] = vloc[i] + vh[i] + vxc[i]
		eloc += vloc[i] * rho[i]
	}
	eloc *= g.DV()
	return veff, Energies{Hartree: eh, XC: exc, Local: eloc}
}

// RestrictToWave Fourier-truncates a dense-grid real potential onto the
// wavefunction grid, where it is applied point-wise to orbitals.
func RestrictToWave(g *grid.Grid, dense []float64) []float64 {
	src := make([]complex128, g.NDTot)
	for i, v := range dense {
		src[i] = complex(v, 0)
	}
	dst := make([]complex128, g.NTot)
	g.RestrictDenseToWave(dst, src)
	out := make([]float64, g.NTot)
	for i, v := range dst {
		out[i] = real(v)
	}
	return out
}

// IntegrateDensity returns the total electron count of a dense-grid density.
func IntegrateDensity(g *grid.Grid, rho []float64) float64 {
	var s float64
	for _, r := range rho {
		s += r
	}
	return s * g.DV()
}

// DensityDiff returns the L1 density difference per electron,
// norm = integral |rho1 - rho2| dr / Nelec, the SCF convergence monitor of
// section 4 (stopping criterion 1e-6).
func DensityDiff(g *grid.Grid, rho1, rho2 []float64, nelec float64) float64 {
	var s float64
	for i := range rho1 {
		s += math.Abs(rho1[i] - rho2[i])
	}
	return s * g.DV() / nelec
}
