package perf

import (
	"math"
	"testing"
)

// paperTable1 holds the per-SCF Table 1 cells we calibrate/validate
// against: GPUs -> {FockComp, FockTotal, PerSCF, Total}.
var paperTable1 = map[int][4]float64{
	36:   {90.99, 91.7, 101.36, 2453.8},
	72:   {45.61, 46.5, 52.4, 1269.1},
	144:  {27.05, 28.3, 32.5, 783.0},
	288:  {11.27, 13.1, 16.4, 393.9},
	384:  {8.31, 10.3, 13.4, 323.2},
	768:  {4.38, 8.1, 10.9, 260.9},
	1536: {2.44, 8.5, 10.9, 262.5},
	3072: {1.43, 9.5, 12.1, 286.6},
}

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Abs(want)
}

func TestReferenceSystemSize(t *testing.T) {
	if Reference.Ne != 3072 {
		t.Errorf("Ne = %d, want 3072", Reference.Ne)
	}
	if Reference.NG != 648000 {
		t.Errorf("NG = %d, want 648000", Reference.NG)
	}
	if Reference.NGd != 5184000 {
		t.Errorf("NGd = %d, want 8x NG", Reference.NGd)
	}
}

func TestCalibrationPointExact(t *testing.T) {
	m := New(Reference)
	b := m.SCF(36)
	if relErr(b.FockComp, 90.99) > 1e-12 {
		t.Errorf("calibration broken: FockComp(36) = %g", b.FockComp)
	}
	if relErr(b.FockMPI, 0.71) > 1e-12 {
		t.Errorf("calibration broken: FockMPI(36) = %g", b.FockMPI)
	}
}

func TestTable1FockComputationShape(t *testing.T) {
	// The Fock computation is the paper's dominant term; the 1/P model
	// must track every measured cell within 35% (the paper itself shows
	// deviations from ideal scaling at 144 and 3072 GPUs).
	m := New(Reference)
	for p, row := range paperTable1 {
		got := m.SCF(p).FockComp
		if e := relErr(got, row[0]); e > 0.35 {
			t.Errorf("P=%d: FockComp model %.2f vs paper %.2f (err %.0f%%)", p, got, row[0], e*100)
		}
	}
}

func TestTable1PerSCFShape(t *testing.T) {
	m := New(Reference)
	for p, row := range paperTable1 {
		got := m.SCF(p).PerSCF
		if e := relErr(got, row[2]); e > 0.30 {
			t.Errorf("P=%d: perSCF model %.2f vs paper %.2f (err %.0f%%)", p, got, row[2], e*100)
		}
	}
}

func TestTable1TotalShape(t *testing.T) {
	m := New(Reference)
	for p, row := range paperTable1 {
		got := m.StepTotal(p)
		if e := relErr(got, row[3]); e > 0.30 {
			t.Errorf("P=%d: step total model %.1f vs paper %.1f (err %.0f%%)", p, got, row[3], e*100)
		}
	}
}

func TestSpeedupMatchesPaperHeadlines(t *testing.T) {
	// Section 6: 7x at 72 GPUs (equal power), 34x at 768 GPUs (best).
	m := New(Reference)
	if s := m.Speedup(72); math.Abs(s-7.0) > 1.0 {
		t.Errorf("speedup(72) = %.1f, paper reports 7.0", s)
	}
	if s := m.Speedup(768); math.Abs(s-34.0) > 5.0 {
		t.Errorf("speedup(768) = %.1f, paper reports 34", s)
	}
	// Scaling saturates: 3072 GPUs is no better than 768.
	if m.Speedup(3072) > m.Speedup(768)+1 {
		t.Error("model should saturate beyond 768 GPUs as the paper observed")
	}
}

func TestStrongScalingSaturates(t *testing.T) {
	// Fig. 7a: near-ideal below 384, MPI-dominated beyond 768.
	m := New(Reference)
	t36 := m.StepTotal(36)
	t144 := m.StepTotal(144)
	eff144 := t36 / t144 / 4.0 // parallel efficiency going 36 -> 144
	if eff144 < 0.75 {
		t.Errorf("efficiency at 144 GPUs %.2f, want near-ideal", eff144)
	}
	t768 := m.StepTotal(768)
	t3072 := m.StepTotal(3072)
	if t3072 < t768*0.9 {
		t.Errorf("scaling should break down after 768 GPUs: t768=%.0f t3072=%.0f", t768, t3072)
	}
}

func TestHPsiPercentRange(t *testing.T) {
	// Table 1 last row: ~90% at 36 GPUs falling to ~75-80% at 768+.
	m := New(Reference)
	if p := m.HPsiPercent(36); p < 85 || p > 95 {
		t.Errorf("HPsi%%(36) = %.1f, paper reports 90%%", p)
	}
	if p := m.HPsiPercent(768); p < 65 || p > 85 {
		t.Errorf("HPsi%%(768) = %.1f, paper reports 74.6%%", p)
	}
}

func TestTable2BcastGrowsTable2MemcpyShrinks(t *testing.T) {
	m := New(Reference)
	paperBcast := map[int]float64{36: 18.78, 144: 31.06, 768: 92.26, 3072: 193.89}
	for p, want := range paperBcast {
		got := m.Comm(p).BcastTime
		if e := relErr(got, want); e > 0.35 {
			t.Errorf("P=%d: Bcast model %.1f vs paper %.1f", p, got, want)
		}
	}
	paperMemcpy := map[int]float64{36: 60.80, 288: 8.57, 3072: 2.24}
	for p, want := range paperMemcpy {
		got := m.Comm(p).MemcpyTime
		if e := relErr(got, want); e > 0.35 {
			t.Errorf("P=%d: memcpy model %.1f vs paper %.1f", p, got, want)
		}
	}
}

func TestTable2MPIOvertakesComputeAtScale(t *testing.T) {
	// The paper's conclusion: at 36 GPUs compute dominates (2341 vs 52);
	// by 3072 GPUs MPI exceeds compute (212 vs 72).
	m := New(Reference)
	c36 := m.Comm(36)
	if c36.MPITotal > c36.ComputeTime/10 {
		t.Errorf("at 36 GPUs compute should dominate: MPI %.0f vs compute %.0f", c36.MPITotal, c36.ComputeTime)
	}
	c3072 := m.Comm(3072)
	if c3072.MPITotal < c3072.ComputeTime {
		t.Errorf("at 3072 GPUs MPI should dominate: MPI %.0f vs compute %.0f", c3072.MPITotal, c3072.ComputeTime)
	}
}

func TestFLOPPerStepMatchesNVPROF(t *testing.T) {
	// Section 7: 3.87e16 FLOP per TDDFT step.
	m := New(Reference)
	got := m.FLOPPerStep()
	if e := relErr(got, 3.87e16); e > 0.25 {
		t.Errorf("FLOP/step = %.3g, paper (NVPROF) reports 3.87e16", got)
	}
}

func TestFLOPSEfficiencyDeclines(t *testing.T) {
	// Section 7: 5.5% at 36 GPUs, ~2% at 768.
	m := New(Reference)
	e36 := m.FLOPSEfficiency(36)
	if e36 < 0.04 || e36 > 0.07 {
		t.Errorf("efficiency(36) = %.3f, paper reports 0.055", e36)
	}
	e768 := m.FLOPSEfficiency(768)
	if e768 < 0.015 || e768 > 0.035 {
		t.Errorf("efficiency(768) = %.3f, paper reports ~0.02", e768)
	}
	if e768 >= e36 {
		t.Error("efficiency must decline with GPU count")
	}
}

func TestRK4Ratio(t *testing.T) {
	// Fig. 6: PT-CN is 20x faster at 36 GPUs growing to ~30x at 768
	// (paper text); the chart bars indicate >=15x. Require the ratio to
	// be large and to grow with P.
	m := New(Reference)
	r36 := m.PTCNvsRK4(36)
	r768 := m.PTCNvsRK4(768)
	if r36 < 14 || r36 > 26 {
		t.Errorf("RK4/PT-CN ratio at 36 GPUs = %.1f, paper reports ~20", r36)
	}
	if r768 < 17 || r768 > 34 {
		t.Errorf("RK4/PT-CN ratio at 768 GPUs = %.1f, paper reports ~30", r768)
	}
	if r768 <= r36 {
		t.Error("ratio must grow with GPU count (paper: 20x -> 30x)")
	}
}

func TestRK4AbsoluteScale(t *testing.T) {
	// Fig. 6 bars: RK4 at 36 GPUs is ~40000 s per 50 as.
	m := New(Reference)
	got := m.RK4StepTotal(36)
	if got < 30000 || got > 50000 {
		t.Errorf("RK4(36) = %.0f s, chart shows ~40000 s", got)
	}
}

func TestFockStagesOrdering(t *testing.T) {
	// Fig. 3: each optimization must reduce the time; CPU/final ~ 7x.
	m := New(Reference)
	stages := m.FockStages(72)
	if len(stages) != 6 {
		t.Fatalf("want 6 stages, got %d", len(stages))
	}
	for i := 1; i < len(stages); i++ {
		if stages[i].Seconds >= stages[i-1].Seconds {
			t.Errorf("stage %q (%.1f) not faster than %q (%.1f)",
				stages[i].Name, stages[i].Seconds, stages[i-1].Name, stages[i-1].Seconds)
		}
	}
	ratio := stages[0].Seconds / stages[len(stages)-1].Seconds
	if ratio < 6 || ratio > 9 {
		t.Errorf("CPU/GPU Fock ratio = %.1f, paper reports ~7", ratio)
	}
	// Final stage equals the Table 1 value by construction.
	if relErr(stages[5].Seconds, m.SCF(72).FockTotal) > 1e-12 {
		t.Error("final stage must equal the Table 1 Fock total")
	}
}

func TestWeakScaling(t *testing.T) {
	// Fig. 8: 48..1536 atoms with GPUs = Natom/2; close to O(N^2) with
	// small systems scaling better than ideal.
	natoms := []int{48, 96, 192, 384, 768, 1536}
	pts := WeakScaling(natoms)
	// Paper: Si192 on 96 GPUs takes ~16 s per 50 as.
	for _, pt := range pts {
		if pt.Natom == 192 {
			if pt.Time < 8 || pt.Time > 26 {
				t.Errorf("Si192 step = %.1f s, paper reports ~16 s", pt.Time)
			}
			if pt.GPUs != 96 {
				t.Errorf("Si192 GPUs = %d, want 96", pt.GPUs)
			}
		}
	}
	// The largest system anchors the ideal curve.
	last := pts[len(pts)-1]
	if relErr(last.Time, last.Ideal) > 1e-12 {
		t.Error("ideal curve must pass through the largest system")
	}
	// "Scales even better than ideal": the effective growth exponent
	// between sizes stays below the ideal 2, and approaches it at the
	// large end where the Fock exchange dominates ("still very close to
	// the ideal scaling" at 1536 atoms).
	for i := 1; i < len(pts); i++ {
		e := GrowthExponent(pts[i-1], pts[i])
		if e > 2.05 {
			t.Errorf("Si%d->Si%d: growth exponent %.2f above ideal 2", pts[i-1].Natom, pts[i].Natom, e)
		}
		if e <= 0 {
			t.Errorf("Si%d->Si%d: time must grow with system size", pts[i-1].Natom, pts[i].Natom)
		}
	}
	eLast := GrowthExponent(pts[len(pts)-2], last)
	if eLast < 1.5 {
		t.Errorf("final growth exponent %.2f: should approach the ideal 2 as Fock dominates", eLast)
	}
}

func TestMemoryBudget(t *testing.T) {
	// Section 7: at 36 GPUs each rank holds <100 wavefunctions; 20-copy
	// Anderson history needs <20 GB per rank, 120 GB per node - inside
	// the 512 GB Summit node.
	m := New(Reference)
	gb := m.MemoryPerRankGB(36, 20)
	if gb > 20 {
		t.Errorf("Anderson memory %.1f GB per rank, paper bounds it by 20", gb)
	}
	perNode := gb * 6
	if perNode > 512 {
		t.Errorf("node memory %.0f GB exceeds Summit's 512 GB", perNode)
	}
	if perNode < 50 || perNode > 200 {
		t.Errorf("node memory %.0f GB, paper estimates ~120 GB", perNode)
	}
}

func TestPowerComparisonSection6(t *testing.T) {
	m := New(Reference)
	pc := m.M.ComparePower(3072, 72, m.cpuStep(), m.StepTotal(72))
	if pc.CPUNodes != 70 {
		// 3072/44 = 69.8 -> 70 by pure core count; the paper provisions 73
		// nodes in practice. Either way the power conclusion holds.
		t.Logf("CPU nodes = %d (paper provisions 73)", pc.CPUNodes)
	}
	if pc.GPUNodes != 12 {
		t.Errorf("GPU nodes = %d, want 12", pc.GPUNodes)
	}
	if pc.GPUPowerW != 26160 {
		t.Errorf("GPU power = %.0f W, paper reports 26160", pc.GPUPowerW)
	}
	if pc.SpeedupAtEqualPower < 6 || pc.SpeedupAtEqualPower > 8 {
		t.Errorf("equal-power speedup = %.1f, paper reports 7", pc.SpeedupAtEqualPower)
	}
}
