package perf

import (
	"path/filepath"
	"testing"
)

func TestRecordBenchUpsertAndLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	recs := []BenchRecord{
		{Name: "BenchmarkFockB", Label: "pr2", NsPerOp: 100, AllocsPerOp: 3, Grid: [3]int{9, 9, 9}, NB: 4},
		{Name: "BenchmarkFockA", Label: "pr2", NsPerOp: 50, AllocsPerOp: 0, Grid: [3]int{9, 9, 9}, NB: 4},
		{Name: "BenchmarkFockA", Label: "baseline", NsPerOp: 200, AllocsPerOp: 175, Grid: [3]int{9, 9, 9}, NB: 4},
	}
	for _, r := range recs {
		if err := RecordBench(path, r); err != nil {
			t.Fatal(err)
		}
	}
	// Upsert: same (name, label) replaces in place.
	if err := RecordBench(path, BenchRecord{Name: "BenchmarkFockA", Label: "pr2", NsPerOp: 40, Grid: [3]int{9, 9, 9}, NB: 4}); err != nil {
		t.Fatal(err)
	}
	bf, err := LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf.Records) != 3 {
		t.Fatalf("got %d records, want 3", len(bf.Records))
	}
	// Sorted by (name, label).
	for i := 1; i < len(bf.Records); i++ {
		a, b := bf.Records[i-1], bf.Records[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Label > b.Label) {
			t.Errorf("records not sorted at %d: %v >= %v", i, a, b)
		}
	}
	r, ok := bf.Find("BenchmarkFockA", "pr2")
	if !ok || r.NsPerOp != 40 {
		t.Errorf("upsert failed: %v %v", r, ok)
	}
	if _, ok := bf.Find("BenchmarkFockA", "baseline"); !ok {
		t.Error("baseline record lost on upsert")
	}
}

func TestLoadBenchMissingFile(t *testing.T) {
	bf, err := LoadBench(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil || len(bf.Records) != 0 {
		t.Errorf("missing file should load empty: %v %v", bf, err)
	}
}

func TestRecordBenchRejectsAnonymous(t *testing.T) {
	if err := RecordBench(filepath.Join(t.TempDir(), "b.json"), BenchRecord{}); err == nil {
		t.Error("nameless record accepted")
	}
}
