// Benchmark trajectory recording: the BENCH_*.json files that pin the
// repository's measured performance over time. Each recorded benchmark
// appends (or updates) one BenchRecord keyed by (name, label), so the file
// accumulates a trajectory - the pre-optimization baseline, each PR's
// numbers, CI runs - that future changes are held against (the ROADMAP's
// "as fast as the hardware allows" is enforceable only if regressions are
// visible).
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// BenchRecord is one benchmark measurement at one point of the trajectory.
type BenchRecord struct {
	// Name is the Go benchmark name (e.g. "BenchmarkFockApplyReference").
	Name string `json:"name"`
	// Label identifies the trajectory point: a PR tag, "ci", a local
	// experiment. (name, label) is the upsert key.
	Label string `json:"label"`
	// NsPerOp is the measured wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp counts heap allocations per operation; negative means
	// not measured.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Grid is the wavefunction FFT box of the benchmark system.
	Grid [3]int `json:"grid"`
	// NB is the number of bands (reference orbitals) involved.
	NB int `json:"nb"`
	// Workers is the parallel worker bound the benchmark ran under.
	Workers int `json:"workers,omitempty"`
	// Metrics carries benchmark-specific scalars beyond the wall time -
	// the job server's load test records jobs/hour and p99 submit-to-done
	// latency here. Keys are snake_case metric names.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchFile is the on-disk trajectory: a flat record list, kept sorted by
// (name, label) for stable diffs.
type BenchFile struct {
	Records []BenchRecord `json:"records"`
}

// BenchLabel resolves the trajectory label for new records: the
// PTDFT_BENCH_LABEL environment variable, or "local".
func BenchLabel() string {
	if l := os.Getenv("PTDFT_BENCH_LABEL"); l != "" {
		return l
	}
	return "local"
}

// DefaultBenchPath resolves file against the module root (the nearest
// parent directory of the working directory containing go.mod), so
// benchmarks in any package write the same trajectory file. Falls back to
// the working directory when no go.mod is found.
func DefaultBenchPath(file string) string {
	dir, err := os.Getwd()
	if err != nil {
		return file
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return filepath.Join(d, file)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return filepath.Join(dir, file)
		}
		d = parent
	}
}

// RecordBench upserts rec into the trajectory file at path: an existing
// record with the same (name, label) is replaced, anything else is
// preserved. The read-modify-write runs under an O_EXCL lock file so test
// binaries of different packages recording concurrently cannot drop each
// other's records, and the write itself is atomic (temp file + rename).
func RecordBench(path string, rec BenchRecord) error {
	if rec.Name == "" {
		return fmt.Errorf("perf: benchmark record needs a name")
	}
	unlock, err := lockFile(path + ".lock")
	if err != nil {
		return err
	}
	defer unlock()
	var bf BenchFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &bf); err != nil {
			return fmt.Errorf("perf: corrupt bench file %s: %w", path, err)
		}
	}
	replaced := false
	for i := range bf.Records {
		if bf.Records[i].Name == rec.Name && bf.Records[i].Label == rec.Label {
			bf.Records[i] = rec
			replaced = true
			break
		}
	}
	if !replaced {
		bf.Records = append(bf.Records, rec)
	}
	sort.SliceStable(bf.Records, func(i, j int) bool {
		if bf.Records[i].Name != bf.Records[j].Name {
			return bf.Records[i].Name < bf.Records[j].Name
		}
		return bf.Records[i].Label < bf.Records[j].Label
	})
	data, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// lockFile acquires an exclusive advisory lock by creating path with
// O_EXCL, retrying briefly; a stale lock older than the timeout is broken.
func lockFile(path string) (func(), error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			return func() { os.Remove(path) }, nil
		}
		if !os.IsExist(err) {
			return nil, err
		}
		if time.Now().After(deadline) {
			// Assume a crashed holder left the lock behind.
			os.Remove(path)
			continue
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// RecordMeasurement is the one-call form benchmarks use: it assembles the
// record (label from PTDFT_BENCH_LABEL, path resolved against the module
// root) and upserts it into the trajectory file.
func RecordMeasurement(file, name string, nsPerOp, allocsPerOp float64, gridDims [3]int, nb, workers int) error {
	return RecordBench(DefaultBenchPath(file), BenchRecord{
		Name:        name,
		Label:       BenchLabel(),
		NsPerOp:     nsPerOp,
		AllocsPerOp: allocsPerOp,
		Grid:        gridDims,
		NB:          nb,
		Workers:     workers,
	})
}

// LoadBench reads a trajectory file; a missing file yields an empty
// trajectory.
func LoadBench(path string) (BenchFile, error) {
	var bf BenchFile
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return bf, nil
		}
		return bf, err
	}
	err = json.Unmarshal(data, &bf)
	return bf, err
}

// Find returns the record with the given name and label, if present.
func (bf BenchFile) Find(name, label string) (BenchRecord, bool) {
	for _, r := range bf.Records {
		if r.Name == name && r.Label == label {
			return r, true
		}
	}
	return BenchRecord{}, false
}
