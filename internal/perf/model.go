// Package perf is the calibrated Summit performance model that regenerates
// the paper's evaluation: Tables 1-2 and Figures 3, 6, 7, 8, 9, 10. Every
// component cost is (documented physical scaling law) x (base constant
// calibrated against one cell of Table 1/2 at the Si1536 reference system).
// Absolute numbers therefore track the paper by construction at the
// calibration points; everything else - scaling shape, component ranking,
// crossover points, weak-scaling exponents, RK4/PT-CN ratios - follows
// from the model and is compared against the paper in EXPERIMENTS.md.
//
// Calibration sources (all from the paper):
//   - Table 1 at 36 GPUs: per-SCF component times for Si1536.
//   - Table 2: MPI_Bcast total ~ 3.2*sqrt(P) s/step (fat-tree congestion
//     exponent 1/2 fitted across the 36..3072 GPU range).
//   - Section 6: CPU baseline 8874 s/step with 3072 cores.
//   - Section 7: 3.87e16 FLOP/step, ~90% HBM utilization, CUFFT at ~11%
//     of V100 peak.
package perf

import (
	"math"

	"ptdft/internal/machine"
)

// SystemSize describes a silicon test system of section 4.
type SystemSize struct {
	Natom int
	Ne    int // orbitals = 2 x atoms
	NG    int // wavefunction grid points
	NGd   int // charge density grid points (8x NG)
}

// SiliconSystem builds the size descriptor for an Natom silicon supercell,
// matching the paper's Si1536 reference exactly (NG = 648,000).
func SiliconSystem(natom int) SystemSize {
	ng := int(648000.0 * float64(natom) / 1536.0)
	return SystemSize{Natom: natom, Ne: 2 * natom, NG: ng, NGd: 8 * ng}
}

// Reference is the paper's headline system.
var Reference = SiliconSystem(1536)

// Model evaluates component costs for one system on Summit.
type Model struct {
	Sys SystemSize
	M   machine.Summit

	// SCFPerStep is the average self-consistency iteration count per
	// 50 as PT-CN step (section 4: average 22).
	SCFPerStep int
	// StepFactor converts per-SCF time to per-step time: 22 SCF + the
	// initial residual + the energy evaluation + orthogonalization
	// amortization = 24.2 per-SCF equivalents (Table 1: Total/perSCF).
	StepFactor float64
	// CPUStepSeconds is the 3072-core CPU baseline per step for the
	// reference system (section 6: 8874 s).
	CPUStepSeconds float64
}

// NewModel builds the calibrated model for a system.
func New(sys SystemSize) *Model {
	return &Model{
		Sys:            sys,
		M:              machine.Default(),
		SCFPerStep:     22,
		StepFactor:     24.2,
		CPUStepSeconds: 8874,
	}
}

// Calibration constants: per-SCF component times of Table 1 at the
// reference system on 36 GPUs, together with their scaling laws.
const (
	refP = 36.0

	baseFockComp    = 90.99 // prop Ne^2 NG log NG / P (N^2 FFT pairs)
	baseFockMPIc    = 0.71 / 6.0
	baseLocalPseudo = 0.337 // prop Ne NG log NG / P
	baseA2AVVol     = 28.1  // prop Ne NG / P (transpose volume)
	baseA2AVLat     = 0.103 // latency floor
	baseOverlapAR   = 0.55  // prop Ne^2 + const (ring allreduce, P-indep)
	baseResidComp   = 51.5  // prop Ne NG / P (BLAS-1 + GEMM rows)
	baseAMMemcpy    = 59.1  // prop Ne NG / P (20-deep history staging)
	baseAMCompVol   = 82.8  // prop Ne NG / P
	baseAMCompLat   = 0.0125
	baseDensityComp = 4.86 // prop Ne NGd log NGd / P
	baseDensityAR   = 0.17 // prop NGd (ring allreduce)
	baseOthersConst = 1.40 // prop NGd: dense-grid potential assembly
	baseOthersP     = 40.0 // prop NGd / P: distributed FFTW part
	baseOthersBcast = 0.008

	// fftFlopsPerPoint is the 5 N log2 N complex FFT flop model.
	fftFlopCoef = 5.0
)

// scaling helpers relative to the reference system.
func (m *Model) sNe() float64  { return float64(m.Sys.Ne) / float64(Reference.Ne) }
func (m *Model) sNG() float64  { return float64(m.Sys.NG) / float64(Reference.NG) }
func (m *Model) sNGd() float64 { return float64(m.Sys.NGd) / float64(Reference.NGd) }
func (m *Model) sLogNG() float64 {
	return math.Log2(float64(m.Sys.NG)) / math.Log2(float64(Reference.NG))
}

// SCFBreakdown is one row-group of Table 1: per-SCF component times (s).
type SCFBreakdown struct {
	FockMPI          float64
	FockComp         float64
	FockTotal        float64
	LocalPseudo      float64
	HPsiTotal        float64
	WavefuncA2AV     float64
	OverlapAllreduce float64
	ResidComp        float64
	ResidTotal       float64
	AMMemcpy         float64
	AMComp           float64
	AMTotal          float64
	DensityComp      float64
	DensityAllreduce float64
	DensityTotal     float64
	Others           float64
	PerSCF           float64
}

// SCF evaluates the per-SCF breakdown on p GPUs.
func (m *Model) SCF(p int) SCFBreakdown {
	pf := float64(p)
	sFock := m.sNe() * m.sNe() * m.sNG() * m.sLogNG()
	sBand := m.sNe() * m.sNG()
	var b SCFBreakdown
	b.FockComp = baseFockComp * refP / pf * sFock
	b.FockMPI = baseFockMPIc * math.Sqrt(pf) * sBand
	b.FockTotal = b.FockComp + b.FockMPI
	b.LocalPseudo = baseLocalPseudo * refP / pf * sBand * m.sLogNG()
	b.HPsiTotal = b.FockTotal + b.LocalPseudo
	b.WavefuncA2AV = baseA2AVVol/pf*sBand + baseA2AVLat*m.sNe()
	b.OverlapAllreduce = baseOverlapAR * m.sNe() * m.sNe()
	b.ResidComp = baseResidComp / pf * sBand
	b.ResidTotal = b.WavefuncA2AV + b.OverlapAllreduce + b.ResidComp
	b.AMMemcpy = baseAMMemcpy / pf * sBand
	b.AMComp = baseAMCompVol/pf*sBand + baseAMCompLat*m.sNe()
	b.AMTotal = b.AMMemcpy + b.AMComp
	b.DensityComp = baseDensityComp / pf * m.sNe() * m.sNGd()
	b.DensityAllreduce = baseDensityAR * m.sNGd()
	b.DensityTotal = b.DensityComp + b.DensityAllreduce
	b.Others = baseOthersConst*m.sNGd() + baseOthersP*m.sNGd()/pf + baseOthersBcast*math.Sqrt(pf)*m.sNGd()
	b.PerSCF = b.HPsiTotal + b.ResidTotal + b.AMTotal + b.DensityTotal + b.Others
	return b
}

// StepTotal is the wall-clock time of one 50 as PT-CN step on p GPUs.
func (m *Model) StepTotal(p int) float64 {
	return m.StepFactor * m.SCF(p).PerSCF
}

// Speedup is the acceleration over the CPU baseline (valid for the
// reference system, where the baseline is measured).
func (m *Model) Speedup(p int) float64 {
	return m.cpuStep() / m.StepTotal(p)
}

func (m *Model) cpuStep() float64 {
	// Scale the measured reference baseline by total work.
	s := m.sNe() * m.sNe() * m.sNG() * m.sLogNG()
	return m.CPUStepSeconds * s
}

// HPsiPercent is the last row of Table 1.
func (m *Model) HPsiPercent(p int) float64 {
	b := m.SCF(p)
	return b.HPsiTotal / b.PerSCF * 100
}

// CommBreakdown is Table 2: per-step communication/computation split (s).
type CommBreakdown struct {
	MemcpyTime     float64
	A2AVTime       float64
	AllreduceTime  float64
	BcastTime      float64
	AllgathervTime float64
	MPITotal       float64
	ComputeTime    float64
	Total          float64
}

// Comm evaluates the Table 2 breakdown on p GPUs.
func (m *Model) Comm(p int) CommBreakdown {
	pf := float64(p)
	b := m.SCF(p)
	var c CommBreakdown
	sBand := m.sNe() * m.sNG()
	// Memory copies beyond the Anderson staging: density fields and
	// exchange buffers; calibrated against Table 2 at the reference.
	c.MemcpyTime = 2150.0/pf*sBand + 1.5*m.sNGd()
	c.A2AVTime = m.StepFactor * b.WavefuncA2AV
	c.AllreduceTime = m.StepFactor * (b.OverlapAllreduce + b.DensityAllreduce)
	// Wavefunction broadcast for the 24 Fock applications plus the
	// density-related broadcasts of the "others" component.
	c.BcastTime = m.StepFactor*b.FockMPI + m.StepFactor*baseOthersBcast*math.Sqrt(pf)*m.sNGd()
	c.AllgathervTime = 1.2 * m.sNGd()
	c.MPITotal = c.A2AVTime + c.AllreduceTime + c.BcastTime + c.AllgathervTime
	c.Total = m.StepTotal(p)
	c.ComputeTime = c.Total - c.MPITotal - c.MemcpyTime
	return c
}

// FLOPPerStep returns the double-precision operation count of one step,
// dominated by the 24 Fock applications (Ne^2 FFT pairs each):
// section 7 reports 3.87e16 for the reference system.
func (m *Model) FLOPPerStep() float64 {
	ng := float64(m.Sys.NG)
	fftFlop := fftFlopCoef * ng * math.Log2(ng)
	ne := float64(m.Sys.Ne)
	fock := 24.0 * ne * ne * 2 * fftFlop
	// Remaining ~7% (Table 1: Fock is 93% of FLOP): density, residual,
	// rotations, Anderson.
	return fock / 0.93
}

// FLOPSEfficiency is the fraction of aggregate V100 peak sustained
// (section 7: 5.5% at 36 GPUs falling to 2% at 768).
func (m *Model) FLOPSEfficiency(p int) float64 {
	t := m.StepTotal(p)
	flops := m.FLOPPerStep() / (float64(p) * t)
	return flops / (m.M.GPUPeakTFLOPS * 1e12)
}

// RK4StepTotal is the wall-clock time to advance the same 50 as with the
// explicit RK4 integrator: 100 steps of 0.5 as, four Hamiltonian rebuilds
// and applications each. The RK4 path pays the unoverlapped
// double-precision broadcast (the section 3.2 communication optimizations
// belong to the PT-CN production path; see EXPERIMENTS.md).
func (m *Model) RK4StepTotal(p int) float64 {
	b := m.SCF(p)
	perApp := b.FockComp + 2*b.FockMPI*2 + b.LocalPseudo
	perRK4Step := 4*perApp + 4*(b.DensityTotal+b.Others)
	// One orthogonalization per RK4 step (residual-style linear algebra).
	perRK4Step += b.ResidTotal
	return 100 * perRK4Step
}

// PTCNvsRK4 returns the Fig. 6 speedup ratio at p GPUs.
func (m *Model) PTCNvsRK4(p int) float64 {
	return m.RK4StepTotal(p) / m.StepTotal(p)
}

// FockStage identifies one bar of Fig. 3.
type FockStage struct {
	Name    string
	Seconds float64 // per SCF Fock-exchange wall time
}

// FockStages reproduces Fig. 3: the Fock exchange time per SCF for the CPU
// reference and the five GPU optimization stages of section 3.2, at p GPUs
// (the paper uses 72 GPUs vs 3072 CPU cores). Stage multipliers are
// documented estimates - the paper presents this figure as a bar chart
// without numeric labels - anchored so that the final stage equals the
// Table 1 value and the CPU/GPU ratio is the stated ~7x.
func (m *Model) FockStages(p int) []FockStage {
	b := m.SCF(p)
	cpu := 0.95 * m.cpuStep() / m.StepFactor // Fock is ~95% of CPU time
	dpMPI := 2 * b.FockMPI                   // double precision, not overlapped
	copies := 60.0 / float64(p) * m.sNe() * m.sNG()
	return []FockStage{
		{"CPU (3072 cores)", cpu},
		{"GPU band-by-band (CUFFT + custom kernels)", 2.2*b.FockComp + 2*dpMPI + 3*copies},
		{"+ batched FFTs", b.FockComp + 2*dpMPI + 3*copies},
		{"+ CUDA-aware MPI / GPUDirect", b.FockComp + 2*dpMPI + copies},
		{"+ single-precision MPI", b.FockComp + dpMPI + copies},
		{"+ computation/communication overlap", b.FockTotal},
	}
}

// MemoryPerRankGB estimates the Anderson-mixing memory per MPI rank
// (section 7: 20 wavefunction copies; <20 GB per rank at 36 GPUs, staged
// in the 512 GB node DRAM).
func (m *Model) MemoryPerRankGB(p int, history int) float64 {
	perWf := float64(m.Sys.NG) * 16 / 1e9 // complex128
	bandsPerRank := float64(m.Sys.Ne) / float64(p)
	return perWf * bandsPerRank * float64(history)
}

// GPUCounts are the processor counts of Tables 1-2.
var GPUCounts = []int{36, 72, 144, 288, 384, 768, 1536, 3072}

// WeakScalingPoint is one bar of Fig. 8.
type WeakScalingPoint struct {
	Natom int
	GPUs  int
	Time  float64 // wall clock per 50 as
	Ideal float64 // O(Natom^2) reference through the largest system
}

// WeakScaling evaluates Fig. 8: systems from 48 to 1536 atoms with
// GPUs = Natom/2. The O(Natom^2) ideal curve is anchored at the largest
// system. Measured growth between sizes is slower than N^2 because small
// systems are dominated by costs that do not grow as N^2 ("our
// implementation scales even better than that indicated by the ideal
// scaling"), approaching the ideal exponent once the Fock exchange
// dominates ("even with the system size increased to 1536 atoms, the weak
// scaling is still very close to the ideal scaling").
func WeakScaling(natoms []int) []WeakScalingPoint {
	out := make([]WeakScalingPoint, len(natoms))
	for i, n := range natoms {
		m := New(SiliconSystem(n))
		out[i] = WeakScalingPoint{Natom: n, GPUs: n / 2, Time: m.StepTotal(n / 2)}
	}
	last := len(out) - 1
	tRef := out[last].Time
	nRef := natoms[last]
	for i := range out {
		r := float64(out[i].Natom) / float64(nRef)
		out[i].Ideal = tRef * r * r
	}
	return out
}

// GrowthExponent returns the effective weak-scaling exponent between two
// points: log(t2/t1)/log(N2/N1); 2 is the ideal O(N^2).
func GrowthExponent(a, b WeakScalingPoint) float64 {
	return math.Log(b.Time/a.Time) / math.Log(float64(b.Natom)/float64(a.Natom))
}
