package grid

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"ptdft/internal/lattice"
)

func si8Grid(t *testing.T, ecut float64) *Grid {
	t.Helper()
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	g, err := New(cell, ecut)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPaperGridDimensions(t *testing.T) {
	// Section 4: Si1536 = 4x6x8 unit cells, Ecut = 10 Ha gives a
	// wavefunction grid of 60x90x120 (NG = 648,000 reported as the box
	// size) and a charge density grid of 120x180x240.
	cell := lattice.MustSiliconSupercell(4, 6, 8)
	g, err := New(cell, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != [3]int{60, 90, 120} {
		t.Errorf("wavefunction grid = %v, paper reports 60x90x120", g.N)
	}
	if g.ND != [3]int{120, 180, 240} {
		t.Errorf("density grid = %v, paper reports 120x180x240", g.ND)
	}
	if g.NTot != 648000 {
		t.Errorf("NTot = %d, paper reports 648000", g.NTot)
	}
	if cell.NumAtoms() != 1536 {
		t.Errorf("atoms = %d, want 1536", cell.NumAtoms())
	}
	if cell.NumBands() != 3072 {
		t.Errorf("bands = %d, paper reports 3072 occupied wavefunctions", cell.NumBands())
	}
}

func TestSphereWithinCutoff(t *testing.T) {
	g := si8Grid(t, 5)
	if g.NG == 0 {
		t.Fatal("empty G sphere")
	}
	for i, g2 := range g.G2 {
		if g2/2 > g.Ecut+1e-12 {
			t.Fatalf("sphere entry %d above cutoff: %g", i, g2/2)
		}
	}
	// G=0 must be present.
	found := false
	for _, g2 := range g.G2 {
		if g2 == 0 {
			found = true
		}
	}
	if !found {
		t.Error("G=0 not in sphere")
	}
}

func TestSphereClosedUnderNegation(t *testing.T) {
	g := si8Grid(t, 5)
	type key [3]int
	set := make(map[key]bool, g.NG)
	for _, m := range g.MillerIdx {
		set[key{m[0], m[1], m[2]}] = true
	}
	for _, m := range g.MillerIdx {
		if !set[key{-m[0], -m[1], -m[2]}] {
			t.Fatalf("sphere not symmetric: missing -G for %v", m)
		}
	}
}

func TestToRealFromRealRoundTrip(t *testing.T) {
	g := si8Grid(t, 4)
	rng := rand.New(rand.NewSource(1))
	c := make([]complex128, g.NG)
	for i := range c {
		c[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	box := make([]complex128, g.NTot)
	g.ToReal(box, c)
	c2 := make([]complex128, g.NG)
	g.FromReal(c2, box)
	for i := range c {
		if cmplx.Abs(c[i]-c2[i]) > 1e-10 {
			t.Fatalf("round trip differs at %d: %v vs %v", i, c[i], c2[i])
		}
	}
}

func TestSerialTransformsMatchParallel(t *testing.T) {
	g := si8Grid(t, 4)
	rng := rand.New(rand.NewSource(2))
	c := make([]complex128, g.NG)
	for i := range c {
		c[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	a := make([]complex128, g.NTot)
	b := make([]complex128, g.NTot)
	g.ToReal(a, c)
	g.ToRealSerial(b, c)
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > 1e-10 {
			t.Fatalf("serial ToReal differs at %d", i)
		}
	}
	ca := make([]complex128, g.NG)
	cb := make([]complex128, g.NG)
	copyBox := make([]complex128, g.NTot)
	copy(copyBox, a)
	g.FromReal(ca, a)
	g.FromRealSerial(cb, copyBox)
	for i := range ca {
		if cmplx.Abs(ca[i]-cb[i]) > 1e-10 {
			t.Fatalf("serial FromReal differs at %d", i)
		}
	}
}

func TestNormalizationParseval(t *testing.T) {
	// A normalized sphere vector must integrate |psi|^2 to 1 on both boxes.
	g := si8Grid(t, 4)
	rng := rand.New(rand.NewSource(3))
	c := make([]complex128, g.NG)
	var norm float64
	for i := range c {
		c[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(c[i])*real(c[i]) + imag(c[i])*imag(c[i])
	}
	s := complex(1/math.Sqrt(norm), 0)
	for i := range c {
		c[i] *= s
	}
	box := make([]complex128, g.NTot)
	g.ToReal(box, c)
	var integral float64
	for _, v := range box {
		integral += real(v)*real(v) + imag(v)*imag(v)
	}
	integral *= g.DVWave()
	if math.Abs(integral-1) > 1e-10 {
		t.Errorf("wave box norm integral = %g, want 1", integral)
	}
	boxD := make([]complex128, g.NDTot)
	g.ToRealDense(boxD, c)
	integral = 0
	for _, v := range boxD {
		integral += real(v)*real(v) + imag(v)*imag(v)
	}
	integral *= g.DV()
	if math.Abs(integral-1) > 1e-10 {
		t.Errorf("dense box norm integral = %g, want 1", integral)
	}
}

func TestDenseForwardInverseRoundTrip(t *testing.T) {
	g := si8Grid(t, 3)
	rng := rand.New(rand.NewSource(4))
	f := make([]complex128, g.NDTot)
	for i := range f {
		f[i] = complex(rng.NormFloat64(), 0)
	}
	coeff := make([]complex128, g.NDTot)
	g.DenseForward(coeff, f)
	back := make([]complex128, g.NDTot)
	g.DenseInverse(back, coeff)
	for i := range f {
		if cmplx.Abs(f[i]-back[i]) > 1e-10 {
			t.Fatalf("dense round trip differs at %d", i)
		}
	}
}

func TestDenseForwardConstantField(t *testing.T) {
	g := si8Grid(t, 3)
	f := make([]complex128, g.NDTot)
	for i := range f {
		f[i] = 2.5
	}
	coeff := make([]complex128, g.NDTot)
	g.DenseForward(coeff, f)
	// Only the G=0 coefficient (linear index 0) should be nonzero.
	if cmplx.Abs(coeff[0]-2.5) > 1e-10 {
		t.Errorf("G=0 coefficient = %v, want 2.5", coeff[0])
	}
	for i := 1; i < len(coeff); i++ {
		if cmplx.Abs(coeff[i]) > 1e-10 {
			t.Fatalf("nonzero coefficient at %d: %v", i, coeff[i])
		}
	}
}

func TestRestrictDenseToWavePlaneWave(t *testing.T) {
	// A single low-G plane wave on the dense grid must restrict to the same
	// plane wave sampled on the wavefunction grid.
	g := si8Grid(t, 4)
	m := [3]int{1, -2, 1}
	b := [3]float64{2 * math.Pi / g.Cell.L[0], 2 * math.Pi / g.Cell.L[1], 2 * math.Pi / g.Cell.L[2]}
	gv := [3]float64{float64(m[0]) * b[0], float64(m[1]) * b[1], float64(m[2]) * b[2]}
	dense := make([]complex128, g.NDTot)
	idx := 0
	for ix := 0; ix < g.ND[0]; ix++ {
		x := float64(ix) / float64(g.ND[0]) * g.Cell.L[0]
		for iy := 0; iy < g.ND[1]; iy++ {
			y := float64(iy) / float64(g.ND[1]) * g.Cell.L[1]
			for iz := 0; iz < g.ND[2]; iz++ {
				z := float64(iz) / float64(g.ND[2]) * g.Cell.L[2]
				ph := gv[0]*x + gv[1]*y + gv[2]*z
				dense[idx] = cmplx.Exp(complex(0, ph))
				idx++
			}
		}
	}
	wave := make([]complex128, g.NTot)
	g.RestrictDenseToWave(wave, dense)
	idx = 0
	for ix := 0; ix < g.N[0]; ix++ {
		x := float64(ix) / float64(g.N[0]) * g.Cell.L[0]
		for iy := 0; iy < g.N[1]; iy++ {
			y := float64(iy) / float64(g.N[1]) * g.Cell.L[1]
			for iz := 0; iz < g.N[2]; iz++ {
				z := float64(iz) / float64(g.N[2]) * g.Cell.L[2]
				ph := gv[0]*x + gv[1]*y + gv[2]*z
				want := cmplx.Exp(complex(0, ph))
				if cmplx.Abs(wave[idx]-want) > 1e-9 {
					t.Fatalf("restriction differs at %d: got %v want %v", idx, wave[idx], want)
				}
				idx++
			}
		}
	}
}

func TestWavePointPositions(t *testing.T) {
	g := si8Grid(t, 3)
	pos := g.WavePointPositions()
	if len(pos) != g.NTot {
		t.Fatalf("positions length %d, want %d", len(pos), g.NTot)
	}
	// First point is the origin; all points inside the cell.
	if pos[0] != [3]float64{0, 0, 0} {
		t.Errorf("first position %v, want origin", pos[0])
	}
	for _, p := range pos {
		for d := 0; d < 3; d++ {
			if p[d] < 0 || p[d] >= g.Cell.L[d] {
				t.Fatalf("position %v outside cell", p)
			}
		}
	}
}

func TestMillerIndexMapping(t *testing.T) {
	for _, n := range []int{5, 6, 8, 9} {
		for k := 0; k < n; k++ {
			m := millerFromIndex(k, n)
			if indexFromMiller(m, n) != k {
				t.Fatalf("miller mapping not invertible: n=%d k=%d m=%d", n, k, m)
			}
		}
	}
}

func TestNewRejectsBadCutoff(t *testing.T) {
	cell := lattice.MustSiliconSupercell(1, 1, 1)
	if _, err := New(cell, 0); err == nil {
		t.Error("expected error for zero cutoff")
	}
	if _, err := New(cell, -1); err == nil {
		t.Error("expected error for negative cutoff")
	}
}
